package ndmesh

// This file is the load-generation face of the simulator: it drives the
// contention-mode engine with internal/traffic's open-loop injection
// patterns through the warmup/measure/drain methodology and emits
// latency-throughput curves (E19). SaturationSweep fans the (pattern, rate,
// router) grid across the parallel experiment engine under the same
// determinism contract as every other sweep: per-job rng streams are split
// serially in job order, each job writes only its own result slot, and
// aggregation is a serial pass — so the output is byte-identical for every
// worker count.

import (
	"fmt"

	"ndmesh/internal/engine"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/par"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
	"ndmesh/internal/traffic"
)

// SaturationOptions configures a saturation sweep: the cross product of
// Patterns x Rates x Routers, each cell one contention-mode load run.
type SaturationOptions struct {
	// Dims is the mesh shape; Lambda the information rounds per step.
	Dims   []int
	Lambda int
	// Routers, Patterns and Rates span the sweep grid. Pattern names:
	// uniform | transpose | complement | bitrev | hotspot | neighbor.
	Routers  []string
	Patterns []string
	Rates    []float64
	// Process is the arrival process: bernoulli (default) | poisson |
	// bursty.
	Process string
	// Warmup/Measure/Drain are the phase lengths in steps.
	Warmup, Measure, Drain int
	// LinkRate is the per-directed-link service rate (messages/step,
	// default 1); NodeCapacity the per-node input-queue depth (0 =
	// unbounded).
	LinkRate, NodeCapacity int
	// Congestion tunes the "congested" router's load tie-breaking (zero
	// value = route.CongestionConfig defaults); other routers ignore it.
	Congestion route.CongestionConfig
	// Faults > 0 overlays a dynamic fault schedule (FaultInterval steps
	// apart, clustered into one block when Clustered) on every run.
	Faults, FaultInterval int
	Clustered             bool
	// Workers is the parallel fan-out width; < 1 means GOMAXPROCS. The
	// results are identical for every value.
	Workers int
	// Shards splits each cell's flight population across this many
	// intra-step shard workers (contention-mode stepping; < 2 means
	// serial). Orthogonal to Workers — Workers parallelizes across cells,
	// Shards inside one — and under the same contract: the rows are
	// byte-identical for every shard count (engine.SetShards).
	Shards int
}

// DefaultSaturation returns the standard configuration: an 8x8 mesh,
// Bernoulli arrivals, uniform + transpose patterns, the limited router,
// rates from deep underload to past saturation.
func DefaultSaturation() SaturationOptions {
	return SaturationOptions{
		Dims:     []int{8, 8},
		Lambda:   1,
		Routers:  []string{"limited"},
		Patterns: []string{"uniform", "transpose"},
		Rates:    []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5},
		Process:  "bernoulli",
		Warmup:   64,
		Measure:  256,
		Drain:    256,
		LinkRate: 1,
	}
}

// SaturationRow is one latency-throughput point: a (pattern, rate, router)
// cell's measurement-window statistics.
type SaturationRow struct {
	Dims    string
	Pattern string
	Router  string
	// OfferedRate is the nominal injection rate (messages/node/step);
	// AcceptedRate what was actually delivered per node-step.
	OfferedRate, AcceptedRate float64
	// Offered = Injected + Dropped (source-queue refusals); Delivered /
	// Unreachable / Lost / Unfinished classify the injected flights.
	Offered, Injected, Dropped               int
	Delivered, Unreachable, Lost, Unfinished int
	// LatMean/P50/P95/P99/Max summarize delivered-flight latency in steps
	// (queueing waits included).
	LatMean                float64
	LatP50, LatP95, LatP99 int
	LatMax                 int
}

// SaturationSweep runs the latency-throughput grid with all available
// cores.
func SaturationSweep(opt SaturationOptions, seed uint64) ([]SaturationRow, error) {
	opt.Workers = 0
	return saturationSweep(opt, seed)
}

// SaturationSweepWorkers is SaturationSweep with an explicit worker count
// (each (pattern, rate, router) cell is one parallel job).
func SaturationSweepWorkers(opt SaturationOptions, seed uint64, workers int) ([]SaturationRow, error) {
	opt.Workers = workers
	return saturationSweep(opt, seed)
}

func saturationSweep(opt SaturationOptions, seed uint64) ([]SaturationRow, error) {
	if err := validateSaturation(&opt); err != nil {
		return nil, err
	}
	shape, err := grid.NewShape(opt.Dims...)
	if err != nil {
		return nil, err
	}
	// One job per (pattern, rate, router) cell, pattern-major — the order
	// the rows are reported in and the order the job streams are split in.
	jobs := len(opt.Patterns) * len(opt.Rates) * len(opt.Routers)
	rngs := splitN(seed, jobs)
	rows := make([]SaturationRow, jobs)
	err = par.ForState(opt.Workers, jobs, newSimPool, func(p *simPool, j int) error {
		pi := j / (len(opt.Rates) * len(opt.Routers))
		ri := j / len(opt.Routers) % len(opt.Rates)
		ki := j % len(opt.Routers)
		pt, err := p.loadPoint(opt, opt.Patterns[pi], opt.Routers[ki], opt.Rates[ri], rngs[j])
		if err != nil {
			return err
		}
		rows[j] = SaturationRow{
			Dims:         shape.String(),
			Pattern:      opt.Patterns[pi],
			Router:       opt.Routers[ki],
			OfferedRate:  pt.OfferedRate,
			AcceptedRate: pt.AcceptedRate,
			Offered:      pt.Offered,
			Injected:     pt.Injected,
			Dropped:      pt.Dropped,
			Delivered:    pt.Delivered,
			Unreachable:  pt.Unreachable,
			Lost:         pt.Lost,
			Unfinished:   pt.Unfinished,
			LatMean:      pt.Latency.Mean,
			LatP50:       pt.Latency.P50,
			LatP95:       pt.Latency.P95,
			LatP99:       pt.Latency.P99,
			LatMax:       pt.Latency.Max,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func validateSaturation(opt *SaturationOptions) error {
	if len(opt.Routers) == 0 || len(opt.Patterns) == 0 || len(opt.Rates) == 0 {
		return fmt.Errorf("ndmesh: saturation sweep needs at least one router, pattern and rate")
	}
	if opt.Measure < 1 {
		return fmt.Errorf("ndmesh: saturation sweep needs a measurement window (Measure >= 1)")
	}
	if opt.Warmup < 0 || opt.Drain < 0 {
		return fmt.Errorf("ndmesh: negative phase lengths (warmup %d, drain %d)", opt.Warmup, opt.Drain)
	}
	// Reject rates the arrival process cannot offer faithfully: past its
	// MaxRate the realized load silently clips and the curve's offered-rate
	// axis would lie (a Bernoulli source caps at 1 msg/node/step, a bursty
	// one at its duty cycle).
	proc, err := traffic.ProcessByName(opt.Process)
	if err != nil {
		return err
	}
	for _, rate := range opt.Rates {
		if rate <= 0 {
			return fmt.Errorf("ndmesh: injection rate %v must be positive", rate)
		}
		if max := proc.MaxRate(); rate > max {
			return fmt.Errorf("ndmesh: rate %v exceeds what the %s process can offer (max %v msgs/node/step); use a lower rate or the poisson process",
				rate, proc.Name(), max)
		}
	}
	if opt.Lambda < 1 {
		opt.Lambda = 1
	}
	if opt.LinkRate < 1 {
		opt.LinkRate = 1
	}
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	return nil
}

// loadPoint executes one contention-mode load run on a pooled simulation:
// open-loop injection for warmup+measure steps, then a drain window, with
// terminated flights harvested (and recycled) every step.
func (p *simPool) loadPoint(opt SaturationOptions, pattern, router string, rate float64, r *rng.Source) (traffic.LoadPoint, error) {
	sim, err := p.get(opt.Dims, opt.Lambda)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	shape := sim.gridShape()
	if opt.Faults > 0 {
		interval := opt.FaultInterval
		if interval < 1 {
			interval = 1
		}
		sched, err := fault.Generate(shape, opt.Faults, fault.Options{
			Interval:  interval,
			Start:     2,
			Clustered: opt.Clustered,
		}, r)
		if err != nil {
			return traffic.LoadPoint{}, err
		}
		setSchedule(sim, sched)
	}
	pat, err := traffic.ByName(shape, pattern)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	proc, err := traffic.ProcessByName(opt.Process)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	rtr, err := route.ByName(router)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	if cg, ok := rtr.(route.Congested); ok {
		cg.Cfg = opt.Congestion
		rtr = cg
	}

	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{
		LinkRate:     opt.LinkRate,
		NodeCapacity: opt.NodeCapacity,
	})
	eng.SetShards(opt.Shards)
	// Every exit path must hand the pooled engine back clean: past-saturation
	// cells end the drain with backlog flights still attached and counted in
	// the residency census, and a persistent or sharded reuse of the engine
	// would inherit that corrupt state (previously only simPool.get's Reset
	// rescued the next cell). ClearFlights detaches and recycles the backlog
	// while contention is still enabled, so resetContention releases every
	// residency counter; then the shard workers stop and contention turns
	// off. TestLoadPointLeavesEngineClean pins all three.
	defer func() {
		eng.ClearFlights()
		eng.SetShards(1)
		eng.DisableContention()
	}()
	gen := traffic.NewGenerator(shape, pat, proc, rate, r)
	ph := traffic.Phases{Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain}
	var col traffic.Collector
	col.Reset(ph)

	fab := sim.fabric()
	var injectErr error
	step := 0
	emit := func(src, dst grid.NodeID) {
		if injectErr != nil {
			return
		}
		// Source-queue admission: a faulty/disabled source cannot inject,
		// and a full input queue refuses the message (both are drops — the
		// open loop does not retry).
		if fab.Status(src) != mesh.Enabled || !eng.Admit(src) {
			col.Offer(step, false)
			return
		}
		fl, err := eng.Inject(src, dst, rtr)
		if err != nil {
			injectErr = err
			return
		}
		fl.Ctx.Policy = sim.routePolicy()
		col.Offer(step, true)
	}
	harvest := func(fl *engine.Flight) {
		oc := traffic.Unfinished
		switch {
		case fl.Msg.Arrived:
			oc = traffic.Delivered
		case fl.Msg.Unreachable:
			oc = traffic.Unreachable
		case fl.Msg.Lost:
			oc = traffic.Lost
		}
		col.Finish(fl.StartStep, fl.Msg.Steps, oc)
	}

	total := ph.Total()
	for ; step < total; step++ {
		if step < ph.InjectUntil() {
			gen.Step(emit)
			if injectErr != nil {
				return traffic.LoadPoint{}, injectErr
			}
		}
		eng.Step()
		eng.DetachDone(harvest)
	}
	// Whatever survived the drain is unfinished backlog (the deferred
	// cleanup detaches it afterwards).
	for _, fl := range eng.Flights() {
		if !fl.Msg.Done() {
			col.Finish(fl.StartStep, fl.Msg.Steps, traffic.Unfinished)
		}
	}
	return col.Result(rate, shape.NumNodes()), nil
}

// LoadOptions configures a single one-shot load run.
type LoadOptions struct {
	Dims                   []int
	Lambda                 int
	Router                 string
	Pattern                string
	Process                string
	Rate                   float64
	Warmup, Measure, Drain int
	LinkRate, NodeCapacity int
	Congestion             route.CongestionConfig
	Faults, FaultInterval  int
	Clustered              bool
	// Shards is the intra-step shard-worker count (< 2 means serial); the
	// point is byte-identical for every value.
	Shards int
	Seed   uint64
}

// LoadRun executes one contention-mode load run and returns its
// latency-throughput point — the single-cell convenience entry for
// library callers who want one point, not a sweep (cmd/loadgen always
// goes through SaturationSweepWorkers, even for one cell; the two paths
// produce identical points, pinned by TestLoadRunMatchesSweepCell).
func LoadRun(opt LoadOptions) (traffic.LoadPoint, error) {
	sopt := SaturationOptions{
		Dims: opt.Dims, Lambda: opt.Lambda,
		Routers: []string{opt.Router}, Patterns: []string{opt.Pattern},
		Rates: []float64{opt.Rate}, Process: opt.Process,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.NodeCapacity,
		Congestion: opt.Congestion,
		Faults:     opt.Faults, FaultInterval: opt.FaultInterval,
		Clustered: opt.Clustered,
		Shards:    opt.Shards,
	}
	if err := validateSaturation(&sopt); err != nil {
		return traffic.LoadPoint{}, err
	}
	pool := newSimPool()
	r := rng.New(opt.Seed).Split() // match the sweep's per-job stream derivation
	return pool.loadPoint(sopt, opt.Pattern, opt.Router, opt.Rate, r)
}
