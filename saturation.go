package ndmesh

// This file is the load-generation face of the simulator: it drives the
// contention-mode engine with internal/traffic's workloads — open-loop
// injection (E19), closed-loop bounded-window sources (E21, closedloop.go)
// and recorded-trace replays — through the warmup/measure/drain methodology
// and emits latency-throughput curves. SaturationSweep fans the (pattern,
// rate, router) grid across the parallel experiment engine under the same
// determinism contract as every other sweep: per-job rng streams are split
// serially in job order, each job writes only its own result slot, and
// aggregation is a serial pass — so the output is byte-identical for every
// worker count.

import (
	"fmt"
	"sync"

	"ndmesh/internal/engine"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/par"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
	"ndmesh/internal/traffic"
)

// SaturationOptions configures a saturation sweep: the cross product of
// Patterns x Rates x Routers, each cell one contention-mode load run.
type SaturationOptions struct {
	// Dims is the mesh shape; Lambda the information rounds per step.
	Dims   []int
	Lambda int
	// Routers, Patterns and Rates span the sweep grid. Pattern names:
	// uniform | transpose | complement | bitrev | hotspot | neighbor.
	Routers  []string
	Patterns []string
	Rates    []float64
	// Process is the arrival process: bernoulli (default) | poisson |
	// bursty.
	Process string
	// Warmup/Measure/Drain are the phase lengths in steps.
	Warmup, Measure, Drain int
	// LinkRate is the per-directed-link service rate (messages/step,
	// default 1); NodeCapacity the per-node input-queue depth (0 =
	// unbounded).
	LinkRate, NodeCapacity int
	// Congestion tunes the "congested" router's load tie-breaking (zero
	// value = route.CongestionConfig defaults); other routers ignore it.
	Congestion route.CongestionConfig
	// FlightTimeout > 0 kills any flight stalled in place that many
	// consecutive steps (engine.ContentionConfig.FlightTimeout); in
	// closed-loop runs the source retries it under exponential backoff
	// (RetryBackoff is the base delay in steps; 0 retries immediately).
	FlightTimeout, RetryBackoff int
	// Bubble enables bubble admission: injection must leave >= 1 free slot
	// in the source's input buffer. Requires NodeCapacity >= 2 (with
	// unbounded buffers it is a no-op).
	Bubble bool
	// GridlockWindow > 0 enables the engine's zero-progress gridlock
	// detector with that window; an escape-less run that gridlocks is cut
	// short (and reported Gridlocked) instead of spinning to its budget.
	GridlockWindow int
	// Faults > 0 overlays a fixed-count fault schedule (FaultInterval steps
	// apart, clustered into one block when Clustered) on every run. When
	// FaultInterval is 0 the interval defaults to Total/(Faults+1), so the
	// schedule spans warmup, measure AND drain. (Earlier versions hard-coded
	// the first fault to step 2, which front-loaded every fault before the
	// warmup ended — the measure phase never saw a fault arrive.)
	Faults, FaultInterval int
	Clustered             bool
	// FaultStart pins the step of the first fault (>= 1); 0 defaults to one
	// interval in, so the schedule is spread across the run.
	FaultStart int
	// FaultRate > 0 replaces the fixed-count overlay with a stochastic
	// fault process (fault.GenerateProcess): failures arrive throughout the
	// whole run with mean rate FaultRate per step under FaultModel
	// (bernoulli | weibull; FaultShape is the weibull shape, default 1.5).
	// FaultRepair > 0 repairs every failed node a random delay later (mean
	// FaultRepair steps, geometric). The process draws from a dedicated rng
	// stream split off the cell's, so the offered traffic is byte-identical
	// across fault rates/models/repair settings. Mutually exclusive with
	// Faults.
	FaultRate   float64
	FaultModel  string
	FaultShape  float64
	FaultRepair float64
	// Workers is the parallel fan-out width; < 1 means GOMAXPROCS. The
	// results are identical for every value.
	Workers int
	// Shards splits each cell's flight population across this many
	// intra-step shard workers (contention-mode stepping; < 2 means
	// serial). Orthogonal to Workers — Workers parallelizes across cells,
	// Shards inside one — and under the same contract: the rows are
	// byte-identical for every shard count (engine.SetShards).
	Shards int
	// Probe, when non-nil, receives the per-step census of the run (see
	// internal/probe). Because probes are stateful accumulators, a probed
	// sweep must be a single cell (one pattern, one rate, one router) —
	// otherwise the parallel cells would interleave their censuses.
	// Observation is read-only: the rows are byte-identical with or
	// without a probe attached. ProbeEvery > 1 decimates the flush
	// cadence: counters aggregate the interval, gauges and the heatmap
	// views sample its last step.
	// Probe and Progress carry json:"-" so an options struct can embed
	// directly into a telemetry manifest (func-typed fields are
	// unmarshalable even when nil).
	Probe      engine.Probe `json:"-"`
	ProbeEvery int
	// Progress, when non-nil, is called after every completed cell with
	// (done, total) — the sweep CLIs wire it to a stderr printer. Called
	// from worker goroutines; must be safe for concurrent use.
	Progress func(done, total int) `json:"-"`
	// Pool, when non-nil, is a shared reservoir of warm simulations the
	// sweep's workers draw from and return to when the sweep ends (the
	// meshd daemon's engine-pool lifecycle — see pool.go). Nil keeps the
	// classic behavior: worker-local simulations built per sweep. Pooling
	// is invisible in the rows: a reused simulation is Reset first, so
	// results are byte-identical with or without a pool.
	Pool *EnginePool `json:"-"`
	// Emit, when non-nil, is called once per completed cell with (index,
	// row) — the streaming hook meshd serves NDJSON rows from. Calls
	// arrive from worker goroutines in completion order (NOT index
	// order), carrying exactly the row the returned slice holds at that
	// index; a caller re-sequencing by index therefore reproduces the
	// batch output byte-for-byte. Must be safe for concurrent use.
	Emit func(index int, row SaturationRow) `json:"-"`
	// Cancel, when non-nil, is polled before every cell and every
	// cancelCheckInterval steps inside one; returning true aborts the
	// sweep with ErrCanceled. The abort path runs the same engine cleanup
	// as a completed cell, so pooled simulations come back clean.
	Cancel func() bool `json:"-"`
}

// DefaultSaturation returns the standard configuration: an 8x8 mesh,
// Bernoulli arrivals, uniform + transpose patterns, the limited router,
// rates from deep underload to past saturation.
func DefaultSaturation() SaturationOptions {
	return SaturationOptions{
		Dims:     []int{8, 8},
		Lambda:   1,
		Routers:  []string{"limited"},
		Patterns: []string{"uniform", "transpose"},
		Rates:    []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5},
		Process:  "bernoulli",
		Warmup:   64,
		Measure:  256,
		Drain:    256,
		LinkRate: 1,
	}
}

// SaturationRow is one latency-throughput point: a (pattern, rate, router)
// cell's measurement-window statistics.
type SaturationRow struct {
	Dims    string
	Pattern string
	Router  string
	// OfferedRate is the nominal injection rate (messages/node/step);
	// AcceptedRate what was actually delivered per node-step.
	OfferedRate, AcceptedRate float64
	// Offered = Injected + Dropped (source-queue refusals); Delivered /
	// Unreachable / Lost / Unfinished classify the injected flights.
	Offered, Injected, Dropped               int
	Delivered, Unreachable, Lost, Unfinished int
	// LatMean/P50/P95/P99/Max summarize delivered-flight latency in steps
	// (queueing waits included).
	LatMean                float64
	LatP50, LatP95, LatP99 int
	LatMax                 int
}

// SaturationSweep runs the latency-throughput grid with all available
// cores.
func SaturationSweep(opt SaturationOptions, seed uint64) ([]SaturationRow, error) {
	opt.Workers = 0
	return saturationSweep(opt, seed)
}

// SaturationSweepWorkers is SaturationSweep with an explicit worker count
// (each (pattern, rate, router) cell is one parallel job).
func SaturationSweepWorkers(opt SaturationOptions, seed uint64, workers int) ([]SaturationRow, error) {
	opt.Workers = workers
	return saturationSweep(opt, seed)
}

func saturationSweep(opt SaturationOptions, seed uint64) ([]SaturationRow, error) {
	if err := validateSaturation(&opt); err != nil {
		return nil, err
	}
	shape, err := grid.NewShape(opt.Dims...)
	if err != nil {
		return nil, err
	}
	// One job per (pattern, rate, router) cell, pattern-major — the order
	// the rows are reported in and the order the job streams are split in.
	jobs := len(opt.Patterns) * len(opt.Rates) * len(opt.Routers)
	if opt.Probe != nil && jobs > 1 {
		return nil, fmt.Errorf("ndmesh: a probed sweep must be a single cell (got %d); probes are stateful accumulators and parallel cells would interleave their censuses", jobs)
	}
	rngs := splitN(seed, jobs)
	rows := make([]SaturationRow, jobs)
	progress := progressCounter(opt.Progress, jobs)
	co := opt.Pool.checkout()
	defer co.release()
	err = par.ForState(opt.Workers, jobs, co.worker, func(p *simPool, j int) error {
		if opt.Cancel != nil && opt.Cancel() {
			return ErrCanceled
		}
		pi := j / (len(opt.Rates) * len(opt.Routers))
		ri := j / len(opt.Routers) % len(opt.Rates)
		ki := j % len(opt.Routers)
		pt, err := p.loadPoint(opt, workload{pattern: opt.Patterns[pi], rate: opt.Rates[ri]}, opt.Routers[ki], rngs[j])
		if err != nil {
			return err
		}
		rows[j] = SaturationRow{
			Dims:         shape.String(),
			Pattern:      opt.Patterns[pi],
			Router:       opt.Routers[ki],
			OfferedRate:  pt.OfferedRate,
			AcceptedRate: pt.AcceptedRate,
			Offered:      pt.Offered,
			Injected:     pt.Injected,
			Dropped:      pt.Dropped,
			Delivered:    pt.Delivered,
			Unreachable:  pt.Unreachable,
			Lost:         pt.Lost,
			Unfinished:   pt.Unfinished,
			LatMean:      pt.Latency.Mean,
			LatP50:       pt.Latency.P50,
			LatP95:       pt.Latency.P95,
			LatP99:       pt.Latency.P99,
			LatMax:       pt.Latency.Max,
		}
		if opt.Emit != nil {
			opt.Emit(j, rows[j])
		}
		progress()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// progressCounter wraps a Progress callback into a no-arg tick that is
// safe to call from parallel job workers; a nil callback costs nothing.
func progressCounter(fn func(done, total int), total int) func() {
	if fn == nil {
		return func() {}
	}
	var mu sync.Mutex
	done := 0
	return func() {
		mu.Lock()
		done++
		d := done
		mu.Unlock()
		fn(d, total)
	}
}

func validateSaturation(opt *SaturationOptions) error {
	if len(opt.Routers) == 0 || len(opt.Patterns) == 0 || len(opt.Rates) == 0 {
		return fmt.Errorf("ndmesh: saturation sweep needs at least one router, pattern and rate")
	}
	// Reject rates the arrival process cannot offer faithfully: past its
	// MaxRate the realized load silently clips and the curve's offered-rate
	// axis would lie (a Bernoulli source caps at 1 msg/node/step, a bursty
	// one at its duty cycle).
	proc, err := traffic.ProcessByName(opt.Process)
	if err != nil {
		return err
	}
	for _, rate := range opt.Rates {
		if rate <= 0 {
			return fmt.Errorf("ndmesh: injection rate %v must be positive", rate)
		}
		if max := proc.MaxRate(); rate > max {
			return fmt.Errorf("ndmesh: rate %v exceeds what the %s process can offer (max %v msgs/node/step); use a lower rate or the poisson process",
				rate, proc.Name(), max)
		}
	}
	return validateLoadShape(opt)
}

// validateLoadShape checks (and defaults) the workload-independent run
// configuration shared by the open-loop sweeps, the closed-loop sweep and
// trace replays: the phase lengths and the contention/sharding parameters.
func validateLoadShape(opt *SaturationOptions) error {
	if opt.Measure < 1 {
		return fmt.Errorf("ndmesh: load run needs a measurement window (Measure >= 1)")
	}
	if opt.Warmup < 0 || opt.Drain < 0 {
		return fmt.Errorf("ndmesh: negative phase lengths (warmup %d, drain %d)", opt.Warmup, opt.Drain)
	}
	if opt.Lambda < 1 {
		opt.Lambda = 1
	}
	if opt.LinkRate < 1 {
		opt.LinkRate = 1
	}
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.FlightTimeout < 0 {
		opt.FlightTimeout = 0
	}
	if opt.RetryBackoff < 0 {
		opt.RetryBackoff = 0
	}
	if opt.GridlockWindow < 0 {
		opt.GridlockWindow = 0
	}
	if opt.ProbeEvery < 1 {
		opt.ProbeEvery = 1
	}
	if opt.Bubble && opt.NodeCapacity == 1 {
		return fmt.Errorf("ndmesh: bubble admission with capacity 1 can never admit a flight (NodeCapacity must be >= 2)")
	}
	if opt.FaultStart < 0 {
		return fmt.Errorf("ndmesh: FaultStart %d must be >= 0", opt.FaultStart)
	}
	if opt.FaultRate < 0 || opt.FaultRate > 1 {
		return fmt.Errorf("ndmesh: fault rate %v out of range [0, 1]", opt.FaultRate)
	}
	if opt.FaultRate > 0 {
		if opt.Faults > 0 {
			return fmt.Errorf("ndmesh: FaultRate and Faults are mutually exclusive overlays — pick the stochastic process or the fixed count")
		}
		if opt.FaultModel == "" {
			opt.FaultModel = fault.DelayBernoulli
		}
		if opt.FaultModel != fault.DelayBernoulli && opt.FaultModel != fault.DelayWeibull {
			return fmt.Errorf("ndmesh: unknown fault model %q (want %s|%s)", opt.FaultModel, fault.DelayBernoulli, fault.DelayWeibull)
		}
		if opt.FaultModel == fault.DelayWeibull && opt.FaultShape == 0 {
			opt.FaultShape = 1.5
		}
		if opt.FaultRepair < 0 {
			return fmt.Errorf("ndmesh: FaultRepair %v must be >= 0", opt.FaultRepair)
		}
		if opt.FaultRepair > 0 && opt.FaultRepair < 1 {
			return fmt.Errorf("ndmesh: FaultRepair %v is a mean delay in steps (>= 1)", opt.FaultRepair)
		}
	}
	return nil
}

// workload selects what one load run offers the network: a live open-loop
// generator (pattern + rate), a live closed-loop source (pattern + window),
// or the replay of a recorded trace. record, when non-nil, captures the
// run's offered stream and fault schedule into the trace so the identical
// workload can be replayed later (see traffic.Trace).
type workload struct {
	// pattern names the traffic pattern for the live modes (unused when
	// replaying — the trace already holds concrete endpoints).
	pattern string
	// rate is the open-loop nominal injection rate (0 in closed-loop mode).
	rate float64
	// window > 0 selects the closed loop: every node keeps up to window
	// requests outstanding and reinjects only when one terminates.
	window int
	// replay, when non-nil, replays the recorded workload: its injections,
	// fault schedule, phases and rate. No randomness is consumed.
	replay *traffic.Trace
	// record, when non-nil, is filled with the run's offers and metadata.
	record *traffic.Trace
}

// closedLoop reports whether the run uses closed-loop drop accounting: a
// refused offer is deferred and retried, never counted as a drop. Replays
// mirror the accounting of the run they recorded.
func (wl *workload) closedLoop() bool {
	return wl.window > 0 || (wl.replay != nil && wl.replay.ClosedLoop)
}

// loadPoint executes one contention-mode load run on a pooled simulation:
// workload injection (open-loop, closed-loop or trace replay) for
// warmup+measure steps, then a drain window, with terminated flights
// harvested (and recycled) every step.
func (p *simPool) loadPoint(opt SaturationOptions, wl workload, router string, r *rng.Source) (traffic.LoadPoint, error) {
	sim, err := p.get(opt.Dims, opt.Lambda)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	shape := sim.gridShape()
	// recFaults is the fault schedule a recording must carry. It is only
	// copied into wl.record after the recorder attaches, because attaching
	// resets the trace (including any stale fault schedule).
	var recFaults []fault.Event
	switch {
	case wl.replay != nil:
		// The trace carries the origin run's fault schedule; a live fault
		// overlay would double-fault the replay.
		if err := wl.replay.Validate(shape); err != nil {
			return traffic.LoadPoint{}, err
		}
		if len(wl.replay.Faults) > 0 {
			setSchedule(sim, wl.replay.Schedule())
		}
		// Re-recording a replay must carry the schedule over, or the copy
		// would replay fault-free and break the byte-identity contract.
		recFaults = wl.replay.Faults
	case opt.FaultRate > 0 || opt.Faults > 0:
		// The overlay draws from a stream split off the cell's, so the
		// traffic draws below are byte-identical across fault settings (and
		// the schedule is identical across patterns/rates at a fixed seed).
		// Fault-free cells skip the split, keeping their goldens unchanged.
		fr := r.Split()
		total := opt.Warmup + opt.Measure + opt.Drain
		var sched *fault.Schedule
		var err error
		if opt.FaultRate > 0 {
			popt := fault.ProcessOptions{
				Arrival:   fault.Delay{Model: opt.FaultModel, Rate: opt.FaultRate, Shape: opt.FaultShape},
				Start:     opt.FaultStart,
				Horizon:   total - 1,
				Clustered: opt.Clustered,
			}
			if opt.FaultRepair > 0 {
				popt.Repair = fault.Delay{Model: fault.DelayBernoulli, Rate: 1 / opt.FaultRepair}
			}
			sched, err = fault.GenerateProcess(shape, popt, fr)
		} else {
			// Fixed count: default the interval so the schedule spans the
			// whole run (not, as the old hard-coded Start: 2 did, completing
			// before the warmup ends), and start one interval in.
			interval := opt.FaultInterval
			if interval < 1 {
				interval = total / (opt.Faults + 1)
				if interval < 1 {
					interval = 1
				}
			}
			start := opt.FaultStart
			if start < 1 {
				start = interval
			}
			sched, err = fault.Generate(shape, opt.Faults, fault.Options{
				Interval:  interval,
				Start:     start,
				Clustered: opt.Clustered,
			}, fr)
		}
		if err != nil {
			return traffic.LoadPoint{}, err
		}
		setSchedule(sim, sched)
		recFaults = sched.Events
	}
	rtr, err := route.ByName(router)
	if err != nil {
		return traffic.LoadPoint{}, err
	}
	if cg, ok := rtr.(route.Congested); ok {
		cg.Cfg = opt.Congestion
		rtr = cg
	}

	// Build the injection source for the selected workload mode. cl is
	// non-nil only for a live closed loop: its outstanding windows are
	// released from the harvest callback below. rq is non-nil only for a
	// live open loop with flight timeouts: it re-offers timed-out requests
	// under the same backoff discipline (ROADMAP item 3's last leftover —
	// without it, open-loop escape runs silently under-delivered their
	// offered load).
	var src traffic.Injector
	var cl *traffic.ClosedLoop
	var rq *traffic.RetrySource
	rate := wl.rate
	switch {
	case wl.replay != nil:
		// No retry machinery on replay: the recorded stream already carries
		// the origin run's retried offers.
		src = traffic.NewTracePlayer(wl.replay)
		rate = wl.replay.Rate
	case wl.window > 0:
		pat, err := traffic.ByName(shape, wl.pattern)
		if err != nil {
			return traffic.LoadPoint{}, err
		}
		cl = traffic.NewClosedLoop(shape, pat, wl.window, r)
		src = cl
	default:
		pat, err := traffic.ByName(shape, wl.pattern)
		if err != nil {
			return traffic.LoadPoint{}, err
		}
		proc, err := traffic.ProcessByName(opt.Process)
		if err != nil {
			return traffic.LoadPoint{}, err
		}
		src = traffic.NewGenerator(shape, pat, proc, wl.rate, r)
		if opt.FlightTimeout > 0 {
			rq = traffic.NewRetrySource(src, shape.NumNodes(), opt.RetryBackoff, r)
			src = rq
		}
	}
	if wl.record != nil {
		wl.record.Dims = shape.Radices()
		wl.record.Rate = rate
		wl.record.Window = wl.window
		wl.record.ClosedLoop = wl.closedLoop()
		wl.record.Warmup, wl.record.Measure, wl.record.Drain = opt.Warmup, opt.Measure, opt.Drain
		// The engine-side configuration shapes every admission verdict, so
		// the trace carries it: a replay inherits these unless the caller
		// overrides deliberately.
		wl.record.Lambda, wl.record.LinkRate, wl.record.NodeCapacity = opt.Lambda, opt.LinkRate, opt.NodeCapacity
		wl.record.FlightTimeout, wl.record.GridlockWindow, wl.record.Bubble = opt.FlightTimeout, opt.GridlockWindow, opt.Bubble
		src = traffic.NewTraceRecorder(src, wl.record) // resets the trace...
		wl.record.Faults = append(wl.record.Faults, recFaults...)
		// ... so the fault schedule is attached afterwards.
	}
	closed := wl.closedLoop()

	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{
		LinkRate:       opt.LinkRate,
		NodeCapacity:   opt.NodeCapacity,
		GridlockWindow: opt.GridlockWindow,
		FlightTimeout:  opt.FlightTimeout,
		Bubble:         opt.Bubble,
	})
	eng.SetShards(opt.Shards)
	if cl != nil && opt.FlightTimeout > 0 {
		cl.ConfigureRetry(opt.RetryBackoff)
	}
	// Attach the census probe (and pick out its latency sink, if it has
	// one) before the first injection so the census covers the whole run.
	// Observation is read-only, so the LoadPoint below is byte-identical
	// with or without it.
	var latObs interface{ ObserveLatency(steps int) }
	if opt.Probe != nil {
		eng.SetProbe(opt.Probe)
		latObs, _ = opt.Probe.(interface{ ObserveLatency(steps int) })
	}
	// Every exit path must hand the pooled engine back clean: past-saturation
	// cells end the drain with backlog flights still attached and counted in
	// the residency census, and a persistent or sharded reuse of the engine
	// would inherit that corrupt state (previously only simPool.get's Reset
	// rescued the next cell). ClearFlights detaches and recycles the backlog
	// while contention is still enabled, so resetContention releases every
	// residency counter; then the shard workers stop and contention turns
	// off. TestLoadPointLeavesEngineClean pins all three.
	defer func() {
		eng.SetProbe(nil)
		eng.ClearFlights()
		eng.SetShards(1)
		eng.DisableContention()
	}()
	ph := traffic.Phases{Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain}
	var col traffic.Collector
	col.Reset(ph)

	fab := sim.fabric()
	var injectErr error
	step := 0
	emit := func(src, dst grid.NodeID) bool {
		if injectErr != nil {
			return false
		}
		// Source-queue admission: a faulty/disabled source cannot inject,
		// and a full input queue refuses the message. An open loop counts
		// the refusal as a drop; a closed loop (and the replay of one)
		// leaves it unaccounted — the source keeps the slot and retries.
		if fab.Status(src) != mesh.Enabled || !eng.Admit(src) {
			if !closed {
				col.Offer(step, false)
			}
			return false
		}
		fl, err := eng.Inject(src, dst, rtr)
		if err != nil {
			injectErr = err
			return false
		}
		fl.Ctx.Policy = sim.routePolicy()
		col.Offer(step, true)
		return true
	}
	harvest := func(fl *engine.Flight) {
		oc := traffic.Unfinished
		switch {
		case fl.Msg.Arrived:
			oc = traffic.Delivered
		case fl.Msg.Unreachable:
			oc = traffic.Unreachable
		case fl.Msg.Lost:
			oc = traffic.Lost
		case fl.Msg.TimedOut:
			oc = traffic.TimedOut
		}
		if cl != nil {
			if oc == traffic.TimedOut {
				// A timeout kill re-arms the slot for a retry under backoff
				// instead of plainly releasing it.
				cl.Timeout(fl.Msg.Src)
				col.Retry(fl.StartStep)
				eng.NoteRetried()
			} else {
				// Every other terminal outcome frees the source's window
				// slot — delivered or not — or faults would wedge the loop
				// shut.
				cl.Release(fl.Msg.Src)
			}
		} else if rq != nil {
			if oc == traffic.TimedOut {
				// The open loop re-offers the killed request (same src, same
				// dst — there is no window slot to redraw from) after its
				// backoff; the retried offer is emitted through src.Step, so
				// a recording trace captures it like any other.
				rq.Timeout(fl.Msg.Src, fl.Msg.Dst, ph.Measured(fl.StartStep))
				col.Retry(fl.StartStep)
				eng.NoteRetried()
			} else {
				rq.Settle(fl.Msg.Src)
			}
		}
		col.Finish(fl.StartStep, fl.Msg.Steps, oc)
		if latObs != nil && oc == traffic.Delivered && ph.Measured(fl.StartStep) {
			// Feed the full-distribution histogram the same latencies the
			// summary's exact-sample path sees (measured delivered flights).
			latObs.ObserveLatency(fl.Msg.Steps)
		}
	}

	total := ph.Total()
	for ; step < total; step++ {
		// Poll the caller's cancellation hook on a coarse cadence: the
		// deferred cleanup above runs on this exit path too, so an aborted
		// cell hands its engine back exactly as clean as a finished one.
		if opt.Cancel != nil && step%cancelCheckInterval == 0 && opt.Cancel() {
			return traffic.LoadPoint{}, ErrCanceled
		}
		if step < ph.InjectUntil() {
			src.Step(emit)
			if injectErr != nil {
				return traffic.LoadPoint{}, injectErr
			}
		}
		eng.Step()
		eng.DetachDone(harvest)
		if opt.Probe != nil && (step+1)%opt.ProbeEvery == 0 {
			// Flush after the harvest pass so retries land in the same
			// census as the timeouts that caused them.
			eng.FlushCensus()
		}
		if eng.Gridlocked() && opt.FlightTimeout == 0 {
			// Terminal gridlock: without flight timeouts nothing can break
			// the buffer cycle, so the remaining steps would spin without a
			// single commit. Cut the run short; the backlog is counted
			// unfinished below and the point is reported Gridlocked. With
			// timeouts enabled the detector latches only transiently (the
			// next kill is progress), so the run keeps stepping.
			break
		}
	}
	// Flush whatever partial census the decimation cadence (or a gridlock
	// cut) left behind; a no-op when the last step flushed already.
	if opt.Probe != nil {
		eng.FlushCensus()
	}
	// Whatever survived the drain is unfinished backlog (the deferred
	// cleanup detaches it afterwards).
	for _, fl := range eng.Flights() {
		if !fl.Msg.Done() {
			col.Finish(fl.StartStep, fl.Msg.Steps, traffic.Unfinished)
		}
	}
	pt := col.Result(rate, shape.NumNodes())
	// Read the detector before the deferred cleanup resets it.
	pt.Gridlocked = eng.Gridlocked()
	pt.GridlockStep = eng.GridlockStep()
	pt.RecoverySteps = eng.GridlockRecovery()
	if rq != nil {
		pt.RetryDropped = rq.PendingMeasured()
	}
	// Count the fault/recovery events the run actually applied (whole-run
	// totals; a replay reproduces the origin's schedule and so these too).
	for _, rec := range eng.Events {
		switch rec.Kind {
		case fault.Fail:
			pt.Failed++
		case fault.Recover:
			pt.Recovered++
		}
	}
	return pt, nil
}

// LoadOptions configures a single one-shot load run.
type LoadOptions struct {
	Dims                   []int
	Lambda                 int
	Router                 string
	Pattern                string
	Process                string
	Rate                   float64
	Warmup, Measure, Drain int
	LinkRate, NodeCapacity int
	Congestion             route.CongestionConfig
	// FlightTimeout/RetryBackoff/Bubble/GridlockWindow configure the
	// deadlock-escape mechanisms; see the SaturationOptions fields of the
	// same names. On replay, FlightTimeout and GridlockWindow are inherited
	// from the trace wherever left zero, and Bubble is inherited when the
	// trace recorded it (there is no force-off override for a recorded
	// bubble run — re-record instead).
	FlightTimeout, RetryBackoff int
	Bubble                      bool
	GridlockWindow              int
	Faults, FaultInterval       int
	Clustered                   bool
	// FaultStart/FaultRate/FaultModel/FaultShape/FaultRepair configure the
	// fault overlay; see the SaturationOptions fields of the same names.
	FaultStart  int
	FaultRate   float64
	FaultModel  string
	FaultShape  float64
	FaultRepair float64
	// Shards is the intra-step shard-worker count (< 2 means serial); the
	// point is byte-identical for every value.
	Shards int
	// Probe, when non-nil, receives the run's per-step census (see
	// internal/probe and the SaturationOptions field of the same name);
	// ProbeEvery > 1 decimates the flush cadence. Read-only: the
	// LoadPoint is byte-identical with or without a probe.
	Probe      engine.Probe `json:"-"`
	ProbeEvery int
	Seed       uint64
	// Window > 0 switches the run to the closed-loop workload: every node
	// keeps up to Window requests outstanding and reinjects only when one
	// terminates. Rate and Process are ignored in closed-loop mode.
	Window int
	// Record, when non-nil, is filled with the run's offered workload,
	// fault schedule and metadata — a trace that Replay (or -trace-replay
	// on cmd/loadgen) reproduces byte-identically.
	Record *traffic.Trace `json:"-"`
	// Replay, when non-nil, replays a recorded workload instead of running
	// a live source: Dims, Rate, Window, the phase lengths and the fault
	// schedule are taken from the trace and override the corresponding
	// fields here; no randomness is consumed. The engine-side
	// configuration (Lambda, LinkRate, NodeCapacity) is inherited from
	// the trace wherever the caller leaves the field zero, so a plain
	// replay is byte-identical to the origin run's LoadPoint; set a field
	// (or Router/Congestion, which are never recorded) to deliberately
	// run the same offered workload under a different configuration.
	// Because 0 is NodeCapacity's meaningful "unbounded" value, forcing
	// unbounded buffers on the replay of a finite-capacity trace takes a
	// negative NodeCapacity.
	Replay *traffic.Trace `json:"-"`
	// Pool, when non-nil, serves the run from a shared reservoir of warm
	// simulations and returns the engine afterwards (see
	// SaturationOptions.Pool); Cancel aborts the run with ErrCanceled
	// when it returns true (polled every cancelCheckInterval steps).
	Pool   *EnginePool `json:"-"`
	Cancel func() bool `json:"-"`
}

// applyReplay resolves the trace-inheritance rules into opt: the trace is
// authoritative for the workload side (dims, rate/window, phase lengths,
// fault schedule), and the engine-side configuration is inherited for every
// field the caller left zero, so a plain replay reproduces the origin run
// byte-identically. Factored out of LoadRun so ReplayCompareSweep applies
// the identical rules — a replay behaves the same whichever entry point
// runs it. opt.Replay must be non-nil.
func (opt *LoadOptions) applyReplay() {
	tr := opt.Replay
	opt.Dims = append([]int(nil), tr.Dims...)
	opt.Rate = tr.Rate
	opt.Window = tr.Window
	opt.Warmup, opt.Measure, opt.Drain = tr.Warmup, tr.Measure, tr.Drain
	// The trace is the fault authority: a live overlay (either kind) on top
	// of it would double-fault the replay.
	opt.Faults = 0
	opt.FaultRate = 0
	if opt.Lambda == 0 {
		opt.Lambda = tr.Lambda
	}
	if opt.LinkRate == 0 {
		opt.LinkRate = tr.LinkRate
	}
	switch {
	case opt.NodeCapacity == 0:
		opt.NodeCapacity = tr.NodeCapacity
	case opt.NodeCapacity < 0:
		opt.NodeCapacity = 0 // explicit unbounded override
	}
	if opt.FlightTimeout == 0 {
		opt.FlightTimeout = tr.FlightTimeout
	}
	if opt.GridlockWindow == 0 {
		opt.GridlockWindow = tr.GridlockWindow
	}
	if tr.Bubble {
		opt.Bubble = true
	}
}

// LoadRun executes one contention-mode load run and returns its
// latency-throughput point — the single-cell convenience entry for
// library callers who want one point, not a sweep (cmd/loadgen goes
// through SaturationSweepWorkers for open-loop grids; the two paths
// produce identical points, pinned by TestLoadRunMatchesSweepCell).
func LoadRun(opt LoadOptions) (traffic.LoadPoint, error) {
	if opt.Replay != nil {
		if opt.Record == opt.Replay {
			// Aliasing the two would have the recorder truncate the very
			// offer stream the player is reading — refuse instead of
			// silently replaying (and re-recording) an empty workload.
			return traffic.LoadPoint{}, fmt.Errorf("ndmesh: Record and Replay must be distinct traces")
		}
		opt.applyReplay()
	}
	sopt := SaturationOptions{
		Dims: opt.Dims, Lambda: opt.Lambda,
		Routers: []string{opt.Router}, Patterns: []string{opt.Pattern},
		Rates: []float64{opt.Rate}, Process: opt.Process,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.NodeCapacity,
		Congestion:    opt.Congestion,
		FlightTimeout: opt.FlightTimeout, RetryBackoff: opt.RetryBackoff,
		Bubble: opt.Bubble, GridlockWindow: opt.GridlockWindow,
		Faults: opt.Faults, FaultInterval: opt.FaultInterval,
		Clustered: opt.Clustered, FaultStart: opt.FaultStart,
		FaultRate: opt.FaultRate, FaultModel: opt.FaultModel,
		FaultShape: opt.FaultShape, FaultRepair: opt.FaultRepair,
		Shards: opt.Shards,
		Probe:  opt.Probe, ProbeEvery: opt.ProbeEvery,
		Cancel: opt.Cancel,
	}
	if opt.Window > 0 || opt.Replay != nil {
		// Closed-loop and replay runs have no live arrival process to
		// validate rates against (a closed loop has no nominal rate at
		// all); only the run shape is checked.
		if opt.Router == "" {
			return traffic.LoadPoint{}, fmt.Errorf("ndmesh: load run needs a router")
		}
		if err := validateLoadShape(&sopt); err != nil {
			return traffic.LoadPoint{}, err
		}
	} else if err := validateSaturation(&sopt); err != nil {
		return traffic.LoadPoint{}, err
	}
	co := opt.Pool.checkout()
	defer co.release()
	pool := co.worker()
	r := rng.New(opt.Seed).Split() // match the sweep's per-job stream derivation
	wl := workload{pattern: opt.Pattern, rate: opt.Rate, window: opt.Window,
		replay: opt.Replay, record: opt.Record}
	if wl.window > 0 {
		wl.rate = 0
	}
	return pool.loadPoint(sopt, wl, opt.Router, r)
}
