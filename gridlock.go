package ndmesh

// This file is E22, the gridlock phase diagram: the closed-loop methodology
// of E21 pushed deliberately into its collapse regime — finite router
// buffers with windows past the buffer budget — and run as a controlled
// comparison of deadlock-escape mechanisms. For every (pattern, window,
// capacity, fault count) cell the four mechanism arms {none, retry, bubble,
// retry+bubble} replay the *identical* scenario (same fault overlay, same
// initial injection draws, byte-for-byte from value copies of the cell's
// rng-stream state), so any difference in delivered throughput, retries or
// time-to-recovery is attributable to the escape mechanism alone:
//
//   - none:         gridlock detection only (GridlockWindow). A deadlocked
//                   cell is detected, cut short and reported Gridlocked —
//                   the baseline that shows where the phase boundary lies.
//   - retry:        flight timeouts kill stalled flights back to their
//                   source, which re-offers them under exponential backoff
//                   (FlightTimeout + RetryBackoff).
//   - bubble:       bubble admission keeps >= 1 input-buffer slot free at
//                   injection, denying the buffer-cycle deadlock its last
//                   slot by construction.
//   - retry+bubble: both.
//
// The detection window is kept below the flight timeout so a cell that
// gridlocks under the retry arms still *detects* before the first kill
// frees it — that is what makes RecoverySteps (detection to first
// subsequent progress) a measurable time-to-recovery instead of zero.
//
// Determinism follows the repository contract: one rng stream is split per
// scenario cell in row order, each mechanism arm starts from a value copy
// of that stream's state, each job writes only its own result slots, and
// aggregation is serial — byte-identical for every worker and shard count.

import (
	"fmt"

	"ndmesh/internal/grid"
	"ndmesh/internal/par"
	"ndmesh/internal/route"
)

// GridlockMechanisms is the canonical escape-mechanism axis of the E22
// grid, in reporting order.
var GridlockMechanisms = []string{"none", "retry", "bubble", "retry+bubble"}

// GridlockOptions configures the E22 phase diagram: the cross product of
// Patterns x Windows x Capacities x FaultCounts, each cell run once per
// escape mechanism on an identical scenario.
type GridlockOptions struct {
	Dims   []int
	Lambda int
	// Router drives every arm (the phase diagram is about escape
	// mechanisms, not router choice; default "limited" — the backtracking
	// router with no deadlock avoidance of its own).
	Router   string
	Patterns []string
	// Windows is the closed-loop per-node outstanding bound; Capacities the
	// per-node input-queue depth (>= 2: bubble admission needs a slot to
	// keep free). The gridlock boundary lives where window x degree
	// pressure crosses the buffer budget.
	Windows    []int
	Capacities []int
	// FaultCounts is the dynamic-fault axis (0 = fault-free); each count
	// overlays a schedule FaultInterval steps apart.
	FaultCounts   []int
	FaultInterval int
	Clustered     bool
	// Mechanisms selects the escape-mechanism arms (default all four; see
	// GridlockMechanisms).
	Mechanisms             []string
	Warmup, Measure, Drain int
	LinkRate               int
	// FlightTimeout/RetryBackoff parameterize the retry arms;
	// GridlockWindow the detector (applied to every arm). Detection must
	// stay below the timeout or time-to-recovery collapses to zero.
	FlightTimeout, RetryBackoff, GridlockWindow int
	// Congestion tunes the "congested" router when Router selects it.
	Congestion route.CongestionConfig
	// Workers is the parallel fan-out width; < 1 means GOMAXPROCS. Shards
	// is the intra-step shard-worker count per run. Both leave the rows
	// byte-identical at every value.
	Workers, Shards int
	// Progress, when non-nil, is called after every completed scenario
	// cell (all its mechanism arms) with (done, total); must be safe for
	// concurrent use.
	Progress func(done, total int)
}

// DefaultGridlock returns the standard E22 configuration: an 8x8 mesh,
// uniform + transpose closed loops, windows straddling the buffer budget of
// capacities 2 and 4, a fault-free and a faulty column, and all four
// mechanism arms. Detection (8 dead steps) sits below the flight timeout
// (16 stalled steps) so detection precedes rescue. The window axis brackets
// the phase boundary: at window 1 most cells run free, by window 4 every
// finite-buffer cell is deep in the collapse regime where only the retry
// arms recover (bubble admission wins in the band in between, where
// gridlock develops from injection overpressure rather than the initial
// burst).
func DefaultGridlock() GridlockOptions {
	return GridlockOptions{
		Dims:           []int{8, 8},
		Lambda:         1,
		Router:         "limited",
		Patterns:       []string{"uniform", "transpose"},
		Windows:        []int{1, 2, 4},
		Capacities:     []int{2, 4},
		FaultCounts:    []int{0, 4},
		FaultInterval:  24,
		Mechanisms:     GridlockMechanisms,
		Warmup:         32,
		Measure:        192,
		Drain:          192,
		LinkRate:       1,
		FlightTimeout:  16,
		RetryBackoff:   4,
		GridlockWindow: 8,
	}
}

// GridlockRow is one (pattern, window, capacity, faults, mechanism) arm of
// the E22 grid.
type GridlockRow struct {
	Dims    string
	Pattern string
	Router  string
	// Window, Capacity and Faults locate the scenario cell; Mechanism names
	// the escape arm.
	Window, Capacity, Faults int
	Mechanism                string
	// Gridlocked marks terminal gridlock: the detector was still latched
	// when the run ended (the run is cut short, not spun to its budget).
	// GridlockStep is the 1-based step the detector first fired (0 =
	// never); RecoverySteps the steps from first detection to the first
	// subsequent progress (0 = never fired or never recovered).
	Gridlocked                  bool
	GridlockStep, RecoverySteps int
	// AcceptedRate is delivered messages per node-step over the measurement
	// window; the remaining counters classify the measured flights. Retried
	// counts timeout kills that re-armed a source slot.
	AcceptedRate                  float64
	Delivered, TimedOut, Retried  int
	Unreachable, Lost, Unfinished int
	LatMean                       float64
	LatP50, LatP99                int
}

// GridlockSweep runs the E22 phase diagram with all available cores.
func GridlockSweep(opt GridlockOptions, seed uint64) ([]GridlockRow, error) {
	opt.Workers = 0
	return gridlockSweep(opt, seed)
}

// GridlockSweepWorkers is GridlockSweep with an explicit worker count (each
// scenario cell — all its mechanism arms — is one parallel job).
func GridlockSweepWorkers(opt GridlockOptions, seed uint64, workers int) ([]GridlockRow, error) {
	opt.Workers = workers
	return gridlockSweep(opt, seed)
}

// gridlockMechanism resolves a mechanism name to its (timeout, bubble)
// switches.
func gridlockMechanism(name string) (timeout, bubble bool, err error) {
	switch name {
	case "none":
		return false, false, nil
	case "retry":
		return true, false, nil
	case "bubble":
		return false, true, nil
	case "retry+bubble":
		return true, true, nil
	}
	return false, false, fmt.Errorf("ndmesh: unknown escape mechanism %q (want none|retry|bubble|retry+bubble)", name)
}

func gridlockSweep(opt GridlockOptions, seed uint64) ([]GridlockRow, error) {
	if opt.Router == "" {
		opt.Router = "limited"
	}
	if len(opt.Mechanisms) == 0 {
		opt.Mechanisms = GridlockMechanisms
	}
	if len(opt.Patterns) == 0 || len(opt.Windows) == 0 || len(opt.Capacities) == 0 {
		return nil, fmt.Errorf("ndmesh: gridlock sweep needs at least one pattern, window and capacity")
	}
	if len(opt.FaultCounts) == 0 {
		opt.FaultCounts = []int{0}
	}
	for _, m := range opt.Mechanisms {
		if _, _, err := gridlockMechanism(m); err != nil {
			return nil, err
		}
	}
	for _, w := range opt.Windows {
		if w < 1 {
			return nil, fmt.Errorf("ndmesh: closed-loop window %d must be >= 1", w)
		}
	}
	for _, c := range opt.Capacities {
		if c < 2 {
			return nil, fmt.Errorf("ndmesh: gridlock sweep capacity %d must be >= 2 (bubble admission keeps one slot free)", c)
		}
	}
	if opt.FlightTimeout < 1 {
		return nil, fmt.Errorf("ndmesh: gridlock sweep needs FlightTimeout >= 1 (the retry arms have nothing to do without it)")
	}
	if opt.GridlockWindow < 1 {
		return nil, fmt.Errorf("ndmesh: gridlock sweep needs GridlockWindow >= 1 (without detection, a gridlocked 'none' arm spins to its budget)")
	}
	shape, err := grid.NewShape(opt.Dims...)
	if err != nil {
		return nil, err
	}
	// Validate the shared run shape once against a representative arm.
	probe := SaturationOptions{
		Dims: opt.Dims, Lambda: opt.Lambda,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.Capacities[0],
		Shards: opt.Shards,
	}
	if err := validateLoadShape(&probe); err != nil {
		return nil, err
	}
	opt.Lambda, opt.LinkRate, opt.Shards = probe.Lambda, probe.LinkRate, probe.Shards

	// One job per scenario cell (pattern-major, then window, capacity,
	// faults); the mechanism arms run inside the job from value copies of
	// the cell's stream state, so all arms face the identical scenario.
	nw, nc, nf, nm := len(opt.Windows), len(opt.Capacities), len(opt.FaultCounts), len(opt.Mechanisms)
	jobs := len(opt.Patterns) * nw * nc * nf
	rngs := splitN(seed, jobs)
	rows := make([]GridlockRow, jobs*nm)
	progress := progressCounter(opt.Progress, jobs)
	err = par.ForState(opt.Workers, jobs, newSimPool, func(p *simPool, j int) error {
		pattern := opt.Patterns[j/(nw*nc*nf)]
		window := opt.Windows[j/(nc*nf)%nw]
		capacity := opt.Capacities[j/nf%nc]
		faults := opt.FaultCounts[j%nf]
		for mi, mech := range opt.Mechanisms {
			timeout, bubble, err := gridlockMechanism(mech)
			if err != nil {
				return err
			}
			sopt := SaturationOptions{
				Dims: opt.Dims, Lambda: opt.Lambda,
				Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
				LinkRate: opt.LinkRate, NodeCapacity: capacity,
				Congestion:     opt.Congestion,
				GridlockWindow: opt.GridlockWindow,
				Bubble:         bubble,
				Faults:         faults, FaultInterval: opt.FaultInterval,
				Clustered: opt.Clustered,
				Shards:    opt.Shards,
			}
			if timeout {
				sopt.FlightTimeout = opt.FlightTimeout
				sopt.RetryBackoff = opt.RetryBackoff
			}
			stream := *rngs[j] // identical scenario for every arm
			pt, err := p.loadPoint(sopt, workload{pattern: pattern, window: window}, opt.Router, &stream)
			if err != nil {
				return err
			}
			rows[j*nm+mi] = GridlockRow{
				Dims:          shape.String(),
				Pattern:       pattern,
				Router:        opt.Router,
				Window:        window,
				Capacity:      capacity,
				Faults:        faults,
				Mechanism:     mech,
				Gridlocked:    pt.Gridlocked,
				GridlockStep:  pt.GridlockStep,
				RecoverySteps: pt.RecoverySteps,
				AcceptedRate:  pt.AcceptedRate,
				Delivered:     pt.Delivered,
				TimedOut:      pt.TimedOut,
				Retried:       pt.Retried,
				Unreachable:   pt.Unreachable,
				Lost:          pt.Lost,
				Unfinished:    pt.Unfinished,
				LatMean:       pt.Latency.Mean,
				LatP50:        pt.Latency.P50,
				LatP99:        pt.Latency.P99,
			}
		}
		progress()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
