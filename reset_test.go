package ndmesh

import (
	"reflect"
	"testing"

	"ndmesh/internal/route"
)

// TestResetEquivalence is the contract the sweeps' trial-reuse rests on: a
// Reset simulation must be observationally identical to a freshly
// constructed one — same routing results, same per-occurrence convergence
// log, same information placement — across dynamic scenarios that exercise
// every protocol layer (labeling, detection, identification, boundary
// floods, cancellation after recovery).
func TestResetEquivalence(t *testing.T) {
	cfg := Config{Dims: []int{14, 14}, Lambda: 2}
	type outcome struct {
		res     RouteResult
		events  []EventSummary
		records int
		nodes   int
		blocks  []Box
	}
	scenario := func(t *testing.T, sim *Simulation, seed uint64, router string) outcome {
		t.Helper()
		if err := sim.GenerateFaults(FaultPlan{
			Faults:       5,
			Interval:     9,
			Start:        2,
			RecoverAfter: 70,
			Avoid:        []Coord{C(1, 2), C(12, 11)},
			Seed:         seed,
		}); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Route(C(1, 2), C(12, 11), router)
		if err != nil {
			t.Fatal(err)
		}
		sim.Drain()
		return outcome{
			res:     res,
			events:  sim.Events(),
			records: sim.InfoRecords(),
			nodes:   sim.NodesWithInfo(),
			blocks:  sim.Blocks(),
		}
	}

	reused := MustSimulation(cfg)
	for seed := uint64(1); seed <= 6; seed++ {
		for _, router := range []string{"limited", "oracle", "blind"} {
			fresh := MustSimulation(cfg)
			want := scenario(t, fresh, seed, router)
			reused.Reset()
			got := scenario(t, reused, seed, router)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d router %s: reused simulation diverged\n got: %+v\nwant: %+v",
					seed, router, got, want)
			}
		}
	}
}

// TestResetAfterPartialRun resets mid-flight — schedule half-fired, message
// in the air, constructions converging — and checks the next trial is
// unaffected.
func TestResetAfterPartialRun(t *testing.T) {
	cfg := Config{Dims: []int{14, 14}, Lambda: 1}
	reused := MustSimulation(cfg)
	if err := reused.GenerateFaults(FaultPlan{Faults: 6, Interval: 5, Start: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := reused.eng().Inject(reused.shape.Index(C(1, 1)), reused.shape.Index(C(12, 12)), route.Limited{}); err != nil {
		t.Fatal(err)
	}
	reused.RunSteps(11) // mid-schedule, mid-flight, mid-construction
	reused.Reset()

	fresh := MustSimulation(cfg)
	for _, sim := range []*Simulation{fresh, reused} {
		if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 30, Start: 2, Seed: 9}); err != nil {
			t.Fatal(err)
		}
	}
	wantRes, err := fresh.Route(C(2, 2), C(11, 12), "limited")
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := reused.Route(C(2, 2), C(11, 12), "limited")
	if err != nil {
		t.Fatal(err)
	}
	if gotRes != wantRes {
		t.Errorf("post-reset route diverged: got %+v want %+v", gotRes, wantRes)
	}
	fresh.Drain()
	reused.Drain()
	if !reflect.DeepEqual(reused.Events(), fresh.Events()) {
		t.Errorf("post-reset events diverged:\n got %+v\nwant %+v", reused.Events(), fresh.Events())
	}
}
