package ndmesh

import (
	"fmt"
	"reflect"
	"testing"

	"ndmesh/internal/engine"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
	"ndmesh/internal/traffic"
)

// smallClosedLoop is the quick E21 grid used by the determinism and golden
// tests: two patterns, three windows, one router on a 6x6 mesh.
func smallClosedLoop() ClosedLoopOptions {
	opt := DefaultClosedLoop()
	opt.Dims = []int{6, 6}
	opt.Patterns = []string{"uniform", "transpose"}
	opt.Windows = []int{1, 4, 16}
	opt.Warmup, opt.Measure, opt.Drain = 16, 48, 64
	return opt
}

// TestParallelClosedLoopSweepDeterministic extends the repository's
// determinism contract to E21: byte-identical rows for every worker count
// (run under -race in CI to certify the fan-out shares no mutable state).
func TestParallelClosedLoopSweepDeterministic(t *testing.T) {
	opt := smallClosedLoop()
	serial, err := ClosedLoopSweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := ClosedLoopSweepWorkers(opt, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

// TestShardedClosedLoopSweepDeterministic is the E21 row of the shard
// matrix: the closed loop's delivery-releases-slot feedback runs through
// the engine's harvest pass, so the rows must stay byte-identical at every
// intra-step shard count too.
func TestShardedClosedLoopSweepDeterministic(t *testing.T) {
	opt := smallClosedLoop()
	serial, err := ClosedLoopSweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		opt.Shards = s
		for _, w := range []int{1, 3} {
			got, err := ClosedLoopSweepWorkers(opt, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("shards=%d workers=%d:\n got %+v\nwant %+v", s, w, got, serial)
			}
		}
	}
}

// TestGoldenClosedLoopSweep pins one E21 run byte-for-byte at a fixed
// seed: the rng split discipline, the closed loop's draw/retry/release
// accounting, the contention arbitration and the router's decisions all
// feed these strings. If a deliberate change to any of those is made,
// recapture in the same commit and say so.
func TestGoldenClosedLoopSweep(t *testing.T) {
	rows, err := ClosedLoopSweepWorkers(smallClosedLoop(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenClosedLoopRows
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if got := fmt.Sprintf("%+v", r); got != want[i] {
			t.Errorf("row %d:\n got %s\nwant %s", i, got, want[i])
		}
	}
}

// TestClosedLoopCurveShape is E21's behavioral acceptance: delivered
// throughput rises with the window and saturates, latency grows with the
// window (Little's law: a bigger standing population must queue), and a
// closed loop never drops.
func TestClosedLoopCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop curve run is a few hundred thousand flight-steps")
	}
	opt := DefaultClosedLoop()
	opt.Patterns = []string{"uniform"}
	rows, err := ClosedLoopSweep(opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Delivered == 0 {
			t.Fatalf("window %d delivered nothing", r.Window)
		}
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		if r.AcceptedRate < prev.AcceptedRate*0.98 {
			t.Errorf("throughput fell with window: %.3f@w=%d < %.3f@w=%d",
				r.AcceptedRate, r.Window, prev.AcceptedRate, prev.Window)
		}
		if r.LatMean <= prev.LatMean {
			t.Errorf("latency not growing with window: %.2f@w=%d <= %.2f@w=%d",
				r.LatMean, r.Window, prev.LatMean, prev.Window)
		}
	}
	// Saturation: the last window doubling buys almost no throughput.
	last, prev := rows[len(rows)-1], rows[len(rows)-2]
	if ratio := last.AcceptedRate / prev.AcceptedRate; ratio > 1.15 {
		t.Errorf("no saturation: accepted %.3f@w=%d vs %.3f@w=%d",
			last.AcceptedRate, last.Window, prev.AcceptedRate, prev.Window)
	}
}

// TestClosedLoopConservation steps a closed-loop run by hand and checks
// the bookkeeping every step: no node ever exceeds its window, the
// source's in-flight count equals the engine's active flight population,
// and injected == delivered + unreachable + lost + in-flight.
func TestClosedLoopConservation(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 12, Start: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	eng := sim.eng()
	// Finite buffers so admission refusals exercise the defer-and-retry
	// path (capacity must exceed the window, or the initial burst fills
	// every buffer and the mesh gridlocks from step 0); faults so terminal
	// outcomes other than Delivered release too.
	eng.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 5})
	defer eng.DisableContention()
	shape := sim.gridShape()
	pat, err := traffic.ByName(shape, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	const window = 3
	cl := traffic.NewClosedLoop(shape, pat, window, rng.New(5))
	fab := sim.fabric()

	injected, delivered, unreachable, lost := 0, 0, 0, 0
	emit := func(src, dst grid.NodeID) bool {
		if fab.Status(src) != mesh.Enabled || !eng.Admit(src) {
			return false
		}
		if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
			t.Fatal(err)
		}
		injected++
		return true
	}
	for step := 0; step < 96; step++ {
		cl.Step(emit)
		eng.Step()
		eng.DetachDone(func(fl *engine.Flight) {
			switch {
			case fl.Msg.Arrived:
				delivered++
			case fl.Msg.Unreachable:
				unreachable++
			case fl.Msg.Lost:
				lost++
			default:
				t.Fatalf("step %d: detached flight in non-terminal state", step)
			}
			cl.Release(fl.Msg.Src)
		})
		for node := 0; node < shape.NumNodes(); node++ {
			if out := cl.Outstanding(node); out < 0 || out > window {
				t.Fatalf("step %d: node %d outstanding %d outside [0, %d]", step, node, out, window)
			}
		}
		if got, want := cl.InFlight(), len(eng.Flights()); got != want {
			t.Fatalf("step %d: closed loop tracks %d in flight, engine holds %d", step, got, want)
		}
		if injected != delivered+unreachable+lost+cl.InFlight() {
			t.Fatalf("step %d: conservation broken: injected %d != delivered %d + unreachable %d + lost %d + in-flight %d",
				step, injected, delivered, unreachable, lost, cl.InFlight())
		}
	}
	if delivered == 0 {
		t.Fatal("run delivered nothing; the test lost its teeth")
	}
	if unreachable+lost == 0 {
		t.Log("note: no non-delivered terminals occurred; fault-release path not exercised this seed")
	}
}

// TestClosedLoopStepAllocFree extends the hot-path allocation guarantee to
// the closed-loop workload: once the windows are primed and the flight
// free list is warm, a full closed-loop step — draws, injections,
// contention step, harvest with slot release — allocates nothing.
func TestClosedLoopStepAllocFree(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{LinkRate: 1})
	defer eng.DisableContention()
	shape := sim.gridShape()
	pat, err := traffic.ByName(shape, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	cl := traffic.NewClosedLoop(shape, pat, 4, rng.New(1))
	emit := func(src, dst grid.NodeID) bool {
		if !eng.Admit(src) {
			return false
		}
		if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
			t.Fatal(err)
		}
		return true
	}
	release := func(fl *engine.Flight) { cl.Release(fl.Msg.Src) }
	step := func() {
		cl.Step(emit)
		eng.Step()
		eng.DetachDone(release)
	}
	for i := 0; i < 256; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Errorf("closed-loop steady-state step allocates %.1f/op, want 0", allocs)
	}
}

// TestEscapeClosedLoopStepAllocFree pins the PR's steady-state allocation
// guarantee with every escape mechanism live: tight buffers in the gridlock
// regime, flights timing out, the closed loop re-arming slots under
// jittered backoff, bubble admission gating injection and the detector
// latching and unlatching — a full step of all that allocates nothing once
// the free lists are warm.
func TestEscapeClosedLoopStepAllocFree(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{
		LinkRate: 1, NodeCapacity: 3,
		FlightTimeout: 4, GridlockWindow: 4, Bubble: true,
	})
	defer eng.DisableContention()
	shape := sim.gridShape()
	pat, err := traffic.ByName(shape, "transpose")
	if err != nil {
		t.Fatal(err)
	}
	cl := traffic.NewClosedLoop(shape, pat, 4, rng.New(1))
	cl.ConfigureRetry(2)
	emit := func(src, dst grid.NodeID) bool {
		if !eng.Admit(src) {
			return false
		}
		if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
			t.Fatal(err)
		}
		return true
	}
	harvest := func(fl *engine.Flight) {
		if fl.Msg.TimedOut {
			cl.Timeout(fl.Msg.Src)
		} else {
			cl.Release(fl.Msg.Src)
		}
	}
	step := func() {
		cl.Step(emit)
		eng.Step()
		eng.DetachDone(harvest)
	}
	for i := 0; i < 256; i++ {
		step()
	}
	if cl.Retried() == 0 {
		t.Fatal("no retries after warmup; the escape path is not being exercised")
	}
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Errorf("escape-mechanism steady-state step allocates %.1f/op, want 0", allocs)
	}
}

// TestTraceRecordReplayIdentical is the trace subsystem's acceptance
// criterion: a recorded run — open-loop under faults, and closed-loop —
// replays through the binary format to a byte-identical LoadPoint.
func TestTraceRecordReplayIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  LoadOptions
	}{
		{"open-loop-faults", LoadOptions{
			Dims: []int{6, 6}, Router: "limited", Pattern: "uniform",
			Rate: 0.2, Warmup: 16, Measure: 48, Drain: 48,
			NodeCapacity: 4, Faults: 3, FaultInterval: 10, Seed: 11,
		}},
		{"closed-loop", LoadOptions{
			Dims: []int{6, 6}, Router: "limited", Pattern: "transpose",
			Window: 4, Warmup: 16, Measure: 48, Drain: 48,
			NodeCapacity: 4, Seed: 11,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.opt
			opt.Record = &traffic.Trace{}
			live, err := LoadRun(opt)
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip the trace through its binary encoding, then replay
			// with only the engine configuration carried over.
			tr, err := traffic.UnmarshalTrace(opt.Record.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			// Only the router is carried over: the engine configuration
			// (capacity, link rate, lambda) must be inherited from the
			// trace itself.
			replayed, err := LoadRun(LoadOptions{Router: tc.opt.Router, Replay: tr})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(replayed, live) {
				t.Errorf("replay diverged from live run:\n live   %+v\n replay %+v", live, replayed)
			}
		})
	}
}

// TestTraceReRecordKeepsFaults pins re-recording: recording while
// replaying must carry the origin's fault schedule into the new trace, so
// a re-recorded copy still replays byte-identically.
func TestTraceReRecordKeepsFaults(t *testing.T) {
	orig := &traffic.Trace{}
	live, err := LoadRun(LoadOptions{
		Dims: []int{6, 6}, Router: "limited", Pattern: "uniform",
		Rate: 0.2, Warmup: 16, Measure: 48, Drain: 48,
		NodeCapacity: 4, Faults: 3, FaultInterval: 10, Seed: 11, Record: orig,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Faults) == 0 {
		t.Fatal("origin trace recorded no faults; the test lost its teeth")
	}
	rerec := &traffic.Trace{}
	if _, err := LoadRun(LoadOptions{Router: "limited", Replay: orig, Record: rerec}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRun(LoadOptions{Router: "limited", Replay: orig, Record: orig}); err == nil {
		t.Fatal("aliased Record == Replay accepted; the recorder would destroy the trace mid-replay")
	}
	if !reflect.DeepEqual(rerec.Faults, orig.Faults) {
		t.Fatalf("re-recorded trace lost the fault schedule:\n got %v\nwant %v", rerec.Faults, orig.Faults)
	}
	replayed, err := LoadRun(LoadOptions{Router: "limited", Replay: rerec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, live) {
		t.Errorf("replay of the re-recorded trace diverged:\n live   %+v\n replay %+v", live, replayed)
	}
}

// TestTraceReplayAcrossRouters pins the controlled-comparison property the
// trace format exists for: the same recorded workload replays against
// different routers, each seeing the identical offered stream (equal
// measured offer counts), with only the network's response differing.
func TestTraceReplayAcrossRouters(t *testing.T) {
	rec := &traffic.Trace{}
	if _, err := LoadRun(LoadOptions{
		Dims: []int{6, 6}, Router: "limited", Pattern: "transpose",
		Rate: 0.25, Warmup: 16, Measure: 48, Drain: 48,
		NodeCapacity: 4, Seed: 3, Record: rec,
	}); err != nil {
		t.Fatal(err)
	}
	pts := map[string]traffic.LoadPoint{}
	for _, router := range []string{"limited", "congested", "blind"} {
		pt, err := LoadRun(LoadOptions{Router: router, Replay: rec})
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		pts[router] = pt
	}
	base := pts["limited"]
	for router, pt := range pts {
		if pt.Offered != base.Offered {
			t.Errorf("%s saw %d measured offers, limited saw %d — the workload is not controlled",
				router, pt.Offered, base.Offered)
		}
		if pt.Delivered == 0 {
			t.Errorf("%s delivered nothing under the replayed workload", router)
		}
	}
}

// TestTraceReplayExplicitUnbounded pins the one engine knob where zero is
// meaningful: a negative NodeCapacity on a replay forces unbounded buffers
// instead of inheriting the trace's finite capacity (zero inherits).
func TestTraceReplayExplicitUnbounded(t *testing.T) {
	rec := &traffic.Trace{}
	live, err := LoadRun(LoadOptions{
		Dims: []int{6, 6}, Router: "limited", Pattern: "uniform",
		Rate: 0.3, Warmup: 16, Measure: 48, Drain: 48,
		NodeCapacity: 2, Seed: 7, Record: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.Dropped == 0 {
		t.Fatal("capacity-2 run dropped nothing; the test lost its teeth")
	}
	inherited, err := LoadRun(LoadOptions{Router: "limited", Replay: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inherited, live) {
		t.Errorf("zero-capacity replay did not inherit the trace's capacity:\n live   %+v\n replay %+v", live, inherited)
	}
	unbounded, err := LoadRun(LoadOptions{Router: "limited", NodeCapacity: -1, Replay: rec})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Dropped != 0 {
		t.Errorf("explicit-unbounded replay still dropped %d at the source", unbounded.Dropped)
	}
}

// TestLoadRunReplayOverridesMismatchedOptions pins the precedence rule:
// the trace is authoritative for the workload-side options, so a caller
// passing stale dims/rates with a Replay gets the trace's values.
func TestLoadRunReplayOverridesMismatchedOptions(t *testing.T) {
	rec := &traffic.Trace{}
	live, err := LoadRun(LoadOptions{
		Dims: []int{6, 6}, Router: "limited", Pattern: "uniform",
		Rate: 0.15, Warmup: 8, Measure: 24, Drain: 24, Seed: 2, Record: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := LoadRun(LoadOptions{
		Dims: []int{9, 9}, Router: "limited", Pattern: "hotspot",
		Rate: 0.9, Warmup: 1, Measure: 1, Drain: 0,
		Faults: 5, FaultInterval: 2, // must be ignored: the trace is fault-free
		Replay: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, live) {
		t.Errorf("replay with mismatched options diverged:\n live   %+v\n replay %+v", live, replayed)
	}
}

// goldenClosedLoopRows is the pinned output of TestGoldenClosedLoopSweep
// (smallClosedLoop at seed 7, serial).
var goldenClosedLoopRows = []string{
	"{Dims:6x6 mesh Pattern:uniform Router:limited Window:1 InjectedRate:0.22858796296296297 AcceptedRate:0.22858796296296297 Injected:395 Delivered:395 Unreachable:0 Lost:0 Unfinished:0 LatMean:4.367088607594938 LatP50:4 LatP95:8 LatP99:9 LatMax:9}",
	"{Dims:6x6 mesh Pattern:uniform Router:limited Window:4 InjectedRate:0.5271990740740741 AcceptedRate:0.5271990740740741 Injected:911 Delivered:911 Unreachable:0 Lost:0 Unfinished:0 LatMean:7.540065861690448 LatP50:7 LatP95:16 LatP99:18 LatMax:20}",
	"{Dims:6x6 mesh Pattern:uniform Router:limited Window:16 InjectedRate:0.6452546296296297 AcceptedRate:0.6452546296296297 Injected:1115 Delivered:1115 Unreachable:0 Lost:0 Unfinished:0 LatMean:24.84215246636769 LatP50:27 LatP95:39 LatP99:42 LatMax:46}",
	"{Dims:6x6 mesh Pattern:transpose Router:limited Window:1 InjectedRate:0.24074074074074073 AcceptedRate:0.24074074074074073 Injected:416 Delivered:416 Unreachable:0 Lost:0 Unfinished:0 LatMean:4.139423076923079 LatP50:4 LatP95:8 LatP99:10 LatMax:10}",
	"{Dims:6x6 mesh Pattern:transpose Router:limited Window:4 InjectedRate:0.3425925925925926 AcceptedRate:0.3425925925925926 Injected:592 Delivered:592 Unreachable:0 Lost:0 Unfinished:0 LatMean:11.702702702702709 LatP50:11 LatP95:22 LatP99:24 LatMax:25}",
	"{Dims:6x6 mesh Pattern:transpose Router:limited Window:16 InjectedRate:0.3744212962962963 AcceptedRate:0.3385416666666667 Injected:647 Delivered:585 Unreachable:0 Lost:0 Unfinished:62 LatMean:42.30769230769233 LatP50:40 LatP95:86 LatP99:88 LatMax:88}",
}
