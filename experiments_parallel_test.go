package ndmesh

import (
	"reflect"
	"testing"
)

// These tests pin the parallel experiment engine's determinism guarantee:
// for a fixed seed, every sweep must produce results identical to the
// serial path (workers=1) at any worker count. Run them under -race (CI
// does) to also certify the fan-out shares no mutable state.

var parWorkerCounts = []int{2, 3, 8}

func TestParallelTheoremSweepDeterministic(t *testing.T) {
	serial, err := TheoremSweepWorkers([]int{12, 12}, 10, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := TheoremSweepWorkers([]int{12, 12}, 10, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Errorf("workers=%d: %+v != serial %+v", w, got, serial)
		}
	}
}

func TestParallelDegradationSweepDeterministic(t *testing.T) {
	opt := DefaultDegradation()
	opt.Dims = []int{12, 12}
	opt.Trials = 4
	opt.Intervals = []int{4, 32}
	opt.Workers = 1
	serial, err := DegradationSweep(opt, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		opt.Workers = w
		got, err := DegradationSweep(opt, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

func TestParallelConvergenceSweepDeterministic(t *testing.T) {
	shapes := [][]int{{12, 12}, {8, 8, 8}, {14, 14}}
	serial, err := ConvergenceSweepWorkers(shapes, 3, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := ConvergenceSweepWorkers(shapes, 3, 11, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

func TestParallelLambdaSweepDeterministic(t *testing.T) {
	serial, err := LambdaSweepWorkers([]int{12, 12}, []int{1, 4}, 4, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := LambdaSweepWorkers([]int{12, 12}, []int{1, 4}, 4, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

func TestParallelMemorySweepDeterministic(t *testing.T) {
	shapes := [][]int{{12, 12}, {8, 8, 8}}
	serial, err := MemorySweepWorkers(shapes, []int{2, 4}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := MemorySweepWorkers(shapes, []int{2, 4}, 3, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

func TestParallelOscillationSweepDeterministic(t *testing.T) {
	serial, err := OscillationSweepWorkers([]int{12, 12}, 4, []int{4, 12}, 3, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := OscillationSweepWorkers([]int{12, 12}, 4, []int{4, 12}, 3, 9, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

func TestParallelTrafficSweepDeterministic(t *testing.T) {
	serial, err := TrafficSweepWorkers([]int{14, 14}, 8, 4, 10, 21, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := TrafficSweepWorkers([]int{14, 14}, 8, 4, 10, 21, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}
