package ndmesh

import (
	"fmt"
	"reflect"
	"testing"
)

// smallCongestionShift is the quick E20 grid used by the determinism and
// golden tests: a 6x6 mesh with finite buffers, one underloaded and one
// past-collapse rate per pattern.
func smallCongestionShift() CongestionShiftOptions {
	opt := DefaultCongestionShift()
	opt.Dims = []int{6, 6}
	opt.Rates = []float64{0.2, 0.45}
	opt.NodeCapacity = 6
	opt.Warmup, opt.Measure, opt.Drain = 16, 64, 64
	return opt
}

// TestParallelCongestionShiftDeterministic extends the repository's
// determinism contract to E20: byte-identical rows and summaries for every
// worker count (run under -race in CI to certify the fan-out shares no
// mutable state).
func TestParallelCongestionShiftDeterministic(t *testing.T) {
	opt := smallCongestionShift()
	serialRows, serialSums, err := CongestionShiftSweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		rows, sums, err := CongestionShiftSweepWorkers(opt, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, serialRows) {
			t.Errorf("workers=%d rows:\n got %+v\nwant %+v", w, rows, serialRows)
		}
		if !reflect.DeepEqual(sums, serialSums) {
			t.Errorf("workers=%d summaries:\n got %+v\nwant %+v", w, sums, serialSums)
		}
	}
}

// TestGoldenCongestionShiftSweep pins one E20 run byte-for-byte at a fixed
// seed. Both routers replay identical scenarios inside each cell, so these
// strings double as a regression net over the whole stack: the rng split
// discipline, the traffic generator, the contention arbitration, the
// LoadView rotation and both routers' decisions. If a deliberate change to
// any of those is made, recapture in the same commit and say so.
func TestGoldenCongestionShiftSweep(t *testing.T) {
	rows, sums, err := CongestionShiftSweepWorkers(smallCongestionShift(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{
		"{Dims:6x6 mesh Pattern:uniform OfferedRate:0.2 LimitedAccepted:0.2035590277777778 CongestedAccepted:0.2035590277777778 LimitedDropped:0 CongestedDropped:0 LimitedUnfinished:0 CongestedUnfinished:0 LimitedLatMean:4.249466950959483 CongestedLatMean:4.238805970149254 LimitedLatP99:9 CongestedLatP99:9}",
		"{Dims:6x6 mesh Pattern:uniform OfferedRate:0.45 LimitedAccepted:0.4361979166666667 CongestedAccepted:0.4314236111111111 LimitedDropped:9 CongestedDropped:20 LimitedUnfinished:0 CongestedUnfinished:0 LimitedLatMean:5.606965174129354 CongestedLatMean:5.617706237424548 LimitedLatP99:11 CongestedLatP99:11}",
		"{Dims:6x6 mesh Pattern:transpose OfferedRate:0.2 LimitedAccepted:0.19270833333333334 CongestedAccepted:0.1935763888888889 LimitedDropped:2 CongestedDropped:0 LimitedUnfinished:0 CongestedUnfinished:0 LimitedLatMean:5.972972972972973 CongestedLatMean:4.876681614349775 LimitedLatP99:15 CongestedLatP99:10}",
		"{Dims:6x6 mesh Pattern:transpose OfferedRate:0.45 LimitedAccepted:0.029079861111111112 CongestedAccepted:0.16145833333333334 LimitedDropped:755 CongestedDropped:451 LimitedUnfinished:209 CongestedUnfinished:208 LimitedLatMean:12.671641791044776 CongestedLatMean:10.744623655913976 LimitedLatP99:25 CongestedLatP99:24}",
	}
	wantSums := []string{
		"{Pattern:uniform LimitedSatRate:0.45 CongestedSatRate:0.45 LimitedSatAccepted:0.4361979166666667 CongestedSatAccepted:0.4314236111111111 ShiftPct:-1.0945273631840853}",
		"{Pattern:transpose LimitedSatRate:0.2 CongestedSatRate:0.2 LimitedSatAccepted:0.19270833333333334 CongestedSatAccepted:0.1935763888888889 ShiftPct:0.45045045045044885}",
	}
	if len(rows) != len(wantRows) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantRows))
	}
	for i, r := range rows {
		if got := fmt.Sprintf("%+v", r); got != wantRows[i] {
			t.Errorf("row %d:\n got %s\nwant %s", i, got, wantRows[i])
		}
	}
	if len(sums) != len(wantSums) {
		t.Fatalf("got %d summaries, want %d", len(sums), len(wantSums))
	}
	for i, s := range sums {
		if got := fmt.Sprintf("%+v", s); got != wantSums[i] {
			t.Errorf("summary %d:\n got %s\nwant %s", i, got, wantSums[i])
		}
	}
}

// TestCongestionShiftAtSaturation is the acceptance criterion of the
// congestion-aware routing layer: on the fault-free 8x8 grid of the
// default E20 configuration, the congested router's accepted throughput at
// its saturation point is at least the limited router's — and measurably
// above it — for the uniform pattern (and transpose rides along). The run
// is deterministic at the fixed seed, so the exact comparison cannot
// flake.
func TestCongestionShiftAtSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("full E20 grid is a few million flight-steps")
	}
	_, sums, err := CongestionShiftSweep(DefaultCongestionShift(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if s.CongestedSatAccepted < s.LimitedSatAccepted {
			t.Errorf("%s: congested saturation throughput %.4f below limited %.4f",
				s.Pattern, s.CongestedSatAccepted, s.LimitedSatAccepted)
		}
		if s.ShiftPct <= 1 {
			t.Errorf("%s: saturation shift %.2f%% not measurable (want > 1%%)", s.Pattern, s.ShiftPct)
		}
	}
}

// TestCongestedRouteMatchesLimitedWithoutContention pins the facade-level
// fallback: outside contention mode (the default Simulation configuration)
// routing with "congested" produces the identical RouteResult to
// "limited" on the same scenario — the LoadView reads zero everywhere and
// no stall ever happens.
func TestCongestedRouteMatchesLimitedWithoutContention(t *testing.T) {
	mk := func(router string) RouteResult {
		sim := MustSimulation(Config{Dims: []int{10, 10}})
		if err := sim.GenerateFaults(FaultPlan{Faults: 4, Interval: 6, Start: 2, Seed: 5,
			Avoid: []Coord{C(1, 1), C(8, 8)}}); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Route(C(1, 1), C(8, 8), router)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lim, cong := mk("limited"), mk("congested")
	if lim != cong {
		t.Errorf("contention-free routing diverged:\nlimited   %+v\ncongested %+v", lim, cong)
	}
}
