package ndmesh

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"ndmesh/internal/rng"
)

// shardCounts is the intra-step determinism matrix, mirroring
// parWorkerCounts for the across-cell fan-out: serial, even split, a
// count that does not divide the node grid, and whatever the host offers.
var shardCounts = []int{1, 2, 7, runtime.GOMAXPROCS(0)}

// TestShardedSaturationSweepDeterministic extends the repository's
// byte-identical contract inside a step: E19 rows must be identical at
// every shard count (run under -race in CI, certifying the propose
// fan-out shares no mutable state). Shards compose with Workers, so the
// matrix crosses both axes once.
func TestShardedSaturationSweepDeterministic(t *testing.T) {
	opt := smallSaturation()
	opt.Routers = []string{"limited", "congested"}
	serial, err := SaturationSweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		opt.Shards = s
		for _, w := range []int{1, 3} {
			got, err := SaturationSweepWorkers(opt, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("shards=%d workers=%d:\n got %+v\nwant %+v", s, w, got, serial)
			}
		}
	}
}

// TestShardedCongestionShiftDeterministic is the E20 row of the matrix:
// the controlled limited-vs-congested comparison — including the
// non-step-stable congested router's serial-decide fallback — must be
// byte-identical at every shard count.
func TestShardedCongestionShiftDeterministic(t *testing.T) {
	opt := DefaultCongestionShift()
	opt.Dims = []int{6, 6}
	opt.Rates = []float64{0.15, 0.4}
	opt.Warmup, opt.Measure, opt.Drain = 16, 48, 48
	opt.NodeCapacity = 4
	opt.Workers = 1
	serialRows, serialSums, err := CongestionShiftSweepWorkers(opt, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		opt.Shards = s
		rows, sums, err := CongestionShiftSweepWorkers(opt, 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, serialRows) || !reflect.DeepEqual(sums, serialSums) {
			t.Errorf("shards=%d: E20 diverged from serial\n got %+v / %+v\nwant %+v / %+v",
				s, rows, sums, serialRows, serialSums)
		}
	}
}

// TestLoadPointLeavesEngineClean pins the backlog-cleanup fix: after every
// load point — deep underload, past saturation (standing backlog survives
// the drain), and a sharded run — the pooled engine must come back with no
// attached flights and an all-zero residency census. Before the fix the
// backlog stayed attached with its residency counted, and only
// simPool.get's Reset rescued the next cell.
func TestLoadPointLeavesEngineClean(t *testing.T) {
	opt := smallSaturation()
	pool := newSimPool()
	for _, tc := range []struct {
		name   string
		rate   float64
		shards int
		drain  int
	}{
		{"underload", 0.05, 1, opt.Drain},
		{"past-saturation", 0.5, 1, 8}, // short drain: backlog guaranteed
		{"past-saturation-sharded", 0.5, 5, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := opt
			o.Drain = tc.drain
			o.Shards = tc.shards
			pt, err := pool.loadPoint(o, workload{pattern: "uniform", rate: tc.rate}, "limited", rng.New(3).Split())
			if err != nil {
				t.Fatal(err)
			}
			if tc.name != "underload" && pt.Unfinished == 0 {
				t.Fatal("past-saturation cell left no backlog; the test lost its teeth")
			}
			sim, ok := pool.sims[simKey{fmt.Sprint(o.Dims), o.Lambda}]
			if !ok {
				t.Fatal("pooled simulation missing")
			}
			eng := sim.eng()
			if n := len(eng.Flights()); n != 0 {
				t.Errorf("%d flights still attached after load point", n)
			}
			for id, r := range eng.ResidencyCensus() {
				if r != 0 {
					t.Errorf("node %d residency %d after load point, want 0", id, r)
				}
			}
			if eng.ContentionEnabled() {
				t.Error("contention still enabled after load point")
			}
			if eng.Shards() != 1 {
				t.Errorf("shard workers still configured after load point (%d)", eng.Shards())
			}
		})
	}
}
