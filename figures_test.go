package ndmesh

// This file pins every figure and the notation table of the paper to an
// executable check through the public API (experiments E1-E8 of DESIGN.md).
// The internal packages carry finer-grained versions; these tests are the
// top-level index entries.

import (
	"strings"
	"testing"
)

// fig1Sim builds the paper's running example: faults (3,5,4), (4,5,4),
// (5,5,3), (3,6,3) in a 10x10x10 mesh, stabilized.
func fig1Sim(t *testing.T) *Simulation {
	t.Helper()
	sim, err := NewSimulation(Config{Dims: []int{10, 10, 10}, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Coord{C(3, 5, 4), C(4, 5, 4), C(5, 5, 3), C(3, 6, 3)} {
		if err := sim.FailNow(c); err != nil {
			t.Fatal(err)
		}
	}
	sim.Stabilize()
	return sim
}

// TestFigure1 (E1): the faulty block of Figure 1(a) forms exactly.
func TestFigure1(t *testing.T) {
	sim := fig1Sim(t)
	blocks := sim.Blocks()
	if len(blocks) != 1 {
		t.Fatalf("blocks = %v", blocks)
	}
	if got := blocks[0].String(); got != "[3:5, 5:6, 3:4]" {
		t.Fatalf("block = %s, want [3:5, 5:6, 3:4]", got)
	}
}

// TestFigure2 (E2): the 3-level corner example of Figure 2 — (6,4,5) with
// edge neighbors (5,4,5), (6,5,5), (6,4,4) — holds in the stabilized frame
// announcements (checked in internal/frame; here we check the corner holds
// the block's record, which only corners/frame/boundary nodes do).
func TestFigure2(t *testing.T) {
	sim := fig1Sim(t)
	id, err := sim.NodeAt(C(6, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	recs := sim.store().At(id)
	if len(recs) == 0 {
		t.Fatal("3-level corner holds no block record")
	}
	if got := recs[0].Box.String(); got != "[3:5, 5:6, 3:4]" {
		t.Fatalf("corner record = %s", got)
	}
}

// TestFigure3 (E3): boundary placement — the walls of Figure 3 carry the
// block record; nodes inside the dangerous area do not.
func TestFigure3(t *testing.T) {
	sim := fig1Sim(t)
	// (4,2,3): inside the -Y shadow (x,z within span, y below): no record.
	inShadow, _ := sim.NodeAt(C(4, 2, 3))
	if len(sim.store().At(inShadow)) != 0 {
		t.Error("shadow interior should hold no record")
	}
	// (2,2,3): on the x=lo-1 wall below the block: record present.
	onWall, _ := sim.NodeAt(C(2, 2, 3))
	if len(sim.store().At(onWall)) == 0 {
		t.Error("wall node should hold the record")
	}
	// (2,9,4): the wall continues on the +Y side up to the border.
	above, _ := sim.NodeAt(C(2, 9, 4))
	if len(sim.store().At(above)) == 0 {
		t.Error("+Y wall node should hold the record")
	}
}

// TestFigure4 (E4): the recovery of (5,5,3) shrinks the block to
// [3:4, 5:6, 3:4] and the information follows.
func TestFigure4(t *testing.T) {
	sim := fig1Sim(t)
	if err := sim.RecoverNow(C(5, 5, 3)); err != nil {
		t.Fatal(err)
	}
	sim.Stabilize()
	blocks := sim.Blocks()
	if len(blocks) != 1 || blocks[0].String() != "[3:4, 5:6, 3:4]" {
		t.Fatalf("blocks after recovery = %v", blocks)
	}
	// The old block's boundary on the x=6 side must be gone: (6,2,3) was
	// a wall node of [3:5,...] but is not on [3:4,...]'s placement.
	stale, _ := sim.NodeAt(C(6, 2, 3))
	if len(sim.store().At(stale)) != 0 {
		t.Error("stale boundary record survived the recovery")
	}
}

// TestFigure5And6 (E5, E6): identification and its propagation — after
// stabilization every frame node of the block holds the identified record.
func TestFigure5And6(t *testing.T) {
	sim := fig1Sim(t)
	// All 8 corners of the block (Figure 6's endpoints) hold the record.
	for _, c := range []Coord{
		C(2, 4, 2), C(6, 4, 2), C(2, 7, 2), C(6, 7, 2),
		C(2, 4, 5), C(6, 4, 5), C(2, 7, 5), C(6, 7, 5),
	} {
		id, err := sim.NodeAt(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(sim.store().At(id)) == 0 {
			t.Errorf("corner %v lacks the identified record", c)
		}
	}
}

// TestFigure7 (E7): the step anatomy — a message advances one hop per step
// while the information advances λ hops per step. With λ high enough, a
// block forming ahead of a message is fully constructed before arrival.
func TestFigure7(t *testing.T) {
	sim, err := NewSimulation(Config{Dims: []int{16, 16}, Lambda: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Coord{C(6, 7), C(7, 8), C(8, 7), C(9, 8)} {
		if err := sim.ScheduleFault(2, c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Route(C(7, 2), C(7, 13), "limited")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Arrived {
		t.Fatalf("did not arrive: %+v", res)
	}
	if res.Backtracks != 0 {
		t.Errorf("with λ=8 the information must outrun the message: %+v", res)
	}
	if res.Steps != res.Hops {
		t.Errorf("one hop per step violated: %+v", res)
	}
}

// TestTable1 (E8): every quantity of the notation table is measured.
func TestTable1(t *testing.T) {
	sim, err := NewSimulation(Config{Dims: []int{12, 12}, Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 40, Start: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	evs := sim.Events()
	if len(evs) != 3 {
		t.Fatalf("F = %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Index != i+1 {
			t.Errorf("event index %d, want %d", ev.Index, i+1) // f_i
		}
		if ev.Step != 2+40*i {
			t.Errorf("t_%d = %d, want %d", i+1, ev.Step, 2+40*i) // t_i, d_i
		}
		if ev.BRounds == 0 || ev.CRounds == 0 {
			t.Errorf("b_%d/c_%d missing: %+v", i+1, i+1, ev)
		}
		if ev.BSteps != (ev.BRounds+1)/2 {
			t.Errorf("λ division wrong: %+v", ev) // λ
		}
		if ev.EMaxAfter != 1 {
			t.Errorf("e_max = %d, want 1 (scattered singletons)", ev.EMaxAfter)
		}
	}
}

// TestRenderIncludesLegendGlyphs sanity-checks the public Render output.
func TestRenderIncludesLegendGlyphs(t *testing.T) {
	sim := fig1Sim(t)
	out := sim.Render(C(0, 0, 4))
	if !strings.Contains(out, "X") || !strings.Contains(out, "o") {
		t.Fatalf("render lacks expected glyphs:\n%s", out)
	}
}
