package ndmesh

import (
	"strings"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewSimulation(Config{}); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewSimulation(Config{Dims: []int{4, 0}}); err == nil {
		t.Error("zero radix accepted")
	}
	if _, err := NewSimulation(Config{Dims: []int{8, 8}, Policy: "bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, pol := range []string{"", "lowest-axis", "largest-offset"} {
		if _, err := NewSimulation(Config{Dims: []int{8, 8}, Policy: pol}); err != nil {
			t.Errorf("policy %q rejected: %v", pol, err)
		}
	}
}

func TestMustSimulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSimulation did not panic")
		}
	}()
	MustSimulation(Config{})
}

func TestCoordinateValidation(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	if _, err := sim.NodeAt(C(8, 0)); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, err := sim.NodeAt(C(1, 2, 3)); err == nil {
		t.Error("wrong-arity coordinate accepted")
	}
	if err := sim.ScheduleFault(1, C(9, 9)); err == nil {
		t.Error("fault outside mesh accepted")
	}
	if err := sim.FailNow(C(-1, 0)); err == nil {
		t.Error("negative coordinate accepted")
	}
	id, err := sim.NodeAt(C(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !sim.CoordOf(id).Equal(C(3, 4)) {
		t.Error("CoordOf roundtrip failed")
	}
}

func TestRouteValidation(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	if _, err := sim.Route(C(1, 1), C(2, 2), "nonsense"); err == nil {
		t.Error("unknown router accepted")
	}
	if _, err := sim.Route(C(1, 1), C(9, 9), "limited"); err == nil {
		t.Error("destination outside mesh accepted")
	}
	res, err := sim.Route(C(1, 1), C(5, 6), "limited")
	if err != nil || !res.Arrived || res.Hops != 9 {
		t.Errorf("fault-free route wrong: %+v, %v", res, err)
	}
}

func TestPolicyLargestOffset(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{12, 12}, Policy: "largest-offset"})
	res, err := sim.Route(C(1, 1), C(3, 9), "limited")
	if err != nil || !res.Arrived || res.ExtraHops != 0 {
		t.Fatalf("largest-offset route wrong: %+v, %v", res, err)
	}
}

func TestScheduleLinkFault(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{10, 10}})
	if err := sim.ScheduleLinkFault(1, C(1, 5), C(2, 5)); err != nil {
		t.Fatal(err)
	}
	// Non-neighbors rejected.
	if err := sim.ScheduleLinkFault(1, C(1, 1), C(3, 1)); err == nil {
		t.Error("non-neighbor link accepted")
	}
	sim.Drain()
	// The deeper endpoint (2,5) failed.
	blocks := sim.Blocks()
	if len(blocks) != 1 || blocks[0].String() != "[2:2, 5:5]" {
		t.Fatalf("blocks = %v, want the deeper endpoint faulted", blocks)
	}
}

func TestGenerateFaultsValidation(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{10, 10}})
	if err := sim.GenerateFaults(FaultPlan{Faults: 2, Avoid: []Coord{C(99, 99)}}); err == nil {
		t.Error("avoid coordinate outside mesh accepted")
	}
	if err := sim.GenerateFaults(FaultPlan{Faults: 500}); err == nil {
		t.Error("impossible fault count accepted")
	}
	if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if len(sim.Blocks()) == 0 {
		t.Error("no blocks after generated faults")
	}
}

func TestEventSummaries(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{10, 10}, Lambda: 2})
	sim.ScheduleFault(2, C(5, 5))
	sim.ScheduleRecovery(40, C(5, 5))
	sim.Drain()
	evs := sim.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != "fail" || evs[1].Kind != "recover" {
		t.Fatalf("kinds = %s, %s", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].BRounds == 0 || evs[0].CRounds == 0 {
		t.Errorf("construction rounds missing: %+v", evs[0])
	}
	if sim.InfoRecords() != 0 {
		t.Errorf("records remain after full recovery: %d", sim.InfoRecords())
	}
}

func TestMultipleFlights(t *testing.T) {
	// Several messages simultaneously, all arriving despite a block.
	sim := MustSimulation(Config{Dims: []int{14, 14}, Lambda: 4})
	for _, c := range []Coord{C(6, 6), C(7, 7)} {
		sim.FailNow(c)
	}
	sim.Stabilize()
	pairs := [][2]Coord{
		{C(1, 1), C(12, 12)},
		{C(12, 1), C(1, 12)},
		{C(6, 1), C(6, 12)},
		{C(1, 7), C(12, 7)},
	}
	for _, p := range pairs {
		res, err := sim.Route(p[0], p[1], "limited")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Arrived {
			t.Errorf("%v -> %v did not arrive: %+v", p[0], p[1], res)
		}
		if res.Backtracks > 0 {
			t.Errorf("%v -> %v backtracked with full information: %+v", p[0], p[1], res)
		}
	}
}

func TestDimsAndNumNodes(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{3, 4, 5}})
	dims := sim.Dims()
	if len(dims) != 3 || dims[0] != 3 || dims[2] != 5 {
		t.Fatalf("Dims = %v", dims)
	}
	if sim.NumNodes() != 60 {
		t.Fatalf("NumNodes = %d", sim.NumNodes())
	}
}

func TestRenderSliceSelection(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{6, 6, 6}})
	sim.FailNow(C(2, 3, 4))
	sim.Stabilize()
	if !strings.Contains(sim.Render(C(0, 0, 4)), "X") {
		t.Error("fault missing from its slice")
	}
	if strings.Contains(sim.Render(C(0, 0, 0)), "X") {
		t.Error("fault visible in the wrong slice")
	}
}

func TestStabilizeRoundsStopsEarly(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{8, 8}})
	if n := sim.StabilizeRounds(10); n != 0 {
		t.Fatalf("idle StabilizeRounds = %d", n)
	}
	sim.FailNow(C(4, 4))
	total := 0
	for i := 0; i < 100; i++ {
		n := sim.StabilizeRounds(5)
		total += n
		if n < 5 {
			break
		}
	}
	if total == 0 {
		t.Fatal("no rounds executed")
	}
	if n := sim.StabilizeRounds(5); n != 0 {
		t.Fatalf("rounds after quiescence: %d", n)
	}
}

func TestClassifySourceExported(t *testing.T) {
	blocks := []Box{mustBox(C(3, 4), C(5, 6))}
	if ClassifySource(blocks, C(4, 1), C(4, 9)) {
		t.Error("column through block should be unsafe")
	}
	if !ClassifySource(blocks, C(1, 1), C(9, 9)) {
		t.Error("corner route should be safe")
	}
}

func mustBox(lo, hi Coord) Box {
	return Box{Lo: lo, Hi: hi}
}
