package ndmesh

// One benchmark per experiment of DESIGN.md's index. Each benchmark both
// times the underlying machinery and reports the experiment's headline
// quantities via b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the per-experiment numbers recorded in EXPERIMENTS.md alongside the
// throughput of the implementation.

import (
	"fmt"
	"runtime"
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/core"
	"ndmesh/internal/engine"
	"ndmesh/internal/fault"
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/ident"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
	"ndmesh/internal/probe"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
	"ndmesh/internal/traffic"
)

// fig1Faults is the running example of the paper.
var fig1Faults = []grid.Coord{{3, 5, 4}, {4, 5, 4}, {5, 5, 3}, {3, 6, 3}}

// BenchmarkFig1BlockConstruction (E1): Algorithm 1 stabilization on the
// Figure 1 scenario.
func BenchmarkFig1BlockConstruction(b *testing.B) {
	m, _ := mesh.NewUniform(3, 10)
	var rounds int
	for i := 0; i < b.N; i++ {
		m.Reset()
		var seeds []grid.NodeID
		for _, c := range fig1Faults {
			id := m.Shape().Index(c)
			m.Fail(id)
			seeds = append(seeds, id)
		}
		res := block.Stabilize(m, seeds...)
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "a_rounds")
}

// BenchmarkFig2FrameClassify (E2): frame-level detection around the block.
func BenchmarkFig2FrameClassify(b *testing.B) {
	m, _ := mesh.NewUniform(3, 10)
	var seeds []grid.NodeID
	for _, c := range fig1Faults {
		id := m.Shape().Index(c)
		m.Fail(id)
		seeds = append(seeds, id)
	}
	block.Stabilize(m, seeds...)
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		det := frame.NewDetector(m)
		det.Seed(seeds...)
		rounds = det.Run()
	}
	b.ReportMetric(float64(rounds), "frame_rounds")
}

// BenchmarkFig3BoundaryConstruction (E3): the boundary flood over the
// block's placement.
func BenchmarkFig3BoundaryConstruction(b *testing.B) {
	m, _ := mesh.NewUniform(3, 10)
	for _, c := range fig1Faults {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	box := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})
	corner := m.Shape().Index(grid.Coord{6, 4, 5})
	b.ResetTimer()
	var rounds, visits int
	for i := 0; i < b.N; i++ {
		store := info.NewStore(m.NumNodes())
		p := boundary.NewProtocol(m, store)
		c := p.Start(box, 1, boundary.Deposit, []grid.NodeID{corner})
		for !p.Quiescent() {
			p.Round()
		}
		rounds, visits = c.Rounds, store.TotalRecords()
	}
	b.ReportMetric(float64(rounds), "c_rounds")
	b.ReportMetric(float64(visits), "records")
}

// BenchmarkFig4Recovery (E4): the clean-wave reconstruction after a
// recovery.
func BenchmarkFig4Recovery(b *testing.B) {
	m, _ := mesh.NewUniform(3, 10)
	var seeds []grid.NodeID
	for _, c := range fig1Faults {
		id := m.Shape().Index(c)
		m.Fail(id)
		seeds = append(seeds, id)
	}
	block.Stabilize(m, seeds...)
	snap := m.Snapshot()
	rec := m.Shape().Index(grid.Coord{5, 5, 3})
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		m.Restore(snap)
		m.Recover(rec)
		res := block.Stabilize(m, rec)
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "recovery_rounds")
}

// BenchmarkFig5Identification (E5): the 3-phase distributed identification.
func BenchmarkFig5Identification(b *testing.B) {
	m, _ := mesh.NewUniform(3, 10)
	var seeds []grid.NodeID
	for _, c := range fig1Faults {
		id := m.Shape().Index(c)
		m.Fail(id)
		seeds = append(seeds, id)
	}
	block.Stabilize(m, seeds...)
	det := frame.NewDetector(m)
	det.Seed(seeds...)
	det.Run()
	b.ResetTimer()
	var rounds, hops int
	for i := 0; i < b.N; i++ {
		store := info.NewStore(m.NumNodes())
		p := ident.NewProtocol(m, det, store)
		p.OnIdentified = func(grid.Box, grid.NodeID) {}
		for id := 0; id < m.NumNodes(); id++ {
			if det.Announcement(grid.NodeID(id)).Level > 0 {
				p.Notify(grid.NodeID(id))
			}
		}
		rounds = 0
		for !p.Quiescent() {
			p.Round()
			rounds++
		}
		hops = p.Hops
	}
	b.ReportMetric(float64(rounds), "b_rounds")
	b.ReportMetric(float64(hops), "ident_hops")
}

// BenchmarkFig6InfoPropagation (E6): the full pipeline from faults to
// records at every frame node and wall.
func BenchmarkFig6InfoPropagation(b *testing.B) {
	var records int
	for i := 0; i < b.N; i++ {
		m, _ := mesh.NewUniform(3, 10)
		md := core.New(m)
		for _, c := range fig1Faults {
			md.ApplyFault(m.Shape().Index(c))
		}
		md.Stabilize()
		records = md.Store.TotalRecords()
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkFig7StepEngine (E7): raw step throughput of the execution model
// with an idle information plane (the per-step overhead floor).
func BenchmarkFig7StepEngine(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}, Lambda: 2})
	sim.FailNow(C(8, 8))
	sim.Stabilize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunSteps(1)
	}
}

// BenchmarkTable1Notation (E8): a full dynamic run producing every Table 1
// quantity.
func BenchmarkTable1Notation(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		sim := MustSimulation(Config{Dims: []int{12, 12}, Lambda: 2})
		if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 40, Start: 2, Seed: 5}); err != nil {
			b.Fatal(err)
		}
		sim.Drain()
		events = len(sim.Events())
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkTheorem1Recovery (E9): routing across a dissolving block.
func BenchmarkTheorem1Recovery(b *testing.B) {
	var extra int
	for i := 0; i < b.N; i++ {
		sim := MustSimulation(Config{Dims: []int{16, 16}, Lambda: 2})
		sim.FailNow(C(7, 7))
		sim.FailNow(C(8, 8))
		sim.Stabilize()
		sim.ScheduleRecovery(4, C(8, 8))
		res, err := sim.Route(C(2, 3), C(13, 12), "limited")
		if err != nil {
			b.Fatal(err)
		}
		extra = res.ExtraHops
	}
	b.ReportMetric(float64(extra), "extra_hops")
}

// BenchmarkTheorem2Safety (E10): the safe/unsafe classification.
func BenchmarkTheorem2Safety(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}, Lambda: 1})
	sim.FailNow(C(7, 7))
	sim.FailNow(C(10, 4))
	sim.Stabilize()
	blocks := sim.Blocks()
	src, dst := C(1, 1), C(14, 14)
	b.ResetTimer()
	safe := false
	for i := 0; i < b.N; i++ {
		safe = ClassifySource(blocks, src, dst)
	}
	_ = safe
}

// BenchmarkTheorem3Progress (E11) / BenchmarkTheorem4Detours (E12) /
// BenchmarkTheorem5Unsafe (E13): the randomized bound-validation sweep.
func BenchmarkTheorem3Progress(b *testing.B) {
	benchTheorems(b, []int{16, 16}, 5)
}

func BenchmarkTheorem4Detours(b *testing.B) {
	benchTheorems(b, []int{12, 12}, 8)
}

func BenchmarkTheorem5Unsafe(b *testing.B) {
	benchTheorems(b, []int{10, 10, 10}, 3)
}

func benchTheorems(b *testing.B, dims []int, trials int) {
	b.Helper()
	var viol int
	for i := 0; i < b.N; i++ {
		rep, err := TheoremSweep(dims, trials, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		viol = rep.Violations3 + rep.Violations4 + rep.Violations5
		if viol != 0 {
			b.Fatalf("theorem violations: %+v", rep)
		}
	}
	b.ReportMetric(float64(viol), "violations")
}

// BenchmarkConvergenceSweep (E14): the convergence study.
func BenchmarkConvergenceSweep(b *testing.B) {
	var maxB int
	for i := 0; i < b.N; i++ {
		rows, err := ConvergenceSweep([][]int{{16, 16}, {8, 8, 8}}, 3, 11)
		if err != nil {
			b.Fatal(err)
		}
		maxB = 0
		for _, r := range rows {
			if r.BRounds > maxB {
				maxB = r.BRounds
			}
		}
	}
	b.ReportMetric(float64(maxB), "max_b_rounds")
}

// BenchmarkDegradationSweep (E15): routing under dynamic faults, all three
// routers (reduced trial count: the full table is cmd/sweep's job).
func BenchmarkDegradationSweep(b *testing.B) {
	opt := DefaultDegradation()
	opt.Trials = 4
	opt.Intervals = []int{4, 32}
	var blindExtra float64
	for i := 0; i < b.N; i++ {
		rows, err := DegradationSweep(opt, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Router == "blind" {
				blindExtra = r.MeanExtra
			}
		}
	}
	b.ReportMetric(blindExtra, "blind_extra")
}

// BenchmarkLambdaSweep (E15b): the λ ablation.
func BenchmarkLambdaSweep(b *testing.B) {
	var limExtra float64
	for i := 0; i < b.N; i++ {
		rows, err := LambdaSweep([]int{16, 16}, []int{1, 8}, 5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Router == "limited" && r.Lambda == 8 {
				limExtra = r.MeanExtra
			}
		}
	}
	b.ReportMetric(limExtra, "limited_extra_at_l8")
}

// BenchmarkMemorySweep (E16): the memory-footprint study.
func BenchmarkMemorySweep(b *testing.B) {
	var records int
	for i := 0; i < b.N; i++ {
		rows, err := MemorySweep([][]int{{16, 16}}, []int{4}, 3)
		if err != nil {
			b.Fatal(err)
		}
		records = rows[0].Records
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkOscillationSweep (E17): churn and locality under short
// intervals.
func BenchmarkOscillationSweep(b *testing.B) {
	var affected float64
	for i := 0; i < b.N; i++ {
		rows, err := OscillationSweep([]int{16, 16}, 4, []int{4}, 3, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		affected = rows[0].MeanAffected
	}
	b.ReportMetric(affected, "affected_per_event")
}

// BenchmarkRouterStep times a full routing run of each router on a mesh
// with blocks and full information in place (the per-hop cost). Flights are
// recycled through the engine's free list between iterations, so the loop
// measures routing, not setup churn.
func BenchmarkRouterStep(b *testing.B) {
	for _, name := range []string{"limited", "blind", "oracle", "dor"} {
		b.Run(name, func(b *testing.B) {
			sim := MustSimulation(Config{Dims: []int{16, 16}, Lambda: 1})
			sim.FailNow(C(7, 7))
			sim.FailNow(C(8, 8))
			sim.Stabilize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.eng().ClearFlights()
				res, err := sim.Route(C(1, 1), C(14, 14), name)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Arrived && name != "dor" {
					b.Fatalf("%s did not arrive: %+v", name, res)
				}
			}
		})
	}
}

// BenchmarkTrialRestart compares the two ways to get a fault-free
// simulation for the next trial: a fresh NewSimulation against
// Simulation.Reset of a used one. The ratio is the per-trial saving the
// sweeps collect via the worker-local simPool.
func BenchmarkTrialRestart(b *testing.B) {
	cfg := Config{Dims: []int{16, 16}, Lambda: 2}
	dirty := func(sim *Simulation) {
		sim.FailNow(C(7, 7))
		sim.FailNow(C(8, 8))
		sim.Stabilize()
	}
	b.Run("new", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := MustSimulation(cfg)
			dirty(sim)
		}
	})
	b.Run("reset", func(b *testing.B) {
		sim := MustSimulation(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Reset()
			dirty(sim)
		}
	})
}

// BenchmarkTheoremSweepWorkers runs the theorem sweep at one worker and at
// NumCPU workers; on a multicore machine the ratio shows the parallel
// engine's speedup, with byte-identical results (asserted by the tests).
func BenchmarkTheoremSweepWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := TheoremSweepWorkers([]int{16, 16}, 16, uint64(i+1), w)
				if err != nil {
					b.Fatal(err)
				}
				if v := rep.Violations3 + rep.Violations4 + rep.Violations5; v != 0 {
					b.Fatalf("theorem violations: %+v", rep)
				}
			}
		})
	}
}

// BenchmarkDegradationSweepWorkers is the same scaling probe over the
// degradation sweep (the heaviest table of cmd/sweep).
func BenchmarkDegradationSweepWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := DefaultDegradation()
			opt.Trials = 8
			opt.Intervals = []int{4, 32}
			opt.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := DegradationSweep(opt, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLabelingScale measures Algorithm 1 throughput vs. mesh size (the
// reactive protocol must be O(block), not O(N)).
func BenchmarkLabelingScale(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		b.Run(grid.MustShape(k, k).String(), func(b *testing.B) {
			m, _ := mesh.NewUniform(2, k)
			mid := grid.Coord{k / 2, k / 2}
			mid2 := grid.Coord{k/2 + 1, k/2 + 1}
			for i := 0; i < b.N; i++ {
				m.Reset()
				ids := []grid.NodeID{m.Shape().Index(mid), m.Shape().Index(mid2)}
				m.Fail(ids[0])
				m.Fail(ids[1])
				block.Stabilize(m, ids...)
			}
		})
	}
}

// BenchmarkContentionStep (E19a) measures one step of the contention-mode
// engine with a standing population of limited-router flights arbitrating
// for links — the inner loop of every load run. The steady-state path must
// stay at 0 allocs/op (asserted by TestContentionStepAllocFree and pinned
// in BENCH_02.json): flights, messages and arbitration state all recycle.
func BenchmarkContentionStep(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 4})
	shape := sim.gridShape()
	r := rng.New(1)
	type pair struct{ src, dst grid.NodeID }
	pairs := make([]pair, 24)
	for i := range pairs {
		s, d := traffic.DrawLongHaulPair(shape, r)
		pairs[i] = pair{s, d}
	}
	inject := func() {
		for _, p := range pairs {
			if _, err := eng.Inject(p.src, p.dst, route.Limited{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	inject()
	// Warm the free lists and scratch buffers outside the timer.
	for i := 0; i < 64; i++ {
		eng.Step()
		eng.DetachDone(nil)
		if len(eng.Flights()) == 0 {
			inject()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
		eng.DetachDone(nil)
		if len(eng.Flights()) == 0 {
			b.StopTimer()
			inject()
			b.StartTimer()
		}
	}
}

// BenchmarkClosedLoopStep (E21a) measures one step of a closed-loop load
// run at steady state: the bounded-window source's draws and top-ups, the
// contention step, and the harvest pass that releases window slots. Like
// every other load hot path it must stay at 0 allocs/op
// (TestClosedLoopStepAllocFree; recorded in BENCH_05.json).
func BenchmarkClosedLoopStep(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{LinkRate: 1})
	shape := sim.gridShape()
	pat, err := traffic.ByName(shape, "uniform")
	if err != nil {
		b.Fatal(err)
	}
	cl := traffic.NewClosedLoop(shape, pat, 4, rng.New(1))
	emit := func(src, dst grid.NodeID) bool {
		if !eng.Admit(src) {
			return false
		}
		if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
			b.Fatal(err)
		}
		return true
	}
	release := func(fl *engine.Flight) { cl.Release(fl.Msg.Src) }
	step := func() {
		cl.Step(emit)
		eng.Step()
		eng.DetachDone(release)
	}
	// Reach the closed loop's standing population before the timer.
	for i := 0; i < 256; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	b.ReportMetric(float64(cl.InFlight()), "in_flight")
}

// BenchmarkGridlockEscapeStep (E22a) measures one step of a closed-loop
// run with every deadlock-escape mechanism live: tight finite buffers in
// the gridlock regime, stall-age bookkeeping, flights timing out and being
// killed back to their sources, the closed loop re-arming those slots under
// jittered exponential backoff, bubble admission gating injection, and the
// zero-progress detector latching and unlatching as kills restore
// progress. The delta against BenchmarkClosedLoopStep is the price of the
// escape machinery; the path must stay at 0 allocs/op (asserted by
// TestEscapeClosedLoopStepAllocFree and pinned in BENCH_06.json).
func BenchmarkGridlockEscapeStep(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{
		LinkRate: 1, NodeCapacity: 3,
		FlightTimeout: 4, GridlockWindow: 4, Bubble: true,
	})
	shape := sim.gridShape()
	pat, err := traffic.ByName(shape, "transpose")
	if err != nil {
		b.Fatal(err)
	}
	cl := traffic.NewClosedLoop(shape, pat, 4, rng.New(1))
	cl.ConfigureRetry(2)
	emit := func(src, dst grid.NodeID) bool {
		if !eng.Admit(src) {
			return false
		}
		if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
			b.Fatal(err)
		}
		return true
	}
	harvest := func(fl *engine.Flight) {
		if fl.Msg.TimedOut {
			cl.Timeout(fl.Msg.Src)
		} else {
			cl.Release(fl.Msg.Src)
		}
	}
	step := func() {
		cl.Step(emit)
		eng.Step()
		eng.DetachDone(harvest)
	}
	// Reach steady state — including a warm free list of killed-and-recycled
	// flights — before the timer.
	for i := 0; i < 256; i++ {
		step()
	}
	if cl.Retried() == 0 {
		b.Fatal("no retries after warmup; the escape path is not being measured")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	b.ReportMetric(float64(cl.InFlight()), "in_flight")
	b.ReportMetric(float64(cl.Retried()), "retried")
}

// BenchmarkFaultProcessStep (E23a) measures one step of an open-loop run
// under a live stochastic fault process with repair: every step may apply
// fault events (relabeling waves, identification runs, boundary floods,
// store deposits and deletion-trigger cancellations all riding the step),
// flights hit fresh faults mid-path and time out back to their sources,
// and the trial wraps around — model reset, engine reset, schedule replay —
// exactly as a Monte-Carlo reliability trial does. The wrap cost is
// amortized into the per-step figure, so this is the per-step price of an
// E23 trial. The path must stay at 0 allocs/op once the pools are warm
// (asserted by TestFaultProcessStepAllocFree in internal/engine and pinned
// in BENCH_08.json).
func BenchmarkFaultProcessStep(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{
		LinkRate: 1, NodeCapacity: 4,
		FlightTimeout: 16, GridlockWindow: 8,
	})
	shape := sim.gridShape()
	fab := sim.fabric()
	const horizon = 64
	const trialSteps = horizon + 16
	sched, err := fault.GenerateProcess(shape, fault.ProcessOptions{
		Arrival: fault.Delay{Model: fault.DelayBernoulli, Rate: 0.08},
		Repair:  fault.Delay{Model: fault.DelayBernoulli, Rate: 1.0 / 16},
		Horizon: horizon - 1,
	}, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	setSchedule(sim, sched)
	var rtr route.Router = route.Congested{}
	srcs := []grid.Coord{{1, 1}, {1, 2}, {2, 1}, {14, 14}, {13, 14}, {14, 13}}
	dsts := []grid.Coord{{14, 14}, {14, 13}, {13, 14}, {1, 1}, {2, 1}, {1, 2}}
	stepIdx, trials := 0, 0
	step := func() {
		if stepIdx == trialSteps {
			sim.Reset()
			setSchedule(sim, sched)
			stepIdx = 0
			trials++
		}
		for i := range srcs {
			src := shape.Index(srcs[i])
			if fab.Status(src) != mesh.Enabled || !eng.Admit(src) {
				continue
			}
			if _, err := eng.Inject(src, shape.Index(dsts[i]), rtr); err != nil {
				b.Fatal(err)
			}
		}
		eng.Step()
		eng.DetachDone(nil)
		stepIdx++
	}
	// Warm every pool to its high-water mark: flights come off the free
	// list LIFO, so rarely-reused ones warm their routing scratch late.
	for i := 0; i < 20*trialSteps; i++ {
		step()
	}
	if len(eng.Events) == 0 {
		b.Fatal("no fault events applied; the process is not being measured")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	b.ReportMetric(float64(trials), "trials")
	b.ReportMetric(float64(len(eng.Events)), "events_last_trial")
}

// BenchmarkCongestedContentionStep (E20a) is BenchmarkContentionStep with
// the congestion-aware router: the same standing population arbitrating
// for links, but every stalled flight consulting the LoadView (residency +
// link pending) before re-deciding. The delta against
// BenchmarkContentionStep is the price of load awareness; the path must
// stay at 0 allocs/op (asserted by TestCongestedStepAllocFree and pinned
// in BENCH_03.json).
func BenchmarkCongestedContentionStep(b *testing.B) {
	sim := MustSimulation(Config{Dims: []int{16, 16}})
	eng := sim.eng()
	eng.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 4})
	shape := sim.gridShape()
	r := rng.New(1)
	type pair struct{ src, dst grid.NodeID }
	pairs := make([]pair, 24)
	for i := range pairs {
		s, d := traffic.DrawLongHaulPair(shape, r)
		pairs[i] = pair{s, d}
	}
	inject := func() {
		for _, p := range pairs {
			if _, err := eng.Inject(p.src, p.dst, route.Congested{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	inject()
	for i := 0; i < 64; i++ {
		eng.Step()
		eng.DetachDone(nil)
		if len(eng.Flights()) == 0 {
			inject()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
		eng.DetachDone(nil)
		if len(eng.Flights()) == 0 {
			b.StopTimer()
			inject()
			b.StartTimer()
		}
	}
}

// BenchmarkShardedContentionStep (E19c) measures one contention step on a
// 32x32 mesh with a near-saturation standing flight population, across
// intra-step shard counts. shards=1 is the serial baseline; the ratio at
// higher counts is the sharded stepper's per-step speedup on this host
// (recorded in BENCH_04.json — on a single-core runner it only shows the
// barrier overhead; the parallel phase needs GOMAXPROCS > 1 to pay off).
// Results are byte-identical at every shard count; the step must stay
// 0 allocs/op (TestShardedStepAllocFree).
func BenchmarkShardedContentionStep(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sim := MustSimulation(Config{Dims: []int{32, 32}})
			eng := sim.eng()
			eng.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 4})
			eng.SetShards(shards)
			defer eng.SetShards(1)
			shape := sim.gridShape()
			pat, err := traffic.ByName(shape, "uniform")
			if err != nil {
				b.Fatal(err)
			}
			proc, err := traffic.ProcessByName("bernoulli")
			if err != nil {
				b.Fatal(err)
			}
			// Build the standing population the way a near-saturation cell
			// does: open-loop injection past the 32x32 uniform saturation
			// point, with finite router buffers so the population (and the
			// flight free list) reaches a true steady state instead of
			// growing without bound.
			gen := traffic.NewGenerator(shape, pat, proc, 0.22, rng.New(1))
			step := func() {
				gen.Step(func(src, dst grid.NodeID) bool {
					if !eng.Admit(src) {
						return false
					}
					if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
						b.Fatal(err)
					}
					return true
				})
				eng.Step()
				eng.DetachDone(nil)
			}
			for i := 0; i < 512; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			b.StopTimer()
			b.ReportMetric(float64(len(eng.Flights())), "flights")
		})
	}
}

// BenchmarkShardedSaturationCell (E19d) times one full 32x32
// near-saturation load cell — warmup, measurement, drain, collection —
// end to end at each shard count: the wall-clock number ROADMAP item (b)
// asks for (one big mesh no longer bound to one core). The rows are
// byte-identical at every shard count (TestShardedSaturationSweepDeterministic).
func BenchmarkShardedSaturationCell(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			opt := DefaultSaturation()
			opt.Dims = []int{32, 32}
			opt.Patterns = []string{"uniform"}
			opt.Rates = []float64{0.22}
			opt.Warmup, opt.Measure, opt.Drain = 32, 96, 96
			opt.Shards = shards
			var last SaturationRow
			for i := 0; i < b.N; i++ {
				rows, err := SaturationSweepWorkers(opt, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(float64(last.Delivered), "delivered")
			b.ReportMetric(float64(last.Unfinished), "unfin")
		})
	}
}

// BenchmarkSaturationPoint (E19b) times one full latency-throughput point
// — warmup, measurement and drain of an 8x8 uniform-random Bernoulli run
// near saturation — and reports its headline quantities.
func BenchmarkSaturationPoint(b *testing.B) {
	opt := DefaultSaturation()
	opt.Patterns = []string{"uniform"}
	opt.Rates = []float64{0.35}
	opt.Warmup, opt.Measure, opt.Drain = 32, 128, 128
	// Fixed seed: the reported metrics must not depend on -benchtime.
	var last SaturationRow
	for i := 0; i < b.N; i++ {
		rows, err := SaturationSweepWorkers(opt, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(float64(last.Delivered), "delivered")
	b.ReportMetric(last.LatMean, "lat_mean")
	b.ReportMetric(float64(last.LatP99), "lat_p99")
}

// BenchmarkProbedContentionStep (BENCH_07) measures the tentpole overhead
// claim of the telemetry layer: the same near-saturation 32x32 step, bare
// vs observed by the FULL recorder set (time series, heatmap, latency
// histogram, live snapshot) with a census flush every step. The probed
// arm must stay at 0 allocs/op (TestProbedStepAllocFree asserts it) and
// within a few percent of the bare step — the census accumulates O(live
// flights) increments inside loops the commit already runs, and the flush
// folds O(nodes + dirty links) counters against a step that is itself
// O(nodes + flights). The deep steady-state population (open-loop
// injection past the saturation point, as in BenchmarkShardedContentionStep)
// is the honest denominator: on a near-empty mesh the flush would dominate
// and the ratio would mean nothing.
func BenchmarkProbedContentionStep(b *testing.B) {
	run := func(b *testing.B, probed bool) {
		sim := MustSimulation(Config{Dims: []int{32, 32}})
		eng := sim.eng()
		eng.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 4})
		shape := sim.gridShape()
		set := &probe.Set{}
		set.AddProbe(probe.NewTimeSeries(256))
		set.AddProbe(probe.NewHeatmap(shape.NumNodes(), shape.NumDirs()))
		set.AddProbe(&probe.Snapshot{})
		set.AddLatency(probe.NewLatencyHist())
		harvest := func(fl *engine.Flight) {
			if fl.Msg.Arrived {
				set.ObserveLatency(fl.Msg.Steps)
			}
		}
		if probed {
			eng.SetProbe(set)
		}
		pat, err := traffic.ByName(shape, "uniform")
		if err != nil {
			b.Fatal(err)
		}
		proc, err := traffic.ProcessByName("bernoulli")
		if err != nil {
			b.Fatal(err)
		}
		gen := traffic.NewGenerator(shape, pat, proc, 0.22, rng.New(1))
		step := func() {
			gen.Step(func(src, dst grid.NodeID) bool {
				if !eng.Admit(src) {
					return false
				}
				if _, err := eng.Inject(src, dst, route.Limited{}); err != nil {
					b.Fatal(err)
				}
				return true
			})
			eng.Step()
			if probed {
				eng.DetachDone(harvest)
				eng.FlushCensus()
			} else {
				eng.DetachDone(nil)
			}
		}
		for i := 0; i < 512; i++ {
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
		b.ReportMetric(float64(len(eng.Flights())), "flights")
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("probed", func(b *testing.B) { run(b, true) })
}
