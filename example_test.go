package ndmesh_test

import (
	"fmt"

	"ndmesh"
)

// The basic flow: build a mesh, schedule a dynamic fault, route a message.
func ExampleSimulation_Route() {
	sim, _ := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{12, 12}, Lambda: 4})
	_ = sim.ScheduleFault(2, ndmesh.C(6, 6))
	res, _ := sim.Route(ndmesh.C(1, 1), ndmesh.C(10, 10), "limited")
	fmt.Println(res.Arrived, res.Hops == res.D0+res.ExtraHops)
	// Output:
	// true true
}

// Faulty blocks are rectangular boxes; after the labeling stabilizes the
// oracle view lists them in origin order.
func ExampleSimulation_Blocks() {
	sim, _ := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{10, 10}})
	_ = sim.FailNow(ndmesh.C(4, 4))
	_ = sim.FailNow(ndmesh.C(5, 5))
	sim.Stabilize()
	fmt.Println(sim.Blocks())
	// Output:
	// [[4:5, 4:5]]
}

// Theorem 2's classification: a destination straight across a block traps
// the source; a corner-to-corner route does not.
func ExampleClassifySource() {
	blocks := []ndmesh.Box{{Lo: ndmesh.C(3, 4), Hi: ndmesh.C(5, 6)}}
	fmt.Println(ndmesh.ClassifySource(blocks, ndmesh.C(4, 1), ndmesh.C(4, 9)))
	fmt.Println(ndmesh.ClassifySource(blocks, ndmesh.C(1, 1), ndmesh.C(9, 9)))
	// Output:
	// false
	// true
}

// Recovery (rule 5) dissolves blocks and deletes their information.
func ExampleSimulation_RecoverNow() {
	sim, _ := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{10, 10}})
	_ = sim.FailNow(ndmesh.C(5, 5))
	sim.Stabilize()
	before := sim.InfoRecords()
	_ = sim.RecoverNow(ndmesh.C(5, 5))
	sim.Stabilize()
	fmt.Println(before > 0, sim.InfoRecords())
	// Output:
	// true 0
}
