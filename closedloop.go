package ndmesh

// This file is E21, the closed-loop experiment: instead of offering traffic
// at a nominal open-loop rate, every node keeps a bounded window of
// outstanding requests and reinjects only when one terminates
// (traffic.ClosedLoop). Sweeping the window size traces out the closed-loop
// analogue of a latency-throughput curve: small windows measure unloaded
// latency, large windows drive the network to its self-throttled saturation
// point, and — unlike open-loop injection — the offered load automatically
// backs off where the network congests, which is how request/reply systems
// actually behave. The sweep reports the realized injection rate next to
// the delivered throughput so the self-throttling is visible.
//
// Determinism follows the repository contract: one rng stream is split per
// (pattern, window, router) cell in row order, each job writes only its own
// result slot, and aggregation is serial — byte-identical for every worker
// count and every shard count (the closed loop releases window slots from
// the engine's harvest pass, which runs in flight-injection order).

import (
	"fmt"

	"ndmesh/internal/engine"
	"ndmesh/internal/grid"
	"ndmesh/internal/par"
	"ndmesh/internal/route"
)

// ClosedLoopOptions configures the E21 grid: the cross product of
// Patterns x Windows x Routers, each cell one closed-loop load run.
type ClosedLoopOptions struct {
	// Dims is the mesh shape; Lambda the information rounds per step.
	Dims   []int
	Lambda int
	// Routers, Patterns and Windows span the sweep grid; Windows is the
	// per-node outstanding-request bound (the closed loop's load knob).
	Routers  []string
	Patterns []string
	Windows  []int
	// Warmup/Measure/Drain are the phase lengths in steps.
	Warmup, Measure, Drain int
	// LinkRate is the per-directed-link service rate; NodeCapacity the
	// per-node input-queue depth (0 = unbounded). A finite capacity
	// exercises the closed loop's defer-and-retry path.
	LinkRate, NodeCapacity int
	// Congestion tunes the "congested" router's tie-breaking.
	Congestion route.CongestionConfig
	// FlightTimeout/RetryBackoff/Bubble/GridlockWindow configure the
	// deadlock-escape mechanisms (see SaturationOptions): with a finite
	// NodeCapacity and windows past the buffer budget they are what keeps
	// the closed loop from gridlocking permanently.
	FlightTimeout, RetryBackoff int
	Bubble                      bool
	GridlockWindow              int
	// Faults > 0 overlays a fixed-count fault schedule on every run;
	// FaultRate > 0 a stochastic fault process instead. See the
	// SaturationOptions fields of the same names.
	Faults, FaultInterval int
	Clustered             bool
	FaultStart            int
	FaultRate             float64
	FaultModel            string
	FaultShape            float64
	FaultRepair           float64
	// Workers is the parallel fan-out width; < 1 means GOMAXPROCS.
	Workers int
	// Shards is the intra-step shard-worker count per cell (< 2 means
	// serial); like Workers, every value yields byte-identical rows.
	Shards int
	// Probe/ProbeEvery attach a per-step census probe (see the
	// SaturationOptions fields of the same names); a probed sweep must be
	// a single cell.
	// Probe and Progress carry json:"-" like the SaturationOptions fields
	// of the same names (manifest embedding).
	Probe      engine.Probe `json:"-"`
	ProbeEvery int
	// Progress, when non-nil, is called after every completed cell with
	// (done, total); must be safe for concurrent use.
	Progress func(done, total int) `json:"-"`
	// Pool/Emit/Cancel mirror the SaturationOptions fields of the same
	// names: a shared warm-engine reservoir, the per-completed-cell
	// streaming hook (called with the cell index from worker goroutines),
	// and the cooperative cancellation poll (aborts with ErrCanceled).
	Pool   *EnginePool                        `json:"-"`
	Emit   func(index int, row ClosedLoopRow) `json:"-"`
	Cancel func() bool                        `json:"-"`
}

// DefaultClosedLoop returns the standard E21 configuration: an 8x8 mesh,
// uniform + transpose request patterns, the limited router, windows from
// single-outstanding to deep saturation. Buffers are unbounded: in a closed
// loop the window itself is the back-pressure (the population is capped at
// window x N by construction — Little's law), which yields the classic
// curve of throughput saturating while latency grows linearly with the
// window. A finite NodeCapacity is still available through the options, but
// beware what it measures: the backtracking PCS router has no buffer-cycle
// deadlock avoidance, so windows past the buffer budget gridlock the mesh —
// deliveries stop and, because a closed loop defers instead of dropping,
// nothing relieves the cycle (the open-loop analogue is E20's congestion
// collapse, visible there as exploding drop counts). The escape mechanisms
// (FlightTimeout + RetryBackoff, Bubble, GridlockWindow) turn that regime
// into a measured, recoverable one — E22 (gridlock.go) maps it
// systematically.
func DefaultClosedLoop() ClosedLoopOptions {
	return ClosedLoopOptions{
		Dims:     []int{8, 8},
		Lambda:   1,
		Routers:  []string{"limited"},
		Patterns: []string{"uniform", "transpose"},
		Windows:  []int{1, 2, 4, 8, 16, 32},
		Warmup:   64,
		Measure:  256,
		Drain:    256,
		LinkRate: 1,
	}
}

// ClosedLoopRow is one (pattern, window, router) cell of the E21 grid.
type ClosedLoopRow struct {
	Dims    string
	Pattern string
	Router  string
	// Window is the per-node outstanding-request bound.
	Window int
	// InjectedRate is the realized injection rate over the measurement
	// window (messages/node/step) — the closed loop's self-throttled
	// offered load; AcceptedRate what was delivered per node-step. The two
	// converge at steady state: a closed loop cannot outrun its deliveries.
	InjectedRate, AcceptedRate float64
	// Injected / Delivered / Unreachable / Lost / Unfinished classify the
	// measurement-window flights (a closed loop never drops: refusals are
	// deferred and retried).
	Injected, Delivered, Unreachable, Lost, Unfinished int
	// LatMean/P50/P95/P99/Max summarize delivered-flight latency in steps.
	LatMean                        float64
	LatP50, LatP95, LatP99, LatMax int
}

// ClosedLoopSweep runs the E21 window-size grid with all available cores.
func ClosedLoopSweep(opt ClosedLoopOptions, seed uint64) ([]ClosedLoopRow, error) {
	opt.Workers = 0
	return closedLoopSweep(opt, seed)
}

// ClosedLoopSweepWorkers is ClosedLoopSweep with an explicit worker count
// (each (pattern, window, router) cell is one parallel job).
func ClosedLoopSweepWorkers(opt ClosedLoopOptions, seed uint64, workers int) ([]ClosedLoopRow, error) {
	opt.Workers = workers
	return closedLoopSweep(opt, seed)
}

func closedLoopSweep(opt ClosedLoopOptions, seed uint64) ([]ClosedLoopRow, error) {
	if len(opt.Routers) == 0 || len(opt.Patterns) == 0 || len(opt.Windows) == 0 {
		return nil, fmt.Errorf("ndmesh: closed-loop sweep needs at least one router, pattern and window")
	}
	for _, w := range opt.Windows {
		if w < 1 {
			return nil, fmt.Errorf("ndmesh: closed-loop window %d must be >= 1", w)
		}
	}
	sopt := SaturationOptions{
		Dims: opt.Dims, Lambda: opt.Lambda,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.NodeCapacity,
		Congestion:    opt.Congestion,
		FlightTimeout: opt.FlightTimeout, RetryBackoff: opt.RetryBackoff,
		Bubble: opt.Bubble, GridlockWindow: opt.GridlockWindow,
		Faults: opt.Faults, FaultInterval: opt.FaultInterval,
		Clustered: opt.Clustered, FaultStart: opt.FaultStart,
		FaultRate: opt.FaultRate, FaultModel: opt.FaultModel,
		FaultShape: opt.FaultShape, FaultRepair: opt.FaultRepair,
		Shards: opt.Shards,
		Probe:  opt.Probe, ProbeEvery: opt.ProbeEvery,
		Cancel: opt.Cancel,
	}
	if err := validateLoadShape(&sopt); err != nil {
		return nil, err
	}
	shape, err := grid.NewShape(opt.Dims...)
	if err != nil {
		return nil, err
	}
	// One job per (pattern, window, router) cell, pattern-major — the order
	// the rows are reported in and the order the job streams are split in.
	jobs := len(opt.Patterns) * len(opt.Windows) * len(opt.Routers)
	if opt.Probe != nil && jobs > 1 {
		return nil, fmt.Errorf("ndmesh: a probed sweep must be a single cell (got %d); probes are stateful accumulators and parallel cells would interleave their censuses", jobs)
	}
	rngs := splitN(seed, jobs)
	rows := make([]ClosedLoopRow, jobs)
	progress := progressCounter(opt.Progress, jobs)
	co := opt.Pool.checkout()
	defer co.release()
	err = par.ForState(opt.Workers, jobs, co.worker, func(p *simPool, j int) error {
		if opt.Cancel != nil && opt.Cancel() {
			return ErrCanceled
		}
		pi := j / (len(opt.Windows) * len(opt.Routers))
		wi := j / len(opt.Routers) % len(opt.Windows)
		ki := j % len(opt.Routers)
		window := opt.Windows[wi]
		pt, err := p.loadPoint(sopt, workload{pattern: opt.Patterns[pi], window: window},
			opt.Routers[ki], rngs[j])
		if err != nil {
			return err
		}
		row := ClosedLoopRow{
			Dims:         shape.String(),
			Pattern:      opt.Patterns[pi],
			Router:       opt.Routers[ki],
			Window:       window,
			AcceptedRate: pt.AcceptedRate,
			Injected:     pt.Injected,
			Delivered:    pt.Delivered,
			Unreachable:  pt.Unreachable,
			Lost:         pt.Lost,
			Unfinished:   pt.Unfinished,
			LatMean:      pt.Latency.Mean,
			LatP50:       pt.Latency.P50,
			LatP95:       pt.Latency.P95,
			LatP99:       pt.Latency.P99,
			LatMax:       pt.Latency.Max,
		}
		if steps := opt.Measure * shape.NumNodes(); steps > 0 {
			row.InjectedRate = float64(pt.Injected) / float64(steps)
		}
		rows[j] = row
		if opt.Emit != nil {
			opt.Emit(j, row)
		}
		progress()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
