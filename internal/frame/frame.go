// Package frame implements Definition 2 and Definition 3 of the paper: the
// classification of the enabled nodes around a faulty block into adjacent
// nodes, q-level edge nodes and q-level corners, and the adjacent surfaces
// S_i of the block.
//
// A block with interior box [lo_1:hi_1, ..., lo_n:hi_n] is surrounded by a
// one-node-thick shell (the expanded box minus the interior). A shell node
// with exactly q coordinates at lo-1 or hi+1 ("extreme") and the remaining
// n-q coordinates inside the interior span is a q-level corner; a node with
// n-1 extreme coordinates is an n-level edge node, and the 2^n nodes with
// all coordinates extreme are the n-level corners (Definition 2, unrolled
// recursively). Level-1 nodes are the adjacent nodes: they have exactly one
// neighbor inside the block.
//
// The package provides both the geometric classification (used by the
// boundary oracle and the tests) and a distributed detector that computes
// each node's level and surface directions from neighbor announcements
// only, one hop per round — step 2 of Algorithm 2.
package frame

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

// Level returns the frame level of coordinate c relative to the interior
// box b: the number of extreme coordinates. ok is false if c is not on the
// frame shell (some coordinate further than one unit outside, or all
// coordinates inside the interior).
func Level(b grid.Box, c grid.Coord) (level int, ok bool) {
	if len(c) != b.Dims() {
		return 0, false
	}
	for i := range c {
		switch {
		case c[i] == b.Lo[i]-1 || c[i] == b.Hi[i]+1:
			level++
		case c[i] >= b.Lo[i] && c[i] <= b.Hi[i]:
			// inside the span on this axis
		default:
			return 0, false
		}
	}
	if level == 0 {
		return 0, false // inside the block, not on the shell
	}
	return level, true
}

// SurfaceDirs returns the surface directions of frame node c: for every
// extreme coordinate, the direction pointing back toward the block span.
// For the paper's example block [3:5, 5:6, 3:4], the 3-level edge node
// (5,4,5) has surface directions {+Y, -Z}. The result is empty if c is not
// on the frame.
func SurfaceDirs(b grid.Box, c grid.Coord) grid.DirSet {
	var s grid.DirSet
	if len(c) != b.Dims() {
		return 0
	}
	for i := range c {
		switch c[i] {
		case b.Lo[i] - 1:
			s = s.Add(grid.DirPlus(i))
		case b.Hi[i] + 1:
			s = s.Add(grid.DirMinus(i))
		default:
			if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
				return 0
			}
		}
	}
	return s
}

// IsAdjacent reports whether c is an adjacent node of block b (level 1).
func IsAdjacent(b grid.Box, c grid.Coord) bool {
	l, ok := Level(b, c)
	return ok && l == 1
}

// IsCorner reports whether c is an n-level corner of block b in an n-D mesh.
func IsCorner(b grid.Box, c grid.Coord) bool {
	l, ok := Level(b, c)
	return ok && l == b.Dims()
}

// Corners returns the 2^n n-level corners of the block, in binary order of
// (low/high) choices per axis. Corners outside the mesh are still returned;
// callers clip with shape.Contains (the paper assumes blocks never touch
// the outermost surface, so in model-conforming scenarios all corners
// exist).
func Corners(b grid.Box) []grid.Coord {
	n := b.Dims()
	out := make([]grid.Coord, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		c := make(grid.Coord, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c[i] = b.Hi[i] + 1
			} else {
				c[i] = b.Lo[i] - 1
			}
		}
		out = append(out, c)
	}
	return out
}

// EachShellNode enumerates every node of the frame shell (the expanded box
// minus the interior), calling fn with a reused scratch coordinate and the
// node's level.
func EachShellNode(b grid.Box, fn func(c grid.Coord, level int)) {
	b.Expand(1).Each(func(c grid.Coord) {
		if l, ok := Level(b, c); ok {
			fn(c, l)
		}
	})
}

// EachLevelNode enumerates the frame nodes of exactly the given level.
func EachLevelNode(b grid.Box, level int, fn func(c grid.Coord)) {
	EachShellNode(b, func(c grid.Coord, l int) {
		if l == level {
			fn(c)
		}
	})
}

// SurfaceIndex maps (axis, positive side) to the paper's surface numbering:
// in 3-D, S0/S1/S2 are the low-side surfaces of axes X/Y/Z and S3/S4/S5 the
// high-side surfaces, with S_i opposite S_{(i+n) mod 2n} (the paper's
// (i+3) mod 6 for n=3).
func SurfaceIndex(n int, axis int, positive bool) int {
	if positive {
		return axis + n
	}
	return axis
}

// SurfaceAxisSide decodes a surface index back to (axis, positive).
func SurfaceAxisSide(n int, surface int) (axis int, positive bool) {
	if surface >= n {
		return surface - n, true
	}
	return surface, false
}

// AdjacentSurface returns the box of adjacent-surface S_i of block b: the
// nodes one unit away from the block face, spanning the block's interior
// extent on all other axes (Definition 3 generalized to n-D).
func AdjacentSurface(b grid.Box, surface int) grid.Box {
	axis, positive := SurfaceAxisSide(b.Dims(), surface)
	lo := b.Lo.Clone()
	hi := b.Hi.Clone()
	if positive {
		lo[axis] = b.Hi[axis] + 1
		hi[axis] = b.Hi[axis] + 1
	} else {
		lo[axis] = b.Lo[axis] - 1
		hi[axis] = b.Lo[axis] - 1
	}
	return grid.Box{Lo: lo, Hi: hi}
}

// Announcement is one frame role a node announces: a believed level and the
// surface directions of that role. A node may hold several announcements at
// once — for example, an adjacent node of one block that is simultaneously
// an edge node of another block whose frame touches it. Definition 2's
// classification is per block, and keeping one record per role is what
// makes corner detection robust when frames of distinct blocks meet.
type Announcement struct {
	Level uint8
	Dirs  grid.DirSet
}

// Detector computes frame levels distributively: each round, every candidate
// node derives its announcements from its neighbors' previous announcements
// and its direct observation of bad neighbors. Level-q information therefore
// stabilizes q rounds after the labeling does, exactly as step 2 of
// Algorithm 2 requires. The detector is reactive: only nodes near status
// changes are re-evaluated.
type Detector struct {
	m *mesh.Mesh //meshvet:keep fabric dependency, not per-trial state
	// ann[id] holds the node's current announcements, sorted by
	// (Level, Dirs) with no duplicates.
	ann [][]Announcement
	// candidate tracking, as in block.Stepper.
	cand   []grid.NodeID
	inCand []uint32 //meshvet:keep generation stamps; Reset's gen++ invalidates them
	gen    uint32
	// changed lists the nodes whose announcements changed in the last
	// Round; consumers (identification initiation) read it after each
	// round.
	changed []grid.NodeID
	// pending* are the per-round commit arena: announcements recomputed
	// this round accumulate in one flat buffer (pending), with pendingIDs
	// and pendingOff delimiting each node's range. The arena is reused
	// every round, so a round allocates only when announcements outgrow
	// all previous rounds' capacity.
	pending    []Announcement //meshvet:keep commit arena, re-sliced at each Round
	pendingIDs []grid.NodeID  //meshvet:keep commit arena, re-sliced at each Round
	pendingOff []int          //meshvet:keep commit arena, re-sliced at each Round
}

// NewDetector builds a detector over m with empty announcements.
func NewDetector(m *mesh.Mesh) *Detector {
	return &Detector{
		m:      m,
		ann:    make([][]Announcement, m.NumNodes()),
		inCand: make([]uint32, m.NumNodes()),
		gen:    1,
	}
}

// Announcement returns the highest-level announcement of node id (the zero
// Announcement when the node has none). Protocol code that needs a
// specific role uses HasRecord instead.
func (d *Detector) Announcement(id grid.NodeID) Announcement {
	rs := d.ann[id]
	if len(rs) == 0 {
		return Announcement{}
	}
	return rs[len(rs)-1] // sorted ascending by level
}

// Records returns all announcements of node id (owned by the detector).
func (d *Detector) Records(id grid.NodeID) []Announcement { return d.ann[id] }

// HasRecord reports whether node id currently announces exactly the given
// role.
func (d *Detector) HasRecord(id grid.NodeID, level int, dirs grid.DirSet) bool {
	for _, a := range d.ann[id] {
		if int(a.Level) == level && a.Dirs == dirs {
			return true
		}
	}
	return false
}

// Seed marks nodes (and their neighbors) for re-evaluation after status
// changes.
func (d *Detector) Seed(ids ...grid.NodeID) {
	for _, id := range ids {
		d.add(id)
		d.m.EachNeighbor(id, func(nb grid.NodeID, _ grid.Dir) { d.add(nb) })
	}
}

func (d *Detector) add(id grid.NodeID) {
	if d.inCand[id] != d.gen {
		d.inCand[id] = d.gen
		d.cand = append(d.cand, id)
	}
}

// Quiescent reports whether no candidates remain.
func (d *Detector) Quiescent() bool { return len(d.cand) == 0 }

// Reset discards all announcements and candidates so the detector can be
// reused for a new trial on the same (reset) mesh, retaining every buffer.
func (d *Detector) Reset() {
	for i := range d.ann {
		if d.ann[i] != nil {
			d.ann[i] = d.ann[i][:0]
		}
	}
	d.cand = d.cand[:0]
	d.gen++
	d.changed = d.changed[:0]
}

// Round performs one synchronous announcement-update round and returns the
// number of nodes whose announcements changed. Recomputed announcements are
// staged in the reusable arena and committed together, preserving the
// synchronous model (every compute sees only last round's announcements).
func (d *Detector) Round() int {
	m := d.m
	d.pending = d.pending[:0]
	d.pendingIDs = d.pendingIDs[:0]
	d.pendingOff = d.pendingOff[:0]
	for _, id := range d.cand {
		start := len(d.pending)
		d.pending = d.compute(id, d.pending)
		if annsEqual(d.pending[start:], d.ann[id]) {
			d.pending = d.pending[:start]
			continue
		}
		d.pendingIDs = append(d.pendingIDs, id)
		d.pendingOff = append(d.pendingOff, start)
	}
	d.pendingOff = append(d.pendingOff, len(d.pending))
	d.gen++
	d.cand = d.cand[:0]
	d.changed = d.changed[:0]
	for k, id := range d.pendingIDs {
		d.ann[id] = append(d.ann[id][:0], d.pending[d.pendingOff[k]:d.pendingOff[k+1]]...)
		d.changed = append(d.changed, id)
		d.add(id)
		m.EachNeighbor(id, func(nb grid.NodeID, _ grid.Dir) { d.add(nb) })
	}
	return len(d.pendingIDs)
}

func annsEqual(a, b []Announcement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Changed returns the nodes whose announcement changed in the last Round.
// The slice is valid until the next Round call.
func (d *Detector) Changed() []grid.NodeID { return d.changed }

// Run drives rounds to quiescence, returning the rounds taken.
func (d *Detector) Run() int {
	rounds := 0
	roundCap := 8 * (d.m.Shape().Diameter() + 2)
	for !d.Quiescent() && rounds < roundCap {
		d.Round()
		rounds++
	}
	return rounds
}

// compute derives node id's announcements from direct bad-neighbor
// observation (level 1) and neighbors' current announcements (level k from
// k-1): node u is a k-level corner with surface direction set S (|S| = k)
// iff for every direction dir in S, the neighbor of u in direction dir
// announces level k-1 with direction set S minus dir. This is Definition
// 2's recursion evaluated from local information only. A node announces
// every role it satisfies — one per adjacent block direction at level 1,
// plus any corner roles derived from neighbor announcements.
//
// The announcements are appended to buf (the round arena) and the extended
// buffer is returned; only the appended tail belongs to this node.
func (d *Detector) compute(id grid.NodeID, buf []Announcement) []Announcement {
	m := d.m
	if m.Status(id) != mesh.Enabled {
		return buf // only enabled nodes are frame nodes
	}
	start := len(buf)
	add := func(a Announcement) {
		for _, have := range buf[start:] {
			if have == a {
				return
			}
		}
		buf = append(buf, a)
	}
	// Level 1: adjacent node — one record per bad-neighbor direction
	// (each direction is evidence of a distinct block face; a convex block
	// never presents two faces to one enabled node).
	m.EachNeighbor(id, func(nb grid.NodeID, dir grid.Dir) {
		if m.Status(nb).Bad() {
			add(Announcement{Level: 1, Dirs: grid.DirSet(0).Add(dir)})
		}
	})
	// Level k > 1: candidate sets are derived from each level-(k-1) record
	// of a neighbor v in direction dir as S = v.Dirs + dir, then verified
	// against every direction of S. Records from other blocks' frames
	// simply fail verification without masking genuine roles.
	nd := m.Shape().NumDirs()
	for level := 2; level <= m.Shape().Dims(); level++ {
		for dv := 0; dv < nd; dv++ {
			dir := grid.Dir(dv)
			nb := m.Neighbor(id, dir)
			if nb == grid.InvalidNode {
				continue
			}
			for _, a := range d.ann[nb] {
				if int(a.Level) != level-1 || a.Dirs.Has(dir) || a.Dirs.Has(dir.Opposite()) {
					continue
				}
				cand := a.Dirs.Add(dir)
				if cand.Count() != level {
					continue
				}
				if d.consistentCorner(id, cand, level) {
					add(Announcement{Level: uint8(level), Dirs: cand})
				}
			}
		}
	}
	sortAnnouncements(buf[start:])
	return buf
}

// sortAnnouncements orders by (Level, Dirs). Announcement lists are tiny (at
// most a handful of roles per node), so an in-place insertion sort avoids
// the allocation of sort.Slice on the hot round path.
func sortAnnouncements(a []Announcement) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0; j-- {
			if a[j-1].Level < a[j].Level ||
				(a[j-1].Level == a[j].Level && a[j-1].Dirs <= a[j].Dirs) {
				break
			}
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// consistentCorner verifies Definition 2's recursion for node id with the
// candidate surface-direction set: every neighbor along a candidate
// direction must announce the complementary set at the level below.
func (d *Detector) consistentCorner(id grid.NodeID, dirs grid.DirSet, level int) bool {
	nd := d.m.Shape().NumDirs()
	for dv := 0; dv < nd; dv++ {
		dir := grid.Dir(dv)
		if !dirs.Has(dir) {
			continue
		}
		nb := d.m.Neighbor(id, dir)
		if nb == grid.InvalidNode {
			return false
		}
		want := dirs.Remove(dir)
		found := false
		for _, a := range d.ann[nb] {
			if int(a.Level) == level-1 && a.Dirs == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
