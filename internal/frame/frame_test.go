package frame

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

// fig1Box is the paper's block [3:5, 5:6, 3:4].
var fig1Box = grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})

func TestLevelClassification(t *testing.T) {
	cases := []struct {
		c     grid.Coord
		level int
		ok    bool
	}{
		{grid.Coord{2, 5, 3}, 1, true},  // adjacent (x at lo-1)
		{grid.Coord{6, 6, 4}, 1, true},  // adjacent (x at hi+1)
		{grid.Coord{5, 4, 5}, 2, true},  // 3-level edge node (paper example)
		{grid.Coord{6, 5, 5}, 2, true},  // 3-level edge node
		{grid.Coord{6, 4, 4}, 2, true},  // 3-level edge node
		{grid.Coord{6, 4, 5}, 3, true},  // 3-level corner (paper example)
		{grid.Coord{2, 4, 2}, 3, true},  // another corner
		{grid.Coord{4, 5, 3}, 0, false}, // inside the block
		{grid.Coord{1, 5, 3}, 0, false}, // two units out
		{grid.Coord{7, 7, 5}, 0, false}, // diagonal far
		{grid.Coord{4, 5}, 0, false},    // wrong dimensionality
	}
	for _, tc := range cases {
		l, ok := Level(fig1Box, tc.c)
		if ok != tc.ok || (ok && l != tc.level) {
			t.Errorf("Level(%v) = %d,%v, want %d,%v", tc.c, l, ok, tc.level, tc.ok)
		}
	}
}

// TestFigure2CornerAndEdges verifies the paper's Figure 2 example: corner
// (6,4,5) has surface directions toward the block and its three edge
// neighbors are (5,4,5), (6,5,5), (6,4,4).
func TestFigure2CornerAndEdges(t *testing.T) {
	corner := grid.Coord{6, 4, 5}
	if !IsCorner(fig1Box, corner) {
		t.Fatal("corner not classified")
	}
	dirs := SurfaceDirs(fig1Box, corner)
	want := grid.DirSet(0).Add(grid.DirMinus(0)).Add(grid.DirPlus(1)).Add(grid.DirMinus(2))
	if dirs != want {
		t.Fatalf("SurfaceDirs(corner) = %b, want -X +Y -Z (%b)", dirs, want)
	}
	// The edge neighbors lie exactly in the surface directions.
	edges := []grid.Coord{{5, 4, 5}, {6, 5, 5}, {6, 4, 4}}
	for _, e := range edges {
		l, ok := Level(fig1Box, e)
		if !ok || l != 2 {
			t.Errorf("edge %v level = %d,%v", e, l, ok)
		}
	}
	// Each 3-level edge node has two neighbors adjacent to the block; e.g.
	// (5,4,5) has (5,5,5) and (5,4,4) per the paper.
	for _, adj := range []grid.Coord{{5, 5, 5}, {5, 4, 4}} {
		if !IsAdjacent(fig1Box, adj) {
			t.Errorf("%v should be adjacent", adj)
		}
	}
	// The edge's surface directions point to those adjacent nodes.
	if d := SurfaceDirs(fig1Box, grid.Coord{5, 4, 5}); d != grid.DirSet(0).Add(grid.DirPlus(1)).Add(grid.DirMinus(2)) {
		t.Errorf("SurfaceDirs((5,4,5)) = %b", d)
	}
}

func TestCornersEnumeration(t *testing.T) {
	cs := Corners(fig1Box)
	if len(cs) != 8 {
		t.Fatalf("3-D block must have 8 corners, got %d", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if l, ok := Level(fig1Box, c); !ok || l != 3 {
			t.Errorf("corner %v misclassified", c)
		}
		seen[c.String()] = true
	}
	for _, want := range []grid.Coord{{2, 4, 2}, {6, 7, 5}, {2, 7, 5}, {6, 4, 2}} {
		if !seen[want.String()] {
			t.Errorf("missing corner %v", want)
		}
	}
}

func TestEachShellNode(t *testing.T) {
	// Shell volume = expanded volume - interior volume.
	exp := fig1Box.Expand(1)
	want := exp.Volume() - fig1Box.Volume()
	count := 0
	levels := map[int]int{}
	EachShellNode(fig1Box, func(c grid.Coord, level int) {
		count++
		levels[level]++
	})
	if count != want {
		t.Fatalf("shell count = %d, want %d", count, want)
	}
	// 3-D shell: 8 corners, edges 12 of varying length, 6 faces.
	if levels[3] != 8 {
		t.Errorf("corner count = %d", levels[3])
	}
	// Edge nodes: 4*(ex+ey+ez) where e* are interior extents.
	wantEdges := 4 * (fig1Box.Extent(0) + fig1Box.Extent(1) + fig1Box.Extent(2))
	if levels[2] != wantEdges {
		t.Errorf("edge node count = %d, want %d", levels[2], wantEdges)
	}
	// Face (adjacent) nodes: 2*(ex*ey + ey*ez + ex*ez).
	ex, ey, ez := fig1Box.Extent(0), fig1Box.Extent(1), fig1Box.Extent(2)
	wantFaces := 2 * (ex*ey + ey*ez + ex*ez)
	if levels[1] != wantFaces {
		t.Errorf("adjacent node count = %d, want %d", levels[1], wantFaces)
	}
}

func TestEachLevelNode(t *testing.T) {
	count := 0
	EachLevelNode(fig1Box, 3, func(grid.Coord) { count++ })
	if count != 8 {
		t.Fatalf("EachLevelNode(3) visited %d", count)
	}
}

func TestSurfaceIndexRoundtrip(t *testing.T) {
	n := 3
	seen := map[int]bool{}
	for axis := 0; axis < n; axis++ {
		for _, pos := range []bool{false, true} {
			idx := SurfaceIndex(n, axis, pos)
			if idx < 0 || idx >= 2*n || seen[idx] {
				t.Fatalf("surface index collision or range: %d", idx)
			}
			seen[idx] = true
			a, p := SurfaceAxisSide(n, idx)
			if a != axis || p != pos {
				t.Fatalf("roundtrip (%d,%v) -> %d -> (%d,%v)", axis, pos, idx, a, p)
			}
		}
	}
	// The paper's 3-D numbering: S_i opposite S_{(i+3) mod 6}.
	for i := 0; i < 6; i++ {
		a1, p1 := SurfaceAxisSide(3, i)
		a2, p2 := SurfaceAxisSide(3, (i+3)%6)
		if a1 != a2 || p1 == p2 {
			t.Fatalf("S%d and S%d are not opposite", i, (i+3)%6)
		}
	}
}

// TestAdjacentSurfaces checks Definition 3: the six adjacent surfaces of
// Figure 1(b).
func TestAdjacentSurfaces(t *testing.T) {
	// S1 (south, -Y side): y = 4, x in [3:5], z in [3:4].
	s1 := AdjacentSurface(fig1Box, SurfaceIndex(3, 1, false))
	if !s1.Equal(grid.NewBox(grid.Coord{3, 4, 3}, grid.Coord{5, 4, 4})) {
		t.Fatalf("S1 = %v", s1)
	}
	// S4 (north, +Y side): y = 7.
	s4 := AdjacentSurface(fig1Box, SurfaceIndex(3, 1, true))
	if !s4.Equal(grid.NewBox(grid.Coord{3, 7, 3}, grid.Coord{5, 7, 4})) {
		t.Fatalf("S4 = %v", s4)
	}
	// Every surface node is an adjacent node (level 1).
	for surf := 0; surf < 6; surf++ {
		AdjacentSurface(fig1Box, surf).Each(func(c grid.Coord) {
			if !IsAdjacent(fig1Box, c) {
				t.Fatalf("surface %d node %v not adjacent", surf, c)
			}
		})
	}
}

// TestDetectorMatchesGeometry: after stabilization, the distributed
// announcements must equal the geometric classification for every node of
// the mesh — for the Figure 1 block and for random scattered blocks.
func TestDetectorMatchesGeometry(t *testing.T) {
	m, _ := mesh.NewUniform(3, 10)
	for _, c := range []grid.Coord{{3, 5, 4}, {4, 5, 4}, {5, 5, 3}, {3, 6, 3}} {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	det := NewDetector(m)
	ids := make([]grid.NodeID, m.NumNodes())
	for i := range ids {
		ids[i] = grid.NodeID(i)
	}
	det.Seed(ids...)
	det.Run()
	verifyDetector(t, m, det, fig1Box)
}

func verifyDetector(t *testing.T, m *mesh.Mesh, det *Detector, box grid.Box) {
	t.Helper()
	shape := m.Shape()
	for id := 0; id < m.NumNodes(); id++ {
		c := shape.CoordOf(grid.NodeID(id))
		ann := det.Announcement(grid.NodeID(id))
		wantLevel, onFrame := 0, false
		if m.Status(grid.NodeID(id)) == mesh.Enabled {
			wantLevel, onFrame = Level(box, c)
		}
		if !onFrame {
			if ann.Level != 0 {
				t.Errorf("node %v announces level %d, want none", c, ann.Level)
			}
			continue
		}
		if int(ann.Level) != wantLevel {
			t.Errorf("node %v announces level %d, want %d", c, ann.Level, wantLevel)
			continue
		}
		if want := SurfaceDirs(box, c); ann.Dirs != want {
			t.Errorf("node %v dirs = %b, want %b", c, ann.Dirs, want)
		}
	}
}

// TestDetectorRandom2D: detector equivalence on random well-separated
// 2-D blocks.
func TestDetectorRandom2D(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		m, _ := mesh.NewUniform(2, 16)
		// Place 2 isolated faults at Chebyshev distance >= 5.
		var coords []grid.Coord
		for len(coords) < 2 {
			c := grid.Coord{2 + r.Intn(12), 2 + r.Intn(12)}
			okc := true
			for _, p := range coords {
				dx, dy := abs(c[0]-p[0]), abs(c[1]-p[1])
				if max(dx, dy) < 5 {
					okc = false
				}
			}
			if okc {
				coords = append(coords, c)
			}
		}
		var seeds []grid.NodeID
		for _, c := range coords {
			id := m.Shape().Index(c)
			m.Fail(id)
			seeds = append(seeds, id)
		}
		block.Stabilize(m, seeds...)
		det := NewDetector(m)
		det.Seed(seeds...)
		det.Run()
		for _, c := range coords {
			box := grid.BoxAt(c)
			// Check the 8 ring nodes and 4 corners of each singleton.
			EachShellNode(box, func(sc grid.Coord, level int) {
				if !m.Shape().Contains(sc) {
					return
				}
				ann := det.Announcement(m.Shape().Index(sc))
				if int(ann.Level) != level {
					t.Errorf("trial %d: %v level %d, want %d", trial, sc, ann.Level, level)
				}
			})
		}
	}
}

// TestDetectorReactsToRecovery: announcements must follow the labeling
// after a block dissolves.
func TestDetectorReactsToRecovery(t *testing.T) {
	m, _ := mesh.NewUniform(2, 10)
	id := m.Shape().Index(grid.Coord{5, 5})
	m.Fail(id)
	st := block.NewStepper(m)
	st.Seed(id)
	st.Run()
	det := NewDetector(m)
	det.Seed(id)
	det.Run()
	corner := m.Shape().Index(grid.Coord{4, 4})
	if det.Announcement(corner).Level != 2 {
		t.Fatalf("corner not detected: %+v", det.Announcement(corner))
	}
	// Recover; run labeling + detector rounds interleaved (as core does).
	m.Recover(id)
	st.Seed(id)
	det.Seed(id)
	for i := 0; i < 20; i++ {
		if ch := st.Round(); ch > 0 {
			det.Seed(st.LastChanged()...)
		}
		det.Round()
	}
	if ann := det.Announcement(corner); ann.Level != 0 {
		t.Fatalf("corner announcement survives dissolved block: %+v", ann)
	}
	if ann := det.Announcement(id); ann.Level != 0 {
		t.Fatalf("recovered node announces: %+v", ann)
	}
}

// TestDetectorAdjacentFrames is the regression test for corner detection
// with a second block whose frame touches the first block's frame: the
// corner (4,7,4) of block [5:5, 5:6, 5:6] sees a fourth level-2 neighbor
// (3,7,4) belonging to block [2:2, 7:7, 3:3]'s frame, and must still
// announce level 3 (candidate-set detection, not neighbor counting).
func TestDetectorAdjacentFrames(t *testing.T) {
	m, _ := mesh.NewUniform(3, 10)
	var seeds []grid.NodeID
	for _, c := range []grid.Coord{{5, 5, 5}, {5, 6, 6}, {2, 7, 3}} {
		id := m.Shape().Index(c)
		m.Fail(id)
		seeds = append(seeds, id)
	}
	block.Stabilize(m, seeds...)
	det := NewDetector(m)
	det.Seed(seeds...)
	det.Run()

	boxA := grid.NewBox(grid.Coord{5, 5, 5}, grid.Coord{5, 6, 6})
	boxB := grid.BoxAt(grid.Coord{2, 7, 3})
	cornerA := grid.Coord{4, 7, 4}
	cornerB := grid.Coord{3, 6, 4}
	annA := det.Announcement(m.Shape().Index(cornerA))
	if int(annA.Level) != 3 || annA.Dirs != SurfaceDirs(boxA, cornerA) {
		t.Fatalf("corner %v of %v: announcement %+v", cornerA, boxA, annA)
	}
	annB := det.Announcement(m.Shape().Index(cornerB))
	if int(annB.Level) != 3 || annB.Dirs != SurfaceDirs(boxB, cornerB) {
		t.Fatalf("corner %v of %v: announcement %+v", cornerB, boxB, annB)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
