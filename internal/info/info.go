// Package info implements the limited-global fault-information store: the
// per-node block records that the identification and boundary constructions
// deposit, and that Algorithm 3's routing decision consults.
//
// This is the heart of the "limited global information" idea: instead of a
// routing table at every node (global information) or nothing (local
// information), only the nodes on a block's frame and boundary walls hold a
// record of that block. TotalRecords is therefore the memory-footprint
// metric of experiment E16.
package info

import (
	"ndmesh/internal/grid"
)

// Record is one block's information as stored at a node: the block's
// interior box plus the epoch of the construction that deposited it.
// Epochs order constructions so that a stale record (from before a block
// grew or shrank) can never overwrite a fresher one.
type Record struct {
	Box   grid.Box
	Epoch uint32
}

// Store holds the records of every node. The zero value is not usable; use
// NewStore.
type Store struct {
	recs  [][]Record
	total int
}

// NewStore builds an empty store for a mesh with n nodes.
func NewStore(n int) *Store {
	return &Store{recs: make([][]Record, n)}
}

// At returns the records held by node id. The returned slice is owned by
// the store; callers must not mutate it.
func (s *Store) At(id grid.NodeID) []Record { return s.recs[id] }

// Has reports whether node id holds a record with exactly this box.
func (s *Store) Has(id grid.NodeID, box grid.Box) bool {
	for _, r := range s.recs[id] {
		if r.Box.Equal(box) {
			return true
		}
	}
	return false
}

// Add deposits a record at node id, copying the box (the store owns its
// record storage; callers keep ownership of the box they pass). If the node
// already holds a record with the same box, the epoch is refreshed to the
// larger value and Add returns false (nothing new). If the node holds
// records whose boxes are strictly contained in the new box with an older
// epoch — information from before the block grew — those records are
// replaced (the paper's "propagation may also incur a deletion of out of
// date boundaries"). Returns true if the node's information actually
// changed.
//
// Record slots freed by Clear, Remove or dominated-record replacement keep
// their box arrays in the slice's spare capacity and are reused by later
// deposits, so a store cycling through trials allocates nothing once warm.
func (s *Store) Add(id grid.NodeID, rec Record) bool {
	rs := s.recs[id]
	for i := range rs {
		if rs[i].Box.Equal(rec.Box) {
			if rec.Epoch > rs[i].Epoch {
				rs[i].Epoch = rec.Epoch
			}
			return false
		}
	}
	// Drop dominated stale records: an older record whose box lies inside
	// the new one describes the same obstacle before it grew. Compaction
	// swaps (rather than overwrites) so every dropped slot keeps a unique
	// box header in the spare capacity for reuse.
	kept := 0
	for i := 0; i < len(rs); i++ {
		if rs[i].Epoch < rec.Epoch && contained(rs[i].Box, rec.Box) {
			s.total--
			continue
		}
		if kept != i {
			rs[kept], rs[i] = rs[i], rs[kept]
		}
		kept++
	}
	rs = rs[:kept]
	if kept < cap(rs) {
		rs = rs[:kept+1]
		rs[kept].Box.Set(rec.Box)
		rs[kept].Epoch = rec.Epoch
	} else {
		rs = append(rs, Record{Box: rec.Box.Clone(), Epoch: rec.Epoch})
	}
	s.recs[id] = rs
	s.total++
	return true
}

// Remove deletes the record with the given box from node id, returning
// whether a record was removed. Removal is epoch-guarded: records deposited
// at or after minEpoch survive (a cancellation launched for an old
// construction must not erase newer information). The freed slot's box
// arrays stay in the slice's spare capacity for Add to reuse.
func (s *Store) Remove(id grid.NodeID, box grid.Box, minEpoch uint32) bool {
	rs := s.recs[id]
	for i := range rs {
		if rs[i].Box.Equal(box) && rs[i].Epoch < minEpoch {
			rs[i], rs[len(rs)-1] = rs[len(rs)-1], rs[i]
			s.recs[id] = rs[:len(rs)-1]
			s.total--
			return true
		}
	}
	return false
}

// TotalRecords returns the number of records across all nodes: the memory
// metric of the limited-information model (compare N*F for global tables).
func (s *Store) TotalRecords() int { return s.total }

// NodesWithInfo returns how many nodes hold at least one record.
func (s *Store) NodesWithInfo() int {
	n := 0
	for _, rs := range s.recs {
		if len(rs) > 0 {
			n++
		}
	}
	return n
}

// Clear removes all records. Per-node slice capacity is retained so a
// cleared store can be refilled without reallocating (trial reuse).
func (s *Store) Clear() {
	for i := range s.recs {
		if s.recs[i] != nil {
			s.recs[i] = s.recs[i][:0]
		}
	}
	s.total = 0
}

// contained reports whether inner lies entirely within outer.
func contained(inner, outer grid.Box) bool {
	for i := range inner.Lo {
		if inner.Lo[i] < outer.Lo[i] || inner.Hi[i] > outer.Hi[i] {
			return false
		}
	}
	return true
}
