package info

import (
	"testing"

	"ndmesh/internal/grid"
)

func mkBox(lo, hi grid.Coord) grid.Box { return grid.NewBox(lo, hi) }

func TestAddAndHas(t *testing.T) {
	s := NewStore(10)
	b := mkBox(grid.Coord{2, 2}, grid.Coord{3, 3})
	if s.Has(1, b) {
		t.Fatal("empty store has record")
	}
	if !s.Add(1, Record{Box: b, Epoch: 1}) {
		t.Fatal("first Add returned false")
	}
	if !s.Has(1, b) || s.TotalRecords() != 1 || s.NodesWithInfo() != 1 {
		t.Fatal("record not stored")
	}
	// Duplicate add refreshes the epoch but reports no change.
	if s.Add(1, Record{Box: b, Epoch: 3}) {
		t.Fatal("duplicate Add returned true")
	}
	if got := s.At(1)[0].Epoch; got != 3 {
		t.Fatalf("epoch not refreshed: %d", got)
	}
	// An older duplicate does not downgrade.
	s.Add(1, Record{Box: b, Epoch: 2})
	if got := s.At(1)[0].Epoch; got != 3 {
		t.Fatalf("epoch downgraded: %d", got)
	}
}

func TestAddDominatedReplacement(t *testing.T) {
	s := NewStore(10)
	small := mkBox(grid.Coord{2, 2}, grid.Coord{3, 3})
	big := mkBox(grid.Coord{1, 1}, grid.Coord{4, 4})
	s.Add(5, Record{Box: small, Epoch: 1})
	// A newer record whose box contains the old one replaces it: the block
	// grew and the stale pre-growth record must not linger.
	s.Add(5, Record{Box: big, Epoch: 2})
	if s.Has(5, small) {
		t.Fatal("dominated stale record survived")
	}
	if !s.Has(5, big) || s.TotalRecords() != 1 {
		t.Fatal("new record missing")
	}

	// A newer record does NOT replace a contained record with a newer or
	// equal epoch (two genuinely distinct blocks).
	s2 := NewStore(10)
	s2.Add(5, Record{Box: small, Epoch: 7})
	s2.Add(5, Record{Box: big, Epoch: 7})
	if !s2.Has(5, small) || !s2.Has(5, big) {
		t.Fatal("same-epoch contained record must survive")
	}
}

func TestAddDistinctBlocks(t *testing.T) {
	s := NewStore(10)
	a := mkBox(grid.Coord{1, 1}, grid.Coord{2, 2})
	b := mkBox(grid.Coord{5, 5}, grid.Coord{6, 6})
	s.Add(0, Record{Box: a, Epoch: 1})
	s.Add(0, Record{Box: b, Epoch: 2})
	if !s.Has(0, a) || !s.Has(0, b) || s.TotalRecords() != 2 {
		t.Fatal("distinct records must coexist")
	}
}

func TestRemoveEpochGuard(t *testing.T) {
	s := NewStore(10)
	b := mkBox(grid.Coord{2, 2}, grid.Coord{3, 3})
	s.Add(1, Record{Box: b, Epoch: 5})
	// A cancellation with minEpoch <= record epoch must not remove it
	// (the record is newer than the construction being cancelled).
	if s.Remove(1, b, 5) {
		t.Fatal("Remove deleted a same-epoch record")
	}
	if !s.Has(1, b) {
		t.Fatal("record vanished")
	}
	// A cancellation strictly newer removes it.
	if !s.Remove(1, b, 6) {
		t.Fatal("Remove failed")
	}
	if s.Has(1, b) || s.TotalRecords() != 0 {
		t.Fatal("record not removed")
	}
	// Removing again reports false.
	if s.Remove(1, b, 6) {
		t.Fatal("double remove returned true")
	}
}

func TestClear(t *testing.T) {
	s := NewStore(4)
	b := mkBox(grid.Coord{0, 0}, grid.Coord{1, 1})
	s.Add(0, Record{Box: b, Epoch: 1})
	s.Add(1, Record{Box: b, Epoch: 1})
	s.Clear()
	if s.TotalRecords() != 0 || s.NodesWithInfo() != 0 || len(s.At(0)) != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestTotalAcrossNodes(t *testing.T) {
	s := NewStore(8)
	b := mkBox(grid.Coord{0, 0}, grid.Coord{1, 1})
	for id := 0; id < 5; id++ {
		s.Add(grid.NodeID(id), Record{Box: b, Epoch: 1})
	}
	if s.TotalRecords() != 5 || s.NodesWithInfo() != 5 {
		t.Fatalf("totals wrong: %d records, %d nodes", s.TotalRecords(), s.NodesWithInfo())
	}
}
