// Package rng provides a small, fast, deterministic random number generator
// for the simulation harness.
//
// Experiments in this repository must be bit-reproducible across runs and
// across machines so that EXPERIMENTS.md numbers can be regenerated exactly.
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by its authors for general-purpose simulation; it has a 2^256-1
// period and passes BigCrush. Streams can be split so that independent
// subsystems (fault generator, source/destination sampling, per-trial seeds)
// draw from decorrelated sequences.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** stream.
type Source struct {
	s [4]uint64
}

// New returns a stream seeded from the given seed via SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the stream to the state derived from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
}

// Split derives an independent child stream. The child is seeded from the
// parent's next output, so splitting is itself deterministic.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n); it panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// IntRange returns a uniform int in [lo, hi] inclusive; it panics if lo > hi.
func (r *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p (number of trials until first success, >= 1). Used to draw
// fault inter-arrival intervals. Panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // defensive cap against pathological p values
			return n
		}
	}
	return n
}
