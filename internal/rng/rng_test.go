package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := New(12346)
	same := 0
	a.Reseed(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reset stream at %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child1 := parent.Split()
	child2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 100; i++ {
		if child1.Uint64() != child2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split children produced identical streams")
	}
	// Splitting is deterministic given the parent seed.
	p2 := New(99)
	c1 := p2.Split()
	c1b := New(0)
	*c1b = *c1
	r := New(99).Split()
	for i := 0; i < 100; i++ {
		if r.Uint64() != c1b.Uint64() {
			t.Fatal("split not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(42)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", b, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 500; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	if r.IntRange(4, 4) != 4 {
		t.Fatal("degenerate range wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	r.IntRange(2, 1)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(8)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	got := float64(trues) / draws
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %f", got)
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
	if len(r.Perm(0)) != 0 {
		t.Fatal("Perm(0) not empty")
	}
}

func TestShuffle(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("Shuffle lost elements: %v (orig %v)", xs, orig)
	}
}

func TestGeometric(t *testing.T) {
	r := New(17)
	var sum float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		g := r.Geometric(0.25)
		if g < 1 {
			t.Fatalf("Geometric < 1: %d", g)
		}
		sum += float64(g)
	}
	if mean := sum / draws; math.Abs(mean-4) > 0.2 {
		t.Errorf("Geometric(0.25) mean = %f, want ~4", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestIntnPropertyInRange(t *testing.T) {
	r := New(23)
	prop := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
