// Package par is the parallel experiment engine: a small worker pool that
// fans independent, pre-seeded trials out across GOMAXPROCS workers while
// keeping the results bit-identical to a serial run.
//
// The determinism contract is structural, not accidental:
//
//   - Jobs are identified by their index i in [0, n). Anything random a job
//     needs (its rng.Source, its fault schedule) must be derived BEFORE the
//     fan-out, in index order, exactly as the serial loop would have drawn
//     it. Splitting an rng stream is a handful of integer operations, so the
//     serial prelude costs nothing compared to the trials themselves.
//   - A job writes its result only into its own slot of a caller-owned
//     results slice; workers share no other state.
//   - The caller aggregates the results serially, in index order, after
//     every worker has finished. Summary statistics built by in-order
//     accumulation are therefore byte-identical regardless of the worker
//     count — including floating-point means, whose value depends on
//     addition order.
//
// Under this contract, For(1, ...) and For(runtime.GOMAXPROCS(0), ...)
// produce indistinguishable output, which experiments_parallel_test.go
// asserts for every sweep in the repository.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values < 1 mean "use all
// available parallelism" (GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs job(i) for every i in [0, n) across at most workers goroutines.
// Jobs are claimed from an atomic counter, so scheduling order is
// nondeterministic — the caller must follow the package's determinism
// contract (pre-seeded jobs, per-index result slots, in-order aggregation).
//
// If any jobs return errors, For waits for all workers to drain and returns
// the error of the lowest job index, so the reported error does not depend
// on goroutine scheduling. With workers <= 1 the jobs run inline on the
// calling goroutine in index order.
func For(workers, n int, job func(i int) error) error {
	return ForState(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error { return job(i) })
}

// ForState is For with per-worker state: each worker calls newState once and
// passes the value to every job it claims. Sweeps use it to reuse one
// simulation (mesh, info store, detector, router scratch) across all the
// trials a worker executes, so a trial restart is a cheap Reset instead of a
// reallocation.
func ForState[S any](workers, n int, newState func() S, job func(s S, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s := newState()
		var firstErr error
		for i := 0; i < n; i++ {
			if err := job(s, i); err != nil {
				firstErr = err
				break
			}
		}
		return firstErr
	}

	var (
		next int64 = -1
		// failedAt holds the lowest failed index + 1 (0 = no failure);
		// workers stop claiming past a known failure so error runs terminate
		// promptly, while lower-indexed jobs already in flight finish.
		failedAt int64
		mu       sync.Mutex
		errs     = make(map[int]error)
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newState()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if f := atomic.LoadInt64(&failedAt); f > 0 && i >= int(f) {
					return
				}
				if err := job(s, i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					for {
						f := atomic.LoadInt64(&failedAt)
						if f > 0 && f <= int64(i)+1 {
							break
						}
						if atomic.CompareAndSwapInt64(&failedAt, f, int64(i)+1) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	lowest := -1
	//meshvet:ordered min-key reduction is order-insensitive
	for i := range errs {
		if lowest < 0 || i < lowest {
			lowest = i
		}
	}
	return errs[lowest]
}
