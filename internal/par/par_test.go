package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]int32, n)
		err := For(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	if err := For(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := For(workers, 100, func(i int) error {
			if i%30 == 7 { // fails at 7, 37, 67, 97
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7" {
			t.Fatalf("workers=%d: got %v, want job 7", workers, err)
		}
	}
}

func TestForStateOneStatePerWorker(t *testing.T) {
	var states int32
	const workers, n = 4, 200
	seen := make([]int32, n)
	err := ForState(workers, n, func() *int32 {
		atomic.AddInt32(&states, 1)
		return new(int32)
	}, func(s *int32, i int) error {
		*s++
		atomic.AddInt32(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&states); got < 1 || got > workers {
		t.Fatalf("created %d states, want 1..%d", got, workers)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}

func TestForDeterministicResultOrder(t *testing.T) {
	// The contract in action: per-index slots + in-order aggregation give
	// identical floats for any worker count.
	sum := func(workers int) float64 {
		const n = 1000
		res := make([]float64, n)
		if err := For(workers, n, func(i int) error {
			res[i] = 1.0 / float64(i+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range res {
			s += v
		}
		return s
	}
	serial := sum(1)
	for _, w := range []int{2, 5, 16} {
		if got := sum(w); got != serial {
			t.Fatalf("workers=%d: sum %v != serial %v", w, got, serial)
		}
	}
}
