// Package engine implements the execution model of Section 5 and Figure 7:
// time advances in steps; each step performs fault detection (scheduled
// events become visible to neighbors), λ rounds of fault-information
// exchange and update (every protocol message advances one hop per round),
// then message reception, routing decision and message sending (every
// routing message advances one hop per step).
//
// The engine also keeps the per-occurrence bookkeeping of Table 1: for each
// fault/recovery event i it measures a_i (labeling stabilization rounds),
// b_i (identification rounds), c_i (boundary rounds), the number of
// affected nodes, and samples every in-flight message's distance-to-go D(i)
// at the occurrence — the inputs of Theorems 3-5.
//
// Contracts the rest of the stack builds on:
//
//   - Determinism: flights are polled in injection order, so the opt-in
//     contention model's link arbitration is an age-ordered FIFO with no
//     goroutine-scheduling dependence, and the intra-step sharded stepper
//     (SetShards, shard.go) is byte-identical to the serial step at every
//     shard count — sharding changes wall-clock, never output.
//   - Reset: Reset rewinds the engine to step 0 recycling flights and
//     event records into free lists (results handed out earlier must be
//     consumed first); ClearFlights retires the flight population only;
//     DetachDone is the per-step harvest. Together with the recycling in
//     Inject they make the steady-state step 0 allocs/op — asserted by
//     the Test*AllocFree tests and recorded in the BENCH_*.json baselines.
package engine

import (
	"fmt"

	"ndmesh/internal/block"
	"ndmesh/internal/core"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/route"
)

// Flight is one routing message in flight with its router and context.
type Flight struct {
	Msg    *route.Message
	Router route.Router
	Ctx    route.Context
	// StartStep is the step the message was injected (the t of Table 1).
	StartStep int
	// DistAt[i] is D(i): the distance from the message's current node to
	// its destination when event i occurred (only events after injection).
	DistAt []int
	// EventIdxAt records which global event index each DistAt sample
	// belongs to.
	EventIdxAt []int

	// StallAge counts the consecutive contention steps this flight has
	// spent in place without terminating: it increments every step the
	// flight neither moves nor reaches a terminal state, and resets to 0 on
	// any move. FlightTimeout kills a flight whose StallAge reaches the
	// threshold; the gridlock detector uses the same census in aggregate.
	StallAge int

	// resident marks that the flight is counted in the contention model's
	// per-node residency (cleared when the count is released).
	resident bool

	// stepStable caches route.StepStable(Router) at injection: whether this
	// flight's decisions may be proposed in parallel by the sharded step.
	stepStable bool
	// pd is the decision proposed for this flight by the sharded step's
	// parallel phase; pdOK marks it valid. The serial commit consumes and
	// clears it every step.
	pd   route.Decision
	pdOK bool
}

// EventRecord captures one fault occurrence (or recovery) and the
// convergence of the information constructions it triggered.
type EventRecord struct {
	// Index is i (1-based over the schedule).
	Index int
	// Step is t_i.
	Step int
	// Round is the model round count when the event was applied.
	Round int
	Kind  fault.Kind
	Node  grid.NodeID

	// ARounds/FrameRounds/BRounds/CRounds are rounds from the event until
	// the last labeling / frame / identification / boundary activity
	// attributable to it (finalized when the next event fires or the run
	// ends).
	ARounds, FrameRounds, BRounds, CRounds int
	// ASteps is ceil(ARounds/λ) etc., the step-denominated stabilization
	// times the theorems use.
	ASteps, BSteps, CSteps int
	// Affected is the number of distinct nodes that changed status.
	Affected int
	// EMaxAfter is e_max measured after this event's constructions.
	EMaxAfter int
	// RecordsAfter is the information-store size after this event's
	// constructions (memory metric snapshot).
	RecordsAfter int

	finalized bool
}

// ContentionConfig configures the opt-in link/channel contention model:
// instead of every flight teleporting one hop per step, concurrent flights
// arbitrate for directed links (and downstream router buffers) and wait in
// place when they lose, which is what turns the engine into a
// load-measurement instrument (latency-throughput curves, saturation).
type ContentionConfig struct {
	// LinkRate is the service rate of every directed link: how many
	// messages may cross it per step. Values < 1 mean 1.
	LinkRate int
	// NodeCapacity caps the flights resident at one node (the router's
	// input-queue depth): a flight may not move onto a node already
	// holding that many, and injection at a full source is refused
	// (Admit). 0 means unbounded buffering.
	NodeCapacity int

	// GridlockWindow enables gridlock detection: K consecutive steps in
	// which no active flight moves or terminates, while the active
	// population is nonzero, latch the Gridlocked state (injections alone
	// are not progress — a frozen population stays frozen no matter how
	// many newcomers squeeze in behind it). The latch clears the first step
	// any flight makes progress again, so escape mechanisms can recover a
	// detected gridlock. 0 disables detection.
	GridlockWindow int

	// FlightTimeout kills a flight that has stalled in place for this many
	// consecutive steps (Flight.StallAge): the message is marked TimedOut,
	// a terminal state the next DetachDone harvests like any other, which
	// releases its buffer slot and — in a closed-loop workload — re-arms
	// the source's window slot for a retry. 0 disables timeouts.
	FlightTimeout int

	// Bubble enables bubble-style admission: injection requires the source
	// buffer to retain at least one free slot after the new flight is
	// admitted (Admit demands resident+1 < NodeCapacity). In-transit moves
	// are slot-neutral under the existing gate, so with every buffer keeping
	// a bubble, the buffer-cycle deadlock that finite capacities invite
	// cannot form by construction. Requires NodeCapacity >= 2 to admit
	// anything; ignored when NodeCapacity is unbounded.
	Bubble bool
}

// contention is the engine's per-step arbitration state. served/dirty
// implement an O(active links) per-step reset: served is indexed by
// directed link (node*2n + dir) and only the entries touched this step —
// recorded in dirty — are cleared, so a contention step allocates nothing
// and never scans the full link array.
//
// pending/lastPending are the LoadView side of the same scheme: every gate
// denial is counted against its directed link in pending, and at the start
// of each step the two arrays swap, so lastPending holds the previous
// step's stall counts — a stable, step-consistent queueing-pressure signal
// the Congested router reads through route.LoadView while the current
// step's denials accumulate separately.
type contention struct {
	enabled bool
	cfg     ContentionConfig

	served      []int32 // crossings granted per directed link this step
	dirty       []int32 // link indexes with served != 0
	pending     []int32 // traversal stalls per directed link this step
	pendingDty  []int32 // link indexes with pending != 0
	lastPending []int32 // previous step's stalls (the LinkPending view)
	lastDty     []int32 // link indexes with lastPending != 0
	resident    []int32 // active flights currently at each node
	numDirs     int32
	gateFn      route.Gate // bound method value, built once at enable

	// Gridlock-detector state (GridlockWindow > 0). zeroStreak counts
	// consecutive zero-progress steps with nonzero population; gridlocked
	// is the current latch. gridlockAt/recoverAt log the first episode:
	// the step the detector first fired and the first subsequent step with
	// progress (-1 = never).
	zeroStreak int
	gridlocked bool
	gridlockAt int
	recoverAt  int
}

// The engine is the contention model's load view: routers reach Resident
// and LinkPending through route.Context.Load.
var _ route.LoadView = (*Engine)(nil)

// Engine drives one simulation.
type Engine struct {
	Model  *core.Model //meshvet:keep configuration; Model.Reset is the caller's move (see Simulation.Reset)
	Lambda int         //meshvet:keep configuration, survives trials

	Schedule *fault.Schedule //meshvet:keep configuration; evIdx rewinds instead
	evIdx    int

	step    int
	flights []*Flight

	// Events is the per-occurrence log (one record per schedule event).
	Events []*EventRecord

	// RoundsRun counts total information rounds executed.
	RoundsRun int

	// spareFlights and spareEvents are free lists fed by Reset/ClearFlights:
	// a reused trial re-injects messages and logs events without
	// reallocating flight, message, or record objects.
	spareFlights []*Flight
	spareEvents  []*EventRecord

	// oracle computes EMaxAfter in finalizeLastEvent with reusable buffers
	// (a fault process applies events all run long; the centralized Extract
	// would allocate per event).
	oracle block.Oracle //meshvet:keep reusable compute buffers, overwritten per event

	ctn    contention
	shards shardSet //meshvet:keep worker-pool configuration, reconfigured via SetShards

	// probe, when non-nil, receives the per-step census assembled in the
	// serial commit (see probe.go); census is the accumulator between
	// flushes. Observation is read-only: no decision consults either.
	probe  Probe //meshvet:keep observer registration survives trials (SetProbe detaches)
	census StepCensus
}

// New builds an engine over a model with the given λ (rounds of information
// exchange per step; λ >= 1).
func New(md *core.Model, lambda int, sched *fault.Schedule) *Engine {
	if lambda < 1 {
		lambda = 1
	}
	if sched == nil {
		sched = &fault.Schedule{}
	}
	return &Engine{Model: md, Lambda: lambda, Schedule: sched}
}

// StepCount returns the current step number.
func (e *Engine) StepCount() int { return e.step }

// EnableContention switches the engine into contention mode with the given
// configuration. Buffers are sized for the model's mesh on first enable
// and reused afterwards; enabling mid-run restarts the arbitration state
// with the current flights' positions.
func (e *Engine) EnableContention(cfg ContentionConfig) {
	if cfg.LinkRate < 1 {
		cfg.LinkRate = 1
	}
	c := &e.ctn
	c.cfg = cfg
	c.enabled = true
	n := e.Model.M.NumNodes()
	c.numDirs = int32(e.Model.M.Shape().NumDirs())
	if len(c.served) != n*int(c.numDirs) {
		c.served = make([]int32, n*int(c.numDirs))
		c.pending = make([]int32, n*int(c.numDirs))
		c.lastPending = make([]int32, n*int(c.numDirs))
	}
	if len(c.resident) != n {
		c.resident = make([]int32, n)
	}
	if c.gateFn == nil {
		c.gateFn = e.gate
	}
	e.resetContention()
	for _, f := range e.flights {
		f.resident = !f.Msg.Done()
		if f.resident {
			c.resident[f.Msg.Cur]++
		}
	}
}

// DisableContention returns the engine to the contention-free model,
// keeping the buffers for a later re-enable.
func (e *Engine) DisableContention() { e.ctn.enabled = false }

// ContentionEnabled reports whether the contention model is active.
func (e *Engine) ContentionEnabled() bool { return e.ctn.enabled }

// Resident returns the number of active flights currently at the node
// (contention mode only; 0 otherwise). Together with LinkPending it
// implements route.LoadView, the load signal congestion-aware routers
// consult.
func (e *Engine) Resident(id grid.NodeID) int {
	if !e.ctn.enabled {
		return 0
	}
	return int(e.ctn.resident[id])
}

// LinkPending returns how many traversals stalled on the directed link
// (from, dir) during the previous step — the link's queueing pressure
// (contention mode only; 0 otherwise). The one-step lag keeps the view
// consistent for every flight deciding within a step.
func (e *Engine) LinkPending(from grid.NodeID, dir grid.Dir) int {
	if !e.ctn.enabled {
		return 0
	}
	return int(e.ctn.lastPending[int32(from)*e.ctn.numDirs+int32(dir)])
}

// Admit reports whether a new flight may be injected at src under the
// configured node capacity. Without contention (or with unbounded
// capacity) every injection is admitted. With Bubble admission the source
// must keep one slot free after the injection, so the effective injection
// limit is NodeCapacity-1.
func (e *Engine) Admit(src grid.NodeID) bool {
	c := &e.ctn
	if !c.enabled || c.cfg.NodeCapacity <= 0 {
		return true
	}
	limit := c.cfg.NodeCapacity
	if c.cfg.Bubble {
		limit--
	}
	return int(c.resident[src]) < limit
}

// Gridlocked reports whether the zero-progress detector is currently
// latched: GridlockWindow consecutive steps saw a nonzero flight population
// make no progress at all. The latch clears as soon as any flight moves or
// terminates (e.g. a FlightTimeout kill), so under an escape mechanism a
// gridlock is a transient, not a verdict.
func (e *Engine) Gridlocked() bool { return e.ctn.enabled && e.ctn.gridlocked }

// GridlockStep returns the 1-based step at which the detector first fired
// in this run, or 0 if it never has. The first episode is latched across
// recoveries so time-to-recovery stays measurable after the fact.
func (e *Engine) GridlockStep() int {
	if !e.ctn.enabled || e.ctn.gridlockAt < 0 {
		return 0
	}
	return e.ctn.gridlockAt + 1
}

// GridlockRecovery returns the number of steps between the detector first
// firing and the first subsequent step with progress (time-to-recovery), or
// 0 if the detector never fired or the run never recovered.
func (e *Engine) GridlockRecovery() int {
	c := &e.ctn
	if !c.enabled || c.gridlockAt < 0 || c.recoverAt < 0 {
		return 0
	}
	return c.recoverAt - c.gridlockAt
}

// resetContention clears the arbitration counters without resizing.
func (e *Engine) resetContention() {
	c := &e.ctn
	for _, li := range c.dirty {
		c.served[li] = 0
	}
	c.dirty = c.dirty[:0]
	for _, li := range c.pendingDty {
		c.pending[li] = 0
	}
	c.pendingDty = c.pendingDty[:0]
	for _, li := range c.lastDty {
		c.lastPending[li] = 0
	}
	c.lastDty = c.lastDty[:0]
	for i := range c.resident {
		c.resident[i] = 0
	}
	c.zeroStreak = 0
	c.gridlocked = false
	c.gridlockAt = -1
	c.recoverAt = -1
}

// gate implements route.Gate: a traversal is granted while the link has
// service budget left this step and the destination router has buffer
// space. Flights are polled in injection order (the order e.flights
// preserves), so each directed link behaves as an age-ordered FIFO: the
// oldest waiting flight wins the next grant — deterministically.
//
//meshvet:noalloc
func (e *Engine) gate(from grid.NodeID, dir grid.Dir) bool {
	c := &e.ctn
	li := int32(from)*c.numDirs + int32(dir)
	if c.served[li] >= int32(c.cfg.LinkRate) {
		return c.deny(li)
	}
	if c.cfg.NodeCapacity > 0 {
		if to := e.Model.M.Neighbor(from, dir); to != grid.InvalidNode &&
			int(c.resident[to]) >= c.cfg.NodeCapacity {
			return c.deny(li)
		}
	}
	if c.served[li] == 0 {
		c.dirty = append(c.dirty, li)
	}
	c.served[li]++
	return true
}

// deny records one stalled traversal on the directed link for next step's
// LinkPending view and returns false (the gate's denial value).
//
//meshvet:noalloc
func (c *contention) deny(li int32) bool {
	if c.pending[li] == 0 {
		c.pendingDty = append(c.pendingDty, li)
	}
	c.pending[li]++
	return false
}

// Reset rewinds the engine to step 0 for a new trial on the same model: the
// schedule cursor returns to the first event, flights and event records are
// recycled into the free lists. The model itself is reset separately
// (core.Model.Reset); the Schedule is shared state the caller repopulates.
//
// Flights and event records handed out before Reset are recycled and MUST
// NOT be read afterwards — consume results before resetting.
func (e *Engine) Reset() {
	e.ClearFlights() // also clears contention residency/service counters
	e.spareEvents = append(e.spareEvents, e.Events...)
	e.Events = e.Events[:0]
	e.evIdx = 0
	e.step = 0
	e.RoundsRun = 0
	e.census = StepCensus{}
}

// ClearFlights retires every flight (recycling it for future Inject calls)
// without touching the schedule, the step counter, or the model. Benchmarks
// use it to re-route over a standing scenario.
func (e *Engine) ClearFlights() {
	e.spareFlights = append(e.spareFlights, e.flights...)
	e.flights = e.flights[:0]
	if e.ctn.enabled {
		e.resetContention()
	}
}

// DetachDone removes every terminated flight from the active list —
// preserving the injection order of the rest, which the contention
// arbitration depends on — calling fn (may be nil) for each before the
// flight is recycled into the free list. Load runs call it every step so
// the active list stays proportional to the in-flight population and
// delivered flights release their router buffer slot; the detached Flight
// must not be retained after fn returns.
//
//meshvet:noalloc
func (e *Engine) DetachDone(fn func(*Flight)) {
	kept := e.flights[:0]
	for _, f := range e.flights {
		if !f.Msg.Done() {
			kept = append(kept, f)
			continue
		}
		if e.ctn.enabled && f.resident {
			e.ctn.resident[f.Msg.Cur]--
			f.resident = false
		}
		if fn != nil {
			fn(f)
		}
		e.spareFlights = append(e.spareFlights, f)
	}
	e.flights = kept
}

// Inject adds a routing message from src to dst under the given router,
// returning its flight. The message takes its first hop at the next Step.
// Under contention with a finite NodeCapacity, injection at a full source
// is an error: admitting it would overfill the router's input buffer and
// break the conservation invariant every gate decision relies on, so
// callers must check Admit first (the open-loop generators count a refusal
// as a drop).
func (e *Engine) Inject(src, dst grid.NodeID, r route.Router) (*Flight, error) {
	if src == dst {
		return nil, fmt.Errorf("engine: source equals destination")
	}
	if !e.Admit(src) {
		return nil, fmt.Errorf("engine: injection at node %d exceeds capacity %d (resident %d); check Admit before Inject",
			src, e.ctn.cfg.NodeCapacity, e.ctn.resident[src])
	}
	// The engine is every flight's load view (route.LoadView): outside
	// contention mode both signals read zero, so load-aware routers
	// collapse to their load-oblivious baselines.
	ctx := route.Context{M: e.Model.M, Load: e, Policy: route.LowestAxis}
	if _, isBlind := r.(route.Blind); !isBlind {
		ctx.Store = e.Model.Store
	}
	var f *Flight
	if n := len(e.spareFlights); n > 0 {
		f = e.spareFlights[n-1]
		e.spareFlights = e.spareFlights[:n-1]
		f.Msg.Reset(src, dst)
		f.Router = r
		// Assign context fields individually: the recycled context keeps
		// its routing scratch buffers (route.Context.coords).
		f.Ctx.M, f.Ctx.Store, f.Ctx.Load, f.Ctx.Policy = ctx.M, ctx.Store, ctx.Load, ctx.Policy
		f.StartStep = e.step
		f.DistAt = f.DistAt[:0]
		f.EventIdxAt = f.EventIdxAt[:0]
	} else {
		f = &Flight{
			Msg:       route.NewMessage(src, dst),
			Router:    r,
			Ctx:       ctx,
			StartStep: e.step,
		}
	}
	f.resident = e.ctn.enabled
	if f.resident {
		e.ctn.resident[src]++
		if e.probe != nil {
			e.census.Injected++
		}
	}
	f.StallAge = 0
	f.stepStable = route.StepStable(r)
	f.pdOK = false
	e.flights = append(e.flights, f)
	return f, nil
}

// Flights returns all injected flights.
func (e *Engine) Flights() []*Flight { return e.flights }

// Step executes one step of Figure 7's model.
//
//meshvet:noalloc
func (e *Engine) Step() {
	// 1. Fault detection: apply the events scheduled for this step. The
	// change is observed by neighbors during the following rounds.
	for e.evIdx < len(e.Schedule.Events) && e.Schedule.Events[e.evIdx].Step <= e.step {
		ev := e.Schedule.Events[e.evIdx]
		e.applyEvent(ev)
		e.evIdx++
	}

	// 2. λ rounds of fault-information exchange and update.
	for i := 0; i < e.Lambda; i++ {
		e.Model.Round()
		e.RoundsRun++
	}

	// 3-5. Message reception, routing decision, message sending: one hop
	// per step for every active flight. Under contention, each step opens
	// with a fresh link-service budget and flights are polled in injection
	// order, so links are granted oldest-first; a flight that loses
	// arbitration waits in place and re-decides next step. With sharding
	// enabled, the decisions of step-stable flights are proposed in
	// parallel first; the loop below is the serial commit that consumes
	// them — same FIFO, byte-identical result (see shard.go).
	if e.ctn.enabled {
		c := &e.ctn
		for _, li := range c.dirty {
			c.served[li] = 0
		}
		c.dirty = c.dirty[:0]
		// Rotate the stall counters: last step's denials become the
		// LinkPending view for this step's decisions, and the cleared array
		// starts accumulating this step's denials.
		for _, li := range c.lastDty {
			c.lastPending[li] = 0
		}
		c.lastPending, c.pending = c.pending, c.lastPending
		c.lastDty, c.pendingDty = c.pendingDty, c.lastDty[:0]
		if e.shards.n > 1 {
			e.propose()
		}
		// The serial commit doubles as the progress census: progressed
		// counts flights that moved or reached a terminal state this step,
		// active counts flights still live afterwards. Both are computed in
		// the always-serial commit, so the census — and everything built on
		// it (gridlock detection, timeouts) — is byte-identical at every
		// shard count.
		progressed, active := 0, 0
		for _, f := range e.flights {
			if f.Msg.Done() {
				continue
			}
			if c.cfg.FlightTimeout > 0 && f.StallAge >= c.cfg.FlightTimeout {
				// Stalled in place past the timeout: kill the flight back to
				// its source. The terminal transition counts as progress (the
				// population shrank), residency is released by the next
				// DetachDone harvest, and any sharded proposal is discarded.
				f.Msg.TimedOut = true
				f.pdOK = false
				progressed++
				if e.probe != nil {
					e.census.TimedOut++
				}
				continue
			}
			before := f.Msg.Cur
			if f.pdOK {
				f.pdOK = false
				route.AdvanceDecided(&f.Ctx, f.Msg, f.pd, c.gateFn)
			} else {
				route.AdvanceGated(&f.Ctx, f.Router, f.Msg, c.gateFn)
			}
			switch cur := f.Msg.Cur; {
			case cur != before:
				if f.resident {
					c.resident[before]--
					c.resident[cur]++
				}
				f.StallAge = 0
				progressed++
				if e.probe != nil {
					e.census.Moves++
					if m := f.Msg; m.Done() {
						e.census.observeTerminal(m.Arrived, m.Unreachable, m.Lost, m.TimedOut)
					}
				}
			case f.Msg.Done():
				// Terminal without a move (unreachable verdict, or lost to a
				// fault under its feet): still progress.
				progressed++
				if e.probe != nil {
					m := f.Msg
					e.census.observeTerminal(m.Arrived, m.Unreachable, m.Lost, m.TimedOut)
				}
			default:
				f.StallAge++
				if e.probe != nil {
					e.census.Stalls++
				}
			}
			if !f.Msg.Done() {
				active++
			}
		}
		if c.cfg.GridlockWindow > 0 {
			if active > 0 && progressed == 0 {
				c.zeroStreak++
				if !c.gridlocked && c.zeroStreak >= c.cfg.GridlockWindow {
					c.gridlocked = true
					if c.gridlockAt < 0 {
						c.gridlockAt = e.step
					}
				}
			} else {
				c.zeroStreak = 0
				if c.gridlocked {
					c.gridlocked = false
					if c.recoverAt < 0 {
						c.recoverAt = e.step
					}
				}
			}
		}
		if e.probe != nil {
			e.census.Steps++
			e.census.InFlight = active
			e.census.Gridlocked = c.gridlocked
		}
	} else {
		for _, f := range e.flights {
			if !f.Msg.Done() {
				route.Advance(&f.Ctx, f.Router, f.Msg)
			}
		}
	}
	e.step++
}

//meshvet:noalloc
func (e *Engine) applyEvent(ev fault.Event) {
	e.finalizeLastEvent()
	var rec *EventRecord
	if n := len(e.spareEvents); n > 0 {
		rec = e.spareEvents[n-1]
		e.spareEvents = e.spareEvents[:n-1]
	} else {
		//meshvet:allow free-list miss: first trial warms the pool; steady state reuses
		rec = &EventRecord{}
	}
	*rec = EventRecord{
		Index: len(e.Events) + 1,
		Step:  e.step,
		Round: e.Model.RoundCount(),
		Kind:  ev.Kind,
		Node:  ev.Node,
	}
	e.Events = append(e.Events, rec)
	e.Model.Labeling.ResetAffected()
	switch ev.Kind {
	case fault.Fail:
		e.Model.ApplyFault(ev.Node)
		if e.probe != nil {
			e.census.Failed++
		}
	case fault.Recover:
		e.Model.ApplyRecovery(ev.Node)
		if e.probe != nil {
			e.census.Recovered++
		}
	}
	// Sample D(i) for every active flight (Theorem 3's measurements).
	for _, f := range e.flights {
		if f.Msg.Done() {
			continue
		}
		d := e.Model.M.Shape().Distance(f.Msg.Cur, f.Msg.Dst)
		f.DistAt = append(f.DistAt, d)
		f.EventIdxAt = append(f.EventIdxAt, rec.Index)
	}
}

// FinalizeEvents closes the accounting of the most recent event record
// against the model's current convergence state. Run and RunFlights call it
// automatically; callers that step the engine manually call it before
// reading Events.
func (e *Engine) FinalizeEvents() { e.finalizeLastEvent() }

// finalizeLastEvent attributes the convergence observed since the previous
// event to that event's record. It recomputes idempotently: calling it
// again after more rounds extends the attribution window of the most
// recent event (earlier events were closed when their successor fired).
func (e *Engine) finalizeLastEvent() {
	if len(e.Events) == 0 {
		return
	}
	rec := e.Events[len(e.Events)-1]
	md := e.Model
	rec.ARounds = clampNonNeg(md.LastLabelRound - rec.Round)
	rec.FrameRounds = clampNonNeg(md.LastFrameRound - rec.Round)
	rec.BRounds = clampNonNeg(md.LastIdentRound - rec.Round)
	rec.CRounds = clampNonNeg(md.LastBoundaryRound - rec.Round)
	rec.ASteps = ceilDiv(rec.ARounds, e.Lambda)
	rec.BSteps = ceilDiv(rec.BRounds, e.Lambda)
	rec.CSteps = ceilDiv(rec.CRounds, e.Lambda)
	rec.Affected = md.Labeling.Affected()
	rec.EMaxAfter = e.oracle.MaxEdge(md.M)
	rec.RecordsAfter = md.Store.TotalRecords()
	rec.finalized = true
}

func clampNonNeg(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Done reports whether all scheduled events fired, all flights terminated,
// and the model is quiescent.
func (e *Engine) Done() bool {
	if e.evIdx < len(e.Schedule.Events) {
		return false
	}
	for _, f := range e.flights {
		if !f.Msg.Done() {
			return false
		}
	}
	return e.Model.Quiescent()
}

// StopReason says why Run or RunFlights stopped stepping. The distinction
// matters most for StopGridlocked: before gridlock detection, a deadlocked
// run spun to StopMaxSteps and was indistinguishable from one that merely
// needed a bigger budget.
type StopReason uint8

const (
	// StopDone: the run completed (Done for Run; all flights terminal for
	// RunFlights).
	StopDone StopReason = iota
	// StopMaxSteps: the step budget ran out with work still pending.
	StopMaxSteps
	// StopGridlocked: the contention engine's zero-progress detector
	// latched (GridlockWindow consecutive dead steps), so further stepping
	// cannot make progress without an escape mechanism.
	StopGridlocked
)

// String implements fmt.Stringer for StopReason.
func (s StopReason) String() string {
	switch s {
	case StopDone:
		return "done"
	case StopMaxSteps:
		return "max-steps"
	case StopGridlocked:
		return "gridlocked"
	}
	return fmt.Sprintf("StopReason(%d)", uint8(s))
}

// Run steps the engine until Done, gridlock detection, or maxSteps,
// finalizing the last event record. It returns the number of steps executed
// and why stepping stopped.
func (e *Engine) Run(maxSteps int) (int, StopReason) {
	start := e.step
	reason := StopMaxSteps
	for e.step-start < maxSteps {
		if e.Done() {
			reason = StopDone
			break
		}
		if e.Gridlocked() {
			reason = StopGridlocked
			break
		}
		e.Step()
	}
	if reason == StopMaxSteps && e.Done() {
		reason = StopDone // finished exactly as the budget ran out
	}
	e.finalizeLastEvent()
	return e.step - start, reason
}

// RunFlights steps the engine until every flight terminates, gridlock
// detection, or maxSteps, without waiting for model quiescence. It returns
// the steps executed and why stepping stopped.
func (e *Engine) RunFlights(maxSteps int) (int, StopReason) {
	start := e.step
	reason := StopMaxSteps
	for e.step-start < maxSteps {
		active := false
		for _, f := range e.flights {
			if !f.Msg.Done() {
				active = true
				break
			}
		}
		if !active {
			reason = StopDone
			break
		}
		if e.Gridlocked() {
			reason = StopGridlocked
			break
		}
		e.Step()
	}
	if reason == StopMaxSteps {
		active := false
		for _, f := range e.flights {
			if !f.Msg.Done() {
				active = true
				break
			}
		}
		if !active {
			reason = StopDone
		}
	}
	e.finalizeLastEvent()
	return e.step - start, reason
}
