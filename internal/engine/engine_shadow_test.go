package engine

import (
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/route"
)

// buildShadowScenario creates a 16x16 mesh with a wide block [4:11, 7:8]
// already stabilized, and returns the model. The source (7,1) routes to
// (7,14): straight up, directly through the block's shadow.
func buildShadowScenario(t *testing.T) (*core.Model, grid.NodeID, grid.NodeID) {
	t.Helper()
	m, err := mesh.NewUniform(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	md := core.New(m)
	for x := 4; x <= 11; x++ {
		for y := 7; y <= 8; y++ {
			md.ApplyFault(shape.Index(grid.Coord{x, y}))
		}
	}
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("model not quiescent after stabilize")
	}
	return md, shape.Index(grid.Coord{7, 1}), shape.Index(grid.Coord{14, 7})
}

// TestShadowAvoidance checks the essence of the information model: with
// boundary information a message destined beyond the block never enters the
// dangerous area (no backtracking, minimal + bounded detour), while the
// blind router walks in and pays with backtracks.
func TestShadowAvoidance(t *testing.T) {
	// Destination straight across the block: src (7,1) -> dst (7,14).
	md, src, _ := buildShadowScenario(t)
	shape := md.M.Shape()
	dst := shape.Index(grid.Coord{7, 14})
	d0 := shape.Distance(src, dst)

	eng := New(md, 4, nil)
	fl, err := eng.Inject(src, dst, route.Limited{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFlights(500)
	if !fl.Msg.Arrived {
		t.Fatalf("limited did not arrive: %v", fl.Msg)
	}
	t.Logf("limited: %v (D=%d)", fl.Msg, d0)
	if fl.Msg.Backtracks != 0 {
		t.Errorf("limited router backtracked %d times despite boundary info", fl.Msg.Backtracks)
	}
	// The block spans x 4..11; source at x=7 must slide to x=3 or x=12 and
	// around: detour = 2*min(7-3, 12-7) = 8 extra hops at most.
	if fl.Msg.Hops > d0+10 {
		t.Errorf("limited detour too large: hops=%d, D=%d", fl.Msg.Hops, d0)
	}

	// Blind router on an identical fabric.
	md2, src2, _ := buildShadowScenario(t)
	dst2 := md2.M.Shape().Index(grid.Coord{7, 14})
	eng2 := New(md2, 4, nil)
	fl2, err := eng2.Inject(src2, dst2, route.Blind{})
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunFlights(500)
	if !fl2.Msg.Arrived {
		t.Fatalf("blind did not arrive: %v", fl2.Msg)
	}
	t.Logf("blind:   %v (D=%d)", fl2.Msg, d0)
	if fl2.Msg.Hops <= fl.Msg.Hops {
		t.Errorf("blind (%d hops) should pay more than limited (%d hops) across the shadow",
			fl2.Msg.Hops, fl.Msg.Hops)
	}
}

// TestShadowNotTrapped checks the critical-routing condition is precise: a
// destination beyond the block on the far side but OUTSIDE the block's span
// is not trapped, so no demotion may occur and the route stays minimal.
func TestShadowNotTrapped(t *testing.T) {
	md, src, dst := buildShadowScenario(t) // dst (14,7): same row as block, outside span? x=14 > 11: outside
	shape := md.M.Shape()
	d0 := shape.Distance(src, dst)
	eng := New(md, 4, nil)
	fl, err := eng.Inject(src, dst, route.Limited{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFlights(500)
	if !fl.Msg.Arrived {
		t.Fatalf("did not arrive: %v", fl.Msg)
	}
	t.Logf("limited to untrapped dst: %v (D=%d)", fl.Msg, d0)
	if fl.Msg.Hops != d0 {
		t.Errorf("route should be minimal (dst not trapped): hops=%d, D=%d", fl.Msg.Hops, d0)
	}
}
