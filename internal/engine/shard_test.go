package engine

import (
	"fmt"
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
)

// TestShardedStepMatchesSerial is the sharded stepper's core contract at
// the engine level: a serial engine and a sharded one driven through the
// identical randomized scenario — mixed routers (including the
// non-step-stable congested router), dynamic faults, bursty injection,
// finite buffers — agree on every message's full observable state after
// every step, for several shard counts. CI runs it under -race, which
// also certifies the propose fan-out shares no mutable state.
func TestShardedStepMatchesSerial(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 16} {
		t.Run(fmt.Sprint("shards", shards), func(t *testing.T) {
			build := func() (*Engine, *mesh.Mesh) {
				m, err := mesh.NewUniform(2, 12)
				if err != nil {
					t.Fatal(err)
				}
				md := core.New(m)
				r := rng.New(99)
				sched, err := fault.Generate(m.Shape(), 3, fault.Options{Interval: 12, Start: 5}, r)
				if err != nil {
					t.Fatal(err)
				}
				e := New(md, 1, sched)
				e.EnableContention(ContentionConfig{LinkRate: 1, NodeCapacity: 3})
				return e, m
			}
			serial, _ := build()
			sharded, _ := build()
			sharded.SetShards(shards)
			defer sharded.SetShards(1)

			routers := []route.Router{route.Limited{}, route.Congested{}, route.Blind{}}
			r := rng.New(7)
			n := serial.Model.M.NumNodes()
			for step := 0; step < 80; step++ {
				for k := r.Intn(8); k > 0; k-- {
					src := grid.NodeID(r.Intn(n))
					dst := grid.NodeID(r.Intn(n))
					rtr := routers[r.Intn(len(routers))]
					if src == dst || serial.Model.M.Status(src) != mesh.Enabled || !serial.Admit(src) {
						continue
					}
					if _, err := serial.Inject(src, dst, rtr); err != nil {
						t.Fatal(err)
					}
					if _, err := sharded.Inject(src, dst, rtr); err != nil {
						t.Fatal(err)
					}
				}
				serial.Step()
				sharded.Step()
				sf, pf := serial.Flights(), sharded.Flights()
				if len(sf) != len(pf) {
					t.Fatalf("step %d: flight counts diverged: %d vs %d", step, len(sf), len(pf))
				}
				for i := range sf {
					a, b := sf[i].Msg, pf[i].Msg
					as := fmt.Sprintf("%v waits=%d arrived=%v unreach=%v lost=%v", a, a.Waits, a.Arrived, a.Unreachable, a.Lost)
					bs := fmt.Sprintf("%v waits=%d arrived=%v unreach=%v lost=%v", b, b.Waits, b.Arrived, b.Unreachable, b.Lost)
					if as != bs {
						t.Fatalf("step %d flight %d diverged:\n serial  %s\n sharded %s", step, i, as, bs)
					}
				}
				for id := 0; id < n; id++ {
					if a, b := serial.Resident(grid.NodeID(id)), sharded.Resident(grid.NodeID(id)); a != b {
						t.Fatalf("step %d node %d: residency diverged %d vs %d", step, id, a, b)
					}
				}
				serial.DetachDone(nil)
				sharded.DetachDone(nil)
			}
		})
	}
}

// TestShardedStepAllocFree extends the steady-state 0 allocs/op guarantee
// to the sharded step: propose kick-off, the parallel Decide fan-out, the
// barrier and the serial commit must all recycle — CI asserts it so the
// per-shard step cost stays allocation-free.
func TestShardedStepAllocFree(t *testing.T) {
	e, shape := newContentionEngine(t, 16, ContentionConfig{LinkRate: 1, NodeCapacity: 4})
	e.SetShards(4)
	defer e.SetShards(1)
	srcs := []grid.Coord{{1, 1}, {14, 1}, {1, 14}, {14, 14}, {7, 2}, {2, 7}}
	dsts := []grid.Coord{{14, 14}, {1, 14}, {14, 1}, {1, 1}, {7, 13}, {13, 7}}
	// Mixed router fleet so the sharded alloc assertion covers the Blind
	// decide path too (Limited and Congested have dedicated assertions).
	routers := []route.Router{route.Limited{}, route.Blind{}, route.Limited{}, route.Blind{}, route.Limited{}, route.Blind{}}
	inject := func() {
		for i := range srcs {
			if _, err := e.Inject(shape.Index(srcs[i]), shape.Index(dsts[i]), routers[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	inject()
	for i := 0; i < 200; i++ {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded contention step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSetShardsClampsAndRestores pins the knob's edges: values below 1
// and above the node count clamp, and returning to 1 restores the serial
// stepper (the worker teardown path).
func TestSetShardsClamps(t *testing.T) {
	e, _ := newContentionEngine(t, 4, ContentionConfig{LinkRate: 1})
	if got := e.Shards(); got != 1 {
		t.Fatalf("fresh engine shards = %d, want 1", got)
	}
	e.SetShards(0)
	if got := e.Shards(); got != 1 {
		t.Fatalf("SetShards(0) -> %d, want 1", got)
	}
	e.SetShards(1 << 20) // clamps to the node count
	if got, n := e.Shards(), e.Model.M.NumNodes(); got != n {
		t.Fatalf("SetShards(huge) -> %d, want node count %d", got, n)
	}
	e.SetShards(1)
	if got := e.Shards(); got != 1 {
		t.Fatalf("SetShards(1) -> %d, want 1", got)
	}
}

// TestInjectRejectsOverCapacity pins the latent-state fix on the
// injection path: under contention with a finite NodeCapacity, an Inject
// that skips Admit cannot silently overfill a router buffer — it is
// rejected, and the residency counter stays at capacity.
func TestInjectRejectsOverCapacity(t *testing.T) {
	e, shape := newContentionEngine(t, 6, ContentionConfig{LinkRate: 1, NodeCapacity: 2})
	src := shape.Index(grid.Coord{2, 2})
	dst := shape.Index(grid.Coord{5, 5})
	for i := 0; i < 2; i++ {
		if !e.Admit(src) {
			t.Fatalf("injection %d: source unexpectedly full", i)
		}
		if _, err := e.Inject(src, dst, route.Limited{}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Admit(src) {
		t.Fatal("Admit true at a full source")
	}
	if _, err := e.Inject(src, dst, route.Limited{}); err == nil {
		t.Fatal("Inject at a full source succeeded; want capacity error")
	}
	if got := e.Resident(src); got != 2 {
		t.Fatalf("residency after rejected injection = %d, want 2", got)
	}
	// Unbounded capacity (0) and contention-free mode keep accepting.
	e2, shape2 := newContentionEngine(t, 6, ContentionConfig{LinkRate: 1})
	s2, d2 := shape2.Index(grid.Coord{1, 1}), shape2.Index(grid.Coord{4, 4})
	for i := 0; i < 8; i++ {
		if _, err := e2.Inject(s2, d2, route.Limited{}); err != nil {
			t.Fatalf("unbounded injection %d rejected: %v", i, err)
		}
	}
	e2.DisableContention()
	if _, err := e2.Inject(s2, d2, route.Limited{}); err != nil {
		t.Fatalf("contention-free injection rejected: %v", err)
	}
}
