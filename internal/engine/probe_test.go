package engine

// Census-probe tests at the engine level. The concrete recorders live in
// internal/probe (which imports this package), so these tests use a
// local fake to avoid the import cycle; the recorder-side behavior is
// covered in internal/probe's own tests and the end-to-end byte-identity
// tests at the repository root.

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/route"
)

// censusLog is a fake Probe: it copies every flushed census (folding the
// call-scoped slice views into owned snapshots).
type censusLog struct {
	rows     []StepCensus
	resident [][]int32
	stalls   [][]int32
}

func (c *censusLog) ObserveStep(cs StepCensus) {
	res := append([]int32(nil), cs.Resident...)
	var st []int32
	for _, li := range cs.LinkStallsDirty {
		if cs.LinkStalls[li] > 0 {
			st = append(st, li, cs.LinkStalls[li])
		}
	}
	cs.Resident, cs.LinkStalls, cs.LinkStallsDirty = nil, nil, nil
	c.rows = append(c.rows, cs)
	c.resident = append(c.resident, res)
	c.stalls = append(c.stalls, st)
}

// TestProbeCensusCounts pins the per-step census against a fully
// hand-checkable scenario: two flights contending for one link (see
// TestContentionSerializesLink for the underlying arbitration pins).
func TestProbeCensusCounts(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	log := &censusLog{}
	e.SetProbe(log)
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	if _, err := e.Inject(src, dst, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inject(src, dst, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e.Step()
		e.DetachDone(nil)
		e.FlushCensus()
	}
	if len(log.rows) != 4 {
		t.Fatalf("%d flushes, want 4", len(log.rows))
	}
	// Step 1: f1 moves, f2 loses arbitration. The injections happened
	// before the first step, so they land in the first census.
	r := log.rows[0]
	if r.Step != 1 || r.Steps != 1 || r.Injected != 2 || r.Moves != 1 || r.Stalls != 1 || r.InFlight != 2 {
		t.Fatalf("step 1 census %+v, want step=1 steps=1 injected=2 moves=1 stalls=1 inflight=2", r)
	}
	// The lost arbitration is charged to the +X link out of (3,3) —
	// pending rotates at the next step's start, so the flush's LinkStalls
	// view shows this step's denial.
	wantLink := int32(src)*int32(shape.NumDirs()) + 0 // dir 0 = +X
	if len(log.stalls[0]) != 2 || log.stalls[0][0] != wantLink || log.stalls[0][1] != 1 {
		t.Fatalf("step 1 link stalls %v, want [%d 1]", log.stalls[0], wantLink)
	}
	// Residency at flush 1: f1 at (4,3), f2 still at (3,3).
	if log.resident[0][src] != 1 || log.resident[0][shape.Index(grid.Coord{4, 3})] != 1 {
		t.Fatalf("step 1 residency: src=%d mid=%d, want 1/1",
			log.resident[0][src], log.resident[0][shape.Index(grid.Coord{4, 3})])
	}
	// Steps 2-4: f1 arrives at step 2 (distance 2), f2 at step 3.
	if r := log.rows[1]; r.Delivered != 1 || r.Moves != 2 || r.InFlight != 1 {
		t.Fatalf("step 2 census %+v, want delivered=1 moves=2 inflight=1", r)
	}
	if r := log.rows[2]; r.Delivered != 1 || r.Moves != 1 || r.InFlight != 0 {
		t.Fatalf("step 3 census %+v, want delivered=1 moves=1 inflight=0", r)
	}
	if r := log.rows[3]; r.Steps != 1 || r.Delivered != 0 || r.Moves != 0 || r.Stalls != 0 {
		t.Fatalf("step 4 census %+v, want an all-quiet step", r)
	}
}

// TestProbeDecimation pins the aggregate-counters / sample-gauges
// semantics of a decimated flush: one flush covering N steps reports the
// sums of the counters and the last step's gauges.
func TestProbeDecimation(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	log := &censusLog{}
	e.SetProbe(log)
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	e.Inject(src, dst, route.DOR{})
	e.Inject(src, dst, route.DOR{})
	for i := 0; i < 4; i++ {
		e.Step()
		e.DetachDone(nil)
	}
	e.FlushCensus()
	if len(log.rows) != 1 {
		t.Fatalf("%d flushes, want 1", len(log.rows))
	}
	r := log.rows[0]
	// Aggregates over all four steps; gauges from step 4 (quiet, empty).
	if r.Step != 4 || r.Steps != 4 || r.Injected != 2 || r.Delivered != 2 || r.Moves != 4 || r.Stalls != 1 || r.InFlight != 0 {
		t.Fatalf("decimated census %+v, want step=4 steps=4 injected=2 delivered=2 moves=4 stalls=1 inflight=0", r)
	}
}

// TestProbeFlushEmptyIsNoOp pins that FlushCensus without a probe, or
// with no steps covered, emits nothing.
func TestProbeFlushEmptyIsNoOp(t *testing.T) {
	e, _ := newContentionEngine(t, 4, ContentionConfig{LinkRate: 1})
	e.FlushCensus() // no probe: must not panic
	log := &censusLog{}
	e.SetProbe(log)
	e.FlushCensus() // no steps covered yet
	if len(log.rows) != 0 {
		t.Fatalf("flush with no covered steps emitted %d rows", len(log.rows))
	}
	e.Step()
	e.FlushCensus()
	e.FlushCensus() // immediately re-flushing covers zero steps
	if len(log.rows) != 1 {
		t.Fatalf("double flush emitted %d rows, want 1", len(log.rows))
	}
}

// TestProbeTimeoutAndRetry pins the TimedOut classification of flights
// killed by FlightTimeout, the NoteRetried report path (same flush as
// the timeout), and the Gridlocked gauge around the episode.
func TestProbeTimeoutAndRetry(t *testing.T) {
	const window, timeout = 2, 4
	// The minimal constructed deadlock: a head-on pair with capacity-1
	// buffers wedges until the timeout kills both flights.
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1,
		GridlockWindow: window, FlightTimeout: timeout,
	})
	log := &censusLog{}
	e.SetProbe(log)
	headOnPair(t, e, shape)
	for i := 0; i < timeout+2; i++ {
		e.Step()
		e.DetachDone(func(fl *Flight) {
			if fl.Msg.TimedOut {
				e.NoteRetried()
			}
		})
		e.FlushCensus()
	}
	timedOut, retried := 0, 0
	for _, r := range log.rows {
		timedOut += r.TimedOut
		retried += r.Retried
		if r.TimedOut != r.Retried {
			t.Fatalf("census %+v: retry not in the same flush as its timeout", r)
		}
	}
	if timedOut != 2 || retried != 2 {
		t.Fatalf("census saw %d timeouts / %d retries, want 2/2", timedOut, retried)
	}
	// The detector latches after `window` dead steps and the kill step
	// unlatches it: the gauge must show the episode.
	if !log.rows[window-1].Gridlocked {
		t.Fatalf("census %+v at detection step not gridlocked", log.rows[window-1])
	}
	if last := log.rows[len(log.rows)-1]; last.Gridlocked {
		t.Fatalf("census %+v still gridlocked after the kills", last)
	}
}

// TestSetProbeDetachesAndClears pins that SetProbe(nil) stops
// accumulation and clears any partial census, so a pooled engine cannot
// leak one run's census into the next.
func TestSetProbeDetachesAndClears(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	log := &censusLog{}
	e.SetProbe(log)
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	e.Inject(src, dst, route.DOR{})
	e.Step() // accumulates, not flushed
	e.SetProbe(nil)
	e.SetProbe(log)
	e.Step()
	e.FlushCensus()
	if len(log.rows) != 1 {
		t.Fatalf("%d flushes, want 1", len(log.rows))
	}
	// Steps=1: the pre-detach step's accumulation must be gone.
	if r := log.rows[0]; r.Steps != 1 || r.Injected != 0 {
		t.Fatalf("census after re-attach %+v, want steps=1 injected=0", r)
	}
}

// TestProbedStepMatchesUnprobed pins read-only observation at the engine
// level: the same scenario stepped with and without a probe produces
// identical flight outcomes.
func TestProbedStepMatchesUnprobed(t *testing.T) {
	outcome := func(probed bool) []int {
		e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1, NodeCapacity: 2})
		if probed {
			e.SetProbe(&censusLog{})
		}
		srcs := []grid.Coord{{1, 1}, {6, 1}, {1, 6}, {6, 6}, {3, 3}, {4, 4}}
		dsts := []grid.Coord{{6, 6}, {1, 6}, {6, 1}, {1, 1}, {4, 3}, {3, 4}}
		var flights []*Flight
		for i := range srcs {
			fl, err := e.Inject(shape.Index(srcs[i]), shape.Index(dsts[i]), route.Limited{})
			if err != nil {
				t.Fatal(err)
			}
			flights = append(flights, fl)
		}
		for i := 0; i < 40; i++ {
			e.Step()
			if probed {
				e.FlushCensus()
			}
		}
		var out []int
		for _, fl := range flights {
			out = append(out, fl.Msg.Steps, fl.Msg.Waits, int(fl.Msg.Cur))
		}
		return out
	}
	plain, probed := outcome(false), outcome(true)
	for i := range plain {
		if plain[i] != probed[i] {
			t.Fatalf("probed run diverged at %d: %v vs %v", i, plain, probed)
		}
	}
}
