// Intra-step sharding: the contention-mode step partitioned across worker
// goroutines WITHIN one scenario, complementing internal/par's across-
// scenario fan-out. The mesh's nodes are split into contiguous ID ranges
// (shards); each step's routing phase runs in two phases:
//
//  1. Propose (parallel): every shard walks the flight list, picks the
//     flights resident in its node range, and precomputes their routing
//     decisions against the frozen step-start state — the mesh, the record
//     store and the previous step's LinkPending view do not change during
//     the routing phase, so for a route.StepStable router the proposed
//     decision is exactly what a serial Decide at commit time would return.
//  2. Commit (serial, flight-age order): the same FIFO loop the serial
//     gate implements — link-service budgets, node-capacity checks and
//     residency updates are applied in injection order, consuming the
//     proposals. Flights whose router is not step-stable (Congested reads
//     mid-step residency, Oracle caches internal state) skip the propose
//     phase and are decided here serially.
//
// Because proposals equal serial decisions and the commit is the serial
// loop verbatim, the sharded step is byte-identical to the serial engine
// at every shard count — the internal/par determinism contract extended
// inside a step (pinned by TestShardedStepMatchesSerial and the E19/E20
// shard matrices). The barrier between the phases is the only
// synchronization; a steady-state step performs no allocation (persistent
// workers, pre-sized channels — TestShardedStepAllocFree).

package engine

import "ndmesh/internal/grid"

// shardSet is the engine's intra-step sharding state: the node ranges and
// the persistent worker goroutines that propose for shards 1..n-1 (shard 0
// is proposed on the stepping goroutine between kick-off and the barrier).
type shardSet struct {
	n      int
	lo, hi []grid.NodeID   // shard i owns nodes [lo[i], hi[i])
	start  []chan struct{} // one kick channel per worker (shard i+1)
	done   chan struct{}   // shared completion channel, capacity n-1
}

// SetShards configures intra-step sharding for the contention-mode step:
// n > 1 partitions the mesh's nodes into n contiguous shards and spawns
// n-1 persistent worker goroutines; n <= 1 restores the serial step and
// stops the workers. The step result is byte-identical at every shard
// count — sharding changes wall-clock, never output. Values above the node
// count are clamped. Callers that enable sharding own the teardown: call
// SetShards(1) before abandoning the engine, or the workers leak.
func (e *Engine) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if nodes := e.Model.M.NumNodes(); n > nodes {
		n = nodes
	}
	s := &e.shards
	if n == s.n || (n == 1 && s.n == 0) {
		return
	}
	e.stopShardWorkers()
	s.n = n
	if n == 1 {
		return
	}
	nodes := e.Model.M.NumNodes()
	s.lo, s.hi = s.lo[:0], s.hi[:0]
	for i := 0; i < n; i++ {
		s.lo = append(s.lo, grid.NodeID(i*nodes/n))
		s.hi = append(s.hi, grid.NodeID((i+1)*nodes/n))
	}
	s.done = make(chan struct{}, n-1)
	s.start = make([]chan struct{}, n-1)
	for i := range s.start {
		ch := make(chan struct{}, 1)
		s.start[i] = ch
		shard := i + 1
		go func() {
			for range ch {
				e.proposeShard(shard)
				s.done <- struct{}{}
			}
		}()
	}
}

// Shards returns the configured shard count (1 = serial stepping).
func (e *Engine) Shards() int {
	if e.shards.n < 1 {
		return 1
	}
	return e.shards.n
}

// stopShardWorkers terminates the propose workers. Safe only between
// steps, when every worker is parked on its kick channel (SetShards and
// the step loop run on the same goroutine, so this always holds).
func (e *Engine) stopShardWorkers() {
	s := &e.shards
	for _, ch := range s.start {
		close(ch)
	}
	s.start, s.done = nil, nil
	s.n = 1
}

// propose runs the parallel phase of a sharded step: workers propose for
// shards 1..n-1 while the caller proposes shard 0, then the barrier —
// after which every active step-stable flight carries its decision and
// the serial commit may consume them. The channel handshakes establish
// the happens-before edges that make the flight list and the proposal
// fields race-free.
//
//meshvet:noalloc
func (e *Engine) propose() {
	s := &e.shards
	for _, ch := range s.start {
		ch <- struct{}{}
	}
	e.proposeShard(0)
	for range s.start {
		<-s.done
	}
}

// proposeShard precomputes decisions for the active step-stable flights
// resident in shard i's node range. Flights of non-step-stable routers
// (and the defensive already-at-destination case, which the serial loop
// terminates before deciding) are left without a proposal, so the commit
// falls back to deciding them serially — identical either way.
//
//meshvet:noalloc
func (e *Engine) proposeShard(i int) {
	lo, hi := e.shards.lo[i], e.shards.hi[i]
	for _, f := range e.flights {
		msg := f.Msg
		if msg.Cur < lo || msg.Cur >= hi || msg.Done() {
			continue
		}
		if !f.stepStable || msg.Cur == msg.Dst {
			continue
		}
		f.pd = f.Router.Decide(&f.Ctx, msg)
		f.pdOK = true
	}
}

// ResidencyCensus returns a copy of the per-node residency counters,
// regardless of whether contention is currently enabled — a testing and
// debugging aid for asserting that a finished load run released every
// counter (Resident reads zero once contention is disabled, which would
// mask stale state).
func (e *Engine) ResidencyCensus() []int {
	out := make([]int, len(e.ctn.resident))
	for i, r := range e.ctn.resident {
		out[i] = int(r)
	}
	return out
}
