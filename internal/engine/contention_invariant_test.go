package engine

import (
	"fmt"
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
	"ndmesh/internal/route"
)

// TestContentionConservation is the conservation law of the contention
// model, checked every step over randomized schedules (random shapes,
// routers, capacities, injection bursts and dynamic fault overlays):
//
//   - flights partition exactly: injected == delivered + unreachable +
//     lost + timed-out + in-flight, at every step;
//   - the per-node residency counters sum to the number of live
//     (not-yet-detached, not-yet-done) flights, and every per-node count
//     matches a direct census of flight positions.
//
// A third of the trials enable the deadlock-escape configuration (flight
// timeouts, gridlock detection, bubble admission) so timed-out kills are
// exercised against the same invariants, and the trials cycle through
// intra-step shard counts 1/2/3 — the census and the timeout path live in
// the serial commit, and this is where that claim is audited. CI runs the
// package under -race, so the test also certifies the counter bookkeeping
// involves no hidden shared state.
func TestContentionConservation(t *testing.T) {
	for trial := 0; trial < 24; trial++ {
		trial := trial
		t.Run(fmt.Sprint("trial", trial), func(t *testing.T) {
			r := rng.New(uint64(1000 + trial))
			dims := make([]int, 1+r.Intn(2))
			for i := range dims {
				dims[i] = 4 + r.Intn(5)
			}
			shape, err := grid.NewShape(dims...)
			if err != nil {
				t.Fatal(err)
			}
			m := mesh.New(shape)
			md := core.New(m)

			// Half the trials overlay a dynamic fault schedule.
			sched := &fault.Schedule{}
			if trial%2 == 0 && shape.NumNodes() >= 25 {
				if s, err := fault.Generate(shape, 2, fault.Options{Interval: 8, Start: 4}, r); err == nil {
					sched = s
				}
			}
			cfg := ContentionConfig{
				LinkRate:     1 + r.Intn(2),
				NodeCapacity: r.Intn(3) * 4, // 0 (unbounded), 4 or 8
			}
			if trial%3 == 0 {
				// Escape-mechanism trials: tight buffers so stalls (and under
				// bad luck genuine cycles) occur, a short timeout so kills
				// actually fire, detection enabled, bubble on finite buffers.
				cfg.NodeCapacity = 2 + r.Intn(3)
				cfg.FlightTimeout = 3 + r.Intn(4)
				cfg.GridlockWindow = 2
				cfg.Bubble = r.Bool(0.5)
			}
			e := New(md, 1, sched)
			e.EnableContention(cfg)
			if shards := 1 + trial%3; shards > 1 {
				e.SetShards(shards)
				defer e.SetShards(1)
			}

			routers := []route.Router{route.Limited{}, route.Congested{}, route.Blind{}}
			var injected, delivered, unreachable, lost, timedOut int
			audit := func(step int) {
				t.Helper()
				live := 0
				census := make(map[grid.NodeID]int)
				for _, f := range e.Flights() {
					if !f.Msg.Done() {
						live++
					}
					census[f.Msg.Cur]++
				}
				if got := injected - delivered - unreachable - lost - timedOut - live; got != 0 {
					t.Fatalf("step %d: conservation broken: injected %d != delivered %d + unreachable %d + lost %d + timed-out %d + in-flight %d",
						step, injected, delivered, unreachable, lost, timedOut, live)
				}
				sum := 0
				for id := 0; id < shape.NumNodes(); id++ {
					res := e.Resident(grid.NodeID(id))
					if res != census[grid.NodeID(id)] {
						t.Fatalf("step %d: node %d residency %d, census %d", step, id, res, census[grid.NodeID(id)])
					}
					sum += res
				}
				// Done flights are detached (and their residency released)
				// every step, so the counters must sum to the live count.
				if sum != live {
					t.Fatalf("step %d: residency sum %d != live flights %d", step, sum, live)
				}
			}

			// Escape trials funnel everything into one hotspot: the
			// congestion tree around it is what stalls flights past the
			// timeout, so the TimedOut branch of the partition is exercised.
			hot := grid.NodeID(shape.NumNodes() - 1)
			for step := 0; step < 60; step++ {
				// A burst of injections at enabled, admitted sources.
				for k := r.Intn(6); k > 0; k-- {
					src := grid.NodeID(r.Intn(shape.NumNodes()))
					dst := grid.NodeID(r.Intn(shape.NumNodes()))
					if cfg.FlightTimeout > 0 {
						dst = hot
					}
					if src == dst || m.Status(src) != mesh.Enabled || !e.Admit(src) {
						continue
					}
					if _, err := e.Inject(src, dst, routers[r.Intn(len(routers))]); err != nil {
						t.Fatal(err)
					}
					injected++
				}
				e.Step()
				e.DetachDone(func(f *Flight) {
					switch {
					case f.Msg.Arrived:
						delivered++
					case f.Msg.Unreachable:
						unreachable++
					case f.Msg.Lost:
						lost++
					case f.Msg.TimedOut:
						timedOut++
					default:
						t.Fatalf("detached flight not terminal: %v", f.Msg)
					}
				})
				audit(step)
			}
			if cfg.FlightTimeout > 0 {
				t.Logf("escape trial (cap=%d timeout=%d bubble=%v): %d timed-out kills",
					cfg.NodeCapacity, cfg.FlightTimeout, cfg.Bubble, timedOut)
			}
		})
	}
}

// TestFailRepairOccupiedConservation is the fail-mid-flight audit: a
// schedule that fails AND repairs a node while flights are resident on it
// (and queued through it) must leave the conservation partition and the
// residency census intact at every step — no buffer slot, residency count
// or stall counter may leak across the fault or the repair. The funnel
// pattern keeps the victim node's input queue full at both event steps,
// and the cycle repeats so re-failure of a repaired, re-occupied node is
// covered too.
func TestFailRepairOccupiedConservation(t *testing.T) {
	shape, err := grid.NewShape(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(shape)
	md := core.New(m)
	victim := shape.Index(grid.Coord{4, 4})
	sched := &fault.Schedule{Events: []fault.Event{
		{Step: 6, Node: victim, Kind: fault.Fail},
		{Step: 16, Node: victim, Kind: fault.Recover},
		{Step: 26, Node: victim, Kind: fault.Fail},
		{Step: 36, Node: victim, Kind: fault.Recover},
	}}
	cfg := ContentionConfig{LinkRate: 1, NodeCapacity: 2, FlightTimeout: 8, GridlockWindow: 4}
	e := New(md, 1, sched)
	e.EnableContention(cfg)

	routers := []route.Router{route.Limited{}, route.Congested{}}
	// Cross traffic through the victim from all four sides keeps flights
	// resident on it (and stalled against it) when the events land.
	srcs := []grid.Coord{{1, 4}, {7, 4}, {4, 1}, {4, 7}}
	dsts := []grid.Coord{{7, 4}, {1, 4}, {4, 7}, {4, 1}}
	var injected, delivered, unreachable, lost, timedOut int
	sawResidentFail, sawResidentRecover := false, false
	for step := 0; step < 50; step++ {
		for i := range srcs {
			src := shape.Index(srcs[i])
			if m.Status(src) != mesh.Enabled || !e.Admit(src) {
				continue
			}
			if _, err := e.Inject(src, shape.Index(dsts[i]), routers[step%len(routers)]); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		// The events land at the START of Step; note the occupancy going in,
		// so the test proves it audited the interesting case rather than an
		// empty mesh. A Fail must catch flights resident ON the victim; a
		// Recover cannot (nothing routes into a faulty node, and whatever the
		// Fail caught backtracks out or is lost), so there the interesting
		// case is flights resident AGAINST it — parked on its neighbors,
		// stalled by the detour pressure, re-eligible to route through the
		// victim the moment it heals.
		occupied := e.Resident(victim) > 0
		beside := false
		for d := 0; d < shape.NumDirs() && !beside; d++ {
			if nb := shape.Neighbor(victim, grid.Dir(d)); nb != grid.InvalidNode && e.Resident(nb) > 0 {
				beside = true
			}
		}
		e.Step()
		e.DetachDone(func(f *Flight) {
			switch {
			case f.Msg.Arrived:
				delivered++
			case f.Msg.Unreachable:
				unreachable++
			case f.Msg.Lost:
				lost++
			case f.Msg.TimedOut:
				timedOut++
			default:
				t.Fatalf("detached flight not terminal: %v", f.Msg)
			}
		})
		switch {
		case (step+1 == 6 || step+1 == 26) && occupied:
			sawResidentFail = true
		case (step+1 == 16 || step+1 == 36) && beside:
			sawResidentRecover = true
		}
		live := 0
		census := make(map[grid.NodeID]int)
		for _, f := range e.Flights() {
			if !f.Msg.Done() {
				live++
			}
			census[f.Msg.Cur]++
		}
		if got := injected - delivered - unreachable - lost - timedOut - live; got != 0 {
			t.Fatalf("step %d: conservation broken: injected %d != delivered %d + unreachable %d + lost %d + timed-out %d + in-flight %d",
				step, injected, delivered, unreachable, lost, timedOut, live)
		}
		sum := 0
		for id := 0; id < shape.NumNodes(); id++ {
			res := e.Resident(grid.NodeID(id))
			if res != census[grid.NodeID(id)] {
				t.Fatalf("step %d: node %d residency %d, census %d", step, id, res, census[grid.NodeID(id)])
			}
			sum += res
		}
		if sum != live {
			t.Fatalf("step %d: residency sum %d != live flights %d", step, sum, live)
		}
	}
	if !sawResidentFail {
		t.Error("no Fail event landed on an occupied node; the scenario lost its teeth")
	}
	if !sawResidentRecover {
		t.Error("no Recover event landed on an occupied node; the scenario lost its teeth")
	}
	if delivered == 0 {
		t.Error("nothing delivered across the fail/repair cycles")
	}
}

// TestCongestedStepAllocFree extends the steady-state allocation guarantee
// to the congestion-aware path: a contention step driving congested-router
// flights — LoadView queries, stall-gated deviation, the pending-counter
// rotation — performs zero allocations once warm.
func TestCongestedStepAllocFree(t *testing.T) {
	e, shape := newContentionEngine(t, 16, ContentionConfig{LinkRate: 1, NodeCapacity: 4})
	srcs := []grid.Coord{{1, 1}, {1, 2}, {2, 1}, {14, 14}, {13, 14}, {14, 13}}
	dsts := []grid.Coord{{14, 14}, {14, 13}, {13, 14}, {1, 1}, {2, 1}, {1, 2}}
	inject := func() {
		// Crossing bursts from opposite corners guarantee link contention,
		// stalls, and therefore the adaptive branch.
		for i := range srcs {
			if _, err := e.Inject(shape.Index(srcs[i]), shape.Index(dsts[i]), route.Congested{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	inject()
	for i := 0; i < 200; i++ {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	})
	if allocs != 0 {
		t.Fatalf("congested contention step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestFaultProcessStepAllocFree extends the steady-state allocation
// guarantee to the fault-process-enabled contention step — the regime every
// E23 Monte-Carlo trial runs in. One op is a full trial cycle on a pooled
// engine: model reset, engine reset (the schedule cursor rewinds and event
// records recycle through the free list), then the whole stochastic
// fail/repair schedule replayed against crossing traffic with timeouts
// live. After the warm cycles, nothing on that path may allocate: labeling
// recompute buffers, event records, flight distance samples and the
// contention counters must all reuse their capacity.
func TestFaultProcessStepAllocFree(t *testing.T) {
	shape, err := grid.NewShape(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(shape)
	md := core.New(m)
	const horizon = 64
	sched, err := fault.GenerateProcess(shape, fault.ProcessOptions{
		Arrival: fault.Delay{Model: fault.DelayBernoulli, Rate: 0.08},
		Repair:  fault.Delay{Model: fault.DelayBernoulli, Rate: 1.0 / 16},
		Horizon: horizon - 1,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fails, recovers := 0, 0
	for _, ev := range sched.Events {
		switch ev.Kind {
		case fault.Fail:
			fails++
		case fault.Recover:
			recovers++
		}
	}
	if fails == 0 || recovers == 0 {
		t.Fatalf("process drew %d fails / %d recovers; both kinds must exercise the step", fails, recovers)
	}
	e := New(md, 1, sched)
	e.EnableContention(ContentionConfig{LinkRate: 1, NodeCapacity: 4, FlightTimeout: 16, GridlockWindow: 8})
	srcs := []grid.Coord{{1, 1}, {1, 2}, {2, 1}, {10, 10}, {9, 10}, {10, 9}}
	dsts := []grid.Coord{{10, 10}, {10, 9}, {9, 10}, {1, 1}, {2, 1}, {1, 2}}
	// The router is built once, as every load generator does: converting a
	// non-empty struct to the Router interface at each Inject would allocate.
	var rtr route.Router = route.Congested{}
	cycle := func() {
		md.Reset()
		e.Reset()
		for step := 0; step < horizon+16; step++ {
			for i := range srcs {
				src := shape.Index(srcs[i])
				if m.Status(src) != mesh.Enabled || !e.Admit(src) {
					continue
				}
				if _, err := e.Inject(src, shape.Index(dsts[i]), rtr); err != nil {
					t.Fatal(err)
				}
			}
			e.Step()
			e.DetachDone(nil)
		}
	}
	cycle()
	if len(e.Events) == 0 {
		t.Fatal("no fault event applied during the cycle; the process is not being measured")
	}
	// Warm until every pooled object (flights, walkers, constructions,
	// watches) has hit its personal high-water mark: recycled flights come
	// off the free list LIFO, so rarely-used ones warm their routing
	// scratch late.
	for i := 0; i < 20; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs != 0 {
		t.Fatalf("fault-process trial cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestLinkPendingObservesStalls pins the LoadView's link signal: a stall
// on a directed link this step is visible through LinkPending on the next
// step, and gone the step after the queue clears.
func TestLinkPendingObservesStalls(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{6, 3})
	// Three DOR flights on the same +X link: step 1 grants one crossing
	// and stalls two.
	for i := 0; i < 3; i++ {
		if _, err := e.Inject(src, dst, route.DOR{}); err != nil {
			t.Fatal(err)
		}
	}
	// The stall counters rotate at the START of each step, so the view
	// available to step N's routing decisions — and to external callers
	// between steps — is the stalls of step N-1. Step 1 stalls two flights;
	// that becomes visible when step 2 begins.
	plusX := grid.DirPlus(0)
	if got := e.LinkPending(src, plusX); got != 0 {
		t.Fatalf("pending before any step: %d", got)
	}
	e.Step() // grants f1, stalls f2 and f3
	if got := e.LinkPending(src, plusX); got != 0 {
		t.Fatalf("pending after step 1: %d, want 0 (not yet rotated in)", got)
	}
	e.Step() // rotation exposes step 1's stalls; grants f2, stalls f3
	if got := e.LinkPending(src, plusX); got != 2 {
		t.Fatalf("pending after step 2: %d, want 2 (step 1's losers)", got)
	}
	e.Step() // exposes step 2's single stall; grants f3
	if got := e.LinkPending(src, plusX); got != 1 {
		t.Fatalf("pending after step 3: %d, want 1", got)
	}
	e.Step() // queue drained: no stalls to expose
	if got := e.LinkPending(src, plusX); got != 0 {
		t.Fatalf("pending after step 4: %d, want 0 (queue drained)", got)
	}
	// Disabling contention zeroes the view.
	e.DisableContention()
	if got := e.LinkPending(src, plusX); got != 0 {
		t.Fatalf("pending with contention disabled: %d", got)
	}
	if got := e.Resident(src); got != 0 {
		t.Fatalf("residency with contention disabled: %d", got)
	}
}
