package engine

import (
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/route"
)

func newContentionEngine(t *testing.T, k int, cfg ContentionConfig) (*Engine, *grid.Shape) {
	t.Helper()
	m, err := mesh.NewUniform(2, k)
	if err != nil {
		t.Fatal(err)
	}
	md := core.New(m)
	e := New(md, 1, nil)
	e.EnableContention(cfg)
	return e, m.Shape()
}

// TestContentionSerializesLink pins the arbitration core: two flights that
// need the same directed link on the same step cross it one per step
// (link rate 1), the loser waiting in place.
func TestContentionSerializesLink(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	// Both flights start at (3,3) and go to (5,3): their first hop is the
	// same +X link.
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	f1, err := e.Inject(src, dst, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.Inject(src, dst, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if f1.Msg.Cur == f2.Msg.Cur {
		t.Fatalf("both flights at %d after one step: link not serialized", f1.Msg.Cur)
	}
	if f1.Msg.Waits != 0 || f2.Msg.Waits != 1 {
		t.Fatalf("waits: f1=%d f2=%d, want 0 and 1 (injection-order priority)",
			f1.Msg.Waits, f2.Msg.Waits)
	}
	for i := 0; i < 8; i++ {
		e.Step()
	}
	if !f1.Msg.Arrived || !f2.Msg.Arrived {
		t.Fatalf("flights did not arrive: %v / %v", f1.Msg, f2.Msg)
	}
	// f2 paid exactly its queueing delay: distance 2 plus one wait.
	if f1.Msg.Steps != 2 || f2.Msg.Steps != 3 {
		t.Fatalf("steps: f1=%d f2=%d, want 2 and 3", f1.Msg.Steps, f2.Msg.Steps)
	}
}

// TestContentionDisabledIsTeleport pins that the default mode is
// unchanged: the same two flights advance in lockstep without waits.
func TestContentionDisabledIsTeleport(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1})
	e.DisableContention()
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	f1, _ := e.Inject(src, dst, route.DOR{})
	f2, _ := e.Inject(src, dst, route.DOR{})
	e.Step()
	if f1.Msg.Cur != f2.Msg.Cur {
		t.Fatalf("contention-free flights diverged: %d vs %d", f1.Msg.Cur, f2.Msg.Cur)
	}
	if f1.Msg.Waits != 0 || f2.Msg.Waits != 0 {
		t.Fatalf("waits without contention: %d/%d", f1.Msg.Waits, f2.Msg.Waits)
	}
}

// TestContentionLinkRate pins that LinkRate > 1 grants that many crossings
// per step.
func TestContentionLinkRate(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 2})
	src := shape.Index(grid.Coord{3, 3})
	dst := shape.Index(grid.Coord{5, 3})
	f1, _ := e.Inject(src, dst, route.DOR{})
	f2, _ := e.Inject(src, dst, route.DOR{})
	f3, _ := e.Inject(src, dst, route.DOR{})
	e.Step()
	moved := 0
	for _, f := range []*Flight{f1, f2, f3} {
		if f.Msg.Cur != src {
			moved++
		}
	}
	if moved != 2 {
		t.Fatalf("%d flights crossed a rate-2 link in one step, want 2", moved)
	}
}

// TestContentionNodeCapacity pins the buffer model: a flight cannot move
// onto a node whose input queue is full, and Admit refuses injection at a
// full node.
func TestContentionNodeCapacity(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 4, NodeCapacity: 1})
	mid := shape.Index(grid.Coord{4, 3})
	// A parked flight occupies the middle node: it routes toward a far
	// destination but is behind the mover, so it moves first each step;
	// park it by filling its next hop instead. Simplest deterministic
	// setup: one flight resting at mid (its destination far away along +X)
	// and one flight at (3,3) whose next hop is mid.
	parked, err := e.Inject(mid, shape.Index(grid.Coord{7, 3}), route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	mover, err := e.Inject(shape.Index(grid.Coord{3, 3}), mid, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Admit(mid) {
		t.Fatal("Admit at a full node should refuse")
	}
	if !e.Admit(shape.Index(grid.Coord{0, 0})) {
		t.Fatal("Admit at an empty node should accept")
	}
	e.Step()
	// The parked flight moved off mid (it is first in injection order),
	// freeing the slot in the same step for the mover.
	if parked.Msg.Cur == mid {
		t.Fatal("parked flight did not move")
	}
	if mover.Msg.Cur != mid {
		t.Fatalf("mover at %d, want mid %d (slot freed in order)", mover.Msg.Cur, mid)
	}
	if e.Resident(mid) != 1 {
		t.Fatalf("resident(mid) = %d, want 1", e.Resident(mid))
	}
}

// TestContentionCapacityBlocksEntry pins the stall: when the occupant of
// the next node does NOT move (it already arrived but is undetached), the
// mover waits.
func TestContentionCapacityBlocksEntry(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 4, NodeCapacity: 1})
	mid := shape.Index(grid.Coord{4, 3})
	occupant, err := e.Inject(shape.Index(grid.Coord{4, 2}), mid, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	mover, err := e.Inject(shape.Index(grid.Coord{3, 3}), mid, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	e.Step() // occupant arrives at mid; mover blocked (occupant entered first)
	if !occupant.Msg.Arrived {
		t.Fatalf("occupant should have arrived: %v", occupant.Msg)
	}
	if mover.Msg.Cur != shape.Index(grid.Coord{3, 3}) || mover.Msg.Waits != 1 {
		t.Fatalf("mover should wait while mid is full: %v", mover.Msg)
	}
	// Detaching the delivered occupant frees the buffer slot.
	e.DetachDone(nil)
	e.Step()
	if !mover.Msg.Arrived {
		t.Fatalf("mover should arrive once the slot frees: %v", mover.Msg)
	}
}

// TestDetachDoneKeepsOrderAndRecycles pins DetachDone's two contracts:
// active flights keep injection order, and detached flights are recycled
// by later Injects.
func TestDetachDoneKeepsOrderAndRecycles(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 8})
	near, _ := e.Inject(shape.Index(grid.Coord{1, 1}), shape.Index(grid.Coord{1, 2}), route.DOR{})
	farA, _ := e.Inject(shape.Index(grid.Coord{2, 2}), shape.Index(grid.Coord{6, 6}), route.DOR{})
	farB, _ := e.Inject(shape.Index(grid.Coord{3, 3}), shape.Index(grid.Coord{7, 7}), route.DOR{})
	e.Step() // near arrives
	detached := 0
	e.DetachDone(func(f *Flight) {
		detached++
		if f != near {
			t.Fatalf("detached wrong flight: %v", f.Msg)
		}
	})
	if detached != 1 {
		t.Fatalf("detached %d flights, want 1", detached)
	}
	fl := e.Flights()
	if len(fl) != 2 || fl[0] != farA || fl[1] != farB {
		t.Fatalf("active list lost order: %v", fl)
	}
	recycled, _ := e.Inject(shape.Index(grid.Coord{1, 1}), shape.Index(grid.Coord{1, 3}), route.DOR{})
	if recycled != near {
		t.Error("Inject did not recycle the detached flight")
	}
}

// TestContentionResetClearsState pins Reset/ClearFlights: residency and
// per-step service counters return to zero so a reused trial starts clean.
func TestContentionResetClearsState(t *testing.T) {
	e, shape := newContentionEngine(t, 8, ContentionConfig{LinkRate: 1, NodeCapacity: 1})
	mid := shape.Index(grid.Coord{4, 4})
	if _, err := e.Inject(shape.Index(grid.Coord{3, 4}), mid, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	e.Reset()
	for id := 0; id < shape.NumNodes(); id++ {
		if e.Resident(grid.NodeID(id)) != 0 {
			t.Fatalf("resident(%d) = %d after Reset", id, e.Resident(grid.NodeID(id)))
		}
	}
	if !e.Admit(mid) {
		t.Fatal("Admit should accept after Reset")
	}
}

// TestContentionStepAllocFree is the steady-state allocation guarantee of
// the issue: once warm, a contention step (including the harvest sweep and
// re-injection from the free lists) performs zero allocations.
func TestContentionStepAllocFree(t *testing.T) {
	e, shape := newContentionEngine(t, 16, ContentionConfig{LinkRate: 1, NodeCapacity: 4})
	srcs := []grid.Coord{{1, 1}, {14, 1}, {1, 14}, {14, 14}, {7, 2}, {2, 7}}
	dsts := []grid.Coord{{14, 14}, {1, 14}, {14, 1}, {1, 1}, {7, 13}, {13, 7}}
	inject := func() {
		for i := range srcs {
			if _, err := e.Inject(shape.Index(srcs[i]), shape.Index(dsts[i]), route.Limited{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	inject()
	// Warm: grow every scratch buffer and free list to steady state.
	for i := 0; i < 200; i++ {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		e.Step()
		e.DetachDone(nil)
		if len(e.Flights()) == 0 {
			inject()
		}
	})
	if allocs != 0 {
		t.Fatalf("contention step allocates %.1f allocs/op, want 0", allocs)
	}
}
