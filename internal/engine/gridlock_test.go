package engine

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/route"
)

// headOnPair injects two flights facing each other across one link with
// capacity-1 buffers: each needs the slot the other occupies, so neither
// can ever move — the minimal buffer-cycle deadlock, deterministic by
// construction.
func headOnPair(t *testing.T, e *Engine, shape *grid.Shape) (*Flight, *Flight) {
	t.Helper()
	u := shape.Index(grid.Coord{1, 1})
	v := shape.Index(grid.Coord{2, 1})
	a, err := e.Inject(u, v, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Inject(v, u, route.DOR{})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestGridlockDetectsHeadOnDeadlock pins the zero-progress detector on the
// minimal constructed deadlock: with window W, the detector latches exactly
// after W dead steps, reports the 1-based detection step, and — absent any
// escape mechanism — never recovers.
func TestGridlockDetectsHeadOnDeadlock(t *testing.T) {
	const window = 4
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1, GridlockWindow: window,
	})
	a, b := headOnPair(t, e, shape)
	for i := 0; i < window-1; i++ {
		e.Step()
		if e.Gridlocked() {
			t.Fatalf("detector fired after %d dead steps, window is %d", i+1, window)
		}
	}
	e.Step()
	if !e.Gridlocked() {
		t.Fatalf("detector silent after %d dead steps", window)
	}
	if got := e.GridlockStep(); got != window {
		t.Errorf("GridlockStep = %d, want %d", got, window)
	}
	if got := e.GridlockRecovery(); got != 0 {
		t.Errorf("GridlockRecovery = %d before any recovery, want 0", got)
	}
	if a.StallAge != window || b.StallAge != window {
		t.Errorf("stall ages %d/%d after %d dead steps, want %d", a.StallAge, b.StallAge, window, window)
	}
	// More dead steps keep the latch held and the first-detection step fixed.
	e.Step()
	if !e.Gridlocked() || e.GridlockStep() != window {
		t.Errorf("latch moved: gridlocked=%v step=%d", e.Gridlocked(), e.GridlockStep())
	}
}

// TestFlightTimeoutBreaksDeadlock pins the escape path end to end: the
// timeout kills both deadlocked flights (a terminal transition that counts
// as progress), the detector unlatches, time-to-recovery is measured from
// first detection, and the harvest releases the router buffers.
func TestFlightTimeoutBreaksDeadlock(t *testing.T) {
	const window, timeout = 4, 6
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1,
		GridlockWindow: window, FlightTimeout: timeout,
	})
	a, b := headOnPair(t, e, shape)
	// Steps 1..timeout stall both flights (detection at step `window`);
	// step timeout+1 finds StallAge == timeout and kills them.
	for i := 0; i < timeout+1; i++ {
		e.Step()
	}
	if !a.Msg.TimedOut || !b.Msg.TimedOut {
		t.Fatalf("flights not timed out after %d steps: %v / %v", timeout+1, a.Msg, b.Msg)
	}
	if !a.Msg.Done() {
		t.Fatal("TimedOut message does not report Done")
	}
	if e.Gridlocked() {
		t.Error("detector still latched after the kills unjammed the run")
	}
	if got := e.GridlockStep(); got != window {
		t.Errorf("GridlockStep = %d, want %d (first episode pinned)", got, window)
	}
	if got := e.GridlockRecovery(); got != timeout-window+1 {
		t.Errorf("GridlockRecovery = %d, want %d (detection to the kill step)", got, timeout-window+1)
	}
	timedOut := 0
	e.DetachDone(func(f *Flight) {
		if f.Msg.TimedOut {
			timedOut++
		}
	})
	if timedOut != 2 {
		t.Fatalf("harvested %d timed-out flights, want 2", timedOut)
	}
	for id := 0; id < shape.NumNodes(); id++ {
		if r := e.Resident(grid.NodeID(id)); r != 0 {
			t.Fatalf("node %d residency %d after harvest, want 0", id, r)
		}
	}
}

// TestBubbleAdmission pins the injection gate: with Bubble set, admission
// requires a free slot to remain after the injection, so the effective
// limit is NodeCapacity-1; unbounded capacity admits everything regardless.
func TestBubbleAdmission(t *testing.T) {
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 2, Bubble: true,
	})
	u := shape.Index(grid.Coord{1, 1})
	v := shape.Index(grid.Coord{2, 2})
	if !e.Admit(u) {
		t.Fatal("empty node not admitted under bubble")
	}
	if _, err := e.Inject(u, v, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	if e.Admit(u) {
		t.Error("bubble admission let the last free slot be claimed (capacity 2, resident 1)")
	}

	plain, _ := newContentionEngine(t, 4, ContentionConfig{LinkRate: 1, NodeCapacity: 2})
	for i := 0; i < 2; i++ {
		if !plain.Admit(u) {
			t.Fatalf("plain admission refused at resident %d, capacity 2", i)
		}
		if _, err := plain.Inject(u, v, route.DOR{}); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Admit(u) {
		t.Error("plain admission exceeded capacity")
	}

	unbounded, _ := newContentionEngine(t, 4, ContentionConfig{LinkRate: 1, Bubble: true})
	if !unbounded.Admit(u) {
		t.Error("bubble with unbounded capacity must admit everything")
	}
}

// TestStallAgeAndDetectorResetAcrossClearAndReset pins the recycling paths:
// ClearFlights and Reset both unlatch the detector and rewind its episode
// markers, and a recycled Flight re-enters service with StallAge 0.
func TestStallAgeAndDetectorResetAcrossClearAndReset(t *testing.T) {
	const window = 3
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1, GridlockWindow: window,
	})
	gridlockIt := func() {
		t.Helper()
		a, _ := headOnPair(t, e, shape)
		for i := 0; i < window; i++ {
			e.Step()
		}
		if !e.Gridlocked() || a.StallAge == 0 {
			t.Fatalf("setup failed: gridlocked=%v stallAge=%d", e.Gridlocked(), a.StallAge)
		}
	}
	gridlockIt()
	e.ClearFlights()
	if e.Gridlocked() || e.GridlockStep() != 0 || e.GridlockRecovery() != 0 {
		t.Fatalf("ClearFlights kept detector state: gridlocked=%v step=%d recovery=%d",
			e.Gridlocked(), e.GridlockStep(), e.GridlockRecovery())
	}
	// The next injection reuses a recycled Flight; its stall age must not
	// leak from the previous life.
	a, b := headOnPair(t, e, shape)
	if a.StallAge != 0 || b.StallAge != 0 {
		t.Fatalf("recycled flights carry stall age %d/%d, want 0", a.StallAge, b.StallAge)
	}
	for i := 0; i < window; i++ {
		e.Step()
	}
	if !e.Gridlocked() {
		t.Fatal("re-armed deadlock not re-detected after ClearFlights")
	}
	e.Reset()
	if e.Gridlocked() || e.GridlockStep() != 0 {
		t.Fatalf("Reset kept detector state: gridlocked=%v step=%d", e.Gridlocked(), e.GridlockStep())
	}
	gridlockIt() // detector fully functional after Reset
}

// TestRunStopReasons pins the Run/RunFlights sentinels: a completing run
// reports StopDone, an exhausted budget StopMaxSteps, a latched detector
// StopGridlocked — and the String forms the CLI prints for each.
func TestRunStopReasons(t *testing.T) {
	for reason, want := range map[StopReason]string{
		StopDone: "done", StopMaxSteps: "max-steps", StopGridlocked: "gridlocked",
		StopReason(99): "StopReason(99)",
	} {
		if got := reason.String(); got != want {
			t.Errorf("StopReason(%d).String() = %q, want %q", uint8(reason), got, want)
		}
	}

	const window = 4
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1, GridlockWindow: window,
	})
	free := shape.Index(grid.Coord{0, 0})
	dst := shape.Index(grid.Coord{3, 0})
	if _, err := e.Inject(free, dst, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	if steps, reason := e.RunFlights(100); reason != StopDone || steps != 3 {
		t.Errorf("free flight: RunFlights = (%d, %v), want (3, done)", steps, reason)
	}
	e.ClearFlights()

	if _, err := e.Inject(free, dst, route.DOR{}); err != nil {
		t.Fatal(err)
	}
	if steps, reason := e.RunFlights(1); reason != StopMaxSteps || steps != 1 {
		t.Errorf("tight budget: RunFlights = (%d, %v), want (1, max-steps)", steps, reason)
	}
	e.ClearFlights()

	headOnPair(t, e, shape)
	steps, reason := e.RunFlights(100)
	if reason != StopGridlocked {
		t.Errorf("deadlock: RunFlights reason = %v, want gridlocked", reason)
	}
	if steps >= 100 {
		t.Errorf("deadlock: gridlocked run spun %d steps; detection should cut it short", steps)
	}
	e.ClearFlights()

	headOnPair(t, e, shape)
	if _, reason := e.Run(100); reason != StopGridlocked {
		t.Errorf("deadlock: Run reason = %v, want gridlocked", reason)
	}
}

// TestTimeoutStepAllocFree extends the steady-state allocation guarantee to
// the escape path: a contention step in which flights stall, time out, are
// harvested and re-injected — the full kill/recycle cycle — allocates
// nothing once the free lists are warm.
func TestTimeoutStepAllocFree(t *testing.T) {
	e, shape := newContentionEngine(t, 4, ContentionConfig{
		LinkRate: 1, NodeCapacity: 1,
		GridlockWindow: 2, FlightTimeout: 3, Bubble: false,
	})
	rearm := func() {
		if len(e.Flights()) == 0 {
			u := shape.Index(grid.Coord{1, 1})
			v := shape.Index(grid.Coord{2, 1})
			if e.Admit(u) {
				if _, err := e.Inject(u, v, route.DOR{}); err != nil {
					t.Fatal(err)
				}
			}
			if e.Admit(v) {
				if _, err := e.Inject(v, u, route.DOR{}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	rearm()
	step := func() {
		e.Step()
		e.DetachDone(nil)
		rearm()
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Errorf("timeout/kill/recycle step allocates %.1f/op, want 0", allocs)
	}
}
