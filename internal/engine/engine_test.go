package engine

import (
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/route"
)

func newEngine(t *testing.T, dims []int, lambda int, sched *fault.Schedule) *Engine {
	t.Helper()
	shape, err := grid.NewShape(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return New(core.New(mesh.New(shape)), lambda, sched)
}

// TestFigure7StepAnatomy checks the per-step phase ordering: a fault
// scheduled at step s is applied before the λ information rounds of step
// s, and the routing message moves exactly one hop per step regardless of
// λ.
func TestFigure7StepAnatomy(t *testing.T) {
	shape := grid.MustShape(10, 10)
	node := shape.Index(grid.Coord{5, 5})
	sched := &fault.Schedule{Events: []fault.Event{{Step: 3, Node: node, Kind: fault.Fail}}}
	eng := newEngine(t, []int{10, 10}, 4, sched)

	src := shape.Index(grid.Coord{1, 1})
	dst := shape.Index(grid.Coord{8, 8})
	fl, err := eng.Inject(src, dst, route.Limited{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		eng.Step()
		if eng.Model.M.Status(node) == mesh.Faulty {
			t.Fatalf("fault applied early at step %d", step)
		}
		// One hop per step.
		if fl.Msg.Hops != step+1 {
			t.Fatalf("hops = %d after %d steps", fl.Msg.Hops, step+1)
		}
	}
	eng.Step() // step 3: fault detection applies the event
	if eng.Model.M.Status(node) != mesh.Faulty {
		t.Fatal("fault not applied at its step")
	}
	// λ = 4 rounds ran during step 3.
	if eng.RoundsRun != 4*4 {
		t.Fatalf("RoundsRun = %d, want 16", eng.RoundsRun)
	}
	if eng.StepCount() != 4 {
		t.Fatalf("StepCount = %d", eng.StepCount())
	}
}

// TestEventRecordsConvergence: every event gets a_i/b_i/c_i and the
// one-hop-per-round protocols yield positive b and c for a real block.
func TestEventRecordsConvergence(t *testing.T) {
	shape := grid.MustShape(12, 12)
	sched := &fault.Schedule{}
	// Two diagonal faults at step 2 (one block), then a far fault at step 60.
	for _, c := range []grid.Coord{{5, 5}, {6, 6}} {
		sched.Events = append(sched.Events, fault.Event{Step: 2, Node: shape.Index(c), Kind: fault.Fail})
	}
	sched.Events = append(sched.Events, fault.Event{Step: 60, Node: shape.Index(grid.Coord{2, 9}), Kind: fault.Fail})
	eng := newEngine(t, []int{12, 12}, 1, sched)
	eng.Run(400)
	if len(eng.Events) != 3 {
		t.Fatalf("event records = %d, want 3", len(eng.Events))
	}
	// The second same-step event's record absorbs the block construction
	// (both were applied at step 2; the first was finalized immediately).
	rec := eng.Events[1]
	if rec.ARounds == 0 {
		t.Errorf("diagonal faults should take labeling rounds: %+v", rec)
	}
	if rec.BRounds == 0 || rec.CRounds == 0 {
		t.Errorf("identification/boundary rounds missing: %+v", rec)
	}
	if rec.BSteps != rec.BRounds || rec.CSteps != rec.CRounds {
		t.Errorf("λ=1 must give steps == rounds: %+v", rec)
	}
	if rec.EMaxAfter != 2 {
		t.Errorf("EMaxAfter = %d, want 2", rec.EMaxAfter)
	}
	if rec.RecordsAfter == 0 {
		t.Errorf("no records after construction: %+v", rec)
	}
	// λ scaling: the same scenario with λ=4 needs roughly a quarter of
	// the steps for the same rounds.
	eng4 := newEngine(t, []int{12, 12}, 4, &fault.Schedule{Events: sched.Events})
	eng4.Run(400)
	rec4 := eng4.Events[1]
	if rec4.BSteps > (rec4.BRounds+3)/4 {
		t.Errorf("λ=4 steps not scaled: %+v", rec4)
	}
}

// TestDistanceSamplesAtEvents: D(i) is sampled for in-flight messages at
// each occurrence.
func TestDistanceSamplesAtEvents(t *testing.T) {
	shape := grid.MustShape(12, 12)
	sched := &fault.Schedule{Events: []fault.Event{
		{Step: 5, Node: shape.Index(grid.Coord{9, 9}), Kind: fault.Fail},
		{Step: 10, Node: shape.Index(grid.Coord{2, 9}), Kind: fault.Fail},
	}}
	eng := newEngine(t, []int{12, 12}, 1, sched)
	src := shape.Index(grid.Coord{1, 1})
	dst := shape.Index(grid.Coord{7, 1})
	fl, err := eng.Inject(src, dst, route.Limited{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(200)
	if !fl.Msg.Arrived {
		t.Fatalf("not arrived: %v", fl.Msg)
	}
	// Message needs 6 steps; the occurrence at step 5 catches it 5 hops
	// in: D(1) = 1. The occurrence at step 10 is after arrival: no sample.
	if len(fl.DistAt) != 1 || fl.DistAt[0] != 1 {
		t.Fatalf("DistAt = %v, want [1]", fl.DistAt)
	}
	if fl.EventIdxAt[0] != 1 {
		t.Fatalf("EventIdxAt = %v", fl.EventIdxAt)
	}
}

// TestInjectValidation: source == destination is rejected.
func TestInjectValidation(t *testing.T) {
	eng := newEngine(t, []int{6, 6}, 1, nil)
	if _, err := eng.Inject(3, 3, route.Limited{}); err == nil {
		t.Fatal("self-injection accepted")
	}
}

// TestBlindGetsNoStore: the blind router's context must not carry the
// information store.
func TestBlindGetsNoStore(t *testing.T) {
	eng := newEngine(t, []int{6, 6}, 1, nil)
	fl, err := eng.Inject(1, 8, route.Blind{})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Ctx.Store != nil {
		t.Fatal("blind flight has an info store")
	}
	fl2, _ := eng.Inject(1, 8, route.Limited{})
	if fl2.Ctx.Store == nil {
		t.Fatal("limited flight lacks the info store")
	}
}

// TestDoneAndRun: Done requires schedule drained, flights finished, model
// quiescent.
func TestDoneAndRun(t *testing.T) {
	shape := grid.MustShape(8, 8)
	sched := &fault.Schedule{Events: []fault.Event{
		{Step: 2, Node: shape.Index(grid.Coord{4, 4}), Kind: fault.Fail},
	}}
	eng := newEngine(t, []int{8, 8}, 1, sched)
	if eng.Done() {
		t.Fatal("engine done before running")
	}
	steps, _ := eng.Run(1000)
	if !eng.Done() {
		t.Fatalf("engine not done after %d steps", steps)
	}
	// The last event must be finalized by Run.
	if len(eng.Events) != 1 || !eng.Events[0].finalized {
		t.Fatal("event not finalized")
	}
}

// TestRunFlightsStopsEarly: RunFlights ends as soon as messages are done,
// even if the model still has work.
func TestRunFlightsStopsEarly(t *testing.T) {
	shape := grid.MustShape(8, 8)
	sched := &fault.Schedule{Events: []fault.Event{
		{Step: 1, Node: shape.Index(grid.Coord{4, 4}), Kind: fault.Fail},
	}}
	eng := newEngine(t, []int{8, 8}, 1, sched)
	fl, _ := eng.Inject(shape.Index(grid.Coord{1, 1}), shape.Index(grid.Coord{2, 1}), route.Limited{})
	eng.RunFlights(100)
	if !fl.Msg.Arrived {
		t.Fatal("short flight did not arrive")
	}
	if eng.StepCount() > 5 {
		t.Fatalf("RunFlights overran: %d steps", eng.StepCount())
	}
}

// TestLambdaDefaulting: λ < 1 is clamped.
func TestLambdaDefaulting(t *testing.T) {
	eng := newEngine(t, []int{4, 4}, 0, nil)
	if eng.Lambda != 1 {
		t.Fatalf("lambda = %d", eng.Lambda)
	}
}

// TestRecoveryEventKind: recovery events are applied as rule 5.
func TestRecoveryEventKind(t *testing.T) {
	shape := grid.MustShape(8, 8)
	node := shape.Index(grid.Coord{4, 4})
	sched := &fault.Schedule{Events: []fault.Event{
		{Step: 1, Node: node, Kind: fault.Fail},
		{Step: 30, Node: node, Kind: fault.Recover},
	}}
	eng := newEngine(t, []int{8, 8}, 1, sched)
	eng.Run(400)
	if eng.Model.M.Status(node) != mesh.Enabled {
		t.Fatalf("recovered node = %v, want enabled", eng.Model.M.Status(node))
	}
	if len(eng.Events) != 2 || eng.Events[1].Kind != fault.Recover {
		t.Fatalf("events = %+v", eng.Events)
	}
}
