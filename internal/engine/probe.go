package engine

// This file is the engine's observability hook: an opt-in Probe that
// receives the per-step census assembled inside the always-serial commit
// phase of the contention step. Observation is read-only and lives entirely
// off the decision path, so attaching a probe cannot change a single
// routing or arbitration outcome — a probed run's LoadPoint (and therefore
// every golden) is byte-identical to the unprobed run, at every worker and
// shard count, because the census is computed where the sharded stepper is
// already serial (see shard.go). With no probe attached the accumulation is
// skipped entirely; with one attached the step stays 0 allocs/op.

// StepCensus is what the engine reports per flush: the aggregate of every
// contention step since the previous flush (counters sum; gauges hold the
// value at the last covered step). The Resident/LinkStalls views alias the
// engine's live arrays and are valid only for the duration of the
// ObserveStep call — probes must fold them immediately, never retain them.
type StepCensus struct {
	// Step is the 1-based index of the last step this census covers; Steps
	// is how many steps it aggregates (>1 under decimation).
	Step, Steps int

	// Injected counts Inject calls; Delivered/Unreachable/Lost/TimedOut
	// classify the terminal transitions observed in the commit; Retried
	// counts NoteRetried calls (closed-loop timeout re-arms, reported by
	// the workload's harvest pass).
	Injected                               int
	Delivered, Unreachable, Lost, TimedOut int
	Retried                                int

	// Failed/Recovered count the fault-schedule events applied during the
	// covered steps — the fault process rendered alongside the traffic it
	// disturbs.
	Failed, Recovered int

	// Moves counts flights that advanced one hop; Stalls counts flights
	// that stayed in place un-terminated (lost arbitration or blocked on a
	// full buffer). Together with the terminal counters they partition the
	// per-step activity of the standing population.
	Moves, Stalls int

	// InFlight is the live population after the last covered commit;
	// Gridlocked the zero-progress latch at the same instant.
	InFlight   int
	Gridlocked bool

	// Resident[n] is the live per-node residency; LinkStalls[li] the gate
	// denials counted against directed link li (node*NumDirs + dir) during
	// the LAST covered step (the denial counters rotate every step), with
	// LinkStallsDirty listing the indexes with nonzero entries. All three
	// alias engine state: read-only, call-scoped.
	Resident        []int32
	LinkStalls      []int32
	LinkStallsDirty []int32
	NumDirs         int
}

// Probe receives step censuses from the engine. Implementations must be
// allocation-free in steady state (the census arrives on the hot path) and
// must not retain the census's slice views beyond the call.
type Probe interface {
	ObserveStep(StepCensus)
}

// SetProbe attaches (or, with nil, detaches) the engine's census probe and
// clears any partially accumulated census. Probing observes the contention
// model only: contention-free steps have no arbitration, residency or
// stall state to report, so they are not counted.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	e.census = StepCensus{}
}

// NoteRetried records one retry re-arm into the census being assembled.
// The engine cannot see workload-side retry decisions (a timeout kill is
// terminal as far as routing is concerned), so the load run's harvest pass
// reports them here, between Step and FlushCensus, and the retry lands in
// the same step's census as the timeout that caused it.
//
//meshvet:noalloc
func (e *Engine) NoteRetried() {
	if e.probe != nil {
		e.census.Retried++
	}
}

// FlushCensus emits the census accumulated since the previous flush to the
// attached probe and re-arms it. Load runs call it once per step right
// after the harvest pass (or every N steps under decimation — the counters
// aggregate, the gauges and the link-stall view are the last step's); a
// flush with no probe attached or no steps covered is a no-op.
//
//meshvet:noalloc
func (e *Engine) FlushCensus() {
	if e.probe == nil || e.census.Steps == 0 {
		return
	}
	c := &e.ctn
	cs := e.census
	cs.Step = e.step
	cs.Resident = c.resident
	cs.LinkStalls = c.pending
	cs.LinkStallsDirty = c.pendingDty
	cs.NumDirs = int(c.numDirs)
	e.probe.ObserveStep(cs)
	e.census = StepCensus{}
}

// observeTerminal classifies one terminal transition into the census.
//
//meshvet:noalloc
func (cs *StepCensus) observeTerminal(arrived, unreachable, lost, timedOut bool) {
	switch {
	case arrived:
		cs.Delivered++
	case unreachable:
		cs.Unreachable++
	case lost:
		cs.Lost++
	case timedOut:
		cs.TimedOut++
	}
}
