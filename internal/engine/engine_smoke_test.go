package engine

import (
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/route"
)

// TestSmokeDynamicRouting routes a message across a 2-D mesh while a fault
// burst creates a block directly on its dimension-order path; the limited
// router must still arrive, and with the boundary information in place the
// detour must stay bounded.
func TestSmokeDynamicRouting(t *testing.T) {
	m, err := mesh.NewUniform(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	md := core.New(m)

	// A 2x2 block in the middle of the mesh, created at step 2.
	sched := &fault.Schedule{}
	for _, c := range []grid.Coord{{7, 7}, {8, 7}, {7, 8}, {8, 8}} {
		sched.Events = append(sched.Events, fault.Event{Step: 2, Node: shape.Index(c), Kind: fault.Fail})
	}
	eng := New(md, 4, sched)

	src := shape.Index(grid.Coord{1, 1})
	dst := shape.Index(grid.Coord{14, 14})
	fl, err := eng.Inject(src, dst, route.Limited{})
	if err != nil {
		t.Fatal(err)
	}
	steps, _ := eng.RunFlights(1000)
	t.Logf("finished in %d steps: %v", steps, fl.Msg)
	if !fl.Msg.Arrived {
		t.Fatalf("message did not arrive: %v", fl.Msg)
	}
	d0 := shape.Distance(src, dst)
	if fl.Msg.Hops > d0+12 {
		t.Fatalf("excessive detours: hops=%d, D=%d", fl.Msg.Hops, d0)
	}

	// Same scenario with the blind router must also arrive (fault
	// tolerance does not depend on information), possibly with more hops.
	m2, _ := mesh.NewUniform(2, 16)
	md2 := core.New(m2)
	sched2 := &fault.Schedule{}
	for _, c := range []grid.Coord{{7, 7}, {8, 7}, {7, 8}, {8, 8}} {
		sched2.Events = append(sched2.Events, fault.Event{Step: 2, Node: shape.Index(c), Kind: fault.Fail})
	}
	eng2 := New(md2, 4, sched2)
	fl2, err := eng2.Inject(src, dst, route.Blind{})
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunFlights(1000)
	if !fl2.Msg.Arrived {
		t.Fatalf("blind message did not arrive: %v", fl2.Msg)
	}
	t.Logf("blind: %v", fl2.Msg)

	// Oracle router for reference.
	m3, _ := mesh.NewUniform(2, 16)
	md3 := core.New(m3)
	sched3 := &fault.Schedule{}
	for _, c := range []grid.Coord{{7, 7}, {8, 7}, {7, 8}, {8, 8}} {
		sched3.Events = append(sched3.Events, fault.Event{Step: 2, Node: shape.Index(c), Kind: fault.Fail})
	}
	eng3 := New(md3, 4, sched3)
	fl3, err := eng3.Inject(src, dst, &route.Oracle{})
	if err != nil {
		t.Fatal(err)
	}
	eng3.RunFlights(1000)
	if !fl3.Msg.Arrived {
		t.Fatalf("oracle message did not arrive: %v", fl3.Msg)
	}
	t.Logf("oracle: %v", fl3.Msg)
	if fl.Msg.Hops < fl3.Msg.Hops {
		t.Fatalf("limited (%d hops) beat oracle (%d hops): oracle must be optimal", fl.Msg.Hops, fl3.Msg.Hops)
	}
}
