// Package block implements Algorithm 1 of the paper: the synchronous
// enabled/disabled/clean labeling that contains all faulty nodes in disjoint
// rectangular faulty blocks (Definitions 1 and 4), plus the centralized
// oracle that extracts the stabilized blocks directly.
//
// The protocol is reactive: after a fault or recovery event only the nodes
// whose neighborhood changed are re-evaluated, exactly as the paper's model
// requires ("only those affected nodes need to update fault information").
// One call to Stepper.Round is one synchronous round of status exchange and
// update; the number of rounds until quiescence after fault occurrence i is
// the paper's a_i.
package block

import (
	"sort"

	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

// maxRoundsFactor bounds stabilization length as a safety net. The clean
// wave crosses the mesh at one hop per round and every node changes status a
// bounded number of times per wave, so 8*diameter is far beyond any legal
// convergence; exceeding it indicates a protocol bug.
const maxRoundsFactor = 8

// Result summarizes one stabilization run.
type Result struct {
	// Rounds is the number of synchronous rounds until no status change
	// (the a_i of Table 1).
	Rounds int
	// Transitions counts individual status changes applied over all rounds.
	Transitions int
	// Affected counts distinct nodes that changed status at least once;
	// the locality metric of the reactive model.
	Affected int
	// Converged is false only if the safety cap was hit (protocol bug).
	Converged bool
}

// Stepper advances the labeling protocol one synchronous round at a time so
// the execution engine can interleave it with identification and boundary
// rounds (λ rounds per step, Figure 7).
type Stepper struct {
	m *mesh.Mesh //meshvet:keep fabric dependency, not per-trial state
	// candidate tracking with generation stamps: cand holds the nodes to
	// evaluate next round; inCand[id] == gen marks membership.
	cand   []grid.NodeID
	inCand []uint32 //meshvet:keep generation stamps; Reset's gen++ invalidates them
	gen    uint32
	// clean nodes need re-evaluation every round until they resolve
	// (their clean age drives rule 4).
	cleanSet map[grid.NodeID]struct{}
	// pending status commits for the synchronous update.
	changedIDs []grid.NodeID
	changedTo  []mesh.Status
	// affected tracks distinct nodes that ever changed in this epoch.
	affected map[grid.NodeID]struct{}
	// eval and agedCleans are Round's reusable work lists (candidates plus
	// clean nodes, and clean nodes whose age must advance).
	eval       []grid.NodeID //meshvet:keep scratch, re-sliced at each Round
	agedCleans []grid.NodeID //meshvet:keep scratch, re-sliced at each Round
}

// NewStepper builds a stepper over m. The mesh's current statuses are taken
// as the protocol state; call Seed after applying external events.
func NewStepper(m *mesh.Mesh) *Stepper {
	return &Stepper{
		m:        m,
		inCand:   make([]uint32, m.NumNodes()),
		gen:      1,
		cleanSet: make(map[grid.NodeID]struct{}),
		affected: make(map[grid.NodeID]struct{}),
	}
}

// Mesh returns the underlying fabric.
func (st *Stepper) Mesh() *mesh.Mesh { return st.m }

// Reset discards all protocol state so the stepper can be reused for a new
// trial on the same (reset) mesh. Buffers and map buckets are retained.
func (st *Stepper) Reset() {
	st.cand = st.cand[:0]
	st.gen++ // stale inCand stamps are < gen, so membership self-clears
	clear(st.cleanSet)
	st.changedIDs = st.changedIDs[:0]
	st.changedTo = st.changedTo[:0]
	clear(st.affected)
}

// Seed registers externally-changed nodes (new faults, recoveries): the node
// itself and its neighbors become candidates for the next round. A recovered
// node (now Clean) joins the clean set.
func (st *Stepper) Seed(ids ...grid.NodeID) {
	for _, id := range ids {
		st.addCandidate(id)
		st.m.EachNeighbor(id, func(nb grid.NodeID, _ grid.Dir) { st.addCandidate(nb) })
		if st.m.Status(id) == mesh.Clean {
			st.cleanSet[id] = struct{}{}
		}
	}
}

func (st *Stepper) addCandidate(id grid.NodeID) {
	if st.inCand[id] != st.gen {
		st.inCand[id] = st.gen
		st.cand = append(st.cand, id)
	}
}

// Quiescent reports whether the protocol has no pending work: no candidates
// and no transient clean nodes.
func (st *Stepper) Quiescent() bool { return len(st.cand) == 0 && len(st.cleanSet) == 0 }

// ResetAffected clears the affected-node accounting (typically at each new
// fault occurrence so Affected counts per-event locality).
func (st *Stepper) ResetAffected() { clear(st.affected) }

// Affected returns the number of distinct nodes that changed status since
// the last ResetAffected.
func (st *Stepper) Affected() int { return len(st.affected) }

// Round performs one synchronous round: every candidate node observes its
// neighbors' current statuses and applies rules 1-4 of Algorithm 1 (rule 5,
// recovery, is an external event applied via mesh.Recover + Seed). It
// returns the number of status transitions committed.
func (st *Stepper) Round() int {
	m := st.m
	// Evaluate: candidates plus all clean nodes (whose age must advance).
	eval := append(st.eval[:0], st.cand...)
	//meshvet:ordered synchronous round: evaluations read only pre-round statuses and commits are per-node, so order cannot reach results
	for id := range st.cleanSet {
		if st.inCand[id] != st.gen {
			eval = append(eval, id)
		}
	}
	st.eval = eval
	st.changedIDs = st.changedIDs[:0]
	st.changedTo = st.changedTo[:0]
	agedCleans := st.agedCleans[:0]
	for _, id := range eval {
		old := m.Status(id)
		next, stayClean := nextStatus(m, id, old)
		if stayClean {
			agedCleans = append(agedCleans, id)
		}
		if next != old {
			st.changedIDs = append(st.changedIDs, id)
			st.changedTo = append(st.changedTo, next)
		}
	}
	// Commit phase: all updates appear simultaneously (synchronous model).
	st.gen++
	st.cand = st.cand[:0]
	for i, id := range st.changedIDs {
		to := st.changedTo[i]
		m.SetStatus(id, to)
		st.affected[id] = struct{}{}
		if to == mesh.Clean {
			st.cleanSet[id] = struct{}{}
		} else {
			delete(st.cleanSet, id)
		}
		// The change is visible to neighbors next round; both the node and
		// its neighbors are candidates again.
		st.addCandidate(id)
		m.EachNeighbor(id, func(nb grid.NodeID, _ grid.Dir) { st.addCandidate(nb) })
	}
	for _, id := range agedCleans {
		if m.Status(id) == mesh.Clean { // not overwritten by a commit
			m.BumpCleanAge(id)
		}
	}
	st.agedCleans = agedCleans
	return len(st.changedIDs)
}

// LastChanged returns the nodes whose status changed in the last Round; the
// slice is valid until the next Round call. The frame detector is seeded
// with exactly these nodes.
func (st *Stepper) LastChanged() []grid.NodeID { return st.changedIDs }

// nextStatus applies Definition 4's rules to node id given current
// neighborhood state. stayClean reports a clean node that remains clean this
// round (its age must be bumped at commit).
func nextStatus(m *mesh.Mesh, id grid.NodeID, old mesh.Status) (next mesh.Status, stayClean bool) {
	switch old {
	case mesh.Faulty:
		return old, false
	case mesh.Enabled:
		// Rule 1: enabled -> disabled on two bad neighbors in different dims.
		if badTwo, _ := m.BadNeighborDims(id); badTwo {
			return mesh.Disabled, false
		}
		return old, false
	case mesh.Disabled:
		// Rule 2: disabled -> clean with a clean neighbor and no two faulty
		// neighbors in different dimensions.
		if _, faultyTwo := m.BadNeighborDims(id); !faultyTwo && m.HasCleanNeighbor(id) {
			return mesh.Clean, false
		}
		return old, false
	case mesh.Clean:
		// Rule 3: clean -> disabled on two faulty neighbors in different dims.
		if _, faultyTwo := m.BadNeighborDims(id); faultyTwo {
			return mesh.Disabled, false
		}
		// Rule 4: clean -> enabled once all neighbors have seen the clean
		// status, i.e. after one full exchange round.
		if m.CleanAge(id) >= 1 {
			return mesh.Enabled, false
		}
		return old, true
	default:
		return old, false
	}
}

// Stabilize runs rounds until quiescence and reports the convergence
// numbers. seeds are the externally-changed nodes of the triggering event.
func Stabilize(m *mesh.Mesh, seeds ...grid.NodeID) Result {
	st := NewStepper(m)
	st.Seed(seeds...)
	return st.Run()
}

// Run drives the stepper to quiescence.
func (st *Stepper) Run() Result {
	var res Result
	roundCap := maxRoundsFactor * (st.m.Shape().Diameter() + 2)
	for !st.Quiescent() {
		if res.Rounds >= roundCap {
			res.Affected = st.Affected()
			return res // Converged stays false: protocol bug guard.
		}
		res.Transitions += st.Round()
		res.Rounds++
	}
	res.Affected = st.Affected()
	res.Converged = true
	// Quiescence is detected one round after the last change: the final
	// evaluation round that produced no transition is not counted in a_i.
	if res.Rounds > 0 {
		res.Rounds--
	}
	return res
}

// StabilizeFull seeds every node (used to build the initial labeling when a
// mesh is constructed with pre-existing faults).
func StabilizeFull(m *mesh.Mesh) Result {
	st := NewStepper(m)
	ids := make([]grid.NodeID, m.NumNodes())
	for i := range ids {
		ids[i] = grid.NodeID(i)
	}
	st.Seed(ids...)
	return st.Run()
}

// Block is a stabilized faulty block extracted by the oracle: the maximal
// connected component of disabled and faulty nodes, stored as its interior
// box (the paper's [lo1:hi1, ...] notation).
type Block struct {
	// Box is the bounding box of the component.
	Box grid.Box
	// Nodes is the component's node count.
	Nodes int
	// Faults is the number of faulty (vs. disabled) nodes inside.
	Faults int
	// Solid reports whether the component fills Box exactly; Wu's model
	// guarantees this after stabilization when no fault touches the
	// outermost surface, and the property tests assert it.
	Solid bool
}

// Extract computes the faulty blocks of the current (stabilized) mesh by
// connected-component search over disabled∪faulty nodes. This is the
// centralized oracle the distributed identification protocol is verified
// against, and the information source for the global-information baseline
// router. Blocks are returned sorted by box origin for determinism.
func Extract(m *mesh.Mesh) []Block {
	n := m.NumNodes()
	visited := make([]bool, n)
	var blocks []Block
	var queue []grid.NodeID
	for start := 0; start < n; start++ {
		id := grid.NodeID(start)
		if visited[start] || !m.Status(id).Bad() {
			continue
		}
		// BFS one component.
		visited[start] = true
		queue = append(queue[:0], id)
		c := m.Shape().CoordOf(id)
		box := grid.BoxAt(c)
		count, faults := 0, 0
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			count++
			if m.Status(cur) == mesh.Faulty {
				faults++
			}
			box.Include(m.Shape().Coord(cur, c))
			m.EachNeighbor(cur, func(nb grid.NodeID, _ grid.Dir) {
				if !visited[nb] && m.Status(nb).Bad() {
					visited[nb] = true
					queue = append(queue, nb)
				}
			})
		}
		blocks = append(blocks, Block{
			Box:    box.Clone(),
			Nodes:  count,
			Faults: faults,
			Solid:  count == box.Volume(),
		})
	}
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i].Box.Lo, blocks[j].Box.Lo
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return blocks
}

// MaxEdge returns e_max of Table 1: the maximum edge length over all blocks
// (0 when there are none).
func MaxEdge(blocks []Block) int {
	e := 0
	for _, b := range blocks {
		if m := b.Box.MaxExtent(); m > e {
			e = m
		}
	}
	return e
}

// Oracle is the reusable-buffer variant of the centralized block oracle for
// hot paths that query it repeatedly (the engine computes e_max after every
// applied fault event). The zero value is ready to use; all scratch storage
// is grown on first use and reused afterwards, so steady-state queries
// allocate nothing.
type Oracle struct {
	visited []bool
	queue   []grid.NodeID
	lo, hi  grid.Coord
	scratch grid.Coord
}

// MaxEdge returns MaxEdge(Extract(m)) without materializing the blocks:
// the same connected-component search over disabled∪faulty nodes, tracking
// only each component's bounding-box extents.
func (o *Oracle) MaxEdge(m *mesh.Mesh) int {
	n := m.NumNodes()
	if cap(o.visited) < n {
		o.visited = make([]bool, n)
	} else {
		o.visited = o.visited[:n]
		clear(o.visited)
	}
	shape := m.Shape()
	dims := shape.Dims()
	if len(o.lo) != dims {
		o.lo = make(grid.Coord, dims)
		o.hi = make(grid.Coord, dims)
		o.scratch = make(grid.Coord, dims)
	}
	numDirs := shape.NumDirs()
	e := 0
	for start := 0; start < n; start++ {
		id := grid.NodeID(start)
		if o.visited[start] || !m.Status(id).Bad() {
			continue
		}
		o.visited[start] = true
		o.queue = append(o.queue[:0], id)
		shape.Coord(id, o.lo)
		copy(o.hi, o.lo)
		for qi := 0; qi < len(o.queue); qi++ {
			cur := o.queue[qi]
			c := shape.Coord(cur, o.scratch)
			for i, v := range c {
				if v < o.lo[i] {
					o.lo[i] = v
				}
				if v > o.hi[i] {
					o.hi[i] = v
				}
			}
			for d := 0; d < numDirs; d++ {
				nb := m.Neighbor(cur, grid.Dir(d))
				if nb != grid.InvalidNode && !o.visited[nb] && m.Status(nb).Bad() {
					o.visited[nb] = true
					o.queue = append(o.queue, nb)
				}
			}
		}
		for i := range o.lo {
			if ext := o.hi[i] - o.lo[i] + 1; ext > e {
				e = ext
			}
		}
	}
	return e
}
