package block

import (
	"testing"
	"testing/quick"

	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

func mk3D(t *testing.T, k int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.NewUniform(3, k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mk2D(t *testing.T, k int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.NewUniform(2, k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func failAll(m *mesh.Mesh, coords ...grid.Coord) []grid.NodeID {
	ids := make([]grid.NodeID, len(coords))
	for i, c := range coords {
		ids[i] = m.Shape().Index(c)
		m.Fail(ids[i])
	}
	return ids
}

// TestFigure1BlockConstruction reproduces Figure 1(a): faults (3,5,4),
// (4,5,4), (5,5,3), (3,6,3) in a 3-D mesh form the faulty block
// [3:5, 5:6, 3:4] after the labeling stabilizes.
func TestFigure1BlockConstruction(t *testing.T) {
	m := mk3D(t, 10)
	seeds := failAll(m, grid.Coord{3, 5, 4}, grid.Coord{4, 5, 4}, grid.Coord{5, 5, 3}, grid.Coord{3, 6, 3})
	res := Stabilize(m, seeds...)
	if !res.Converged {
		t.Fatal("labeling did not converge")
	}
	blocks := Extract(m)
	if len(blocks) != 1 {
		t.Fatalf("want 1 block, got %d", len(blocks))
	}
	want := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})
	if !blocks[0].Box.Equal(want) {
		t.Fatalf("block = %v, want %v (the paper's [3:5, 5:6, 3:4])", blocks[0].Box, want)
	}
	if !blocks[0].Solid {
		t.Fatalf("block not solid: %d nodes in %v", blocks[0].Nodes, blocks[0].Box)
	}
	if blocks[0].Faults != 4 {
		t.Fatalf("Faults = %d, want 4", blocks[0].Faults)
	}
	if blocks[0].Nodes != want.Volume() {
		t.Fatalf("Nodes = %d, want %d", blocks[0].Nodes, want.Volume())
	}
	// The disabled nodes are exactly the non-faulty nodes of the box.
	if m.NumDisabled() != want.Volume()-4 {
		t.Fatalf("disabled = %d, want %d", m.NumDisabled(), want.Volume()-4)
	}
}

// TestRule1SameAxisDoesNotDisable: two faulty neighbors along one axis do
// not disable the node between them (Definition 1 requires different
// dimensions).
func TestRule1SameAxisDoesNotDisable(t *testing.T) {
	m := mk2D(t, 8)
	seeds := failAll(m, grid.Coord{2, 4}, grid.Coord{4, 4})
	res := Stabilize(m, seeds...)
	if !res.Converged {
		t.Fatal("not converged")
	}
	if m.StatusAt(grid.Coord{3, 4}) != mesh.Enabled {
		t.Fatal("node sandwiched along one axis must stay enabled")
	}
	if bs := Extract(m); len(bs) != 2 {
		t.Fatalf("want 2 singleton blocks, got %d", len(bs))
	}
}

// TestRule1DiagonalDisables: diagonal faults create disabled nodes filling
// the box.
func TestRule1DiagonalDisables(t *testing.T) {
	m := mk2D(t, 8)
	seeds := failAll(m, grid.Coord{3, 3}, grid.Coord{4, 4})
	res := Stabilize(m, seeds...)
	if !res.Converged {
		t.Fatal("not converged")
	}
	for _, c := range []grid.Coord{{3, 4}, {4, 3}} {
		if m.StatusAt(c) != mesh.Disabled {
			t.Fatalf("%v should be disabled, is %v", c, m.StatusAt(c))
		}
	}
	bs := Extract(m)
	if len(bs) != 1 || !bs[0].Box.Equal(grid.NewBox(grid.Coord{3, 3}, grid.Coord{4, 4})) {
		t.Fatalf("blocks = %v", bs)
	}
}

// TestStaircaseFillsBox: a diagonal staircase of faults stabilizes to the
// full bounding box (multiple labeling waves).
func TestStaircaseFillsBox(t *testing.T) {
	m := mk2D(t, 10)
	seeds := failAll(m, grid.Coord{3, 3}, grid.Coord{4, 4}, grid.Coord{5, 5})
	res := Stabilize(m, seeds...)
	if !res.Converged {
		t.Fatal("not converged")
	}
	bs := Extract(m)
	want := grid.NewBox(grid.Coord{3, 3}, grid.Coord{5, 5})
	if len(bs) != 1 || !bs[0].Box.Equal(want) || !bs[0].Solid {
		t.Fatalf("blocks = %+v, want solid %v", bs, want)
	}
	if res.Rounds < 2 {
		t.Fatalf("staircase should take multiple rounds, took %d", res.Rounds)
	}
}

// TestFigure4Recovery reproduces Figure 4 exactly: starting from Figure
// 1's block, node (5,5,3) recovers. The clean wave must release the x=5
// slab, (3,5,3) must stay disabled (two faulty neighbors in different
// dimensions), and (4,5,3) must transition clean -> enabled -> disabled
// again (it ends with faulty neighbor (4,5,4) and disabled neighbor
// (3,5,3) in different dimensions).
func TestFigure4Recovery(t *testing.T) {
	m := mk3D(t, 10)
	seeds := failAll(m, grid.Coord{3, 5, 4}, grid.Coord{4, 5, 4}, grid.Coord{5, 5, 3}, grid.Coord{3, 6, 3})
	Stabilize(m, seeds...)

	// Recover (5,5,3): rule 5 labels it clean.
	rec := m.Shape().Index(grid.Coord{5, 5, 3})
	m.Recover(rec)
	st := NewStepper(m)
	st.Seed(rec)

	// Round 1: the direct disabled neighbors of the recovered node see the
	// clean status and become clean (rule 2).
	st.Round()
	for _, c := range []grid.Coord{{4, 5, 3}, {5, 6, 3}, {5, 5, 4}} {
		if got := m.StatusAt(c); got != mesh.Clean {
			t.Fatalf("after round 1, %v = %v, want clean", c, got)
		}
	}
	// (3,5,3) must never go clean: faulty neighbors (3,6,3) [Y] and
	// (3,5,4) [Z] are in different dimensions.
	if got := m.StatusAt(grid.Coord{3, 5, 3}); got != mesh.Disabled {
		t.Fatalf("(3,5,3) = %v, want disabled", got)
	}

	res := st.Run()
	if !res.Converged {
		t.Fatal("recovery labeling did not converge")
	}
	// Final statuses per the paper's Figure 4(b): the block shrinks to
	// [3:4, 5:6, 3:4]; (4,5,3) is disabled again; the x=5 slab except the
	// nodes still forced by faults is released.
	if got := m.StatusAt(grid.Coord{4, 5, 3}); got != mesh.Disabled {
		t.Fatalf("(4,5,3) = %v, want disabled (re-disabled after enable)", got)
	}
	if got := m.StatusAt(grid.Coord{5, 5, 3}); got != mesh.Enabled {
		t.Fatalf("recovered (5,5,3) = %v, want enabled", got)
	}
	for _, c := range []grid.Coord{{5, 6, 3}, {5, 5, 4}, {5, 6, 4}} {
		if got := m.StatusAt(c); got != mesh.Enabled {
			t.Fatalf("released node %v = %v, want enabled", c, got)
		}
	}
	bs := Extract(m)
	want := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{4, 6, 4})
	if len(bs) != 1 || !bs[0].Box.Equal(want) {
		t.Fatalf("stabilized blocks = %+v, want %v", bs, want)
	}
	if !bs[0].Solid {
		t.Fatalf("shrunk block not solid: %+v", bs[0])
	}
}

// TestRecoveryDissolvesSingletonBlock: recovering the only fault releases
// everything.
func TestRecoveryDissolvesSingletonBlock(t *testing.T) {
	m := mk2D(t, 8)
	id := m.Shape().Index(grid.Coord{4, 4})
	m.Fail(id)
	Stabilize(m, id)
	m.Recover(id)
	res := Stabilize(m, id)
	if !res.Converged {
		t.Fatal("not converged")
	}
	if m.NumFaulty() != 0 || m.NumDisabled() != 0 || m.NumClean() != 0 {
		t.Fatalf("mesh not fully released: f=%d d=%d c=%d",
			m.NumFaulty(), m.NumDisabled(), m.NumClean())
	}
	if len(Extract(m)) != 0 {
		t.Fatal("blocks remain after full recovery")
	}
}

// TestRecoverySplitsBlock: recovering the middle fault of a 1-wide block of
// three faults splits it into two singleton blocks.
func TestRecoverySplitsBlock(t *testing.T) {
	m := mk2D(t, 10)
	// Diagonal faults create a 3x3 block.
	seeds := failAll(m, grid.Coord{3, 3}, grid.Coord{4, 4}, grid.Coord{5, 5})
	Stabilize(m, seeds...)
	// Recover the center: the block must split into the two corner
	// singletons.
	mid := m.Shape().Index(grid.Coord{4, 4})
	m.Recover(mid)
	res := Stabilize(m, mid)
	if !res.Converged {
		t.Fatal("not converged")
	}
	bs := Extract(m)
	if len(bs) != 2 {
		t.Fatalf("want 2 blocks after split, got %+v", bs)
	}
	for _, b := range bs {
		if b.Box.Volume() != 1 || !b.Solid {
			t.Fatalf("split block not singleton: %+v", b)
		}
	}
}

// TestReactiveEqualsFull: the frontier-based stabilization must reach the
// same fixed point as seeding every node.
func TestReactiveEqualsFull(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 50; trial++ {
		m1 := mk2D(t, 12)
		m2 := mk2D(t, 12)
		var seeds []grid.NodeID
		for f := 0; f < 6; f++ {
			c := grid.Coord{1 + r.Intn(10), 1 + r.Intn(10)}
			id := m1.Shape().Index(c)
			m1.Fail(id)
			m2.Fail(id)
			seeds = append(seeds, id)
		}
		res1 := Stabilize(m1, seeds...)
		res2 := StabilizeFull(m2)
		if !res1.Converged || !res2.Converged {
			t.Fatal("not converged")
		}
		s1, s2 := m1.Snapshot(), m2.Snapshot()
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("trial %d: reactive and full fixpoints differ at node %d: %v vs %v",
					trial, i, s1[i], s2[i])
			}
		}
	}
}

// TestBlocksAreSolidDisjointBoxes is the paper's structural invariant
// (property 1 of DESIGN.md): random interior faults always stabilize into
// solid, pairwise-disjoint boxes.
func TestBlocksAreSolidDisjointBoxes(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 80; trial++ {
		m := mk2D(t, 14)
		var seeds []grid.NodeID
		nf := 2 + r.Intn(8)
		for f := 0; f < nf; f++ {
			c := grid.Coord{1 + r.Intn(12), 1 + r.Intn(12)}
			id := m.Shape().Index(c)
			m.Fail(id)
			seeds = append(seeds, id)
		}
		res := Stabilize(m, seeds...)
		if !res.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		bs := Extract(m)
		for i, b := range bs {
			if !b.Solid {
				t.Fatalf("trial %d: non-solid block %+v", trial, b)
			}
			for j := i + 1; j < len(bs); j++ {
				if b.Box.Intersects(bs[j].Box) {
					t.Fatalf("trial %d: blocks intersect: %v and %v", trial, b.Box, bs[j].Box)
				}
			}
		}
	}
}

// TestBlocksAreSolidDisjointBoxes3D extends the invariant to 3-D.
func TestBlocksAreSolidDisjointBoxes3D(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 30; trial++ {
		m := mk3D(t, 8)
		var seeds []grid.NodeID
		nf := 2 + r.Intn(6)
		for f := 0; f < nf; f++ {
			c := grid.Coord{1 + r.Intn(6), 1 + r.Intn(6), 1 + r.Intn(6)}
			id := m.Shape().Index(c)
			m.Fail(id)
			seeds = append(seeds, id)
		}
		res := Stabilize(m, seeds...)
		if !res.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		for _, b := range Extract(m) {
			if !b.Solid {
				t.Fatalf("trial %d: non-solid 3-D block %+v", trial, b)
			}
		}
	}
}

// TestConvergenceLocality: a single new fault far from everything touches
// no other node.
func TestConvergenceLocality(t *testing.T) {
	m := mk2D(t, 16)
	id := m.Shape().Index(grid.Coord{8, 8})
	m.Fail(id)
	res := Stabilize(m, id)
	if res.Affected != 0 {
		t.Fatalf("isolated fault affected %d nodes, want 0", res.Affected)
	}
	if res.Rounds > 1 {
		t.Fatalf("isolated fault took %d rounds", res.Rounds)
	}
}

// TestQuickRandomFaultsConverge: property-based convergence within the
// diameter-scaled cap for arbitrary interior fault patterns.
func TestQuickRandomFaultsConverge(t *testing.T) {
	prop := func(raw []uint16) bool {
		m, _ := mesh.NewUniform(2, 12)
		var seeds []grid.NodeID
		for _, v := range raw {
			x := 1 + int(v%10)
			y := 1 + int((v/10)%10)
			id := m.Shape().Index(grid.Coord{x, y})
			if m.Status(id) != mesh.Faulty {
				m.Fail(id)
				seeds = append(seeds, id)
			}
			if len(seeds) >= 12 {
				break
			}
		}
		res := Stabilize(m, seeds...)
		return res.Converged
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxEdge covers the e_max helper.
func TestMaxEdge(t *testing.T) {
	if MaxEdge(nil) != 0 {
		t.Fatal("empty MaxEdge not 0")
	}
	bs := []Block{
		{Box: grid.NewBox(grid.Coord{0, 0}, grid.Coord{2, 0})},
		{Box: grid.NewBox(grid.Coord{5, 5}, grid.Coord{5, 9})},
	}
	if MaxEdge(bs) != 5 {
		t.Fatalf("MaxEdge = %d, want 5", MaxEdge(bs))
	}
}

// TestExtractOrderingDeterministic: blocks come back sorted by origin.
func TestExtractOrderingDeterministic(t *testing.T) {
	m := mk2D(t, 12)
	failAll(m, grid.Coord{8, 2}, grid.Coord{2, 8}, grid.Coord{5, 5})
	StabilizeFull(m)
	bs := Extract(m)
	if len(bs) != 3 {
		t.Fatalf("want 3 blocks, got %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		a, b := bs[i-1].Box.Lo, bs[i].Box.Lo
		if a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]) {
			t.Fatalf("blocks unsorted: %v before %v", a, b)
		}
	}
}
