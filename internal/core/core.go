// Package core orchestrates the paper's limited-global fault-information
// model: it wires the labeling protocol (Algorithm 1, internal/block), the
// frame-level detection (Definition 2, internal/frame), the identification
// process (Algorithm 2, internal/ident) and the boundary construction with
// merge and cancellation (internal/boundary) into a single per-round state
// machine over one mesh and one information store.
//
// One call to Model.Round is one synchronous round of "fault information
// exchanges and update" in the step model of Figure 7; the execution engine
// (internal/engine) calls it λ times per step. The model is reactive: a
// round with no pending work costs almost nothing.
//
// The orchestrator also implements the deletion trigger of Section 3: a
// constructed block is watched through its n-level corners, and when a
// corner "finds that its existing condition cannot be satisfied" (after a
// recovery shrank or dissolved the block) a cancellation flood is launched
// over the old placement.
package core

import (
	"sort"
	"strconv"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/ident"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// watchStrikes is how many consecutive inconsistent rounds a corner must
// observe before triggering deletion; it rides out single-round transients
// of the labeling wave.
const watchStrikes = 2

// watched tracks one constructed block: its box, construction epoch, corner
// nodes, and the per-corner inconsistency strike counter.
type watched struct {
	box     grid.Box
	epoch   uint32
	corners []grid.NodeID
	strikes int
}

// Model is the limited-global fault-information model over one mesh.
type Model struct {
	M        *mesh.Mesh
	Labeling *block.Stepper
	Detector *frame.Detector
	Ident    *ident.Protocol
	Boundary *boundary.Protocol
	Store    *info.Store

	epoch   uint32
	round   int
	watches map[string]*watched
	// watchKeys is the reusable sort buffer of watchCorners and scratch the
	// coordinate buffer of cornersConsistent; with them, a quiescent round
	// over standing watches allocates nothing.
	watchKeys []string   //meshvet:keep sort scratch, re-sliced per use
	scratch   grid.Coord //meshvet:keep scratch buffer, overwritten before every use

	// keyBuf, keyIntern, seedBuf and spareWatches make the identification
	// path allocation-free once warm: watch keys are formatted into keyBuf
	// and interned (keyIntern survives Reset — it is bounded by the number
	// of distinct boxes the mesh can hold), flood seeds are staged in
	// seedBuf (boundary.Start copies them), and retired watch objects are
	// recycled through spareWatches with their box and corner storage.
	keyBuf       []byte            //meshvet:keep format scratch, overwritten per key
	keyIntern    map[string]string //meshvet:keep intern table, bounded by distinct boxes; survives Reset by design
	seedBuf      []grid.NodeID     //meshvet:keep staging buffer, copied out by boundary.Start
	spareWatches []*watched

	// Debug, when non-nil, receives internal decision traces (tests only).
	Debug func(format string, args ...any) //meshvet:keep test hook, not trial state

	// Last activity rounds, for convergence accounting (a_i, b_i, c_i).
	LastLabelRound, LastFrameRound, LastIdentRound, LastBoundaryRound int
	// CancelsStarted counts deletion floods launched.
	CancelsStarted int
}

// New builds the model over an existing mesh. If the mesh already has
// faults, call Stabilize once before running steps.
func New(m *mesh.Mesh) *Model {
	store := info.NewStore(m.NumNodes())
	det := frame.NewDetector(m)
	md := &Model{
		M:         m,
		Labeling:  block.NewStepper(m),
		Detector:  det,
		Ident:     ident.NewProtocol(m, det, store),
		Boundary:  boundary.NewProtocol(m, store),
		Store:     store,
		watches:   make(map[string]*watched),
		scratch:   make(grid.Coord, m.Shape().Dims()),
		keyIntern: make(map[string]string),
	}
	md.Ident.OnIdentified = md.onIdentified
	return md
}

// Round returns the current global round counter.
func (md *Model) RoundCount() int { return md.round }

// Reset rewinds the model to the fault-free state over the same mesh so it
// can be reused for a new trial: the mesh statuses, every protocol, the
// information store, the watches and all convergence accounting are
// cleared, while every internal buffer keeps its capacity. A reset model is
// observationally identical to core.New over a reset mesh.
func (md *Model) Reset() {
	md.M.Reset()
	md.Labeling.Reset()
	md.Detector.Reset()
	md.Ident.Reset()
	md.Boundary.Reset()
	md.Store.Clear()
	md.epoch = 0
	md.round = 0
	//meshvet:ordered pool refill: recycled watches are fully reinitialized on reuse, so free-list order is invisible
	for _, w := range md.watches {
		md.spareWatches = append(md.spareWatches, w)
	}
	clear(md.watches)
	md.LastLabelRound, md.LastFrameRound, md.LastIdentRound, md.LastBoundaryRound = 0, 0, 0, 0
	md.CancelsStarted = 0
}

// Epoch returns the current construction epoch.
func (md *Model) Epoch() uint32 { return md.epoch }

// ApplyFault injects fault occurrence f_i at node id (detected by its
// neighbors at the next round, per the fault-detection phase of Figure 7).
func (md *Model) ApplyFault(id grid.NodeID) {
	md.M.Fail(id)
	md.Labeling.Seed(id)
	md.Detector.Seed(id)
}

// ApplyRecovery applies rule 5: the faulty node becomes clean.
func (md *Model) ApplyRecovery(id grid.NodeID) {
	md.M.Recover(id)
	md.Labeling.Seed(id)
	md.Detector.Seed(id)
}

// Round executes one synchronous round of all information constructions:
// one labeling round, one frame-announcement round, one hop of every
// identification message, one hop of every boundary/cancellation flood, and
// the deletion-trigger watch. It returns the total activity (0 when fully
// quiescent).
func (md *Model) Round() int {
	md.round++
	activity := 0

	if ch := md.Labeling.Round(); ch > 0 {
		activity += ch
		md.LastLabelRound = md.round
		md.Detector.Seed(md.Labeling.LastChanged()...)
	}
	if ch := md.Detector.Round(); ch > 0 {
		activity += ch
		md.LastFrameRound = md.round
		md.Ident.Notify(md.Detector.Changed()...)
	}
	if ch := md.Ident.Round(); ch > 0 {
		activity += ch
		md.LastIdentRound = md.round
	}
	if ch := md.Boundary.Round(); ch > 0 {
		activity += ch
		md.LastBoundaryRound = md.round
	}
	activity += md.watchCorners()
	return activity
}

// Quiescent reports whether every construction is at its fixed point.
func (md *Model) Quiescent() bool {
	return md.Labeling.Quiescent() && md.Detector.Quiescent() &&
		md.Ident.Quiescent() && md.Boundary.Quiescent()
}

// Stabilize runs rounds until quiescence (bounded by a safety cap) and
// returns the number of rounds with activity. Used by tests and by the
// setup of meshes with pre-existing faults.
func (md *Model) Stabilize() int {
	roundCap := 16*(md.M.Shape().Diameter()+2) + 8*md.Ident.TTL
	rounds := 0
	for !md.Quiescent() && rounds < roundCap {
		md.Round()
		rounds++
	}
	return rounds
}

// onIdentified launches the combined phase-4 / boundary-construction flood
// for a freshly identified block: the record propagates from the opposite
// corner over the block's frame shell and down its boundary walls, merging
// into other blocks' placements where they intersect (Fig. 3(d)).
func (md *Model) onIdentified(box grid.Box, corner grid.NodeID) {
	md.keyBuf = appendBoxKey(md.keyBuf[:0], box)
	if w, dup := md.watches[string(md.keyBuf)]; dup && w != nil {
		return // already constructed (another corner's run finished first)
	}
	md.epoch++
	md.seedBuf = append(md.seedBuf[:0], corner)
	md.Boundary.Start(box, md.epoch, boundary.Deposit, md.seedBuf)
	w := md.getWatched(box, md.epoch)
	// Enumerate the frame corners (frame.Corners order: mask bit i selects
	// Hi[i]+1 over Lo[i]-1) into the scratch coordinate — the corner list
	// feeds cancellation seeds, so the order must stay exactly this.
	shape := md.M.Shape()
	n := shape.Dims()
	for mask := 0; mask < 1<<uint(n); mask++ {
		c := md.scratch
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c[i] = box.Hi[i] + 1
			} else {
				c[i] = box.Lo[i] - 1
			}
		}
		if shape.Contains(c) {
			w.corners = append(w.corners, shape.Index(c))
		}
	}
	md.watches[md.internKey(md.keyBuf)] = w
	md.LastBoundaryRound = md.round
}

// getWatched returns a watch object for the box, recycling a retired one
// (keeping its box and corner storage) when available.
func (md *Model) getWatched(box grid.Box, epoch uint32) *watched {
	if n := len(md.spareWatches); n > 0 {
		w := md.spareWatches[n-1]
		md.spareWatches = md.spareWatches[:n-1]
		w.box.Set(box)
		w.epoch = epoch
		w.corners = w.corners[:0]
		w.strikes = 0
		return w
	}
	return &watched{box: box.Clone(), epoch: epoch}
}

// internKey returns the canonical string for a formatted key, allocating
// only the first time a given box is ever watched on this model.
func (md *Model) internKey(buf []byte) string {
	if s, ok := md.keyIntern[string(buf)]; ok {
		return s
	}
	s := string(buf)
	md.keyIntern[s] = s
	return s
}

// appendBoxKey formats box exactly as grid.Box.String does — the watch map
// is sorted by key, so the format is part of the deletion-trigger visit
// order.
func appendBoxKey(buf []byte, box grid.Box) []byte {
	buf = append(buf, '[')
	for i := range box.Lo {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = strconv.AppendInt(buf, int64(box.Lo[i]), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(box.Hi[i]), 10)
	}
	return append(buf, ']')
}

// watchCorners implements the deletion trigger: when a corner of a
// constructed block reports an inconsistent frame announcement for
// watchStrikes consecutive rounds (with no clean wave in flight), the
// block's old information is cancelled along its old placement. Watches are
// visited in sorted key order for determinism.
func (md *Model) watchCorners() int {
	if len(md.watches) == 0 {
		return 0
	}
	keys := md.watchKeys[:0]
	//meshvet:ordered keys are sorted before any use below
	for key := range md.watches {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	md.watchKeys = keys
	activity := 0
	for _, key := range keys {
		w := md.watches[key]
		if md.cornersConsistent(w) {
			w.strikes = 0
			continue
		}
		w.strikes++
		if w.strikes < watchStrikes {
			continue
		}
		// Launch the cancellation flood from the enabled corners; epoch
		// guards ensure newer records survive the deletion.
		md.epoch++
		seeds := md.enabledPlacementSeeds(w)
		if len(seeds) > 0 {
			md.Boundary.Start(w.box, md.epoch, boundary.Cancel, seeds)
			md.CancelsStarted++
			md.LastBoundaryRound = md.round
			activity++
		}
		md.spareWatches = append(md.spareWatches, w)
		delete(md.watches, key)
	}
	return activity
}

// cornersConsistent reports whether the watched block's corners still
// observe the conditions of its existence: every enabled corner must
// announce level n with exactly the surface directions of the box. A
// disabled corner means the block grew over it — growth is handled by
// dominated-record replacement, not deletion. When the block shrank or
// dissolved after recoveries, some old corner loses the property and the
// watch reports inconsistency.
func (md *Model) cornersConsistent(w *watched) bool {
	if md.M.NumClean() > 0 {
		return true // a clean wave is in flight: wait for it to settle
	}
	shape := md.M.Shape()
	n := shape.Dims()
	for _, id := range w.corners {
		if md.M.Status(id) != mesh.Enabled {
			continue
		}
		want := frame.SurfaceDirs(w.box, shape.Coord(id, md.scratch))
		if !md.Detector.HasRecord(id, n, want) {
			if md.Debug != nil {
				md.Debug("watch %v: corner %v lost its role (want level %d dirs=%b, has %v)",
					w.box, shape.CoordOf(id), n, want, md.Detector.Records(id))
			}
			return false
		}
	}
	return true
}

// enabledPlacementSeeds returns the enabled corner nodes of the old box
// (cancellation starts from the corners that detected the change). The
// returned slice is the model's reusable seed buffer — valid only until the
// next identification or cancellation (boundary.Start copies it).
func (md *Model) enabledPlacementSeeds(w *watched) []grid.NodeID {
	seeds := md.seedBuf[:0]
	for _, id := range w.corners {
		if md.M.Status(id) == mesh.Enabled {
			seeds = append(seeds, id)
		}
	}
	md.seedBuf = seeds
	return seeds
}
