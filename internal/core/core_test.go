package core

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

func newModel3D(t *testing.T) *Model {
	t.Helper()
	m, err := mesh.NewUniform(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func newModel2D(t *testing.T, k int) *Model {
	t.Helper()
	m, err := mesh.NewUniform(2, k)
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

// applyAndStabilize injects faults and runs to quiescence.
func applyAndStabilize(t *testing.T, md *Model, coords ...grid.Coord) {
	t.Helper()
	for _, c := range coords {
		md.ApplyFault(md.M.Shape().Index(c))
	}
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("model did not quiesce")
	}
}

// TestFullPlacementAfterConstruction: every enabled placement node of each
// block holds its record, and no stale records exist anywhere else.
func TestFullPlacementAfterConstruction(t *testing.T) {
	md := newModel2D(t, 16)
	applyAndStabilize(t, md, grid.Coord{4, 4}, grid.Coord{5, 5}, grid.Coord{10, 10})
	blocks := block.Extract(md.M)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	shape := md.M.Shape()
	for _, b := range blocks {
		for _, id := range boundary.Placement(shape, b.Box) {
			if md.M.Status(id) != mesh.Enabled {
				continue
			}
			if !md.Store.Has(id, b.Box) {
				t.Errorf("node %v lacks record for %v", shape.CoordOf(id), b.Box)
			}
		}
	}
	// No record for a box that is not a current block.
	valid := map[string]bool{}
	for _, b := range blocks {
		valid[b.Box.String()] = true
	}
	for id := 0; id < md.M.NumNodes(); id++ {
		for _, r := range md.Store.At(grid.NodeID(id)) {
			if !valid[r.Box.String()] {
				t.Errorf("stale record %v at %v", r.Box, shape.CoordOf(grid.NodeID(id)))
			}
		}
	}
}

// TestRecoveryCancelsOldInformation: after a block fully dissolves, its
// records must be deleted everywhere (the deletion process of Section 3).
func TestRecoveryCancelsOldInformation(t *testing.T) {
	md := newModel2D(t, 12)
	c := grid.Coord{6, 6}
	applyAndStabilize(t, md, c)
	box := grid.BoxAt(c)
	if md.Store.TotalRecords() == 0 {
		t.Fatal("no records constructed")
	}
	md.ApplyRecovery(md.M.Shape().Index(c))
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("not quiescent after recovery")
	}
	if md.CancelsStarted == 0 {
		t.Fatal("no cancellation launched")
	}
	for id := 0; id < md.M.NumNodes(); id++ {
		if md.Store.Has(grid.NodeID(id), box) {
			t.Fatalf("stale record at %v after dissolution", md.M.Shape().CoordOf(grid.NodeID(id)))
		}
	}
}

// TestShrinkReplacesInformation is the Figure 4 scenario followed through
// the whole information model: the block [3:5,5:6,3:4] shrinks to
// [3:4,5:6,3:4]; the old record must be cancelled and the new one
// constructed.
func TestShrinkReplacesInformation(t *testing.T) {
	md := newModel3D(t)
	applyAndStabilize(t, md,
		grid.Coord{3, 5, 4}, grid.Coord{4, 5, 4}, grid.Coord{5, 5, 3}, grid.Coord{3, 6, 3})
	oldBox := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})
	newBox := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{4, 6, 4})

	md.ApplyRecovery(md.M.Shape().Index(grid.Coord{5, 5, 3}))
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("not quiescent after shrink")
	}
	bs := block.Extract(md.M)
	if len(bs) != 1 || !bs[0].Box.Equal(newBox) {
		t.Fatalf("blocks after shrink = %+v", bs)
	}
	shape := md.M.Shape()
	// New records in place over the new placement.
	for _, id := range boundary.Placement(shape, newBox) {
		if md.M.Status(id) == mesh.Enabled && !md.Store.Has(id, newBox) {
			t.Errorf("missing new record at %v", shape.CoordOf(id))
		}
	}
	// Old records gone everywhere.
	for id := 0; id < md.M.NumNodes(); id++ {
		if md.Store.Has(grid.NodeID(id), oldBox) {
			t.Errorf("stale record for old box at %v", shape.CoordOf(grid.NodeID(id)))
		}
	}
}

// TestGrowthReplacesDominatedRecords: growing a block leaves no stale
// small-box records on the new placement.
func TestGrowthReplacesDominatedRecords(t *testing.T) {
	md := newModel2D(t, 14)
	applyAndStabilize(t, md, grid.Coord{6, 6})
	small := grid.BoxAt(grid.Coord{6, 6})
	if md.Store.TotalRecords() == 0 {
		t.Fatal("no initial records")
	}
	// Grow: diagonal fault extends the block to [6:7, 6:7].
	md.ApplyFault(md.M.Shape().Index(grid.Coord{7, 7}))
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("not quiescent after growth")
	}
	bigBox := grid.NewBox(grid.Coord{6, 6}, grid.Coord{7, 7})
	bs := block.Extract(md.M)
	if len(bs) != 1 || !bs[0].Box.Equal(bigBox) {
		t.Fatalf("blocks = %+v", bs)
	}
	shape := md.M.Shape()
	for _, id := range boundary.Placement(shape, bigBox) {
		if md.M.Status(id) != mesh.Enabled {
			continue
		}
		if !md.Store.Has(id, bigBox) {
			t.Errorf("missing grown record at %v", shape.CoordOf(id))
		}
		if md.Store.Has(id, small) {
			t.Errorf("stale dominated record at %v", shape.CoordOf(id))
		}
	}
}

// TestTheorem1RecoveryDoesNotHurtRouting: Theorem 1 — the constructions of
// fault recovery do not affect the optimal routing. A safe-source routing
// running while a block shrinks must stay minimal.
func TestTheorem1RecoveryDoesNotHurtRouting(t *testing.T) {
	md := newModel2D(t, 16)
	// Block away from the source's axis sections: source safe.
	applyAndStabilize(t, md, grid.Coord{7, 7}, grid.Coord{8, 8})
	shape := md.M.Shape()
	src := shape.Index(grid.Coord{2, 3})
	dst := shape.Index(grid.Coord{13, 12})
	if !mdSourceSafe(md, src, dst) {
		t.Fatal("setup: source should be safe")
	}
	// Drive a routing by hand, recovering a node mid-flight.
	msg := newLimitedMessage(md, src, dst)
	stepsAtRecovery := 4
	d0 := shape.Distance(src, dst)
	for i := 0; ; i++ {
		if i == stepsAtRecovery {
			md.ApplyRecovery(shape.Index(grid.Coord{8, 8}))
		}
		for l := 0; l < 2; l++ {
			md.Round()
		}
		if !advanceLimited(md, msg) {
			break
		}
		if i > 10*d0 {
			t.Fatal("routing did not terminate")
		}
	}
	if !msg.Arrived {
		t.Fatalf("message did not arrive: %v", msg)
	}
	if msg.Hops != d0 {
		t.Fatalf("recovery disturbed the optimal routing: hops=%d, D=%d", msg.Hops, d0)
	}
}

// TestEpochsIncrease: every construction bumps the model epoch.
func TestEpochsIncrease(t *testing.T) {
	md := newModel2D(t, 12)
	applyAndStabilize(t, md, grid.Coord{5, 5})
	e1 := md.Epoch()
	if e1 == 0 {
		t.Fatal("no epoch assigned")
	}
	md.ApplyFault(md.M.Shape().Index(grid.Coord{6, 6}))
	md.Stabilize()
	if md.Epoch() <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, md.Epoch())
	}
}

// TestIdleRoundCheap: a quiescent model's round does nothing.
func TestIdleRoundCheap(t *testing.T) {
	md := newModel2D(t, 12)
	applyAndStabilize(t, md, grid.Coord{5, 5})
	if act := md.Round(); act != 0 {
		t.Fatalf("idle round reported activity %d", act)
	}
}

// --- helpers bridging to the route package without an import cycle ---

func mdSourceSafe(md *Model, src, dst grid.NodeID) bool {
	shape := md.M.Shape()
	s, d := shape.CoordOf(src), shape.CoordOf(dst)
	for _, b := range block.Extract(md.M) {
		for axis := 0; axis < shape.Dims(); axis++ {
			intersects := true
			for l := range s {
				if l == axis {
					continue
				}
				if s[l] < b.Box.Lo[l] || s[l] > b.Box.Hi[l] {
					intersects = false
					break
				}
			}
			if !intersects {
				continue
			}
			lo, hi := s[axis], d[axis]
			if lo > hi {
				lo, hi = hi, lo
			}
			if b.Box.Hi[axis] >= lo && b.Box.Lo[axis] <= hi {
				return false
			}
		}
	}
	return true
}

// limitedMsg is a minimal greedy walker equivalent to route.Limited for
// this package's Theorem 1 test (avoiding a core -> route test dependency
// cycle is unnecessary — route does not import core — but keeping the
// helper local exercises the info store API directly).
type limitedMsg struct {
	Cur, Dst grid.NodeID
	Hops     int
	Arrived  bool
	used     map[grid.NodeID]grid.DirSet
}

func newLimitedMessage(md *Model, src, dst grid.NodeID) *limitedMsg {
	return &limitedMsg{Cur: src, Dst: dst, used: make(map[grid.NodeID]grid.DirSet)}
}

func advanceLimited(md *Model, msg *limitedMsg) bool {
	if msg.Cur == msg.Dst {
		msg.Arrived = true
		return false
	}
	shape := md.M.Shape()
	uc := shape.CoordOf(msg.Cur)
	dc := shape.CoordOf(msg.Dst)
	var pick grid.Dir = grid.InvalidDir
	for dv := 0; dv < shape.NumDirs(); dv++ {
		dir := grid.Dir(dv)
		if msg.used[msg.Cur].Has(dir) {
			continue
		}
		nb := md.M.Neighbor(msg.Cur, dir)
		if nb == grid.InvalidNode || md.M.Status(nb) != mesh.Enabled {
			continue
		}
		a := dir.Axis()
		preferred := (dir.Positive() && uc[a] < dc[a]) || (!dir.Positive() && uc[a] > dc[a])
		if !preferred {
			continue
		}
		// Demotion per records at the current node.
		wc := shape.CoordOf(nb)
		demoted := false
		for _, r := range md.Store.At(msg.Cur) {
			if axis, neg, ok := boundary.InShadow(r.Box, wc); ok && boundary.Trapped(r.Box, dc, axis, neg) {
				demoted = true
				break
			}
		}
		if !demoted {
			pick = dir
			break
		}
	}
	if pick == grid.InvalidDir {
		return false
	}
	msg.used[msg.Cur] = msg.used[msg.Cur].Add(pick)
	msg.Cur = md.M.Neighbor(msg.Cur, pick)
	msg.Hops++
	if msg.Cur == msg.Dst {
		msg.Arrived = true
		return false
	}
	return true
}
