package core

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

// placeSeparated puts nf faults with pairwise Chebyshev distance >= sep in
// the interior of the mesh, returning their nodes (or fewer when space runs
// out).
func placeSeparated(m *mesh.Mesh, nf, sep int, r *rng.Source) []grid.NodeID {
	shape := m.Shape()
	var placed []grid.NodeID
	for attempt := 0; attempt < 4000 && len(placed) < nf; attempt++ {
		cand := grid.NodeID(r.Intn(shape.NumNodes()))
		if shape.OnBorder(cand) {
			continue
		}
		ok := true
		for _, p := range placed {
			cheb := 0
			for axis := 0; axis < shape.Dims(); axis++ {
				d := shape.Component(cand, axis) - shape.Component(p, axis)
				if d < 0 {
					d = -d
				}
				if d > cheb {
					cheb = d
				}
			}
			if cheb < sep {
				ok = false
				break
			}
		}
		if ok {
			placed = append(placed, cand)
		}
	}
	return placed
}

// TestPropertyInformationMatchesOracle: for random well-separated fault
// sets, after stabilization the distributed information equals the oracle
// placement exactly — every enabled placement node of every block holds
// exactly that block's record and nothing else, in 2-D and 3-D.
func TestPropertyInformationMatchesOracle(t *testing.T) {
	r := rng.New(77)
	for _, dims := range [][]int{{16, 16}, {9, 9, 9}} {
		shape, err := grid.NewShape(dims...)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 12; trial++ {
			m := mesh.New(shape)
			md := New(m)
			faults := placeSeparated(m, 2+r.Intn(3), 5, r.Split())
			for _, id := range faults {
				md.ApplyFault(id)
			}
			md.Stabilize()
			if !md.Quiescent() {
				t.Fatalf("%v trial %d: not quiescent", dims, trial)
			}
			blocks := block.Extract(m)
			if len(blocks) != len(faults) {
				t.Fatalf("%v trial %d: blocks %d != faults %d (separation broken?)",
					dims, trial, len(blocks), len(faults))
			}
			// Forward direction: oracle placement fully informed.
			for _, b := range blocks {
				for _, id := range boundary.Placement(shape, b.Box) {
					if m.Status(id) != mesh.Enabled {
						continue
					}
					if !md.Store.Has(id, b.Box) {
						t.Fatalf("%v trial %d: %v lacks record for %v",
							dims, trial, shape.CoordOf(id), b.Box)
					}
				}
			}
			// Reverse direction: every stored record must be justified —
			// on its own block's placement, or (merged information, Fig.
			// 3(d)) on some other block's placement. Nothing may float in
			// open space.
			for id := 0; id < m.NumNodes(); id++ {
				c := shape.CoordOf(grid.NodeID(id))
				for _, rec := range md.Store.At(grid.NodeID(id)) {
					if boundary.OnPlacement(rec.Box, c) {
						continue
					}
					justified := false
					for _, b := range blocks {
						if !b.Box.Equal(rec.Box) && boundary.OnPlacement(b.Box, c) {
							justified = true
							break
						}
					}
					if !justified {
						t.Fatalf("%v trial %d: stray record %v at %v",
							dims, trial, rec.Box, c)
					}
				}
			}
		}
	}
}

// TestPropertyFullRecoveryEmptiesStore: recovering every fault always
// returns the mesh and the store to pristine state.
func TestPropertyFullRecoveryEmptiesStore(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 15; trial++ {
		m, _ := mesh.NewUniform(2, 14)
		md := New(m)
		faults := placeSeparated(m, 1+r.Intn(3), 5, r.Split())
		for _, id := range faults {
			md.ApplyFault(id)
		}
		md.Stabilize()
		for _, id := range faults {
			md.ApplyRecovery(id)
			md.Stabilize()
		}
		if !md.Quiescent() {
			t.Fatalf("trial %d: not quiescent after recovery", trial)
		}
		if m.NumFaulty() != 0 || m.NumDisabled() != 0 || m.NumClean() != 0 {
			t.Fatalf("trial %d: mesh not pristine", trial)
		}
		if md.Store.TotalRecords() != 0 {
			t.Fatalf("trial %d: %d stale records after full recovery",
				trial, md.Store.TotalRecords())
		}
	}
}

// TestPropertyGrowShrinkCycle: growing a block and shrinking it back
// converges to the same information as building the small block directly.
func TestPropertyGrowShrinkCycle(t *testing.T) {
	mkModel := func() (*Model, grid.NodeID, grid.NodeID) {
		m, _ := mesh.NewUniform(2, 14)
		md := New(m)
		a := m.Shape().Index(grid.Coord{6, 6})
		b := m.Shape().Index(grid.Coord{7, 7})
		return md, a, b
	}
	// Reference: only fault a.
	ref, a, _ := mkModel()
	ref.ApplyFault(a)
	ref.Stabilize()

	// Cycle: fault a, fault b (grow), recover b (shrink back).
	cyc, a2, b2 := mkModel()
	cyc.ApplyFault(a2)
	cyc.Stabilize()
	cyc.ApplyFault(b2)
	cyc.Stabilize()
	cyc.ApplyRecovery(b2)
	cyc.Stabilize()
	if !cyc.Quiescent() {
		t.Fatal("cycle model not quiescent")
	}

	if refN, cycN := ref.Store.TotalRecords(), cyc.Store.TotalRecords(); refN != cycN {
		t.Fatalf("record counts diverge: direct %d vs cycle %d", refN, cycN)
	}
	for id := 0; id < ref.M.NumNodes(); id++ {
		refRecs := ref.Store.At(grid.NodeID(id))
		cycRecs := cyc.Store.At(grid.NodeID(id))
		if len(refRecs) != len(cycRecs) {
			t.Fatalf("node %v: %d vs %d records",
				ref.M.Shape().CoordOf(grid.NodeID(id)), len(refRecs), len(cycRecs))
		}
		for i := range refRecs {
			if !refRecs[i].Box.Equal(cycRecs[i].Box) {
				t.Fatalf("node %v: boxes diverge", ref.M.Shape().CoordOf(grid.NodeID(id)))
			}
		}
	}
}

// TestPropertyEventualIdentification4D: the full pipeline works in 4-D with
// two separated blocks.
func TestPropertyEventualIdentification4D(t *testing.T) {
	shape, _ := grid.NewShape(7, 7, 7, 7)
	m := mesh.New(shape)
	md := New(m)
	md.ApplyFault(shape.Index(grid.Coord{2, 2, 2, 2}))
	md.ApplyFault(shape.Index(grid.Coord{4, 4, 4, 4}))
	md.Stabilize()
	if !md.Quiescent() {
		t.Fatal("4-D model not quiescent")
	}
	for _, b := range block.Extract(m) {
		for _, id := range boundary.Placement(shape, b.Box) {
			if m.Status(id) == mesh.Enabled && !md.Store.Has(id, b.Box) {
				t.Fatalf("4-D placement node %v lacks record for %v",
					shape.CoordOf(id), b.Box)
			}
		}
	}
}
