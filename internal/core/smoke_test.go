package core

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

// TestSmokeFigure1Pipeline drives the full information-construction pipeline
// on the paper's Figure 1 scenario: faults (3,5,4), (4,5,4), (5,5,3),
// (3,6,3) in a 3-D mesh must yield the faulty block [3:5, 5:6, 3:4], which
// must then be identified distributively and deposited over its frame and
// boundary walls.
func TestSmokeFigure1Pipeline(t *testing.T) {
	m, err := mesh.NewUniform(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	md := New(m)
	for _, c := range []grid.Coord{{3, 5, 4}, {4, 5, 4}, {5, 5, 3}, {3, 6, 3}} {
		md.ApplyFault(m.Shape().Index(c))
	}
	rounds := md.Stabilize()
	t.Logf("stabilized in %d rounds (label=%d frame=%d ident=%d boundary=%d)",
		rounds, md.LastLabelRound, md.LastFrameRound, md.LastIdentRound, md.LastBoundaryRound)
	if !md.Quiescent() {
		t.Fatalf("model did not quiesce in %d rounds", rounds)
	}

	blocks := block.Extract(m)
	if len(blocks) != 1 {
		t.Fatalf("want 1 block, got %d: %v", len(blocks), blocks)
	}
	want := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})
	if !blocks[0].Box.Equal(want) {
		t.Fatalf("block = %v, want %v", blocks[0].Box, want)
	}
	if !blocks[0].Solid {
		t.Fatalf("block %v is not solid (%d nodes)", blocks[0].Box, blocks[0].Nodes)
	}

	// The identification must have succeeded and deposited records over the
	// whole placement (frame shell + boundary walls).
	if md.Ident.Completed == 0 {
		t.Fatalf("no identification completed (started=%d failed=%d)", md.Ident.Started, md.Ident.Failed)
	}
	placement := boundary.Placement(m.Shape(), want)
	missing := 0
	for _, id := range placement {
		if m.Status(id) != mesh.Enabled {
			continue
		}
		if !md.Store.Has(id, want) {
			missing++
			if missing <= 5 {
				t.Errorf("placement node %v lacks the block record", m.Shape().CoordOf(id))
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d placement nodes lack the record (placement size %d)", missing, len(placement))
	}

	// Figure 2's example frame classification: (6,4,5) is a 3-level corner
	// with edge neighbors (5,4,5), (6,5,5), (6,4,4).
	corner := grid.Coord{6, 4, 5}
	if l, ok := frame.Level(want, corner); !ok || l != 3 {
		t.Fatalf("Level(%v) = %d,%v, want 3-level corner", corner, l, ok)
	}
	ann := md.Detector.Announcement(m.Shape().Index(corner))
	if int(ann.Level) != 3 {
		t.Fatalf("detector announcement at %v = level %d, want 3", corner, ann.Level)
	}
	for _, edge := range []grid.Coord{{5, 4, 5}, {6, 5, 5}, {6, 4, 4}} {
		if l, ok := frame.Level(want, edge); !ok || l != 2 {
			t.Fatalf("Level(%v) = %d,%v, want 2 (3-level edge node)", edge, l, ok)
		}
	}
}
