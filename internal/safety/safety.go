// Package safety implements Theorem 2 of the paper (from Wu [14]): the
// safe/unsafe classification of a source node with respect to a
// destination, plus an exhaustive minimal-path verifier used to validate
// the theorem experimentally.
//
// With the source translated to the origin and destination (u_1, ..., u_n),
// the source is safe iff no faulty block intersects the section [0:u_i]
// along each axis — the n axis-aligned segments through the source toward
// the destination's projections. A safe source is guaranteed a minimal path
// as long as no new fault occurs during the routing.
package safety

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

// BlockIntersectsAxisSection reports whether block b intersects the section
// along the given axis between source s and destination d: the segment of
// nodes {s + t*sign(d_axis - s_axis)*e_axis}. A block intersects it iff its
// span covers s's coordinates on every other axis and overlaps the segment
// range on this axis.
func BlockIntersectsAxisSection(b grid.Box, s, d grid.Coord, axis int) bool {
	for l := range s {
		if l == axis {
			continue
		}
		if s[l] < b.Lo[l] || s[l] > b.Hi[l] {
			return false
		}
	}
	lo, hi := s[axis], d[axis]
	if lo > hi {
		lo, hi = hi, lo
	}
	return b.Hi[axis] >= lo && b.Lo[axis] <= hi
}

// SourceSafe implements Theorem 2: s is safe w.r.t. d iff no block
// intersects any of the n axis sections from s toward d's projections.
func SourceSafe(blocks []grid.Box, s, d grid.Coord) bool {
	for axis := range s {
		for _, b := range blocks {
			if BlockIntersectsAxisSection(b, s, d, axis) {
				return false
			}
		}
	}
	return true
}

// MinimalPathExists reports whether a minimal (monotone, Manhattan-length)
// path from s to d exists through enabled nodes only. It is the exhaustive
// ground truth Theorem 2's sufficiency is tested against: BFS restricted to
// the preferred directions.
func MinimalPathExists(m *mesh.Mesh, s, d grid.NodeID) bool {
	if m.Status(s) != mesh.Enabled || m.Status(d) != mesh.Enabled {
		return false
	}
	if s == d {
		return true
	}
	shape := m.Shape()
	visited := map[grid.NodeID]struct{}{s: {}}
	queue := []grid.NodeID{s}
	var dirs []grid.Dir
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dirs = shape.PreferredDirs(cur, d, dirs[:0])
		for _, dir := range dirs {
			nb := shape.Neighbor(cur, dir)
			if nb == grid.InvalidNode || m.Status(nb) != mesh.Enabled {
				continue
			}
			if nb == d {
				return true
			}
			if _, dup := visited[nb]; dup {
				continue
			}
			visited[nb] = struct{}{}
			queue = append(queue, nb)
		}
	}
	return false
}

// PathExists reports whether any path (not necessarily minimal) from s to d
// exists through enabled nodes, and returns its length (BFS hops). Used by
// Theorem 5 (unsafe sources route along a path of length L).
func PathExists(m *mesh.Mesh, s, d grid.NodeID) (length int, ok bool) {
	if m.Status(s) != mesh.Enabled || m.Status(d) != mesh.Enabled {
		return 0, false
	}
	if s == d {
		return 0, true
	}
	dist := map[grid.NodeID]int{s: 0}
	queue := []grid.NodeID{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		found := false
		m.EachNeighbor(cur, func(nb grid.NodeID, _ grid.Dir) {
			if found {
				return
			}
			if _, dup := dist[nb]; dup || m.Status(nb) != mesh.Enabled {
				return
			}
			dist[nb] = dist[cur] + 1
			if nb == d {
				found = true
				return
			}
			queue = append(queue, nb)
		})
		if found {
			return dist[d], true
		}
	}
	return 0, false
}
