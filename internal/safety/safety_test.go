package safety

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

func TestBlockIntersectsAxisSection(t *testing.T) {
	b := grid.NewBox(grid.Coord{3, 4}, grid.Coord{5, 6})
	s := grid.Coord{1, 5}
	d := grid.Coord{8, 5}
	// X axis section from (1,5) to (8,5): the block spans x 3..5 and
	// contains y=5: intersects.
	if !BlockIntersectsAxisSection(b, s, d, 0) {
		t.Error("x-section should intersect")
	}
	// Y axis section from (1,5) toward y=5 (no offset): x=1 not inside
	// the block span: no intersection.
	if BlockIntersectsAxisSection(b, s, d, 1) {
		t.Error("y-section should not intersect")
	}
	// Source below the block, same column: y section crosses it.
	s2, d2 := grid.Coord{4, 1}, grid.Coord{4, 8}
	if !BlockIntersectsAxisSection(b, s2, d2, 1) {
		t.Error("column section should intersect")
	}
	// Segment stops short of the block.
	d3 := grid.Coord{4, 2}
	if BlockIntersectsAxisSection(b, s2, d3, 1) {
		t.Error("short segment should not intersect")
	}
	// Reversed direction (d < s) still works.
	if !BlockIntersectsAxisSection(b, d2, s2, 1) {
		t.Error("reversed segment should intersect")
	}
}

func TestSourceSafeNoBlocks(t *testing.T) {
	if !SourceSafe(nil, grid.Coord{0, 0}, grid.Coord{5, 5}) {
		t.Error("fault-free must be safe")
	}
}

func TestSourceSafeExamples(t *testing.T) {
	blocks := []grid.Box{grid.NewBox(grid.Coord{3, 4}, grid.Coord{5, 6})}
	// Source at (1,1), dest (8,8): x section at y=1 misses the block
	// (block y span 4..6), y section at x=1 misses (x span 3..5): safe.
	if !SourceSafe(blocks, grid.Coord{1, 1}, grid.Coord{8, 8}) {
		t.Error("corner-to-corner around block should be safe")
	}
	// Source right below the block column: unsafe.
	if SourceSafe(blocks, grid.Coord{4, 1}, grid.Coord{4, 8}) {
		t.Error("column through the block should be unsafe")
	}
	// Source level with the block row: unsafe.
	if SourceSafe(blocks, grid.Coord{1, 5}, grid.Coord{8, 5}) {
		t.Error("row through the block should be unsafe")
	}
}

// TestTheorem2SafeImpliesMinimalPath is the paper's Theorem 2, validated
// exhaustively on randomized configurations: a safe source always has a
// monotone minimal path to the destination.
func TestTheorem2SafeImpliesMinimalPath(t *testing.T) {
	r := rng.New(99)
	safeCount, unsafeCount := 0, 0
	for trial := 0; trial < 200; trial++ {
		m, _ := mesh.NewUniform(2, 12)
		var seeds []grid.NodeID
		nf := 1 + r.Intn(6)
		for f := 0; f < nf; f++ {
			c := grid.Coord{1 + r.Intn(10), 1 + r.Intn(10)}
			id := m.Shape().Index(c)
			if m.Status(id) == mesh.Faulty {
				continue
			}
			m.Fail(id)
			seeds = append(seeds, id)
		}
		block.Stabilize(m, seeds...)
		var boxes []grid.Box
		for _, b := range block.Extract(m) {
			boxes = append(boxes, b.Box)
		}
		// Random enabled src/dst.
		var src, dst grid.NodeID = grid.InvalidNode, grid.InvalidNode
		for tries := 0; tries < 100; tries++ {
			s := grid.NodeID(r.Intn(m.NumNodes()))
			d := grid.NodeID(r.Intn(m.NumNodes()))
			if s != d && m.Status(s) == mesh.Enabled && m.Status(d) == mesh.Enabled {
				src, dst = s, d
				break
			}
		}
		if src == grid.InvalidNode {
			continue
		}
		if SourceSafe(boxes, m.Shape().CoordOf(src), m.Shape().CoordOf(dst)) {
			safeCount++
			if !MinimalPathExists(m, src, dst) {
				t.Fatalf("trial %d: safe source %v to %v has no minimal path (blocks %v)",
					trial, m.Shape().CoordOf(src), m.Shape().CoordOf(dst), boxes)
			}
		} else {
			unsafeCount++
		}
	}
	if safeCount == 0 || unsafeCount == 0 {
		t.Fatalf("unbalanced sampling: %d safe, %d unsafe", safeCount, unsafeCount)
	}
	t.Logf("checked %d safe and %d unsafe configurations", safeCount, unsafeCount)
}

// TestTheorem2InND extends the check to 3-D and 4-D.
func TestTheorem2InND(t *testing.T) {
	r := rng.New(123)
	for _, dims := range [][]int{{8, 8, 8}, {6, 6, 6, 6}} {
		shape, _ := grid.NewShape(dims...)
		for trial := 0; trial < 40; trial++ {
			m := mesh.New(shape)
			var seeds []grid.NodeID
			for f := 0; f < 3; f++ {
				c := make(grid.Coord, len(dims))
				for i := range c {
					c[i] = 1 + r.Intn(dims[i]-2)
				}
				id := shape.Index(c)
				if m.Status(id) == mesh.Faulty {
					continue
				}
				m.Fail(id)
				seeds = append(seeds, id)
			}
			block.Stabilize(m, seeds...)
			var boxes []grid.Box
			for _, b := range block.Extract(m) {
				boxes = append(boxes, b.Box)
			}
			src := grid.NodeID(r.Intn(shape.NumNodes()))
			dst := grid.NodeID(r.Intn(shape.NumNodes()))
			if src == dst || m.Status(src) != mesh.Enabled || m.Status(dst) != mesh.Enabled {
				continue
			}
			if SourceSafe(boxes, shape.CoordOf(src), shape.CoordOf(dst)) &&
				!MinimalPathExists(m, src, dst) {
				t.Fatalf("%v: safe source without minimal path", dims)
			}
		}
	}
}

func TestMinimalPathExistsBasics(t *testing.T) {
	m, _ := mesh.NewUniform(2, 8)
	shape := m.Shape()
	s := shape.Index(grid.Coord{1, 1})
	d := shape.Index(grid.Coord{5, 5})
	if !MinimalPathExists(m, s, d) {
		t.Fatal("fault-free minimal path missing")
	}
	if !MinimalPathExists(m, s, s) {
		t.Fatal("self path missing")
	}
	m.Fail(d)
	if MinimalPathExists(m, s, d) {
		t.Fatal("path to faulty destination")
	}
}

func TestMinimalPathBlocked(t *testing.T) {
	m, _ := mesh.NewUniform(2, 8)
	shape := m.Shape()
	// Full diagonal wall across the monotone region from (1,1) to (4,4):
	// cut the anti-diagonal x+y=5 within the rectangle.
	for _, c := range []grid.Coord{{1, 4}, {2, 3}, {3, 2}, {4, 1}} {
		m.FailAt(c)
	}
	s := shape.Index(grid.Coord{1, 1})
	d := shape.Index(grid.Coord{4, 4})
	if MinimalPathExists(m, s, d) {
		t.Fatal("monotone path through a full anti-diagonal wall")
	}
	// A non-minimal path still exists.
	if _, ok := PathExists(m, s, d); !ok {
		t.Fatal("general path should exist around the wall")
	}
}

func TestPathExists(t *testing.T) {
	m, _ := mesh.NewUniform(2, 8)
	shape := m.Shape()
	s := shape.Index(grid.Coord{0, 0})
	d := shape.Index(grid.Coord{3, 0})
	if l, ok := PathExists(m, s, d); !ok || l != 3 {
		t.Fatalf("PathExists = %d,%v; want 3,true", l, ok)
	}
	if l, ok := PathExists(m, s, s); !ok || l != 0 {
		t.Fatalf("self PathExists = %d,%v", l, ok)
	}
	// Wall the destination in.
	for _, c := range []grid.Coord{{2, 0}, {2, 1}, {3, 1}, {4, 1}, {4, 0}} {
		m.FailAt(c)
	}
	if _, ok := PathExists(m, s, d); ok {
		t.Fatal("walled-in destination reachable")
	}
}
