package traffic

import (
	"reflect"
	"testing"

	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// recordOffers runs an open-loop generator under a recorder for steps
// steps, returning the trace and the offers the run actually saw.
func recordOffers(t *testing.T, shape *grid.Shape, steps int) (*Trace, [][2]grid.NodeID) {
	t.Helper()
	pat, err := ByName(shape, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(shape, pat, &Bernoulli{}, 0.3, rng.New(11))
	tr := &Trace{
		Dims: shape.Radices(), Rate: 0.3,
		Warmup: 2, Measure: steps - 2, Drain: 4,
	}
	rec := NewTraceRecorder(gen, tr)
	// The recorder reset the trace, so the fault schedule attaches after —
	// the same order loadPoint uses.
	tr.Faults = append(tr.Faults,
		fault.Event{Step: 3, Node: 5, Kind: fault.Fail},
		fault.Event{Step: 9, Node: 5, Kind: fault.Recover})
	var seen [][2]grid.NodeID
	for s := 0; s < steps; s++ {
		rec.Step(func(src, dst grid.NodeID) bool {
			seen = append(seen, [2]grid.NodeID{src, dst})
			return src%2 == 0 // mixed verdicts: refusals must be recorded too
		})
	}
	return tr, seen
}

// TestTraceRecordsEveryOffer pins what a trace captures: every offer the
// source made — accepted or refused — in step order.
func TestTraceRecordsEveryOffer(t *testing.T) {
	shape := grid.MustShape(4, 4)
	tr, seen := recordOffers(t, shape, 12)
	if tr.Steps() != 12 {
		t.Fatalf("trace recorded %d steps, want 12", tr.Steps())
	}
	if tr.Offers() != len(seen) {
		t.Fatalf("trace recorded %d offers, run saw %d", tr.Offers(), len(seen))
	}
	var replayed [][2]grid.NodeID
	p := NewTracePlayer(tr)
	for s := 0; s < 12; s++ {
		p.Step(func(src, dst grid.NodeID) bool {
			replayed = append(replayed, [2]grid.NodeID{src, dst})
			return true
		})
	}
	if !reflect.DeepEqual(replayed, seen) {
		t.Fatalf("replay diverged from recording:\n got %v\nwant %v", replayed, seen)
	}
}

// TestTraceMarshalRoundTrip pins the binary format: marshal → unmarshal
// reproduces the trace exactly, including metadata, fault schedule and the
// full offer stream.
func TestTraceMarshalRoundTrip(t *testing.T) {
	shape := grid.MustShape(4, 4)
	tr, _ := recordOffers(t, shape, 12)
	tr.Window = 0
	tr.ClosedLoop = false

	got, err := UnmarshalTrace(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, tr)
	}
	if err := got.Validate(shape); err != nil {
		t.Fatalf("round-tripped trace failed validation: %v", err)
	}

	// Closed-loop metadata survives too.
	tr.Window = 8
	tr.ClosedLoop = true
	tr.Rate = 0
	got, err = UnmarshalTrace(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.ClosedLoop || got.Window != 8 || got.Rate != 0 {
		t.Fatalf("closed-loop metadata lost: %+v", got)
	}

	// The v2 escape-mechanism metadata (flight timeout, gridlock window,
	// bubble admission) rides the same round trip.
	tr.FlightTimeout = 16
	tr.GridlockWindow = 8
	tr.Bubble = true
	got, err = UnmarshalTrace(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FlightTimeout != 16 || got.GridlockWindow != 8 || !got.Bubble {
		t.Fatalf("escape-mechanism metadata lost: %+v", got)
	}
}

// TestTracePlayerPastEnd pins the drain behavior: steps beyond the
// recording offer nothing (and do not panic).
func TestTracePlayerPastEnd(t *testing.T) {
	shape := grid.MustShape(4, 4)
	tr, _ := recordOffers(t, shape, 5)
	p := NewTracePlayer(tr)
	for s := 0; s < 5; s++ {
		p.Step(func(src, dst grid.NodeID) bool { return true })
	}
	p.Step(func(src, dst grid.NodeID) bool {
		t.Fatal("offer past the end of the recording")
		return false
	})
}

// TestUnmarshalTraceRejectsCorrupt pins the format's defenses: bad magic,
// unknown version, truncation and inconsistent counts all error instead of
// yielding a half-parsed trace.
func TestUnmarshalTraceRejectsCorrupt(t *testing.T) {
	shape := grid.MustShape(4, 4)
	tr, _ := recordOffers(t, shape, 8)
	good := tr.Marshal()

	if _, err := UnmarshalTrace([]byte("not a trace")); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[4] = 99 // version byte (uvarint, small values are one byte)
	if _, err := UnmarshalTrace(bad); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := UnmarshalTrace(good[:len(good)/2]); err == nil {
		t.Error("truncated trace accepted")
	}
	if _, err := UnmarshalTrace(good[:len(good)-1]); err == nil {
		t.Error("trace missing its final byte accepted")
	}
}

// TestUnmarshalTraceRejectsOversizedCounts pins the allocation guard: a
// tiny crafted file whose length fields claim billions of elements must
// error instead of attempting multi-gigabyte allocations, and values past
// int32 must be rejected instead of silently truncated into a different
// workload.
func TestUnmarshalTraceRejectsOversizedCounts(t *testing.T) {
	craft := func(mutate func(tr *Trace) []byte) []byte {
		tr := &Trace{Dims: []int{4, 4}, Measure: 1, Drain: 1}
		tr.beginStep()
		tr.appendOffer(1, 2)
		return mutate(tr)
	}
	// ns=1 but counts[0] claims 2^31-1 offers: np matches the sum, yet the
	// remaining bytes cannot possibly hold them.
	huge := craft(func(tr *Trace) []byte {
		tr.counts[0] = 1<<31 - 1
		buf := tr.Marshal()
		return buf[:len(buf)-4] // drop the one real pair; np stays huge
	})
	if _, err := UnmarshalTrace(huge); err == nil {
		t.Error("trace claiming 2^31-1 offers in a few bytes accepted")
	}
	// A fault count far past the buffer must be caught before allocation.
	manyFaults := craft(func(tr *Trace) []byte {
		for i := 0; i < 1000; i++ {
			tr.Faults = append(tr.Faults, fault.Event{Step: i, Node: 1})
		}
		buf := tr.Marshal()
		return buf[:40]
	})
	if _, err := UnmarshalTrace(manyFaults); err == nil {
		t.Error("truncated trace with a large fault table accepted")
	}
	// Phases that disagree with the recorded step table must be rejected:
	// a bit-flipped Measure would otherwise misalign the measurement
	// window (or spin the replay engine for a crafted number of steps).
	badPhases := craft(func(tr *Trace) []byte {
		tr.Measure = 1 << 20
		return tr.Marshal()
	})
	if _, err := UnmarshalTrace(badPhases); err == nil {
		t.Error("phases disagreeing with the step table accepted")
	}
	hugeDrain := craft(func(tr *Trace) []byte {
		tr.Drain = 1 << 30
		return tr.Marshal()
	})
	if _, err := UnmarshalTrace(hugeDrain); err == nil {
		t.Error("drain past the format cap accepted")
	}

	// A node id past int32 must error, not truncate.
	tr := &Trace{Dims: []int{4, 4}, Measure: 1}
	tr.beginStep()
	tr.appendOffer(1, 2)
	buf := tr.Marshal()
	// The final uvarint is dst=2 (one byte); rewrite it as 2^35.
	buf = append(buf[:len(buf)-1], 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	if _, err := UnmarshalTrace(buf); err == nil {
		t.Error("endpoint past int32 accepted (silent truncation)")
	}
}

// TestTraceValidate pins the replay-time checks: shape mismatches and
// out-of-mesh endpoints are rejected before a replay can misindex.
func TestTraceValidate(t *testing.T) {
	shape := grid.MustShape(4, 4)
	tr, _ := recordOffers(t, shape, 6)
	if err := tr.Validate(grid.MustShape(5, 5)); err == nil {
		t.Error("shape mismatch accepted")
	}
	tr2, _ := recordOffers(t, shape, 6)
	if tr2.Offers() == 0 {
		t.Fatal("recording offered nothing; test lost its teeth")
	}
	tr2.dsts[0] = 99 // outside the 16-node mesh
	if err := tr2.Validate(shape); err == nil {
		t.Error("out-of-mesh endpoint accepted")
	}
	tr3, _ := recordOffers(t, shape, 6)
	tr3.Faults[0].Node = -2
	if err := tr3.Validate(shape); err == nil {
		t.Error("out-of-mesh fault node accepted")
	}
}
