// Package traffic is the contention-aware load-generation and measurement
// subsystem: synthetic injection patterns (uniform-random, transpose,
// bit-complement, bit-reversal, hotspot, nearest-neighbor), open-loop
// arrival processes (Bernoulli, Poisson, bursty on/off), the three
// workload modes behind the Injector interface — the open-loop Generator,
// the closed-loop bounded-window ClosedLoop source, and the TracePlayer
// replaying a recorded workload Trace — and the warmup/measure/drain
// phase accounting that turns per-flight latencies into
// latency-throughput points.
//
// Everything draws from explicit rng.Source streams, so a load run is
// bit-reproducible: the same seed produces the same injection sequence on
// every machine and at every worker count (and a trace replay consumes no
// randomness at all). Patterns generalize the classic k-ary n-cube
// workloads to mixed-radix meshes: coordinatewise complement and digit
// reversal replace the power-of-two bit tricks, and transpose rotates
// (and rescales) the address across dimensions, so every generated
// endpoint is in shape for any radix vector.
//
// Reset contracts: Process.Reset(numNodes) sizes and rewinds per-node
// arrival state between runs; Collector.Reset(phases) rewinds the
// measurement accounting keeping its sample capacity. Sources draw in
// node order within a step and keep per-node state in flat arrays, so
// steady-state injection allocates nothing.
package traffic

import (
	"fmt"
	"math/bits"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// Pattern maps an injecting source node to a destination. Implementations
// must return an in-shape destination different from src; they may consume
// rng draws (uniform, hotspot, neighbor) or be deterministic functions of
// the source address (transpose, complement, reversal) that fall back to a
// uniform redraw when the mapping would be a fixed point.
type Pattern interface {
	// Name identifies the pattern in tables and CLI flags.
	Name() string
	// Dest returns the destination for a message injected at src.
	Dest(src grid.NodeID, r *rng.Source) grid.NodeID
}

// PatternNames lists the patterns ByName accepts, in display order.
func PatternNames() []string {
	return []string{"uniform", "transpose", "complement", "bitrev", "hotspot", "neighbor"}
}

// ByName builds a pattern over the given shape. Hotspot uses the mesh
// center as the hot node with DefaultHotspotFrac of the traffic.
func ByName(shape *grid.Shape, name string) (Pattern, error) {
	if shape.NumNodes() < 2 {
		return nil, fmt.Errorf("traffic: shape %v too small for traffic patterns", shape)
	}
	switch name {
	case "uniform":
		return NewUniform(shape), nil
	case "transpose":
		return NewTranspose(shape), nil
	case "complement":
		return NewComplement(shape), nil
	case "bitrev":
		return NewBitReversal(shape), nil
	case "hotspot":
		return NewHotspot(shape, DefaultHotspotFrac), nil
	case "neighbor":
		return NewNeighbor(shape), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// uniformDest draws a uniform destination different from src.
func uniformDest(shape *grid.Shape, src grid.NodeID, r *rng.Source) grid.NodeID {
	n := shape.NumNodes()
	for {
		d := grid.NodeID(r.Intn(n))
		if d != src {
			return d
		}
	}
}

// Uniform sends each message to an independently uniform destination.
type Uniform struct{ shape *grid.Shape }

// NewUniform builds the uniform-random pattern.
func NewUniform(shape *grid.Shape) *Uniform { return &Uniform{shape: shape} }

// Name implements Pattern.
func (*Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (p *Uniform) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	return uniformDest(p.shape, src, r)
}

// mapped is the shared core of the deterministic address-permutation
// patterns: it decodes src into a scratch coordinate, applies fn, and falls
// back to a uniform redraw when the permutation fixes src.
type mapped struct {
	shape    *grid.Shape
	src, dst grid.Coord
}

func newMapped(shape *grid.Shape) mapped {
	return mapped{
		shape: shape,
		src:   make(grid.Coord, shape.Dims()),
		dst:   make(grid.Coord, shape.Dims()),
	}
}

func (m *mapped) dest(src grid.NodeID, r *rng.Source, fn func(sc, dc grid.Coord)) grid.NodeID {
	m.shape.Coord(src, m.src)
	fn(m.src, m.dst)
	d := m.shape.Index(m.dst)
	if d == src {
		return uniformDest(m.shape, src, r)
	}
	return d
}

// Transpose rotates the address across dimensions — the mixed-radix
// generalization of the 2-D (x,y) -> (y,x) transpose workload — rescaling
// each component to the radix of its new axis so the result stays in shape.
type Transpose struct{ mapped }

// NewTranspose builds the transpose pattern.
func NewTranspose(shape *grid.Shape) *Transpose { return &Transpose{newMapped(shape)} }

// Name implements Pattern.
func (*Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (p *Transpose) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	shape := p.shape
	return p.dest(src, r, func(sc, dc grid.Coord) {
		n := shape.Dims()
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			// Rescale axis j's component to axis i's radix; since
			// sc[j] <= k_j-1 the floor product stays below k_i.
			dc[i] = sc[j] * shape.Radix(i) / shape.Radix(j)
		}
	})
}

// Complement sends to the coordinatewise complement (k_i-1-u_i), the
// any-radix generalization of bit-complement: all traffic crosses the mesh
// center, the canonical bisection-stress workload.
type Complement struct{ mapped }

// NewComplement builds the complement pattern.
func NewComplement(shape *grid.Shape) *Complement { return &Complement{newMapped(shape)} }

// Name implements Pattern.
func (*Complement) Name() string { return "complement" }

// Dest implements Pattern.
func (p *Complement) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	shape := p.shape
	return p.dest(src, r, func(sc, dc grid.Coord) {
		for i := range dc {
			dc[i] = shape.Radix(i) - 1 - sc[i]
		}
	})
}

// BitReversal reverses each component's bits within the axis' bit width;
// components whose reversal overflows the radix (non-power-of-two axes)
// fall back to the complement on that axis, keeping the address in shape.
type BitReversal struct{ mapped }

// NewBitReversal builds the bit-reversal pattern.
func NewBitReversal(shape *grid.Shape) *BitReversal { return &BitReversal{newMapped(shape)} }

// Name implements Pattern.
func (*BitReversal) Name() string { return "bitrev" }

// Dest implements Pattern.
func (p *BitReversal) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	shape := p.shape
	return p.dest(src, r, func(sc, dc grid.Coord) {
		for i := range dc {
			k := shape.Radix(i)
			width := bits.Len(uint(k - 1))
			if width == 0 {
				dc[i] = 0
				continue
			}
			rev := int(bits.Reverse32(uint32(sc[i])) >> (32 - width))
			if rev >= k {
				rev = k - 1 - sc[i]
			}
			dc[i] = rev
		}
	})
}

// DefaultHotspotFrac is the fraction of traffic aimed at the hot node when
// ByName builds a hotspot pattern.
const DefaultHotspotFrac = 0.2

// Hotspot aims a fixed fraction of the traffic at one hot node (uniform
// otherwise), the classic contended-server workload.
type Hotspot struct {
	shape *grid.Shape
	// Hot is the hot node; Frac the probability a message targets it.
	Hot  grid.NodeID
	Frac float64
}

// NewHotspot builds a hotspot pattern aimed at the mesh center.
func NewHotspot(shape *grid.Shape, frac float64) *Hotspot {
	c := make(grid.Coord, shape.Dims())
	for i := range c {
		c[i] = shape.Radix(i) / 2
	}
	return &Hotspot{shape: shape, Hot: shape.Index(c), Frac: frac}
}

// Name implements Pattern.
func (*Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (p *Hotspot) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	if r.Bool(p.Frac) && p.Hot != src {
		return p.Hot
	}
	return uniformDest(p.shape, src, r)
}

// Neighbor sends each message one hop away (uniform over the in-mesh
// neighbors), the locality extreme of the synthetic workloads.
type Neighbor struct{ shape *grid.Shape }

// NewNeighbor builds the nearest-neighbor pattern.
func NewNeighbor(shape *grid.Shape) *Neighbor { return &Neighbor{shape: shape} }

// Name implements Pattern.
func (*Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (p *Neighbor) Dest(src grid.NodeID, r *rng.Source) grid.NodeID {
	valid := 0
	for d := 0; d < p.shape.NumDirs(); d++ {
		if p.shape.Neighbor(src, grid.Dir(d)) != grid.InvalidNode {
			valid++
		}
	}
	pick := r.Intn(valid)
	for d := 0; d < p.shape.NumDirs(); d++ {
		if nb := p.shape.Neighbor(src, grid.Dir(d)); nb != grid.InvalidNode {
			if pick == 0 {
				return nb
			}
			pick--
		}
	}
	panic("traffic: neighbor pattern found no in-mesh neighbor")
}

// DrawLongHaulPair draws a (src, dst) endpoint pair for the experiment
// sweeps: distinct interior nodes (off the outermost surface) at distance
// at least half the diameter. This is the historical drawPair of the
// experiment harness, moved here verbatim so every sweep and the traffic
// subsystem share one endpoint generator; the rng consumption sequence is
// part of the sweeps' byte-identical determinism contract and must not
// change. It requires a mesh whose interior contains such a pair (every
// experiment mesh does); on degenerate shapes it would not terminate.
func DrawLongHaulPair(shape *grid.Shape, r *rng.Source) (src, dst grid.NodeID) {
	minD := shape.Diameter() / 2
	for {
		s := grid.NodeID(r.Intn(shape.NumNodes()))
		d := grid.NodeID(r.Intn(shape.NumNodes()))
		if s == d || shape.OnBorder(s) || shape.OnBorder(d) {
			continue
		}
		if shape.Distance(s, d) >= minD {
			return s, d
		}
	}
}
