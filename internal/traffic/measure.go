package traffic

import (
	"ndmesh/internal/stats"
)

// Phases splits a load run into the standard three windows of synthetic
// NoC evaluation: Warmup steps fill the network to steady state (flights
// injected here are routed but not measured), Measure steps are the
// observation window (flights injected here produce the statistics), and
// Drain steps stop injection and let measured flights finish so the
// latency sample is not censored toward short flights.
type Phases struct {
	Warmup, Measure, Drain int
}

// Total returns the run length in steps.
func (p Phases) Total() int { return p.Warmup + p.Measure + p.Drain }

// InjectUntil returns the first step with injection disabled (drain start).
func (p Phases) InjectUntil() int { return p.Warmup + p.Measure }

// Measured reports whether a flight injected at step belongs to the
// measurement window.
func (p Phases) Measured(step int) bool {
	return step >= p.Warmup && step < p.Warmup+p.Measure
}

// Outcome is the terminal classification of one flight.
type Outcome uint8

const (
	// Delivered flights arrived at their destination.
	Delivered Outcome = iota
	// Unreachable flights exhausted the search (no enabled path found).
	Unreachable
	// Lost flights died on a path segment that failed under them.
	Lost
	// Unfinished flights were still in flight when the run's step budget
	// (including the drain) ran out — at saturation the backlog never
	// drains, and these count against accepted throughput.
	Unfinished
	// TimedOut flights were killed back to their source by the contention
	// engine's flight timeout after stalling past the threshold (the
	// deadlock-escape path). In a closed-loop workload the source's window
	// slot re-arms and the request is retried under backoff.
	TimedOut
)

// Collector accumulates one load run's per-flight observations into a
// LoadPoint. All counters partition by injection step: only flights
// injected inside the measurement window enter the statistics, exactly as
// the warmup/measure/drain methodology prescribes.
type Collector struct {
	ph Phases

	// All counters restrict to flights offered/injected inside the
	// measurement window; warmup and drain traffic shapes the network but
	// is not accounted.
	OfferedMeasured, InjectedMeasured  int
	DroppedMeasured                    int
	deliveredMeasured, unreachMeasured int
	lostMeasured, unfinishedMeasured   int
	timedOutMeasured, retriedMeasured  int

	latencies []int // of measured delivered flights
}

// Reset rewinds the collector for a run with the given phases, keeping the
// latency sample's capacity.
func (c *Collector) Reset(ph Phases) {
	lat := c.latencies[:0]
	*c = Collector{ph: ph, latencies: lat}
}

// Offer records one offered endpoint pair at the given step; accepted
// reports whether it was actually injected (false = dropped at the source:
// full input queue or bad node).
func (c *Collector) Offer(step int, accepted bool) {
	if !c.ph.Measured(step) {
		return
	}
	c.OfferedMeasured++
	if accepted {
		c.InjectedMeasured++
	} else {
		c.DroppedMeasured++
	}
}

// Finish records one flight's terminal state: the step it was injected,
// its latency in steps (ignored unless Delivered), and its outcome.
func (c *Collector) Finish(startStep, latency int, oc Outcome) {
	if !c.ph.Measured(startStep) {
		return
	}
	switch oc {
	case Delivered:
		c.deliveredMeasured++
		c.latencies = append(c.latencies, latency)
	case Unreachable:
		c.unreachMeasured++
	case Lost:
		c.lostMeasured++
	case Unfinished:
		c.unfinishedMeasured++
	case TimedOut:
		c.timedOutMeasured++
	}
}

// Retry records that a measured flight's timeout re-armed its source slot
// for a retry (closed-loop workloads only). Each timeout re-arms at most
// once, so a request that times out k times contributes k retries — the
// "retried counted once per timeout" side of the conservation invariant.
func (c *Collector) Retry(startStep int) {
	if !c.ph.Measured(startStep) {
		return
	}
	c.retriedMeasured++
}

// Result folds the run into a LoadPoint for a mesh of numNodes sources
// offered the given per-node rate.
func (c *Collector) Result(rate float64, numNodes int) LoadPoint {
	pt := LoadPoint{
		OfferedRate: rate,
		Offered:     c.OfferedMeasured,
		Injected:    c.InjectedMeasured,
		Dropped:     c.DroppedMeasured,
		Delivered:   c.deliveredMeasured,
		Unreachable: c.unreachMeasured,
		Lost:        c.lostMeasured,
		Unfinished:  c.unfinishedMeasured,
		TimedOut:    c.timedOutMeasured,
		Retried:     c.retriedMeasured,
		Latency:     Summarize(c.latencies),
	}
	if steps := c.ph.Measure * numNodes; steps > 0 {
		pt.AcceptedRate = float64(pt.Delivered) / float64(steps)
	}
	return pt
}

// LoadPoint is one point of a latency-throughput curve: the offered load
// and what the network actually did with the measurement-window traffic.
type LoadPoint struct {
	// OfferedRate is the nominal injection rate (messages/node/step);
	// AcceptedRate is Delivered over the measurement window's node-steps.
	// Below saturation the two track each other; past it AcceptedRate
	// plateaus while latency (and Unfinished) grows.
	OfferedRate, AcceptedRate float64
	// Offered = Injected + Dropped; the remaining counters classify the
	// injected flights' outcomes. All restrict to the measurement window.
	Offered, Injected, Dropped               int
	Delivered, Unreachable, Lost, Unfinished int
	// TimedOut counts injected flights the engine's flight timeout killed
	// back to their source; Retried counts the timeouts that re-armed a
	// closed-loop window slot (each timeout at most once). Conservation:
	// Injected == Delivered + Unreachable + Lost + TimedOut + Unfinished,
	// with retried requests re-counted under Offered/Injected when the
	// source re-offers them.
	TimedOut, Retried int
	// RetryDropped counts measured retries still pending when the run
	// ended — timed-out requests whose backoff outlived the injection
	// window, so they were never re-offered (open-loop retry only; the
	// closed loop's deferred slots surface as Unfinished window pressure).
	// Without it the gap between Retried and the re-offers would be silent.
	RetryDropped int
	// Failed/Recovered count the fault-process events the engine actually
	// applied during the run — whole-run totals (a fault process
	// deliberately spans warmup, measure and drain), not restricted to the
	// measurement window like the traffic counters above.
	Failed, Recovered int
	// Gridlocked reports that the engine's zero-progress detector was still
	// latched when the run ended: a terminal gridlock no escape mechanism
	// resolved (the run was cut short rather than spun to its budget).
	// GridlockStep is the 1-based step the detector first fired (0 = never);
	// RecoverySteps is the time from first detection to the first
	// subsequent progress (0 = never fired or never recovered).
	Gridlocked                  bool
	GridlockStep, RecoverySteps int
	// Latency summarizes the delivered measured flights' step counts.
	Latency LatencySummary
}

// LatencySummary condenses a latency sample (steps from injection to
// delivery, waits included) into the headline order statistics.
type LatencySummary struct {
	Mean          float64
	P50, P95, P99 int
	Max           int
	N             int
}

// Summarize computes the summary of a latency sample.
func Summarize(samples []int) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	var sum stats.Summary
	for _, v := range samples {
		sum.AddInt(v)
	}
	qs := stats.Percentiles(samples, 0.50, 0.95, 0.99)
	return LatencySummary{
		Mean: sum.Mean(),
		P50:  qs[0],
		P95:  qs[1],
		P99:  qs[2],
		Max:  int(sum.Max()),
		N:    len(samples),
	}
}
