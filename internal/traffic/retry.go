package traffic

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// RetrySource closes ROADMAP item 3's leftover: the open-loop generator
// ignores what the network does with its traffic, so a flight killed by
// the engine's flight timeout used to vanish — the run silently delivered
// less than it offered. RetrySource wraps an open-loop Injector and
// re-offers timed-out requests under the same jittered exponential
// backoff the closed loop uses (ClosedLoop.Timeout), with two deliberate
// differences: the retried request keeps its original destination (an
// open loop has no per-node request identity to redraw), and the backoff
// delays only the retried request — fresh open-loop arrivals keep
// flowing, because an open loop is not self-throttling.
//
// Retries are emitted through Step *before* the inner source's fresh
// arrivals (older traffic first), so a TraceRecorder wrapping the
// RetrySource records them as ordinary offers and a replay needs no
// retry machinery of its own — the recorded stream already carries them.
//
// Determinism: the jitter draws from the stream handed to NewRetrySource
// at Timeout time; the engine harvests in flight-injection order, so the
// draw sequence is fixed. Steady state allocates nothing: the pending
// queue compacts in place and the per-source streaks are a flat array.
type RetrySource struct {
	inner   Injector
	r       *rng.Source
	backoff int

	pending  []retryItem
	attempts []int // per-source consecutive-timeout streak
	step     int   // Step() calls so far — the backoff clock
	retried  int
}

type retryItem struct {
	src, dst grid.NodeID
	due      int
	// measured carries the caller's phase attribution of the killed
	// flight, so dropped retries can be accounted against the right
	// window without this package knowing about Phases.
	measured bool
}

// NewRetrySource wraps inner so timed-out requests reported through
// Timeout are re-offered. base is the backoff base delay in steps
// (attempt k waits base<<(k-1), capped at backoffMaxShift, plus a uniform
// jitter of the same magnitude; base <= 0 retries on the next step).
func NewRetrySource(inner Injector, numNodes, base int, r *rng.Source) *RetrySource {
	if base < 0 {
		base = 0
	}
	return &RetrySource{inner: inner, r: r, backoff: base, attempts: make([]int, numNodes)}
}

// Step implements Injector: due retries first, in kill order, then the
// inner source's fresh arrivals. A refused retry (full source queue or
// bad node) stays pending and is re-attempted next step — mirroring the
// closed loop, which defers rather than drops.
func (q *RetrySource) Step(emit func(src, dst grid.NodeID) bool) {
	kept := q.pending[:0]
	for _, it := range q.pending {
		if it.due > q.step || !emit(it.src, it.dst) {
			kept = append(kept, it)
		}
	}
	q.pending = kept
	q.inner.Step(emit)
	q.step++
}

// Timeout schedules a re-offer of the killed request (src, dst) after the
// source's backoff expires; measured is the caller's phase attribution,
// echoed by PendingMeasured. Every Timeout counts as one retry.
func (q *RetrySource) Timeout(src, dst grid.NodeID, measured bool) {
	q.attempts[src]++
	q.retried++
	delay := 0
	if q.backoff > 0 {
		shift := q.attempts[src] - 1
		if shift > backoffMaxShift {
			shift = backoffMaxShift
		}
		delay = q.backoff << shift
		delay += q.r.Intn(delay) // jitter: [0, delay)
	}
	q.pending = append(q.pending, retryItem{src: src, dst: dst, due: q.step + delay, measured: measured})
}

// Settle ends src's consecutive-timeout streak: one of its requests
// reached a terminal outcome other than a timeout, so the next timeout
// backs off from the base delay again (the closed loop resets the same
// way on Release).
func (q *RetrySource) Settle(src grid.NodeID) { q.attempts[src] = 0 }

// Retried returns how many timed-out requests have been scheduled for
// retry.
func (q *RetrySource) Retried() int { return q.retried }

// Pending returns the retries scheduled but not yet re-offered.
func (q *RetrySource) Pending() int { return len(q.pending) }

// PendingMeasured returns the pending retries whose killed flight was
// attributed to the measurement window — the requests that will be
// dropped if injection closes before their backoff expires.
func (q *RetrySource) PendingMeasured() int {
	n := 0
	for _, it := range q.pending {
		if it.measured {
			n++
		}
	}
	return n
}
