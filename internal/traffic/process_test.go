package traffic

import (
	"math"
	"testing"

	"ndmesh/internal/rng"
)

// empiricalRate runs a process over numNodes sources for steps steps and
// returns the realized arrivals per node-step.
func empiricalRate(p Process, numNodes, steps int, rate float64, r *rng.Source) float64 {
	p.Reset(numNodes)
	total := 0
	for s := 0; s < steps; s++ {
		for node := 0; node < numNodes; node++ {
			total += p.Arrivals(node, rate, r)
		}
	}
	return float64(total) / float64(numNodes*steps)
}

// TestProcessEmpiricalRate is the statistical contract of the arrival
// processes: over a long run the realized rate matches the configured rate
// within a tolerance set by the binomial standard error. The runs are
// deterministic (fixed seed), so the assertions cannot flake; the
// tolerances (5 standard errors of a Bernoulli sample of the same size)
// would only trip on a genuine generator or process regression.
func TestProcessEmpiricalRate(t *testing.T) {
	const (
		numNodes = 64
		steps    = 20000
	)
	samples := float64(numNodes * steps)
	for _, tc := range []struct {
		process string
		rates   []float64
	}{
		{"bernoulli", []float64{0.05, 0.3, 0.7, 0.95}},
		// Poisson arrivals batch, so rates beyond 1 must realize too.
		{"poisson", []float64{0.1, 0.5, 1.0, 2.5}},
		// The default bursty process (mean on 8, off 24) has duty 0.25;
		// rates must realize faithfully anywhere below that cap.
		{"bursty", []float64{0.02, 0.1, 0.2}},
	} {
		for _, rate := range tc.rates {
			p, err := ProcessByName(tc.process)
			if err != nil {
				t.Fatal(err)
			}
			got := empiricalRate(p, numNodes, steps, rate, rng.New(99))
			// Bernoulli-sample standard error; Poisson's per-step variance
			// equals the rate, bursty's exceeds Bernoulli's through the
			// on/off modulation, so give those the matching sigma.
			sigma := math.Sqrt(rate * (1 - rate) / samples)
			switch tc.process {
			case "poisson":
				sigma = math.Sqrt(rate / samples)
			case "bursty":
				// On/off bursts correlate consecutive steps: arrivals come
				// from ~numNodes*steps*duty ON-steps at rate/duty, and the
				// burst length (mean 8) correlates them further. Scale the
				// Bernoulli sigma accordingly.
				duty := 0.25
				onRate := rate / duty
				sigma = math.Sqrt(onRate*(1-onRate)/(samples*duty)) * math.Sqrt(8)
			}
			tol := 5 * sigma
			if math.Abs(got-rate) > tol {
				t.Errorf("%s rate %v: realized %v (|diff| %v > tol %v)",
					tc.process, rate, got, math.Abs(got-rate), tol)
			}
		}
	}
}

// TestProcessZeroRate pins the lower boundary: at rate 0 no process ever
// offers a message.
func TestProcessZeroRate(t *testing.T) {
	for _, name := range ProcessNames() {
		p, err := ProcessByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := empiricalRate(p, 16, 2000, 0, rng.New(3)); got != 0 {
			t.Errorf("%s offered %v messages/node-step at rate 0", name, got)
		}
	}
}

// TestProcessAtMaxRate pins the upper boundary: offered load at the
// process's own MaxRate realizes that rate (Bernoulli degenerates to one
// arrival every step; bursty to one arrival every ON step, i.e. the duty
// cycle).
func TestProcessAtMaxRate(t *testing.T) {
	// Bernoulli at MaxRate 1 is deterministic: exactly one per node-step.
	b := &Bernoulli{}
	if got := empiricalRate(b, 16, 2000, b.MaxRate(), rng.New(5)); got != 1 {
		t.Errorf("bernoulli at max rate realized %v, want exactly 1", got)
	}
	// Bursty at MaxRate (the duty cycle) injects every ON step; the
	// realized rate is the empirical ON fraction, close to the duty.
	bu := NewBursty(8, 24)
	got := empiricalRate(bu, 64, 20000, bu.MaxRate(), rng.New(5))
	if math.Abs(got-bu.MaxRate()) > 0.02 {
		t.Errorf("bursty at max rate %v realized %v", bu.MaxRate(), got)
	}
}

// TestProcessMaxRateValues pins the cap formulas themselves.
func TestProcessMaxRateValues(t *testing.T) {
	if got := (&Bernoulli{}).MaxRate(); got != 1 {
		t.Errorf("bernoulli MaxRate = %v, want 1", got)
	}
	if got := (&Poisson{}).MaxRate(); !math.IsInf(got, 1) {
		t.Errorf("poisson MaxRate = %v, want +Inf", got)
	}
	if got := NewBursty(8, 24).MaxRate(); got != 0.25 {
		t.Errorf("bursty(8,24) MaxRate = %v, want 0.25", got)
	}
	// Degenerate constructor arguments clamp to 1, never divide by zero.
	if got := NewBursty(0, 0).MaxRate(); got != 0.5 {
		t.Errorf("bursty(0,0) MaxRate = %v, want 0.5 (clamped 1/1)", got)
	}
}

// TestBurstyResetRewinds pins that Reset rewinds the per-node chains: two
// identically seeded runs through the same process object realize the
// identical arrival sequence.
func TestBurstyResetRewinds(t *testing.T) {
	b := NewBursty(8, 24)
	first := empiricalRate(b, 32, 500, 0.2, rng.New(11))
	second := empiricalRate(b, 32, 500, 0.2, rng.New(11))
	if first != second {
		t.Errorf("bursty replay diverged: %v then %v", first, second)
	}
}
