package traffic

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// Generator produces one step's worth of open-loop injections: for every
// node, the arrival process decides how many messages the node offers and
// the pattern picks each message's destination. All randomness flows
// through the single stream handed to New, drawn in node order, so a
// generator is a deterministic function of (shape, pattern, process, rate,
// stream) — the property the saturation sweep's serial/parallel equality
// rests on.
type Generator struct {
	shape *grid.Shape
	pat   Pattern
	proc  Process
	rate  float64
	r     *rng.Source
}

// NewGenerator builds a generator; it resets the process for the shape.
func NewGenerator(shape *grid.Shape, pat Pattern, proc Process, rate float64, r *rng.Source) *Generator {
	proc.Reset(shape.NumNodes())
	return &Generator{shape: shape, pat: pat, proc: proc, rate: rate, r: r}
}

// Step implements Injector: it emits this step's injections in node order.
// The emit callback owns admission (inject, drop, count); the generator
// only offers traffic, and — being open-loop — ignores the admission
// verdict: a refusal is a drop, never a retry.
//
//meshvet:noalloc
func (g *Generator) Step(emit func(src, dst grid.NodeID) bool) {
	n := g.shape.NumNodes()
	for node := 0; node < n; node++ {
		k := g.proc.Arrivals(node, g.rate, g.r)
		for j := 0; j < k; j++ {
			src := grid.NodeID(node)
			dst := g.pat.Dest(src, g.r)
			emit(src, dst)
		}
	}
}
