package traffic

import (
	"fmt"
	"math"

	"ndmesh/internal/rng"
)

// Process is an open-loop arrival process: how many messages one source
// node offers in one step at a given per-node rate (messages/node/step).
// Processes may keep per-node state (the bursty on/off chain does); Reset
// sizes that state for the mesh and rewinds it between runs.
type Process interface {
	// Name identifies the process in tables and CLI flags.
	Name() string
	// Reset prepares per-node state for a run over numNodes sources.
	Reset(numNodes int)
	// Arrivals returns the number of messages node offers this step.
	Arrivals(node int, rate float64, r *rng.Source) int
	// MaxRate is the largest nominal rate the process can offer
	// faithfully; beyond it the realized rate silently clips (a Bernoulli
	// source cannot exceed 1 msg/node/step, a bursty one duty*1). Load
	// runs reject rates above it so the reported offered rate is honest.
	MaxRate() float64
}

// ProcessNames lists the processes ProcessByName accepts.
func ProcessNames() []string { return []string{"bernoulli", "poisson", "bursty"} }

// ProcessByName builds an arrival process by CLI name.
func ProcessByName(name string) (Process, error) {
	switch name {
	case "", "bernoulli":
		return &Bernoulli{}, nil
	case "poisson":
		return &Poisson{}, nil
	case "bursty":
		return NewBursty(8, 24), nil
	default:
		return nil, fmt.Errorf("traffic: unknown arrival process %q", name)
	}
}

// Bernoulli offers at most one message per node per step, with probability
// rate — the standard injection process of NoC saturation studies.
type Bernoulli struct{}

// Name implements Process.
func (*Bernoulli) Name() string { return "bernoulli" }

// Reset implements Process.
func (*Bernoulli) Reset(int) {}

// MaxRate implements Process: at most one message per node-step.
func (*Bernoulli) MaxRate() float64 { return 1 }

// Arrivals implements Process.
func (*Bernoulli) Arrivals(_ int, rate float64, r *rng.Source) int {
	if r.Bool(rate) {
		return 1
	}
	return 0
}

// Poisson offers Poisson(rate) messages per node per step, allowing
// multi-arrival steps (rate may exceed 1).
type Poisson struct{}

// Name implements Process.
func (*Poisson) Name() string { return "poisson" }

// Reset implements Process.
func (*Poisson) Reset(int) {}

// MaxRate implements Process: Poisson arrivals batch, so any rate is
// offered faithfully.
func (*Poisson) MaxRate() float64 { return math.Inf(1) }

// Arrivals implements Process — Knuth's product-of-uniforms sampler, exact
// for the moderate rates load sweeps use.
func (*Poisson) Arrivals(_ int, rate float64, r *rng.Source) int {
	if rate <= 0 {
		return 0
	}
	l := math.Exp(-rate)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<16 { // defensive cap against pathological rates
			return k
		}
	}
}

// Bursty is a per-node on/off Markov-modulated Bernoulli process:
// geometrically distributed ON bursts (mean MeanOn steps) separated by OFF
// gaps (mean MeanOff). During ON the node injects with probability
// rate/duty (duty = MeanOn/(MeanOn+MeanOff)), so the long-run offered rate
// matches the nominal rate until the ON-probability clips at 1.
type Bursty struct {
	// MeanOn and MeanOff are the mean burst and gap lengths in steps.
	MeanOn, MeanOff int //meshvet:keep rate parameters, not trial state

	started []bool
	on      []bool
	left    []int
}

// NewBursty builds a bursty process with the given mean burst/gap lengths.
func NewBursty(meanOn, meanOff int) *Bursty {
	if meanOn < 1 {
		meanOn = 1
	}
	if meanOff < 1 {
		meanOff = 1
	}
	return &Bursty{MeanOn: meanOn, MeanOff: meanOff}
}

// Name implements Process.
func (*Bursty) Name() string { return "bursty" }

// MaxRate implements Process: during a burst the node injects at most one
// message per step, so the long-run offered rate caps at the duty cycle.
func (b *Bursty) MaxRate() float64 { return b.duty() }

// Reset implements Process.
func (b *Bursty) Reset(numNodes int) {
	if len(b.on) != numNodes {
		b.started = make([]bool, numNodes)
		b.on = make([]bool, numNodes)
		b.left = make([]int, numNodes)
		return
	}
	for i := range b.on {
		b.started[i], b.on[i], b.left[i] = false, false, 0
	}
}

// duty returns the ON fraction of the cycle.
func (b *Bursty) duty() float64 {
	return float64(b.MeanOn) / float64(b.MeanOn+b.MeanOff)
}

// Arrivals implements Process.
func (b *Bursty) Arrivals(node int, rate float64, r *rng.Source) int {
	if !b.started[node] {
		// Stagger the phases: each node starts ON with the stationary
		// probability instead of every burst beginning at step 0.
		b.started[node] = true
		b.on[node] = r.Bool(b.duty())
		b.left[node] = b.drawLen(b.on[node], r)
	}
	for b.left[node] == 0 {
		b.on[node] = !b.on[node]
		b.left[node] = b.drawLen(b.on[node], r)
	}
	b.left[node]--
	if !b.on[node] {
		return 0
	}
	onRate := rate / b.duty()
	if onRate > 1 {
		onRate = 1
	}
	if r.Bool(onRate) {
		return 1
	}
	return 0
}

func (b *Bursty) drawLen(on bool, r *rng.Source) int {
	mean := b.MeanOff
	if on {
		mean = b.MeanOn
	}
	return r.Geometric(1.0 / float64(mean))
}
