package traffic

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// TestGeneratorStepAllocFree pins the open-loop emit path: once the
// arrival process's per-node state is sized, a generator step performs no
// allocation — the runtime half of the //meshvet:noalloc directive on
// Generator.Step (see internal/lint's directive inventory).
func TestGeneratorStepAllocFree(t *testing.T) {
	shape, err := grid.NewShape(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		proc Process
	}{
		{"bernoulli", &Bernoulli{}},
		{"bursty", NewBursty(8, 24)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGenerator(shape, NewUniform(shape), tc.proc, 0.3, rng.New(7))
			sink := 0
			emit := func(src, dst grid.NodeID) bool { sink += int(src) + int(dst); return true }
			for i := 0; i < 50; i++ {
				g.Step(emit)
			}
			allocs := testing.AllocsPerRun(200, func() { g.Step(emit) })
			if allocs != 0 {
				t.Fatalf("generator step allocates %.1f allocs/op, want 0", allocs)
			}
			if sink < 0 {
				t.Fatal("unreachable; keeps sink live")
			}
		})
	}
}
