package traffic

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// TestClosedLoopWindowBound pins the defining invariant: a node never holds
// more than window outstanding requests, tops up immediately when slots
// free, and stays quiet while the window is full.
func TestClosedLoopWindowBound(t *testing.T) {
	shape := grid.MustShape(4, 4)
	pat, err := ByName(shape, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	const window = 3
	cl := NewClosedLoop(shape, pat, window, rng.New(7))

	accept := func(src, dst grid.NodeID) bool {
		if src == dst {
			t.Fatalf("pattern emitted src == dst (%d)", src)
		}
		return true
	}
	cl.Step(accept)
	n := shape.NumNodes()
	if got, want := cl.InFlight(), n*window; got != want {
		t.Fatalf("first step in-flight %d, want full windows %d", got, want)
	}
	for node := 0; node < n; node++ {
		if cl.Outstanding(node) != window {
			t.Fatalf("node %d outstanding %d, want %d", node, cl.Outstanding(node), window)
		}
	}

	// Full windows: further steps must offer nothing.
	cl.Step(func(src, dst grid.NodeID) bool {
		t.Fatalf("offer from node %d with a full window", src)
		return false
	})

	// Releasing k slots lets exactly k new requests in, at those sources.
	cl.Release(5)
	cl.Release(5)
	offers := 0
	cl.Step(func(src, dst grid.NodeID) bool {
		if src != 5 {
			t.Fatalf("offer from node %d, want only node 5", src)
		}
		offers++
		return true
	})
	if offers != 2 {
		t.Fatalf("%d offers after 2 releases, want 2", offers)
	}
	if cl.InFlight() != n*window {
		t.Fatalf("in-flight %d after top-up, want %d", cl.InFlight(), n*window)
	}
}

// TestClosedLoopRefusalDefers pins the no-drop semantics: a refused offer
// keeps the slot free and the node retries (with a fresh draw) on the next
// step, so refusals defer traffic rather than losing it.
func TestClosedLoopRefusalDefers(t *testing.T) {
	shape := grid.MustShape(3, 3)
	pat, err := ByName(shape, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClosedLoop(shape, pat, 2, rng.New(3))

	// Refuse node 0 entirely; everyone else accepts.
	cl.Step(func(src, dst grid.NodeID) bool { return src != 0 })
	if cl.Outstanding(0) != 0 {
		t.Fatalf("refused node holds %d outstanding, want 0", cl.Outstanding(0))
	}
	if got, want := cl.InFlight(), (shape.NumNodes()-1)*2; got != want {
		t.Fatalf("in-flight %d, want %d", got, want)
	}

	// Next step: only node 0 has free slots, and now it is admitted.
	offers := 0
	cl.Step(func(src, dst grid.NodeID) bool {
		if src != 0 {
			t.Fatalf("offer from node %d, want only the deferred node 0", src)
		}
		offers++
		return true
	})
	if offers != 2 || cl.Outstanding(0) != 2 {
		t.Fatalf("deferred node retried %d offers (outstanding %d), want 2", offers, cl.Outstanding(0))
	}
}

// TestClosedLoopDeterministic pins the rng discipline: same (shape,
// pattern, window, seed) and same admission verdicts produce the identical
// offer sequence.
func TestClosedLoopDeterministic(t *testing.T) {
	shape := grid.MustShape(4, 6, 3)
	type ev struct{ s, d grid.NodeID }
	runOnce := func() []ev {
		pat, _ := ByName(shape, "hotspot")
		cl := NewClosedLoop(shape, pat, 2, rng.New(99))
		var out []ev
		refuse := false
		for step := 0; step < 20; step++ {
			cl.Step(func(s, d grid.NodeID) bool {
				out = append(out, ev{s, d})
				refuse = !refuse // alternate verdicts to exercise retries
				return refuse
			})
			// Release a deterministic trickle so the loop keeps drawing.
			if cl.InFlight() > 0 && step%3 == 0 {
				for node := 0; node < shape.NumNodes(); node++ {
					if cl.Outstanding(node) > 0 {
						cl.Release(grid.NodeID(node))
						break
					}
				}
			}
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("offer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offer %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestClosedLoopReleaseUnderflowPanics pins the accounting guard: releasing
// a node with no outstanding request is a bug in the caller's harvest
// wiring and must fail loudly, not corrupt the window.
func TestClosedLoopReleaseUnderflowPanics(t *testing.T) {
	shape := grid.MustShape(2, 2)
	pat, _ := ByName(shape, "uniform")
	cl := NewClosedLoop(shape, pat, 1, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Release on an empty window did not panic")
		}
	}()
	cl.Release(0)
}

// TestClosedLoopTimeoutBackoff pins the retry path's arithmetic: a timeout
// re-arms the slot under a delay of base<<(streak-1) plus a jitter of up to
// the same magnitude, consecutive timeouts double the band, and a Release
// (a delivery) resets the streak to the base band.
func TestClosedLoopTimeoutBackoff(t *testing.T) {
	shape := grid.MustShape(2, 2)
	pat, _ := ByName(shape, "uniform")
	const base = 4
	cl := NewClosedLoop(shape, pat, 1, rng.New(7))
	cl.ConfigureRetry(base)

	// Fill every window, then watch node 0 alone.
	cl.Step(func(src, dst grid.NodeID) bool { return true })

	// silentSteps runs Step until node 0 offers again (accepting the offer)
	// and returns how many steps it stayed silent.
	silentSteps := func() int {
		t.Helper()
		for silent := 0; ; silent++ {
			offered := false
			cl.Step(func(src, dst grid.NodeID) bool {
				if src == 0 {
					offered = true
				}
				return true
			})
			if offered {
				return silent
			}
			if silent > 20*base {
				t.Fatal("node 0 never offered again; backoff stuck")
			}
		}
	}

	cl.Timeout(0) // streak 1: delay in [base, 2*base)
	if cl.Retried() != 1 {
		t.Fatalf("Retried = %d after one timeout, want 1", cl.Retried())
	}
	if s := silentSteps(); s < base || s >= 2*base {
		t.Errorf("first timeout backed off %d steps, want [%d, %d)", s, base, 2*base)
	}
	cl.Timeout(0) // streak 2: delay in [2*base, 4*base)
	if s := silentSteps(); s < 2*base || s >= 4*base {
		t.Errorf("second timeout backed off %d steps, want [%d, %d)", s, 2*base, 4*base)
	}
	cl.Release(0) // delivery ends the streak
	if s := silentSteps(); s != 0 {
		t.Errorf("release left node 0 silent for %d steps, want immediate top-up", s)
	}
	cl.Timeout(0) // streak restarts at 1: back to [base, 2*base)
	if s := silentSteps(); s < base || s >= 2*base {
		t.Errorf("post-release timeout backed off %d steps, want [%d, %d)", s, base, 2*base)
	}
	if cl.Retried() != 3 {
		t.Fatalf("Retried = %d after three timeouts, want 3", cl.Retried())
	}
}

// TestClosedLoopTimeoutNoBackoff pins the base == 0 configuration: the slot
// re-arms with no delay (the retry is offered on the very next step) and no
// randomness is consumed for jitter.
func TestClosedLoopTimeoutNoBackoff(t *testing.T) {
	shape := grid.MustShape(2, 2)
	pat, _ := ByName(shape, "uniform")
	cl := NewClosedLoop(shape, pat, 1, rng.New(3))
	cl.Step(func(src, dst grid.NodeID) bool { return true })
	cl.Timeout(0)
	offered := false
	cl.Step(func(src, dst grid.NodeID) bool {
		if src == 0 {
			offered = true
		}
		return true
	})
	if !offered {
		t.Fatal("zero-backoff timeout did not retry on the next step")
	}
}

// TestClosedLoopTimeoutUnderflowPanics mirrors the Release underflow guard:
// a Timeout for a node with nothing outstanding is a harvest-accounting bug
// and must fail loudly.
func TestClosedLoopTimeoutUnderflowPanics(t *testing.T) {
	shape := grid.MustShape(2, 2)
	pat, _ := ByName(shape, "uniform")
	cl := NewClosedLoop(shape, pat, 1, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Timeout on an empty window did not panic")
		}
	}()
	cl.Timeout(0)
}
