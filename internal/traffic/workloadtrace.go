package traffic

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"ndmesh/internal/fault"
	"ndmesh/internal/grid"
)

// Trace is a recorded workload: every endpoint pair a load run offered, per
// step, plus the fault schedule and the run metadata needed to replay the
// identical experiment. A replayed trace is byte-identical to its origin by
// construction — no rng is consumed during replay, so limited-vs-congested
// (or any other) comparisons can run the *same offered workload* instead of
// relying on rng-state copies, and a workload recorded on one machine
// replays exactly on another.
//
// What is recorded is the *offered* stream (every emit the source made,
// including offers the engine refused at admission): replaying the offers
// against an engine in the same configuration reproduces the admission
// verdicts, the flight population and therefore the LoadPoint of the
// original run bit for bit. A closed-loop run records the offers its
// delivery feedback actually produced; replaying such a trace is open-loop
// by construction (the recorded injection times are fixed), which is
// exactly what makes it a controlled workload for cross-router comparison —
// the ClosedLoop flag is kept so the replay can mirror the original run's
// drop accounting.
type Trace struct {
	// Dims is the mesh shape the workload was recorded on; a trace only
	// replays on the same shape.
	Dims []int //meshvet:keep recording metadata, the caller's to manage (see Reset doc)
	// Rate is the nominal open-loop rate (0 for a closed-loop recording);
	// it feeds the replayed LoadPoint's OfferedRate.
	Rate float64 //meshvet:keep recording metadata, the caller's to manage
	// Window is the closed-loop window (0 for an open-loop recording).
	Window int //meshvet:keep recording metadata, the caller's to manage
	// ClosedLoop marks the origin mode: closed-loop runs do not count
	// refused offers as drops, and the replay mirrors that.
	ClosedLoop bool //meshvet:keep recording metadata, the caller's to manage
	// Warmup, Measure, Drain are the origin run's phase lengths; the
	// replay must use them so the measurement window matches.
	Warmup, Measure, Drain int //meshvet:keep recording metadata, the caller's to manage
	// Lambda, LinkRate and NodeCapacity record the origin run's
	// engine-side configuration. Replays inherit them by default (a
	// capacity mismatch silently changes every admission verdict, which
	// would break the byte-identical-replay contract for anyone who
	// forgot to repeat a flag), but a caller may still override them
	// deliberately to run the same offered workload under a different
	// engine configuration. The congested router's tie-break tuning
	// (CongestionConfig) is router-side state, not workload, and is not
	// recorded.
	Lambda, LinkRate, NodeCapacity int //meshvet:keep recording metadata, the caller's to manage
	// FlightTimeout, GridlockWindow and Bubble record the origin run's
	// deadlock-escape configuration (format v2; v1 traces read as all
	// zero). Like the fields above they are engine-side state that changes
	// admission verdicts and flight populations, so replays inherit them by
	// default. The workload-side retry backoff is NOT recorded: the
	// recorded offer stream already embeds its effect, and a replay never
	// re-runs the closed-loop logic.
	FlightTimeout, GridlockWindow int  //meshvet:keep recording metadata, the caller's to manage
	Bubble                        bool //meshvet:keep recording metadata, the caller's to manage
	// Faults is the origin run's fault schedule (empty for fault-free).
	Faults []fault.Event

	// counts[s] is the number of offers made at step s; srcs/dsts hold the
	// offered endpoint pairs, flattened in step order.
	counts     []int32
	srcs, dsts []int32
}

// Steps returns the number of injection steps recorded.
func (t *Trace) Steps() int { return len(t.counts) }

// Offers returns the total number of offered endpoint pairs recorded.
func (t *Trace) Offers() int { return len(t.srcs) }

// Schedule rebuilds the recorded fault schedule (empty if fault-free).
func (t *Trace) Schedule() *fault.Schedule {
	return &fault.Schedule{Events: append([]fault.Event(nil), t.Faults...)}
}

// Reset clears the recorded offer stream and fault schedule (keeping the
// buffers' capacity) so the trace can hold a fresh recording.
// NewTraceRecorder calls it: wrapping a source always begins a new
// recording — without this, reusing one Trace value across two runs would
// silently concatenate their offer streams or leak a stale fault schedule
// into a fault-free recording. The scalar metadata fields are the
// caller's to manage (and callers set Faults after attaching the
// recorder, since Reset clears it).
func (t *Trace) Reset() {
	t.Faults = t.Faults[:0]
	t.counts = t.counts[:0]
	t.srcs = t.srcs[:0]
	t.dsts = t.dsts[:0]
}

// beginStep opens the next step's offer run.
func (t *Trace) beginStep() { t.counts = append(t.counts, 0) }

// appendOffer records one offered pair in the current step.
func (t *Trace) appendOffer(src, dst grid.NodeID) {
	t.counts[len(t.counts)-1]++
	t.srcs = append(t.srcs, int32(src))
	t.dsts = append(t.dsts, int32(dst))
}

// TraceRecorder implements Injector by passing an inner source's offers
// through to the run while appending each of them (and each step boundary)
// to the trace. Wrap the live source with it and the run is unchanged —
// same rng consumption, same admission outcomes — but the trace afterwards
// holds everything needed to replay it.
type TraceRecorder struct {
	inner Injector
	tr    *Trace
}

// NewTraceRecorder wraps src so its offers are recorded into tr, starting
// a fresh recording (any previously recorded offers and faults in tr are
// discarded; the caller owns the metadata fields).
func NewTraceRecorder(src Injector, tr *Trace) *TraceRecorder {
	tr.Reset()
	return &TraceRecorder{inner: src, tr: tr}
}

// Step implements Injector.
func (rec *TraceRecorder) Step(emit func(src, dst grid.NodeID) bool) {
	rec.tr.beginStep()
	rec.inner.Step(func(src, dst grid.NodeID) bool {
		rec.tr.appendOffer(src, dst)
		return emit(src, dst)
	})
}

// TracePlayer implements Injector by replaying a recorded trace: step s
// offers exactly the pairs recorded at step s, in recorded order, consuming
// no randomness. Steps past the end of the recording offer nothing.
type TracePlayer struct {
	tr   *Trace
	step int
	pos  int
}

// NewTracePlayer builds a player positioned at the trace's first step.
func NewTracePlayer(tr *Trace) *TracePlayer { return &TracePlayer{tr: tr} }

// Step implements Injector.
func (p *TracePlayer) Step(emit func(src, dst grid.NodeID) bool) {
	if p.step >= len(p.tr.counts) {
		p.step++
		return
	}
	n := int(p.tr.counts[p.step])
	for i := 0; i < n; i++ {
		emit(grid.NodeID(p.tr.srcs[p.pos]), grid.NodeID(p.tr.dsts[p.pos]))
		p.pos++
	}
	p.step++
}

// ---------------------------------------------------------------------------
// Binary encoding.

// traceMagic opens every serialized trace; traceVersion is bumped on any
// incompatible format change (readers reject unknown versions). Version 2
// appended the deadlock-escape engine fields (FlightTimeout,
// GridlockWindow, Bubble) after NodeCapacity; version 1 traces are still
// readable and decode those fields as zero (escape mechanisms off, which
// is what a v1 recording ran with).
const (
	traceMagic   = "NDWT"
	traceVersion = 2
	// maxTraceDrain caps the decoded drain phase: drain steps run the
	// engine without any recorded-offer witness to bound them, so a
	// corrupt value must not turn replay into an unbounded computation.
	maxTraceDrain = 1 << 24
)

// Marshal serializes the trace into the compact binary format: the magic
// and version, the metadata header, the fault events, then the per-step
// offer counts and the flattened endpoint pairs — all integers
// uvarint-encoded, so a typical load run's workload is a few bytes per
// offer.
func (t *Trace) Marshal() []byte {
	buf := make([]byte, 0, 64+10*len(t.srcs))
	buf = append(buf, traceMagic...)
	buf = binary.AppendUvarint(buf, traceVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.Dims)))
	for _, d := range t.Dims {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(t.Rate))
	buf = binary.AppendUvarint(buf, uint64(t.Window))
	flags := uint64(0)
	if t.ClosedLoop {
		flags = 1
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(t.Warmup))
	buf = binary.AppendUvarint(buf, uint64(t.Measure))
	buf = binary.AppendUvarint(buf, uint64(t.Drain))
	buf = binary.AppendUvarint(buf, uint64(t.Lambda))
	buf = binary.AppendUvarint(buf, uint64(t.LinkRate))
	buf = binary.AppendUvarint(buf, uint64(t.NodeCapacity))
	buf = binary.AppendUvarint(buf, uint64(t.FlightTimeout))
	buf = binary.AppendUvarint(buf, uint64(t.GridlockWindow))
	bubble := uint64(0)
	if t.Bubble {
		bubble = 1
	}
	buf = binary.AppendUvarint(buf, bubble)
	buf = binary.AppendUvarint(buf, uint64(len(t.Faults)))
	for _, ev := range t.Faults {
		buf = binary.AppendUvarint(buf, uint64(ev.Step))
		buf = binary.AppendUvarint(buf, uint64(ev.Kind))
		buf = binary.AppendUvarint(buf, uint64(ev.Node))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.counts)))
	for _, c := range t.counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.srcs)))
	for i := range t.srcs {
		buf = binary.AppendUvarint(buf, uint64(t.srcs[i]))
		buf = binary.AppendUvarint(buf, uint64(t.dsts[i]))
	}
	return buf
}

// UnmarshalTrace parses a serialized trace, validating the magic, the
// version and the internal consistency of the counts (the sum of per-step
// counts must equal the number of recorded pairs).
func UnmarshalTrace(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("traffic: not a workload trace (bad magic)")
	}
	r := &uvarintReader{data: data[len(traceMagic):]}
	version := r.next()
	if version < 1 || version > traceVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d (want 1..%d)", version, traceVersion)
	}
	t := &Trace{}
	nd := int(r.next())
	if nd < 1 || nd > 16 {
		return nil, fmt.Errorf("traffic: trace has %d dimensions", nd)
	}
	t.Dims = make([]int, nd)
	for i := range t.Dims {
		t.Dims[i] = int(r.next())
	}
	if len(r.data)-r.pos < 8 {
		return nil, fmt.Errorf("traffic: truncated trace header")
	}
	t.Rate = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	t.Window = int(r.next32())
	t.ClosedLoop = r.next()&1 != 0
	t.Warmup = int(r.next32())
	t.Measure = int(r.next32())
	t.Drain = int(r.next32())
	// Phases are replayed as step counts, so they are attack surface for
	// unbounded compute, not just allocation: a crafted Drain (or a
	// bit-flipped Warmup/Measure) would spin the engine for billions of
	// steps. The injection phases are cross-checked against the recorded
	// step table below (a recording is stepped exactly Warmup+Measure
	// times); the drain has no structural witness, so it gets a generous
	// hard cap instead.
	if t.Drain > maxTraceDrain {
		return nil, fmt.Errorf("traffic: trace drain %d exceeds the format cap %d", t.Drain, maxTraceDrain)
	}
	t.Lambda = int(r.next32())
	t.LinkRate = int(r.next32())
	t.NodeCapacity = int(r.next32())
	if version >= 2 {
		t.FlightTimeout = int(r.next32())
		t.GridlockWindow = int(r.next32())
		t.Bubble = r.next()&1 != 0
	}
	// Every element count below is checked against the bytes actually left
	// in the buffer (each fault event encodes to >= 3 bytes, each step
	// count to >= 1, each offer pair to >= 2), so a corrupt or crafted
	// length field errors out instead of driving a huge allocation.
	nf := int(r.next())
	if r.bad || nf < 0 || nf > r.remaining()/3 {
		return nil, fmt.Errorf("traffic: corrupt trace header")
	}
	t.Faults = make([]fault.Event, nf)
	for i := range t.Faults {
		step := int(r.next())
		kind := r.next()
		node := r.next32()
		if kind > uint64(fault.Recover) {
			return nil, fmt.Errorf("traffic: corrupt trace fault kind %d", kind)
		}
		t.Faults[i] = fault.Event{Step: step, Kind: fault.Kind(kind), Node: grid.NodeID(node)}
	}
	ns := int(r.next())
	if r.bad || ns < 0 || ns > r.remaining() {
		return nil, fmt.Errorf("traffic: corrupt trace step table")
	}
	if ns != t.Warmup+t.Measure {
		return nil, fmt.Errorf("traffic: trace records %d injection steps, phases say %d (warmup %d + measure %d)",
			ns, t.Warmup+t.Measure, t.Warmup, t.Measure)
	}
	t.counts = make([]int32, ns)
	total := 0
	for i := range t.counts {
		t.counts[i] = r.next32()
		total += int(t.counts[i])
	}
	np := int(r.next())
	if r.bad || np != total || np > r.remaining()/2 {
		return nil, fmt.Errorf("traffic: trace offer count %d does not match step counts (sum %d)", np, total)
	}
	t.srcs = make([]int32, np)
	t.dsts = make([]int32, np)
	for i := 0; i < np; i++ {
		t.srcs[i] = r.next32()
		t.dsts[i] = r.next32()
	}
	if r.bad {
		return nil, fmt.Errorf("traffic: truncated trace body")
	}
	return t, nil
}

// Validate checks the trace against a mesh shape: every recorded endpoint
// and fault node must be a valid node id.
func (t *Trace) Validate(shape *grid.Shape) error {
	if !slices.Equal(t.Dims, shape.Radices()) {
		return fmt.Errorf("traffic: trace recorded on %v, replaying on %v", t.Dims, shape.Radices())
	}
	n := int32(shape.NumNodes())
	for _, ev := range t.Faults {
		if int32(ev.Node) < 0 || int32(ev.Node) >= n {
			return fmt.Errorf("traffic: trace fault node %d outside mesh", ev.Node)
		}
	}
	for i := range t.srcs {
		if t.srcs[i] < 0 || t.srcs[i] >= n || t.dsts[i] < 0 || t.dsts[i] >= n {
			return fmt.Errorf("traffic: trace offer %d endpoints (%d -> %d) outside mesh", i, t.srcs[i], t.dsts[i])
		}
	}
	return nil
}

// uvarintReader walks a uvarint-packed buffer, latching any decode error
// into bad so callers can check once per section.
type uvarintReader struct {
	data []byte
	pos  int
	bad  bool
}

func (r *uvarintReader) next() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

// next32 is next for values that must fit an int32 (counts, node ids): a
// larger value marks the trace corrupt instead of truncating silently —
// a bit-flipped length that happened to truncate consistently could
// otherwise replay a *different* workload without any error.
func (r *uvarintReader) next32() int32 {
	v := r.next()
	if v > 1<<31-1 {
		r.bad = true
		return 0
	}
	return int32(v)
}

// remaining returns the undecoded byte count.
func (r *uvarintReader) remaining() int { return len(r.data) - r.pos }
