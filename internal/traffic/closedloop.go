package traffic

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// Injector is one step's worth of offered traffic, the shape shared by the
// open-loop Generator, the closed-loop ClosedLoop source and the TracePlayer
// replaying a recorded workload. The emit callback owns admission and
// reports it: true means the message was injected, false that the source
// refused it (full input queue or bad node). Open-loop sources ignore the
// verdict (a refusal is a drop); the closed-loop source keeps the slot free
// and retries next step.
type Injector interface {
	Step(emit func(src, dst grid.NodeID) bool)
}

// ClosedLoop is a closed-loop workload source: every node holds a bounded
// window of outstanding requests and only issues a new one when a slot
// frees — the delivery (or any terminal outcome) of an earlier request,
// reported through Release. Where the open-loop processes keep offering
// traffic regardless of what the network does with it, a closed loop is
// self-throttling: injection adapts to delivery, which is how real
// request/reply workloads behave and why closed-loop curves expose
// fairness and saturation behavior that open-loop injection hides.
//
// Determinism follows the Generator's contract: all randomness flows
// through the single stream handed to NewClosedLoop, drawn in node order
// within a step, and slots are released by the engine's harvest pass,
// which runs in flight-injection order. A closed-loop run is therefore a
// deterministic function of (shape, pattern, window, stream, engine
// behavior) — the property the E21 sweep's serial/parallel/sharded
// equality rests on.
//
// The steady state allocates nothing: the per-node outstanding counters
// are a flat array sized once, and Step draws destinations into the same
// emit path the open-loop generator uses.
type ClosedLoop struct {
	shape       *grid.Shape
	pat         Pattern
	window      int
	outstanding []int
	inFlight    int
	r           *rng.Source
}

// NewClosedLoop builds a closed-loop source in which every node keeps up to
// window requests outstanding (window < 1 means 1).
func NewClosedLoop(shape *grid.Shape, pat Pattern, window int, r *rng.Source) *ClosedLoop {
	if window < 1 {
		window = 1
	}
	return &ClosedLoop{
		shape:       shape,
		pat:         pat,
		window:      window,
		outstanding: make([]int, shape.NumNodes()),
		r:           r,
	}
}

// Window returns the per-node outstanding-request bound.
func (c *ClosedLoop) Window() int { return c.window }

// Outstanding returns node's current outstanding-request count.
func (c *ClosedLoop) Outstanding(node int) int { return c.outstanding[node] }

// InFlight returns the total outstanding requests across all nodes.
func (c *ClosedLoop) InFlight() int { return c.inFlight }

// Step implements Injector: in node order, every node tops its outstanding
// count up to the window, drawing one destination per new request. A
// refusal (emit returns false: the source's input queue is full, or the
// node is down) leaves the slot free and moves on — the node retries with
// a fresh draw next step, so a closed loop never drops requests, it defers
// them.
func (c *ClosedLoop) Step(emit func(src, dst grid.NodeID) bool) {
	n := c.shape.NumNodes()
	for node := 0; node < n; node++ {
		for c.outstanding[node] < c.window {
			src := grid.NodeID(node)
			dst := c.pat.Dest(src, c.r)
			if !emit(src, dst) {
				break // source blocked this step; retry next step
			}
			c.outstanding[node]++
			c.inFlight++
		}
	}
}

// Release frees one outstanding slot at src: the request injected there
// reached a terminal state (delivered, unreachable or lost — all three
// must release, or faults would leak the window shut). The slot is
// reusable from the next Step on.
func (c *ClosedLoop) Release(src grid.NodeID) {
	if c.outstanding[src] <= 0 {
		panic("traffic: ClosedLoop.Release without an outstanding request")
	}
	c.outstanding[src]--
	c.inFlight--
}
