package traffic

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// Injector is one step's worth of offered traffic, the shape shared by the
// open-loop Generator, the closed-loop ClosedLoop source and the TracePlayer
// replaying a recorded workload. The emit callback owns admission and
// reports it: true means the message was injected, false that the source
// refused it (full input queue or bad node). Open-loop sources ignore the
// verdict (a refusal is a drop); the closed-loop source keeps the slot free
// and retries next step.
type Injector interface {
	Step(emit func(src, dst grid.NodeID) bool)
}

// ClosedLoop is a closed-loop workload source: every node holds a bounded
// window of outstanding requests and only issues a new one when a slot
// frees — the delivery (or any terminal outcome) of an earlier request,
// reported through Release. Where the open-loop processes keep offering
// traffic regardless of what the network does with it, a closed loop is
// self-throttling: injection adapts to delivery, which is how real
// request/reply workloads behave and why closed-loop curves expose
// fairness and saturation behavior that open-loop injection hides.
//
// Determinism follows the Generator's contract: all randomness flows
// through the single stream handed to NewClosedLoop, drawn in node order
// within a step, and slots are released by the engine's harvest pass,
// which runs in flight-injection order. A closed-loop run is therefore a
// deterministic function of (shape, pattern, window, stream, engine
// behavior) — the property the E21 sweep's serial/parallel/sharded
// equality rests on.
//
// The steady state allocates nothing: the per-node outstanding counters
// are a flat array sized once, and Step draws destinations into the same
// emit path the open-loop generator uses.
type ClosedLoop struct {
	shape       *grid.Shape
	pat         Pattern
	window      int
	outstanding []int
	inFlight    int
	r           *rng.Source

	// Retry state (ConfigureRetry). A timed-out request releases its slot
	// like any other terminal outcome, but the node then backs off: it
	// offers nothing until blockedUntil, with the delay growing
	// exponentially in the node's consecutive-timeout count (attempts) plus
	// a uniform jitter drawn from the same stream as everything else — in
	// harvest order, which the engine keeps deterministic. Any successful
	// delivery at the node resets the streak. backoff == 0 still re-arms
	// the slot (immediate retry next step), it just skips the delay.
	backoff      int
	attempts     []int
	blockedUntil []int
	step         int // Step() calls so far — the backoff clock
	retried      int
}

// NewClosedLoop builds a closed-loop source in which every node keeps up to
// window requests outstanding (window < 1 means 1).
func NewClosedLoop(shape *grid.Shape, pat Pattern, window int, r *rng.Source) *ClosedLoop {
	if window < 1 {
		window = 1
	}
	return &ClosedLoop{
		shape:        shape,
		pat:          pat,
		window:       window,
		outstanding:  make([]int, shape.NumNodes()),
		attempts:     make([]int, shape.NumNodes()),
		blockedUntil: make([]int, shape.NumNodes()),
		r:            r,
	}
}

// ConfigureRetry sets the base backoff (in steps) applied when a timed-out
// request is re-armed: attempt k waits base<<(k-1) steps (the shift capped
// at backoffMaxShift) plus a uniform jitter of up to the same magnitude.
// base <= 0 means retry with no delay.
func (c *ClosedLoop) ConfigureRetry(base int) {
	if base < 0 {
		base = 0
	}
	c.backoff = base
}

// backoffMaxShift caps the exponential backoff so the delay stays bounded
// (base<<8 steps plus jitter) no matter how long a node's timeout streak
// runs.
const backoffMaxShift = 8

// Retried returns how many timed-out requests have been re-armed for retry.
func (c *ClosedLoop) Retried() int { return c.retried }

// Window returns the per-node outstanding-request bound.
func (c *ClosedLoop) Window() int { return c.window }

// Outstanding returns node's current outstanding-request count.
func (c *ClosedLoop) Outstanding(node int) int { return c.outstanding[node] }

// InFlight returns the total outstanding requests across all nodes.
func (c *ClosedLoop) InFlight() int { return c.inFlight }

// Step implements Injector: in node order, every node tops its outstanding
// count up to the window, drawing one destination per new request. A
// refusal (emit returns false: the source's input queue is full, or the
// node is down) leaves the slot free and moves on — the node retries with
// a fresh draw next step, so a closed loop never drops requests, it defers
// them.
//
//meshvet:noalloc
func (c *ClosedLoop) Step(emit func(src, dst grid.NodeID) bool) {
	n := c.shape.NumNodes()
	for node := 0; node < n; node++ {
		if c.step < c.blockedUntil[node] {
			continue // backing off after a timeout; no draws, no offers
		}
		for c.outstanding[node] < c.window {
			src := grid.NodeID(node)
			dst := c.pat.Dest(src, c.r)
			if !emit(src, dst) {
				break // source blocked this step; retry next step
			}
			c.outstanding[node]++
			c.inFlight++
		}
	}
	c.step++
}

// Release frees one outstanding slot at src: the request injected there
// reached a terminal state (delivered, unreachable or lost — all three
// must release, or faults would leak the window shut). The slot is
// reusable from the next Step on. A release also ends the node's
// consecutive-timeout streak: the network is moving traffic out of this
// node again, so the next timeout backs off from the base delay.
//
//meshvet:noalloc
func (c *ClosedLoop) Release(src grid.NodeID) {
	if c.outstanding[src] <= 0 {
		panic("traffic: ClosedLoop.Release without an outstanding request")
	}
	c.outstanding[src]--
	c.inFlight--
	c.attempts[src] = 0
}

// Timeout frees the slot of a timed-out request at src and re-arms it
// under exponential backoff: the node offers nothing until
// base<<min(streak-1, backoffMaxShift) steps plus a uniform jitter of the
// same magnitude have passed. The jitter is drawn from the loop's own
// stream at harvest time — the engine harvests in flight-injection order,
// so the draw sequence (and with it the whole run) stays deterministic.
// Every Timeout counts as one retry: the request is back in the node's
// window and will be re-offered (with a fresh destination draw) when the
// backoff expires.
//
//meshvet:noalloc
func (c *ClosedLoop) Timeout(src grid.NodeID) {
	if c.outstanding[src] <= 0 {
		panic("traffic: ClosedLoop.Timeout without an outstanding request")
	}
	c.outstanding[src]--
	c.inFlight--
	c.attempts[src]++
	c.retried++
	if c.backoff > 0 {
		shift := c.attempts[src] - 1
		if shift > backoffMaxShift {
			shift = backoffMaxShift
		}
		delay := c.backoff << shift
		delay += c.r.Intn(delay) // jitter: [0, delay)
		if until := c.step + delay; until > c.blockedUntil[src] {
			c.blockedUntil[src] = until
		}
	}
}
