package traffic

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// asymmetric radices exercise the mixed-radix generalizations: 4x6x3 has a
// power-of-two axis, a non-power-of-two even axis and an odd axis.
var testShapes = [][]int{{4, 6, 3}, {8, 8}, {5, 5, 5}, {2, 2}, {16, 3}}

// TestPatternsProduceValidEndpoints is the property test of the issue:
// every pattern, on every shape (including asymmetric radices), produces
// an in-shape destination different from the source, for every source.
func TestPatternsProduceValidEndpoints(t *testing.T) {
	for _, dims := range testShapes {
		shape := grid.MustShape(dims...)
		for _, name := range PatternNames() {
			pat, err := ByName(shape, name)
			if err != nil {
				t.Fatalf("%v/%s: %v", dims, name, err)
			}
			r := rng.New(7)
			for src := 0; src < shape.NumNodes(); src++ {
				for rep := 0; rep < 8; rep++ {
					dst := pat.Dest(grid.NodeID(src), r)
					if dst < 0 || int(dst) >= shape.NumNodes() {
						t.Fatalf("%v/%s: src %d -> out-of-shape dst %d", dims, name, src, dst)
					}
					if dst == grid.NodeID(src) {
						t.Fatalf("%v/%s: src %d mapped to itself", dims, name, src)
					}
				}
			}
		}
	}
}

func TestPatternByNameUnknown(t *testing.T) {
	if _, err := ByName(grid.MustShape(4, 4), "zipf"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
	if _, err := ByName(grid.MustShape(1), "uniform"); err == nil {
		t.Fatal("expected error for a 1-node shape")
	}
}

// TestNeighborPatternIsOneHop pins the locality extreme: every destination
// is exactly one hop away.
func TestNeighborPatternIsOneHop(t *testing.T) {
	shape := grid.MustShape(4, 6, 3)
	pat := NewNeighbor(shape)
	r := rng.New(3)
	for src := 0; src < shape.NumNodes(); src++ {
		for rep := 0; rep < 6; rep++ {
			dst := pat.Dest(grid.NodeID(src), r)
			if d := shape.Distance(grid.NodeID(src), dst); d != 1 {
				t.Fatalf("src %d -> dst %d at distance %d", src, dst, d)
			}
		}
	}
}

// TestComplementPattern pins the deterministic mapping on an asymmetric
// shape.
func TestComplementPattern(t *testing.T) {
	shape := grid.MustShape(4, 6, 3)
	pat := NewComplement(shape)
	r := rng.New(1)
	src := shape.Index(grid.Coord{1, 2, 0})
	want := shape.Index(grid.Coord{2, 3, 2})
	if got := pat.Dest(src, r); got != want {
		t.Fatalf("complement: got %v, want %v", shape.CoordOf(got), shape.CoordOf(want))
	}
}

// TestTransposeRescalesToRadix checks the mixed-radix transpose stays in
// shape by construction (no clamping artifacts at the extremes).
func TestTransposeRescalesToRadix(t *testing.T) {
	shape := grid.MustShape(4, 6, 3)
	pat := NewTranspose(shape)
	r := rng.New(1)
	src := shape.Index(grid.Coord{3, 5, 2})
	dst := pat.Dest(src, r)
	c := shape.CoordOf(dst)
	// (3,5,2) rotates to components drawn from axes 1,2,0 rescaled:
	// 5*4/6=3, 2*6/3=4, 3*3/4=2.
	want := grid.Coord{3, 4, 2}
	if !c.Equal(want) {
		t.Fatalf("transpose: got %v, want %v", c, want)
	}
}

// TestDrawLongHaulPair pins the endpoint contract the experiment sweeps
// rely on: interior endpoints at distance >= diameter/2, plus exact rng
// stream compatibility with the historical drawPair (two Intn(N) draws per
// attempt).
func TestDrawLongHaulPair(t *testing.T) {
	shape := grid.MustShape(12, 12)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		s, d := DrawLongHaulPair(shape, r)
		if s == d || shape.OnBorder(s) || shape.OnBorder(d) {
			t.Fatalf("pair %d: bad endpoints %d, %d", i, s, d)
		}
		if shape.Distance(s, d) < shape.Diameter()/2 {
			t.Fatalf("pair %d: too close: %d", i, shape.Distance(s, d))
		}
	}
	// Stream compatibility: replay the same seed through the reference
	// loop and require identical pairs.
	ref := rng.New(5)
	got := rng.New(5)
	for i := 0; i < 50; i++ {
		var rs, rd grid.NodeID
		minD := shape.Diameter() / 2
		for {
			s := grid.NodeID(ref.Intn(shape.NumNodes()))
			d := grid.NodeID(ref.Intn(shape.NumNodes()))
			if s == d || shape.OnBorder(s) || shape.OnBorder(d) {
				continue
			}
			if shape.Distance(s, d) >= minD {
				rs, rd = s, d
				break
			}
		}
		gs, gd := DrawLongHaulPair(shape, got)
		if gs != rs || gd != rd {
			t.Fatalf("pair %d: (%d,%d) != reference (%d,%d)", i, gs, gd, rs, rd)
		}
	}
}

// TestGeneratorDeterministic pins the injection sequence: same seed, same
// emissions.
func TestGeneratorDeterministic(t *testing.T) {
	shape := grid.MustShape(4, 6, 3)
	type ev struct{ s, d grid.NodeID }
	runOnce := func() []ev {
		pat, _ := ByName(shape, "hotspot")
		proc, _ := ProcessByName("bursty")
		gen := NewGenerator(shape, pat, proc, 0.2, rng.New(99))
		var out []ev
		for step := 0; step < 50; step++ {
			gen.Step(func(s, d grid.NodeID) bool { out = append(out, ev{s, d}); return true })
		}
		return out
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("generator emitted nothing in 50 steps at rate 0.2")
	}
}

// TestProcessRates checks each arrival process offers approximately the
// nominal rate over a long horizon.
func TestProcessRates(t *testing.T) {
	const steps, nodes = 4000, 16
	const rate = 0.15
	for _, name := range ProcessNames() {
		proc, err := ProcessByName(name)
		if err != nil {
			t.Fatal(err)
		}
		proc.Reset(nodes)
		r := rng.New(11)
		total := 0
		for step := 0; step < steps; step++ {
			for node := 0; node < nodes; node++ {
				total += proc.Arrivals(node, rate, r)
			}
		}
		got := float64(total) / float64(steps*nodes)
		if got < 0.8*rate || got > 1.2*rate {
			t.Errorf("%s: offered rate %.4f, want ~%.2f", name, got, rate)
		}
	}
}

// TestPoissonMultiArrivals checks Poisson can offer more than one message
// per node-step (rate > 1 is meaningful).
func TestPoissonMultiArrivals(t *testing.T) {
	proc := &Poisson{}
	proc.Reset(1)
	r := rng.New(2)
	max := 0
	for i := 0; i < 2000; i++ {
		if k := proc.Arrivals(0, 2.0, r); k > max {
			max = k
		}
	}
	if max < 2 {
		t.Fatalf("Poisson(2.0) never produced a multi-arrival step (max %d)", max)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]int{4, 2, 8, 6, 10})
	if s.N != 5 || s.Mean != 6 || s.Max != 10 {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 6 {
		t.Fatalf("p50: %d", s.P50)
	}
}

// TestCollectorPhases checks the measurement window partitioning.
func TestCollectorPhases(t *testing.T) {
	var c Collector
	ph := Phases{Warmup: 10, Measure: 20, Drain: 5}
	c.Reset(ph)
	c.Offer(5, true)   // warmup: not measured
	c.Offer(15, true)  // measured
	c.Offer(15, false) // measured drop
	c.Offer(29, true)  // measured (last window step)
	c.Offer(30, true)  // drain boundary: not measured
	c.Finish(15, 12, Delivered)
	c.Finish(29, 30, Delivered)
	c.Finish(5, 9, Delivered) // warmup flight: excluded
	c.Finish(16, 0, Unfinished)
	pt := c.Result(0.1, 10)
	if pt.Offered != 3 || pt.Injected != 2 || pt.Dropped != 1 {
		t.Fatalf("offer accounting: %+v", pt)
	}
	if pt.Delivered != 2 || pt.Unfinished != 1 {
		t.Fatalf("finish accounting: %+v", pt)
	}
	if pt.Latency.N != 2 || pt.Latency.Mean != 21 {
		t.Fatalf("latency: %+v", pt.Latency)
	}
	if want := 2.0 / (20 * 10); pt.AcceptedRate != want {
		t.Fatalf("accepted rate %v, want %v", pt.AcceptedRate, want)
	}
}
