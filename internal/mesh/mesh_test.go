package mesh

import (
	"testing"

	"ndmesh/internal/grid"
)

func TestStatusStringsAndBad(t *testing.T) {
	cases := map[Status]string{
		Enabled: "enabled", Disabled: "disabled", Clean: "clean", Faulty: "faulty",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(9).String() != "status(9)" {
		t.Errorf("unknown status string = %q", Status(9).String())
	}
	if Enabled.Bad() || Clean.Bad() {
		t.Error("enabled/clean must not be Bad")
	}
	if !Disabled.Bad() || !Faulty.Bad() {
		t.Error("disabled/faulty must be Bad")
	}
}

func TestNewMeshAllEnabled(t *testing.T) {
	m, err := NewUniform(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 25 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
	for id := 0; id < m.NumNodes(); id++ {
		if m.Status(grid.NodeID(id)) != Enabled {
			t.Fatalf("node %d not enabled initially", id)
		}
	}
	if m.NumFaulty() != 0 || m.NumDisabled() != 0 || m.NumClean() != 0 {
		t.Fatal("counters not zero initially")
	}
}

func TestNeighborTableMatchesShape(t *testing.T) {
	m, _ := NewUniform(3, 4)
	shape := m.Shape()
	for id := 0; id < m.NumNodes(); id++ {
		for d := 0; d < shape.NumDirs(); d++ {
			want := shape.Neighbor(grid.NodeID(id), grid.Dir(d))
			if got := m.Neighbor(grid.NodeID(id), grid.Dir(d)); got != want {
				t.Fatalf("Neighbor(%d,%v) = %d, want %d", id, grid.Dir(d), got, want)
			}
		}
	}
}

func TestEachNeighborSkipsOffMesh(t *testing.T) {
	m, _ := NewUniform(2, 3)
	corner := m.Shape().Index(grid.Coord{0, 0})
	count := 0
	m.EachNeighbor(corner, func(nb grid.NodeID, d grid.Dir) {
		count++
		if nb == grid.InvalidNode {
			t.Fatal("EachNeighbor yielded InvalidNode")
		}
	})
	if count != 2 {
		t.Fatalf("corner neighbor count = %d, want 2", count)
	}
}

func TestStatusTransitionsAndCounters(t *testing.T) {
	m, _ := NewUniform(2, 4)
	id := m.Shape().Index(grid.Coord{1, 1})
	m.Fail(id)
	if m.Status(id) != Faulty || m.NumFaulty() != 1 {
		t.Fatal("Fail did not apply")
	}
	v := m.Version()
	m.Fail(id) // idempotent: no version bump
	if m.Version() != v {
		t.Fatal("redundant SetStatus bumped version")
	}
	m.Recover(id)
	if m.Status(id) != Clean || m.NumClean() != 1 || m.NumFaulty() != 0 {
		t.Fatal("Recover did not set clean")
	}
	// Recover on non-faulty node is a no-op.
	other := m.Shape().Index(grid.Coord{0, 0})
	m.Recover(other)
	if m.Status(other) != Enabled {
		t.Fatal("Recover changed an enabled node")
	}
	m.SetStatus(id, Disabled)
	if m.NumDisabled() != 1 || m.NumClean() != 0 {
		t.Fatal("counters wrong after disable")
	}
	m.SetStatus(id, Enabled)
	if m.NumDisabled() != 0 {
		t.Fatal("counters wrong after re-enable")
	}
}

func TestFailAtRecoverAt(t *testing.T) {
	m, _ := NewUniform(3, 4)
	c := grid.Coord{1, 2, 3}
	m.FailAt(c)
	if m.StatusAt(c) != Faulty {
		t.Fatal("FailAt missed")
	}
	m.RecoverAt(c)
	if m.StatusAt(c) != Clean {
		t.Fatal("RecoverAt missed")
	}
}

func TestCleanAge(t *testing.T) {
	m, _ := NewUniform(2, 4)
	id := m.Shape().Index(grid.Coord{2, 2})
	m.Fail(id)
	m.Recover(id)
	if m.CleanAge(id) != 0 {
		t.Fatal("fresh clean node has nonzero age")
	}
	m.BumpCleanAge(id)
	m.BumpCleanAge(id)
	if m.CleanAge(id) != 2 {
		t.Fatalf("CleanAge = %d", m.CleanAge(id))
	}
	// Re-entering clean resets the age.
	m.SetStatus(id, Disabled)
	m.SetStatus(id, Clean)
	if m.CleanAge(id) != 0 {
		t.Fatal("clean age not reset")
	}
}

func TestBadNeighborDims(t *testing.T) {
	m, _ := NewUniform(2, 8)
	shape := m.Shape()
	center := shape.Index(grid.Coord{4, 4})

	// One faulty neighbor: neither condition.
	m.FailAt(grid.Coord{5, 4})
	bad2, faulty2 := m.BadNeighborDims(center)
	if bad2 || faulty2 {
		t.Fatal("single faulty neighbor must not trigger")
	}
	// Two faulty along the SAME axis: still neither (rule 1 needs
	// different dimensions).
	m.FailAt(grid.Coord{3, 4})
	bad2, faulty2 = m.BadNeighborDims(center)
	if bad2 || faulty2 {
		t.Fatal("two faulty neighbors on one axis must not trigger")
	}
	// Add a faulty neighbor on the other axis: both trigger.
	m.FailAt(grid.Coord{4, 5})
	bad2, faulty2 = m.BadNeighborDims(center)
	if !bad2 || !faulty2 {
		t.Fatal("two faulty dims must trigger both conditions")
	}

	// Disabled counts toward bad but not faulty.
	m2, _ := NewUniform(2, 8)
	m2.FailAt(grid.Coord{5, 4})
	m2.SetStatus(shape.Index(grid.Coord{4, 5}), Disabled)
	bad2, faulty2 = m2.BadNeighborDims(center)
	if !bad2 {
		t.Fatal("faulty+disabled in different dims must set badTwoDims")
	}
	if faulty2 {
		t.Fatal("disabled neighbor must not count as faulty")
	}
}

func TestHasCleanNeighbor(t *testing.T) {
	m, _ := NewUniform(2, 6)
	shape := m.Shape()
	id := shape.Index(grid.Coord{2, 2})
	if m.HasCleanNeighbor(id) {
		t.Fatal("no clean neighbors initially")
	}
	nb := shape.Index(grid.Coord{2, 3})
	m.Fail(nb)
	m.Recover(nb)
	if !m.HasCleanNeighbor(id) {
		t.Fatal("clean neighbor not seen")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m, _ := NewUniform(2, 5)
	m.FailAt(grid.Coord{1, 1})
	m.FailAt(grid.Coord{2, 2})
	m.SetStatus(m.Shape().Index(grid.Coord{3, 3}), Disabled)
	snap := m.Snapshot()
	m.Reset()
	if m.NumFaulty() != 0 || m.NumDisabled() != 0 {
		t.Fatal("Reset incomplete")
	}
	m.Restore(snap)
	if m.NumFaulty() != 2 || m.NumDisabled() != 1 {
		t.Fatalf("Restore counters wrong: f=%d d=%d", m.NumFaulty(), m.NumDisabled())
	}
	if m.StatusAt(grid.Coord{1, 1}) != Faulty || m.StatusAt(grid.Coord{3, 3}) != Disabled {
		t.Fatal("Restore statuses wrong")
	}
}

func TestRestorePanicsOnWrongSize(t *testing.T) {
	m, _ := NewUniform(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with wrong snapshot did not panic")
		}
	}()
	m.Restore(make([]Status, 3))
}

func TestVersionBumps(t *testing.T) {
	m, _ := NewUniform(2, 4)
	v0 := m.Version()
	m.FailAt(grid.Coord{1, 1})
	if m.Version() == v0 {
		t.Fatal("version not bumped on change")
	}
}
