// Package mesh implements the k-ary n-D mesh fabric: per-node fault status
// and the enabled/disabled/clean labeling state of Definitions 1 and 4.
//
// The mesh holds state only; the synchronous labeling rules (Algorithm 1)
// live in internal/block, the information constructions in internal/ident
// and internal/boundary, and the execution model in internal/engine.
//
// Per the paper, link faults are treated as node faults (Section 2.2), so
// the fabric tracks node status only.
package mesh

import (
	"fmt"

	"ndmesh/internal/grid"
)

// Status is the label of a node under the extended labeling scheme of
// Definition 4. After stabilization only Enabled, Disabled and Faulty
// remain; Clean is the transient label of recovered nodes and of disabled
// nodes released by a recovery.
type Status uint8

const (
	// Enabled marks a non-faulty node that participates in routing.
	Enabled Status = iota
	// Disabled marks a non-faulty node inside a faulty block: it has (or
	// had) two or more disabled/faulty neighbors along different dimensions.
	Disabled
	// Clean is the transient status of Definition 4: a node recovered from
	// faulty status, or a disabled node adjacent to a clean node that is no
	// longer forced disabled.
	Clean
	// Faulty marks a failed node.
	Faulty
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case Enabled:
		return "enabled"
	case Disabled:
		return "disabled"
	case Clean:
		return "clean"
	case Faulty:
		return "faulty"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Bad reports whether the status counts toward Definition 1's rule 1
// ("disabled or faulty neighbors").
func (s Status) Bad() bool { return s == Disabled || s == Faulty }

// Mesh is the fabric: shape plus per-node status, with a precomputed flat
// neighbor table so hot loops never recompute coordinate arithmetic.
type Mesh struct {
	shape *grid.Shape //meshvet:keep topology, immutable after New
	// status[id] is the current label of node id.
	status []Status
	// neighbors[id*2n+dir] is the neighbor of id in direction dir, or
	// grid.InvalidNode when the hop leaves the mesh.
	neighbors []grid.NodeID //meshvet:keep topology, immutable after New
	// cleanAge[id] counts synchronous rounds a node has held Clean status;
	// rule 4 fires only after neighbors have seen the clean status
	// (cleanAge >= 1). Maintained by internal/block.
	cleanAge []uint8
	faulty   int
	disabled int
	clean    int
	version  uint64
}

// New builds an all-enabled mesh of the given shape.
func New(shape *grid.Shape) *Mesh {
	n := shape.NumNodes()
	nd := shape.NumDirs()
	m := &Mesh{
		shape:     shape,
		status:    make([]Status, n),
		neighbors: make([]grid.NodeID, n*nd),
		cleanAge:  make([]uint8, n),
	}
	for id := 0; id < n; id++ {
		for d := 0; d < nd; d++ {
			m.neighbors[id*nd+d] = shape.Neighbor(grid.NodeID(id), grid.Dir(d))
		}
	}
	return m
}

// NewUniform builds an all-enabled k-ary n-D mesh.
func NewUniform(n, k int) (*Mesh, error) {
	shape, err := grid.Uniform(n, k)
	if err != nil {
		return nil, err
	}
	return New(shape), nil
}

// Shape returns the mesh geometry.
func (m *Mesh) Shape() *grid.Shape { return m.shape }

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.status) }

// Status returns the current label of node id.
func (m *Mesh) Status(id grid.NodeID) Status { return m.status[id] }

// StatusAt returns the label of the node at coordinate c.
func (m *Mesh) StatusAt(c grid.Coord) Status { return m.status[m.shape.Index(c)] }

// Neighbor returns the neighbor of id in direction d (InvalidNode off-mesh).
func (m *Mesh) Neighbor(id grid.NodeID, d grid.Dir) grid.NodeID {
	return m.neighbors[int(id)*m.shape.NumDirs()+int(d)]
}

// EachNeighbor calls fn for every existing neighbor of id with its
// direction.
func (m *Mesh) EachNeighbor(id grid.NodeID, fn func(nb grid.NodeID, d grid.Dir)) {
	base := int(id) * m.shape.NumDirs()
	for d := 0; d < m.shape.NumDirs(); d++ {
		if nb := m.neighbors[base+d]; nb != grid.InvalidNode {
			fn(nb, grid.Dir(d))
		}
	}
}

// SetStatus relabels a node, maintaining the aggregate counters. It is the
// single mutation point used by both the fault schedule and the labeling
// protocol.
func (m *Mesh) SetStatus(id grid.NodeID, s Status) {
	old := m.status[id]
	if old == s {
		return
	}
	m.decr(old)
	m.incr(s)
	m.status[id] = s
	m.version++
	if s == Clean {
		m.cleanAge[id] = 0
	}
}

// Version increments on every status change; caches of derived global state
// (e.g. the oracle router's distance field) key off it.
func (m *Mesh) Version() uint64 { return m.version }

func (m *Mesh) decr(s Status) {
	switch s {
	case Faulty:
		m.faulty--
	case Disabled:
		m.disabled--
	case Clean:
		m.clean--
	}
}

func (m *Mesh) incr(s Status) {
	switch s {
	case Faulty:
		m.faulty++
	case Disabled:
		m.disabled++
	case Clean:
		m.clean++
	}
}

// Fail marks a node faulty (a dynamic fault occurrence f_i).
func (m *Mesh) Fail(id grid.NodeID) { m.SetStatus(id, Faulty) }

// FailAt marks the node at coordinate c faulty.
func (m *Mesh) FailAt(c grid.Coord) { m.Fail(m.shape.Index(c)) }

// Recover applies rule 5 of Algorithm 1: a faulty node recovers and is
// labeled clean. Recovering a non-faulty node is a no-op.
func (m *Mesh) Recover(id grid.NodeID) {
	if m.status[id] == Faulty {
		m.SetStatus(id, Clean)
	}
}

// RecoverAt recovers the node at coordinate c.
func (m *Mesh) RecoverAt(c grid.Coord) { m.Recover(m.shape.Index(c)) }

// CleanAge returns the number of stabilization rounds node id has been
// Clean; meaningful only while Status(id) == Clean.
func (m *Mesh) CleanAge(id grid.NodeID) int { return int(m.cleanAge[id]) }

// BumpCleanAge increments the clean age (capped). Called once per labeling
// round by internal/block.
func (m *Mesh) BumpCleanAge(id grid.NodeID) {
	if m.cleanAge[id] < 0xff {
		m.cleanAge[id]++
	}
}

// NumFaulty returns the count of faulty nodes (F at the current time).
func (m *Mesh) NumFaulty() int { return m.faulty }

// NumDisabled returns the count of disabled nodes.
func (m *Mesh) NumDisabled() int { return m.disabled }

// NumClean returns the count of clean (transient) nodes.
func (m *Mesh) NumClean() int { return m.clean }

// BadNeighborDims reports, for node id, whether it has disabled-or-faulty
// neighbors along at least two different dimensions (the trigger of rule 1)
// and whether it has faulty neighbors along at least two different
// dimensions (the trigger of rules 2/3/4).
func (m *Mesh) BadNeighborDims(id grid.NodeID) (badTwoDims, faultyTwoDims bool) {
	nDims := m.shape.Dims()
	base := int(id) * m.shape.NumDirs()
	badAxis, faultyAxis := -1, -1
	for axis := 0; axis < nDims; axis++ {
		bad, flt := false, false
		for side := 0; side < 2; side++ {
			nb := m.neighbors[base+2*axis+side]
			if nb == grid.InvalidNode {
				continue
			}
			switch m.status[nb] {
			case Faulty:
				bad, flt = true, true
			case Disabled:
				bad = true
			}
		}
		if bad {
			if badAxis >= 0 && badAxis != axis {
				badTwoDims = true
			}
			if badAxis < 0 {
				badAxis = axis
			}
		}
		if flt {
			if faultyAxis >= 0 && faultyAxis != axis {
				faultyTwoDims = true
			}
			if faultyAxis < 0 {
				faultyAxis = axis
			}
		}
		if badTwoDims && faultyTwoDims {
			return
		}
	}
	return
}

// HasCleanNeighbor reports whether some neighbor of id is Clean (rule 2).
func (m *Mesh) HasCleanNeighbor(id grid.NodeID) bool {
	base := int(id) * m.shape.NumDirs()
	for d := 0; d < m.shape.NumDirs(); d++ {
		if nb := m.neighbors[base+d]; nb != grid.InvalidNode && m.status[nb] == Clean {
			return true
		}
	}
	return false
}

// Snapshot returns a copy of the status array, for tests that compare
// protocol evolution against a reference.
func (m *Mesh) Snapshot() []Status { return append([]Status(nil), m.status...) }

// Restore resets statuses from a snapshot taken on the same mesh.
func (m *Mesh) Restore(snap []Status) {
	if len(snap) != len(m.status) {
		panic("mesh: snapshot from a different mesh")
	}
	m.faulty, m.disabled, m.clean = 0, 0, 0
	copy(m.status, snap)
	for _, s := range m.status {
		m.incr(s)
	}
}

// Reset returns every node to Enabled. The version counter advances (it
// never rewinds) so caches keyed on it — e.g. the oracle router's distance
// field — cannot survive a reset and serve stale topology.
func (m *Mesh) Reset() {
	for i := range m.status {
		m.status[i] = Enabled
		m.cleanAge[i] = 0
	}
	m.faulty, m.disabled, m.clean = 0, 0, 0
	m.version++
}
