// This file is the meshd job-spec layer: the JSON shape clients POST to
// /v1/jobs, its strict decoder, the normalization pass that folds in the
// same defaults the library's Default* configurations use, and the
// canonical cache key. The key contract is the determinism dividend: the
// sweeps produce byte-identical rows at every worker count and every
// shard count, so Workers and Shards are zeroed out of the key — two
// submissions that differ only in fan-out width are the same result and
// hit the same cache entry. Everything else that can reach the rows
// (workload, engine configuration, seed) is in the key; canonicalization
// goes through the Spec struct itself (decode, default, re-marshal), so
// JSON key order, whitespace and omitted-vs-defaulted fields cannot split
// equivalent specs across entries.

package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"ndmesh"
	"ndmesh/internal/traffic"
)

// Spec bounds: a daemon accepts arbitrary network input, so every
// dimension of a job is capped before it can size an allocation. The
// caps are generous for the paper's experiments (65k-node meshes,
// million-step runs) and small enough that a hostile spec cannot wedge
// the host.
const (
	maxDims      = 8
	maxNodes     = 1 << 16
	maxList      = 64
	maxPhase     = 1 << 20
	maxTrials    = 4096
	maxTraceSize = 16 << 20
)

// Job kinds, one per workload family the library runs.
const (
	KindOpenLoop    = "open-loop"
	KindClosedLoop  = "closed-loop"
	KindReplay      = "replay"
	KindReliability = "reliability"
)

// Spec is one job submission: a workload kind plus the option fields of
// the corresponding sweep, under the library's defaults where omitted.
// Field semantics match the ndmesh option structs of the same names.
type Spec struct {
	// Kind selects the workload family: open-loop | closed-loop | replay
	// | reliability.
	Kind string `json:"kind"`

	// Dims/Lambda shape the mesh (defaults: 8x8, λ=1). Replay jobs take
	// the shape from the trace and must leave Dims empty.
	Dims   []int `json:"dims,omitempty"`
	Lambda int   `json:"lambda,omitempty"`

	// Routers/Patterns span the sweep grid (defaults: limited / uniform).
	Routers  []string `json:"routers,omitempty"`
	Patterns []string `json:"patterns,omitempty"`

	// Rates is the open-loop rate axis; Windows the closed-loop window
	// axis; FaultRates the reliability fault-rate axis. Each applies only
	// to its kind.
	Rates      []float64 `json:"rates,omitempty"`
	Windows    []int     `json:"windows,omitempty"`
	FaultRates []float64 `json:"fault_rates,omitempty"`

	// Process is the open-loop arrival process; Rate the per-trial rate
	// of a reliability run; Trials its Monte-Carlo sample size.
	Process string  `json:"process,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Trials  int     `json:"trials,omitempty"`

	// Warmup/Measure/Drain are the phase lengths in steps.
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	Drain   int `json:"drain,omitempty"`

	// Engine-side configuration; see ndmesh.SaturationOptions.
	LinkRate       int     `json:"link_rate,omitempty"`
	NodeCapacity   int     `json:"node_capacity,omitempty"`
	FlightTimeout  int     `json:"flight_timeout,omitempty"`
	RetryBackoff   int     `json:"retry_backoff,omitempty"`
	Bubble         bool    `json:"bubble,omitempty"`
	GridlockWindow int     `json:"gridlock_window,omitempty"`
	Faults         int     `json:"faults,omitempty"`
	FaultInterval  int     `json:"fault_interval,omitempty"`
	Clustered      bool    `json:"clustered,omitempty"`
	FaultStart     int     `json:"fault_start,omitempty"`
	FaultRate      float64 `json:"fault_rate,omitempty"`
	FaultModel     string  `json:"fault_model,omitempty"`
	FaultShape     float64 `json:"fault_shape,omitempty"`
	FaultRepair    float64 `json:"fault_repair,omitempty"`

	// Seed is the run's rng seed (part of the cache key: a different
	// seed is a different result).
	Seed uint64 `json:"seed,omitempty"`

	// Workers/Shards size the fan-out. They are explicitly NOT part of
	// the cache key: every width produces byte-identical rows, so the
	// daemon is free to serve a 1-worker submission from an 8-worker
	// run's cache entry (and does).
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`

	// Trace is the recorded NDWT workload a replay job reproduces
	// (base64 in JSON, per encoding/json []byte convention). Replay only.
	Trace []byte `json:"trace,omitempty"`

	// Probe attaches a live census snapshot served at /debug/census.
	// Probes are stateful accumulators, so a probed job must be a single
	// cell, and reliability jobs (whose sweep has no probe seam) reject
	// it.
	Probe bool `json:"probe,omitempty"`
}

// ParseSpec strictly decodes and canonicalizes a job spec: unknown
// fields, trailing garbage, non-finite numbers and out-of-bounds sizes
// are errors, and the returned spec has all defaults folded in, so two
// equivalent submissions parse to identical structs.
func ParseSpec(data []byte) (*Spec, error) {
	if len(data) > maxTraceSize+4096 {
		return nil, fmt.Errorf("spec body exceeds %d bytes", maxTraceSize+4096)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decoding spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after spec object")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// normalize validates bounds and folds in defaults, making the spec
// canonical: after it returns, equivalent submissions are equal structs.
func (s *Spec) normalize() error {
	switch s.Kind {
	case KindOpenLoop, KindClosedLoop, KindReplay, KindReliability:
	case "":
		return fmt.Errorf("spec needs a kind (open-loop | closed-loop | replay | reliability)")
	default:
		return fmt.Errorf("unknown kind %q (want open-loop | closed-loop | replay | reliability)", s.Kind)
	}
	for _, f := range []float64{s.Rate, s.FaultRate, s.FaultShape, s.FaultRepair} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("non-finite numeric field in spec")
		}
	}
	for _, f := range append(append([]float64{}, s.Rates...), s.FaultRates...) {
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return fmt.Errorf("rate %v out of range", f)
		}
	}
	if len(s.Routers) > maxList || len(s.Patterns) > maxList || len(s.Rates) > maxList ||
		len(s.Windows) > maxList || len(s.FaultRates) > maxList {
		return fmt.Errorf("a spec list exceeds %d entries", maxList)
	}
	// Each phase is bounded individually before summing, so the total
	// cannot overflow into a negative that would slip past the cap.
	if s.Warmup < 0 || s.Measure < 0 || s.Drain < 0 {
		return fmt.Errorf("negative phase length")
	}
	if s.Warmup > maxPhase || s.Measure > maxPhase || s.Drain > maxPhase {
		return fmt.Errorf("a phase length exceeds %d steps", maxPhase)
	}
	if total := s.Warmup + s.Measure + s.Drain; total > maxPhase {
		return fmt.Errorf("total phase length %d exceeds %d steps", total, maxPhase)
	}
	if s.Trials < 0 || s.Trials > maxTrials {
		return fmt.Errorf("trials %d out of range [0, %d]", s.Trials, maxTrials)
	}
	// The remaining engine-side ints all size allocations or schedules
	// somewhere downstream; cap them wholesale.
	for _, v := range []int{s.LinkRate, s.NodeCapacity, s.FlightTimeout, s.RetryBackoff,
		s.GridlockWindow, s.Faults, s.FaultInterval, s.FaultStart} {
		if v < 0 || v > maxPhase {
			return fmt.Errorf("integer field %d out of range [0, %d]", v, maxPhase)
		}
	}
	if len(s.Trace) > maxTraceSize {
		return fmt.Errorf("trace exceeds %d bytes", maxTraceSize)
	}
	if s.Workers < 0 || s.Workers > maxList {
		return fmt.Errorf("workers %d out of range [0, %d]", s.Workers, maxList)
	}
	if s.Shards < 0 || s.Shards > maxList {
		return fmt.Errorf("shards %d out of range [0, %d]", s.Shards, maxList)
	}

	// Replay: the trace is the workload — the mesh shape, the phases and
	// the grid axes come from it, and spec fields that would fight it are
	// rejected rather than silently ignored.
	if s.Kind == KindReplay {
		if len(s.Trace) == 0 {
			return fmt.Errorf("replay spec needs a trace")
		}
		if len(s.Dims) > 0 || len(s.Rates) > 0 || len(s.Windows) > 0 || len(s.FaultRates) > 0 ||
			len(s.Patterns) > 0 || s.Warmup != 0 || s.Measure != 0 || s.Drain != 0 ||
			s.Rate != 0 || s.Trials != 0 || s.Process != "" ||
			s.Faults != 0 || s.FaultRate != 0 {
			return fmt.Errorf("replay specs take dims, phases, workload axes and the fault schedule from the trace; remove them")
		}
		if _, err := traffic.UnmarshalTrace(s.Trace); err != nil {
			return fmt.Errorf("decoding trace: %w", err)
		}
		if len(s.Routers) == 0 {
			s.Routers = []string{"limited"}
		}
		if len(s.Routers) != 1 {
			return fmt.Errorf("replay runs one router (got %d)", len(s.Routers))
		}
		if s.Probe {
			return fmt.Errorf("probe is not supported on replay jobs")
		}
		return nil
	}
	if len(s.Trace) > 0 {
		return fmt.Errorf("only replay specs carry a trace")
	}

	// Shared defaults, mirroring the library's Default* configurations.
	if len(s.Dims) == 0 {
		s.Dims = []int{8, 8}
	}
	if len(s.Dims) > maxDims {
		return fmt.Errorf("mesh has %d dimensions (max %d)", len(s.Dims), maxDims)
	}
	nodes := 1
	for _, d := range s.Dims {
		// The per-radix bound keeps the running product from overflowing
		// before the node cap can catch it.
		if d < 2 || d > maxNodes {
			return fmt.Errorf("mesh dimension %d out of range [2, %d]", d, maxNodes)
		}
		if nodes *= d; nodes > maxNodes {
			return fmt.Errorf("mesh exceeds %d nodes", maxNodes)
		}
	}
	if s.Lambda == 0 {
		s.Lambda = 1
	}
	if s.Lambda < 1 || s.Lambda > 64 {
		return fmt.Errorf("lambda %d out of range [1, 64]", s.Lambda)
	}
	if len(s.Routers) == 0 {
		s.Routers = []string{"limited"}
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []string{"uniform"}
	}
	if s.Measure == 0 {
		s.Warmup, s.Measure, s.Drain = 64, 256, 256
	}
	if s.LinkRate == 0 {
		s.LinkRate = 1
	}

	switch s.Kind {
	case KindOpenLoop:
		if len(s.Windows) > 0 || len(s.FaultRates) > 0 || s.Trials != 0 {
			return fmt.Errorf("open-loop specs take rates, not windows/fault_rates/trials")
		}
		if len(s.Rates) == 0 {
			s.Rates = []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5}
		}
		if s.Process == "" {
			s.Process = "bernoulli"
		}
	case KindClosedLoop:
		if len(s.Rates) > 0 || len(s.FaultRates) > 0 || s.Trials != 0 || s.Process != "" {
			return fmt.Errorf("closed-loop specs take windows, not rates/fault_rates/trials/process")
		}
		if len(s.Windows) == 0 {
			s.Windows = []int{1, 2, 4, 8, 16, 32}
		}
		for _, w := range s.Windows {
			if w < 1 || w > 1<<16 {
				return fmt.Errorf("window %d out of range [1, %d]", w, 1<<16)
			}
		}
	case KindReliability:
		if len(s.Rates) > 0 || len(s.Windows) > 0 {
			return fmt.Errorf("reliability specs take fault_rates, not rates/windows")
		}
		if s.Probe {
			return fmt.Errorf("probe is not supported on reliability jobs")
		}
		if len(s.FaultRates) == 0 {
			s.FaultRates = []float64{0, 0.005, 0.01, 0.02, 0.04}
		}
		if s.Trials == 0 {
			s.Trials = 16
		}
		if s.Rate == 0 {
			s.Rate = 0.1
		}
		if s.Process == "" {
			s.Process = "bernoulli"
		}
		if s.FaultModel == "" {
			s.FaultModel = "bernoulli"
		}
	}
	if s.Probe && s.cells() != 1 {
		return fmt.Errorf("a probed job must be a single cell (got %d); probes are stateful accumulators", s.cells())
	}
	return nil
}

// cells returns the job's grid size: one per sweep cell (reliability
// counts cells, not trials), one for a replay.
func (s *Spec) cells() int {
	switch s.Kind {
	case KindOpenLoop:
		return len(s.Patterns) * len(s.Rates) * len(s.Routers)
	case KindClosedLoop:
		return len(s.Patterns) * len(s.Windows) * len(s.Routers)
	case KindReliability:
		return len(s.Patterns) * len(s.FaultRates) * len(s.Routers)
	default:
		return 1
	}
}

// Key returns the spec's canonical cache key. Workers and Shards are
// zeroed first — the determinism contract makes every fan-out width the
// same bytes — then the normalized struct is marshaled in declaration
// order and hashed. Two submissions with reordered JSON keys, different
// whitespace, or omitted-vs-explicit defaults share a key; any change
// that can reach the rows (including the seed) splits it.
func (s *Spec) Key() string {
	c := *s
	c.Workers = 0
	c.Shards = 0
	data, err := json.Marshal(&c)
	if err != nil {
		// A normalized spec is always marshalable (non-finite floats were
		// rejected); this is unreachable but must not fail open into key
		// collisions.
		panic(fmt.Sprintf("server: marshaling canonical spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// saturationOptions converts an open-loop spec into the library's sweep
// options (hooks left nil; the runner wires Pool/Emit/Cancel/Probe).
func (s *Spec) saturationOptions() ndmesh.SaturationOptions {
	return ndmesh.SaturationOptions{
		Dims: s.Dims, Lambda: s.Lambda,
		Routers: s.Routers, Patterns: s.Patterns, Rates: s.Rates,
		Process: s.Process,
		Warmup:  s.Warmup, Measure: s.Measure, Drain: s.Drain,
		LinkRate: s.LinkRate, NodeCapacity: s.NodeCapacity,
		FlightTimeout: s.FlightTimeout, RetryBackoff: s.RetryBackoff,
		Bubble: s.Bubble, GridlockWindow: s.GridlockWindow,
		Faults: s.Faults, FaultInterval: s.FaultInterval,
		Clustered: s.Clustered, FaultStart: s.FaultStart,
		FaultRate: s.FaultRate, FaultModel: s.FaultModel,
		FaultShape: s.FaultShape, FaultRepair: s.FaultRepair,
		Workers: s.Workers, Shards: s.Shards,
	}
}

// closedLoopOptions converts a closed-loop spec into sweep options.
func (s *Spec) closedLoopOptions() ndmesh.ClosedLoopOptions {
	return ndmesh.ClosedLoopOptions{
		Dims: s.Dims, Lambda: s.Lambda,
		Routers: s.Routers, Patterns: s.Patterns, Windows: s.Windows,
		Warmup: s.Warmup, Measure: s.Measure, Drain: s.Drain,
		LinkRate: s.LinkRate, NodeCapacity: s.NodeCapacity,
		FlightTimeout: s.FlightTimeout, RetryBackoff: s.RetryBackoff,
		Bubble: s.Bubble, GridlockWindow: s.GridlockWindow,
		Faults: s.Faults, FaultInterval: s.FaultInterval,
		Clustered: s.Clustered, FaultStart: s.FaultStart,
		FaultRate: s.FaultRate, FaultModel: s.FaultModel,
		FaultShape: s.FaultShape, FaultRepair: s.FaultRepair,
		Workers: s.Workers, Shards: s.Shards,
	}
}

// reliabilityOptions converts a reliability spec into sweep options.
func (s *Spec) reliabilityOptions() ndmesh.ReliabilityOptions {
	return ndmesh.ReliabilityOptions{
		Dims: s.Dims, Lambda: s.Lambda,
		Routers: s.Routers, Patterns: s.Patterns, FaultRates: s.FaultRates,
		FaultModel: s.FaultModel, FaultShape: s.FaultShape,
		FaultRepair: s.FaultRepair, Clustered: s.Clustered,
		Trials: s.Trials, Rate: s.Rate, Process: s.Process,
		Warmup: s.Warmup, Measure: s.Measure, Drain: s.Drain,
		LinkRate: s.LinkRate, NodeCapacity: s.NodeCapacity,
		FlightTimeout: s.FlightTimeout, RetryBackoff: s.RetryBackoff,
		Bubble: s.Bubble, GridlockWindow: s.GridlockWindow,
		Workers: s.Workers, Shards: s.Shards,
	}
}

// loadOptions converts a replay spec into the single-run options. The
// trace was validated at parse time; engine-side fields follow the
// library's replay-inheritance rules.
func (s *Spec) loadOptions(tr *traffic.Trace) ndmesh.LoadOptions {
	return ndmesh.LoadOptions{
		Router:   s.Routers[0],
		Lambda:   s.Lambda,
		LinkRate: s.LinkRate, NodeCapacity: s.NodeCapacity,
		FlightTimeout: s.FlightTimeout, RetryBackoff: s.RetryBackoff,
		Bubble: s.Bubble, GridlockWindow: s.GridlockWindow,
		Shards: s.Shards,
		Seed:   s.Seed,
		Replay: tr,
	}
}
