// This file is the meshd streaming layer: the per-kind row encodings and
// the sequencer that turns completion-order Emit callbacks back into
// index order. The sweeps call Emit from worker goroutines as cells
// finish — cell 7 may land before cell 2 — but each call carries its cell
// index, and re-sequencing by index reproduces the batch output byte for
// byte. That identity is the whole point: a streamed response, its cached
// replica and a batch run are the same bytes, which the e2e tests diff
// whole.

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ndmesh/internal/traffic"
)

// ReplayRow is the single NDJSON row a replay job streams: the router it
// ran under and the replayed load point.
type ReplayRow struct {
	Router string            `json:"router"`
	Point  traffic.LoadPoint `json:"point"`
}

// encodeNDJSON renders one row as a newline-terminated JSON line.
// json.Marshal on the row structs cannot fail (no non-finite floats
// survive a run, no unmarshalable field types), so errors are programmer
// errors and panic.
func encodeNDJSON(row any) []byte {
	data, err := json.Marshal(row)
	if err != nil {
		panic(fmt.Sprintf("server: encoding row: %v", err))
	}
	return append(data, '\n')
}

// sequencer restores index order over out-of-order (index, bytes) pairs:
// push buffers a row, and every row that becomes contiguous with the
// prefix already written flushes immediately to the sink. Safe for
// concurrent push calls (the sweeps emit from parallel workers); the
// sink is only ever written under the sequencer's lock.
type sequencer struct {
	mu      sync.Mutex
	sink    io.Writer
	flush   func()
	next    int
	pending map[int][]byte
	err     error
}

func newSequencer(sink io.Writer, flush func()) *sequencer {
	return &sequencer{sink: sink, flush: flush, pending: make(map[int][]byte)}
}

// push hands the sequencer row index i. Rows write out as soon as they
// extend the contiguous prefix; later rows wait buffered. Write errors
// (client went away mid-stream) latch and swallow the rest.
func (q *sequencer) push(i int, row []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending[i] = row
	flushed := false
	for {
		next, ok := q.pending[q.next]
		if !ok {
			break
		}
		delete(q.pending, q.next)
		q.next++
		if q.err != nil {
			continue
		}
		if _, err := q.sink.Write(next); err != nil {
			q.err = err
			continue
		}
		flushed = true
	}
	if flushed && q.flush != nil {
		q.flush()
	}
}

// flushErr reports the first sink write error, if any.
func (q *sequencer) flushErr() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}
