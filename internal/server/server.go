// Package server is the meshd daemon's service layer: a long-running HTTP
// front over the ndmesh experiment library. It owns a shared EnginePool of
// warm, Reset-recycled simulations, accepts JSON job specs (one per
// workload family: open-loop, closed-loop, trace replay, reliability),
// runs them through the library's parallel sweep machinery under a bounded
// admission queue, and streams result rows incrementally as cells complete
// — NDJSON by default, the canonical open-loop CSV on request.
//
// Three contracts, inherited from the library and pinned by this package's
// tests, make the service shape work:
//
//   - Byte identity: a streamed response is byte-identical to the batch
//     sweep's rows at every worker and shard count. The sweeps emit rows
//     in completion order tagged with cell indices; the sequencer restores
//     index order, so streaming costs nothing in reproducibility.
//   - Cacheability: because the bytes depend only on the canonical spec
//     and seed, completed bodies are cached whole (spec key + format). A
//     repeat submission is served from memory without acquiring an engine.
//   - Clean recycling: every run returns its simulations to the pool
//     clean (the deferred-cleanup contract), so cancellation mid-stream or
//     shutdown mid-job cannot poison a later job's engine.
//
// Jobs are synchronous: the POST that submits a job streams its rows.
// GET /v1/jobs and /v1/jobs/{id} expose the registry; /debug/census the
// pool, cache and live-probe state.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/probe"
	"ndmesh/internal/traffic"
)

// Config sizes the daemon's bounded resources. Zero values take the
// defaults noted on each field.
type Config struct {
	// MaxConcurrent is how many jobs may run engines at once (default 2).
	MaxConcurrent int
	// MaxQueue is how many admitted jobs may wait for a run slot before
	// submissions are refused with 503 (default 8).
	MaxQueue int
	// CacheEntries/CacheBytes bound the result cache (defaults 256
	// bodies / 64 MiB); either <= 0 after defaulting disables it — set a
	// negative value to do that explicitly.
	CacheEntries int
	CacheBytes   int
	// PoolIdle caps the warm simulations retained per mesh shape
	// (default 8).
	PoolIdle int
	// MaxWorkers caps any single job's sweep fan-out (default
	// GOMAXPROCS). Jobs asking for more are clamped, not refused — the
	// width cannot change their bytes.
	MaxWorkers int
}

func (c *Config) fill() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.PoolIdle == 0 {
		c.PoolIdle = 8
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
}

// Job states reported by the registry.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
	StateRefused  = "refused"
)

// JobStatus is the registry's view of one submission.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Cells is the job's grid size; Rows how many have streamed so far.
	Cells int `json:"cells"`
	Rows  int `json:"rows"`
	// Cache is "hit" when the response was served from the result cache
	// without touching an engine, else "miss".
	Cache string `json:"cache"`
	Error string `json:"error,omitempty"`
}

type job struct {
	mu     sync.Mutex
	status JobStatus
}

func (j *job) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	j.mu.Unlock()
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Server is the meshd daemon core: engine pool, result cache, job
// registry and admission control, independent of any net.Listener so
// tests drive it through httptest.
type Server struct {
	cfg   Config
	pool  *ndmesh.EnginePool
	cache *resultCache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job IDs in admission order (the list endpoint's order)
	nextID   int
	queued   int
	draining bool

	sem       chan struct{}
	force     chan struct{}
	forceOnce sync.Once
	wg        sync.WaitGroup

	censusMu  sync.Mutex
	censusJob string
	census    *probe.Snapshot
}

// New builds a server with cfg's bounds (zero fields defaulted).
func New(cfg Config) *Server {
	cfg.fill()
	return &Server{
		cfg:   cfg,
		pool:  ndmesh.NewEnginePool(cfg.PoolIdle),
		cache: newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		jobs:  make(map[string]*job),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		force: make(chan struct{}),
	}
}

// Pool exposes the engine pool for tests and the census endpoint.
func (s *Server) Pool() *ndmesh.EnginePool { return s.pool }

// CacheStats exposes the result cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// BeginShutdown stops admitting jobs: subsequent submissions get 503.
// In-flight jobs keep running — pair with http.Server.Shutdown, which
// waits for their streaming handlers to return (the graceful drain).
func (s *Server) BeginShutdown() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// CancelAll force-cancels every running and queued job: their sweeps
// abort with ErrCanceled at the next poll and their engines return to
// the pool clean. The escalation path when a drain deadline passes.
func (s *Server) CancelAll() {
	s.forceOnce.Do(func() { close(s.force) })
}

// Wait blocks until every admitted job's handler has finished.
func (s *Server) Wait() { s.wg.Wait() }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /debug/census", s.handleCensus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// register creates a job record and returns it with its ID.
func (s *Server) register(spec *Spec) (*job, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := &job{status: JobStatus{
		ID: id, Kind: spec.Kind, State: StateQueued,
		Cells: spec.cells(), Cache: "miss",
	}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j, id
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTraceSize+4096+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "ndjson":
		format = "ndjson"
	case "csv":
		if spec.Kind != KindOpenLoop {
			http.Error(w, "format=csv is defined for open-loop jobs only", http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want ndjson | csv)", format), http.StatusBadRequest)
		return
	}

	j, id := s.register(spec)
	key := spec.Key() + ":" + format
	contentType := "application/x-ndjson"
	if format == "csv" {
		contentType = "text/csv"
	}

	// Cache first: a hit serves the stored bytes without acquiring an
	// engine (or even a run slot) — the determinism dividend.
	if cached := s.cache.get(key); cached != nil {
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Meshd-Job", id)
		w.Header().Set("X-Meshd-Cache", "hit")
		j.update(func(st *JobStatus) {
			st.State = StateDone
			st.Cache = "hit"
			st.Rows = st.Cells
		})
		_, _ = w.Write(cached)
		return
	}

	// Admission: bounded queue in front of the run slots. Refusal is a
	// 503 before any streaming starts, so clients can retry elsewhere.
	s.mu.Lock()
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		j.update(func(st *JobStatus) {
			st.State = StateRefused
			st.Error = "admission queue full"
		})
		http.Error(w, "admission queue full", http.StatusServiceUnavailable)
		return
	}
	s.queued++
	s.mu.Unlock()
	s.wg.Add(1)
	defer s.wg.Done()
	ctx := r.Context()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.admitDone()
		j.update(func(st *JobStatus) {
			st.State = StateCanceled
			st.Error = "canceled while queued"
		})
		return
	case <-s.force:
		s.admitDone()
		j.update(func(st *JobStatus) {
			st.State = StateCanceled
			st.Error = "server canceled all jobs"
		})
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	s.admitDone()
	defer func() { <-s.sem }()

	canceled := func() bool {
		select {
		case <-s.force:
			return true
		default:
		}
		return ctx.Err() != nil
	}

	j.update(func(st *JobStatus) { st.State = StateRunning })
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Meshd-Job", id)
	w.Header().Set("X-Meshd-Cache", "miss")

	// Stream to the client and into a replica buffer at once; only a
	// complete, successful replica enters the cache.
	var replica bytes.Buffer
	flusher, _ := w.(http.Flusher)
	flush := func() {}
	if flusher != nil {
		flush = flusher.Flush
	}
	sink := io.MultiWriter(w, &replica)
	seq := newSequencer(sink, flush)
	if format == "csv" {
		// The header goes out before any cell can emit, so writing it
		// around the sequencer is race-free.
		header := cliutil.CSVHeader(cliutil.OpenLoopHeader())
		if _, err := sink.Write([]byte(header)); err != nil {
			j.update(func(st *JobStatus) { st.State = StateFailed; st.Error = err.Error() })
			return
		}
	}

	runErr := s.run(spec, format, seq, j, canceled)

	switch {
	case runErr == nil:
		if seq.flushErr() == nil {
			s.cache.put(key, append([]byte(nil), replica.Bytes()...))
			j.update(func(st *JobStatus) { st.State = StateDone })
		} else {
			j.update(func(st *JobStatus) {
				st.State = StateFailed
				st.Error = "client went away mid-stream"
			})
		}
	case errors.Is(runErr, ndmesh.ErrCanceled):
		j.update(func(st *JobStatus) {
			st.State = StateCanceled
			st.Error = runErr.Error()
		})
		if format == "ndjson" && seq.flushErr() == nil {
			_, _ = sink.Write(encodeNDJSON(map[string]string{"error": runErr.Error()}))
		}
	default:
		j.update(func(st *JobStatus) {
			st.State = StateFailed
			st.Error = runErr.Error()
		})
		if format == "ndjson" && seq.flushErr() == nil {
			_, _ = sink.Write(encodeNDJSON(map[string]string{"error": runErr.Error()}))
		}
	}
	flush()
}

// admitDone releases the admission-queue slot taken in handleSubmit.
func (s *Server) admitDone() {
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
}

// run executes the spec's workload with the server's pool, streaming
// each row through the sequencer and counting it on the job record.
func (s *Server) run(spec *Spec, format string, seq *sequencer, j *job, canceled func() bool) error {
	workers := spec.Workers
	if workers == 0 || workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	countRow := func() {
		j.update(func(st *JobStatus) { st.Rows++ })
	}
	var snap *probe.Snapshot
	if spec.Probe {
		snap = &probe.Snapshot{}
		s.censusMu.Lock()
		s.censusJob = j.snapshot().ID
		s.census = snap
		s.censusMu.Unlock()
	}

	switch spec.Kind {
	case KindOpenLoop:
		opt := spec.saturationOptions()
		opt.Pool = s.pool
		opt.Cancel = canceled
		if snap != nil {
			opt.Probe = snap
		}
		if format == "csv" {
			opt.Emit = func(i int, row ndmesh.SaturationRow) {
				seq.push(i, []byte(cliutil.CSVLine(cliutil.OpenLoopCells(row))))
				countRow()
			}
		} else {
			opt.Emit = func(i int, row ndmesh.SaturationRow) {
				seq.push(i, encodeNDJSON(row))
				countRow()
			}
		}
		_, err := ndmesh.SaturationSweepWorkers(opt, spec.Seed, workers)
		return err
	case KindClosedLoop:
		opt := spec.closedLoopOptions()
		opt.Pool = s.pool
		opt.Cancel = canceled
		if snap != nil {
			opt.Probe = snap
		}
		opt.Emit = func(i int, row ndmesh.ClosedLoopRow) {
			seq.push(i, encodeNDJSON(row))
			countRow()
		}
		_, err := ndmesh.ClosedLoopSweepWorkers(opt, spec.Seed, workers)
		return err
	case KindReliability:
		opt := spec.reliabilityOptions()
		opt.Pool = s.pool
		opt.Cancel = canceled
		opt.Emit = func(i int, row ndmesh.ReliabilityRow) {
			seq.push(i, encodeNDJSON(row))
			countRow()
		}
		_, err := ndmesh.ReliabilitySweepWorkers(opt, spec.Seed, workers)
		return err
	case KindReplay:
		tr, err := traffic.UnmarshalTrace(spec.Trace)
		if err != nil {
			return err
		}
		opt := spec.loadOptions(tr)
		opt.Pool = s.pool
		opt.Cancel = canceled
		pt, err := ndmesh.LoadRun(opt)
		if err != nil {
			return err
		}
		seq.push(0, encodeNDJSON(ReplayRow{Router: opt.Router, Point: pt}))
		countRow()
		return nil
	default:
		return fmt.Errorf("unreachable kind %q", spec.Kind)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		statuses = append(statuses, j.snapshot())
	}
	writeJSON(w, map[string]any{"jobs": statuses})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, j.snapshot())
}

// censusView is the /debug/census payload: pool and cache counters plus
// the most recently probed job's live rollup.
type censusView struct {
	Pool  ndmesh.PoolStats `json:"pool"`
	Cache CacheStats       `json:"cache"`
	Probe *probeView       `json:"probe,omitempty"`
}

type probeView struct {
	Job    string              `json:"job"`
	Census probe.SnapshotState `json:"census"`
}

func (s *Server) handleCensus(w http.ResponseWriter, r *http.Request) {
	view := censusView{Pool: s.pool.Stats(), Cache: s.cache.Stats()}
	s.censusMu.Lock()
	if s.census != nil {
		view.Probe = &probeView{Job: s.censusJob, Census: s.census.State()}
	}
	s.censusMu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	_, _ = io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data := encodeNDJSON(v)
	_, _ = w.Write(data)
}
