package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/traffic"
)

// submit POSTs a spec and returns the response with its full body read.
func submit(t testing.TB, ts *httptest.Server, query, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// e2eWidths is the fan-out matrix every workload kind is streamed at:
// serial, a fixed parallel width, and whatever the host offers. The
// expected bytes are computed ONCE (serial, unsharded) — the test's
// teeth are that every width streams those same bytes.
func e2eWidths() [][2]int {
	g := runtime.GOMAXPROCS(0)
	return [][2]int{{1, 1}, {2, 2}, {g, g}}
}

// TestE2EOpenLoop streams an E19 grid over HTTP at every width and diffs
// the NDJSON body against the batch sweep's rows, byte for byte.
func TestE2EOpenLoop(t *testing.T) {
	base := `{"kind":"open-loop","dims":[4,4],"patterns":["uniform","transpose"],"rates":[0.05,0.2],"warmup":8,"measure":24,"drain":32,"node_capacity":4,"seed":42`
	spec, err := ParseSpec([]byte(base + `}`))
	if err != nil {
		t.Fatal(err)
	}
	opt := spec.saturationOptions()
	rows, err := ndmesh.SaturationSweepWorkers(opt, spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range rows {
		want.Write(encodeNDJSON(r))
	}

	for _, wd := range e2eWidths() {
		t.Run(fmt.Sprintf("workers=%d,shards=%d", wd[0], wd[1]), func(t *testing.T) {
			// A fresh server per width: the cache would otherwise serve
			// later widths from the first run and never touch an engine.
			srv := New(Config{MaxConcurrent: 2})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			body := fmt.Sprintf(`%s,"workers":%d,"shards":%d}`, base, wd[0], wd[1])
			resp, got := submit(t, ts, "", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if h := resp.Header.Get("X-Meshd-Cache"); h != "miss" {
				t.Fatalf("X-Meshd-Cache = %q, want miss", h)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("streamed body differs from batch rows\n got: %s\nwant: %s", got, want.Bytes())
			}
			if err := srv.Pool().VerifyClean(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2EOpenLoopCSV diffs the daemon's CSV stream against the exact
// bytes loadgen's -csv table emits for the same sweep — the shared
// cliutil formatting is what the CI smoke job's whole-file diff rides on.
func TestE2EOpenLoopCSV(t *testing.T) {
	body := `{"kind":"open-loop","dims":[4,4],"rates":[0.05,0.2],"warmup":8,"measure":24,"drain":32,"seed":7}`
	spec, err := ParseSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ndmesh.SaturationSweepWorkers(spec.saturationOptions(), spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := cliutil.OpenLoopTable("", rows).CSV()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, got := submit(t, ts, "?format=csv", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if string(got) != want {
		t.Fatalf("CSV stream differs from loadgen's table:\n got: %q\nwant: %q", got, want)
	}

	// CSV is defined for the open-loop table only.
	resp, _ = submit(t, ts, "?format=csv", `{"kind":"closed-loop"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("closed-loop CSV got status %d, want 400", resp.StatusCode)
	}
}

// TestE2EClosedLoop covers the E21 workload kind at every width.
func TestE2EClosedLoop(t *testing.T) {
	base := `{"kind":"closed-loop","dims":[4,4],"windows":[1,2,4],"warmup":8,"measure":24,"drain":32,"seed":42`
	spec, err := ParseSpec([]byte(base + `}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ndmesh.ClosedLoopSweepWorkers(spec.closedLoopOptions(), spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range rows {
		want.Write(encodeNDJSON(r))
	}
	for _, wd := range e2eWidths() {
		t.Run(fmt.Sprintf("workers=%d,shards=%d", wd[0], wd[1]), func(t *testing.T) {
			srv := New(Config{MaxConcurrent: 2})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp, got := submit(t, ts, "", fmt.Sprintf(`%s,"workers":%d,"shards":%d}`, base, wd[0], wd[1]))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatal("streamed closed-loop body differs from batch rows")
			}
			if err := srv.Pool().VerifyClean(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2EReliability covers the E23 workload kind: per-cell rows stream
// as their last Monte-Carlo trial lands, still in index order, still the
// batch bytes.
func TestE2EReliability(t *testing.T) {
	base := `{"kind":"reliability","dims":[4,4],"fault_rates":[0,0.02],"trials":4,"rate":0.1,"warmup":8,"measure":24,"drain":32,"flight_timeout":16,"seed":42`
	spec, err := ParseSpec([]byte(base + `}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ndmesh.ReliabilitySweepWorkers(spec.reliabilityOptions(), spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range rows {
		want.Write(encodeNDJSON(r))
	}
	for _, wd := range e2eWidths() {
		t.Run(fmt.Sprintf("workers=%d,shards=%d", wd[0], wd[1]), func(t *testing.T) {
			srv := New(Config{MaxConcurrent: 2})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp, got := submit(t, ts, "", fmt.Sprintf(`%s,"workers":%d,"shards":%d}`, base, wd[0], wd[1]))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Fatal("streamed reliability body differs from batch rows")
			}
			if err := srv.Pool().VerifyClean(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2EReplay records a trace, replays it through the daemon at every
// shard width, and diffs against the library's replayed LoadPoint.
func TestE2EReplay(t *testing.T) {
	trace := recordedTrace(t)
	tr, err := traffic.UnmarshalTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ndmesh.LoadRun(ndmesh.LoadOptions{Router: "limited", Replay: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeNDJSON(ReplayRow{Router: "limited", Point: pt})

	for _, wd := range e2eWidths() {
		t.Run(fmt.Sprintf("shards=%d", wd[1]), func(t *testing.T) {
			srv := New(Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			body, err := json.Marshal(map[string]any{"kind": "replay", "trace": trace, "shards": wd[1]})
			if err != nil {
				t.Fatal(err)
			}
			resp, got := submit(t, ts, "", string(body))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("replayed body differs:\n got: %s\nwant: %s", got, want)
			}
			if err := srv.Pool().VerifyClean(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestE2EProbeAndRegistry drives a probed single-cell job, then checks
// the registry and census endpoints: the job reports done with its rows
// counted, and /debug/census carries the run's census rollup plus pool
// and cache counters.
func TestE2EProbeAndRegistry(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := submit(t, ts, "", `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":3,"probe":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Meshd-Job")
	if id == "" {
		t.Fatal("no X-Meshd-Job header")
	}

	jr, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(jr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if st.State != StateDone || st.Rows != 1 || st.Cells != 1 || st.Cache != "miss" {
		t.Fatalf("job status = %+v", st)
	}

	cr, err := http.Get(ts.URL + "/debug/census")
	if err != nil {
		t.Fatal(err)
	}
	var view censusView
	if err := json.NewDecoder(cr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if view.Probe == nil || view.Probe.Job != id {
		t.Fatalf("census probe = %+v, want job %s", view.Probe, id)
	}
	if view.Probe.Census.Injected == 0 || view.Probe.Census.Delivered == 0 {
		t.Fatalf("probed census saw no traffic: %+v", view.Probe.Census)
	}
	if view.Pool.Built == 0 {
		t.Fatalf("pool stats report no engine built: %+v", view.Pool)
	}

	lr, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("job list = %+v", list.Jobs)
	}
}

// TestE2EBadRequests pins the submission guardrails.
func TestE2EBadRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for name, tc := range map[string]struct{ query, body string }{
		"bad-spec":    {"", `{"kind":"nope"}`},
		"bad-format":  {"?format=xml", `{"kind":"open-loop"}`},
		"not-json":    {"", `hello`},
		"unknown-key": {"", `{"kind":"open-loop","turbo":true}`},
	} {
		t.Run(name, func(t *testing.T) {
			resp, _ := submit(t, ts, tc.query, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	// Draining server refuses new work.
	srv.BeginShutdown()
	resp, _ := submit(t, ts, "", `{"kind":"open-loop"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit got %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz got %d, want 503", hr.StatusCode)
	}
}
