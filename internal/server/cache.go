// This file is the meshd result cache: completed response bodies keyed by
// the canonical spec key plus the response format. It exists because the
// determinism contract makes whole responses cacheable at all — a job's
// bytes depend only on its canonical spec and seed, never on fan-out
// width, pool temperature or scheduling, so a stored body IS the result,
// not a stale approximation of it. A hit serves the bytes without
// touching an engine (the cache tests pin that via pool counters).
//
// Only complete, successful bodies are stored: a canceled or failed
// stream never enters the cache, so a hit can never replay a truncation.

package server

import (
	"container/list"
	"sync"
)

// CacheStats counts the result cache's traffic for /debug/census.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int    `json:"bytes"`
}

// resultCache is a mutex-guarded LRU over response bodies, bounded by
// entry count and total byte size.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int
	bytes      int
	order      *list.List // front = most recent; values are *cacheEntry
	entries    map[string]*list.Element
	stats      CacheStats
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds an LRU bounded to maxEntries bodies and maxBytes
// total; either bound <= 0 disables the cache entirely (every lookup
// misses, nothing is stored).
func newResultCache(maxEntries, maxBytes int) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
	}
}

func (c *resultCache) enabled() bool { return c.maxEntries > 0 && c.maxBytes > 0 }

// get returns the cached body for key, or nil. The caller must not
// mutate the returned slice (it is shared across hits).
func (c *resultCache) get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).body
}

// put stores a complete body under key, evicting least-recently-used
// entries to fit. Bodies larger than the byte bound are not stored.
func (c *resultCache) put(key string, body []byte) {
	if !c.enabled() || len(body) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Deterministic results: an overwrite carries identical bytes, so
		// keep the existing entry (and its LRU position).
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += len(body)
	for c.order.Len() > c.maxEntries || c.bytes > c.maxBytes {
		el := c.order.Back()
		ent := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.bytes -= len(ent.body)
		c.stats.Evictions++
	}
}

// Stats snapshots the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	s.Bytes = c.bytes
	return s
}
