package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestCacheHitServesWithoutEngine is the cache's core contract: a repeat
// submission returns byte-identical bytes AND never touches the engine
// pool — Acquired and Built are frozen across the hit, observable through
// the pool counters.
func TestCacheHitServesWithoutEngine(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := `{"kind":"open-loop","dims":[4,4],"rates":[0.05,0.2],"warmup":8,"measure":24,"drain":32,"seed":42}`

	resp, first := submit(t, ts, "", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Meshd-Cache") != "miss" {
		t.Fatalf("first submission: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Meshd-Cache"))
	}
	before := srv.Pool().Stats()

	resp, second := submit(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Meshd-Cache"); h != "hit" {
		t.Fatalf("X-Meshd-Cache = %q, want hit", h)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit body differs from the original stream")
	}
	after := srv.Pool().Stats()
	if after.Acquired != before.Acquired || after.Built != before.Built {
		t.Fatalf("cache hit touched the pool: before %+v, after %+v", before, after)
	}
	cs := srv.CacheStats()
	if cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit, 1 entry", cs)
	}
}

// TestCacheCanonicalization pins what hits and what misses over HTTP:
// key order, whitespace, explicit defaults and fan-out width changes all
// hit; seed or option changes miss.
func TestCacheCanonicalization(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, want := submit(t, ts, "", `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9}`)

	hits := map[string]string{
		"key-order":        `{"seed":9,"drain":32,"measure":24,"warmup":8,"rates":[0.2],"dims":[4,4],"kind":"open-loop"}`,
		"whitespace":       "{ \"kind\" : \"open-loop\",\n \"dims\": [4,4], \"rates\": [0.2], \"warmup\": 8, \"measure\": 24, \"drain\": 32, \"seed\": 9 }",
		"explicit-default": `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9,"lambda":1,"link_rate":1}`,
		"workers-change":   `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9,"workers":2}`,
		"shards-change":    `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9,"shards":2}`,
	}
	for name, body := range hits {
		t.Run("hit/"+name, func(t *testing.T) {
			resp, got := submit(t, ts, "", body)
			if h := resp.Header.Get("X-Meshd-Cache"); h != "hit" {
				t.Fatalf("X-Meshd-Cache = %q, want hit", h)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("hit body differs from original")
			}
		})
	}

	misses := map[string]string{
		"seed":   `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":10}`,
		"rate":   `{"kind":"open-loop","dims":[4,4],"rates":[0.35],"warmup":8,"measure":24,"drain":32,"seed":9}`,
		"lambda": `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9,"lambda":2}`,
		"faults": `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9,"faults":1}`,
	}
	for name, body := range misses {
		t.Run("miss/"+name, func(t *testing.T) {
			resp, _ := submit(t, ts, "", body)
			if h := resp.Header.Get("X-Meshd-Cache"); h != "miss" {
				t.Fatalf("X-Meshd-Cache = %q, want miss", h)
			}
		})
	}
}

// TestCacheFormatKeyedSeparately: the same spec in NDJSON and CSV are
// different response bodies and must occupy different cache entries.
func TestCacheFormatKeyedSeparately(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := `{"kind":"open-loop","dims":[4,4],"rates":[0.2],"warmup":8,"measure":24,"drain":32,"seed":9}`

	submit(t, ts, "", body)
	resp, csvBody := submit(t, ts, "?format=csv", body)
	if h := resp.Header.Get("X-Meshd-Cache"); h != "miss" {
		t.Fatalf("CSV after NDJSON: X-Meshd-Cache = %q, want miss", h)
	}
	resp, csvAgain := submit(t, ts, "?format=csv", body)
	if h := resp.Header.Get("X-Meshd-Cache"); h != "hit" {
		t.Fatalf("repeat CSV: X-Meshd-Cache = %q, want hit", h)
	}
	if !bytes.Equal(csvBody, csvAgain) {
		t.Fatal("cached CSV body differs")
	}
}

// TestResultCacheEviction exercises the LRU bounds directly: the entry
// bound evicts oldest-first, the byte bound refuses oversized bodies.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2, 100)
	c.put("a", bytes.Repeat([]byte{'a'}, 40))
	c.put("b", bytes.Repeat([]byte{'b'}, 40))
	if c.get("a") == nil {
		t.Fatal("a evicted too early")
	}
	// Third entry exceeds the byte bound; "b" is now LRU and must go.
	c.put("c", bytes.Repeat([]byte{'c'}, 40))
	if c.get("b") != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("wrong entry evicted")
	}
	// Oversized bodies never enter.
	c.put("d", bytes.Repeat([]byte{'d'}, 101))
	if c.get("d") != nil {
		t.Fatal("oversized body cached")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Bytes != 80 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// A disabled cache (zero bounds) misses and stores nothing.
	off := newResultCache(0, 0)
	off.put("x", []byte("x"))
	if off.get("x") != nil {
		t.Fatal("disabled cache stored a body")
	}
}
