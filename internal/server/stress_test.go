package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ndmesh"
)

// TestStressConcurrentClients storms the daemon with mixed workload
// kinds from parallel clients (run under -race in CI), then audits the
// aftermath: every successful response for the same submission carries
// identical bytes (cache consistency), every pooled engine is clean, and
// a post-storm run on the recycled engines still matches the batch
// library output byte for byte.
func TestStressConcurrentClients(t *testing.T) {
	srv := New(Config{MaxConcurrent: 4, MaxQueue: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	trace := recordedTrace(t)
	replaySpec, err := json.Marshal(map[string]any{"kind": "replay", "trace": trace})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		`{"kind":"open-loop","dims":[4,4],"rates":[0.05,0.2],"warmup":8,"measure":24,"drain":32,"seed":42,"workers":2}`,
		`{"kind":"closed-loop","dims":[4,4],"windows":[1,2],"warmup":8,"measure":24,"drain":32,"seed":7,"shards":2}`,
		`{"kind":"reliability","dims":[4,4],"fault_rates":[0,0.02],"trials":2,"rate":0.1,"warmup":8,"measure":24,"drain":32,"flight_timeout":16,"seed":3}`,
		string(replaySpec),
	}

	const clients = 8
	const iters = 4
	bodies := make([]map[string][][]byte, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		bodies[c] = make(map[string][][]byte)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				spec := specs[(c+i)%len(specs)]
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					bodies[c][spec] = append(bodies[c][spec], body)
				case http.StatusServiceUnavailable:
					// queue pressure; fine
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}(c)
	}
	wg.Wait()

	// Cache consistency: all successful bodies for one spec are one byte
	// sequence, whether they were computed or served from cache.
	canonical := make(map[string][]byte)
	for c := range bodies {
		for spec, got := range bodies[c] {
			for _, b := range got {
				if want, ok := canonical[spec]; !ok {
					canonical[spec] = b
				} else if !bytes.Equal(b, want) {
					t.Fatalf("divergent bodies for the same spec under concurrency")
				}
			}
		}
	}
	if len(canonical) != len(specs) {
		t.Fatalf("only %d/%d specs completed successfully", len(canonical), len(specs))
	}

	if err := srv.Pool().VerifyClean(); err != nil {
		t.Fatal(err)
	}

	// Engines recycled through the storm still produce the batch bytes.
	spec, err := ParseSpec([]byte(specs[0]))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ndmesh.SaturationSweepWorkers(spec.saturationOptions(), spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range rows {
		want.Write(encodeNDJSON(r))
	}
	if !bytes.Equal(canonical[specs[0]], want.Bytes()) {
		t.Fatal("post-storm open-loop body differs from batch rows")
	}
}

// TestStressMidStreamCancel cancels clients mid-stream: the handler's
// Cancel hook aborts the sweep, the job records canceled, and the
// engines return to the pool clean — then the same spec, resubmitted
// whole, still matches the batch bytes on the recycled engines.
func TestStressMidStreamCancel(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A job long enough that the client's cancellation lands mid-run.
	long := `{"kind":"open-loop","dims":[6,6],"rates":[0.2],"warmup":64,"measure":40000,"drain":256,"seed":5}`
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs", strings.NewReader(long))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			// Streaming has begun; cut the connection mid-body.
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
	// The handlers unwind asynchronously after the connection drops; wait
	// for the registry to settle before auditing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		ids := append([]string(nil), srv.order...)
		srv.mu.Unlock()
		settled := true
		for _, id := range ids {
			srv.mu.Lock()
			st := srv.jobs[id].snapshot()
			srv.mu.Unlock()
			if st.State == StateQueued || st.State == StateRunning {
				settled = false
			}
		}
		if settled && len(ids) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled jobs never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv.Pool().VerifyClean(); err != nil {
		t.Fatal(err)
	}

	// Recycled engines still compute clean results after the aborts.
	short := `{"kind":"open-loop","dims":[6,6],"rates":[0.2],"warmup":16,"measure":48,"drain":64,"seed":5}`
	resp, got := submit(t, ts, "", short)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	spec, err := ParseSpec([]byte(short))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ndmesh.SaturationSweepWorkers(spec.saturationOptions(), spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range rows {
		want.Write(encodeNDJSON(r))
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("post-cancel body differs from batch rows")
	}
}

// TestStressShutdownMidJob force-cancels the server while a long job is
// streaming: the stream terminates with an NDJSON error line, the job
// records canceled, nothing enters the cache, and the pool is clean.
func TestStressShutdownMidJob(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := `{"kind":"open-loop","dims":[6,6],"rates":[0.2],"warmup":64,"measure":100000,"drain":256,"seed":5}`
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(long))
		if err != nil {
			done <- result{}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, body}
	}()

	// Wait for the job to be running, then pull the plug.
	for {
		srv.mu.Lock()
		running := false
		for _, id := range srv.order {
			if srv.jobs[id].snapshot().State == StateRunning {
				running = true
			}
		}
		srv.mu.Unlock()
		if running {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.BeginShutdown()
	srv.CancelAll()
	srv.Wait()

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("streaming job status %d", r.status)
	}
	if !bytes.Contains(r.body, []byte(`"error"`)) {
		t.Fatalf("canceled stream carries no error line: %q", r.body)
	}
	srv.mu.Lock()
	st := srv.jobs[srv.order[0]].snapshot()
	srv.mu.Unlock()
	if st.State != StateCanceled {
		t.Fatalf("job state = %s, want canceled", st.State)
	}
	if cs := srv.CacheStats(); cs.Entries != 0 {
		t.Fatalf("canceled job entered the cache: %+v", cs)
	}
	if err := srv.Pool().VerifyClean(); err != nil {
		t.Fatal(err)
	}
}

// TestStressQueueBound floods a 1-slot server past its admission queue:
// some submissions must be refused with 503 before any streaming begins,
// and the refusals appear in the registry as refused, not failed.
func TestStressQueueBound(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := func(i int) string {
		// Distinct seeds so the cache cannot absorb the flood.
		return fmt.Sprintf(`{"kind":"open-loop","dims":[6,6],"rates":[0.2],"warmup":32,"measure":4000,"drain":64,"seed":%d}`, i)
	}
	const n = 8
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec(i)))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok, refused := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			refused++
		default:
			t.Fatalf("unexpected status %d", s)
		}
	}
	if ok == 0 || refused == 0 {
		t.Fatalf("flood produced %d ok / %d refused; wanted both nonzero", ok, refused)
	}
	if err := srv.Pool().VerifyClean(); err != nil {
		t.Fatal(err)
	}
}
