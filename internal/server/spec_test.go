package server

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ndmesh"
	"ndmesh/internal/traffic"
)

// recordedTrace builds a tiny NDWT trace for replay specs.
func recordedTrace(t testing.TB) []byte {
	t.Helper()
	var tr traffic.Trace
	_, err := ndmesh.LoadRun(ndmesh.LoadOptions{
		Dims: []int{4, 4}, Router: "limited", Pattern: "uniform",
		Rate: 0.1, Warmup: 8, Measure: 24, Drain: 32, Seed: 11,
		Record: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Marshal()
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"kind":"open-loop"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Dims, []int{8, 8}) || s.Lambda != 1 ||
		!reflect.DeepEqual(s.Routers, []string{"limited"}) ||
		!reflect.DeepEqual(s.Patterns, []string{"uniform"}) ||
		len(s.Rates) == 0 || s.Process != "bernoulli" ||
		s.Warmup != 64 || s.Measure != 256 || s.Drain != 256 || s.LinkRate != 1 {
		t.Fatalf("defaults not folded in: %+v", s)
	}
}

func TestParseSpecRejections(t *testing.T) {
	for name, body := range map[string]string{
		"empty":             `{}`,
		"unknown-kind":      `{"kind":"sideways"}`,
		"unknown-field":     `{"kind":"open-loop","bogus":1}`,
		"trailing-data":     `{"kind":"open-loop"}{"kind":"open-loop"}`,
		"not-json":          `kind=open-loop`,
		"negative-phase":    `{"kind":"open-loop","warmup":-1}`,
		"phase-overflow":    `{"kind":"open-loop","warmup":4611686018427387904,"measure":4611686018427387904,"drain":4611686018427387904}`,
		"huge-dim":          `{"kind":"open-loop","dims":[1099511627776,1099511627776]}`,
		"too-many-nodes":    `{"kind":"open-loop","dims":[512,512]}`,
		"too-many-dims":     `{"kind":"open-loop","dims":[2,2,2,2,2,2,2,2,2]}`,
		"dim-too-small":     `{"kind":"open-loop","dims":[1,8]}`,
		"negative-rate":     `{"kind":"open-loop","rates":[-0.1]}`,
		"huge-faults":       `{"kind":"open-loop","faults":1073741824}`,
		"trials-over":       `{"kind":"reliability","trials":5000}`,
		"windows-open-loop": `{"kind":"open-loop","windows":[4]}`,
		"rates-closed-loop": `{"kind":"closed-loop","rates":[0.1]}`,
		"replay-no-trace":   `{"kind":"replay"}`,
		"replay-bad-trace":  `{"kind":"replay","trace":"bm90IGEgdHJhY2U="}`,
		"trace-off-replay":  `{"kind":"open-loop","trace":"AAAA"}`,
		"probe-multi-cell":  `{"kind":"open-loop","rates":[0.1,0.2],"probe":true}`,
		"probe-reliability": `{"kind":"reliability","probe":true}`,
		"bad-lambda":        `{"kind":"open-loop","lambda":1000}`,
		"workers-over":      `{"kind":"open-loop","workers":1000}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(body)); err == nil {
				t.Fatalf("ParseSpec accepted %s", body)
			}
		})
	}
}

func TestParseSpecReplay(t *testing.T) {
	trace := recordedTrace(t)
	body, err := json.Marshal(map[string]any{"kind": "replay", "trace": trace, "seed": 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Routers, []string{"limited"}) || s.cells() != 1 {
		t.Fatalf("replay spec normalized wrong: %+v", s)
	}

	// Workload fields on a replay spec are contradictions, not hints.
	bad, _ := json.Marshal(map[string]any{"kind": "replay", "trace": trace, "measure": 100})
	if _, err := ParseSpec(bad); err == nil {
		t.Fatal("replay spec with its own phases accepted")
	}
}

// TestSpecKeyContract pins the cache-key semantics the daemon's cache
// tests then observe over HTTP: key-order/whitespace insensitivity,
// omitted-vs-explicit defaults merging, Workers/Shards exclusion, and
// splits on anything that can reach the rows.
func TestSpecKeyContract(t *testing.T) {
	key := func(body string) string {
		s, err := ParseSpec([]byte(body))
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", body, err)
		}
		return s.Key()
	}
	base := key(`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9}`)
	same := []string{
		`{"seed":9,"rates":[0.1],"dims":[4,4],"kind":"open-loop"}`,                            // key order
		"{\n  \"kind\": \"open-loop\", \"dims\": [4, 4],\n  \"rates\": [0.1], \"seed\": 9\n}", // whitespace
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"lambda":1}`,                 // explicit default
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"workers":7}`,                // fan-out width
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"shards":3}`,                 // shard width
	}
	for i, body := range same {
		if key(body) != base {
			t.Errorf("equivalent spec %d keyed differently", i)
		}
	}
	different := []string{
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":10}`,             // seed
		`{"kind":"open-loop","dims":[4,4],"rates":[0.2],"seed":9}`,              // workload
		`{"kind":"open-loop","dims":[4,6],"rates":[0.1],"seed":9}`,              // shape
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"lambda":2}`,   // engine config
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"faults":2}`,   // fault overlay
		`{"kind":"open-loop","dims":[4,4],"rates":[0.1],"seed":9,"probe":true}`, // probe attachment
	}
	for i, body := range different {
		if key(body) == base {
			t.Errorf("distinct spec %d shares the base key", i)
		}
	}
}

// TestParseSpecCanonicalIdempotent: re-parsing a canonical spec's own
// marshaling yields the identical struct and key — the property the fuzz
// harness then hammers with arbitrary inputs.
func TestParseSpecCanonicalIdempotent(t *testing.T) {
	for _, body := range []string{
		`{"kind":"open-loop"}`,
		`{"kind":"closed-loop","windows":[1,4],"dims":[4,4]}`,
		`{"kind":"reliability","fault_rates":[0,0.01],"trials":4}`,
	} {
		s, err := ParseSpec([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("canonical form of %s does not re-parse: %v", body, err)
		}
		if !reflect.DeepEqual(s, s2) || s.Key() != s2.Key() {
			t.Fatalf("canonicalization not idempotent for %s", body)
		}
	}
}

// FuzzSpecDecode hammers the decoder with arbitrary bytes: it must never
// panic, never accept a spec it cannot canonicalize idempotently, and
// never produce a spec whose Key diverges from its own round trip. The
// seeded corpus covers every kind and the bound edges; CI runs the
// corpus on every test run and a short fuzz session on top.
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"kind":"open-loop"}`,
		`{"kind":"open-loop","dims":[4,4],"rates":[0.05,0.2],"seed":42,"workers":2,"shards":2}`,
		`{"kind":"closed-loop","windows":[1,2,4],"node_capacity":4,"flight_timeout":32}`,
		`{"kind":"reliability","fault_rates":[0,0.01,0.04],"trials":8,"fault_model":"weibull","fault_shape":1.5}`,
		`{"kind":"replay","trace":"TkRXVA=="}`,
		`{"kind":"open-loop","probe":true,"rates":[0.1]}`,
		`{"kind":"open-loop","warmup":1048576,"measure":1,"drain":0}`,
		`{"kind":"open-loop","dims":[65536]}`,
		`{"kind":"open-loop","rates":[1e308]}`,
		`{"kind":"open-loop","seed":18446744073709551615}`,
		`[1,2,3]`,
		`"open-loop"`,
		strings.Repeat(`{"kind":`, 1000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be fully canonical: marshal → parse is a
		// fixed point, and the cache key survives the round trip.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("canonical spec does not marshal: %v", err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("canonical spec does not re-parse: %v\nspec: %s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("canonicalization not idempotent:\n first: %+v\nsecond: %+v", s, s2)
		}
		if s.Key() != s2.Key() {
			t.Fatal("cache key changed across canonical round trip")
		}
		if c := s.cells(); c < 1 || c > maxList*maxList*maxList {
			t.Fatalf("cells() = %d out of bounds", c)
		}
	})
}
