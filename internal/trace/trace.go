// Package trace provides a cheap ring-buffer event tracer for debugging the
// protocol rounds: labeling transitions, identification walker moves,
// boundary deposits, routing decisions. Tracing is off by default and costs
// a single branch when disabled, so hot loops can trace unconditionally.
package trace

import (
	"fmt"
	"strings"
)

// Event is one traced occurrence.
type Event struct {
	Round int
	Kind  string
	Text  string
}

// Tracer collects events into a fixed-size ring.
type Tracer struct {
	enabled bool
	ring    []Event
	next    int
	total   int
}

// New builds a tracer with the given capacity; capacity <= 0 disables it.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		return &Tracer{}
	}
	return &Tracer{enabled: true, ring: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Emit records an event; fmt.Sprintf formatting is only paid when enabled.
func (t *Tracer) Emit(round int, kind, format string, args ...any) {
	if !t.Enabled() {
		return
	}
	ev := Event{Round: round, Kind: kind, Text: fmt.Sprintf(format, args...)}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
}

// Total returns the number of events emitted (including overwritten ones).
func (t *Tracer) Total() int { return t.total }

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if !t.Enabled() {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dump renders the retained events, one per line.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, ev := range t.Events() {
		fmt.Fprintf(&b, "[%5d] %-10s %s\n", ev.Round, ev.Kind, ev.Text)
	}
	return b.String()
}
