package trace

import (
	"strings"
	"testing"
)

func TestDisabledTracer(t *testing.T) {
	tr := New(0)
	if tr.Enabled() {
		t.Fatal("capacity 0 should disable")
	}
	tr.Emit(1, "x", "costly %d", 42)
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("disabled tracer recorded")
	}
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	nilTr.Emit(1, "x", "ok") // must not panic
}

func TestEmitAndDump(t *testing.T) {
	tr := New(8)
	tr.Emit(1, "label", "node %d", 7)
	tr.Emit(2, "route", "hop")
	if tr.Total() != 2 {
		t.Fatalf("Total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Round != 1 || evs[1].Kind != "route" {
		t.Fatalf("events = %+v", evs)
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "node 7") || !strings.Contains(dump, "route") {
		t.Fatalf("dump = %q", dump)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Emit(i, "k", "e%d", i)
	}
	if tr.Total() != 7 {
		t.Fatalf("Total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d", len(evs))
	}
	// Oldest retained is e4, newest e6, in order.
	if evs[0].Text != "e4" || evs[2].Text != "e6" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
}
