// Package stats provides the measurement plumbing for the experiment
// harness: streaming summaries (Welford), histograms, counters, and an
// aligned plain-text table writer used by cmd/sweep and the benchmarks to
// print the paper-style result rows.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations with O(1) memory
// using Welford's algorithm, tracking count, mean, variance, min and max.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddInt records one integer observation.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// Merge folds another summary into s (parallel reduction).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders "mean ± std [min,max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.0f,%.0f] (n=%d)", s.Mean(), s.Std(), s.Min(), s.Max(), s.n)
}

// Histogram is a fixed-width integer histogram with overflow bucket,
// used for detour and convergence-round distributions.
type Histogram struct {
	width    int
	buckets  []int64
	overflow int64
	total    int64
	sum      int64
}

// NewHistogram builds a histogram with nbuckets buckets of the given width;
// observation v lands in bucket v/width, values beyond the last bucket in
// the overflow bucket. Negative observations clamp to bucket 0.
func NewHistogram(width, nbuckets int) *Histogram {
	if width < 1 {
		width = 1
	}
	if nbuckets < 1 {
		nbuckets = 1
	}
	return &Histogram{width: width, buckets: make([]int64, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.total++
	h.sum += int64(v)
	if v < 0 {
		v = 0
	}
	b := v / h.width
	if b >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[b]++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean of observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an approximate q-quantile (bucket upper edge); q in [0,1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return (i + 1) * h.width
		}
	}
	return len(h.buckets) * h.width
}

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the overflow count.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Percentiles computes exact percentiles from a full sample slice. Used
// where the sample set is small enough to keep (per-trial metrics).
func Percentiles(samples []int, ps ...float64) []int {
	out := make([]int, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]int(nil), samples...)
	sort.Ints(sorted)
	for i, p := range ps {
		idx := int(p * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}

// Table accumulates rows of string cells and writes them with aligned
// columns; the harness uses it to print paper-style result tables.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	colWide []int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title, header: header, colWide: make([]int, len(header))}
	for i, h := range header {
		t.colWide[i] = len(h)
	}
	return t
}

// AddRow appends a row; cells render with %v. Extra cells beyond the header
// width extend the table.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
		for len(t.colWide) <= i {
			t.colWide = append(t.colWide, 0)
		}
		if len(row[i]) > t.colWide[i] {
			t.colWide[i] = len(row[i])
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It always returns a nil error from the
// underlying fmt calls being ignored deliberately; the io.WriterTo signature
// keeps it composable.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(s string) error {
		n, err := io.WriteString(w, s)
		total += int64(n)
		return err
	}
	if t.Title != "" {
		if err := emit("== " + t.Title + " ==\n"); err != nil {
			return total, err
		}
	}
	if err := emit(t.formatRow(t.header) + "\n"); err != nil {
		return total, err
	}
	if err := emit(t.rule() + "\n"); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := emit(t.formatRow(r) + "\n"); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the whole table.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

func (t *Table) formatRow(cells []string) string {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(c)
		if pad := t.colWide[i] - len(c); pad > 0 && i < len(cells)-1 {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	return b.String()
}

func (t *Table) rule() string {
	var b strings.Builder
	for i, w := range t.colWide {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
