package stats

import "math/bits"

// LogHistogram is an HDR-style log-bucketed integer histogram: values below
// logHistBase land in exact unit buckets, larger values in log-linear
// buckets — 64 sub-buckets per power of two — whose relative quantization
// error is bounded by 1/64 (~1.6%, under the 2% the telemetry layer
// promises). Unlike the exact-sample path (Percentiles), memory is fixed
// (~3.7k buckets for the full non-negative int64 range) regardless of how
// many observations stream in, and Add is allocation-free, which is what
// lets a probe keep the full latency distribution of an arbitrarily long
// load run at 0 allocs/op steady state.
type LogHistogram struct {
	counts     []int64
	total, sum int64
	max        int
}

const (
	// logHistBase is the exact range: values in [0, logHistBase) get unit
	// buckets. It is 1<<logHistSubBits.
	logHistBase = 128
	// logHistSubBits fixes 1<<(logHistSubBits-1) = 64 sub-buckets per
	// octave above the exact range: relative error <= 2^-(logHistSubBits-1).
	logHistSubBits = 7
	// logHistBuckets covers every non-negative int64: octaves 7..62 after
	// the 128 exact buckets.
	logHistBuckets = logHistBase + (63-logHistSubBits)*64
)

// NewLogHistogram builds an empty histogram sized for the full non-negative
// int64 range (one ~30 KiB allocation, reused for the histogram's life).
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make([]int64, logHistBuckets)}
}

// logHistIndex maps a value to its bucket. Negative values clamp to 0.
func logHistIndex(v int) int {
	if v < 0 {
		v = 0
	}
	if v < logHistBase {
		return v
	}
	e := bits.Len64(uint64(v)) - 1 // >= logHistSubBits
	shift := e - (logHistSubBits - 1)
	m := v >> shift // in [64, 128)
	return logHistBase + (e-logHistSubBits)*64 + (m - 64)
}

// BucketBounds returns the closed value range [lo, hi] of bucket i.
func (h *LogHistogram) BucketBounds(i int) (lo, hi int) {
	if i < logHistBase {
		return i, i
	}
	oct, off := (i-logHistBase)/64, (i-logHistBase)%64
	shift := oct + 1 // e = logHistSubBits + oct; shift = e - (logHistSubBits-1)
	lo = (64 + off) << shift
	return lo, lo + (1 << shift) - 1
}

// Add records one observation. Negative values clamp to 0.
//
//meshvet:noalloc
func (h *LogHistogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.counts[logHistIndex(v)]++
	h.total++
	h.sum += int64(v)
	if v > h.max {
		h.max = v
	}
}

// Total returns the observation count.
func (h *LogHistogram) Total() int64 { return h.total }

// Max returns the largest observation, exactly (0 when empty).
func (h *LogHistogram) Max() int { return h.max }

// Mean returns the exact mean of observations (the sum is kept exactly).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper edge of the
// bucket holding that rank: exact below 128, within ~1.6% above.
func (h *LogHistogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > target {
			_, hi := h.BucketBounds(i)
			return hi
		}
	}
	return h.max
}

// Buckets calls fn for every non-empty bucket in increasing value order.
func (h *LogHistogram) Buckets(fn func(lo, hi int, count int64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketBounds(i)
		fn(lo, hi, c)
	}
}

// Reset empties the histogram, keeping the bucket array.
func (h *LogHistogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}
