package stats

import (
	"testing"
)

// TestLogHistExactRange pins that values below 128 land in unit buckets:
// every quantile of a sub-128 population is exact.
func TestLogHistExactRange(t *testing.T) {
	h := NewLogHistogram()
	for v := 0; v < 128; v++ {
		h.Add(v)
	}
	if h.Total() != 128 {
		t.Fatalf("total %d, want 128", h.Total())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != 64 {
		t.Fatalf("q50 = %d, want 64", got)
	}
	if got := h.Quantile(1); got != 127 {
		t.Fatalf("q100 = %d, want 127", got)
	}
	if h.Max() != 127 {
		t.Fatalf("max %d, want 127", h.Max())
	}
	if h.Mean() != 63.5 {
		t.Fatalf("mean %v, want 63.5", h.Mean())
	}
}

// TestLogHistBucketBounds pins the bucket geometry: logHistIndex and
// BucketBounds are inverses — every value falls inside its own bucket's
// closed range, buckets tile the axis without gaps, and bucket width
// bounds the relative error by 1/64.
func TestLogHistBucketBounds(t *testing.T) {
	probes := []int{0, 1, 127, 128, 129, 191, 192, 255, 256, 1000, 1 << 20, 1<<62 + 12345}
	for _, v := range probes {
		i := logHistIndex(v)
		h := &LogHistogram{}
		lo, hi := h.BucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d: [%d, %d]", v, i, lo, hi)
		}
		if width := hi - lo; v >= 128 && float64(width) > float64(v)/64+1 {
			t.Fatalf("bucket %d width %d too wide for value %d (rel err > 1/64)", i, width, v)
		}
	}
	// Adjacent buckets tile: hi(i)+1 == lo(i+1) across the exact/log seam
	// and an octave boundary.
	h := &LogHistogram{}
	for i := 0; i < 300; i++ {
		_, hi := h.BucketBounds(i)
		lo, _ := h.BucketBounds(i + 1)
		if hi+1 != lo {
			t.Fatalf("gap between buckets %d and %d: hi=%d, next lo=%d", i, i+1, hi, lo)
		}
	}
}

// TestLogHistQuantileError pins the advertised accuracy: for a large
// spread population, every reported quantile is within 1/64 (~1.6%) of
// the exact order statistic.
func TestLogHistQuantileError(t *testing.T) {
	h := NewLogHistogram()
	n := 100000
	for i := 1; i <= n; i++ {
		h.Add(i)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := int(q * float64(n))
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/64+1e-9 {
			t.Fatalf("q%.3f = %d, exact %d: rel err %.4f > 1/64", q, got, exact, relErr)
		}
	}
}

// TestLogHistNegativeClamp pins that negative observations clamp to 0
// instead of panicking or corrupting the index math.
func TestLogHistNegativeClamp(t *testing.T) {
	h := NewLogHistogram()
	h.Add(-5)
	if h.Total() != 1 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("negative add mishandled: total=%d q50=%d max=%d", h.Total(), h.Quantile(0.5), h.Max())
	}
}

// TestLogHistBucketsAndReset pins the non-empty-bucket iterator order and
// that Reset empties without reallocating.
func TestLogHistBucketsAndReset(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []int{3, 3, 200, 5000} {
		h.Add(v)
	}
	var lastHi = -1
	var total int64
	h.Buckets(func(lo, hi int, count int64) {
		if lo <= lastHi {
			t.Fatalf("buckets out of order: lo %d after hi %d", lo, lastHi)
		}
		lastHi = hi
		total += count
	})
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	h.Reset()
	if h.Total() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not empty the histogram")
	}
	count := 0
	h.Buckets(func(int, int, int64) { count++ })
	if count != 0 {
		t.Fatalf("%d non-empty buckets after reset", count)
	}
}

// TestLogHistAddAllocFree pins the telemetry contract: recording an
// observation allocates nothing.
func TestLogHistAddAllocFree(t *testing.T) {
	h := NewLogHistogram()
	v := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Add(v)
		v = (v + 977) % (1 << 20)
	}); allocs != 0 {
		t.Fatalf("Add allocates %v/op, want 0", allocs)
	}
}
