package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %f", s.Mean())
	}
	// Sample std of this classic dataset: population std is 2, sample
	// variance = 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %f", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryAddInt(t *testing.T) {
	var s Summary
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Fatalf("Mean = %f", s.Mean())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	prop := func(raw []uint8) bool {
		var whole, left, right Summary
		for i, b := range raw {
			v := float64(b)
			whole.Add(v)
			if i%2 == 0 {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(whole.Mean()-left.Mean()) < 1e-9 &&
			math.Abs(whole.Var()-left.Var()) < 1e-6 &&
			whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5, 4) // buckets [0,5) [5,10) [10,15) [15,20), overflow beyond
	for _, v := range []int{0, 3, 7, 12, 19, 25, -2} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 3 { // 0, 3, -2 (clamped)
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("buckets = %d %d %d", h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if math.Abs(h.Mean()-64.0/7.0) > 1e-9 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if q := h.Quantile(0.5); q < 5 || q > 15 {
		t.Fatalf("median quantile = %d", q)
	}
}

func TestHistogramDefensiveConstruction(t *testing.T) {
	h := NewHistogram(0, 0)
	h.Add(3)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram broken")
	}
	if NewHistogram(1, 1).Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestPercentiles(t *testing.T) {
	samples := []int{9, 1, 5, 3, 7}
	ps := Percentiles(samples, 0, 0.5, 1.0)
	if ps[0] != 1 || ps[1] != 5 || ps[2] != 9 {
		t.Fatalf("percentiles = %v", ps)
	}
	if got := Percentiles(nil, 0.5); got[0] != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if samples[0] != 9 {
		t.Fatal("Percentiles sorted the input in place")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("b", 2.5)
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Errorf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d: %q", len(lines), out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "name,value\n") || !strings.Contains(csv, "alpha,1\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "a", "bb")
	tab.AddRow("xxxxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row should align on the second column.
	if len(lines) < 3 {
		t.Fatalf("missing lines: %q", out)
	}
	hdr, row := lines[0], lines[2]
	if idxOf(hdr, "bb") != idxOf(row, "y") {
		t.Errorf("columns misaligned:\n%q\n%q", hdr, row)
	}
}

func idxOf(s, sub string) int { return strings.Index(s, sub) }
