package fault

import (
	"fmt"
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

func processShape(t *testing.T) *grid.Shape {
	t.Helper()
	shape, err := grid.NewShape(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return shape
}

// TestGenerateProcessDeterministic pins the purity contract: the same
// (shape, options, stream) yields the identical schedule, and different
// seeds yield different ones.
func TestGenerateProcessDeterministic(t *testing.T) {
	shape := processShape(t)
	opt := ProcessOptions{
		Arrival: Delay{Model: DelayBernoulli, Rate: 0.05},
		Repair:  Delay{Model: DelayBernoulli, Rate: 0.02},
		Start:   1, Horizon: 400, MinSpacing: 2,
	}
	a, err := GenerateProcess(shape, opt, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateProcess(shape, opt, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Events) != fmt.Sprint(b.Events) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a.Events, b.Events)
	}
	c, err := GenerateProcess(shape, opt, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Events) == fmt.Sprint(c.Events) {
		t.Fatal("different seeds produced the identical schedule")
	}
	if a.NumFaults() == 0 {
		t.Fatal("rate 0.05 over 400 steps produced no faults")
	}
}

// TestGenerateProcessSpansHorizon checks that arrivals land inside
// [Start, Horizon], honor the placement rules (no border, spacing against
// the live faulty set), and that repairs follow their failures.
func TestGenerateProcessSpansHorizon(t *testing.T) {
	shape := processShape(t)
	const start, horizon = 10, 600
	opt := ProcessOptions{
		Arrival: Delay{Model: DelayBernoulli, Rate: 0.08},
		Repair:  Delay{Model: DelayBernoulli, Rate: 0.05},
		Start:   start, Horizon: horizon, MinSpacing: 3,
	}
	sched, err := GenerateProcess(shape, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumFaults() < 5 {
		t.Fatalf("expected a populated schedule, got %d faults", sched.NumFaults())
	}
	failAt := map[grid.NodeID]int{}
	sawLate := false
	for _, ev := range sched.Events {
		switch ev.Kind {
		case Fail:
			if ev.Step < start || ev.Step > horizon {
				t.Fatalf("fail at step %d outside [%d, %d]", ev.Step, start, horizon)
			}
			if shape.OnBorder(ev.Node) {
				t.Fatalf("fault on the outermost surface: node %v", shape.CoordOf(ev.Node))
			}
			if ev.Step > horizon/2 {
				sawLate = true
			}
			failAt[ev.Node] = ev.Step
		case Recover:
			fs, ok := failAt[ev.Node]
			if !ok || ev.Step <= fs {
				t.Fatalf("recover at step %d without a preceding fail (fail step %d)", ev.Step, fs)
			}
			delete(failAt, ev.Node)
		}
	}
	if !sawLate {
		t.Fatal("no arrival in the second half of the horizon — the process is front-loaded")
	}
}

// TestGenerateProcessRepairReopens checks that with repair enabled a node
// may fail more than once: the active set shrinks on repair, so a long
// horizon at a high rate revisits nodes.
func TestGenerateProcessRepairReopens(t *testing.T) {
	shape := processShape(t)
	opt := ProcessOptions{
		Arrival: Delay{Model: DelayBernoulli, Rate: 0.5},
		Repair:  Delay{Model: DelayBernoulli, Rate: 0.5},
		Start:   1, Horizon: 4000,
	}
	sched, err := GenerateProcess(shape, opt, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	fails := map[grid.NodeID]int{}
	refailed := false
	for _, ev := range sched.Events {
		if ev.Kind == Fail {
			fails[ev.Node]++
			if fails[ev.Node] > 1 {
				refailed = true
			}
		}
	}
	if !refailed {
		t.Fatal("4000 high-rate steps with repair never re-failed a node")
	}
}

// TestGenerateProcessMaxActive pins the concurrency cap: replaying the
// schedule in order, the faulty population never exceeds MaxActive.
func TestGenerateProcessMaxActive(t *testing.T) {
	shape := processShape(t)
	opt := ProcessOptions{
		Arrival: Delay{Model: DelayBernoulli, Rate: 0.4},
		Repair:  Delay{Model: DelayBernoulli, Rate: 0.05},
		Start:   1, Horizon: 1000,
		MaxActive: 3,
	}
	sched, err := GenerateProcess(shape, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, ev := range sched.Events {
		if ev.Kind == Fail {
			active++
		} else {
			active--
		}
		// Same-step repairs are conservatively counted still-faulty by the
		// generator, so the replay bound matches exactly.
		if active > opt.MaxActive {
			t.Fatalf("active faults %d exceed MaxActive %d at step %d", active, opt.MaxActive, ev.Step)
		}
	}
}

// TestGenerateProcessWeibull checks the weibull model: valid schedules,
// distinct from bernoulli at the same rate, and a shape-dependent draw.
func TestGenerateProcessWeibull(t *testing.T) {
	shape := processShape(t)
	wopt := ProcessOptions{
		Arrival: Delay{Model: DelayWeibull, Rate: 0.05, Shape: 2},
		Start:   1, Horizon: 800,
	}
	w, err := GenerateProcess(shape, wopt, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	bopt := wopt
	bopt.Arrival = Delay{Model: DelayBernoulli, Rate: 0.05}
	b, err := GenerateProcess(shape, bopt, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumFaults() == 0 || b.NumFaults() == 0 {
		t.Fatalf("empty schedules: weibull %d, bernoulli %d", w.NumFaults(), b.NumFaults())
	}
	if fmt.Sprint(w.Events) == fmt.Sprint(b.Events) {
		t.Fatal("weibull and bernoulli arrivals produced identical schedules")
	}
}

// TestGenerateProcessValidation covers the error paths.
func TestGenerateProcessValidation(t *testing.T) {
	shape := processShape(t)
	cases := []ProcessOptions{
		{Arrival: Delay{Model: "poisson", Rate: 0.1}, Horizon: 10},                 // unknown model
		{Arrival: Delay{Model: DelayBernoulli, Rate: 0}, Horizon: 10},              // rate 0
		{Arrival: Delay{Model: DelayBernoulli, Rate: 1.5}, Horizon: 10},            // rate > 1
		{Arrival: Delay{Model: DelayBernoulli, Rate: 0.1}, Start: 20, Horizon: 10}, // horizon < start
		{Arrival: Delay{Model: DelayBernoulli, Rate: 0.1}, Horizon: 10,
			Repair: Delay{Model: "fixed", Rate: 0.1}}, // bad repair model
		{Arrival: Delay{Model: DelayBernoulli, Rate: 0.1}, Horizon: 10, MaxActive: -1},
	}
	for i, opt := range cases {
		if _, err := GenerateProcess(shape, opt, rng.New(1)); err == nil {
			t.Errorf("case %d: expected an error, got none", i)
		}
	}
}
