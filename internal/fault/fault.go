// Package fault implements the dynamic fault model of Section 5: schedules
// of fault occurrences f_1, ..., f_F at steps t_1, ..., t_F with intervals
// d_i, optional recoveries (rule 5 events), and generators that respect the
// paper's model assumptions — no fault on the outermost surface of the
// mesh, the network stays connected via the block model, and intervals long
// enough for the information constructions to stabilize.
package fault

import (
	"fmt"
	"sort"

	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

// Kind distinguishes fault occurrences from recoveries.
type Kind uint8

const (
	// Fail marks a node faulty.
	Fail Kind = iota
	// Recover applies rule 5: the faulty node becomes clean.
	Recover
)

// String renders the kind.
func (k Kind) String() string {
	if k == Recover {
		return "recover"
	}
	return "fail"
}

// Event is one scheduled status change.
type Event struct {
	Step int
	Node grid.NodeID
	Kind Kind
}

// Schedule is a step-ordered list of events.
type Schedule struct {
	Events []Event
}

// Sort orders events by step (stable for same-step events).
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Step < s.Events[j].Step })
}

// NumFaults returns the number of Fail events (the F of Table 1).
func (s *Schedule) NumFaults() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == Fail {
			n++
		}
	}
	return n
}

// LastStep returns the step of the final event (0 for an empty schedule).
func (s *Schedule) LastStep() int {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].Step
}

// Options configures schedule generation.
type Options struct {
	// Interval is the gap d_i in steps between consecutive fault
	// occurrences (the paper's model assumes d_i exceeds the stabilization
	// time; pick >= a few mesh diameters for conforming runs).
	Interval int
	// Start is the step of the first fault, t_1.
	Start int
	// Exclude lists nodes that must never fail (source, destination).
	Exclude []grid.NodeID
	// ExcludeRadius keeps faults at least this Manhattan distance from
	// every excluded node.
	ExcludeRadius int
	// MinSpacing keeps each new fault at least this Chebyshev (L-inf)
	// distance from every earlier fault. A spacing of >= 4 keeps the
	// resulting one-node blocks and their frames disjoint ("only one new
	// block in each interval", the premise of Theorems 3-5).
	MinSpacing int
	// Clustered places each fault adjacent to a previously placed fault
	// when possible, growing one block instead of scattering.
	Clustered bool
	// Anchor, when UseAnchor is set, forces the first fault onto this node
	// (used to build adversarial scenarios with a block on a message's
	// path). The anchor must itself satisfy the placement constraints.
	Anchor    grid.NodeID
	UseAnchor bool
	// RecoverAfter, when positive, schedules a Recover event this many
	// steps after each Fail.
	RecoverAfter int
}

// Generate draws F fault occurrences on shape under the given options. The
// paper's "no fault at the outermost surface" assumption is always
// enforced. Placement is rejection sampling with global restarts: random
// sequential packing can paint itself into a corner (earlier faults can
// make the spacing constraint infeasible), so on a dead end the whole
// arrangement is redrawn. It returns an error only when the constraints
// look genuinely unsatisfiable.
func Generate(shape *grid.Shape, faults int, opt Options, r *rng.Source) (*Schedule, error) {
	if opt.Interval < 1 {
		opt.Interval = 1
	}
	const restarts = 64
	var placed []grid.NodeID
	var err error
	for attempt := 0; attempt < restarts; attempt++ {
		placed, err = place(shape, faults, opt, r)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	sched := &Schedule{}
	for i, node := range placed {
		step := opt.Start + i*opt.Interval
		sched.Events = append(sched.Events, Event{Step: step, Node: node, Kind: Fail})
		if opt.RecoverAfter > 0 {
			sched.Events = append(sched.Events, Event{Step: step + opt.RecoverAfter, Node: node, Kind: Recover})
		}
	}
	sched.Sort()
	return sched, nil
}

// place draws one complete arrangement or fails.
func place(shape *grid.Shape, faults int, opt Options, r *rng.Source) ([]grid.NodeID, error) {
	const attemptsPer = 1024
	n := shape.NumNodes()
	var placed []grid.NodeID
	for i := 0; i < faults; i++ {
		node := grid.InvalidNode
		if i == 0 && opt.UseAnchor {
			if !acceptable(shape, opt.Anchor, placed, opt) {
				return nil, fmt.Errorf("fault: anchor %v violates the placement constraints", shape.CoordOf(opt.Anchor))
			}
			placed = append(placed, opt.Anchor)
			continue
		}
		for attempt := 0; attempt < attemptsPer; attempt++ {
			cand := grid.NodeID(r.Intn(n))
			if opt.Clustered && len(placed) > 0 {
				// Grow from a random placed fault along a random direction.
				seed := placed[r.Intn(len(placed))]
				d := grid.Dir(r.Intn(shape.NumDirs()))
				if nb := shape.Neighbor(seed, d); nb != grid.InvalidNode {
					cand = nb
				}
			}
			if acceptable(shape, cand, placed, opt) {
				node = cand
				break
			}
		}
		if node == grid.InvalidNode {
			return nil, fmt.Errorf("fault: cannot place fault %d of %d under constraints", i+1, faults)
		}
		placed = append(placed, node)
	}
	return placed, nil
}

func acceptable(shape *grid.Shape, cand grid.NodeID, placed []grid.NodeID, opt Options) bool {
	if shape.OnBorder(cand) {
		return false
	}
	for _, ex := range opt.Exclude {
		if cand == ex || shape.Distance(cand, ex) <= opt.ExcludeRadius {
			return false
		}
	}
	for _, p := range placed {
		if cand == p {
			return false
		}
		if opt.Clustered {
			continue
		}
		if opt.MinSpacing > 0 && chebyshev(shape, cand, p) < opt.MinSpacing {
			return false
		}
	}
	return true
}

// chebyshev returns the L-infinity distance between two nodes.
func chebyshev(shape *grid.Shape, a, b grid.NodeID) int {
	m := 0
	for axis := 0; axis < shape.Dims(); axis++ {
		d := shape.Component(a, axis) - shape.Component(b, axis)
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// LinkFault converts a link fault between neighbors a and b into the node
// fault the model prescribes (Section 2.2: "link faults can be treated as
// node faults"): the endpoint farther from the outermost surface is the one
// marked faulty, preserving the model assumption that no fault lies on the
// outermost surface; ties break toward the smaller node id for determinism.
// It returns an error if a and b are not neighbors.
func LinkFault(shape *grid.Shape, a, b grid.NodeID) (grid.NodeID, error) {
	if shape.Distance(a, b) != 1 {
		return grid.InvalidNode, fmt.Errorf("fault: %v and %v are not neighbors",
			shape.CoordOf(a), shape.CoordOf(b))
	}
	da, db := borderDistance(shape, a), borderDistance(shape, b)
	switch {
	case da > db:
		return a, nil
	case db > da:
		return b, nil
	case a < b:
		return a, nil
	default:
		return b, nil
	}
}

// borderDistance returns the minimum distance from a node to the outermost
// surface of the mesh.
func borderDistance(shape *grid.Shape, id grid.NodeID) int {
	min := int(^uint(0) >> 1)
	for axis := 0; axis < shape.Dims(); axis++ {
		v := shape.Component(id, axis)
		if v < min {
			min = v
		}
		if d := shape.Radix(axis) - 1 - v; d < min {
			min = d
		}
	}
	return min
}

// Apply replays the whole schedule onto a mesh immediately (ignoring
// steps); used to set up static-fault scenarios.
func (s *Schedule) Apply(m *mesh.Mesh) {
	for _, e := range s.Events {
		switch e.Kind {
		case Fail:
			m.Fail(e.Node)
		case Recover:
			m.Recover(e.Node)
		}
	}
}
