package fault

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

func TestKindString(t *testing.T) {
	if Fail.String() != "fail" || Recover.String() != "recover" {
		t.Fatal("kind strings wrong")
	}
}

func TestScheduleSortAndAccessors(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Step: 9, Node: 1, Kind: Fail},
		{Step: 3, Node: 2, Kind: Fail},
		{Step: 3, Node: 3, Kind: Recover},
	}}
	s.Sort()
	if s.Events[0].Step != 3 || s.Events[2].Step != 9 {
		t.Fatalf("not sorted: %+v", s.Events)
	}
	// Stable for same-step events.
	if s.Events[0].Node != 2 || s.Events[1].Node != 3 {
		t.Fatalf("sort not stable: %+v", s.Events)
	}
	if s.NumFaults() != 2 {
		t.Fatalf("NumFaults = %d", s.NumFaults())
	}
	if s.LastStep() != 9 {
		t.Fatalf("LastStep = %d", s.LastStep())
	}
	if (&Schedule{}).LastStep() != 0 {
		t.Fatal("empty LastStep != 0")
	}
}

func TestGenerateRespectsConstraints(t *testing.T) {
	shape := grid.MustShape(16, 16)
	r := rng.New(5)
	exclude := []grid.NodeID{shape.Index(grid.Coord{8, 8})}
	sched, err := Generate(shape, 6, Options{
		Interval:      10,
		Start:         4,
		Exclude:       exclude,
		ExcludeRadius: 2,
		MinSpacing:    4,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 6 {
		t.Fatalf("event count = %d", len(sched.Events))
	}
	var placed []grid.NodeID
	for i, ev := range sched.Events {
		if ev.Kind != Fail {
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
		if ev.Step != 4+10*i {
			t.Fatalf("step %d = %d, want %d", i, ev.Step, 4+10*i)
		}
		if shape.OnBorder(ev.Node) {
			t.Fatalf("fault on the outermost surface: %v", shape.CoordOf(ev.Node))
		}
		for _, ex := range exclude {
			if shape.Distance(ev.Node, ex) <= 2 {
				t.Fatalf("fault too close to excluded node")
			}
		}
		for _, p := range placed {
			dx := shape.Component(ev.Node, 0) - shape.Component(p, 0)
			dy := shape.Component(ev.Node, 1) - shape.Component(p, 1)
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			cheb := dx
			if dy > cheb {
				cheb = dy
			}
			if cheb < 4 {
				t.Fatalf("spacing violated: %v vs %v", shape.CoordOf(ev.Node), shape.CoordOf(p))
			}
		}
		placed = append(placed, ev.Node)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	shape := grid.MustShape(12, 12)
	s1, err1 := Generate(shape, 5, Options{MinSpacing: 3}, rng.New(77))
	s2, err2 := Generate(shape, 5, Options{MinSpacing: 3}, rng.New(77))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range s1.Events {
		if s1.Events[i] != s2.Events[i] {
			t.Fatalf("schedules differ at %d", i)
		}
	}
}

func TestGenerateClustered(t *testing.T) {
	shape := grid.MustShape(16, 16)
	sched, err := Generate(shape, 8, Options{Clustered: true}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// All faults must form one connected cluster (Chebyshev-adjacent to
	// some earlier fault... actually mesh-adjacent to an earlier fault).
	placed := []grid.NodeID{sched.Events[0].Node}
	for _, ev := range sched.Events[1:] {
		adjacent := false
		for _, p := range placed {
			if shape.Distance(ev.Node, p) == 1 {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("clustered fault %v not adjacent to the cluster", shape.CoordOf(ev.Node))
		}
		placed = append(placed, ev.Node)
	}
}

func TestGenerateWithRecoveries(t *testing.T) {
	shape := grid.MustShape(12, 12)
	sched, err := Generate(shape, 3, Options{Interval: 20, Start: 5, RecoverAfter: 7}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	fails, recovers := 0, 0
	recoverAt := map[grid.NodeID]int{}
	failAt := map[grid.NodeID]int{}
	for _, ev := range sched.Events {
		switch ev.Kind {
		case Fail:
			fails++
			failAt[ev.Node] = ev.Step
		case Recover:
			recovers++
			recoverAt[ev.Node] = ev.Step
		}
	}
	if fails != 3 || recovers != 3 {
		t.Fatalf("fails=%d recovers=%d", fails, recovers)
	}
	for node, fs := range failAt {
		if recoverAt[node] != fs+7 {
			t.Fatalf("recovery of %v at %d, want %d", shape.CoordOf(node), recoverAt[node], fs+7)
		}
	}
	// Schedule must be sorted by step.
	for i := 1; i < len(sched.Events); i++ {
		if sched.Events[i].Step < sched.Events[i-1].Step {
			t.Fatal("schedule unsorted")
		}
	}
}

func TestGenerateInfeasibleErrors(t *testing.T) {
	shape := grid.MustShape(5, 5)
	// Interior is 3x3 = 9 nodes; 10 faults cannot fit.
	if _, err := Generate(shape, 10, Options{}, rng.New(1)); err == nil {
		t.Fatal("infeasible generation succeeded")
	}
}

func TestApply(t *testing.T) {
	shape := grid.MustShape(8, 8)
	m := mesh.New(shape)
	id := shape.Index(grid.Coord{3, 3})
	id2 := shape.Index(grid.Coord{5, 5})
	s := &Schedule{Events: []Event{
		{Step: 0, Node: id, Kind: Fail},
		{Step: 1, Node: id2, Kind: Fail},
		{Step: 2, Node: id, Kind: Recover},
	}}
	s.Apply(m)
	if m.Status(id) != mesh.Clean || m.Status(id2) != mesh.Faulty {
		t.Fatalf("Apply wrong: %v %v", m.Status(id), m.Status(id2))
	}
}
