package fault

import (
	"testing"

	"ndmesh/internal/grid"
)

func TestLinkFaultPicksInteriorEndpoint(t *testing.T) {
	shape := grid.MustShape(10, 10)
	// Link between a near-border node and a deeper node: the deeper one
	// fails (keeping the outermost surface fault-free).
	a := shape.Index(grid.Coord{1, 5})
	b := shape.Index(grid.Coord{2, 5})
	victim, err := LinkFault(shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if victim != b {
		t.Fatalf("victim = %v, want the deeper endpoint (2,5)", shape.CoordOf(victim))
	}
	// Order of arguments must not matter.
	victim2, err := LinkFault(shape, b, a)
	if err != nil || victim2 != victim {
		t.Fatalf("LinkFault not symmetric: %v vs %v", victim, victim2)
	}
}

func TestLinkFaultTieBreaksDeterministically(t *testing.T) {
	shape := grid.MustShape(10, 10)
	a := shape.Index(grid.Coord{4, 5})
	b := shape.Index(grid.Coord{5, 5})
	// Both are 4 deep: the smaller id wins.
	victim, err := LinkFault(shape, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := a
	if b < a {
		want = b
	}
	if victim != want {
		t.Fatalf("tie break wrong: %v", shape.CoordOf(victim))
	}
}

func TestLinkFaultRejectsNonNeighbors(t *testing.T) {
	shape := grid.MustShape(10, 10)
	a := shape.Index(grid.Coord{1, 1})
	b := shape.Index(grid.Coord{3, 1})
	if _, err := LinkFault(shape, a, b); err == nil {
		t.Fatal("non-neighbors accepted")
	}
	if _, err := LinkFault(shape, a, a); err == nil {
		t.Fatal("self link accepted")
	}
}

func TestBorderDistance(t *testing.T) {
	shape := grid.MustShape(10, 8)
	cases := []struct {
		c    grid.Coord
		want int
	}{
		{grid.Coord{0, 4}, 0},
		{grid.Coord{1, 4}, 1},
		{grid.Coord{5, 4}, 3}, // y: min(4, 3) = 3
		{grid.Coord{4, 1}, 1},
	}
	for _, tc := range cases {
		if got := borderDistance(shape, shape.Index(tc.c)); got != tc.want {
			t.Errorf("borderDistance(%v) = %d, want %d", tc.c, got, tc.want)
		}
	}
}
