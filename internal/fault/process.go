package fault

// This file is the stochastic fault process behind E23's reliability
// curves: instead of a fixed-count schedule laid out before step 0
// (Generate), failures arrive *throughout* a run — warmup, measure and
// drain — with random inter-arrival times, optionally repaired a random
// delay later. The output is still a plain Schedule, so everything
// downstream (the engine's step-0 event cursor, trace record/replay, the
// conservation invariants) works unchanged; only the generator differs.
//
// Determinism contract: GenerateProcess is a pure function of (shape,
// options, stream). Callers hand it a dedicated stream split from the
// run's — never the traffic stream itself — so the offered workload is
// byte-identical across fault rates, models and repair settings (and the
// fault schedule is byte-identical across traffic patterns). The load
// runner (saturation.go) owns that split.

import (
	"fmt"
	"math"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// Delay model names for Delay.Model.
const (
	// DelayBernoulli draws geometric inter-arrivals: every step is an
	// independent Bernoulli trial with probability Rate, so delays are
	// Geometric(Rate) with mean 1/Rate steps — the memoryless model.
	DelayBernoulli = "bernoulli"
	// DelayWeibull draws Weibull inter-arrivals by inverse CDF with the
	// given Shape; the scale is derived so the mean stays 1/Rate steps.
	// Shape < 1 clusters failures (infant mortality), shape > 1 spreads
	// them (wear-out) — the standard reliability-engineering family.
	DelayWeibull = "weibull"
)

// Delay is one inter-arrival distribution of the fault process, used both
// for failure arrivals and for repair delays. The zero value is "disabled"
// (Sample must not be called on it); a populated Delay always samples
// >= 1 step.
type Delay struct {
	// Model is DelayBernoulli or DelayWeibull ("" = disabled).
	Model string
	// Rate is the mean event rate per step (mean delay = 1/Rate), in
	// (0, 1] — at 1 an event fires every step.
	Rate float64
	// Shape is the Weibull shape parameter k (ignored by bernoulli;
	// <= 0 defaults to 1, the exponential).
	Shape float64
}

// Enabled reports whether the delay is configured (non-empty model).
func (d Delay) Enabled() bool { return d.Model != "" }

// validate checks the delay's parameters, naming what it configures in
// errors.
func (d Delay) validate(what string) error {
	switch d.Model {
	case DelayBernoulli, DelayWeibull:
	default:
		return fmt.Errorf("fault: unknown %s model %q (want %s|%s)", what, d.Model, DelayBernoulli, DelayWeibull)
	}
	if d.Rate <= 0 || d.Rate > 1 {
		return fmt.Errorf("fault: %s rate %v out of range (0, 1]", what, d.Rate)
	}
	if d.Model == DelayWeibull && d.Shape < 0 {
		return fmt.Errorf("fault: %s weibull shape %v must be >= 0", what, d.Shape)
	}
	return nil
}

// Sample draws one delay in steps (always >= 1).
func (d Delay) Sample(r *rng.Source) int {
	switch d.Model {
	case DelayWeibull:
		k := d.Shape
		if k <= 0 {
			k = 1
		}
		// Scale so the mean delay is 1/Rate: E[Weibull(λ,k)] = λ·Γ(1+1/k).
		scale := 1 / (d.Rate * math.Gamma(1+1/k))
		u := r.Float64()
		w := scale * math.Pow(-math.Log1p(-u), 1/k)
		n := int(math.Round(w))
		if n < 1 {
			n = 1
		}
		return n
	default: // DelayBernoulli
		return r.Geometric(d.Rate)
	}
}

// ProcessOptions configures GenerateProcess.
type ProcessOptions struct {
	// Arrival is the failure inter-arrival distribution (required).
	Arrival Delay
	// Repair, when enabled, schedules a Recover event for every Fail a
	// Repair.Sample delay later. A repaired node may fail again.
	Repair Delay
	// Start is the earliest step an arrival may land on (>= 1: the engine
	// applies step-0 events before any traffic moves, which is the static
	// regime Generate covers); Horizon is the last. The first failure
	// arrives at Start-1 plus one inter-arrival sample.
	Start, Horizon int
	// MaxActive caps the concurrently-faulty node count; an arrival while
	// the cap is reached is skipped (the mesh is already as degraded as
	// allowed). 0 means no cap beyond placement feasibility.
	MaxActive int
	// Exclude/ExcludeRadius/MinSpacing/Clustered are the placement rules of
	// Options, applied against the *currently faulty* set: a repaired
	// node's neighborhood opens up again. The outermost-surface exclusion
	// is always enforced.
	Exclude       []grid.NodeID
	ExcludeRadius int
	MinSpacing    int
	Clustered     bool
}

// GenerateProcess draws a stochastic failure (and optionally repair)
// schedule spanning [Start, Horizon]. Arrivals whose placement is
// infeasible at their step (every candidate violates the rules, or
// MaxActive is reached) are skipped rather than erroring: a saturated mesh
// simply cannot degrade further, and the process keeps going — later
// repairs reopen capacity. Repair events may land past Horizon (a run just
// never applies them). The returned schedule is step-sorted with Fail
// events before the Recover events of the same step already applied,
// because the placement bookkeeping replays the same order the engine
// will.
func GenerateProcess(shape *grid.Shape, opt ProcessOptions, r *rng.Source) (*Schedule, error) {
	if err := opt.Arrival.validate("fault arrival"); err != nil {
		return nil, err
	}
	if opt.Repair.Enabled() {
		if err := opt.Repair.validate("repair delay"); err != nil {
			return nil, err
		}
	}
	if opt.Start < 1 {
		opt.Start = 1
	}
	if opt.Horizon < opt.Start {
		return nil, fmt.Errorf("fault: process horizon %d precedes start %d", opt.Horizon, opt.Start)
	}
	if opt.MaxActive < 0 {
		return nil, fmt.Errorf("fault: MaxActive %d must be >= 0", opt.MaxActive)
	}

	const attemptsPer = 256
	placeOpt := Options{
		Exclude:       opt.Exclude,
		ExcludeRadius: opt.ExcludeRadius,
		MinSpacing:    opt.MinSpacing,
		Clustered:     opt.Clustered,
	}
	n := shape.NumNodes()
	sched := &Schedule{}
	// active holds the currently-faulty nodes; repairAt[i] is the step
	// active[i]'s scheduled Recover lands (or -1 without repair).
	var active []grid.NodeID
	var repairAt []int
	for t := opt.Start - 1 + opt.Arrival.Sample(r); t <= opt.Horizon; t += opt.Arrival.Sample(r) {
		// Apply the repairs due strictly before this arrival's step, so
		// placement sees the mesh exactly as the engine will at step t
		// (the engine applies events in schedule order; a Recover at step
		// t sorts before a same-step Fail only if scheduled earlier, so
		// same-step repairs are conservatively treated as still faulty).
		for i := 0; i < len(active); {
			if repairAt[i] >= 0 && repairAt[i] < t {
				active[i] = active[len(active)-1]
				repairAt[i] = repairAt[len(repairAt)-1]
				active = active[:len(active)-1]
				repairAt = repairAt[:len(repairAt)-1]
				continue
			}
			i++
		}
		if opt.MaxActive > 0 && len(active) >= opt.MaxActive {
			continue
		}
		// Rejection-sample a placement against the live faulty set.
		node := grid.InvalidNode
		for attempt := 0; attempt < attemptsPer; attempt++ {
			cand := grid.NodeID(r.Intn(n))
			if opt.Clustered && len(active) > 0 {
				seed := active[r.Intn(len(active))]
				d := grid.Dir(r.Intn(shape.NumDirs()))
				if nb := shape.Neighbor(seed, d); nb != grid.InvalidNode {
					cand = nb
				}
			}
			if acceptable(shape, cand, active, placeOpt) {
				node = cand
				break
			}
		}
		if node == grid.InvalidNode {
			continue // saturated under the placement rules; skip this arrival
		}
		sched.Events = append(sched.Events, Event{Step: t, Node: node, Kind: Fail})
		ra := -1
		if opt.Repair.Enabled() {
			ra = t + opt.Repair.Sample(r)
			sched.Events = append(sched.Events, Event{Step: ra, Node: node, Kind: Recover})
		}
		active = append(active, node)
		repairAt = append(repairAt, ra)
	}
	sched.Sort()
	return sched, nil
}
