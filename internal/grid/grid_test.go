package grid

import (
	"testing"
	"testing/quick"
)

func TestCoordBasics(t *testing.T) {
	c := Coord{3, 5, 4}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatalf("clone not equal: %v vs %v", c, d)
	}
	d[0] = 9
	if c[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if c.Equal(Coord{3, 5}) {
		t.Fatal("coords of different length compare equal")
	}
	if got := c.String(); got != "(3,5,4)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{1, 2}, Coord{4, 6}, 7},
		{Coord{5, 5, 5}, Coord{2, 8, 5}, 6},
		{Coord{9}, Coord{0}, 9},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Manhattan(c.b, c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestManhattanPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Manhattan(Coord{1, 2}, Coord{1, 2, 3})
}

func TestDirEncoding(t *testing.T) {
	for axis := 0; axis < 5; axis++ {
		p, m := DirPlus(axis), DirMinus(axis)
		if p.Axis() != axis || m.Axis() != axis {
			t.Fatalf("axis roundtrip failed for %d", axis)
		}
		if !p.Positive() || m.Positive() {
			t.Fatalf("sign wrong for axis %d", axis)
		}
		if p.Sign() != 1 || m.Sign() != -1 {
			t.Fatalf("Sign wrong for axis %d", axis)
		}
		if p.Opposite() != m || m.Opposite() != p {
			t.Fatalf("Opposite wrong for axis %d", axis)
		}
	}
	if InvalidDir.Opposite() != InvalidDir {
		t.Fatal("Opposite of InvalidDir must be InvalidDir")
	}
	names := map[Dir]string{
		DirPlus(0): "+X", DirMinus(0): "-X",
		DirPlus(1): "+Y", DirMinus(1): "-Y",
		DirPlus(2): "+Z", DirMinus(2): "-Z",
		DirPlus(3): "+d3", DirMinus(4): "-d4",
		InvalidDir: "none",
	}
	for d, want := range names {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestDirSet(t *testing.T) {
	var s DirSet
	if s.Has(DirPlus(0)) {
		t.Fatal("empty set has +X")
	}
	s = s.Add(DirPlus(0)).Add(DirMinus(2))
	if !s.Has(DirPlus(0)) || !s.Has(DirMinus(2)) || s.Has(DirPlus(2)) {
		t.Fatalf("membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	s = s.Remove(DirPlus(0))
	if s.Has(DirPlus(0)) || s.Count() != 1 {
		t.Fatalf("Remove failed: %b", s)
	}
	if s.Has(InvalidDir) {
		t.Fatal("set must not contain InvalidDir")
	}
}

func TestNewShapeValidation(t *testing.T) {
	if _, err := NewShape(); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := NewShape(4, 0); err == nil {
		t.Error("zero radix accepted")
	}
	if _, err := NewShape(1<<16, 1<<16); err == nil {
		t.Error("overflowing shape accepted")
	}
	dims := make([]int, 17)
	for i := range dims {
		dims[i] = 2
	}
	if _, err := NewShape(dims...); err == nil {
		t.Error("17-dimensional shape accepted")
	}
	if _, err := Uniform(0, 4); err == nil {
		t.Error("0-dimensional uniform accepted")
	}
}

func TestShapeBasics(t *testing.T) {
	s := MustShape(4, 5, 6)
	if s.Dims() != 3 || s.NumNodes() != 120 || s.NumDirs() != 6 {
		t.Fatalf("basic shape properties wrong: %v", s)
	}
	if s.Diameter() != 3+4+5 {
		t.Fatalf("Diameter = %d", s.Diameter())
	}
	if got := s.String(); got != "4x5x6 mesh" {
		t.Fatalf("String = %q", got)
	}
	u, err := Uniform(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 512 || u.Diameter() != 21 {
		t.Fatalf("uniform 8-ary 3-D mesh wrong: N=%d diam=%d", u.NumNodes(), u.Diameter())
	}
}

func TestIndexCoordRoundtrip(t *testing.T) {
	s := MustShape(3, 4, 5)
	seen := make(map[NodeID]bool)
	for x := 0; x < 3; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 5; z++ {
				c := Coord{x, y, z}
				id := s.Index(c)
				if seen[id] {
					t.Fatalf("duplicate id %d for %v", id, c)
				}
				seen[id] = true
				if got := s.CoordOf(id); !got.Equal(c) {
					t.Fatalf("roundtrip %v -> %d -> %v", c, id, got)
				}
				for axis := 0; axis < 3; axis++ {
					if got := s.Component(id, axis); got != c[axis] {
						t.Fatalf("Component(%d,%d) = %d, want %d", id, axis, got, c[axis])
					}
				}
			}
		}
	}
	if len(seen) != s.NumNodes() {
		t.Fatalf("ids not dense: %d of %d", len(seen), s.NumNodes())
	}
}

func TestIndexPanics(t *testing.T) {
	s := MustShape(3, 3)
	for _, c := range []Coord{{3, 0}, {0, -1}, {1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", c)
				}
			}()
			s.Index(c)
		}()
	}
}

func TestNeighbor(t *testing.T) {
	s := MustShape(3, 3)
	mid := s.Index(Coord{1, 1})
	wants := map[Dir]Coord{
		DirPlus(0):  {2, 1},
		DirMinus(0): {0, 1},
		DirPlus(1):  {1, 2},
		DirMinus(1): {1, 0},
	}
	for d, want := range wants {
		if got := s.Neighbor(mid, d); got != s.Index(want) {
			t.Errorf("Neighbor(mid,%v) = %v, want %v", d, s.CoordOf(got), want)
		}
	}
	// Border nodes lose neighbors (no wraparound: a mesh, not a torus).
	corner := s.Index(Coord{0, 0})
	if s.Neighbor(corner, DirMinus(0)) != InvalidNode || s.Neighbor(corner, DirMinus(1)) != InvalidNode {
		t.Error("corner has neighbors off-mesh")
	}
	far := s.Index(Coord{2, 2})
	if s.Neighbor(far, DirPlus(0)) != InvalidNode || s.Neighbor(far, DirPlus(1)) != InvalidNode {
		t.Error("far corner has neighbors off-mesh")
	}
}

func TestNeighborAdjacencyProperty(t *testing.T) {
	// Two nodes are neighbors iff their Manhattan distance is exactly 1.
	s := MustShape(4, 3, 3)
	n := s.NumNodes()
	for a := 0; a < n; a++ {
		count := 0
		for d := 0; d < s.NumDirs(); d++ {
			nb := s.Neighbor(NodeID(a), Dir(d))
			if nb == InvalidNode {
				continue
			}
			count++
			if s.Distance(NodeID(a), nb) != 1 {
				t.Fatalf("neighbor at distance != 1: %d -> %d", a, nb)
			}
			// Symmetry: the reverse hop returns.
			if s.Neighbor(nb, Dir(d).Opposite()) != NodeID(a) {
				t.Fatalf("neighbor not symmetric: %d -%v-> %d", a, Dir(d), nb)
			}
		}
		// Interior nodes have degree 2n (Section 2.1).
		if !s.OnBorder(NodeID(a)) && count != s.NumDirs() {
			t.Fatalf("interior node %d has degree %d", a, count)
		}
	}
}

func TestOnBorder(t *testing.T) {
	s := MustShape(4, 4)
	if !s.OnBorder(s.Index(Coord{0, 2})) || !s.OnBorder(s.Index(Coord{3, 1})) {
		t.Error("border node not detected")
	}
	if s.OnBorder(s.Index(Coord{1, 2})) {
		t.Error("interior node flagged as border")
	}
}

func TestPreferredDirs(t *testing.T) {
	s := MustShape(8, 8, 8)
	u := s.Index(Coord{4, 4, 4})
	cases := []struct {
		d    Coord
		want []Dir
	}{
		{Coord{6, 4, 4}, []Dir{DirPlus(0)}},
		{Coord{2, 4, 4}, []Dir{DirMinus(0)}},
		{Coord{6, 2, 4}, []Dir{DirPlus(0), DirMinus(1)}},
		{Coord{4, 4, 4}, nil},
		{Coord{0, 7, 0}, []Dir{DirMinus(0), DirPlus(1), DirMinus(2)}},
	}
	for _, c := range cases {
		got := s.PreferredDirs(u, s.Index(c.d), nil)
		if len(got) != len(c.want) {
			t.Errorf("PreferredDirs to %v = %v, want %v", c.d, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PreferredDirs to %v = %v, want %v", c.d, got, c.want)
			}
		}
	}
}

func TestPreferredDirsReduceDistance(t *testing.T) {
	// Property: every preferred direction reduces distance by exactly 1,
	// and the number of preferred directions is the number of axes with a
	// non-zero offset.
	s := MustShape(5, 6, 4)
	prop := func(a, b uint32) bool {
		u := NodeID(int(a) % s.NumNodes())
		d := NodeID(int(b) % s.NumNodes())
		dirs := s.PreferredDirs(u, d, nil)
		offAxes := 0
		for axis := 0; axis < s.Dims(); axis++ {
			if s.Component(u, axis) != s.Component(d, axis) {
				offAxes++
			}
		}
		if len(dirs) != offAxes {
			return false
		}
		for _, dir := range dirs {
			nb := s.Neighbor(u, dir)
			if nb == InvalidNode || s.Distance(nb, d) != s.Distance(u, d)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceMatchesManhattan(t *testing.T) {
	s := MustShape(5, 4, 3, 2)
	prop := func(a, b uint32) bool {
		u := NodeID(int(a) % s.NumNodes())
		v := NodeID(int(b) % s.NumNodes())
		return s.Distance(u, v) == Manhattan(s.CoordOf(u), s.CoordOf(v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordReuseBuffer(t *testing.T) {
	s := MustShape(4, 4)
	buf := make(Coord, 2)
	got := s.Coord(5, buf)
	if &got[0] != &buf[0] {
		t.Error("Coord did not reuse the provided buffer")
	}
	short := make(Coord, 1)
	got2 := s.Coord(5, short)
	if len(got2) != 2 {
		t.Error("Coord did not allocate for a short buffer")
	}
}
