// Package grid provides the coordinate geometry of k-ary n-dimensional
// meshes: addresses, linearized node indices, directions, Manhattan
// distance, and axis-aligned boxes (the shape of faulty blocks).
//
// Everything in this package is pure geometry with no simulation state, so
// it is shared by the mesh fabric, the labeling/identification/boundary
// protocols, the routers, and the analytical bound calculators.
//
// Conventions (Section 2.1 of the paper):
//   - A node address is (u_1, u_2, ..., u_n) with 0 <= u_i <= k_i-1.
//     Mixed-radix shapes are supported; the paper's uniform k-ary mesh is
//     the special case with all k_i equal.
//   - Two nodes are connected iff their addresses differ by exactly one in
//     exactly one dimension (each dimension is a linear array, no wraparound).
//   - The distance D(u, v) is the Manhattan distance.
package grid

import (
	"fmt"
	"strings"
)

// Coord is an n-dimensional node address. Coords are small slices; hot paths
// use linear NodeIDs instead and convert only at the edges of the system.
type Coord []int

// Clone returns an independent copy of c.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and d have identical length and components.
func (c Coord) Equal(d Coord) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// String renders the coordinate as "(u1,u2,...,un)".
func (c Coord) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Manhattan returns the L1 distance |c-d|; it panics if dimensions differ.
func Manhattan(c, d Coord) int {
	if len(c) != len(d) {
		panic("grid: Manhattan distance between coords of different dimension")
	}
	sum := 0
	for i := range c {
		sum += abs(c[i] - d[i])
	}
	return sum
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NodeID is the linearized index of a node in row-major order. IDs are dense
// in [0, NumNodes) which lets all per-node protocol state live in flat
// arrays — the layout every hot loop in the simulator iterates over.
type NodeID int32

// InvalidNode marks "no such node" (off-mesh neighbor slots).
const InvalidNode NodeID = -1

// Dir identifies one of the 2n mesh directions. Direction 2*a is the
// positive direction along axis a ("+a"), 2*a+1 is the negative direction
// ("-a"). The zero value is "+axis0".
type Dir int8

// InvalidDir marks "no direction" (e.g. the incoming direction of a message
// still at its source).
const InvalidDir Dir = -1

// DirPlus and DirMinus build a direction from an axis.
func DirPlus(axis int) Dir  { return Dir(2 * axis) }
func DirMinus(axis int) Dir { return Dir(2*axis + 1) }

// Axis returns the axis d moves along.
func (d Dir) Axis() int { return int(d) >> 1 }

// Positive reports whether d is the +axis direction.
func (d Dir) Positive() bool { return d&1 == 0 }

// Sign returns +1 for a positive direction, -1 for a negative one.
func (d Dir) Sign() int {
	if d.Positive() {
		return 1
	}
	return -1
}

// Opposite returns the reverse direction; the opposite of InvalidDir is
// InvalidDir.
func (d Dir) Opposite() Dir {
	if d < 0 {
		return InvalidDir
	}
	return d ^ 1
}

// String renders a direction as "+X"/"-Y" for the first three axes and
// "+d3", "-d4", ... beyond.
func (d Dir) String() string {
	if d < 0 {
		return "none"
	}
	sign := "+"
	if !d.Positive() {
		sign = "-"
	}
	switch d.Axis() {
	case 0:
		return sign + "X"
	case 1:
		return sign + "Y"
	case 2:
		return sign + "Z"
	default:
		return fmt.Sprintf("%sd%d", sign, d.Axis())
	}
}

// DirSet is a bitmask over the 2n directions of a mesh (n <= 16).
type DirSet uint32

// Add returns the set with d included.
func (s DirSet) Add(d Dir) DirSet { return s | 1<<uint(d) }

// Has reports whether d is in the set.
func (s DirSet) Has(d Dir) bool { return d >= 0 && s&(1<<uint(d)) != 0 }

// Remove returns the set with d excluded.
func (s DirSet) Remove(d Dir) DirSet { return s &^ (1 << uint(d)) }

// Count returns the number of directions in the set.
func (s DirSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Shape describes a k-ary n-D mesh: the radix of every dimension plus the
// precomputed strides used to linearize addresses.
type Shape struct {
	dims    []int
	strides []int
	n       int // number of nodes
}

// NewShape builds a Shape from per-dimension radices. Every radix must be
// at least 1; at least one dimension is required. The paper's k-ary n-D mesh
// is NewShape(k, k, ..., k) with n entries.
func NewShape(dims ...int) (*Shape, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("grid: shape needs at least one dimension")
	}
	if len(dims) > 16 {
		return nil, fmt.Errorf("grid: at most 16 dimensions supported, got %d", len(dims))
	}
	s := &Shape{
		dims:    append([]int(nil), dims...),
		strides: make([]int, len(dims)),
		n:       1,
	}
	for i, k := range dims {
		if k < 1 {
			return nil, fmt.Errorf("grid: dimension %d has radix %d (< 1)", i, k)
		}
		s.strides[i] = s.n
		if s.n > (1<<31-1)/k {
			return nil, fmt.Errorf("grid: shape %v exceeds 2^31-1 nodes", dims)
		}
		s.n *= k
	}
	return s, nil
}

// MustShape is NewShape but panics on error; for tests and examples.
func MustShape(dims ...int) *Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Uniform builds the k-ary n-D mesh shape of the paper.
func Uniform(n, k int) (*Shape, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: need n >= 1 dimensions, got %d", n)
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = k
	}
	return NewShape(dims...)
}

// Dims returns the number of dimensions n.
func (s *Shape) Dims() int { return len(s.dims) }

// Radix returns k_axis, the extent of the given dimension.
func (s *Shape) Radix(axis int) int { return s.dims[axis] }

// Radices returns a copy of the per-dimension extents.
func (s *Shape) Radices() []int { return append([]int(nil), s.dims...) }

// NumNodes returns the total node count N = k_1 * ... * k_n.
func (s *Shape) NumNodes() int { return s.n }

// NumDirs returns 2n, the number of mesh directions.
func (s *Shape) NumDirs() int { return 2 * len(s.dims) }

// Diameter returns the network diameter sum_i (k_i - 1); for the uniform
// k-ary n-D mesh this is (k-1)*n as in Section 2.1.
func (s *Shape) Diameter() int {
	d := 0
	for _, k := range s.dims {
		d += k - 1
	}
	return d
}

// Contains reports whether c is a valid address of the mesh.
func (s *Shape) Contains(c Coord) bool {
	if len(c) != len(s.dims) {
		return false
	}
	for i, v := range c {
		if v < 0 || v >= s.dims[i] {
			return false
		}
	}
	return true
}

// Index linearizes an address. It panics if c is outside the mesh: callers
// validate with Contains first when handling untrusted coordinates.
func (s *Shape) Index(c Coord) NodeID {
	if len(c) != len(s.dims) {
		panic(fmt.Sprintf("grid: coord %v has %d dims, shape has %d", c, len(c), len(s.dims)))
	}
	id := 0
	for i, v := range c {
		if v < 0 || v >= s.dims[i] {
			panic(fmt.Sprintf("grid: coord %v outside shape %v", c, s.dims))
		}
		id += v * s.strides[i]
	}
	return NodeID(id)
}

// Coord recovers the address of a node id, writing into dst if it has the
// right length (avoiding an allocation) and allocating otherwise.
func (s *Shape) Coord(id NodeID, dst Coord) Coord {
	if len(dst) != len(s.dims) {
		dst = make(Coord, len(s.dims))
	}
	rem := int(id)
	for i := len(s.dims) - 1; i >= 0; i-- {
		dst[i] = rem / s.strides[i]
		rem %= s.strides[i]
	}
	return dst
}

// CoordOf is Coord with a fresh destination.
func (s *Shape) CoordOf(id NodeID) Coord { return s.Coord(id, nil) }

// Component returns coordinate `axis` of node id without materializing the
// whole address.
func (s *Shape) Component(id NodeID, axis int) int {
	return (int(id) / s.strides[axis]) % s.dims[axis]
}

// Neighbor returns the node one hop from id in direction d, or InvalidNode
// if that hop leaves the mesh.
func (s *Shape) Neighbor(id NodeID, d Dir) NodeID {
	axis := d.Axis()
	v := s.Component(id, axis)
	if d.Positive() {
		if v+1 >= s.dims[axis] {
			return InvalidNode
		}
		return id + NodeID(s.strides[axis])
	}
	if v == 0 {
		return InvalidNode
	}
	return id - NodeID(s.strides[axis])
}

// Distance returns the Manhattan distance between two node ids.
func (s *Shape) Distance(a, b NodeID) int {
	sum := 0
	for i := range s.dims {
		sum += abs(s.Component(a, i) - s.Component(b, i))
	}
	return sum
}

// OnBorder reports whether the node lies on the outermost surface of the
// mesh (some coordinate is 0 or k_i-1). The paper's model assumes no fault
// occurs on the outermost surface; boundary rays terminate there.
func (s *Shape) OnBorder(id NodeID) bool {
	for i := range s.dims {
		v := s.Component(id, i)
		if v == 0 || v == s.dims[i]-1 {
			return true
		}
	}
	return false
}

// PreferredDirs appends to dst the preferred directions for travelling from
// u toward d: the directions that strictly reduce Manhattan distance
// (Section 2.1). The remaining directions are spare.
func (s *Shape) PreferredDirs(u, d NodeID, dst []Dir) []Dir {
	for axis := 0; axis < len(s.dims); axis++ {
		cu, cd := s.Component(u, axis), s.Component(d, axis)
		switch {
		case cu < cd:
			dst = append(dst, DirPlus(axis))
		case cu > cd:
			dst = append(dst, DirMinus(axis))
		}
	}
	return dst
}

// String renders the shape as "k1 x k2 x ... x kn mesh".
func (s *Shape) String() string {
	parts := make([]string, len(s.dims))
	for i, k := range s.dims {
		parts[i] = fmt.Sprintf("%d", k)
	}
	return strings.Join(parts, "x") + " mesh"
}
