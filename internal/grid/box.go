package grid

import (
	"fmt"
	"strings"
)

// Box is a closed axis-aligned box [Lo_1:Hi_1, ..., Lo_n:Hi_n] of nodes.
// Faulty blocks (Definition 1) are boxes; so are block sections identified in
// phase 2 of Algorithm 2 and the dangerous "shadow" regions boundaries guard.
type Box struct {
	Lo, Hi Coord
}

// NewBox builds a box from inclusive corner coordinates; it panics if the
// corners have mismatched dimensions or Lo > Hi on some axis, since boxes are
// constructed from already-validated geometry.
func NewBox(lo, hi Coord) Box {
	if len(lo) != len(hi) {
		panic("grid: box corners of different dimension")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("grid: box corner order violated on axis %d: [%d:%d]", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: lo.Clone(), Hi: hi.Clone()}
}

// BoxAt returns the degenerate single-node box at c.
func BoxAt(c Coord) Box { return Box{Lo: c.Clone(), Hi: c.Clone()} }

// Dims returns the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Clone returns a deep copy.
func (b Box) Clone() Box { return Box{Lo: b.Lo.Clone(), Hi: b.Hi.Clone()} }

// Equal reports componentwise equality.
func (b Box) Equal(o Box) bool { return b.Lo.Equal(o.Lo) && b.Hi.Equal(o.Hi) }

// Set overwrites b in place with a copy of o, reusing b's backing arrays
// when they have the capacity (the pooled-object counterpart of Clone).
func (b *Box) Set(o Box) {
	b.Lo = append(b.Lo[:0], o.Lo...)
	b.Hi = append(b.Hi[:0], o.Hi...)
}

// SetAt collapses b in place to the degenerate single-node box at c,
// reusing b's backing arrays (the pooled-object counterpart of BoxAt).
func (b *Box) SetAt(c Coord) {
	b.Lo = append(b.Lo[:0], c...)
	b.Hi = append(b.Hi[:0], c...)
}

// Extend grows b in place to the hull of b and o (the in-place Hull).
func (b *Box) Extend(o Box) {
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] {
			b.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] > b.Hi[i] {
			b.Hi[i] = o.Hi[i]
		}
	}
}

// Contains reports whether c lies inside the box.
func (b Box) Contains(c Coord) bool {
	if len(c) != len(b.Lo) {
		return false
	}
	for i := range c {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsOn reports whether value v lies within the box's extent on axis.
func (b Box) ContainsOn(axis, v int) bool { return v >= b.Lo[axis] && v <= b.Hi[axis] }

// Intersects reports whether the two boxes share at least one node.
func (b Box) Intersects(o Box) bool {
	for i := range b.Lo {
		if b.Hi[i] < o.Lo[i] || o.Hi[i] < b.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the common sub-box and whether it is non-empty.
func (b Box) Intersection(o Box) (Box, bool) {
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Lo))
	for i := range b.Lo {
		lo[i] = max(b.Lo[i], o.Lo[i])
		hi[i] = min(b.Hi[i], o.Hi[i])
		if lo[i] > hi[i] {
			return Box{}, false
		}
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Hull returns the smallest box containing both b and o.
func (b Box) Hull(o Box) Box {
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Lo))
	for i := range b.Lo {
		lo[i] = min(b.Lo[i], o.Lo[i])
		hi[i] = max(b.Hi[i], o.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// Include grows the box in place so it contains c.
func (b *Box) Include(c Coord) {
	for i := range c {
		if c[i] < b.Lo[i] {
			b.Lo[i] = c[i]
		}
		if c[i] > b.Hi[i] {
			b.Hi[i] = c[i]
		}
	}
}

// Expand returns the box grown by r on every side (clipped by nothing; use
// Clip to stay inside a mesh). Expand(1) turns a block's interior box into
// the frame box whose faces are the adjacent surfaces of Definition 3.
func (b Box) Expand(r int) Box {
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Lo))
	for i := range b.Lo {
		lo[i] = b.Lo[i] - r
		hi[i] = b.Hi[i] + r
	}
	return Box{Lo: lo, Hi: hi}
}

// Clip returns the part of the box inside the shape's address space and
// whether it is non-empty.
func (b Box) Clip(s *Shape) (Box, bool) {
	lo := make(Coord, len(b.Lo))
	hi := make(Coord, len(b.Lo))
	for i := range b.Lo {
		lo[i] = max(b.Lo[i], 0)
		hi[i] = min(b.Hi[i], s.Radix(i)-1)
		if lo[i] > hi[i] {
			return Box{}, false
		}
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Extent returns Hi-Lo+1 on the axis: the block's edge length there.
func (b Box) Extent(axis int) int { return b.Hi[axis] - b.Lo[axis] + 1 }

// MaxExtent returns the longest edge length over all axes; this is the
// per-block contribution to e_max in Table 1.
func (b Box) MaxExtent() int {
	m := 0
	for i := range b.Lo {
		if e := b.Extent(i); e > m {
			m = e
		}
	}
	return m
}

// Volume returns the node count of the box.
func (b Box) Volume() int {
	v := 1
	for i := range b.Lo {
		v *= b.Extent(i)
	}
	return v
}

// Each invokes fn for every node coordinate inside the box, in row-major
// order. The callback receives a reused scratch coordinate: clone it to keep.
func (b Box) Each(fn func(Coord)) {
	c := b.Lo.Clone()
	for {
		fn(c)
		axis := 0
		for axis < len(c) {
			c[axis]++
			if c[axis] <= b.Hi[axis] {
				break
			}
			c[axis] = b.Lo[axis]
			axis++
		}
		if axis == len(c) {
			return
		}
	}
}

// EachID invokes fn for every node of the box that lies inside the shape.
func (b Box) EachID(s *Shape, fn func(NodeID)) {
	clipped, ok := b.Clip(s)
	if !ok {
		return
	}
	clipped.Each(func(c Coord) { fn(s.Index(c)) })
}

// String renders the paper's block notation "[lo1:hi1, lo2:hi2, ...]".
func (b Box) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := range b.Lo {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d:%d", b.Lo[i], b.Hi[i])
	}
	sb.WriteByte(']')
	return sb.String()
}
