package grid

import (
	"testing"
	"testing/quick"
)

func mkBox(lo, hi Coord) Box { return NewBox(lo, hi) }

func TestNewBoxValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted box accepted")
		}
	}()
	NewBox(Coord{2, 2}, Coord{1, 3})
}

func TestNewBoxDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched corners accepted")
		}
	}()
	NewBox(Coord{1}, Coord{2, 3})
}

func TestBoxContains(t *testing.T) {
	b := mkBox(Coord{3, 5, 3}, Coord{5, 6, 4})
	if !b.Contains(Coord{3, 5, 3}) || !b.Contains(Coord{5, 6, 4}) || !b.Contains(Coord{4, 5, 4}) {
		t.Error("box must contain its corners and interior")
	}
	for _, c := range []Coord{{2, 5, 3}, {6, 6, 4}, {4, 7, 4}, {4, 5, 5}, {4, 5}} {
		if b.Contains(c) {
			t.Errorf("box should not contain %v", c)
		}
	}
	if !b.ContainsOn(0, 4) || b.ContainsOn(0, 6) {
		t.Error("ContainsOn wrong")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := mkBox(Coord{0, 0}, Coord{4, 4})
	b := mkBox(Coord{4, 4}, Coord{6, 6})
	c := mkBox(Coord{5, 0}, Coord{7, 3})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("touching boxes must intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes intersect")
	}
	got, ok := a.Intersection(b)
	if !ok || !got.Equal(mkBox(Coord{4, 4}, Coord{4, 4})) {
		t.Errorf("Intersection = %v, %v", got, ok)
	}
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint intersection non-empty")
	}
}

func TestBoxHullInclude(t *testing.T) {
	a := mkBox(Coord{2, 3}, Coord{4, 5})
	b := mkBox(Coord{0, 4}, Coord{3, 8})
	h := a.Hull(b)
	if !h.Equal(mkBox(Coord{0, 3}, Coord{4, 8})) {
		t.Errorf("Hull = %v", h)
	}
	in := a.Clone()
	in.Include(Coord{7, 1})
	if !in.Equal(mkBox(Coord{2, 1}, Coord{7, 5})) {
		t.Errorf("Include = %v", in)
	}
}

func TestBoxExpandClip(t *testing.T) {
	s := MustShape(10, 10)
	b := mkBox(Coord{0, 4}, Coord{2, 6})
	e := b.Expand(1)
	if !e.Equal(Box{Lo: Coord{-1, 3}, Hi: Coord{3, 7}}) {
		t.Errorf("Expand = %v", e)
	}
	clipped, ok := e.Clip(s)
	if !ok || !clipped.Equal(mkBox(Coord{0, 3}, Coord{3, 7})) {
		t.Errorf("Clip = %v, %v", clipped, ok)
	}
	far := Box{Lo: Coord{12, 12}, Hi: Coord{14, 14}}
	if _, ok := far.Clip(s); ok {
		t.Error("off-mesh box clipped to non-empty")
	}
}

func TestBoxExtentVolume(t *testing.T) {
	b := mkBox(Coord{3, 5, 3}, Coord{5, 6, 4})
	if b.Extent(0) != 3 || b.Extent(1) != 2 || b.Extent(2) != 2 {
		t.Errorf("extents wrong: %v", b)
	}
	if b.MaxExtent() != 3 {
		t.Errorf("MaxExtent = %d", b.MaxExtent())
	}
	if b.Volume() != 12 {
		t.Errorf("Volume = %d", b.Volume())
	}
}

func TestBoxEach(t *testing.T) {
	b := mkBox(Coord{1, 2}, Coord{2, 4})
	var got []Coord
	b.Each(func(c Coord) { got = append(got, c.Clone()) })
	if len(got) != b.Volume() {
		t.Fatalf("Each visited %d nodes, want %d", len(got), b.Volume())
	}
	seen := map[string]bool{}
	for _, c := range got {
		if !b.Contains(c) {
			t.Fatalf("Each visited %v outside box", c)
		}
		if seen[c.String()] {
			t.Fatalf("Each visited %v twice", c)
		}
		seen[c.String()] = true
	}
}

func TestBoxEachID(t *testing.T) {
	s := MustShape(5, 5)
	// Box partially off-mesh: only the clipped nodes are visited.
	b := Box{Lo: Coord{-1, 3}, Hi: Coord{1, 6}}
	count := 0
	b.EachID(s, func(id NodeID) {
		c := s.CoordOf(id)
		if c[0] > 1 || c[1] < 3 {
			t.Fatalf("EachID visited %v", c)
		}
		count++
	})
	if count != 2*2 { // x in {0,1}, y in {3,4}
		t.Fatalf("EachID visited %d, want 4", count)
	}
}

func TestBoxString(t *testing.T) {
	b := mkBox(Coord{3, 5, 3}, Coord{5, 6, 4})
	if got := b.String(); got != "[3:5, 5:6, 3:4]" {
		t.Errorf("String = %q", got)
	}
}

func TestBoxAt(t *testing.T) {
	b := BoxAt(Coord{2, 3})
	if b.Volume() != 1 || !b.Contains(Coord{2, 3}) {
		t.Errorf("BoxAt wrong: %v", b)
	}
}

func TestBoxPropertyIntersectionSymmetric(t *testing.T) {
	mk := func(a, b, c, d uint8) Box {
		lo := Coord{int(a % 8), int(b % 8)}
		hi := Coord{lo[0] + int(c%4), lo[1] + int(d%4)}
		return Box{Lo: lo, Hi: hi}
	}
	prop := func(a, b, c, d, e, f, g, h uint8) bool {
		x, y := mk(a, b, c, d), mk(e, f, g, h)
		if x.Intersects(y) != y.Intersects(x) {
			return false
		}
		ix, ok1 := x.Intersection(y)
		iy, ok2 := y.Intersection(x)
		if ok1 != ok2 || ok1 != x.Intersects(y) {
			return false
		}
		if ok1 && !ix.Equal(iy) {
			return false
		}
		// Hull contains both.
		hu := x.Hull(y)
		return hu.Contains(x.Lo) && hu.Contains(x.Hi) && hu.Contains(y.Lo) && hu.Contains(y.Hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPropertyVolumeMatchesEach(t *testing.T) {
	prop := func(a, b, c, d uint8) bool {
		lo := Coord{int(a % 6), int(b % 6)}
		hi := Coord{lo[0] + int(c%3), lo[1] + int(d%3)}
		box := Box{Lo: lo, Hi: hi}
		count := 0
		box.Each(func(Coord) { count++ })
		return count == box.Volume()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
