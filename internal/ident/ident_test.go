package ident

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// harness wires a mesh with stabilized labeling + frame announcements and
// an identification protocol, capturing completions.
type harness struct {
	m     *mesh.Mesh
	det   *frame.Detector
	store *info.Store
	p     *Protocol
	found []grid.Box
	at    []grid.NodeID
}

func newHarness(t *testing.T, dims []int, faults []grid.Coord) *harness {
	t.Helper()
	shape, err := grid.NewShape(dims...)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(shape)
	var seeds []grid.NodeID
	for _, c := range faults {
		id := shape.Index(c)
		m.Fail(id)
		seeds = append(seeds, id)
	}
	res := block.Stabilize(m, seeds...)
	if !res.Converged {
		t.Fatal("labeling not converged")
	}
	det := frame.NewDetector(m)
	det.Seed(seeds...)
	det.Run()
	store := info.NewStore(m.NumNodes())
	h := &harness{m: m, det: det, store: store}
	h.p = NewProtocol(m, det, store)
	h.p.OnIdentified = func(b grid.Box, corner grid.NodeID) {
		h.found = append(h.found, b)
		h.at = append(h.at, corner)
	}
	return h
}

// kick notifies the protocol of all current announcements (as core would
// with the detector change feed) and runs rounds to quiescence.
func (h *harness) kick(t *testing.T) int {
	t.Helper()
	for id := 0; id < h.m.NumNodes(); id++ {
		if h.det.Announcement(grid.NodeID(id)).Level > 0 {
			h.p.Notify(grid.NodeID(id))
		}
	}
	rounds := 0
	for !h.p.Quiescent() {
		h.p.Round()
		rounds++
		if rounds > 20000 {
			t.Fatal("identification did not quiesce")
		}
	}
	return rounds
}

// depositAll mimics core's post-identification flood so corners get their
// records (stopping duplicate runs) — done instantly for test simplicity.
func (h *harness) depositAll(epoch uint32) {
	for i, b := range h.found {
		_ = i
		frame.EachShellNode(b, func(c grid.Coord, _ int) {
			if h.m.Shape().Contains(c) {
				h.store.Add(h.m.Shape().Index(c), info.Record{Box: b.Clone(), Epoch: epoch})
			}
		})
	}
}

// TestFigure5Identification3D reproduces the paper's Figure 5: the 3-phase
// identification of the Figure 1 block in a 3-D mesh. Every one of the 8
// corners initiates; all completed runs must identify the same box.
func TestFigure5Identification3D(t *testing.T) {
	h := newHarness(t, []int{10, 10, 10},
		[]grid.Coord{{3, 5, 4}, {4, 5, 4}, {5, 5, 3}, {3, 6, 3}})
	rounds := h.kick(t)
	want := grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})
	if len(h.found) == 0 {
		t.Fatalf("no identification completed (started=%d failed=%d)", h.p.Started, h.p.Failed)
	}
	for i, b := range h.found {
		if !b.Equal(want) {
			t.Fatalf("identification %d = %v, want %v", i, b, want)
		}
	}
	// The information forms at a corner opposite some initiator: every
	// completion node must be an n-level corner of the block.
	for _, id := range h.at {
		if !frame.IsCorner(want, h.m.Shape().CoordOf(id)) {
			t.Fatalf("completion at non-corner %v", h.m.Shape().CoordOf(id))
		}
	}
	t.Logf("identified %d times in %d rounds, %d hops", len(h.found), rounds, h.p.Hops)
}

// TestIdentification2D: in 2-D the identification is the base-case ring
// walk (the model of reference [9]).
func TestIdentification2D(t *testing.T) {
	h := newHarness(t, []int{12, 12}, []grid.Coord{{5, 5}, {6, 6}})
	h.kick(t)
	want := grid.NewBox(grid.Coord{5, 5}, grid.Coord{6, 6})
	if len(h.found) == 0 {
		t.Fatalf("no completion (started=%d failed=%d)", h.p.Started, h.p.Failed)
	}
	for _, b := range h.found {
		if !b.Equal(want) {
			t.Fatalf("identified %v, want %v", b, want)
		}
	}
}

// TestIdentification4D exercises the full recursion: a 4-D block needs
// nested 3-level identifications whose sections are themselves identified
// by ring walks.
func TestIdentification4D(t *testing.T) {
	h := newHarness(t, []int{7, 7, 7, 7},
		[]grid.Coord{{3, 3, 3, 3}, {4, 4, 3, 3}})
	h.kick(t)
	// Faults at (3,3,3,3) and (4,4,3,3) are diagonal in the x,y plane:
	// block [3:4, 3:4, 3:3, 3:3].
	want := grid.NewBox(grid.Coord{3, 3, 3, 3}, grid.Coord{4, 4, 3, 3})
	if len(h.found) == 0 {
		t.Fatalf("no 4-D completion (started=%d failed=%d)", h.p.Started, h.p.Failed)
	}
	for _, b := range h.found {
		if !b.Equal(want) {
			t.Fatalf("identified %v, want %v", b, want)
		}
	}
	t.Logf("4-D identified %d times, %d hops", len(h.found), h.p.Hops)
}

// TestIdentification5D pushes the recursion one level further: a 5-D block
// requires 4-level identifications nested inside the 5-level process.
func TestIdentification5D(t *testing.T) {
	h := newHarness(t, []int{5, 5, 5, 5, 5}, []grid.Coord{{2, 2, 2, 2, 2}})
	h.kick(t)
	want := grid.BoxAt(grid.Coord{2, 2, 2, 2, 2})
	if len(h.found) == 0 {
		t.Fatalf("no 5-D completion (started=%d failed=%d)", h.p.Started, h.p.Failed)
	}
	for _, b := range h.found {
		if !b.Equal(want) {
			t.Fatalf("identified %v, want %v", b, want)
		}
	}
	t.Logf("5-D identified %d times, %d hops", len(h.found), h.p.Hops)
}

// TestIdentificationSingleton: the smallest possible block.
func TestIdentificationSingleton(t *testing.T) {
	h := newHarness(t, []int{8, 8}, []grid.Coord{{4, 4}})
	h.kick(t)
	want := grid.BoxAt(grid.Coord{4, 4})
	if len(h.found) == 0 {
		t.Fatal("no completion for singleton")
	}
	for _, b := range h.found {
		if !b.Equal(want) {
			t.Fatalf("identified %v, want %v", b, want)
		}
	}
}

// TestInitiationSuppressedByRecord: a corner already holding its block's
// record must not re-initiate.
func TestInitiationSuppressedByRecord(t *testing.T) {
	h := newHarness(t, []int{8, 8}, []grid.Coord{{4, 4}})
	h.kick(t)
	started := h.p.Started
	h.depositAll(1)
	// Re-notify everything: no new runs should start.
	rounds := h.kick(t)
	if h.p.Started != started {
		t.Fatalf("re-initiated despite records: %d -> %d", started, h.p.Started)
	}
	_ = rounds
}

// TestIdentificationDiscardsOnInterference: a second block parked directly
// on the first block's ring makes the walk impossible; the runs must fail
// (TTL/discard) without reporting a wrong box, and retries must stay
// bounded.
func TestIdentificationDiscardsOnInterference(t *testing.T) {
	// Faults at distance 2: (4,4) and (4,6). Both stay singleton blocks
	// ((4,5) has two faulty neighbors along the SAME axis, so it remains
	// enabled), but each block's ring passes through the other block's
	// fault node.
	h := newHarness(t, []int{10, 10}, []grid.Coord{{4, 4}, {4, 6}})
	h.kick(t)
	for _, b := range h.found {
		// Any completed identification must still be geometrically
		// correct — one of the two singletons.
		okBox := b.Equal(grid.BoxAt(grid.Coord{4, 4})) || b.Equal(grid.BoxAt(grid.Coord{4, 6}))
		if !okBox {
			t.Fatalf("interference produced wrong box %v", b)
		}
	}
	if h.p.Failed == 0 {
		t.Log("note: no run failed; rings fully avoided the interference")
	}
	// Quiescence itself (asserted by kick) proves retries are bounded.
}

// TestRunsFailFastOnMidFlightChange: killing a node mid-identification
// must not corrupt the result; eventually the retry identifies the grown
// block.
func TestRunsFailFastOnMidFlightChange(t *testing.T) {
	h := newHarness(t, []int{12, 12}, []grid.Coord{{5, 5}})
	// Start runs but only a few rounds in, grow the block.
	for id := 0; id < h.m.NumNodes(); id++ {
		if h.det.Announcement(grid.NodeID(id)).Level > 0 {
			h.p.Notify(grid.NodeID(id))
		}
	}
	for i := 0; i < 2; i++ {
		h.p.Round()
	}
	// New fault adjacent diagonal: block grows to [5:6, 5:6].
	nid := h.m.Shape().Index(grid.Coord{6, 6})
	h.m.Fail(nid)
	st := block.NewStepper(h.m)
	st.Seed(nid)
	for !st.Quiescent() {
		if ch := st.Round(); ch > 0 {
			h.det.Seed(st.LastChanged()...)
		}
		h.det.Round()
		h.p.Round()
	}
	for !h.det.Quiescent() {
		h.det.Round()
	}
	// Let everything settle; notify new corners.
	rounds := h.kick(t)
	_ = rounds
	want := grid.NewBox(grid.Coord{5, 5}, grid.Coord{6, 6})
	sawGrown := false
	for _, b := range h.found {
		if b.Equal(want) {
			sawGrown = true
		} else if !b.Equal(grid.BoxAt(grid.Coord{5, 5})) {
			t.Fatalf("wrong box identified: %v", b)
		}
	}
	if !sawGrown {
		t.Fatalf("grown block never identified: found=%v failed=%d", h.found, h.p.Failed)
	}
}

// TestHopAccounting: identification messages advance one hop per round, so
// hops <= active walkers * rounds and rounds scale with block perimeter.
func TestHopAccounting(t *testing.T) {
	h := newHarness(t, []int{24, 24}, []grid.Coord{{10, 10}, {11, 11}, {12, 12}})
	rounds := h.kick(t)
	if h.p.Hops == 0 || rounds == 0 {
		t.Fatal("no work recorded")
	}
	// The block is 3x3; a ring walk is ~16 hops; the whole identification
	// must finish in rounds proportional to the perimeter, far below the
	// mesh diameter budget (TTL).
	if rounds > h.p.TTL {
		t.Fatalf("rounds %d exceeded TTL %d", rounds, h.p.TTL)
	}
	t.Logf("3x3 block in 24x24 mesh: %d rounds, %d hops, %d runs", rounds, h.p.Hops, h.p.Started)
}

// TestQuiescentInitially: a protocol with no notifications does nothing.
func TestQuiescentInitially(t *testing.T) {
	h := newHarness(t, []int{6, 6}, nil)
	if !h.p.Quiescent() {
		t.Fatal("fresh protocol not quiescent")
	}
	if h.p.Round() != 0 {
		t.Fatal("idle round reported activity")
	}
}
