// Package ident implements Algorithm 2's identification process: the
// distributed, hop-by-hop discovery of a faulty block's extent, started at
// a newly-formed n-level corner, organized in the paper's three phases:
//
//	Phase 1: k-1 identification messages travel from a k-level corner along
//	         k-1 of its surface directions, visiting every k-level edge node.
//	Phase 2: at each edge node, a (k-1)-level identification of the block's
//	         cross-section at that position is activated; the base case
//	         (2-level) is a pair of messages walking the adjacent ring of a
//	         2-D section in opposite orientations, meeting at the opposite
//	         2-level corner with the section extents.
//	Phase 3: a collection message walks the opposite edge, gathering each
//	         position's identified section, checking consistency ("if there
//	         is a different section, the block is not stable"), and delivers
//	         the assembled block information to the k-level corner opposite
//	         the initialization corner.
//
// Every message advances one hop per round and takes decisions from local
// information only: the status of the nodes adjacent to it and the frame
// announcements (internal/frame) of its one-hop neighborhood. A message
// that senses an inconsistency — a faulty or disabled node in the
// forwarding direction, a section that does not match — kills its run, and
// every run carries a TTL after which it is discarded, exactly as Section 3
// prescribes for unstable blocks. Initiating corners retry with a backoff
// until their block's record reaches them.
//
// When the opposite corner has assembled consistent information from all
// n-1 collectors, the protocol reports the identified block through the
// OnIdentified callback; the orchestrator (internal/core) then launches the
// combined phase-4/boundary flood (internal/boundary) that distributes the
// record over the block's frame and boundary walls.
package ident

import (
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// Protocol drives all in-flight identification runs.
type Protocol struct {
	m     *mesh.Mesh      //meshvet:keep dependency, not per-trial state
	det   *frame.Detector //meshvet:keep dependency, not per-trial state
	store *info.Store     //meshvet:keep dependency, not per-trial state

	// OnIdentified is invoked when a run completes with the identified
	// block box and the opposite corner at which the information formed.
	OnIdentified func(box grid.Box, oppositeCorner grid.NodeID) //meshvet:keep orchestrator wiring, not trial state

	// TTL is the round budget of a run before it is discarded.
	TTL int //meshvet:keep tuning knob, survives trials
	// Backoff is the delay before a corner may re-initiate.
	Backoff int //meshvet:keep tuning knob, survives trials
	// MaxRetries bounds re-initiations per corner between Notify events,
	// guaranteeing quiescence even around permanently unidentifiable
	// configurations (e.g. interfering blocks closer than two hops).
	MaxRetries int //meshvet:keep tuning knob, survives trials

	retryCount map[grid.NodeID]int

	runs    []*run
	walkers []*walker
	// spareRuns/spareSubs/spareWalkers are free lists of retired protocol
	// objects; with them (plus the per-run box arena) a fault process that
	// cycles identifications through the protocol allocates nothing once
	// warm. deadFresh/deadReady stage retired runs for recycling: a
	// deadline-expired run's walkers are only dropped by the NEXT round's
	// walker filter, so its subRuns must survive one more round.
	spareRuns    []*run
	spareSubs    []*subRun
	spareWalkers []*walker
	deadFresh    []*run
	deadReady    []*run
	retryAt      map[grid.NodeID]int
	// pending holds nodes to consider for initiation (fed by announcement
	// changes and by retry wakeups); inPending dedups. pendingSpare is the
	// drained buffer of the previous round, recycled to avoid a per-round
	// allocation (initiate swaps the two).
	pending      []grid.NodeID
	pendingSpare []grid.NodeID //meshvet:keep recycled buffer; initiate swaps it with pending
	inPending    map[grid.NodeID]struct{}
	// retryQueue holds scheduled re-initiations of corners whose runs
	// failed or were discarded.
	retryQueue []retryEntry
	round      int
	seq        int
	wseq       int
	// scratchA/scratchB are reusable coordinate buffers for initiate, and
	// scratchC for launch/advanceRing, so no round performs a coordinate
	// allocation.
	scratchA, scratchB, scratchC grid.Coord //meshvet:keep scratch buffers, overwritten before every use

	// Hops counts walker moves (identification message cost).
	Hops int
	// Started, Completed, Failed count runs for the harness.
	Started, Completed, Failed int
}

// NewProtocol builds an identification protocol over the mesh, frame
// detector and info store.
func NewProtocol(m *mesh.Mesh, det *frame.Detector, store *info.Store) *Protocol {
	diam := m.Shape().Diameter()
	return &Protocol{
		m:          m,
		det:        det,
		store:      store,
		TTL:        6*diam + 24,
		Backoff:    2*diam + 8,
		MaxRetries: 4,
		retryAt:    make(map[grid.NodeID]int),
		retryCount: make(map[grid.NodeID]int),
		inPending:  make(map[grid.NodeID]struct{}),
		scratchA:   make(grid.Coord, m.Shape().Dims()),
		scratchB:   make(grid.Coord, m.Shape().Dims()),
		scratchC:   make(grid.Coord, m.Shape().Dims()),
	}
}

// Reset abandons every in-flight run and all retry state so the protocol
// can be reused for a new trial; tuning knobs (TTL, Backoff, MaxRetries)
// and map buckets are retained.
func (p *Protocol) Reset() {
	clear(p.retryCount)
	clear(p.retryAt)
	clear(p.inPending)
	p.spareWalkers = append(p.spareWalkers, p.walkers...)
	for _, r := range p.runs {
		p.recycleRun(r)
	}
	for _, r := range p.deadFresh {
		p.recycleRun(r)
	}
	for _, r := range p.deadReady {
		p.recycleRun(r)
	}
	p.deadFresh = p.deadFresh[:0]
	p.deadReady = p.deadReady[:0]
	p.runs = p.runs[:0]
	p.walkers = p.walkers[:0]
	p.pending = p.pending[:0]
	p.retryQueue = p.retryQueue[:0]
	p.round, p.seq, p.wseq = 0, 0, 0
	p.Hops, p.Started, p.Completed, p.Failed = 0, 0, 0, 0
}

// recycleRun parks a retired run and its subRuns on the free lists. Callers
// must guarantee no live walker still references the run.
func (p *Protocol) recycleRun(r *run) {
	p.spareSubs = append(p.spareSubs, r.subs...)
	p.spareRuns = append(p.spareRuns, r)
}

// getRun acquires a run from the free list (or allocates one) with all
// per-run state cleared; map buckets and the box arena keep their storage.
func (p *Protocol) getRun() *run {
	if n := len(p.spareRuns); n > 0 {
		r := p.spareRuns[n-1]
		p.spareRuns = p.spareRuns[:n-1]
		clear(r.results)
		r.failed, r.done = false, false
		r.top = nil
		r.subs = r.subs[:0]
		r.arenaUsed = 0
		return r
	}
	return &run{results: make(map[grid.NodeID]grid.Box)}
}

// getSub acquires a subRun with containers emptied (capacity retained);
// the caller sets every scalar field it needs.
func (p *Protocol) getSub() *subRun {
	if n := len(p.spareSubs); n > 0 {
		s := p.spareSubs[n-1]
		p.spareSubs = p.spareSubs[:n-1]
		s.r, s.parent = nil, nil
		s.parentAxis, s.level = 0, 0
		s.isFirst = false
		s.freeAxes = s.freeAxes[:0]
		s.travelAxes = nil
		clear(s.edgeDir)
		clear(s.collectorUp)
		clear(s.collected)
		s.start, s.dirs = grid.InvalidNode, 0
		s.ringNode, s.ringBox = grid.InvalidNode, nil
		s.deliverNode = grid.InvalidNode
		return s
	}
	return &subRun{}
}

// getWalker acquires a walker with every scalar field zeroed; the seen/res
// and collect hull boxes keep their backing arrays for reuse.
func (p *Protocol) getWalker() *walker {
	var w *walker
	if n := len(p.spareWalkers); n > 0 {
		w = p.spareWalkers[n-1]
		p.spareWalkers = p.spareWalkers[:n-1]
	} else {
		w = &walker{}
	}
	w.s = nil
	w.kind = edgeWalker
	w.pos, w.dir, w.axis = grid.InvalidNode, 0, 0
	w.inward, w.legs = 0, 0
	w.hasFirst, w.folded, w.done, w.spawned = false, false, false, false
	return w
}

// retryEntry schedules a node for re-consideration at a future round.
type retryEntry struct {
	at   int
	node grid.NodeID
}

// Notify feeds nodes whose frame announcement changed (or that otherwise
// deserve a look) into the initiation queue, resetting their retry budget:
// fresh local conditions deserve fresh attempts. The orchestrator calls it
// with the frame detector's per-round change list.
func (p *Protocol) Notify(ids ...grid.NodeID) {
	for _, id := range ids {
		delete(p.retryCount, id)
		p.pend(id)
	}
}

func (p *Protocol) pend(id grid.NodeID) {
	if _, dup := p.inPending[id]; !dup {
		p.inPending[id] = struct{}{}
		p.pending = append(p.pending, id)
	}
}

// run is one identification process, initiated at one n-level corner.
type run struct {
	id        int
	initiator grid.NodeID
	deadline  int
	failed    bool
	done      bool
	// results holds completed sub-identifications, keyed by the node where
	// the identified section information rests (the sub's opposite corner).
	// Every stored box is stashed in the arena first, so map values stay
	// valid however the walkers that produced them are recycled.
	results map[grid.NodeID]grid.Box
	top     *subRun
	// subs tracks every subRun of the run for free-list recycling.
	subs []*subRun
	// arena is the run-owned box storage behind results/collected values;
	// arenaUsed is the bump cursor, rewound when the run is reused.
	arena     []grid.Box
	arenaUsed int
}

// stash copies b into the run's arena and returns the arena-owned copy,
// reusing storage left by earlier trials.
func (r *run) stash(b grid.Box) grid.Box {
	if r.arenaUsed < len(r.arena) {
		s := &r.arena[r.arenaUsed]
		s.Set(b)
		r.arenaUsed++
		return *s
	}
	r.arena = append(r.arena, b.Clone())
	r.arenaUsed++
	return r.arena[len(r.arena)-1]
}

// subRun is one (possibly nested) k-level identification: the top-level one
// plus one per edge position per level above 2.
type subRun struct {
	r          *run
	parent     *subRun
	parentAxis int  // travel axis of the parent edge this sub hangs off
	isFirst    bool // first position on the parent's edge (collector trigger)
	level      int
	freeAxes   []int
	start      grid.NodeID
	// dirs is the start corner's surface-direction role for this sub; the
	// expected frame roles of every node the walkers touch derive from it,
	// which keeps the walk unambiguous even when other blocks' frames are
	// nearby.
	dirs grid.DirSet

	travelAxes []int
	edgeDir    map[int]grid.Dir // per travel axis, the phase-1 direction

	// ring rendezvous (level 2 only). ringVal is the sub-owned storage
	// behind ringBox so the first walker's result survives its recycling.
	ringNode grid.NodeID
	ringBox  *grid.Box
	ringVal  grid.Box

	// phase 3 (level >= 3 only).
	collectorUp map[int]bool     // travel axis -> collector spawned
	collected   map[int]grid.Box // travel axis -> delivered hull
	deliverNode grid.NodeID      // where collectors delivered (must agree)
}

type walkerKind uint8

const (
	edgeWalker walkerKind = iota
	ringWalker
	collectWalker
)

// walker is one identification message.
type walker struct {
	id   int
	s    *subRun
	kind walkerKind
	pos  grid.NodeID
	dir  grid.Dir // edge/collect: travel direction; ring: current move dir
	axis int      // edge/collect: travel axis

	inward grid.Dir // ring: direction toward the block section
	legs   int      // ring: corners passed
	seen   grid.Box // ring: extremes of visited corner coordinates
	res    grid.Box // ring: reusable storage for ringResult

	hullVal  grid.Box // collect: accumulated block information
	firstVal grid.Box // collect: first section, for the consistency check
	hasFirst bool     // collect: firstVal/hullVal hold a section
	folded   bool     // collect: current node's section already folded
	done     bool
	spawned  bool // edge: whether this position's sub was spawned
}

// Round advances the protocol one round: initiates runs at eligible
// corners, moves every walker one hop, and retires finished or failed runs.
// It returns the number of elementary actions (moves + initiations), which
// is zero at quiescence.
func (p *Protocol) Round() int {
	p.round++
	actions := p.initiate()

	// Advance walkers in id order for determinism.
	for _, w := range p.walkers {
		if w.done || w.s.r.failed || w.s.r.done {
			continue
		}
		actions += p.advance(w)
	}

	// Retire walkers and runs. Dropped walkers go straight to the free
	// list (nothing references a walker but this slice); retired runs are
	// staged through deadFresh/deadReady because a deadline-expired run's
	// walkers are only dropped by the NEXT round's walker filter.
	liveW := p.walkers[:0]
	for _, w := range p.walkers {
		if !w.done && !w.s.r.failed && !w.s.r.done {
			liveW = append(liveW, w)
		} else {
			p.spareWalkers = append(p.spareWalkers, w)
		}
	}
	p.walkers = liveW
	liveR := p.runs[:0]
	for _, r := range p.runs {
		if r.done {
			p.Completed++
			p.deadFresh = append(p.deadFresh, r)
			continue
		}
		if r.failed || p.round > r.deadline {
			p.Failed++
			r.failed = true
			// Schedule a retry from the initiator if budget remains.
			if p.retryCount[r.initiator] < p.MaxRetries {
				p.retryQueue = append(p.retryQueue, retryEntry{at: p.retryAt[r.initiator], node: r.initiator})
			}
			p.deadFresh = append(p.deadFresh, r)
			continue
		}
		liveR = append(liveR, r)
	}
	p.runs = liveR
	for _, r := range p.deadReady {
		p.recycleRun(r)
	}
	p.deadReady, p.deadFresh = p.deadFresh, p.deadReady[:0]
	return actions
}

// Quiescent reports whether nothing is in flight or scheduled.
func (p *Protocol) Quiescent() bool {
	return len(p.runs) == 0 && len(p.walkers) == 0 &&
		len(p.pending) == 0 && len(p.retryQueue) == 0
}

// Active returns the number of in-flight runs.
func (p *Protocol) Active() int { return len(p.runs) }

// initiate starts a run at every pending enabled n-level corner that lacks
// a record of the block it is a corner of and whose backoff has expired.
func (p *Protocol) initiate() int {
	// Wake scheduled retries that are due (without resetting retry
	// budgets) and drop retries whose corner has meanwhile received its
	// block record from another initiator's construction.
	n := p.m.Shape().Dims()
	scratchRetry := p.scratchA
	due := p.retryQueue[:0]
	for _, e := range p.retryQueue {
		// Drop retries that became moot: the node stopped being an
		// n-level corner (its announcement was transient), or it received
		// its block record from another initiator's construction.
		if int(p.det.Announcement(e.node).Level) != n ||
			p.hasCornerRecord(e.node, p.m.Shape().Coord(e.node, scratchRetry)) {
			continue
		}
		if e.at <= p.round {
			p.pend(e.node)
		} else {
			due = append(due, e)
		}
	}
	p.retryQueue = due

	started := 0
	scratch := p.scratchB
	todo := p.pending
	p.pending = p.pendingSpare[:0]
	for _, id := range todo {
		delete(p.inPending, id)
		if p.m.Status(id) != mesh.Enabled {
			continue
		}
		for _, ann := range p.det.Records(id) {
			if int(ann.Level) != n {
				continue
			}
			c := p.m.Shape().Coord(id, scratch)
			if p.hasCornerRecordFor(id, c, ann.Dirs) {
				continue
			}
			// The retry budget bounds total initiations from this corner
			// between Notify events, whatever the outcome of earlier runs;
			// without it, a corner serving two blocks would re-identify
			// forever when one block's record cannot reach it.
			if p.retryCount[id] >= p.MaxRetries {
				continue
			}
			if at, ok := p.retryAt[id]; ok && p.round < at {
				// Back off: re-examine when the backoff expires.
				p.retryQueue = append(p.retryQueue, retryEntry{at: at, node: id})
				continue
			}
			p.startRun(id, ann)
			started++
		}
	}
	p.pendingSpare = todo[:0]
	return started
}

// hasCornerRecord reports whether node id already holds a block record it
// is an n-level corner of (any role).
func (p *Protocol) hasCornerRecord(id grid.NodeID, c grid.Coord) bool {
	for _, r := range p.store.At(id) {
		if frame.IsCorner(r.Box, c) {
			return true
		}
	}
	return false
}

// hasCornerRecordFor reports whether node id holds a block record matching
// the specific corner role (surface directions).
func (p *Protocol) hasCornerRecordFor(id grid.NodeID, c grid.Coord, dirs grid.DirSet) bool {
	for _, r := range p.store.At(id) {
		if frame.IsCorner(r.Box, c) && frame.SurfaceDirs(r.Box, c) == dirs {
			return true
		}
	}
	return false
}

func (p *Protocol) startRun(corner grid.NodeID, ann frame.Announcement) {
	p.seq++
	p.Started++
	p.retryCount[corner]++
	n := p.m.Shape().Dims()
	r := p.getRun()
	r.id = p.seq
	r.initiator = corner
	r.deadline = p.round + p.TTL
	top := p.getSub()
	top.r = r
	top.level = n
	for i := 0; i < n; i++ {
		top.freeAxes = append(top.freeAxes, i)
	}
	top.start = corner
	top.dirs = ann.Dirs
	r.top = top
	r.subs = append(r.subs, top)
	p.runs = append(p.runs, r)
	p.retryAt[corner] = p.round + p.TTL + p.Backoff
	p.launch(r.top)
}

// launch starts the walkers of a sub-identification from its start corner,
// whose surface-direction role is s.dirs.
func (p *Protocol) launch(s *subRun) {
	if s.level == 2 {
		// Base case: ring pair around the 2-D section.
		i, j := s.freeAxes[0], s.freeAxes[1]
		di, okI := axisDir(s.dirs, i)
		dj, okJ := axisDir(s.dirs, j)
		if !okI || !okJ {
			s.r.failed = true
			return
		}
		startCoord := p.m.Shape().Coord(s.start, p.scratchC)
		for _, pair := range [2][2]grid.Dir{{di, dj}, {dj, di}} {
			w := p.getWalker()
			w.s, w.kind, w.pos = s, ringWalker, s.start
			w.dir, w.inward = pair[0], pair[1]
			w.seen.SetAt(startCoord)
			p.addWalker(w)
		}
		return
	}
	// Phase 1: k-1 edge walkers; the excluded free axis is the highest.
	s.travelAxes = s.freeAxes[:len(s.freeAxes)-1]
	if s.edgeDir == nil {
		s.edgeDir = make(map[int]grid.Dir, len(s.travelAxes))
		s.collectorUp = make(map[int]bool, len(s.travelAxes))
		s.collected = make(map[int]grid.Box, len(s.travelAxes))
	}
	s.deliverNode = grid.InvalidNode
	for _, a := range s.travelAxes {
		d, ok := axisDir(s.dirs, a)
		if !ok {
			s.r.failed = true
			return
		}
		s.edgeDir[a] = d
		w := p.getWalker()
		w.s, w.kind, w.pos = s, edgeWalker, s.start
		w.dir, w.axis = d, a
		p.addWalker(w)
	}
}

// flipAll reverses every direction in a set: the role of the node opposite
// along every announced axis.
func flipAll(dirs grid.DirSet) grid.DirSet {
	var out grid.DirSet
	for dv := 0; dv < 32; dv++ {
		if dirs.Has(grid.Dir(dv)) {
			out = out.Add(grid.Dir(dv).Opposite())
		}
	}
	return out
}

func (p *Protocol) addWalker(w *walker) {
	p.wseq++
	w.id = p.wseq
	p.walkers = append(p.walkers, w)
}

// axisDir extracts the direction along the given axis from a direction set.
func axisDir(dirs grid.DirSet, axis int) (grid.Dir, bool) {
	if dirs.Has(grid.DirPlus(axis)) {
		return grid.DirPlus(axis), true
	}
	if dirs.Has(grid.DirMinus(axis)) {
		return grid.DirMinus(axis), true
	}
	return grid.InvalidDir, false
}

// advance moves one walker one hop (or lets a collector wait) and returns
// the number of moves performed (0 or 1).
func (p *Protocol) advance(w *walker) int {
	switch w.kind {
	case edgeWalker:
		return p.advanceEdge(w)
	case ringWalker:
		return p.advanceRing(w)
	case collectWalker:
		return p.advanceCollect(w)
	}
	return 0
}

func (p *Protocol) advanceEdge(w *walker) int {
	next := p.m.Neighbor(w.pos, w.dir)
	if next == grid.InvalidNode || p.m.Status(next) != mesh.Enabled {
		w.s.r.failed = true // faulty/disabled/missing node in the forwarding direction
		return 0
	}
	// The roles the walk expects, derived from the initiating corner's
	// role: edge nodes along travel direction d announce the corner's set
	// minus d; the far corner announces the set with d reversed.
	expectEdge := w.s.dirs.Remove(w.dir)
	expectFar := expectEdge.Add(w.dir.Opposite())
	switch {
	case p.det.HasRecord(next, w.s.level-1, expectEdge):
		// Next edge node: move and activate the down-level identification.
		w.pos = next
		p.Hops++
		p.spawnSub(w, next, expectEdge)
		return 1
	case p.det.HasRecord(next, w.s.level, expectFar):
		// The far corner: phase 1 along this edge is complete.
		w.pos = next
		w.done = true
		p.Hops++
		return 1
	default:
		// Frame announcements may still be stabilizing: wait one round
		// rather than failing outright; the TTL bounds total waiting.
		return 0
	}
}

// spawnSub activates the (k-1)-level identification at edge position node,
// whose corner role within the cross-section is dirs.
func (p *Protocol) spawnSub(w *walker, node grid.NodeID, dirs grid.DirSet) {
	parent := w.s
	sub := p.getSub()
	sub.r = parent.r
	sub.parent = parent
	sub.parentAxis = w.axis
	sub.isFirst = !w.spawned
	sub.level = parent.level - 1
	for _, a := range parent.freeAxes {
		if a != w.axis {
			sub.freeAxes = append(sub.freeAxes, a)
		}
	}
	sub.start = node
	sub.dirs = dirs
	parent.r.subs = append(parent.r.subs, sub)
	w.spawned = true
	p.launch(sub)
}

func (p *Protocol) advanceRing(w *walker) int {
	next := p.m.Neighbor(w.pos, w.dir)
	if next == grid.InvalidNode || p.m.Status(next) != mesh.Enabled {
		w.s.r.failed = true
		return 0
	}
	w.pos = next
	p.Hops++
	// Corner test: a ring node that is no longer alongside the section (no
	// bad neighbor toward the block) is a ring corner.
	inwardNb := p.m.Neighbor(next, w.inward)
	alongside := inwardNb != grid.InvalidNode && p.m.Status(inwardNb).Bad()
	if alongside {
		return 1
	}
	cd := p.m.Shape().Coord(next, p.scratchC)
	w.seen.Include(cd)
	w.legs++
	if w.legs < 2 {
		// Turn: the new move direction is the old inward direction; the
		// block is now behind the old travel direction.
		w.dir, w.inward = w.inward, w.dir.Opposite()
		return 1
	}
	// Second corner: the opposite 2-level corner. Assemble the section.
	box, ok := w.ringResult()
	if !ok {
		w.s.r.failed = true
		return 1
	}
	w.done = true
	s := w.s
	if s.ringBox == nil {
		// Copy into sub-owned storage: the walker (and its res buffer) is
		// recycled at the end of this round, the rendezvous box is not.
		s.ringNode = next
		s.ringVal.Set(box)
		s.ringBox = &s.ringVal
		return 1
	}
	if s.ringNode != next || !s.ringBox.Equal(box) {
		s.r.failed = true // the two orientations disagree: unstable
		return 1
	}
	p.completeSub(s, next, box)
	return 1
}

// ringResult turns the extremes the walker has seen into the identified
// section: the ring axes shrink by one on each side (from the shell to the
// interior), all other axes stay pinned at the walker's fixed coordinates.
// The returned box lives in the walker's reusable res buffer; callers that
// outlive the walker must copy it.
func (w *walker) ringResult() (grid.Box, bool) {
	w.res.Set(w.seen)
	for _, a := range w.s.freeAxes {
		w.res.Lo[a]++
		w.res.Hi[a]--
		if w.res.Lo[a] > w.res.Hi[a] {
			return grid.Box{}, false
		}
	}
	return w.res, true
}

func (p *Protocol) advanceCollect(w *walker) int {
	s := w.s
	if !w.folded {
		box, ok := s.r.results[w.pos]
		if !ok {
			return 0 // the section here has not been identified yet: wait
		}
		if !w.hasFirst {
			w.firstVal.Set(box)
			w.hullVal.Set(box)
			w.hasFirst = true
		} else {
			// Consistency check of phase 3: every section must have the
			// same extents on all axes other than the travel axis.
			for l := range box.Lo {
				if l == w.axis {
					continue
				}
				if box.Lo[l] != w.firstVal.Lo[l] || box.Hi[l] != w.firstVal.Hi[l] {
					s.r.failed = true
					return 0
				}
			}
			w.hullVal.Extend(box)
		}
		w.folded = true
	}
	next := p.m.Neighbor(w.pos, w.dir)
	if next == grid.InvalidNode || p.m.Status(next) != mesh.Enabled {
		s.r.failed = true
		return 0
	}
	// The opposite edge's roles are the initiator-side roles with every
	// direction reversed.
	expectNode := flipAll(s.dirs.Remove(s.edgeDir[w.axis]))
	expectCorner := flipAll(s.dirs)
	switch {
	case p.det.HasRecord(next, s.level-1, expectNode):
		w.pos = next
		w.folded = false
		p.Hops++
		return 1
	case p.det.HasRecord(next, s.level, expectCorner):
		// The opposite corner: deliver the assembled information.
		w.pos = next
		w.done = true
		p.Hops++
		p.deliver(s, w.axis, next, w.hullVal)
		return 1
	default:
		return 0
	}
}

// deliver records a collector's hull at the opposite corner and completes
// the sub when every travel axis has delivered consistently.
func (p *Protocol) deliver(s *subRun, axis int, corner grid.NodeID, hull grid.Box) {
	if s.deliverNode == grid.InvalidNode {
		s.deliverNode = corner
	} else if s.deliverNode != corner {
		s.r.failed = true
		return
	}
	if prev, dup := s.collected[axis]; dup && !prev.Equal(hull) {
		s.r.failed = true
		return
	}
	// Stash the hull in the run arena: the collector walker that owns the
	// hull buffer is recycled before the sub completes.
	s.collected[axis] = s.r.stash(hull)
	if len(s.collected) < len(s.travelAxes) {
		return
	}
	var final grid.Box
	haveFinal := false
	for _, a := range s.travelAxes {
		b := s.collected[a]
		if !haveFinal {
			final = b // arena-owned: stable until the run is recycled
			haveFinal = true
		} else if !final.Equal(b) {
			s.r.failed = true
			return
		}
	}
	p.completeSub(s, corner, final)
}

// completeSub finishes a sub-identification: the identified box is now
// available at the opposite corner node. A top-level completion finishes
// the run; a nested completion publishes the result for the parent's
// collector and, for the first position of an edge, triggers that
// collector.
func (p *Protocol) completeSub(s *subRun, node grid.NodeID, box grid.Box) {
	if s.parent == nil {
		s.r.done = true
		if p.OnIdentified != nil {
			p.OnIdentified(box, node)
		}
		return
	}
	s.r.results[node] = s.r.stash(box)
	parent := s.parent
	if s.isFirst && !parent.collectorUp[s.parentAxis] {
		parent.collectorUp[s.parentAxis] = true
		w := p.getWalker()
		w.s, w.kind, w.pos = parent, collectWalker, node
		w.dir, w.axis = parent.edgeDir[s.parentAxis], s.parentAxis
		p.addWalker(w)
	}
}
