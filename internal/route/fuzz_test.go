package route

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// fuzzLoad is a deterministic synthetic LoadView: load values are a pure
// hash of (salt, node/link), so the congested router sees arbitrary but
// stable congestion landscapes — including large and lopsided ones — that
// no engine run would produce, which is exactly what the fuzz target wants.
type fuzzLoad struct{ salt uint64 }

func (l fuzzLoad) mix(a, b uint64) int {
	x := l.salt ^ a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	return int(x % 256)
}

func (l fuzzLoad) Resident(id grid.NodeID) int { return l.mix(uint64(id), 1) }
func (l fuzzLoad) LinkPending(from grid.NodeID, dir grid.Dir) int {
	return l.mix(uint64(from), 40+uint64(dir)) % 16
}

// fuzzRouters are the routers under fuzz: every decision they emit must be
// legal regardless of mesh shape, fault placement or load landscape.
func fuzzRouters() []Router {
	return []Router{
		Limited{},
		Congested{},
		Congested{Cfg: CongestionConfig{Eager: true, Margin: 2}},
		Congested{Cfg: CongestionConfig{NodeWeight: 3, LinkWeight: 1}},
		Blind{},
		DOR{},
	}
}

// FuzzRouterDecision drives one full routing episode on a random mesh with
// random stabilized faults, a random synthetic load landscape and (when
// gated) a pseudo-random contention gate, validating every decision before
// it is applied:
//
//   - a Move decision must name an on-mesh direction not yet used at the
//     current node (illegal directions and used-direction revisits are the
//     two corruption modes of Algorithm 3's header discipline);
//   - a Backtrack decision requires a non-empty path stack;
//   - no decision may panic;
//   - with static faults a message must never end Lost (Lost is reserved
//     for dynamic failures under the path).
//
// `go test` runs the seeded corpus below on every CI run; `go test
// -fuzz=FuzzRouterDecision ./internal/route` explores from there.
func FuzzRouterDecision(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		for routerIdx := uint8(0); routerIdx < 6; routerIdx++ {
			f.Add(seed, seed*3+11, routerIdx, routerIdx%2 == 0)
		}
	}
	f.Fuzz(func(t *testing.T, seed, loadSalt uint64, routerIdx uint8, gated bool) {
		r := rng.New(seed)
		// Random mixed-radix shape: 1-3 dimensions, radices 3-6 (interior
		// nodes exist, node count stays small enough for CI).
		dims := make([]int, 1+r.Intn(3))
		for i := range dims {
			dims[i] = 3 + r.Intn(4)
		}
		shape := grid.MustShape(dims...)
		// Random interior faults (the paper's model keeps the outermost
		// surface fault-free).
		var faults []grid.Coord
		for i := r.Intn(1 + shape.NumNodes()/8); i > 0; i-- {
			c := make(grid.Coord, len(dims))
			for a, k := range dims {
				c[a] = 1 + r.Intn(k-2)
			}
			faults = append(faults, c)
		}
		ctx, m := env(t, dims, faults)
		ctx.Load = fuzzLoad{salt: loadSalt}
		if r.Bool(0.25) {
			ctx.Policy = LargestOffset
		}
		src, dst := randomPair(m, r)
		if src == grid.InvalidNode {
			t.Skip("no enabled pair")
		}
		rt := fuzzRouters()[int(routerIdx)%len(fuzzRouters())]
		var gate Gate
		if gated {
			// Deterministic pseudo-random gate: denial exercises the stall
			// flag and the congested router's adaptive branch.
			step := 0
			gate = func(from grid.NodeID, dir grid.Dir) bool {
				step++
				return (uint64(from)*31+uint64(dir)*7+uint64(step)*13+seed)%4 != 0
			}
		}

		msg := NewMessage(src, dst)
		budget := 16*shape.Diameter() + 4*shape.NumNodes() + 64
		for i := 0; i < budget && !msg.Done(); i++ {
			if msg.Cur != msg.Dst {
				d := rt.Decide(ctx, msg)
				switch {
				case d.Move:
					if d.Dir < 0 || int(d.Dir) >= shape.NumDirs() {
						t.Fatalf("%s: direction %d out of range at node %d", rt.Name(), d.Dir, msg.Cur)
					}
					if m.Neighbor(msg.Cur, d.Dir) == grid.InvalidNode {
						t.Fatalf("%s: off-mesh direction %v at node %d", rt.Name(), d.Dir, msg.Cur)
					}
					if msg.Used(msg.Cur).Has(d.Dir) {
						t.Fatalf("%s: revisited used direction %v at node %d", rt.Name(), d.Dir, msg.Cur)
					}
				case d.Backtrack:
					if msg.PathLen() == 0 {
						t.Fatalf("%s: backtrack with empty path at node %d", rt.Name(), msg.Cur)
					}
				}
			}
			AdvanceGated(ctx, rt, msg, gate)
		}
		if msg.Lost {
			t.Fatalf("%s: message lost under static faults: %v", rt.Name(), msg)
		}
	})
}
