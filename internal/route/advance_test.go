package route

import (
	"fmt"
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
)

// alwaysBacktrack is the adversarial router for the empty-path gating
// regression: it demands a backtrack regardless of header state, which is
// the only way to reach commitDecision's Backtrack case with PathLen()==0
// (Limited/Blind funnel that state through backtrackOrFail into Fail, and
// the fuzz harness never observed the branch either).
type alwaysBacktrack struct{}

func (alwaysBacktrack) Name() string                       { return "always-backtrack" }
func (alwaysBacktrack) Decide(*Context, *Message) Decision { return Decision{Backtrack: true} }

// countingGate records every arbitration query and grants them all.
type countingGate struct {
	calls []string
}

func (g *countingGate) gate(from grid.NodeID, dir grid.Dir) bool {
	g.calls = append(g.calls, fmt.Sprintf("%d/%d", from, dir))
	return true
}

// TestBacktrackEmptyPathConsultsNoGate pins the latent gating question on
// the backtrack path: a Backtrack decision with an empty path stack is the
// terminal unreachable transition — no link is crossed — so it must
// neither consume link-service budget nor record a stall, under contention
// or not. (For the repository's own routers the state is unreachable:
// backtrackOrFail turns an empty stack into Fail. The stub pins the
// contract for any router.)
func TestBacktrackEmptyPathConsultsNoGate(t *testing.T) {
	m, err := mesh.NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	ctx := &Context{M: m}
	msg := NewMessage(shape.Index(grid.Coord{2, 2}), shape.Index(grid.Coord{5, 5}))
	var g countingGate
	still := AdvanceGated(ctx, alwaysBacktrack{}, msg, g.gate)
	if still {
		t.Fatal("message still in flight after empty-path backtrack")
	}
	if !msg.Unreachable {
		t.Fatalf("empty-path backtrack not terminal: %v", msg)
	}
	if msg.Hops != 0 || msg.Backtracks != 0 {
		t.Fatalf("empty-path backtrack moved: hops=%d backtracks=%d", msg.Hops, msg.Backtracks)
	}
	if msg.Waits != 0 || msg.Stalled() {
		t.Fatalf("empty-path backtrack recorded a stall: waits=%d stalled=%v", msg.Waits, msg.Stalled())
	}
	if len(g.calls) != 0 {
		t.Fatalf("gate consulted %d times (%v); the terminal case crosses no link", len(g.calls), g.calls)
	}
}

// TestSourceDeadEndUnderContention is the real-router companion: a source
// whose every neighbor is faulty is a dead end the limited router must
// declare unreachable in one step without touching the arbitration state
// (no link budget, no pending counter) — the regression a gated empty-path
// backtrack would have broken.
func TestSourceDeadEndUnderContention(t *testing.T) {
	m, err := mesh.NewUniform(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	src := grid.Coord{3, 3}
	for _, nb := range [][2]int{{2, 3}, {4, 3}, {3, 2}, {3, 4}} {
		m.FailAt(grid.Coord{nb[0], nb[1]})
	}
	ctx := &Context{M: m}
	msg := NewMessage(shape.Index(src), shape.Index(grid.Coord{6, 6}))
	var g countingGate
	if AdvanceGated(ctx, Limited{}, msg, g.gate) {
		t.Fatal("dead-end message still in flight")
	}
	if !msg.Unreachable || msg.Steps != 1 {
		t.Fatalf("dead-end not unreachable in one step: %v steps=%d", msg, msg.Steps)
	}
	if len(g.calls) != 0 {
		t.Fatalf("gate consulted at a dead end: %v", g.calls)
	}
}

// TestAdvanceDecidedMatchesGated drives two identical messages across a
// faulty mesh under a deny-then-grant gate, one through AdvanceGated and
// one through Decide + AdvanceDecided each step, and requires identical
// observable state throughout — the equivalence the sharded stepper's
// commit phase rests on.
func TestAdvanceDecidedMatchesGated(t *testing.T) {
	m, err := mesh.NewUniform(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	m.FailAt(grid.Coord{4, 4})
	m.FailAt(grid.Coord{5, 4})
	m.FailAt(grid.Coord{4, 5})
	for _, name := range []string{"limited", "blind", "dor"} {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ctxA, ctxB := &Context{M: m}, &Context{M: m}
		msgA := NewMessage(shape.Index(grid.Coord{1, 1}), shape.Index(grid.Coord{8, 8}))
		msgB := NewMessage(shape.Index(grid.Coord{1, 1}), shape.Index(grid.Coord{8, 8}))
		// Deterministically deny every third arbitration to exercise the
		// stall paths on both sides.
		mkGate := func() Gate {
			n := 0
			return func(grid.NodeID, grid.Dir) bool {
				n++
				return n%3 != 0
			}
		}
		gateA, gateB := mkGate(), mkGate()
		for step := 0; step < 200; step++ {
			stillA := AdvanceGated(ctxA, r, msgA, gateA)
			var stillB bool
			if msgB.Done() {
				stillB = AdvanceDecided(ctxB, msgB, Decision{}, gateB)
			} else if msgB.Cur == msgB.Dst {
				// AdvanceGated arrives before deciding; AdvanceDecided
				// replicates that, so the precomputed decision is unused.
				stillB = AdvanceDecided(ctxB, msgB, Decision{}, gateB)
			} else {
				stillB = AdvanceDecided(ctxB, msgB, r.Decide(ctxB, msgB), gateB)
			}
			if stillA != stillB {
				t.Fatalf("%s step %d: in-flight diverged %v vs %v", name, step, stillA, stillB)
			}
			a := fmt.Sprintf("%v waits=%d stalled=%v", msgA, msgA.Waits, msgA.Stalled())
			b := fmt.Sprintf("%v waits=%d stalled=%v", msgB, msgB.Waits, msgB.Stalled())
			if a != b {
				t.Fatalf("%s step %d diverged:\n gated   %s\n decided %s", name, step, a, b)
			}
			if !stillA {
				break
			}
		}
		if !msgA.Done() {
			t.Fatalf("%s: message never terminated: %v", name, msgA)
		}
	}
}

// TestStepStableRouters pins the parallel-propose whitelist: the routers
// whose Decide is a pure function of step-frozen state. Congested (reads
// mid-step residency) and Oracle (internal distance cache) must stay out.
func TestStepStableRouters(t *testing.T) {
	for _, tc := range []struct {
		r    Router
		want bool
	}{
		{Limited{}, true},
		{Blind{}, true},
		{DOR{}, true},
		{Congested{}, false},
		{&Oracle{}, false},
	} {
		if got := StepStable(tc.r); got != tc.want {
			t.Errorf("StepStable(%s) = %v, want %v", tc.r.Name(), got, tc.want)
		}
	}
}
