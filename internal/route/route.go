// Package route implements the paper's fault-information-based PCS routing
// (Algorithm 3) and the three baselines it is evaluated against:
//
//   - Limited: Algorithm 3 — direction priority preferred, spare (along the
//     block), preferred-but-detour, incoming; per-node used-direction lists
//     carried in the header; backtracking at disabled nodes; information
//     taken only from the node-local record store (the limited-global
//     model).
//   - Blind: the same PCS backtracking search with no fault information at
//     all (only one-hop status sensing) — the "local information" extreme.
//   - Oracle: global-information routing: every node knows all faulty
//     blocks; the next hop follows a globally shortest path over enabled
//     nodes, recomputed whenever the topology changes — the "traditional
//     model" extreme (routing tables at every node).
//   - DOR: plain dimension-order (e-cube) routing, the fault-intolerant
//     baseline: it fails on the first bad node in its way.
//   - Congested: Limited with congestion-aware tie-breaking — among the
//     fault-safe directions of equal Algorithm 3 priority it prefers the
//     one with the lightest downstream load (Context.Load), the first
//     router whose decisions are dynamic in traffic, not just in faults
//     (see congested.go).
//
// Routing messages advance one hop per step of the execution model; the
// Decide/Apply split lets the engine interleave decisions with the λ
// information rounds exactly as Figure 7 prescribes.
//
// Contracts: Decide never mutates the message — Advance/AdvanceGated/
// AdvanceDecided commit a Decision to the header, so a stalled message
// re-decides against fresh state. Routers are stateless per decision; all
// scratch lives in the caller-owned Context (coordinate buffers, direction
// lists, and a node-id-keyed decode cache), valid only during the current
// Decide call, which keeps the steady-state decision 0 allocs/op. The one
// exception is Oracle's cached distance field, the reason StepStable
// excludes it: StepStable(r) certifies that a router's decisions depend
// only on state frozen for the whole routing phase of a step, the property
// the engine's sharded stepper needs to precompute decisions in parallel
// with byte-identical results.
package route

import (
	"fmt"

	"ndmesh/internal/boundary"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// Policy breaks ties among directions of equal priority.
type Policy uint8

const (
	// LowestAxis deterministically prefers the smallest direction index.
	LowestAxis Policy = iota
	// LargestOffset prefers the axis with the largest remaining distance
	// to the destination (the classic adaptive-routing heuristic).
	LargestOffset
)

// LoadView exposes the traffic state a congestion-aware router may consult
// next to the fault records: per-node residency (how many messages occupy a
// router's input queue) and per-directed-link pending depth (how many
// traversals stalled on the link last step). Both are node-local signals —
// a router only ever queries its own node and its immediate neighbors, so
// the information model stays limited. The engine's contention mode
// implements it; outside contention mode both signals are zero, which makes
// every load-aware tie-break collapse to its load-oblivious baseline.
type LoadView interface {
	// Resident returns the number of active messages at the node.
	Resident(id grid.NodeID) int
	// LinkPending returns how many traversals stalled on the directed link
	// (from, dir) during the previous step — the link's queueing pressure.
	LinkPending(from grid.NodeID, dir grid.Dir) int
}

// Context is the information a router may consult: the fabric (one-hop
// status sensing is always allowed), the node-local record store (nil for
// the blind router), the load view (nil or zero outside contention mode),
// and the policy.
type Context struct {
	M      *mesh.Mesh
	Store  *info.Store
	Load   LoadView
	Policy Policy

	// ucBuf/dcBuf/wcBuf are reusable coordinate buffers and prefBuf/
	// spareBuf/demBuf reusable direction lists for the per-step routing
	// decision (lazily sized on first use), so a steady-state decision
	// performs no allocation. They are scratch for the current Decide call
	// only.
	ucBuf, dcBuf, wcBuf       grid.Coord
	prefBuf, spareBuf, demBuf []grid.Dir

	// coordShape/ucID/dcID memoize the decodes held in ucBuf/dcBuf: a
	// linear-to-coordinate decode is a divmod per dimension, and profiles
	// put those divmods at 43% of the serial contention step, so coords
	// only re-decodes when the queried node actually changed. The
	// destination is fixed for a flight's lifetime (decoded once, not once
	// per step) and the current node repeats across stalled steps. The
	// shape pointer keys the whole cache: a context migrated to a
	// different mesh re-decodes from scratch.
	coordShape *grid.Shape
	ucID, dcID grid.NodeID
}

// coords resolves the current node and the destination into the context's
// reusable buffers, reusing the previous decode when the id is unchanged.
func (ctx *Context) coords(u, d grid.NodeID) (uc, dc grid.Coord) {
	shape := ctx.M.Shape()
	if ctx.coordShape != shape {
		if len(ctx.ucBuf) != shape.Dims() {
			ctx.ucBuf = make(grid.Coord, shape.Dims())
			ctx.dcBuf = make(grid.Coord, shape.Dims())
			ctx.wcBuf = make(grid.Coord, shape.Dims())
		}
		ctx.coordShape = shape
		ctx.ucID, ctx.dcID = grid.InvalidNode, grid.InvalidNode
	}
	if ctx.ucID != u {
		shape.Coord(u, ctx.ucBuf)
		ctx.ucID = u
	}
	if ctx.dcID != d {
		shape.Coord(d, ctx.dcBuf)
		ctx.dcID = d
	}
	return ctx.ucBuf, ctx.dcBuf
}

// Decision is the outcome of one routing decision.
type Decision struct {
	// Dir is the chosen outgoing direction (valid when Move).
	Dir grid.Dir
	// Move means forward one hop along Dir.
	Move bool
	// Backtrack means return to the previous node on the path.
	Backtrack bool
	// Fail means the destination is unreachable (message backtracked to
	// the source with no unused outgoing direction).
	Fail bool
}

// Router chooses an outgoing direction for a message at its current node.
type Router interface {
	// Name identifies the router in experiment tables.
	Name() string
	// Decide inspects the message's current node and header and picks an
	// action. It must not mutate the message.
	Decide(ctx *Context, msg *Message) Decision
}

// Message is a PCS path-setup message: destination plus the header state
// Algorithm 3 requires — the path stack for backtracking and the list of
// used directions for each forwarding node along the path.
type Message struct {
	Src, Dst grid.NodeID
	Cur      grid.NodeID
	// Incoming is the direction of the last move (InvalidDir at start).
	Incoming grid.Dir

	path []grid.NodeID
	used map[grid.NodeID]grid.DirSet

	// Hops counts every link traversal (forward and backward); Backtracks
	// counts the backward ones. Steps counts decision steps including
	// waits. Waits counts the steps a contention gate stalled the message
	// (always 0 outside contention mode).
	Hops, Backtracks, Steps, Waits int

	// stalled records that the most recent step was a gate denial: the
	// message wanted a link and lost arbitration. Congestion-aware routers
	// use it as the adaptivity trigger — a message deviates from the
	// load-oblivious choice only after personally experiencing blocking,
	// which keeps underloaded routing byte-identical to Limited and stops
	// noise-driven herding. Always false outside contention mode.
	stalled bool

	// Arrived, Unreachable, Lost, TimedOut are the terminal states. Lost
	// marks the pathological dynamic case where the backtrack target itself
	// failed. TimedOut marks a flight the contention engine killed back to
	// its source after stalling in place past the configured timeout — the
	// deadlock-escape path; routers never set it themselves.
	Arrived, Unreachable, Lost, TimedOut bool
}

// NewMessage builds a path-setup message from src to dst.
func NewMessage(src, dst grid.NodeID) *Message {
	return &Message{
		Src:      src,
		Dst:      dst,
		Cur:      src,
		Incoming: grid.InvalidDir,
		used:     make(map[grid.NodeID]grid.DirSet),
	}
}

// Reset rewinds the message to a fresh injection from src to dst, keeping
// the path stack's capacity and the used-direction map's buckets so a
// recycled message allocates nothing on its next flight.
func (msg *Message) Reset(src, dst grid.NodeID) {
	msg.Src, msg.Dst, msg.Cur = src, dst, src
	msg.Incoming = grid.InvalidDir
	msg.path = msg.path[:0]
	clear(msg.used)
	msg.Hops, msg.Backtracks, msg.Steps, msg.Waits = 0, 0, 0, 0
	msg.stalled = false
	msg.Arrived, msg.Unreachable, msg.Lost, msg.TimedOut = false, false, false, false
}

// Stalled reports whether the message's most recent step was a contention
// stall (it lost link arbitration and waited in place).
func (msg *Message) Stalled() bool { return msg.stalled }

// Done reports whether the message reached a terminal state.
func (msg *Message) Done() bool {
	return msg.Arrived || msg.Unreachable || msg.Lost || msg.TimedOut
}

// Used returns the used-direction set recorded at node id.
func (msg *Message) Used(id grid.NodeID) grid.DirSet { return msg.used[id] }

// PathLen returns the current path-stack length (hops from source along the
// currently held path).
func (msg *Message) PathLen() int { return len(msg.path) }

// String summarizes the message state.
func (msg *Message) String() string {
	state := "active"
	switch {
	case msg.Arrived:
		state = "arrived"
	case msg.Unreachable:
		state = "unreachable"
	case msg.Lost:
		state = "lost"
	case msg.TimedOut:
		state = "timed-out"
	}
	return fmt.Sprintf("msg %d->%d at %d (%s, hops=%d backtracks=%d steps=%d)",
		msg.Src, msg.Dst, msg.Cur, state, msg.Hops, msg.Backtracks, msg.Steps)
}

// Gate arbitrates one link traversal under the contention model: it is
// asked whether the message at `from` may cross the directed link along
// `dir` this step. Returning false stalls the message for the step (its
// header is untouched; it makes a fresh decision next step). A nil Gate
// grants every traversal — the contention-free model.
type Gate func(from grid.NodeID, dir grid.Dir) bool

// Advance performs one step of the routing process: one decision and one
// hop (Figure 7's routing decision + message sending). It returns true if
// the message is still in flight afterwards.
//
//meshvet:noalloc
func Advance(ctx *Context, r Router, msg *Message) bool {
	return AdvanceGated(ctx, r, msg, nil)
}

// AdvanceGated is Advance under link arbitration: the decision is made
// normally, but the chosen traversal (forward or backward) only executes
// if the gate grants the link; otherwise the message waits in place. The
// decision itself is not committed to the header on a stall, so a waiting
// message re-decides next step against fresh status and information — a
// stalled preferred direction can be abandoned for a spare if the fault
// picture changes while queued.
//
//meshvet:noalloc
func AdvanceGated(ctx *Context, r Router, msg *Message, gate Gate) bool {
	if msg.Done() {
		return false
	}
	msg.Steps++
	if msg.Cur == msg.Dst {
		msg.Arrived = true
		return false
	}
	return commitDecision(ctx, msg, r.Decide(ctx, msg), gate)
}

// AdvanceDecided is AdvanceGated with the routing decision already made:
// the sharded stepper's parallel phase precomputes step-stable routers'
// decisions against the frozen step-start state, and the serial commit
// replays them here in flight-age order. The gate check, the header
// commit and the terminal transitions are exactly AdvanceGated's, so for
// a StepStable router AdvanceDecided(ctx, msg, r.Decide(ctx, msg), gate)
// and AdvanceGated(ctx, r, msg, gate) are byte-identical.
//
//meshvet:noalloc
func AdvanceDecided(ctx *Context, msg *Message, d Decision, gate Gate) bool {
	if msg.Done() {
		return false
	}
	msg.Steps++
	if msg.Cur == msg.Dst {
		msg.Arrived = true
		return false
	}
	return commitDecision(ctx, msg, d, gate)
}

// commitDecision executes one decision under link arbitration. Every
// physical link traversal — forward moves and backward moves alike — asks
// the gate; the one Backtrack shape that crosses no link (an empty path
// stack, the terminal unreachable transition of applyBacktrack) has
// nothing to arbitrate and deliberately consults no gate, which
// TestBacktrackEmptyPathConsultsNoGate pins.
//
//meshvet:noalloc
func commitDecision(ctx *Context, msg *Message, d Decision, gate Gate) bool {
	switch {
	case d.Fail:
		msg.Unreachable = true
		return false
	case d.Backtrack:
		if msg.PathLen() == 0 {
			// Not a traversal: applyBacktrack on an empty stack only marks
			// the message unreachable, so no link budget may be consumed
			// and no stall may be recorded.
			msg.applyBacktrack(ctx)
			msg.stalled = false
			return !msg.Done()
		}
		if gate != nil {
			prev := msg.path[len(msg.path)-1]
			if !gate(msg.Cur, dirBetween(ctx.M, msg.Cur, prev)) {
				msg.Waits++
				msg.stalled = true
				return true
			}
		}
		msg.applyBacktrack(ctx)
		msg.stalled = false
	case d.Move:
		if gate != nil && !gate(msg.Cur, d.Dir) {
			msg.Waits++
			msg.stalled = true
			return true
		}
		msg.applyMove(ctx, d.Dir)
		msg.stalled = false
	}
	if msg.Cur == msg.Dst {
		msg.Arrived = true
		return false
	}
	return !msg.Done()
}

// StepStable reports whether r's Decide is a pure function of state frozen
// for the whole routing phase of a step: the fabric statuses (fault events
// apply before routing), the record store (information rounds run before
// routing), the previous step's LinkPending view, and the message's own
// header. The sharded stepper may precompute such routers' decisions in
// parallel from the step-start state and commit them serially in flight-age
// order with results byte-identical to deciding at commit time.
//
// Excluded by construction: Congested reads LoadView.Resident, which
// earlier commits in the same step mutate, and Oracle caches a distance
// field inside the (shared) router value. Both are decided serially at
// commit instead — correct at any shard count, just not sped up.
func StepStable(r Router) bool {
	switch r.(type) {
	case Limited, Blind, DOR:
		return true
	}
	return false
}

//meshvet:noalloc
func (msg *Message) applyMove(ctx *Context, dir grid.Dir) {
	next := ctx.M.Neighbor(msg.Cur, dir)
	if next == grid.InvalidNode {
		// A router must never pick an off-mesh direction; treat as lost to
		// surface the bug in tests rather than panic in experiments.
		msg.Lost = true
		return
	}
	msg.used[msg.Cur] = msg.used[msg.Cur].Add(dir)
	msg.path = append(msg.path, msg.Cur)
	msg.Cur = next
	msg.Incoming = dir
	msg.Hops++
}

//meshvet:noalloc
func (msg *Message) applyBacktrack(ctx *Context) {
	if len(msg.path) == 0 {
		msg.Unreachable = true
		return
	}
	prev := msg.path[len(msg.path)-1]
	msg.path = msg.path[:len(msg.path)-1]
	if ctx.M.Status(prev) == mesh.Faulty {
		// The node we set this path segment through has failed under us:
		// the partial path is torn down and the message is lost (the PCS
		// source would time out and retry; we account it separately).
		msg.Lost = true
		return
	}
	// The physical move back: the new incoming direction is the reverse of
	// the link we cross.
	msg.Incoming = dirBetween(ctx.M, msg.Cur, prev)
	msg.Cur = prev
	msg.Hops++
	msg.Backtracks++
}

// dirBetween returns the direction of the single hop from a to b.
func dirBetween(m *mesh.Mesh, a, b grid.NodeID) grid.Dir {
	for d := 0; d < m.Shape().NumDirs(); d++ {
		if m.Neighbor(a, grid.Dir(d)) == b {
			return grid.Dir(d)
		}
	}
	return grid.InvalidDir
}

// ---------------------------------------------------------------------------
// Limited: Algorithm 3 with the limited-global information model.

// Limited is the fault-information-based PCS router of Algorithm 3.
type Limited struct{}

// Name implements Router.
func (Limited) Name() string { return "limited" }

// Decide implements Algorithm 3:
//  1. If the current node is disabled (or faulty under us), backtrack.
//  2. Pick the unused outgoing direction with the highest priority:
//     preferred, spare (along the block), preferred-but-detour, incoming.
//  3. With no unused outgoing direction, backtrack.
//  4. Backtracked to the source with nothing left: unreachable.
//
//meshvet:noalloc
func (Limited) Decide(ctx *Context, msg *Message) Decision {
	cl, bad := classifyLimited(ctx, msg)
	if bad {
		return backtrackOrFail(msg)
	}
	if len(cl.preferred) > 0 {
		return Decision{Move: true, Dir: pickPreferred(ctx, cl.preferred, cl.uc, cl.dc)}
	}
	if len(cl.spares) > 0 {
		return Decision{Move: true, Dir: pickSpare(ctx, cl.spares, cl.recs, cl.uc)}
	}
	if len(cl.demoted) > 0 {
		return Decision{Move: true, Dir: pickPreferred(ctx, cl.demoted, cl.uc, cl.dc)}
	}
	return backtrackOrFail(msg)
}

// classified is the candidate partition of Algorithm 3's step 2: the
// fault-safe unused outgoing directions split by priority class, plus the
// coordinate scratch and records the pick functions need. The slices alias
// the context's reusable buffers and are valid until the next classify call.
type classified struct {
	preferred, demoted, spares []grid.Dir
	uc, dc                     grid.Coord
	recs                       []info.Record
}

// classifyLimited runs the candidate classification shared by Limited and
// Congested: both routers consider exactly the same fault-safe direction
// classes; they differ only in how ties inside a class are broken. bad
// reports that the current node itself is disabled/faulty (backtrack case).
//
//meshvet:noalloc
func classifyLimited(ctx *Context, msg *Message) (cl classified, bad bool) {
	m := ctx.M
	u := msg.Cur
	if m.Status(u).Bad() {
		return classified{}, true
	}
	shape := m.Shape()
	uc, dc := ctx.coords(u, msg.Dst)
	used := msg.used[u]
	recs := recordsAt(ctx, u)

	preferred, demoted, spares := ctx.prefBuf[:0], ctx.demBuf[:0], ctx.spareBuf[:0]
	for dv := 0; dv < shape.NumDirs(); dv++ {
		dir := grid.Dir(dv)
		if used.Has(dir) {
			continue
		}
		next := m.Neighbor(u, dir)
		if next == grid.InvalidNode || m.Status(next) != mesh.Enabled {
			continue
		}
		if isPreferred(uc, dc, dir) {
			// The neighbor's coordinate differs from uc by ±1 on one axis,
			// so derive it with a copy instead of a per-dimension divmod
			// decode (the old shape.Coord(next, ...) here was the hottest
			// divmod site in the contention step) — and only when there
			// are records for demotedByRecords to consult at all.
			demote := false
			if len(recs) > 0 {
				wc := ctx.wcBuf
				copy(wc, uc)
				wc[dir.Axis()] += dir.Sign()
				demote = demotedByRecords(recs, wc, dc)
			}
			if demote {
				demoted = append(demoted, dir)
			} else {
				preferred = append(preferred, dir)
			}
			continue
		}
		if msg.Incoming != grid.InvalidDir && dir == msg.Incoming.Opposite() {
			continue // going back is the lowest priority: the backtrack case
		}
		spares = append(spares, dir)
	}
	// Return the (possibly regrown) buffers to the context for reuse.
	ctx.prefBuf, ctx.demBuf, ctx.spareBuf = preferred, demoted, spares

	return classified{preferred: preferred, demoted: demoted, spares: spares,
		uc: uc, dc: dc, recs: recs}, false
}

func backtrackOrFail(msg *Message) Decision {
	if msg.PathLen() == 0 {
		return Decision{Fail: true}
	}
	return Decision{Backtrack: true}
}

// recordsAt returns the block records stored at node u (nil without store).
func recordsAt(ctx *Context, u grid.NodeID) []info.Record {
	if ctx.Store == nil {
		return nil
	}
	return ctx.Store.At(u)
}

// isPreferred reports whether dir reduces the Manhattan distance to dc.
func isPreferred(uc, dc grid.Coord, dir grid.Dir) bool {
	a := dir.Axis()
	if dir.Positive() {
		return uc[a] < dc[a]
	}
	return uc[a] > dc[a]
}

// demotedByRecords applies the critical-routing rule: a preferred step onto
// w is demoted to preferred-but-detour when, per some stored block record,
// w lies in the block's dangerous shadow while the destination is trapped
// beyond the opposite surface (Section 2.2).
func demotedByRecords(recs []info.Record, wc, dc grid.Coord) bool {
	for _, r := range recs {
		if axis, neg, ok := boundary.InShadow(r.Box, wc); ok && boundary.Trapped(r.Box, dc, axis, neg) {
			return true
		}
	}
	return false
}

// pickPreferred selects among preferred directions by policy.
func pickPreferred(ctx *Context, dirs []grid.Dir, uc, dc grid.Coord) grid.Dir {
	if ctx.Policy == LargestOffset {
		best := dirs[0]
		bestOff := -1
		for _, d := range dirs {
			off := abs(dc[d.Axis()] - uc[d.Axis()])
			if off > bestOff {
				best, bestOff = d, off
			}
		}
		return best
	}
	return lowest(dirs)
}

// pickSpare selects a spare direction "along with the block": among the
// axes where the current node sits inside a recorded block's span, prefer
// the direction with the shortest run to exit the span (the fastest way
// around the block); axes outside any span rank last and fall back to the
// policy order.
func pickSpare(ctx *Context, dirs []grid.Dir, recs []info.Record, uc grid.Coord) grid.Dir {
	const inf = int(^uint(0) >> 1)
	best := dirs[0]
	bestRank := inf
	for _, d := range dirs {
		rank := inf
		a := d.Axis()
		for _, r := range recs {
			if !r.Box.ContainsOn(a, uc[a]) {
				continue
			}
			var run int
			if d.Positive() {
				run = r.Box.Hi[a] + 1 - uc[a]
			} else {
				run = uc[a] - (r.Box.Lo[a] - 1)
			}
			if run < rank {
				rank = run
			}
		}
		if rank < bestRank || (rank == bestRank && d < best) {
			best, bestRank = d, rank
		}
	}
	if bestRank < inf {
		return best
	}
	return lowest(dirs)
}

func lowest(dirs []grid.Dir) grid.Dir {
	best := dirs[0]
	for _, d := range dirs[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// Blind: PCS backtracking with no fault information.

// Blind is Algorithm 3 stripped of the information model: only one-hop
// status sensing guides it, so it walks into dangerous areas and pays for
// them with backtracking.
type Blind struct{}

// Name implements Router.
func (Blind) Name() string { return "blind" }

// Decide implements Router.
//
//meshvet:noalloc
func (Blind) Decide(ctx *Context, msg *Message) Decision {
	m := ctx.M
	u := msg.Cur
	if m.Status(u).Bad() {
		return backtrackOrFail(msg)
	}
	shape := m.Shape()
	uc, dc := ctx.coords(u, msg.Dst)
	used := msg.used[u]
	preferred, spares := ctx.prefBuf[:0], ctx.spareBuf[:0]
	for dv := 0; dv < shape.NumDirs(); dv++ {
		dir := grid.Dir(dv)
		if used.Has(dir) {
			continue
		}
		next := m.Neighbor(u, dir)
		if next == grid.InvalidNode || m.Status(next) != mesh.Enabled {
			continue
		}
		if isPreferred(uc, dc, dir) {
			preferred = append(preferred, dir)
			continue
		}
		if msg.Incoming != grid.InvalidDir && dir == msg.Incoming.Opposite() {
			continue
		}
		spares = append(spares, dir)
	}
	ctx.prefBuf, ctx.spareBuf = preferred, spares
	if len(preferred) > 0 {
		return Decision{Move: true, Dir: pickPreferred(ctx, preferred, uc, dc)}
	}
	if len(spares) > 0 {
		return Decision{Move: true, Dir: lowest(spares)}
	}
	return backtrackOrFail(msg)
}

// ---------------------------------------------------------------------------
// Oracle: global information.

// Oracle is the traditional global-information model: it always knows the
// exact enabled topology and follows a globally shortest path, recomputing
// the distance field whenever the mesh changes. Its information cost is
// charged as a full-network update per change (see the experiment harness).
type Oracle struct {
	dst     grid.NodeID
	version uint64
	valid   bool
	dist    []int32
	queue   []grid.NodeID
}

// Name implements Router.
func (o *Oracle) Name() string { return "oracle" }

// unreachableDist marks nodes with no enabled path to the destination.
const unreachableDist = int32(-1)

// Decide implements Router: step to any neighbor strictly closer to the
// destination in the current enabled-subgraph metric.
func (o *Oracle) Decide(ctx *Context, msg *Message) Decision {
	m := ctx.M
	if m.Status(msg.Cur).Bad() {
		return backtrackOrFail(msg)
	}
	o.refresh(m, msg.Dst)
	du := o.dist[msg.Cur]
	if du == unreachableDist {
		return Decision{Fail: true}
	}
	bestDir := grid.InvalidDir
	var bestDist int32 = du
	for dv := 0; dv < m.Shape().NumDirs(); dv++ {
		dir := grid.Dir(dv)
		nb := m.Neighbor(msg.Cur, dir)
		if nb == grid.InvalidNode || m.Status(nb) != mesh.Enabled {
			continue
		}
		if dn := o.dist[nb]; dn != unreachableDist && dn < bestDist {
			bestDist, bestDir = dn, dir
		}
	}
	if bestDir == grid.InvalidDir {
		return Decision{Fail: true}
	}
	return Decision{Move: true, Dir: bestDir}
}

// refresh rebuilds the BFS distance field from dst if the topology or the
// destination changed.
func (o *Oracle) refresh(m *mesh.Mesh, dst grid.NodeID) {
	if o.valid && o.version == m.Version() && o.dst == dst {
		return
	}
	n := m.NumNodes()
	if len(o.dist) != n {
		o.dist = make([]int32, n)
	}
	for i := range o.dist {
		o.dist[i] = unreachableDist
	}
	o.queue = o.queue[:0]
	if m.Status(dst) == mesh.Enabled {
		o.dist[dst] = 0
		o.queue = append(o.queue, dst)
	}
	for head := 0; head < len(o.queue); head++ {
		cur := o.queue[head]
		m.EachNeighbor(cur, func(nb grid.NodeID, _ grid.Dir) {
			if o.dist[nb] == unreachableDist && m.Status(nb) == mesh.Enabled {
				o.dist[nb] = o.dist[cur] + 1
				o.queue = append(o.queue, nb)
			}
		})
	}
	o.version, o.dst, o.valid = m.Version(), dst, true
}

// ---------------------------------------------------------------------------
// DOR: dimension-order routing (fault-intolerant baseline).

// DOR resolves offsets axis by axis; it declares failure as soon as the
// next hop is not enabled. It quantifies what fault tolerance buys.
type DOR struct{}

// Name implements Router.
func (DOR) Name() string { return "dor" }

// Decide implements Router.
//
//meshvet:noalloc
func (DOR) Decide(ctx *Context, msg *Message) Decision {
	m := ctx.M
	if m.Status(msg.Cur).Bad() {
		return Decision{Fail: true}
	}
	shape := m.Shape()
	uc, dc := ctx.coords(msg.Cur, msg.Dst)
	for a := 0; a < shape.Dims(); a++ {
		if uc[a] == dc[a] {
			continue
		}
		dir := grid.DirPlus(a)
		if uc[a] > dc[a] {
			dir = grid.DirMinus(a)
		}
		next := m.Neighbor(msg.Cur, dir)
		if next == grid.InvalidNode || m.Status(next) != mesh.Enabled {
			return Decision{Fail: true}
		}
		return Decision{Move: true, Dir: dir}
	}
	return Decision{Fail: true} // already at destination: Advance handles it
}

// ByName returns a fresh router by experiment name.
func ByName(name string) (Router, error) {
	switch name {
	case "limited":
		return Limited{}, nil
	case "congested":
		return Congested{}, nil
	case "blind":
		return Blind{}, nil
	case "oracle":
		return &Oracle{}, nil
	case "dor":
		return DOR{}, nil
	default:
		return nil, fmt.Errorf("route: unknown router %q", name)
	}
}
