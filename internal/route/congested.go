package route

// Congested is the congestion-aware variant of the fault-information-based
// PCS router: Algorithm 3's fault handling, candidate classes and priority
// order are preserved exactly, but ties *inside* a class (several equally
// preferred directions, several spares) are broken by the lightest
// downstream load instead of the static policy. The load signal comes from
// Context.Load — the contention engine's per-node residency and
// per-directed-link pending depth — so the router combines the paper's
// limited-global fault records with purely local traffic state, in the
// spirit of adaptive fault-tolerant NoC routing (Stroobant et al.) and
// fat-tree resiliency routing (Gliksberg et al.).
//
// Determinism and fallback are structural:
//
//   - With Context.Load == nil the router delegates to Limited verbatim —
//     decision-for-decision identical (pinned by TestCongestedEqualsLimited*).
//   - With contention disabled every load reads zero, every candidate ties,
//     and the hysteresis keeps the baseline pick — again identical.
//   - Deviating from the baseline requires a strict load advantage of at
//     least Margin, so equal-load oscillation is impossible and the
//     decision is a pure function of (mesh, records, header, load view).

import (
	"fmt"

	"ndmesh/internal/grid"
)

// CongestionConfig tunes the congestion-aware tie-breaking. The zero value
// selects the defaults, so Congested{} is ready to use.
type CongestionConfig struct {
	// Margin is the hysteresis threshold: an alternative direction must
	// beat the baseline (load-oblivious) pick's downstream load score by at
	// least this much to be taken. Values < 1 mean 1 — a strict advantage
	// is always required, which is what pins Congested == Limited when all
	// loads are equal (in particular, all zero).
	Margin int
	// NodeWeight and LinkWeight weigh the two load signals in the score
	// score(d) = NodeWeight*Resident(neighbor(d)) + LinkWeight*LinkPending(u, d).
	// Values < 0 mean 0; both zero means both default to 1.
	NodeWeight, LinkWeight int
	// Eager consults the load on every decision. The default (false) is
	// stall-gated adaptivity: a message follows Limited's choice verbatim
	// until it personally loses a link arbitration (Message.Stalled), and
	// only then deviates to the lightest alternative. Stall-gating keeps
	// underloaded traffic byte-identical to Limited and avoids the classic
	// minimal-adaptive pathology of noise-driven deviation concentrating
	// uniform traffic; eager mode reacts earlier under smooth asymmetric
	// load at the price of that pathology.
	Eager bool
}

// CongestionPresetByName resolves a named tie-breaking profile, the
// user-facing alternative to the three raw numeric knobs:
//
//   - "off": load tie-breaking effectively disabled — the margin is set so
//     high no realizable load advantage clears it, pinning the router to
//     Limited's choices. (Zero weights would NOT do this: norm() maps the
//     all-zero config to the defaults, so "off" must win through the
//     margin.)
//   - "mild": the stall-gated defaults with a margin of 2 — a message
//     deviates only after personally stalling, and only for a clear load
//     advantage. Safe under uniform traffic.
//   - "aggressive": eager adaptivity at margin 1 with residency weighted
//     double — reacts before stalling and on the smallest advantage, at
//     the price of noise-driven deviation under uniform load.
func CongestionPresetByName(name string) (CongestionConfig, error) {
	switch name {
	case "off":
		return CongestionConfig{Margin: 1 << 30, NodeWeight: 1, LinkWeight: 1}, nil
	case "mild":
		return CongestionConfig{Margin: 2, NodeWeight: 1, LinkWeight: 1}, nil
	case "aggressive":
		return CongestionConfig{Margin: 1, NodeWeight: 2, LinkWeight: 1, Eager: true}, nil
	}
	return CongestionConfig{}, fmt.Errorf("route: unknown congestion preset %q (want off|mild|aggressive)", name)
}

// norm returns the config with defaults applied.
func (c CongestionConfig) norm() CongestionConfig {
	if c.Margin < 1 {
		c.Margin = 1
	}
	if c.NodeWeight < 0 {
		c.NodeWeight = 0
	}
	if c.LinkWeight < 0 {
		c.LinkWeight = 0
	}
	if c.NodeWeight == 0 && c.LinkWeight == 0 {
		c.NodeWeight, c.LinkWeight = 1, 1
	}
	return c
}

// Congested is Limited with load-aware tie-breaking; see the file comment.
type Congested struct {
	Cfg CongestionConfig
}

// Name implements Router.
func (Congested) Name() string { return "congested" }

// Decide implements Router.
//
//meshvet:noalloc
func (c Congested) Decide(ctx *Context, msg *Message) Decision {
	if ctx.Load == nil || (!c.Cfg.Eager && !msg.Stalled()) {
		return Limited{}.Decide(ctx, msg)
	}
	cl, bad := classifyLimited(ctx, msg)
	if bad {
		return backtrackOrFail(msg)
	}
	cfg := c.Cfg.norm()
	if len(cl.preferred) > 0 {
		base := pickPreferred(ctx, cl.preferred, cl.uc, cl.dc)
		return Decision{Move: true, Dir: lightest(ctx, cfg, msg.Cur, cl.preferred, base)}
	}
	if len(cl.spares) > 0 {
		base := pickSpare(ctx, cl.spares, cl.recs, cl.uc)
		return Decision{Move: true, Dir: lightest(ctx, cfg, msg.Cur, cl.spares, base)}
	}
	if len(cl.demoted) > 0 {
		base := pickPreferred(ctx, cl.demoted, cl.uc, cl.dc)
		return Decision{Move: true, Dir: lightest(ctx, cfg, msg.Cur, cl.demoted, base)}
	}
	return backtrackOrFail(msg)
}

// loadScore is the downstream congestion estimate of moving from u along d:
// the occupancy of the next router's input queue plus the queueing pressure
// observed on the link itself last step.
func loadScore(ctx *Context, cfg CongestionConfig, u grid.NodeID, d grid.Dir) int {
	score := 0
	if cfg.NodeWeight != 0 {
		score += cfg.NodeWeight * ctx.Load.Resident(ctx.M.Neighbor(u, d))
	}
	if cfg.LinkWeight != 0 {
		score += cfg.LinkWeight * ctx.Load.LinkPending(u, d)
	}
	return score
}

// lightest breaks the tie among one priority class: it keeps the baseline
// (Limited's) pick unless some alternative's load score undercuts it by at
// least cfg.Margin. dirs is in ascending direction order (classifyLimited
// builds it that way), so strict improvement suffices for the
// lowest-index-wins determinism among equally light alternatives.
func lightest(ctx *Context, cfg CongestionConfig, u grid.NodeID, dirs []grid.Dir, base grid.Dir) grid.Dir {
	if len(dirs) == 1 {
		return base
	}
	baseScore := loadScore(ctx, cfg, u, base)
	best, bestScore := base, baseScore
	for _, d := range dirs {
		if d == base {
			continue
		}
		if s := loadScore(ctx, cfg, u, d); s < bestScore {
			best, bestScore = d, s
		}
	}
	if best != base && baseScore-bestScore >= cfg.Margin {
		return best
	}
	return base
}
