package route

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
	"ndmesh/internal/rng"
)

// TestPropertyNeverEntersFaultyNode: on randomized static scenarios, no
// router ever moves a message onto a faulty node, and every run terminates
// within the step budget.
func TestPropertyNeverEntersFaultyNode(t *testing.T) {
	r := rng.New(404)
	routers := []Router{Limited{}, Blind{}, &Oracle{}}
	for trial := 0; trial < 40; trial++ {
		ctx, m := randomEnv(t, r)
		src, dst := randomPair(m, r)
		if src == grid.InvalidNode {
			continue
		}
		for _, rt := range routers {
			msg := NewMessage(src, dst)
			for i := 0; i < 5000 && !msg.Done(); i++ {
				Advance(ctx, rt, msg)
				if m.Status(msg.Cur) == mesh.Faulty {
					t.Fatalf("trial %d: %s stepped onto faulty node %v",
						trial, rt.Name(), m.Shape().CoordOf(msg.Cur))
				}
			}
			if !msg.Done() {
				t.Fatalf("trial %d: %s did not terminate: %v", trial, rt.Name(), msg)
			}
		}
	}
}

// TestPropertySearchersAgreeOnReachability: the limited and blind searchers
// and the oracle must agree on whether the destination is reachable.
func TestPropertySearchersAgreeOnReachability(t *testing.T) {
	r := rng.New(505)
	for trial := 0; trial < 40; trial++ {
		ctx, m := randomEnv(t, r)
		src, dst := randomPair(m, r)
		if src == grid.InvalidNode {
			continue
		}
		verdicts := map[string]bool{}
		for _, rt := range []Router{Limited{}, Blind{}, &Oracle{}} {
			msg := NewMessage(src, dst)
			for i := 0; i < 20000 && !msg.Done(); i++ {
				Advance(ctx, rt, msg)
			}
			if !msg.Done() {
				t.Fatalf("trial %d: %s did not terminate", trial, rt.Name())
			}
			verdicts[rt.Name()] = msg.Arrived
		}
		if verdicts["limited"] != verdicts["oracle"] || verdicts["blind"] != verdicts["oracle"] {
			t.Fatalf("trial %d: reachability disagreement: %v", trial, verdicts)
		}
	}
}

// TestPropertyOracleNeverBeaten: no router produces a shorter walk than the
// oracle on static scenarios.
func TestPropertyOracleNeverBeaten(t *testing.T) {
	r := rng.New(606)
	for trial := 0; trial < 40; trial++ {
		ctx, m := randomEnv(t, r)
		src, dst := randomPair(m, r)
		if src == grid.InvalidNode {
			continue
		}
		oracle := NewMessage(src, dst)
		for i := 0; i < 20000 && !oracle.Done(); i++ {
			Advance(ctx, &Oracle{}, oracle)
		}
		if !oracle.Arrived {
			continue
		}
		for _, rt := range []Router{Limited{}, Blind{}} {
			msg := NewMessage(src, dst)
			for i := 0; i < 20000 && !msg.Done(); i++ {
				Advance(ctx, rt, msg)
			}
			if msg.Arrived && msg.Hops < oracle.Hops {
				t.Fatalf("trial %d: %s (%d hops) beat the oracle (%d hops)",
					trial, rt.Name(), msg.Hops, oracle.Hops)
			}
		}
	}
}

// randomEnv builds a random stabilized 2-D scenario with full information.
func randomEnv(t *testing.T, r *rng.Source) (*Context, *mesh.Mesh) {
	t.Helper()
	var coords []grid.Coord
	nf := 2 + r.Intn(8)
	for i := 0; i < nf; i++ {
		coords = append(coords, grid.Coord{1 + r.Intn(12), 1 + r.Intn(12)})
	}
	return env(t, []int{14, 14}, coords)
}

func randomPair(m *mesh.Mesh, r *rng.Source) (grid.NodeID, grid.NodeID) {
	for tries := 0; tries < 200; tries++ {
		s := grid.NodeID(r.Intn(m.NumNodes()))
		d := grid.NodeID(r.Intn(m.NumNodes()))
		if s != d && m.Status(s) == mesh.Enabled && m.Status(d) == mesh.Enabled {
			return s, d
		}
	}
	return grid.InvalidNode, grid.InvalidNode
}

// TestPartialInformationStillCorrect: the limited router with records on
// only SOME nodes (information still converging) remains correct — worst
// case it behaves like the blind searcher.
func TestPartialInformationStillCorrect(t *testing.T) {
	ctx, m := env(t, []int{14, 14}, []grid.Coord{{5, 5}, {6, 6}, {7, 5}})
	// Strip the records from every other node (information mid-flight).
	for id := 0; id < m.NumNodes(); id += 2 {
		recs := ctx.Store.At(grid.NodeID(id))
		for len(recs) > 0 {
			ctx.Store.Remove(grid.NodeID(id), recs[0].Box, ^uint32(0))
			recs = ctx.Store.At(grid.NodeID(id))
		}
	}
	src := m.Shape().Index(grid.Coord{1, 1})
	dst := m.Shape().Index(grid.Coord{12, 12})
	msg := NewMessage(src, dst)
	for i := 0; i < 5000 && !msg.Done(); i++ {
		Advance(ctx, Limited{}, msg)
	}
	if !msg.Arrived {
		t.Fatalf("partial information broke routing: %v", msg)
	}
}

// TestStaleInformationStillCorrect: records describing blocks that no
// longer exist (pre-cancellation) may cause detours but never break
// correctness.
func TestStaleInformationStillCorrect(t *testing.T) {
	ctx, m := env(t, []int{14, 14}, nil)
	// Plant a phantom block record on every node of its placement, with no
	// actual faults in the mesh.
	phantom := grid.NewBox(grid.Coord{6, 6}, grid.Coord{8, 8})
	for id := 0; id < m.NumNodes(); id++ {
		c := m.Shape().CoordOf(grid.NodeID(id))
		if phantomOn(phantom, c) {
			ctx.Store.Add(grid.NodeID(id), info.Record{Box: phantom.Clone(), Epoch: 1})
		}
	}
	src := m.Shape().Index(grid.Coord{7, 1})
	dst := m.Shape().Index(grid.Coord{7, 12})
	msg := NewMessage(src, dst)
	for i := 0; i < 5000 && !msg.Done(); i++ {
		Advance(ctx, Limited{}, msg)
	}
	if !msg.Arrived {
		t.Fatalf("stale information broke routing: %v", msg)
	}
	// The detour is bounded by the phantom's extent.
	d0 := m.Shape().Distance(src, dst)
	if msg.Hops > d0+2*phantom.MaxExtent()+4 {
		t.Fatalf("stale-info detour unbounded: %d hops (D=%d)", msg.Hops, d0)
	}
}

// phantomOn approximates the placement membership (frame shell or wall) of
// the phantom box.
func phantomOn(b grid.Box, c grid.Coord) bool {
	in, ext, beyond := 0, 0, 0
	for i := range c {
		switch {
		case c[i] >= b.Lo[i] && c[i] <= b.Hi[i]:
			in++
		case c[i] == b.Lo[i]-1 || c[i] == b.Hi[i]+1:
			ext++
		default:
			beyond++
		}
	}
	if in == len(c) {
		return false
	}
	return beyond == 0 || (ext == 1 && beyond == 1)
}

// TestBlocksAfterStabilize is a tiny guard that env produced blocks.
func TestBlocksAfterStabilize(t *testing.T) {
	_, m := env(t, []int{10, 10}, []grid.Coord{{4, 4}})
	if len(block.Extract(m)) != 1 {
		t.Fatal("env did not stabilize the block")
	}
}
