package route

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/boundary"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// env builds a mesh with stabilized faults and a fully deposited info
// store (oracle placement, as after the distributed constructions settle).
func env(t *testing.T, dims []int, faults []grid.Coord) (*Context, *mesh.Mesh) {
	t.Helper()
	shape, err := grid.NewShape(dims...)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.New(shape)
	for _, c := range faults {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	store := info.NewStore(m.NumNodes())
	for i, b := range block.Extract(m) {
		for _, id := range boundary.Placement(shape, b.Box) {
			if m.Status(id) == mesh.Enabled {
				store.Add(id, info.Record{Box: b.Box.Clone(), Epoch: uint32(i + 1)})
			}
		}
	}
	return &Context{M: m, Store: store, Policy: LowestAxis}, m
}

// runToEnd drives a message to termination with a step cap.
func runToEnd(t *testing.T, ctx *Context, r Router, msg *Message) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if !Advance(ctx, r, msg) {
			return
		}
	}
	t.Fatalf("message did not terminate: %v", msg)
}

func TestFaultFreeMinimal(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{1, 1})
	dst := m.Shape().Index(grid.Coord{6, 5})
	for _, r := range []Router{Limited{}, Blind{}, &Oracle{}, DOR{}} {
		msg := NewMessage(src, dst)
		runToEnd(t, ctx, r, msg)
		if !msg.Arrived {
			t.Fatalf("%s did not arrive: %v", r.Name(), msg)
		}
		if msg.Hops != 9 {
			t.Fatalf("%s not minimal: %d hops", r.Name(), msg.Hops)
		}
	}
}

func TestArrivalAtSelfIsImmediate(t *testing.T) {
	ctx, m := env(t, []int{4, 4}, nil)
	id := m.Shape().Index(grid.Coord{2, 2})
	msg := NewMessage(id, id)
	Advance(ctx, Limited{}, msg)
	if !msg.Arrived || msg.Hops != 0 {
		t.Fatalf("self route wrong: %v", msg)
	}
}

// TestPriorityPreferredFirst: with a free choice, a preferred direction is
// taken, never a spare.
func TestPriorityPreferredFirst(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{3, 3})
	dst := m.Shape().Index(grid.Coord{5, 6})
	msg := NewMessage(src, dst)
	d := Limited{}.Decide(ctx, msg)
	if !d.Move {
		t.Fatalf("no move: %+v", d)
	}
	if d.Dir != grid.DirPlus(0) { // LowestAxis picks +X among {+X, +Y}
		t.Fatalf("picked %v, want +X", d.Dir)
	}
	ctx.Policy = LargestOffset
	d = Limited{}.Decide(ctx, msg)
	if d.Dir != grid.DirPlus(1) { // offset y=3 > x=2
		t.Fatalf("LargestOffset picked %v, want +Y", d.Dir)
	}
}

// TestDemotionAtBoundary: the preferred direction into a shadow with a
// trapped destination is demoted; the message slides along the wall.
func TestDemotionAtBoundary(t *testing.T) {
	// Block [3:6, 4:5]; message at (2,2) heading to (4,7): +Y is
	// preferred but (2,3)... actually put the message ON the wall:
	// wall x=2 (lo-1), below the block. At (2,3): step +X enters shadow
	// (3,3) — wait (3,3) is in the shadow (y=3 < 4, x within span).
	ctx, m := env(t, []int{10, 10}, []grid.Coord{{3, 4}, {4, 5}, {5, 4}, {6, 5}})
	shape := m.Shape()
	// The staircase of faults stabilizes to the block [3:6, 4:5].
	bs := block.Extract(m)
	if len(bs) != 1 || !bs[0].Box.Equal(grid.NewBox(grid.Coord{3, 4}, grid.Coord{6, 5})) {
		t.Fatalf("unexpected blocks: %+v", bs)
	}
	u := shape.Index(grid.Coord{2, 3})
	dst := shape.Index(grid.Coord{4, 8}) // beyond +Y, x inside span: trapped
	if len(ctx.Store.At(u)) == 0 {
		t.Fatal("wall node has no record")
	}
	msg := NewMessage(u, dst)
	d := Limited{}.Decide(ctx, msg)
	if !d.Move || d.Dir != grid.DirPlus(1) {
		t.Fatalf("want +Y along the wall, got %+v", d.Dir)
	}
	// Same spot, destination NOT trapped (x beyond span): +X is fine.
	msg2 := NewMessage(u, shape.Index(grid.Coord{8, 8}))
	d2 := Limited{}.Decide(ctx, msg2)
	if !d2.Move || d2.Dir != grid.DirPlus(0) {
		t.Fatalf("untrapped dest should go +X, got %+v", d2.Dir)
	}
}

// TestSpareAlongBlock: when all preferred directions are demoted or
// blocked, the spare with the shortest run around the block is chosen.
func TestSpareAlongBlock(t *testing.T) {
	// Wide block [3:8, 5:6]; message right below it at (7,4), dest right
	// above at (7,9): preferred +Y blocked by the block itself? (7,5) is
	// disabled/faulty -> skipped; preferred set empty; +X exits the span
	// in 2 steps (8->9), -X in 5: choose +X.
	ctx, m := env(t, []int{12, 12}, []grid.Coord{{3, 5}, {4, 6}, {5, 5}, {6, 6}, {7, 5}, {8, 6}})
	shape := m.Shape()
	bs := block.Extract(m)
	if len(bs) != 1 || !bs[0].Box.Equal(grid.NewBox(grid.Coord{3, 5}, grid.Coord{8, 6})) {
		t.Fatalf("unexpected blocks: %+v", bs)
	}
	u := shape.Index(grid.Coord{7, 4})
	dst := shape.Index(grid.Coord{7, 9})
	msg := NewMessage(u, dst)
	d := Limited{}.Decide(ctx, msg)
	if !d.Move || d.Dir != grid.DirPlus(0) {
		t.Fatalf("want spare +X (shortest run around block), got %+v", d)
	}
}

// TestUsedDirectionsNeverRepeat: Algorithm 3 records used directions per
// node; a full walk never reuses one.
func TestUsedDirectionsNeverRepeat(t *testing.T) {
	ctx, m := env(t, []int{10, 10}, []grid.Coord{{4, 4}, {5, 5}, {4, 6}, {6, 3}})
	src := m.Shape().Index(grid.Coord{1, 1})
	dst := m.Shape().Index(grid.Coord{8, 8})
	msg := NewMessage(src, dst)
	type move struct {
		from grid.NodeID
		dir  grid.Dir
	}
	seen := map[move]int{}
	for i := 0; i < 10000 && !msg.Done(); i++ {
		cur := msg.Cur
		before := msg.Hops
		backs := msg.Backtracks
		Advance(ctx, Blind{}, msg)
		if msg.Hops > before && msg.Backtracks == backs && msg.Incoming != grid.InvalidDir {
			mv := move{cur, msg.Incoming}
			seen[mv]++
			if seen[mv] > 1 {
				t.Fatalf("direction %v reused at node %v", msg.Incoming, m.Shape().CoordOf(cur))
			}
		}
	}
	if !msg.Arrived {
		t.Fatalf("did not arrive: %v", msg)
	}
}

// TestUnreachableDestination: a destination walled in by faults must be
// reported unreachable by the searchers and by the oracle.
func TestUnreachableDestination(t *testing.T) {
	// Wall off (8,8) completely.
	walls := []grid.Coord{{7, 8}, {9, 8}, {8, 7}, {8, 9}}
	ctx, m := env(t, []int{10, 10}, walls)
	src := m.Shape().Index(grid.Coord{1, 1})
	dst := m.Shape().Index(grid.Coord{8, 8})
	for _, r := range []Router{Limited{}, Blind{}, &Oracle{}} {
		msg := NewMessage(src, dst)
		runToEnd(t, ctx, r, msg)
		if !msg.Unreachable {
			t.Fatalf("%s should report unreachable: %v", r.Name(), msg)
		}
	}
}

// TestBacktrackIntoDeadEnd: a pocket forces the blind router to backtrack
// out and still arrive.
func TestBacktrackIntoDeadEnd(t *testing.T) {
	// A U-shaped pocket opening downward on the way: walls at x=4..6.
	pocket := []grid.Coord{{4, 4}, {4, 5}, {4, 6}, {5, 6}, {6, 6}, {6, 5}, {6, 4}}
	ctx, m := env(t, []int{12, 12}, pocket)
	src := m.Shape().Index(grid.Coord{5, 1})
	dst := m.Shape().Index(grid.Coord{5, 9})
	msg := NewMessage(src, dst)
	runToEnd(t, ctx, Blind{}, msg)
	if !msg.Arrived {
		t.Fatalf("blind did not escape the pocket: %v", msg)
	}
	if msg.Backtracks == 0 {
		t.Log("note: pocket avoided without backtracking (statuses made walls visible)")
	}
}

// TestDisabledCurrentNodeBacktracks: Algorithm 3 step 1.
func TestDisabledCurrentNodeBacktracks(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{6, 6})
	msg := NewMessage(src, dst)
	Advance(ctx, Limited{}, msg) // moves to (3,2)
	if msg.Cur == src {
		t.Fatal("message did not move")
	}
	// The node under the message becomes disabled (dynamic fault wave).
	m.SetStatus(msg.Cur, mesh.Disabled)
	backs := msg.Backtracks
	Advance(ctx, Limited{}, msg)
	if msg.Backtracks != backs+1 || msg.Cur != src {
		t.Fatalf("message did not backtrack off the disabled node: %v", msg)
	}
}

// TestLostWhenPathNodeFails: backtracking onto a failed node loses the
// message (accounted, not panicking).
func TestLostWhenPathNodeFails(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{6, 6})
	msg := NewMessage(src, dst)
	Advance(ctx, Limited{}, msg)
	// Fail both the current node's location and the path back.
	m.SetStatus(msg.Cur, mesh.Disabled)
	m.Fail(src)
	Advance(ctx, Limited{}, msg)
	if !msg.Lost {
		t.Fatalf("message should be lost: %v", msg)
	}
}

// TestOracleOptimal: the oracle's path length equals the true BFS distance
// in the enabled subgraph.
func TestOracleOptimal(t *testing.T) {
	faults := []grid.Coord{{4, 4}, {5, 4}, {6, 4}, {4, 5}, {5, 5}, {6, 5}}
	ctx, m := env(t, []int{10, 10}, faults)
	src := m.Shape().Index(grid.Coord{5, 2})
	dst := m.Shape().Index(grid.Coord{5, 8})
	msg := NewMessage(src, dst)
	runToEnd(t, ctx, &Oracle{}, msg)
	if !msg.Arrived {
		t.Fatalf("oracle failed: %v", msg)
	}
	// True distance: around the 3-wide block: D=6 plus 2*2 detour.
	if msg.Hops != 10 {
		t.Fatalf("oracle hops = %d, want 10", msg.Hops)
	}
}

// TestDORFailsOnBlock: dimension-order gives up at the first bad hop.
func TestDORFailsOnBlock(t *testing.T) {
	ctx, m := env(t, []int{10, 10}, []grid.Coord{{5, 2}})
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{8, 2})
	msg := NewMessage(src, dst)
	runToEnd(t, ctx, DOR{}, msg)
	if !msg.Unreachable {
		t.Fatalf("DOR should fail on the blocked row: %v", msg)
	}
}

// TestLimitedMinimalWhenSafe: for a safe source (no block on the axis
// sections), the limited router is minimal even with blocks nearby.
func TestLimitedMinimalWhenSafe(t *testing.T) {
	ctx, m := env(t, []int{12, 12}, []grid.Coord{{4, 7}, {5, 8}})
	shape := m.Shape()
	src := shape.Index(grid.Coord{1, 1})
	dst := shape.Index(grid.Coord{9, 5})
	msg := NewMessage(src, dst)
	runToEnd(t, ctx, Limited{}, msg)
	if !msg.Arrived || msg.Hops != shape.Distance(src, dst) {
		t.Fatalf("safe route not minimal: %v (D=%d)", msg, shape.Distance(src, dst))
	}
}

// TestByName covers the registry.
func TestByName(t *testing.T) {
	for _, name := range []string{"limited", "blind", "oracle", "dor"} {
		r, err := ByName(name)
		if err != nil || r.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown router accepted")
	}
}

// TestMessageString covers terminal-state rendering.
func TestMessageString(t *testing.T) {
	msg := NewMessage(1, 2)
	if got := msg.String(); got == "" {
		t.Fatal("empty String")
	}
	msg.Arrived = true
	if got := msg.String(); !contains(got, "arrived") {
		t.Fatalf("String = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || searchStr(s, sub))
}

func searchStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
