package route

import (
	"testing"

	"ndmesh/internal/grid"
	"ndmesh/internal/rng"
)

// flatLoad is a LoadView with every signal equal — the "contention
// disabled" landscape (zero) or any uniform background.
type flatLoad struct{ v int }

func (l flatLoad) Resident(grid.NodeID) int              { return l.v }
func (l flatLoad) LinkPending(grid.NodeID, grid.Dir) int { return l.v }

// dirLoad biases one direction from one node.
type dirLoad struct {
	from grid.NodeID
	dir  grid.Dir
	v    int
}

func (l dirLoad) Resident(grid.NodeID) int { return 0 }
func (l dirLoad) LinkPending(from grid.NodeID, dir grid.Dir) int {
	if from == l.from && dir == l.dir {
		return l.v
	}
	return 0
}

// TestCongestedEqualsLimitedNoLoadView pins the fallback contract
// decision-for-decision: with Context.Load == nil the congested router is
// Limited, verbatim, over randomized faulty scenarios.
func TestCongestedEqualsLimitedNoLoadView(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 50; trial++ {
		ctx, m := randomEnv(t, r)
		ctx.Load = nil
		src, dst := randomPair(m, r)
		if src == grid.InvalidNode {
			continue
		}
		lim, cong := NewMessage(src, dst), NewMessage(src, dst)
		for i := 0; i < 4000; i++ {
			dl := Limited{}.Decide(ctx, lim)
			dc := Congested{}.Decide(ctx, cong)
			if dl != dc {
				t.Fatalf("trial %d step %d: limited %+v, congested %+v at node %d",
					trial, i, dl, dc, lim.Cur)
			}
			la := Advance(ctx, Limited{}, lim)
			Advance(ctx, Congested{}, cong)
			if !la {
				break
			}
		}
		if lim.Arrived != cong.Arrived || lim.Hops != cong.Hops || lim.Cur != cong.Cur {
			t.Fatalf("trial %d: trajectories diverged: %v vs %v", trial, lim, cong)
		}
	}
}

// TestCongestedEqualsLimitedFlatLoad pins the hysteresis floor: when every
// load signal is equal (contention disabled reads all zeros; any uniform
// landscape behaves the same) no alternative can show the required strict
// advantage, so eager and stall-gated congested both reproduce Limited.
func TestCongestedEqualsLimitedFlatLoad(t *testing.T) {
	r := rng.New(777)
	for _, load := range []LoadView{flatLoad{0}, flatLoad{3}} {
		for trial := 0; trial < 25; trial++ {
			ctx, m := randomEnv(t, r)
			ctx.Load = load
			src, dst := randomPair(m, r)
			if src == grid.InvalidNode {
				continue
			}
			rt := Congested{Cfg: CongestionConfig{Eager: true}}
			lim, cong := NewMessage(src, dst), NewMessage(src, dst)
			for i := 0; i < 4000; i++ {
				dl := Limited{}.Decide(ctx, lim)
				dc := rt.Decide(ctx, cong)
				if dl != dc {
					t.Fatalf("trial %d step %d: limited %+v, congested %+v", trial, i, dl, dc)
				}
				la := Advance(ctx, Limited{}, lim)
				Advance(ctx, rt, cong)
				if !la {
					break
				}
			}
		}
	}
}

// TestCongestedDeviatesToLighterPreferred pins the tie-break: with two
// preferred directions and the baseline one congested, the eager router
// takes the lighter; the stall-gated default keeps the baseline until the
// message has stalled.
func TestCongestedDeviatesToLighterPreferred(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{5, 5})
	// Baseline (LowestAxis) picks +X; pile load onto that link.
	ctx.Load = dirLoad{from: src, dir: grid.DirPlus(0), v: 5}

	msg := NewMessage(src, dst)
	if d := (Congested{}).Decide(ctx, msg); d.Dir != grid.DirPlus(0) {
		t.Fatalf("stall-gated router deviated without a stall: %+v", d)
	}
	msg.stalled = true
	if d := (Congested{}).Decide(ctx, msg); d.Dir != grid.DirPlus(1) {
		t.Fatalf("stalled router kept the congested link: %+v", d)
	}
	msg2 := NewMessage(src, dst)
	if d := (Congested{Cfg: CongestionConfig{Eager: true}}).Decide(ctx, msg2); d.Dir != grid.DirPlus(1) {
		t.Fatalf("eager router kept the congested link: %+v", d)
	}
}

// TestCongestedMarginHysteresis pins that deviation requires a strict
// advantage of at least Margin.
func TestCongestedMarginHysteresis(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{5, 5})
	msg := NewMessage(src, dst)
	msg.stalled = true
	for _, tc := range []struct {
		load, margin int
		want         grid.Dir
	}{
		{1, 1, grid.DirPlus(1)}, // advantage 1 >= margin 1: deviate
		{1, 2, grid.DirPlus(0)}, // advantage 1 < margin 2: keep baseline
		{2, 2, grid.DirPlus(1)}, // advantage 2 >= margin 2: deviate
	} {
		ctx.Load = dirLoad{from: src, dir: grid.DirPlus(0), v: tc.load}
		d := Congested{Cfg: CongestionConfig{Margin: tc.margin}}.Decide(ctx, msg)
		if d.Dir != tc.want {
			t.Fatalf("load %d margin %d: picked %v, want %v", tc.load, tc.margin, d.Dir, tc.want)
		}
	}
}

// TestCongestedNeverLeavesTheClass pins the safety property the router
// inherits from Limited: load may reorder directions inside a priority
// class, but never promote a spare over a preferred direction, so
// Algorithm 3's class priorities and termination guarantees carry over.
func TestCongestedNeverLeavesTheClass(t *testing.T) {
	ctx, m := env(t, []int{8, 8}, nil)
	src := m.Shape().Index(grid.Coord{2, 2})
	dst := m.Shape().Index(grid.Coord{5, 2}) // straight +X run: one preferred dir
	// Make the single preferred direction maximally congested.
	ctx.Load = dirLoad{from: src, dir: grid.DirPlus(0), v: 1000}
	msg := NewMessage(src, dst)
	msg.stalled = true
	d := Congested{}.Decide(ctx, msg)
	if d.Dir != grid.DirPlus(0) {
		t.Fatalf("router left the preferred class: %+v", d)
	}
}
