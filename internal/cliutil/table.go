// This file is the one definition of the open-loop (E19) result table:
// the column order, the cell formatting, and the CSV rendition. It exists
// so the meshd daemon's streamed CSV and loadgen's batch CSV are the same
// bytes by construction — the CI smoke job diffs the two outputs whole,
// and a drive-by format tweak that touched only one of them would be a
// silent contract break. Change the columns here and both sides move
// together.

package cliutil

import (
	"fmt"
	"strings"

	"ndmesh"
	"ndmesh/internal/stats"
)

// OpenLoopHeader returns the open-loop saturation table's column names,
// in order.
func OpenLoopHeader() []string {
	return []string{
		"pattern", "router", "offered", "accepted", "delivered", "dropped",
		"unreach", "lost", "unfin", "lat mean", "p50", "p95", "p99", "max",
	}
}

// OpenLoopCells renders one saturation row into table cells, with the
// offered/accepted rates at the sweep's canonical three decimals. The
// cells are stats.Table.AddRow arguments; CSVLine formats them with the
// identical rules, so a streamed CSV row matches the batch table's.
func OpenLoopCells(r ndmesh.SaturationRow) []any {
	return []any{
		r.Pattern, r.Router,
		fmt.Sprintf("%.3f", r.OfferedRate), fmt.Sprintf("%.3f", r.AcceptedRate),
		r.Delivered, r.Dropped, r.Unreachable, r.Lost, r.Unfinished,
		r.LatMean, r.LatP50, r.LatP95, r.LatP99, r.LatMax,
	}
}

// OpenLoopTable builds the full open-loop result table from a sweep's
// rows — the batch path (cmd/loadgen) in one call.
func OpenLoopTable(title string, rows []ndmesh.SaturationRow) *stats.Table {
	tab := stats.NewTable(title, OpenLoopHeader()...)
	for _, r := range rows {
		tab.AddRow(OpenLoopCells(r)...)
	}
	return tab
}

// CSVHeader renders a header slice as one CSV line (trailing newline
// included), matching stats.Table.CSV's header line.
func CSVHeader(header []string) string {
	return strings.Join(header, ",") + "\n"
}

// CSVLine renders one row of AddRow-style cells as a CSV line (trailing
// newline included) under stats.Table's formatting rules: float64 cells
// at two decimals, everything else via fmt.Sprint. Pinned against
// Table.CSV by TestCSVLineMatchesTable, so the incremental writer (meshd
// streaming rows as cells complete) cannot drift from the batch one.
func CSVLine(cells []any) string {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(&b, "%.2f", v)
		default:
			fmt.Fprint(&b, c)
		}
	}
	b.WriteByte('\n')
	return b.String()
}
