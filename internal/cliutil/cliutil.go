// Package cliutil holds the flag-parsing helpers shared by the command
// line tools (meshsim, faultviz, loadgen, sweep): mesh dimensions,
// coordinates, comma-separated lists and rates. One copy, so validation
// fixes reach every CLI.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"ndmesh/internal/grid"
)

// ParseDims parses mesh dimensions like "16x16" or "10x10x10".
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimensions %q: %v", s, err)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

// ParseCoord parses an n-component coordinate like "1,1" or "3,5,4".
func ParseCoord(s string, n int) (grid.Coord, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("coordinate %q needs %d components", s, n)
	}
	c := make(grid.Coord, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %v", s, err)
		}
		c[i] = v
	}
	return c, nil
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseInts parses a comma-separated list of positive integers (e.g. the
// closed-loop -windows flag). An empty/blank string parses to nil, so the
// flag's presence doubles as the mode switch.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, p := range SplitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q (need a positive integer)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseRates parses a comma-separated list of positive rates.
func ParseRates(s string) ([]float64, error) {
	var rates []float64
	for _, p := range SplitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (need a positive number)", p)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return rates, nil
}

// Progress returns a (done, total) callback that prints per-cell sweep
// completion to stderr (the sweeps call it from worker goroutines;
// Fprintf on a shared os.File is atomic enough for single-line writes),
// or nil when disabled — the sweep options treat a nil callback as "no
// progress reporting".
func Progress(enabled bool, label string) func(done, total int) {
	if !enabled {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "%s: %d/%d cells done\n", label, done, total)
	}
}
