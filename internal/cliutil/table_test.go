package cliutil

import (
	"testing"

	"ndmesh"
	"ndmesh/internal/stats"
)

// TestCSVLineMatchesTable pins the incremental CSV writer to the batch
// one: CSVHeader + CSVLine over each row's cells must reproduce
// stats.Table.CSV byte for byte. This is the contract the meshd CSV
// stream rests on.
func TestCSVLineMatchesTable(t *testing.T) {
	rows := []ndmesh.SaturationRow{
		{
			Pattern: "uniform", Router: "limited",
			OfferedRate: 0.05, AcceptedRate: 0.0498,
			Delivered: 111, Dropped: 2, Unreachable: 0, Lost: 0, Unfinished: 3,
			LatMean: 7.25, LatP50: 6, LatP95: 14, LatP99: 19, LatMax: 31,
		},
		{
			Pattern: "transpose", Router: "pcs",
			OfferedRate: 0.5, AcceptedRate: 0.31,
			Delivered: 640, Dropped: 77, Unreachable: 1, Lost: 4, Unfinished: 12,
			LatMean: 24.5, LatP50: 21, LatP95: 60, LatP99: 88, LatMax: 140,
		},
	}
	tab := stats.NewTable("", OpenLoopHeader()...)
	for _, r := range rows {
		tab.AddRow(OpenLoopCells(r)...)
	}
	want := tab.CSV()

	got := CSVHeader(OpenLoopHeader())
	for _, r := range rows {
		got += CSVLine(OpenLoopCells(r))
	}
	if got != want {
		t.Fatalf("incremental CSV differs from Table.CSV:\n got: %q\nwant: %q", got, want)
	}
}

// TestOpenLoopTableShape guards the column/cell pairing: every row must
// have exactly one cell per header column.
func TestOpenLoopTableShape(t *testing.T) {
	if h, c := len(OpenLoopHeader()), len(OpenLoopCells(ndmesh.SaturationRow{})); h != c {
		t.Fatalf("header has %d columns but rows have %d cells", h, c)
	}
}
