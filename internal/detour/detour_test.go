package detour

import (
	"strings"
	"testing"
)

func TestTraceExtraSteps(t *testing.T) {
	tr := Trace{D0: 10, Start: 5, EndStep: 19}
	if tr.ExtraSteps() != 4 {
		t.Fatalf("ExtraSteps = %d", tr.ExtraSteps())
	}
	fast := Trace{D0: 10, Start: 5, EndStep: 12}
	if fast.ExtraSteps() != 0 {
		t.Fatal("negative extra steps must clamp to 0")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Which: "Theorem 4", Index: 2, Measure: 9, Bound: 4}
	if !strings.Contains(v.Error(), "Theorem 4") || !strings.Contains(v.Error(), "9 > bound 4") {
		t.Fatalf("Error = %q", v.Error())
	}
}

func TestCheckTheorem3Conforming(t *testing.T) {
	// D = 10, injected at t = 12 inside interval p which began at t_p = 10
	// with d_p = 20, a_p = 2, e_max = 1: the message has
	// 20 - 2 = 18 available steps, guaranteed progress 18 - 4 - 2 = 12 >= D
	// so the bound at occurrence p+1 is 0 (should have arrived).
	tr := Trace{
		D0: 10, Start: 12, P: 1,
		DAt:     []int{0},
		EndStep: 22, Arrived: true,
	}
	pIv := Interval{T: 10, D: 20, A: 2, EMax: 1}
	if v := CheckTheorem3(tr, pIv, nil); len(v) != 0 {
		t.Fatalf("conforming trace violated: %v", v)
	}
}

func TestCheckTheorem3SlowProgressViolates(t *testing.T) {
	// Same setup but the message reports D(p+1) = 9: slower than the
	// worst-case bound allows.
	tr := Trace{
		D0: 10, Start: 12, P: 1,
		DAt:     []int{9},
		EndStep: 60, Arrived: true,
	}
	pIv := Interval{T: 10, D: 20, A: 2, EMax: 1}
	v := CheckTheorem3(tr, pIv, nil)
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].Measure != 9 || v[0].Bound != 0 {
		t.Fatalf("violation = %+v", v[0])
	}
}

func TestCheckTheorem3Recurrence(t *testing.T) {
	// Short intervals: bound stays positive. d = 6, a = 1, e = 1 gives
	// slack 2 per interval: D(i) must drop by >= 2 each interval.
	tr := Trace{
		D0: 10, Start: 10, P: 0,
		DAt:     []int{9, 7, 5}, // first drop only 1 with slack...:
		EndStep: 40, Arrived: true,
	}
	// Interval p: T=10 (injection at its very start), D=6, slack 2:
	// bound(p+1) = 10 - (6 - 0 - 2 - 2) = 8. Measured 9 > 8: violation.
	pIv := Interval{T: 10, D: 6, A: 1, EMax: 1}
	ivs := []Interval{{T: 16, D: 6, A: 1, EMax: 1}, {T: 22, D: 6, A: 1, EMax: 1}}
	v := CheckTheorem3(tr, pIv, ivs)
	if len(v) != 1 {
		t.Fatalf("want exactly the first-interval violation, got %v", v)
	}
	// With measured D obeying the recurrence, no violations.
	tr.DAt = []int{8, 6, 4}
	if v := CheckTheorem3(tr, pIv, ivs); len(v) != 0 {
		t.Fatalf("conforming recurrence violated: %v", v)
	}
}

func TestKBound(t *testing.T) {
	// No intervals: k = 1.
	if k := KBound(5, 10, nil); k != 1 {
		t.Fatalf("empty KBound = %d", k)
	}
	// One interval with big slack: D + t - t_p - 0 > 0 always for l=1;
	// for l=2 the sum includes interval p's slack.
	ivs := []Interval{
		{T: 10, D: 30, A: 1, EMax: 1}, // slack 26
		{T: 40, D: 30, A: 1, EMax: 1},
		{T: 70, D: 30, A: 1, EMax: 1},
	}
	// D=5, start=12: l=1: 5+12-10 = 7 > 0 ok. l=2: 7-26 < 0 stop: k=1.
	if k := KBound(5, 12, ivs); k != 1 {
		t.Fatalf("KBound = %d, want 1", k)
	}
	// Tiny slack: d=4, a=1, e=1 -> slack 0: k grows until the schedule
	// runs out.
	tight := []Interval{
		{T: 10, D: 4, A: 1, EMax: 1},
		{T: 14, D: 4, A: 1, EMax: 1},
		{T: 18, D: 4, A: 1, EMax: 1},
	}
	if k := KBound(5, 10, tight); k < 3 {
		t.Fatalf("zero-slack KBound = %d, want >= 3", k)
	}
}

func TestMaxDetourBound(t *testing.T) {
	ivs := []Interval{
		{A: 2, EMax: 1},
		{A: 1, EMax: 3},
	}
	if b := MaxDetourBound(4, ivs); b != 4*(2+3) {
		t.Fatalf("MaxDetourBound = %d", b)
	}
	if MaxDetourBound(2, nil) != 0 {
		t.Fatal("empty bound not 0")
	}
}

func TestCheckTheorem4(t *testing.T) {
	ivs := []Interval{
		{T: 10, D: 30, A: 1, EMax: 1},
		{T: 40, D: 30, A: 1, EMax: 1},
	}
	// Arrives quickly within interval p: no violation.
	tr := Trace{D0: 8, Start: 12, P: 1, EndStep: 22, Arrived: true}
	if v := CheckTheorem4(tr, ivs); len(v) != 0 {
		t.Fatalf("conforming Theorem 4 violated: %v", v)
	}
	// Unreached runs are outside the premise: no violations reported.
	trU := Trace{D0: 8, Start: 12, P: 1, EndStep: 90, Arrived: false}
	if v := CheckTheorem4(trU, ivs); len(v) != 0 {
		t.Fatalf("unreachable trace should not violate: %v", v)
	}
	// A run that drags across more intervals than k and with huge extra
	// steps violates both clauses.
	trBad := Trace{D0: 4, Start: 12, P: 1, EndStep: 75, Arrived: true}
	v := CheckTheorem4(trBad, ivs)
	if len(v) == 0 {
		t.Fatal("dragging trace should violate")
	}
}

func TestCheckTheorem5UsesPathLength(t *testing.T) {
	ivs := []Interval{{T: 10, D: 40, A: 1, EMax: 1}}
	// Path length 14 though D0 is 6 (unsafe source): ending within
	// start + L + slack is fine.
	tr := Trace{D0: 6, Start: 12, P: 1, EndStep: 27, Arrived: true}
	if v := CheckTheorem5(tr, 14, ivs); len(v) != 0 {
		t.Fatalf("Theorem 5 violated: %v", v)
	}
}

func TestIntervalSlack(t *testing.T) {
	iv := Interval{D: 10, A: 2, EMax: 3}
	if iv.slack() != 10-4-6 {
		t.Fatalf("slack = %d", iv.slack())
	}
}
