// Package detour implements the detour analysis of Section 6: the
// quantities of Table 1 and the bounds of Theorems 3, 4 and 5, together
// with checkers that compare a simulated routing run against the bounds.
//
// The theorems' setting: a routing message starts at step t; p faults have
// already occurred (p = max{l : t_l <= t}); fault i stabilizes its
// constructions in a_i steps; e_max is the maximum block edge length;
// interval d_i separates occurrences i and i+1; there is one new block per
// interval. Then (Theorem 3) the message's distance-to-go D(i) sampled at
// occurrence i satisfies
//
//	D(i) = D                                  for i <= p
//	D(p+1) <= D - (d_p - (t - t_p) - 2a_p - 2e_max)
//	D(i)  <= D(i-1) - (d_{i-1} - 2a_{i-1} - 2e_max)   for i > p+1
//
// (Theorem 4) the routing from a safe source ends within k intervals where
// k <= max{l : D + t - t_p - Σ_{i=p}^{p+l-2}(d_i - 2a_i - 2e_max) > 0},
// with at most k(e_max + a_max) detours; (Theorem 5) replaces D with the
// length L of any existing path for unsafe sources.
package detour

import (
	"fmt"
)

// Interval describes fault occurrence i for the bound computations.
type Interval struct {
	// T is t_i, the occurrence step.
	T int
	// D is d_i = t_{i+1} - t_i (for the final occurrence, the horizon to
	// the end of the run).
	D int
	// A is a_i in steps (labeling stabilization after occurrence i).
	A int
	// EMax is e_max observed after occurrence i.
	EMax int
}

// slack is the guaranteed progress of interval i: d_i - 2a_i - 2e_max.
func (iv Interval) slack() int { return iv.D - 2*iv.A - 2*iv.EMax }

// Trace is the measured routing-run data the theorems are checked against.
type Trace struct {
	// D0 is D, the source-destination distance at injection.
	D0 int
	// Start is t, the injection step.
	Start int
	// P is p, the number of fault occurrences before (or at) injection.
	P int
	// DAt[j] is D(p+1+j): the distance-to-go sampled at each occurrence
	// after injection, in order.
	DAt []int
	// EndStep is the step the message terminated (arrived/unreachable).
	EndStep int
	// Arrived reports successful termination.
	Arrived bool
	// Hops is the total number of link traversals.
	Hops int
}

// ExtraSteps returns the steps beyond the initial distance: the raw detour
// cost 2 * (number of detours) in the paper's accounting, where one detour
// is one hop off the path plus the hop making it up.
func (tr Trace) ExtraSteps() int {
	x := tr.EndStep - tr.Start - tr.D0
	if x < 0 {
		return 0
	}
	return x
}

// Violation describes one failed bound check.
type Violation struct {
	Which   string
	Index   int
	Measure int
	Bound   int
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("detour: %s violated at i=%d: measured %d > bound %d", v.Which, v.Index, v.Measure, v.Bound)
}

// CheckTheorem3 verifies the D(i) recurrence against a trace. intervals[j]
// describes occurrence p+1+j (the occurrences sampled in tr.DAt; the first
// relevant interval is d_p, the one the injection lands in, described by
// pInterval). Bounds are clamped below at 0 — a negative bound means the
// theorem predicts arrival before the occurrence, checked via termination.
func CheckTheorem3(tr Trace, pInterval Interval, intervals []Interval) []Violation {
	var out []Violation
	prev := tr.D0
	for j, measured := range tr.DAt {
		if j >= len(intervals)+1 {
			break
		}
		var bound int
		if j == 0 {
			// i = p+1: the message had d_p - (t - t_p) steps of interval p.
			avail := pInterval.D - (tr.Start - pInterval.T)
			bound = tr.D0 - (avail - 2*pInterval.A - 2*pInterval.EMax)
		} else {
			iv := intervals[j-1]
			bound = prev - iv.slack()
		}
		if bound < 0 {
			bound = 0
		}
		if bound > tr.D0 {
			bound = tr.D0 // a message never drifts beyond its start distance
		}
		// The theorem bounds the distance still to go; bound 0 means the
		// message should have arrived by this occurrence.
		if measured > bound && measured > 0 {
			out = append(out, Violation{Which: "Theorem 3", Index: tr.P + 1 + j, Measure: measured, Bound: bound})
		}
		prev = measured
	}
	return out
}

// KBound computes Theorem 4's k: the largest l such that
// D + t - t_p - Σ_{i=p}^{p+l-2} (d_i - 2a_i - 2e_max) > 0, where
// intervals[0] is interval p. The sum over an empty range (l = 1) is 0, so
// k >= 1 whenever D > 0. A run with no further occurrences gets k = 1.
func KBound(d0, start int, intervals []Interval) int {
	if len(intervals) == 0 {
		return 1
	}
	tp := intervals[0].T
	k := 0
	sum := 0
	for l := 1; ; l++ {
		// Σ_{i=p}^{p+l-2}: the first l-1 intervals.
		if l-2 >= 0 {
			if l-2 < len(intervals) {
				sum += intervals[l-2].slack()
			} else {
				// Beyond the schedule there are no more occurrences; the
				// remaining budget decides within this interval.
				break
			}
		}
		if d0+start-tp-sum > 0 {
			k = l
		} else {
			break
		}
		if l > len(intervals)+1 {
			break
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// MaxDetourBound computes Theorem 4's detour bound k * (e_max + a_max).
func MaxDetourBound(k int, intervals []Interval) int {
	aMax, eMax := 0, 0
	for _, iv := range intervals {
		if iv.A > aMax {
			aMax = iv.A
		}
		if iv.EMax > eMax {
			eMax = iv.EMax
		}
	}
	return k * (eMax + aMax)
}

// CheckTheorem4 verifies termination-within-k-intervals and the detour
// bound for a safe-source run. intervals[0] is interval p (containing the
// injection). It returns violations (empty means the run obeys the bounds).
func CheckTheorem4(tr Trace, intervals []Interval) []Violation {
	return checkTermination(tr, tr.D0, intervals, "Theorem 4")
}

// CheckTheorem5 is Theorem 4 with the existing-path length L substituted
// for the distance D (unsafe sources).
func CheckTheorem5(tr Trace, pathLen int, intervals []Interval) []Violation {
	return checkTermination(tr, pathLen, intervals, "Theorem 5")
}

func checkTermination(tr Trace, budget int, intervals []Interval, which string) []Violation {
	var out []Violation
	if !tr.Arrived {
		return out // unreachable runs are outside the theorems' premises
	}
	k := KBound(budget, tr.Start, intervals)
	// Measured interval count: occurrences with t_i < EndStep, starting at
	// interval p. The run ends within interval p+m where m counts sampled
	// occurrences before termination.
	m := 1
	for _, iv := range intervals[1:] {
		if iv.T < tr.EndStep {
			m++
		}
	}
	if m > k {
		out = append(out, Violation{Which: which + " (k intervals)", Index: tr.P, Measure: m, Bound: k})
	}
	// Detours: one detour = 2 extra steps (off the path and back).
	detours := (tr.EndStep - tr.Start - budget + 1) / 2
	if detours < 0 {
		detours = 0
	}
	if bound := MaxDetourBound(k, intervals); detours > bound {
		out = append(out, Violation{Which: which + " (max detours)", Index: tr.P, Measure: detours, Bound: bound})
	}
	return out
}
