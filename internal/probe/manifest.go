package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// FormatVersion is bumped whenever any telemetry CSV schema changes
// incompatibly. Manifests carry it so consumers can refuse files they do
// not understand.
const FormatVersion = 1

// Manifest is the sidecar written next to every telemetry output file
// (<output>.manifest.json): enough to re-run the exact run that produced
// the file and to parse it without guessing.
type Manifest struct {
	FormatVersion int      `json:"format_version"`
	Kind          string   `json:"kind"`   // "timeseries" | "heatmap" | "hist"
	Schema        []string `json:"schema"` // CSV column list, in order
	Dims          []int    `json:"dims,omitempty"`
	Seed          uint64   `json:"seed"`
	ProbeEvery    int      `json:"probe_every"`
	Config        any      `json:"config,omitempty"`
}

// Write emits the manifest as indented JSON to path+".manifest.json".
func (m Manifest) Write(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path+".manifest.json", append(b, '\n'), 0o644)
}

// writeHeader emits a CSV header row from a schema column list.
func writeHeader(w io.Writer, schema []string) error {
	_, err := fmt.Fprintln(w, strings.Join(schema, ","))
	return err
}
