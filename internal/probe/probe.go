// Package probe is the run-telemetry layer: concrete implementations of
// the engine's Probe interface that turn the per-step census emitted by
// the always-serial commit phase into time-resolved artifacts — a
// step-level time series (TimeSeries), per-node residency and per-link
// stall heatmaps (Heatmap), a log-bucketed full latency distribution
// (LatencyHist), and a mutex-guarded live snapshot for introspection
// endpoints (Snapshot) — plus the Set multiplexer that fans one census
// out to all of them and the Manifest sidecar that makes every output
// file self-describing (config + seed + format version).
//
// Contracts: observation is read-only and off the decision path, so a
// probed run's results are byte-identical to the unprobed run at every
// worker and shard count; every recorder is 0 allocs/op in steady state
// (pre-sized at construction, asserted by TestProbedStepAllocFree); and
// recorders fold the census's slice views immediately, never retaining
// them past the ObserveStep call.
package probe

import "ndmesh/internal/engine"

// LatencyObserver receives per-flight delivery latencies (in steps,
// queueing waits included). The census carries counts, not per-flight
// values, so the load run's harvest pass feeds latencies separately.
type LatencyObserver interface {
	ObserveLatency(steps int)
}

// Set fans one census (and one latency stream) out to a group of
// recorders. The zero value is ready to use; an empty set observes
// nothing.
type Set struct {
	probes []engine.Probe
	lats   []LatencyObserver
}

// AddProbe registers a census recorder. A recorder that also implements
// LatencyObserver is registered for latencies too.
func (s *Set) AddProbe(p engine.Probe) {
	s.probes = append(s.probes, p)
	if l, ok := p.(LatencyObserver); ok {
		s.lats = append(s.lats, l)
	}
}

// AddLatency registers a latency-only recorder.
func (s *Set) AddLatency(l LatencyObserver) {
	s.lats = append(s.lats, l)
}

// Empty reports whether the set has no recorders at all.
func (s *Set) Empty() bool { return len(s.probes) == 0 && len(s.lats) == 0 }

// ObserveStep implements engine.Probe: every registered census recorder
// sees the same census, in registration order.
//
//meshvet:noalloc
func (s *Set) ObserveStep(c engine.StepCensus) {
	for _, p := range s.probes {
		p.ObserveStep(c)
	}
}

// ObserveLatency implements LatencyObserver by fan-out.
//
//meshvet:noalloc
func (s *Set) ObserveLatency(steps int) {
	for _, l := range s.lats {
		l.ObserveLatency(steps)
	}
}
