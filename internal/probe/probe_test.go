package probe

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ndmesh/internal/core"
	"ndmesh/internal/engine"
	"ndmesh/internal/grid"
	"ndmesh/internal/mesh"
	"ndmesh/internal/route"
)

// TestTimeSeriesRing pins the ring semantics: a full ring keeps the last
// `capacity` rows in chronological order and counts the overwrites.
func TestTimeSeriesRing(t *testing.T) {
	ts := NewTimeSeries(3)
	for step := 1; step <= 5; step++ {
		ts.ObserveStep(engine.StepCensus{Step: step, Steps: 1, Injected: step})
	}
	if ts.Len() != 3 || ts.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", ts.Len(), ts.Dropped())
	}
	rows := ts.Rows()
	for i, want := range []int{3, 4, 5} {
		if rows[i].Step != want || rows[i].Injected != want {
			t.Fatalf("row %d = %+v, want step=%d", i, rows[i], want)
		}
	}
	// Degenerate capacity clamps to 1.
	one := NewTimeSeries(0)
	one.ObserveStep(engine.StepCensus{Step: 1, Steps: 1})
	one.ObserveStep(engine.StepCensus{Step: 2, Steps: 1})
	if one.Len() != 1 || one.Rows()[0].Step != 2 || one.Dropped() != 1 {
		t.Fatalf("capacity-0 ring: len=%d dropped=%d rows=%+v", one.Len(), one.Dropped(), one.Rows())
	}
}

// TestTimeSeriesCSV pins the CSV column order against TimeSeriesSchema and
// the 0/1 encoding of the gridlock latch.
func TestTimeSeriesCSV(t *testing.T) {
	ts := NewTimeSeries(4)
	ts.ObserveStep(engine.StepCensus{
		Step: 7, Steps: 2, Injected: 3, Delivered: 2, Unreachable: 1,
		Lost: 4, TimedOut: 5, Retried: 5, Failed: 1, Recovered: 2,
		Moves: 6, Stalls: 8, InFlight: 9, Gridlocked: true,
	})
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want header + 1 row: %q", len(lines), buf.String())
	}
	if lines[0] != strings.Join(TimeSeriesSchema, ",") {
		t.Fatalf("header %q does not match TimeSeriesSchema", lines[0])
	}
	if lines[1] != "7,2,3,2,1,4,5,5,1,2,6,8,9,1" {
		t.Fatalf("row %q, want 7,2,3,2,1,4,5,5,1,2,6,8,9,1", lines[1])
	}
}

// TestHeatmapFold pins the fold of the census's call-scoped views: sums
// integrate across flushes, peaks take the max, and the CSV emits every
// node but only the links that ever stalled.
func TestHeatmapFold(t *testing.T) {
	h := NewHeatmap(4, 2)
	resident := []int32{0, 2, 0, 1}
	stalls := []int32{0, 3, 0, 0, 0, 0, 0, 0}
	h.ObserveStep(engine.StepCensus{
		Resident: resident, LinkStalls: stalls,
		LinkStallsDirty: []int32{1}, NumDirs: 2,
	})
	resident[1], resident[3] = 1, 0
	stalls[1], stalls[6] = 1, 2
	h.ObserveStep(engine.StepCensus{
		Resident: resident, LinkStalls: stalls,
		LinkStallsDirty: []int32{1, 6}, NumDirs: 2,
	})
	if h.Samples() != 2 {
		t.Fatalf("samples %d, want 2", h.Samples())
	}
	if peak, total := h.Resident(1); peak != 2 || total != 3 {
		t.Fatalf("node 1 residency peak=%d total=%d, want 2/3", peak, total)
	}
	if peak, total := h.Resident(3); peak != 1 || total != 1 {
		t.Fatalf("node 3 residency peak=%d total=%d, want 1/1", peak, total)
	}
	if peak, total := h.Stall(1); peak != 3 || total != 4 {
		t.Fatalf("link 1 stalls peak=%d total=%d, want 3/4", peak, total)
	}
	if peak, total := h.Stall(6); peak != 2 || total != 2 {
		t.Fatalf("link 6 stalls peak=%d total=%d, want 2/2", peak, total)
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 4 node rows + 2 stalled-link rows.
	if len(lines) != 7 {
		t.Fatalf("%d CSV lines, want 7:\n%s", len(lines), buf.String())
	}
	if lines[0] != strings.Join(HeatmapSchema, ",") {
		t.Fatalf("header %q does not match HeatmapSchema", lines[0])
	}
	if lines[2] != "node,1,-1,2,3,1.5" {
		t.Fatalf("node 1 row %q, want node,1,-1,2,3,1.5", lines[2])
	}
	// Link 6 = node 3, dir 0.
	if lines[6] != "link,3,0,2,2,1" {
		t.Fatalf("link 6 row %q, want link,3,0,2,2,1", lines[6])
	}
}

// TestSetFanOut pins the multiplexer: every registered recorder sees the
// census, and a census recorder that also observes latencies is
// auto-registered for both streams by AddProbe.
func TestSetFanOut(t *testing.T) {
	var set Set
	if !set.Empty() {
		t.Fatal("zero-value Set not empty")
	}
	ts := NewTimeSeries(8)
	hm := NewHeatmap(4, 2)
	lh := NewLatencyHist()
	var snap Snapshot
	set.AddProbe(ts)
	set.AddProbe(hm)
	set.AddProbe(&snap)
	set.AddLatency(lh)
	set.AddProbe(&dualRecorder{})
	if set.Empty() {
		t.Fatal("populated Set reports empty")
	}
	set.ObserveStep(engine.StepCensus{Step: 1, Steps: 1, Injected: 2})
	set.ObserveLatency(5)
	set.ObserveLatency(9)
	if ts.Len() != 1 || hm.Samples() != 1 || snap.State().Injected != 2 {
		t.Fatalf("census fan-out missed a recorder: ts=%d hm=%d snap=%+v",
			ts.Len(), hm.Samples(), snap.State())
	}
	if lh.Hist().Total() != 2 || lh.Hist().Max() != 9 {
		t.Fatalf("latency fan-out missed: total=%d max=%d", lh.Hist().Total(), lh.Hist().Max())
	}
	// The dual recorder was registered once and must have seen both streams.
	d := set.probes[len(set.probes)-1].(*dualRecorder)
	if d.steps != 1 || d.lats != 2 {
		t.Fatalf("dual recorder saw %d censuses / %d latencies, want 1/2", d.steps, d.lats)
	}
}

// dualRecorder implements both engine.Probe and LatencyObserver, pinning
// AddProbe's auto-registration.
type dualRecorder struct{ steps, lats int }

func (d *dualRecorder) ObserveStep(engine.StepCensus) { d.steps++ }
func (d *dualRecorder) ObserveLatency(int)            { d.lats++ }

// TestSnapshotAccumulates pins the counter-vs-gauge split of the live
// rollup: counters sum across flushes, gauges take the latest value.
func TestSnapshotAccumulates(t *testing.T) {
	var sn Snapshot
	sn.ObserveStep(engine.StepCensus{
		Step: 1, Steps: 1, Injected: 2, Moves: 1, InFlight: 2, Gridlocked: true,
	})
	sn.ObserveStep(engine.StepCensus{
		Step: 2, Steps: 1, Delivered: 2, Moves: 2, InFlight: 0,
	})
	got := sn.State()
	want := SnapshotState{Step: 2, Steps: 2, Injected: 2, Delivered: 2, Moves: 3}
	if got != want {
		t.Fatalf("snapshot %+v, want %+v", got, want)
	}
}

// TestLatencyHistCSV pins the cumulative column and bucket ordering of the
// histogram CSV.
func TestLatencyHistCSV(t *testing.T) {
	lh := NewLatencyHist()
	for _, v := range []int{3, 3, 7, 500} {
		lh.ObserveLatency(v)
	}
	var buf bytes.Buffer
	if err := lh.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != strings.Join(HistSchema, ",") {
		t.Fatalf("header %q does not match HistSchema", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 buckets:\n%s", len(lines), buf.String())
	}
	if lines[1] != "3,3,2,2" || lines[2] != "7,7,1,3" {
		t.Fatalf("exact-range rows %q / %q, want 3,3,2,2 and 7,7,1,3", lines[1], lines[2])
	}
	if !strings.HasSuffix(lines[3], ",1,4") {
		t.Fatalf("last row %q: cumulative count should end ,1,4", lines[3])
	}
}

// TestManifestRoundtrip pins the sidecar path convention and that a
// written manifest parses back identically.
func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ts.csv")
	m := Manifest{
		FormatVersion: FormatVersion,
		Kind:          "timeseries",
		Schema:        TimeSeriesSchema,
		Dims:          []int{8, 8},
		Seed:          42,
		ProbeEvery:    4,
		Config:        map[string]any{"rate": 0.25},
	}
	if err := m.Write(out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	got.Config = nil
	m.Config = nil
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest roundtrip:\n got %+v\nwant %+v", got, m)
	}
	if !bytes.HasSuffix(b, []byte("\n")) {
		t.Fatal("manifest file does not end with a newline")
	}
}

// TestProbedStepAllocFree is the package's headline contract: a contention
// step observed by the FULL recorder set — time series, heatmap, latency
// histogram and live snapshot, census flush plus latency feed — allocates
// nothing in steady state.
func TestProbedStepAllocFree(t *testing.T) {
	m, err := mesh.NewUniform(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	shape := m.Shape()
	e := engine.New(core.New(m), 1, nil)
	e.EnableContention(engine.ContentionConfig{LinkRate: 1, NodeCapacity: 4})

	set := &Set{}
	set.AddProbe(NewTimeSeries(64)) // deliberately small: wrap-around must not allocate
	set.AddProbe(NewHeatmap(shape.NumNodes(), shape.NumDirs()))
	set.AddProbe(&Snapshot{})
	set.AddLatency(NewLatencyHist())
	e.SetProbe(set)

	// Long-haul cross traffic, re-injected on delivery so the standing
	// population (and the latency feed) never dries up.
	pairs := [][2]grid.Coord{
		{{1, 1}, {14, 14}}, {{14, 14}, {1, 1}},
		{{14, 1}, {1, 14}}, {{1, 14}, {14, 1}},
		{{1, 7}, {14, 7}}, {{14, 8}, {1, 8}},
		{{7, 1}, {7, 14}}, {{8, 14}, {8, 1}},
	}
	inject := func() {
		for _, p := range pairs {
			if _, err := e.Inject(shape.Index(p[0]), shape.Index(p[1]), route.Limited{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	inject()
	harvest := func(fl *engine.Flight) {
		if fl.Msg.Arrived {
			set.ObserveLatency(fl.Msg.Steps)
		}
	}
	step := func() {
		e.Step()
		e.DetachDone(harvest)
		if len(e.Flights()) == 0 {
			inject()
		}
		e.FlushCensus()
	}
	for i := 0; i < 200; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Errorf("fully probed step allocates %.1f/op, want 0", allocs)
	}
}
