package probe

import (
	"fmt"
	"io"

	"ndmesh/internal/engine"
)

// Row is one flushed census in the time series: the scalar part of an
// engine.StepCensus (the slice views are folded by Heatmap, not kept
// here).
type Row struct {
	Step, Steps                            int
	Injected                               int
	Delivered, Unreachable, Lost, TimedOut int
	Retried                                int
	Failed, Recovered                      int
	Moves, Stalls                          int
	InFlight                               int
	Gridlocked                             bool
}

// TimeSeriesSchema lists the CSV columns WriteCSV emits, in order. The
// manifest embeds it so consumers never guess.
var TimeSeriesSchema = []string{
	"step", "steps", "injected", "delivered", "unreachable", "lost",
	"timed_out", "retried", "failed", "recovered", "moves", "stalls",
	"in_flight", "gridlocked",
}

// TimeSeries records one Row per flush into a pre-sized ring: the last
// `capacity` rows are kept, older ones are dropped (and counted), and
// steady-state recording allocates nothing. Load runs size the ring to
// the whole run so nothing drops; a live endpoint can size it to a
// window.
type TimeSeries struct {
	rows    []Row
	start   int // index of the oldest row
	n       int // rows currently held
	dropped int // rows overwritten because the ring was full
}

// NewTimeSeries builds a ring holding the last capacity rows (min 1).
func NewTimeSeries(capacity int) *TimeSeries {
	if capacity < 1 {
		capacity = 1
	}
	return &TimeSeries{rows: make([]Row, capacity)}
}

// ObserveStep implements engine.Probe.
//
//meshvet:noalloc
func (t *TimeSeries) ObserveStep(c engine.StepCensus) {
	i := t.start + t.n
	if i >= len(t.rows) {
		i -= len(t.rows)
	}
	t.rows[i] = Row{
		Step: c.Step, Steps: c.Steps,
		Injected:  c.Injected,
		Delivered: c.Delivered, Unreachable: c.Unreachable,
		Lost: c.Lost, TimedOut: c.TimedOut,
		Retried: c.Retried,
		Failed:  c.Failed, Recovered: c.Recovered,
		Moves: c.Moves, Stalls: c.Stalls,
		InFlight:   c.InFlight,
		Gridlocked: c.Gridlocked,
	}
	if t.n < len(t.rows) {
		t.n++
	} else {
		t.start++
		if t.start == len(t.rows) {
			t.start = 0
		}
		t.dropped++
	}
}

// Len returns the number of rows currently held.
func (t *TimeSeries) Len() int { return t.n }

// Dropped returns how many rows were overwritten because the ring
// filled.
func (t *TimeSeries) Dropped() int { return t.dropped }

// Rows returns the held rows in chronological order (a fresh slice).
func (t *TimeSeries) Rows() []Row {
	out := make([]Row, t.n)
	for i := 0; i < t.n; i++ {
		j := t.start + i
		if j >= len(t.rows) {
			j -= len(t.rows)
		}
		out[i] = t.rows[j]
	}
	return out
}

// WriteCSV emits the held rows with the TimeSeriesSchema header.
func (t *TimeSeries) WriteCSV(w io.Writer) error {
	if err := writeHeader(w, TimeSeriesSchema); err != nil {
		return err
	}
	for _, r := range t.Rows() {
		g := 0
		if r.Gridlocked {
			g = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Step, r.Steps, r.Injected, r.Delivered, r.Unreachable,
			r.Lost, r.TimedOut, r.Retried, r.Failed, r.Recovered,
			r.Moves, r.Stalls, r.InFlight, g); err != nil {
			return err
		}
	}
	return nil
}
