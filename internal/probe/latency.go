package probe

import (
	"fmt"
	"io"

	"ndmesh/internal/stats"
)

// HistSchema lists the CSV columns LatencyHist.WriteCSV emits: the
// closed bucket range [lo, hi], its count, and the cumulative count up
// to and including it.
var HistSchema = []string{"lo", "hi", "count", "cum"}

// LatencyHist records delivered-flight latencies into a log-bucketed
// histogram (stats.LogHistogram): exact below 128 steps, ~1.6% relative
// error above, fixed memory, allocation-free observation. It is the
// full-distribution complement to the exact-sample LatencySummary a
// LoadPoint carries — the summary's numbers stay golden-pinned; this
// adds the whole curve.
type LatencyHist struct {
	h *stats.LogHistogram
}

// NewLatencyHist builds an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{h: stats.NewLogHistogram()}
}

// ObserveLatency implements LatencyObserver.
//
//meshvet:noalloc
func (l *LatencyHist) ObserveLatency(steps int) { l.h.Add(steps) }

// Hist exposes the underlying histogram for queries (Total, Mean,
// Quantile, Max).
func (l *LatencyHist) Hist() *stats.LogHistogram { return l.h }

// WriteCSV emits one row per non-empty bucket in increasing value order.
func (l *LatencyHist) WriteCSV(w io.Writer) error {
	if err := writeHeader(w, HistSchema); err != nil {
		return err
	}
	var cum int64
	var werr error
	l.h.Buckets(func(lo, hi int, count int64) {
		if werr != nil {
			return
		}
		cum += count
		_, werr = fmt.Fprintf(w, "%d,%d,%d,%d\n", lo, hi, count, cum)
	})
	return werr
}
