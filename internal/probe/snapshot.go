package probe

import (
	"sync"

	"ndmesh/internal/engine"
)

// SnapshotState is the JSON shape the /debug/census endpoint serves:
// cumulative totals since the run started plus the gauges from the most
// recent flush.
type SnapshotState struct {
	Step        int  `json:"step"`
	Steps       int  `json:"steps"`
	Injected    int  `json:"injected"`
	Delivered   int  `json:"delivered"`
	Unreachable int  `json:"unreachable"`
	Lost        int  `json:"lost"`
	TimedOut    int  `json:"timed_out"`
	Retried     int  `json:"retried"`
	Failed      int  `json:"failed"`
	Recovered   int  `json:"recovered"`
	Moves       int  `json:"moves"`
	Stalls      int  `json:"stalls"`
	InFlight    int  `json:"in_flight"`
	Gridlocked  bool `json:"gridlocked"`
}

// Snapshot keeps a live, mutex-guarded census rollup for introspection
// endpoints. The run thread updates it on every flush (a mutex hit, no
// allocation); HTTP handlers read it concurrently with State.
type Snapshot struct {
	mu sync.Mutex
	s  SnapshotState
}

// ObserveStep implements engine.Probe: counters accumulate, gauges take
// the latest value.
//
//meshvet:noalloc
func (sn *Snapshot) ObserveStep(c engine.StepCensus) {
	sn.mu.Lock()
	sn.s.Step = c.Step
	sn.s.Steps += c.Steps
	sn.s.Injected += c.Injected
	sn.s.Delivered += c.Delivered
	sn.s.Unreachable += c.Unreachable
	sn.s.Lost += c.Lost
	sn.s.TimedOut += c.TimedOut
	sn.s.Retried += c.Retried
	sn.s.Failed += c.Failed
	sn.s.Recovered += c.Recovered
	sn.s.Moves += c.Moves
	sn.s.Stalls += c.Stalls
	sn.s.InFlight = c.InFlight
	sn.s.Gridlocked = c.Gridlocked
	sn.mu.Unlock()
}

// State returns a copy of the current rollup.
func (sn *Snapshot) State() SnapshotState {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.s
}
