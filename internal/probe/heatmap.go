package probe

import (
	"fmt"
	"io"

	"ndmesh/internal/engine"
)

// HeatmapSchema lists the CSV columns Heatmap.WriteCSV emits. Node
// residency rows carry dir=-1; link stall rows carry the direction index
// (see grid.Dir) and are emitted only where nonzero.
var HeatmapSchema = []string{"kind", "node", "dir", "peak", "total", "mean"}

// Heatmap folds the census's per-node residency and per-directed-link
// stall views into peak and time-integrated fields. All arrays are
// pre-sized at construction, so observation is allocation-free; the
// census views are summed in place and never retained.
type Heatmap struct {
	numNodes, numDirs int

	residentSum  []int64 // per node, integrated over sampled steps
	residentPeak []int32 // per node
	stallSum     []int64 // per directed link (node*numDirs + dir)
	stallPeak    []int32

	samples int // flushes folded in (denominator for means)
}

// NewHeatmap builds accumulators for a mesh of numNodes nodes with
// numDirs directed links per node.
func NewHeatmap(numNodes, numDirs int) *Heatmap {
	return &Heatmap{
		numNodes:     numNodes,
		numDirs:      numDirs,
		residentSum:  make([]int64, numNodes),
		residentPeak: make([]int32, numNodes),
		stallSum:     make([]int64, numNodes*numDirs),
		stallPeak:    make([]int32, numNodes*numDirs),
	}
}

// ObserveStep implements engine.Probe. Under decimation the views sample
// the last covered step, so the integrated fields are decimated sums —
// means stay comparable because samples counts flushes, not steps.
//
//meshvet:noalloc
func (h *Heatmap) ObserveStep(c engine.StepCensus) {
	for n, r := range c.Resident {
		if r == 0 {
			continue
		}
		h.residentSum[n] += int64(r)
		if r > h.residentPeak[n] {
			h.residentPeak[n] = r
		}
	}
	for _, li := range c.LinkStallsDirty {
		s := c.LinkStalls[li]
		if s == 0 {
			continue
		}
		h.stallSum[li] += int64(s)
		if s > h.stallPeak[li] {
			h.stallPeak[li] = s
		}
	}
	h.samples++
}

// Samples returns how many flushes have been folded in.
func (h *Heatmap) Samples() int { return h.samples }

// NumNodes returns the node count the heatmap was sized for.
func (h *Heatmap) NumNodes() int { return h.numNodes }

// NumDirs returns the per-node directed-link count.
func (h *Heatmap) NumDirs() int { return h.numDirs }

// Resident returns (peak, total) residency for node n.
func (h *Heatmap) Resident(n int) (peak int32, total int64) {
	return h.residentPeak[n], h.residentSum[n]
}

// Stall returns (peak, total) gate denials for directed link
// node*NumDirs+dir.
func (h *Heatmap) Stall(link int) (peak int32, total int64) {
	return h.stallPeak[link], h.stallSum[link]
}

// WriteCSV emits one "node" row per node (dir=-1) and one "link" row per
// directed link that ever stalled, with per-sample means.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if err := writeHeader(w, HeatmapSchema); err != nil {
		return err
	}
	div := float64(h.samples)
	if div == 0 {
		div = 1
	}
	for n := 0; n < h.numNodes; n++ {
		if _, err := fmt.Fprintf(w, "node,%d,-1,%d,%d,%.6g\n",
			n, h.residentPeak[n], h.residentSum[n],
			float64(h.residentSum[n])/div); err != nil {
			return err
		}
	}
	for li := 0; li < len(h.stallSum); li++ {
		if h.stallSum[li] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "link,%d,%d,%d,%d,%.6g\n",
			li/h.numDirs, li%h.numDirs, h.stallPeak[li], h.stallSum[li],
			float64(h.stallSum[li])/div); err != nil {
			return err
		}
	}
	return nil
}
