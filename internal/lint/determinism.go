package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the repo's byte-identical-results contract in
// non-test code: all randomness must flow through internal/rng's seeded
// streams, no behavior may depend on wall-clock time, and map iteration —
// whose order Go randomizes per run — may only feed results when the
// iteration is explicitly marked order-insensitive (or sorted) with
// //meshvet:ordered. time.Now/Since calls that are genuinely off the
// result path (progress tickers, debug endpoints) carry
// //meshvet:wallclock with a justification.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand, wall-clock reads, and unannotated range-over-map " +
		"in non-test code (annotate with //meshvet:ordered or //meshvet:wallclock)",
	Run: runDeterminism,
}

// bannedImports are packages whose mere presence breaks the determinism
// contract: their generators seed from global state the trial harness
// cannot replay. internal/rng is the sanctioned source.
var bannedImports = map[string]string{
	"math/rand":    "use internal/rng's explicitly seeded streams",
	"math/rand/v2": "use internal/rng's explicitly seeded streams",
}

// wallClockFuncs are the time package's nondeterministic reads. Formatting
// helpers (time.Duration arithmetic, constants) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is nondeterministic across runs: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkWallClock(n)
			case *ast.RangeStmt:
				pass.checkMapRange(n)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags time.Now and friends unless the call site carries
// //meshvet:wallclock.
func (p *Pass) checkWallClock(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !wallClockFuncs[sel.Sel.Name] {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := p.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return
	}
	if p.Allowed("wallclock", call) {
		return
	}
	p.Reportf(call.Pos(),
		"time.%s reads the wall clock, which breaks replayable trials; derive timing from step counts, or annotate //meshvet:wallclock with a justification if this is off the result path",
		sel.Sel.Name)
}

// checkMapRange flags range statements over map-typed expressions unless
// annotated //meshvet:ordered.
func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Allowed("ordered", rng) {
		return
	}
	p.Reportf(rng.Pos(),
		"map iteration order is randomized per run; sort the keys first (or annotate //meshvet:ordered with why the order cannot reach results)")
}
