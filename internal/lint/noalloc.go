package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the hot-path allocation contract statically: a
// function annotated //meshvet:noalloc must not contain
// obviously-allocating constructs. The runtime Test*AllocFree assertions
// remain the ground truth (escape analysis can both save and doom
// borderline code), but this catches the classes PR 8 hunted by hand —
// at review time, on every path, exercised or not:
//
//   - new(T) and make(...) of any kind
//   - map and slice composite literals, and &T{...} (address-taken
//     literal escapes)
//   - append whose result is not assigned back to the same expression
//     (the pooled self-append x = append(x, ...) is the sanctioned
//     amortized-zero pattern)
//   - fmt.* calls, string concatenation, string<->[]byte conversions
//   - non-empty struct, array, or slice values converted to interfaces
//     (the interface-conversion allocs PR 8 hoisted out of generators)
//   - closures, go statements, and bound method values (each allocates)
//
// Cold paths inside a hot function — a pool miss taking &T{} once —
// carry //meshvet:allow on the construct's line with a justification.
// The check is intraprocedural by design: callees must carry their own
// annotation to be checked (the directive inventory test pins the set).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //meshvet:noalloc must not contain " +
		"obviously-allocating constructs (suppress a deliberate cold-path " +
		"allocation with //meshvet:allow)",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncDirective(fn, "noalloc") {
				continue
			}
			pass.checkNoAlloc(fn)
		}
	}
	return nil
}

// checkNoAlloc walks one annotated function body.
func (p *Pass) checkNoAlloc(fn *ast.FuncDecl) {
	// Appends whose result is assigned back to the identical expression
	// (x = append(x, ...)) are the sanctioned pooled-growth pattern;
	// collect them first so the main walk can skip them. Calls are
	// likewise collected so a bound method value used as a call target is
	// not mistaken for an escaping method value.
	selfAppends := map[*ast.CallExpr]bool{}
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
					continue
				}
				if types.ExprString(n.Lhs[i]) == types.ExprString(call.Args[0]) {
					selfAppends[call] = true
				}
			}
		case *ast.CallExpr:
			calledFuns[n.Fun] = true
		}
		return true
	})

	report := func(n ast.Node, format string, args ...any) {
		if p.Allowed("allow", n) {
			return
		}
		p.Reportf(n.Pos(), format, args...)
	}

	var sig *types.Signature
	if obj, ok := p.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocates in a //meshvet:noalloc function; hoist it to a cached field or a named function")
			return false // the closure's own body is out of contract
		case *ast.GoStmt:
			report(n, "go statement in a //meshvet:noalloc function: a goroutine launch allocates (and schedules nondeterministically)")
		case *ast.CallExpr:
			p.checkNoAllocCall(n, selfAppends, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes to the heap in a //meshvet:noalloc function; recycle from a free list instead")
				}
			}
		case *ast.CompositeLit:
			t := p.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n, "map literal allocates in a //meshvet:noalloc function")
			case *types.Slice:
				report(n, "slice literal allocates in a //meshvet:noalloc function")
			case *types.Struct:
				p.checkStructLitInterfaces(n, report)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypesInfo.TypeOf(n); t != nil && isString(t) {
					report(n, "string concatenation allocates in a //meshvet:noalloc function")
				}
			}
		case *ast.SelectorExpr:
			if calledFuns[ast.Expr(n)] {
				return true
			}
			if sel := p.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.MethodVal {
				report(n, "bound method value allocates a closure in a //meshvet:noalloc function; bind it once outside the hot path (the engine's cached gateFn pattern)")
			}
		case *ast.AssignStmt:
			p.checkAssignInterfaces(n, report)
		case *ast.ValueSpec:
			p.checkValueSpecInterfaces(n, report)
		case *ast.ReturnStmt:
			p.checkReturnInterfaces(n, sig, report)
		}
		return true
	})
}

type reportFn func(n ast.Node, format string, args ...any)

// checkNoAllocCall classifies one call inside a noalloc body.
func (p *Pass) checkNoAllocCall(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report reportFn) {
	// Conversions: T(x).
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		p.checkConversion(call, tv.Type, report)
		return
	}
	switch {
	case p.isBuiltin(call.Fun, "new"):
		report(call, "new(T) allocates in a //meshvet:noalloc function; recycle from a free list instead")
	case p.isBuiltin(call.Fun, "make"):
		report(call, "make allocates in a //meshvet:noalloc function; pre-size the buffer at construction")
	case p.isBuiltin(call.Fun, "append"):
		if !selfAppends[call] {
			report(call, "append whose result is not assigned back to the same slice (x = append(x, ...)) aliases or grows foreign memory in a //meshvet:noalloc function")
		}
	default:
		if p.isPkgCall(call.Fun, "fmt") {
			report(call, "fmt call allocates (formatting, interface boxing) in a //meshvet:noalloc function")
			return
		}
		p.checkCallArgInterfaces(call, report)
	}
}

// checkConversion flags string<->[]byte conversions and explicit
// interface conversions of alloc-class operands.
func (p *Pass) checkConversion(call *ast.CallExpr, target types.Type, report reportFn) {
	if len(call.Args) != 1 {
		return
	}
	argT := p.TypesInfo.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	if isString(target) && isByteSlice(argT) || isByteSlice(target) && isString(argT) {
		report(call, "string<->[]byte conversion copies and allocates in a //meshvet:noalloc function")
		return
	}
	p.checkInterfaceBox(call, target, call.Args[0], report)
}

// checkCallArgInterfaces flags concrete alloc-class arguments passed to
// interface-typed parameters.
func (p *Pass) checkCallArgInterfaces(call *ast.CallExpr, report reportFn) {
	sigT := p.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a ...slice passed through boxes nothing new
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		p.checkInterfaceBox(arg, pt, arg, report)
	}
}

// checkAssignInterfaces flags concrete alloc-class values assigned to
// interface-typed destinations.
func (p *Pass) checkAssignInterfaces(assign *ast.AssignStmt, report reportFn) {
	if assign.Tok == token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		lt := p.TypesInfo.TypeOf(assign.Lhs[i])
		if lt == nil {
			continue
		}
		p.checkInterfaceBox(assign.Rhs[i], lt, assign.Rhs[i], report)
	}
}

// checkValueSpecInterfaces flags var declarations with an explicit
// interface type initialized from alloc-class concretes.
func (p *Pass) checkValueSpecInterfaces(spec *ast.ValueSpec, report reportFn) {
	if spec.Type == nil {
		return
	}
	dt := p.TypesInfo.TypeOf(spec.Type)
	if dt == nil {
		return
	}
	for _, v := range spec.Values {
		p.checkInterfaceBox(v, dt, v, report)
	}
}

// checkReturnInterfaces flags alloc-class concretes returned as
// interface results.
func (p *Pass) checkReturnInterfaces(ret *ast.ReturnStmt, sig *types.Signature, report reportFn) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		p.checkInterfaceBox(res, sig.Results().At(i).Type(), res, report)
	}
}

// checkStructLitInterfaces flags alloc-class concretes boxed into a
// struct literal's interface-typed fields.
func (p *Pass) checkStructLitInterfaces(lit *ast.CompositeLit, report reportFn) {
	st, ok := p.TypesInfo.TypeOf(lit).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					p.checkInterfaceBox(kv.Value, st.Field(j).Type(), kv.Value, report)
					break
				}
			}
		} else if i < st.NumFields() {
			p.checkInterfaceBox(elt, st.Field(i).Type(), elt, report)
		}
	}
}

// checkInterfaceBox reports when a concrete value of an alloc-class type
// (non-empty struct, non-empty array, slice) is converted to an
// interface: the conversion heap-allocates a copy on every execution.
func (p *Pass) checkInterfaceBox(at ast.Node, target types.Type, val ast.Expr, report reportFn) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	vt := p.TypesInfo.TypeOf(val)
	if vt == nil {
		return
	}
	if _, ok := vt.Underlying().(*types.Interface); ok {
		return // interface-to-interface copies the word pair, no box
	}
	if tv, ok := p.TypesInfo.Types[val]; ok && tv.IsNil() {
		return
	}
	switch u := vt.Underlying().(type) {
	case *types.Struct:
		if u.NumFields() > 0 {
			report(at, "converting non-empty struct %s to interface %s allocates on every execution in a //meshvet:noalloc function; hoist the conversion out of the hot path", vt, target)
		}
	case *types.Array:
		if u.Len() > 0 {
			report(at, "converting array %s to interface %s allocates on every execution in a //meshvet:noalloc function", vt, target)
		}
	case *types.Slice:
		report(at, "converting slice %s to interface %s allocates on every execution in a //meshvet:noalloc function", vt, target)
	}
}

// isBuiltin reports whether e names the given predeclared builtin.
func (p *Pass) isBuiltin(e ast.Expr, name string) bool {
	ident, ok := e.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	_, ok = p.TypesInfo.Uses[ident].(*types.Builtin)
	return ok
}

// isPkgCall reports whether e is a selector on the named imported package.
func (p *Pass) isPkgCall(e ast.Expr, pkg string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[ident].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
