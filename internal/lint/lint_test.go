package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ndmesh/internal/lint"
	"ndmesh/internal/lint/linttest"
)

// The fixture suites: each analyzer's positive cases (including the
// would-have-caught-a-real-bug shapes — the Reset pooling leak and the
// struct-to-interface boxing alloc) and the sanctioned/annotated
// negatives, which must produce no findings.

func TestDeterminismFixtures(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/src", "determinism")
}

func TestResetCompleteFixtures(t *testing.T) {
	linttest.Run(t, lint.ResetComplete, "testdata/src", "resetcomplete")
}

func TestNoAllocFixtures(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, "testdata/src", "noalloc")
}

func TestProbeReadOnlyFixtures(t *testing.T) {
	linttest.Run(t, lint.ProbeReadOnly, "testdata/src",
		"probereadonly/engine", "probereadonly/probe", "probereadonly/impl")
}

// TestRepoMeshvetClean runs the whole suite over the module — the same
// gate CI applies through `go vet -vettool` — so `go test ./...` alone
// enforces the contracts.
func TestRepoMeshvetClean(t *testing.T) {
	pkgs, err := lint.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestNoAllocInventoryMatchesRuntimeTests pins the two halves of the
// hot-path contract to each other: the set of //meshvet:noalloc
// directives in the source must equal the union of lint.AllocTestCoverage,
// every test named there must exist, and every Test*AllocFree test in the
// repo must appear as a key.
func TestNoAllocInventoryMatchesRuntimeTests(t *testing.T) {
	directives, err := lint.NoAllocDirectives("../..")
	if err != nil {
		t.Fatal(err)
	}
	directiveSet := map[string]bool{}
	for _, d := range directives {
		directiveSet[d] = true
	}

	covered := map[string]string{} // function -> covering test
	for test, fns := range lint.AllocTestCoverage {
		for _, fn := range fns {
			if prev, dup := covered[fn]; dup {
				t.Errorf("%s is claimed by both %s and %s; attribute it once", fn, prev, test)
			}
			covered[fn] = test
		}
	}

	for _, d := range directives {
		if _, ok := covered[d]; !ok {
			t.Errorf("//meshvet:noalloc on %s has no runtime alloc assertion in lint.AllocTestCoverage", d)
		}
	}
	for fn, test := range covered {
		if !directiveSet[fn] {
			t.Errorf("lint.AllocTestCoverage[%s] lists %s, which carries no //meshvet:noalloc directive", test, fn)
		}
	}

	allocTests := scanAllocFreeTests(t, "../..")
	for test := range lint.AllocTestCoverage {
		if !allocTests[test] {
			t.Errorf("lint.AllocTestCoverage names %s, but no _test.go declares it", test)
		}
	}
	sorted := make([]string, 0, len(allocTests))
	for test := range allocTests {
		sorted = append(sorted, test)
	}
	sort.Strings(sorted)
	for _, test := range sorted {
		if _, ok := lint.AllocTestCoverage[test]; !ok {
			t.Errorf("runtime alloc assertion %s is missing from lint.AllocTestCoverage", test)
		}
	}
}

var allocTestRe = regexp.MustCompile(`func (Test\w*AllocFree)\(`)

// scanAllocFreeTests walks the module for Test*AllocFree declarations.
func scanAllocFreeTests(t *testing.T, root string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range allocTestRe.FindAllSubmatch(data, -1) {
			out[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
