// Package linttest runs meshvet analyzers over fixture packages and
// checks their findings against inline expectations, mirroring x/tools'
// analysistest on the standard library only. A fixture file marks each
// expected finding with a trailing comment on the offending line:
//
//	e.Reset() // want `probe scope calls engine mutator Reset`
//
// Every `want` pattern (a Go regexp in a quoted or backquoted string)
// must be matched by a diagnostic reported on that line, and every
// diagnostic must be covered by a pattern — unexpected findings fail the
// test too, which is what makes the negative fixtures (annotated or
// legitimately clean code) meaningful.
//
// Fixture packages live under testdata/src/<path>; they may import each
// other by those paths (pass dependencies first) and the standard
// library, which is resolved through `go list -export` like the main
// loader.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ndmesh/internal/lint"
)

// wantRe extracts the quoted patterns of a `// want` comment.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the fixture packages under srcRoot (in the given order —
// list dependencies before their importers) with one analyzer and
// compares findings against the fixtures' `// want` comments.
func Run(t *testing.T, a *lint.Analyzer, srcRoot string, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type fixturePkg struct {
		path  string
		files []*ast.File
	}
	var fixtures []*fixturePkg
	fixtureSet := map[string]bool{}
	stdSet := map[string]bool{}
	for _, path := range pkgPaths {
		fixtureSet[path] = true
	}
	for _, path := range pkgPaths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		fp := &fixturePkg{path: path}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			fp.files = append(fp.files, f)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil && !fixtureSet[p] {
					stdSet[p] = true
				}
			}
		}
		if len(fp.files) == 0 {
			t.Fatalf("fixture package %s has no Go files", path)
		}
		fixtures = append(fixtures, fp)
	}

	exportFiles, err := stdExports(stdSet)
	if err != nil {
		t.Fatalf("resolving standard-library imports: %v", err)
	}
	checked := map[string]*types.Package{}
	std := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return std.Import(path)
	})

	var loaded []*lint.LoadedPackage
	for _, fp := range fixtures {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		pkg, err := conf.Check(fp.path, fset, fp.files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", fp.path, err)
		}
		checked[fp.path] = pkg
		loaded = append(loaded, &lint.LoadedPackage{
			ImportPath: fp.path,
			Fset:       fset,
			Files:      fp.files,
			Pkg:        pkg,
			Info:       info,
		})
	}

	diags, err := lint.RunAnalyzers(loaded, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var expects []*expectation
	for _, lp := range loaded {
		for _, f := range lp.Files {
			expects = append(expects, parseWants(t, fset, f)...)
		}
	}

	for _, d := range diags {
		covered := false
		for _, e := range expects {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.pattern.MatchString(d.Message) {
				e.matched = true
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected a %s finding matching %q, got none",
				e.file, e.line, a.Name, e.pattern)
		}
	}
}

// parseWants extracts the `// want` expectations of one fixture file.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, lit := range wantRe.FindAllString(rest, -1) {
				s, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
				}
				re, err := regexp.Compile(s)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out
}

// stdExports maps the needed standard-library import paths (and their
// dependencies) to export-data files via one `go list -export` run.
func stdExports(paths map[string]bool) (map[string]string, error) {
	out := map[string]string{}
	if len(paths) == 0 {
		return out, nil
	}
	sorted := make([]string, 0, len(paths))
	//meshvet:ordered keys are sorted before use
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	pkgs, err := lint.ListExports(sorted)
	if err != nil {
		return nil, err
	}
	//meshvet:ordered map-to-map copy, order-insensitive
	for path, file := range pkgs {
		out[path] = file
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
