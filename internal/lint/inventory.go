package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// AllocTestCoverage is the contract between the static and runtime halves
// of the hot-path allocation story: it maps every runtime alloc-assertion
// test (Test*AllocFree, using testing.AllocsPerRun) to the
// //meshvet:noalloc-annotated functions its hot loop exercises. The
// inventory test asserts this map stays one-for-one with reality in both
// directions — every directive is runtime-asserted by a named test, and
// every alloc-assertion test in the repo appears here — so a new
// annotation without a runtime assertion (or the reverse) fails the
// build, not a review.
var AllocTestCoverage = map[string][]string{
	// The serial contention step: arbitration, gating, the Limited decide
	// path, commit/traversal, harvest, and the census fold-in. Advance is
	// a pure delegate to AdvanceGated and is covered through it.
	"TestContentionStepAllocFree": {
		"ndmesh/internal/engine.Engine.Step",
		"ndmesh/internal/engine.Engine.DetachDone",
		"ndmesh/internal/engine.Engine.gate",
		"ndmesh/internal/engine.contention.deny",
		"ndmesh/internal/engine.StepCensus.observeTerminal",
		"ndmesh/internal/route.Advance",
		"ndmesh/internal/route.AdvanceGated",
		"ndmesh/internal/route.commitDecision",
		"ndmesh/internal/route.Message.applyMove",
		"ndmesh/internal/route.Message.applyBacktrack",
		"ndmesh/internal/route.Limited.Decide",
		"ndmesh/internal/route.classifyLimited",
	},
	// The load-adaptive decide path.
	"TestCongestedStepAllocFree": {
		"ndmesh/internal/route.Congested.Decide",
	},
	// The sharded step's parallel propose phase, the pre-decided commit,
	// and the Blind decide path (its router fleet mixes Limited and Blind).
	"TestShardedStepAllocFree": {
		"ndmesh/internal/engine.Engine.propose",
		"ndmesh/internal/engine.Engine.proposeShard",
		"ndmesh/internal/route.AdvanceDecided",
		"ndmesh/internal/route.Blind.Decide",
	},
	// Flight timeouts ride on DOR head-on collisions.
	"TestTimeoutStepAllocFree": {
		"ndmesh/internal/route.DOR.Decide",
	},
	// A full fault/recovery schedule applied through reused trials.
	"TestFaultProcessStepAllocFree": {
		"ndmesh/internal/engine.Engine.applyEvent",
	},
	// The closed-loop emit/release cycle.
	"TestClosedLoopStepAllocFree": {
		"ndmesh/internal/traffic.ClosedLoop.Step",
		"ndmesh/internal/traffic.ClosedLoop.Release",
	},
	// The timeout-retry escape cycle and its census note.
	"TestEscapeClosedLoopStepAllocFree": {
		"ndmesh/internal/traffic.ClosedLoop.Timeout",
		"ndmesh/internal/engine.Engine.NoteRetried",
	},
	// The probe fan-out: census flush plus every observer's fold.
	"TestProbedStepAllocFree": {
		"ndmesh/internal/engine.Engine.FlushCensus",
		"ndmesh/internal/probe.Set.ObserveStep",
		"ndmesh/internal/probe.Set.ObserveLatency",
		"ndmesh/internal/probe.TimeSeries.ObserveStep",
		"ndmesh/internal/probe.Heatmap.ObserveStep",
		"ndmesh/internal/probe.LatencyHist.ObserveLatency",
		"ndmesh/internal/probe.Snapshot.ObserveStep",
	},
	// The open-loop emit path.
	"TestGeneratorStepAllocFree": {
		"ndmesh/internal/traffic.Generator.Step",
	},
	// The latency histogram's hot Add.
	"TestLogHistAddAllocFree": {
		"ndmesh/internal/stats.LogHistogram.Add",
	},
}

// NoAllocDirectives scans the module rooted at dir and returns the sorted
// fully-qualified names ("pkgpath.Recv.Func" or "pkgpath.Func") of every
// function annotated //meshvet:noalloc in non-test code.
func NoAllocDirectives(dir string) ([]string, error) {
	cmd := exec.Command("go", "list", "-json=Dir,ImportPath,GoFiles", "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var names []string
	fset := token.NewFileSet()
	dec := json.NewDecoder(&stdout)
	for {
		var p struct {
			Dir        string
			ImportPath string
			GoFiles    []string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !FuncDirective(fn, "noalloc") {
					continue
				}
				qual := p.ImportPath + "."
				if recv := recvTypeString(fn); recv != "" {
					qual += recv + "."
				}
				names = append(names, qual+fn.Name.Name)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// recvTypeString returns the receiver's base type name from the AST, or
// "" for a plain function.
func recvTypeString(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
