// Package determinism exercises the determinism analyzer: banned rng
// imports, wall-clock reads, and map iteration, in both violating and
// sanctioned forms.
package determinism

import (
	"math/rand" // want `import of math/rand is nondeterministic across runs`
	"sort"
	"time"
)

// globalSeed is the classic violation: results depend on rng state the
// trial harness cannot replay.
func globalSeed() int { return rand.Int() }

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// progressTick is off the result path and says so.
func progressTick() time.Time {
	//meshvet:wallclock progress reporting only, never reaches results
	return time.Now()
}

// sumCounts folds map values in iteration order — randomized per run.
func sumCounts(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order is randomized per run`
		out = append(out, v)
	}
	return out
}

// sortedKeys is the sanctioned pattern: collect, sort, then use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//meshvet:ordered keys are sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// duration arithmetic and constants stay legal: only clock reads are
// nondeterministic.
func legalTime(d time.Duration) time.Duration { return d + time.Second }
