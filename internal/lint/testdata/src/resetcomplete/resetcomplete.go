// Package resetcomplete exercises the resetcomplete analyzer. Leaky is
// the would-have-caught-a-real-bug case: the exact PR-8 shape where a
// pooled object's Reset forgets an accumulator field and state bleeds
// from one recycled trial into the next.
package resetcomplete

// Leaky forgets its drops accumulator on Reset.
type Leaky struct {
	events []int
	drops  int
	sizing int //meshvet:keep capacity hint, deliberately survives reset
}

func (l *Leaky) Reset() { // want `Reset leaves Leaky\.drops untouched`
	l.events = l.events[:0]
}

// Wholesale rewrites the whole receiver: every field is accounted for.
type Wholesale struct {
	a, b int
	c    []int
}

func (w *Wholesale) Reset() { *w = Wholesale{} }

// Delegating resets one field through a same-receiver helper — the
// analyzer follows the call.
type Delegating struct {
	ring []int
	head int
}

func (d *Delegating) Reset() {
	d.clearRing()
	d.head = 0
}

func (d *Delegating) clearRing() { d.ring = d.ring[:0] }

// Exhaustive touches every field directly.
type Exhaustive struct {
	n     int
	items map[int]bool
}

func (e *Exhaustive) Reset() {
	e.n = 0
	clear(e.items)
}
