// Package noalloc exercises the noalloc analyzer. boxCensus is the
// would-have-caught-a-real-bug case: the non-empty-struct-to-interface
// conversion that PR 8 hunted out of the telemetry hot path by hand —
// one heap allocation per step, invisible in the source until a profile
// (or this analyzer) points at it.
package noalloc

import "fmt"

type census struct{ arrived, dropped int }

type observer interface{ observe(v any) }

//meshvet:noalloc
func boxCensus(o observer, c census) {
	o.observe(c) // want `converting non-empty struct noalloc\.census to interface`
}

// tag is zero-size: converting it to an interface costs nothing.
type tag struct{}

//meshvet:noalloc
func boxEmpty(o observer) {
	o.observe(tag{})
}

//meshvet:noalloc
func hotNew() *int {
	return new(int) // want `new\(T\) allocates`
}

//meshvet:noalloc
func hotMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//meshvet:noalloc
func hotLiterals() {
	m := map[int]int{} // want `map literal allocates`
	_ = m
	s := []int{1, 2} // want `slice literal allocates`
	_ = s
}

// selfAppend is the sanctioned pooled-growth pattern; foreignAppend
// grows memory it does not own.
//
//meshvet:noalloc
func appends(buf []int, v int) []int {
	buf = append(buf, v)
	grown := append(buf[:len(buf):len(buf)], v) // want `append whose result is not assigned back`
	return grown
}

//meshvet:noalloc
func hotFmt(n int) {
	fmt.Println(n) // want `fmt call allocates`
}

//meshvet:noalloc
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//meshvet:noalloc
func hotBytes(s string) []byte {
	return []byte(s) // want `string<->\[\]byte conversion copies`
}

//meshvet:noalloc
func hotClosure() func() int {
	n := 0
	return func() int { n++; return n } // want `closure allocates`
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

//meshvet:noalloc
func hotMethodValue(c *counter) func() {
	return c.inc // want `bound method value allocates`
}

// Calling the method directly is fine — no closure is materialized.
//
//meshvet:noalloc
func hotMethodCall(c *counter) {
	c.inc()
}

//meshvet:noalloc
func hotGo(c *counter) {
	go c.inc() // want `go statement`
}

// coldMiss shows the sanctioned escape hatch: a pool miss allocates once
// to warm the free list.
//
//meshvet:noalloc
func coldMiss(pool []*census) *census {
	if n := len(pool); n > 0 {
		return pool[n-1]
	}
	//meshvet:allow free-list miss, steady state reuses
	return &census{}
}

// unannotated functions allocate freely — the contract is opt-in.
func coldPath() *census { return &census{} }
