// Package impl holds a Probe implementation outside the probe package:
// only its observation methods (the engine.Probe method set) are in
// probereadonly scope; harness methods may drive the engine.
package impl

import "probereadonly/engine"

// Meddler observes steps but also reaches for a mutator.
type Meddler struct{ steps int }

// ObserveStep is in scope: it may read but not steer.
func (m *Meddler) ObserveStep(e *engine.Engine) {
	m.steps = e.StepCount()
	e.ClearFlights() // want `probe scope calls engine mutator ClearFlights`
}

// Drive is not an observation method: harness code may mutate freely.
func (m *Meddler) Drive(e *engine.Engine) {
	e.Step()
	e.Reset()
}
