// Package engine is a miniature of ndmesh/internal/engine for the
// probereadonly fixtures: same type name, same import-path suffix, a mix
// of mutators and read-only accessors.
package engine

// Engine is the fixture stand-in for the real engine.
type Engine struct {
	step    int
	flights int
}

// Step advances the simulation (mutator).
func (e *Engine) Step() { e.step++; e.flights-- }

// Reset rewinds the engine (mutator).
func (e *Engine) Reset() { e.step = 0; e.flights = 0 }

// ClearFlights retires the flight population (mutator).
func (e *Engine) ClearFlights() { e.flights = 0 }

// StepCount returns the current step (read-only).
func (e *Engine) StepCount() int { return e.step }

// Flights returns the active flight count (read-only).
func (e *Engine) Flights() int { return e.flights }
