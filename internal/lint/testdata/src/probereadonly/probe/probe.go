// Package probe puts every function of a "/probe"-suffixed package in
// probereadonly scope: plain functions, not just observation methods.
package probe

import "probereadonly/engine"

// Census is a fixture accumulator.
type Census struct{ Steps, Flights int }

// Fold reads engine state (fine) and then steers it (finding).
func Fold(e *engine.Engine, c *Census) {
	c.Steps = e.StepCount()
	c.Flights += e.Flights()
	e.Reset() // want `probe scope calls engine mutator Reset`
}

// Drain drives the engine from inside the probe layer.
func Drain(e *engine.Engine) {
	for e.Flights() > 0 {
		e.Step() // want `probe scope calls engine mutator Step`
	}
}
