package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ProbeReadOnly pins the "observation is off the decision path" contract:
// the probe layer consumes StepCensus values the engine pushes; it never
// steers the run. Concretely, inside internal/probe (any package whose
// import path ends in "/probe") and inside any Probe-shaped observation
// method (ObserveStep/ObserveLatency, the engine.Probe method set) in any
// package, a call to a method on the engine's Engine type must be on the
// read-only allowlist below. The check is default-deny: a future engine
// mutator is rejected here without a meshvet release, while a future
// accessor needs one line added to engineReadOnly — the safe failure mode.
var ProbeReadOnly = &Analyzer{
	Name: "probereadonly",
	Doc: "the probe layer and Probe observation methods may only call the " +
		"engine's read-only accessors: observation must not steer the run",
	Run: runProbeReadOnly,
}

// engineReadOnly is the allowlist of Engine methods that observe without
// mutating. Everything else (Step, Inject, Reset, ClearFlights, SetShards,
// SetProbe, DetachDone, FinalizeEvents, Run, ...) is denied in probe scope.
var engineReadOnly = map[string]bool{
	"StepCount":         true,
	"ContentionEnabled": true,
	"Resident":          true,
	"LinkPending":       true,
	"Admit":             true,
	"Gridlocked":        true,
	"GridlockStep":      true,
	"GridlockRecovery":  true,
	"Flights":           true,
	"Done":              true,
	"Shards":            true,
	"ResidencyCensus":   true,
}

// probeMethodNames is the engine.Probe observation method set (plus the
// latency extension the probe registry feeds); a method with one of these
// names is in probereadonly scope wherever it is declared.
var probeMethodNames = map[string]bool{
	"ObserveStep":    true,
	"ObserveLatency": true,
}

func runProbeReadOnly(pass *Pass) error {
	inProbePkg := pass.Pkg != nil &&
		(strings.HasSuffix(pass.Pkg.Path(), "/probe") || pass.Pkg.Path() == "probe")
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inProbePkg || (fn.Recv != nil && probeMethodNames[fn.Name.Name]) {
				pass.checkProbeCalls(fn)
			}
		}
	}
	return nil
}

// checkProbeCalls walks one in-scope function for Engine method calls off
// the read-only allowlist.
func (p *Pass) checkProbeCalls(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := p.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return true
		}
		if !isEngineType(selection.Recv()) || engineReadOnly[sel.Sel.Name] {
			return true
		}
		p.Reportf(call.Pos(),
			"probe scope calls engine mutator %s: observation must stay off the decision path (read-only accessors: Flights, Resident, StepCount, ...)",
			sel.Sel.Name)
		return true
	})
}

// isEngineType reports whether t is (a pointer to) the engine package's
// Engine type, matched structurally by package-path suffix so the fixture
// packages exercise the same code path as ndmesh/internal/engine.
func isEngineType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Engine" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return strings.HasSuffix(path, "/engine") || path == "engine"
}
