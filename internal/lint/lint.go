// Package lint is meshvet: a suite of static analyzers that enforce, at
// `go vet` time, the three contracts the repo's results rest on — the
// determinism contract (byte-identical results at every worker/shard
// count), the 0 allocs/op hot-path contract, and the Reset-based pooling
// contract — plus the probe layer's "observation is off the decision
// path" rule. The runtime tests (alloc assertions, determinism matrices,
// reset-equivalence) catch violations late and only on exercised paths;
// these analyzers catch the obvious violation classes on every path at
// compile time.
//
// The four analyzers (see their files for the precise rules):
//
//   - determinism: forbids math/rand, wall-clock reads and unannotated
//     range-over-map in non-test code.
//   - resetcomplete: a struct with a Reset method must account for every
//     field in its Reset body (directly or through same-receiver helper
//     methods) — the static form of the reset-equivalence tests.
//   - noalloc: functions annotated //meshvet:noalloc must not contain
//     obviously-allocating constructs.
//   - probereadonly: the probe layer and every engine.Probe
//     implementation may only call the engine's read-only methods.
//
// Escape hatches are explicit annotations, one per rule, each carrying a
// justification in the rest of the comment line (docs/LINTING.md is the
// directive reference):
//
//	//meshvet:ordered    — this map range is sorted or order-insensitive
//	//meshvet:wallclock  — this time.Now/Since is off the result path
//	//meshvet:keep       — this field deliberately survives Reset
//	//meshvet:noalloc    — this function joins the hot-path contract
//	//meshvet:allow      — suppress any finding on the next line
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer/Pass/Diagnostic) but is built
// on the standard library only, so the module keeps its zero-dependency
// property; cmd/meshvet runs the suite standalone or as a `go vet
// -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools go/analysis shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph description the CLI prints.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives each finding.
	Report func(Diagnostic)

	directives map[string]map[int][]Directive // filename -> line -> directives
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is one //meshvet:<verb> comment; Args is the rest of the
// comment line (the human justification).
type Directive struct {
	Verb string
	Args string
	Pos  token.Position
}

// directivePrefix introduces every meshvet annotation.
const directivePrefix = "//meshvet:"

// ParseDirectives extracts the //meshvet: directives of a file, keyed by
// line. Exposed for the directive-inventory cross-check test.
func ParseDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := text[len(directivePrefix):]
			verb := rest
			args := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			pos := fset.Position(c.Pos())
			out[pos.Line] = append(out[pos.Line], Directive{Verb: verb, Args: args, Pos: pos})
		}
	}
	return out
}

// directivesFor returns the line-indexed directives of the file holding
// pos, building the per-file index lazily.
func (p *Pass) directivesFor(pos token.Pos) map[int][]Directive {
	filename := p.Fset.Position(pos).Filename
	if p.directives == nil {
		p.directives = make(map[string]map[int][]Directive)
	}
	if d, ok := p.directives[filename]; ok {
		return d
	}
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == filename {
			d := ParseDirectives(p.Fset, f)
			p.directives[filename] = d
			return d
		}
	}
	p.directives[filename] = nil
	return nil
}

// Allowed reports whether node carries the given directive verb: on its
// own line, or on the line immediately above the node's start (the
// conventional spot for an annotation comment).
func (p *Pass) Allowed(verb string, node ast.Node) bool {
	dirs := p.directivesFor(node.Pos())
	if len(dirs) == 0 {
		return false
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, d := range dirs[line] {
		if d.Verb == verb {
			return true
		}
	}
	for _, d := range dirs[line-1] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// FuncDirective reports whether fn's doc comment carries the directive
// verb. (A directive on the line above the func keyword is part of the
// doc comment group, so this covers undocumented functions too.)
func FuncDirective(fn *ast.FuncDecl, verb string) bool {
	want := directivePrefix + verb
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				return true
			}
		}
	}
	return false
}

// All returns the full meshvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ResetComplete, NoAlloc, ProbeReadOnly}
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// stable order every front end (CLI, vettool, tests) prints in.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// isTestFile reports whether the file position is in a _test.go file —
// every analyzer skips those (the contracts bind shipped code; tests
// allocate and randomize freely).
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
