package lint

import (
	"go/ast"
	"go/types"
)

// ResetComplete is the static form of the reset-equivalence tests: every
// struct with a Reset method participates in the trial-recycling pooling
// contract, and a field its Reset forgets is exactly the PR-8 class of
// pooling leak — state from one trial bleeding into the next. The
// analyzer requires Reset (directly, or through helper methods called on
// the same receiver) to reference every field of the struct; fields that
// deliberately survive a Reset (pooled scratch, sizing, shared
// configuration) carry //meshvet:keep with a justification.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc: "a struct's Reset method must reference every field (or the field " +
		"must carry //meshvet:keep): an untouched field is a pooling leak",
	Run: runResetComplete,
}

func runResetComplete(pass *Pass) error {
	methods := collectMethods(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Reset" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			pass.checkReset(fn, methods)
		}
	}
	return nil
}

// methodKey addresses a method declaration by its receiver's named type
// and name.
type methodKey struct {
	recv *types.TypeName
	name string
}

// collectMethods indexes every method declaration of the package (test
// files excluded) so checkReset can follow same-receiver helper calls.
func collectMethods(pass *Pass) map[methodKey]*ast.FuncDecl {
	out := make(map[methodKey]*ast.FuncDecl)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if tn := recvTypeName(pass, fn); tn != nil {
				out[methodKey{tn, fn.Name.Name}] = fn
			}
		}
	}
	return out
}

// recvTypeName resolves a method's receiver base type to its *types.TypeName.
func recvTypeName(pass *Pass, fn *ast.FuncDecl) *types.TypeName {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkReset verifies one Reset method accounts for every field of its
// receiver struct.
func (p *Pass) checkReset(fn *ast.FuncDecl, methods map[methodKey]*ast.FuncDecl) {
	tn := recvTypeName(p, fn)
	if tn == nil {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}

	referenced := make([]bool, st.NumFields())
	// Walk Reset and, transitively, every same-receiver method it calls:
	// a Reset that delegates to clear() helpers still accounts for the
	// fields those helpers touch.
	visited := map[methodKey]bool{}
	queue := []*ast.FuncDecl{fn}
	visited[methodKey{tn, fn.Name.Name}] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		recvObj := recvVar(p, cur)
		ast.Inspect(cur.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				ident, ok := n.X.(*ast.Ident)
				if !ok || recvObj == nil || p.TypesInfo.Uses[ident] != recvObj {
					return true
				}
				sel := p.TypesInfo.Selections[n]
				if sel == nil {
					return true
				}
				idx := sel.Index()
				switch sel.Kind() {
				case types.FieldVal:
					referenced[idx[0]] = true
				case types.MethodVal:
					if len(idx) > 1 {
						// A method reached through an embedded field
						// references (and presumably resets) that field.
						referenced[idx[0]] = true
						return true
					}
					m, _ := sel.Obj().(*types.Func)
					if m == nil {
						return true
					}
					key := methodKey{tn, m.Name()}
					if next, ok := methods[key]; ok && !visited[key] {
						visited[key] = true
						queue = append(queue, next)
					}
				}
			case *ast.AssignStmt:
				// *r = T{...} (or any wholesale reassignment through the
				// receiver pointer) rewrites every field.
				for _, lhs := range n.Lhs {
					star, ok := lhs.(*ast.StarExpr)
					if !ok {
						continue
					}
					if ident, ok := star.X.(*ast.Ident); ok && recvObj != nil &&
						p.TypesInfo.Uses[ident] == recvObj {
						for i := range referenced {
							referenced[i] = true
						}
					}
				}
			}
			return true
		})
	}

	fieldDecls := structFieldDecls(p, tn, st)
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if referenced[i] || fld.Name() == "_" {
			continue
		}
		if decl := fieldDecls[i]; decl != nil && p.Allowed("keep", decl) {
			continue
		}
		p.Reportf(fn.Name.Pos(),
			"Reset leaves %s.%s untouched — a pooling leak unless deliberate; reset it or annotate the field //meshvet:keep with why it survives",
			tn.Name(), fld.Name())
	}
}

// recvVar returns the receiver's object, or nil for an unnamed receiver.
func recvVar(p *Pass, fn *ast.FuncDecl) types.Object {
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return p.TypesInfo.Defs[names[0]]
}

// structFieldDecls maps each flattened struct-field index to the AST node
// carrying its name (for //meshvet:keep lookup). Returns nils when the
// struct's declaration is not in this package's files (embedded external
// types cannot be annotated anyway).
func structFieldDecls(p *Pass, tn *types.TypeName, st *types.Struct) []ast.Node {
	out := make([]ast.Node, st.NumFields())
	var astStruct *ast.StructType
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != tn.Name() {
				return true
			}
			if p.TypesInfo.Defs[ts.Name] != tn {
				return true
			}
			if s, ok := ts.Type.(*ast.StructType); ok {
				astStruct = s
			}
			return false
		})
		if astStruct != nil {
			break
		}
	}
	if astStruct == nil {
		return out
	}
	i := 0
	for _, field := range astStruct.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: one flattened slot.
			if i < len(out) {
				out[i] = field
			}
			i++
			continue
		}
		for _, name := range field.Names {
			if i < len(out) {
				out[i] = name
			}
			i++
		}
	}
	return out
}
