package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// LoadedPackage is one parsed, type-checked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader decodes.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadPackages type-checks the packages matching patterns (relative to
// dir), resolving every import — standard library and intra-module alike —
// from compiler export data via `go list -export -deps`. That keeps the
// loader dependency-free and network-free: the go command compiles what
// it must into the build cache and hands back the file paths.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=Dir,ImportPath,Standard,DepOnly,Export,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exportFiles := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			tp := p
			targets = append(targets, &tp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*LoadedPackage
	for _, tp := range targets {
		lp, err := typecheckPackage(fset, imp, tp)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// ListExports maps the named packages and all their dependencies to
// compiler export-data files via one `go list -export -deps` run — the
// import resolution primitive shared with the linttest fixture loader.
func ListExports(patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	out := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// typecheckPackage parses one target package's sources and type-checks
// them against export-data imports.
func typecheckPackage(fset *token.FileSet, imp types.Importer, tp *listPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range tp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(tp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(tp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", tp.ImportPath, err)
	}
	return &LoadedPackage{
		ImportPath: tp.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// RunAnalyzers applies the analyzers to every loaded package and returns
// the findings in stable (file, line, column, analyzer) order.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, lp := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      lp.Fset,
				Files:     lp.Files,
				Pkg:       lp.Pkg,
				TypesInfo: lp.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, lp.ImportPath, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
