package viz

import (
	"strings"
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

func TestRenderStatuses(t *testing.T) {
	m, _ := mesh.NewUniform(2, 5)
	m.FailAt(grid.Coord{2, 2})
	m.SetStatus(m.Shape().Index(grid.Coord{1, 2}), mesh.Disabled)
	m.SetStatus(m.Shape().Index(grid.Coord{3, 2}), mesh.Clean)
	out := Render(m, Options{Source: grid.InvalidNode, Dest: grid.InvalidNode})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
	// +Y up: row y=2 is the middle line (index 2).
	mid := strings.Fields(lines[2])
	if mid[2] != "X" || mid[1] != "#" || mid[3] != "c" || mid[0] != "." {
		t.Fatalf("middle row = %v", mid)
	}
}

func TestRenderInfoGlyph(t *testing.T) {
	m, _ := mesh.NewUniform(2, 5)
	store := info.NewStore(m.NumNodes())
	store.Add(m.Shape().Index(grid.Coord{1, 1}), info.Record{Box: grid.BoxAt(grid.Coord{3, 3})})
	out := Render(m, Options{Store: store, Source: grid.InvalidNode, Dest: grid.InvalidNode})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row := strings.Fields(lines[3]) // y=1
	if row[1] != "o" {
		t.Fatalf("info node glyph = %q", row[1])
	}
}

func TestRenderPathAndEndpoints(t *testing.T) {
	m, _ := mesh.NewUniform(2, 5)
	shape := m.Shape()
	src := shape.Index(grid.Coord{0, 0})
	dst := shape.Index(grid.Coord{2, 0})
	mid := shape.Index(grid.Coord{1, 0})
	out := Render(m, Options{Source: src, Dest: dst, Path: []grid.NodeID{mid}})
	bottom := strings.Fields(strings.Split(strings.TrimSpace(out), "\n")[4])
	if bottom[0] != "S" || bottom[1] != "*" || bottom[2] != "D" {
		t.Fatalf("bottom row = %v", bottom)
	}
}

func TestRender3DSlice(t *testing.T) {
	m, _ := mesh.NewUniform(3, 6)
	for _, c := range []grid.Coord{{2, 2, 3}, {3, 3, 3}} {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	// Slice z=3 shows the faults; slice z=0 does not.
	at3 := Render(m, Options{Fixed: grid.Coord{0, 0, 3}, Source: grid.InvalidNode, Dest: grid.InvalidNode})
	at0 := Render(m, Options{Fixed: grid.Coord{0, 0, 0}, Source: grid.InvalidNode, Dest: grid.InvalidNode})
	if !strings.Contains(at3, "X") {
		t.Fatalf("slice z=3 missing faults:\n%s", at3)
	}
	if strings.Contains(at0, "X") {
		t.Fatalf("slice z=0 shows faults:\n%s", at0)
	}
}

func TestRenderAxisSelection(t *testing.T) {
	m, _ := mesh.NewUniform(3, 4)
	m.FailAt(grid.Coord{1, 0, 2})
	// Render the X-Z plane at y=0: the fault appears at (x=1, z=2).
	out := Render(m, Options{AxisX: 0, AxisY: 2, Fixed: grid.Coord{0, 0, 0},
		Source: grid.InvalidNode, Dest: grid.InvalidNode})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// z=2 is line index 1 (z=3 first).
	row := strings.Fields(lines[1])
	if row[1] != "X" {
		t.Fatalf("fault not in X-Z slice:\n%s", out)
	}
}

// TestRenderHeat pins the intensity map: zero renders as space, any
// nonzero value gets a visible glyph, the maximum gets the ramp's last
// glyph, and rows print highest Y first.
func TestRenderHeat(t *testing.T) {
	shape, err := grid.NewShape(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	field := make([]float64, shape.NumNodes())
	field[shape.Index(grid.Coord{1, 1})] = 10 // center: maximum
	field[shape.Index(grid.Coord{0, 0})] = 0.01
	out := RenderHeat(shape, field, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d, want 3", len(lines))
	}
	// +Y up: y=0 is the last line, y=1 the middle.
	if got := lines[1][2]; got != HeatRamp[len(HeatRamp)-1] {
		t.Fatalf("max glyph = %q, want %q", got, HeatRamp[len(HeatRamp)-1])
	}
	if got := lines[2][0]; got == ' ' {
		t.Fatal("tiny nonzero value rendered as zero")
	}
	if got := lines[0][0]; got != ' ' {
		t.Fatalf("zero value glyph = %q, want space", got)
	}
}

// TestRenderHeatAllZero pins the degenerate normalization: an all-zero
// field must not divide by zero and renders all spaces.
func TestRenderHeatAllZero(t *testing.T) {
	shape, err := grid.NewShape(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHeat(shape, make([]float64, shape.NumNodes()), Options{})
	if strings.TrimRight(strings.ReplaceAll(out, "\n", ""), " ") != "" {
		t.Fatalf("all-zero field rendered %q, want spaces", out)
	}
}
