// Package viz renders ASCII pictures of 2-D meshes and 2-D slices of n-D
// meshes: node statuses, stored fault information, block frames, boundary
// walls, and routing paths. The visualizer backs cmd/faultviz and the
// examples; it is also handy when debugging protocol tests.
package viz

import (
	"strings"

	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// Glyphs used by Render, in increasing precedence.
const (
	GlyphEnabled  = '.'
	GlyphInfo     = 'o' // enabled node holding at least one block record
	GlyphDisabled = '#'
	GlyphClean    = 'c'
	GlyphFaulty   = 'X'
	GlyphPath     = '*'
	GlyphSource   = 'S'
	GlyphDest     = 'D'
)

// Options selects what to draw.
type Options struct {
	// AxisX and AxisY choose the two rendered axes (default 0 and 1).
	AxisX, AxisY int
	// Fixed pins the remaining axes (defaults to 0s); its length must be
	// the mesh dimensionality (the AxisX/AxisY entries are ignored).
	Fixed grid.Coord
	// Store, when non-nil, marks enabled nodes holding records with 'o'.
	Store *info.Store
	// Path, Source, Dest draw a route.
	Path         []grid.NodeID
	Source, Dest grid.NodeID
}

// Render draws the selected slice, one text row per Y coordinate, highest Y
// first (so +Y points up, matching the paper's figures).
func Render(m *mesh.Mesh, opt Options) string {
	shape := m.Shape()
	n := shape.Dims()
	ax, ay := opt.AxisX, opt.AxisY
	if ax == ay {
		ax, ay = 0, min(1, n-1)
	}
	fixed := opt.Fixed
	if len(fixed) != n {
		fixed = make(grid.Coord, n)
	}
	pathSet := make(map[grid.NodeID]struct{}, len(opt.Path))
	for _, id := range opt.Path {
		pathSet[id] = struct{}{}
	}

	var b strings.Builder
	c := fixed.Clone()
	for y := shape.Radix(ay) - 1; y >= 0; y-- {
		for x := 0; x < shape.Radix(ax); x++ {
			c[ax], c[ay] = x, y
			id := shape.Index(c)
			b.WriteByte(byte(glyph(m, opt, pathSet, id)))
			if x < shape.Radix(ax)-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func glyph(m *mesh.Mesh, opt Options, pathSet map[grid.NodeID]struct{}, id grid.NodeID) rune {
	if len(opt.Path) > 0 || opt.Source != opt.Dest {
		switch id {
		case opt.Source:
			return GlyphSource
		case opt.Dest:
			return GlyphDest
		}
	}
	if _, onPath := pathSet[id]; onPath {
		return GlyphPath
	}
	switch m.Status(id) {
	case mesh.Faulty:
		return GlyphFaulty
	case mesh.Disabled:
		return GlyphDisabled
	case mesh.Clean:
		return GlyphClean
	}
	if opt.Store != nil && len(opt.Store.At(id)) > 0 {
		return GlyphInfo
	}
	return GlyphEnabled
}

// HeatRamp is the 10-level intensity ramp RenderHeat draws with, dimmest
// first: a space for zero, '@' for the field maximum.
const HeatRamp = " .:-=+*#%@"

// RenderHeat draws a per-node scalar field (indexed by NodeID, length
// NumNodes) as an ASCII intensity map over the selected 2-D slice of the
// shape, one ramp glyph per node, normalized against the field's global
// maximum (an all-zero field renders all spaces). The AxisX/AxisY/Fixed
// fields of Options select the slice exactly as Render does; the mesh-
// and path-related fields are ignored. Rows print highest Y first, so +Y
// points up, matching Render.
func RenderHeat(shape *grid.Shape, field []float64, opt Options) string {
	n := shape.Dims()
	ax, ay := opt.AxisX, opt.AxisY
	if ax == ay {
		ax, ay = 0, min(1, n-1)
	}
	fixed := opt.Fixed
	if len(fixed) != n {
		fixed = make(grid.Coord, n)
	}
	var max float64
	for _, v := range field {
		if v > max {
			max = v
		}
	}
	ramp := []byte(HeatRamp)
	var b strings.Builder
	c := fixed.Clone()
	for y := shape.Radix(ay) - 1; y >= 0; y-- {
		for x := 0; x < shape.Radix(ax); x++ {
			c[ax], c[ay] = x, y
			id := shape.Index(c)
			g := ramp[0]
			if max > 0 && int(id) < len(field) && field[id] > 0 {
				// Any nonzero value gets at least the first visible glyph;
				// only the maximum reaches the last.
				i := 1 + int(field[id]/max*float64(len(ramp)-2)+0.5)
				if i >= len(ramp) {
					i = len(ramp) - 1
				}
				g = ramp[i]
			}
			b.WriteByte(g)
			if x < shape.Radix(ax)-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
