package boundary

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// fig1Box is the paper's running example block [3:5, 5:6, 3:4].
var fig1Box = grid.NewBox(grid.Coord{3, 5, 3}, grid.Coord{5, 6, 4})

func TestOnWall3D(t *testing.T) {
	cases := []struct {
		c    grid.Coord
		want bool
	}{
		// Figure 3(a): the boundary for S4 (+Y) hangs below the block from
		// the edges of S1: wall nodes have one lateral extreme, y below
		// the shell, others in span.
		{grid.Coord{2, 3, 3}, true},  // x at lo-1, y two below block, z in span
		{grid.Coord{6, 0, 4}, true},  // x at hi+1, y far below, z in span
		{grid.Coord{4, 3, 2}, true},  // z at lo-1, y below, x in span
		{grid.Coord{4, 3, 5}, true},  // z at hi+1, y below, x in span
		{grid.Coord{4, 9, 2}, true},  // wall above the block (+Y beyond)
		{grid.Coord{0, 5, 2}, true},  // wall on -X side: x beyond, z extreme, y in span
		{grid.Coord{4, 3, 3}, false}, // inside the shadow, not a wall
		{grid.Coord{2, 4, 3}, false}, // on the shell (level 2), not a wall
		{grid.Coord{2, 3, 2}, false}, // two lateral extremes
		{grid.Coord{0, 0, 0}, false}, // far corner region
		{grid.Coord{4, 5, 3}, false}, // inside block
		{grid.Coord{2, 3}, false},    // wrong dimensionality
	}
	for _, tc := range cases {
		if got := OnWall(fig1Box, tc.c); got != tc.want {
			t.Errorf("OnWall(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestOnPlacement(t *testing.T) {
	// Shell nodes and wall nodes are placement; shadow interior is not.
	if !OnPlacement(fig1Box, grid.Coord{2, 4, 2}) { // corner
		t.Error("corner not on placement")
	}
	if !OnPlacement(fig1Box, grid.Coord{2, 3, 3}) { // wall
		t.Error("wall not on placement")
	}
	if OnPlacement(fig1Box, grid.Coord{4, 2, 3}) { // shadow interior
		t.Error("shadow interior on placement")
	}
	if OnPlacement(fig1Box, grid.Coord{4, 5, 3}) { // block interior
		t.Error("block interior on placement")
	}
}

func TestPlacementMatchesPredicate(t *testing.T) {
	shape := grid.MustShape(10, 10, 10)
	ids := Placement(shape, fig1Box)
	inPlacement := make(map[grid.NodeID]bool, len(ids))
	for _, id := range ids {
		inPlacement[id] = true
	}
	// Exactly the nodes satisfying OnPlacement, no more, no less.
	for id := 0; id < shape.NumNodes(); id++ {
		c := shape.CoordOf(grid.NodeID(id))
		want := OnPlacement(fig1Box, c)
		if inPlacement[grid.NodeID(id)] != want {
			t.Fatalf("placement mismatch at %v: enumerated=%v predicate=%v",
				c, inPlacement[grid.NodeID(id)], want)
		}
	}
}

func TestInShadow(t *testing.T) {
	cases := []struct {
		c    grid.Coord
		axis int
		neg  bool
		ok   bool
	}{
		{grid.Coord{4, 2, 3}, 1, true, true},   // below the block (-Y shadow)
		{grid.Coord{4, 4, 3}, 1, true, true},   // adjacent slab counts
		{grid.Coord{4, 9, 4}, 1, false, true},  // above (+Y shadow)
		{grid.Coord{1, 5, 3}, 0, true, true},   // -X shadow
		{grid.Coord{4, 5, 8}, 2, false, true},  // +Z shadow
		{grid.Coord{4, 5, 3}, 0, false, false}, // inside block
		{grid.Coord{2, 3, 3}, 0, false, false}, // outside span on two axes
	}
	for _, tc := range cases {
		axis, neg, ok := InShadow(fig1Box, tc.c)
		if ok != tc.ok || (ok && (axis != tc.axis || neg != tc.neg)) {
			t.Errorf("InShadow(%v) = (%d,%v,%v), want (%d,%v,%v)",
				tc.c, axis, neg, ok, tc.axis, tc.neg, tc.ok)
		}
	}
}

func TestTrapped(t *testing.T) {
	// Message in the -Y shadow: trapped iff dest beyond +Y with x,z inside
	// the span.
	if !Trapped(fig1Box, grid.Coord{4, 9, 3}, 1, true) {
		t.Error("dest straight across must be trapped")
	}
	if Trapped(fig1Box, grid.Coord{8, 9, 3}, 1, true) {
		t.Error("dest outside x-span must not be trapped")
	}
	if Trapped(fig1Box, grid.Coord{4, 2, 3}, 1, true) {
		t.Error("dest on the same side must not be trapped")
	}
	if Trapped(fig1Box, grid.Coord{4, 6, 3}, 1, true) {
		t.Error("dest inside the block span on y must not be trapped")
	}
	// +Y shadow: trapped iff dest below the block.
	if !Trapped(fig1Box, grid.Coord{4, 2, 3}, 1, false) {
		t.Error("dest below must trap a +Y shadow message")
	}
}

// stabilized builds a mesh with the Figure 1 faults and full labeling.
func stabilized(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.NewUniform(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []grid.Coord{{3, 5, 4}, {4, 5, 4}, {5, 5, 3}, {3, 6, 3}} {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	return m
}

// TestDepositFloodCoversPlacement: a deposit construction seeded at one
// corner must reach exactly the enabled placement nodes.
func TestDepositFloodCoversPlacement(t *testing.T) {
	m := stabilized(t)
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := m.Shape().Index(grid.Coord{6, 4, 5})
	p.Start(fig1Box, 1, Deposit, []grid.NodeID{corner})
	rounds := 0
	for !p.Quiescent() {
		p.Round()
		rounds++
		if rounds > 500 {
			t.Fatal("flood did not terminate")
		}
	}
	for _, id := range Placement(m.Shape(), fig1Box) {
		if m.Status(id) != mesh.Enabled {
			continue
		}
		if !store.Has(id, fig1Box) {
			t.Fatalf("placement node %v lacks record", m.Shape().CoordOf(id))
		}
	}
	// And nothing outside the placement holds it.
	for id := 0; id < m.NumNodes(); id++ {
		c := m.Shape().CoordOf(grid.NodeID(id))
		if !OnPlacement(fig1Box, c) && store.Has(grid.NodeID(id), fig1Box) {
			t.Fatalf("non-placement node %v holds record", c)
		}
	}
	t.Logf("flood covered placement in %d rounds, %d hops", rounds, p.Hops)
}

// TestCancelRemovesRecords: a cancel construction with a newer epoch clears
// the deposit.
func TestCancelRemovesRecords(t *testing.T) {
	m := stabilized(t)
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := m.Shape().Index(grid.Coord{6, 4, 5})
	p.Start(fig1Box, 1, Deposit, []grid.NodeID{corner})
	for !p.Quiescent() {
		p.Round()
	}
	if store.TotalRecords() == 0 {
		t.Fatal("deposit empty")
	}
	p.Start(fig1Box, 2, Cancel, []grid.NodeID{corner})
	for !p.Quiescent() {
		p.Round()
	}
	if store.TotalRecords() != 0 {
		t.Fatalf("%d records survive cancellation", store.TotalRecords())
	}
}

// TestCancelEpochGuard: a stale cancel (epoch older than the deposit) must
// not erase newer information.
func TestCancelEpochGuard(t *testing.T) {
	m := stabilized(t)
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := m.Shape().Index(grid.Coord{6, 4, 5})
	p.Start(fig1Box, 5, Deposit, []grid.NodeID{corner})
	for !p.Quiescent() {
		p.Round()
	}
	total := store.TotalRecords()
	p.Start(fig1Box, 3, Cancel, []grid.NodeID{corner})
	for !p.Quiescent() {
		p.Round()
	}
	if store.TotalRecords() != total {
		t.Fatalf("stale cancel removed records: %d -> %d", total, store.TotalRecords())
	}
}

// TestMergeFigure3d: when block A's boundary runs into block B, A's record
// must spread over B's adjacent surfaces and boundary (the merge of Figure
// 3(d)). Setup in 2-D: A's wall along -Y from its left edge passes through
// B's frame.
func TestMergeFigure3d(t *testing.T) {
	m, err := mesh.NewUniform(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Block A at [6:7, 8:9]; block B at [5:5, 4:4] sits exactly on A's
	// x=5 wall (lo-1) below A.
	for _, c := range []grid.Coord{{6, 8}, {7, 9}, {5, 4}} {
		m.FailAt(c)
	}
	block.StabilizeFull(m)
	bs := block.Extract(m)
	if len(bs) != 2 {
		t.Fatalf("want 2 blocks, got %+v", bs)
	}
	boxA := grid.NewBox(grid.Coord{6, 8}, grid.Coord{7, 9})
	boxB := grid.NewBox(grid.Coord{5, 4}, grid.Coord{5, 4})

	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	// B's construction runs first (it exists; its records are in place).
	cornerB := m.Shape().Index(grid.Coord{4, 3})
	p.Start(boxB, 1, Deposit, []grid.NodeID{cornerB})
	for !p.Quiescent() {
		p.Round()
	}
	// Now A's construction: its x=5 wall descends into B's placement.
	cornerA := m.Shape().Index(grid.Coord{5, 7})
	p.Start(boxA, 2, Deposit, []grid.NodeID{cornerA})
	for !p.Quiescent() {
		p.Round()
	}
	// A's record must have merged onto B's adjacent surface nodes beyond
	// the original wall (the wall stops at B's frame; the merge carries it
	// around B).
	mergedNodes := []grid.Coord{
		{4, 4}, // B-adjacent, on the far side of B from A's wall
		{5, 3}, // B-adjacent below B
	}
	for _, c := range mergedNodes {
		if !store.Has(m.Shape().Index(c), boxA) {
			t.Errorf("merge did not carry A's record to %v", c)
		}
	}
	// And B's boundary below continues to carry A's record (merged into
	// the boundary for the same surface of the second block).
	if !store.Has(m.Shape().Index(grid.Coord{4, 2}), boxA) {
		t.Errorf("A's record did not descend B's boundary")
	}
}

// TestWallStopsAtMeshBorder: boundary propagation ends at the outermost
// surface (no wraparound, no overflow).
func TestWallStopsAtMeshBorder(t *testing.T) {
	m, _ := mesh.NewUniform(2, 8)
	m.FailAt(grid.Coord{4, 4})
	block.StabilizeFull(m)
	box := grid.BoxAt(grid.Coord{4, 4})
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := m.Shape().Index(grid.Coord{3, 3})
	p.Start(box, 1, Deposit, []grid.NodeID{corner})
	rounds := 0
	for !p.Quiescent() {
		p.Round()
		rounds++
		if rounds > 200 {
			t.Fatal("flood did not stop")
		}
	}
	// Wall x=3 must reach y=0 and y=7 (the borders) and hold records.
	for _, c := range []grid.Coord{{3, 0}, {3, 7}, {5, 0}, {5, 7}, {0, 3}, {7, 5}} {
		if !store.Has(m.Shape().Index(c), box) {
			t.Errorf("border wall node %v lacks record", c)
		}
	}
}

// TestConstructionRoundsTrackDepth: the flood advances one hop per round,
// so rounds scale with shell + wall depth, not with mesh volume.
func TestConstructionRoundsTrackDepth(t *testing.T) {
	m, _ := mesh.NewUniform(2, 20)
	m.FailAt(grid.Coord{10, 10})
	block.StabilizeFull(m)
	box := grid.BoxAt(grid.Coord{10, 10})
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := m.Shape().Index(grid.Coord{9, 9})
	c := p.Start(box, 1, Deposit, []grid.NodeID{corner})
	for !p.Quiescent() {
		p.Round()
	}
	// Longest chain: around the shell (a few hops) then down a wall to the
	// border (about 10 hops); must be well under the mesh diameter * 2.
	if c.Rounds > 2*m.Shape().Diameter() {
		t.Fatalf("flood took %d rounds", c.Rounds)
	}
	if c.Rounds < 9 {
		t.Fatalf("flood too fast to be hop-by-hop: %d rounds", c.Rounds)
	}
}

// TestPlacementMatchesPredicate4D verifies the wall geometry in 4-D, where
// the walls are 3-dimensional regions rather than the rays of the paper's
// 3-D figures.
func TestPlacementMatchesPredicate4D(t *testing.T) {
	shape := grid.MustShape(7, 7, 7, 7)
	box := grid.NewBox(grid.Coord{3, 3, 3, 3}, grid.Coord{4, 4, 3, 3})
	ids := Placement(shape, box)
	inPlacement := make(map[grid.NodeID]bool, len(ids))
	for _, id := range ids {
		inPlacement[id] = true
	}
	for id := 0; id < shape.NumNodes(); id++ {
		c := shape.CoordOf(grid.NodeID(id))
		if inPlacement[grid.NodeID(id)] != OnPlacement(box, c) {
			t.Fatalf("4-D placement mismatch at %v", c)
		}
	}
	// A few hand-computed members: wall on axis 0 (lateral) guarding the
	// -axis1 shadow: x0 = lo0-1 = 2, x1 < lo1-1, x2/x3 in span.
	for _, c := range []grid.Coord{
		{2, 0, 3, 3}, {5, 1, 3, 3}, // axis-0 walls of the axis-1 shadow
		{3, 2, 2, 3}, // axis-2 wall of the axis-1 shadow? x2=2=lo2-1, x1=2<lo1-1? lo1-1=2 -> x1 must be < 2
	} {
		want := OnWall(box, c)
		if !inPlacement[shape.Index(c)] && want {
			t.Fatalf("wall node %v missing from placement", c)
		}
	}
	// The deep diagonal region is never placement.
	if OnPlacement(box, grid.Coord{0, 0, 0, 0}) {
		t.Fatal("diagonal corner region misclassified")
	}
}

// TestFloodCoversPlacement4D runs the flood in 4-D.
func TestFloodCoversPlacement4D(t *testing.T) {
	shape := grid.MustShape(7, 7, 7, 7)
	m := mesh.New(shape)
	m.FailAt(grid.Coord{3, 3, 3, 3})
	m.FailAt(grid.Coord{4, 4, 3, 3})
	block.StabilizeFull(m)
	box := grid.NewBox(grid.Coord{3, 3, 3, 3}, grid.Coord{4, 4, 3, 3})
	store := info.NewStore(m.NumNodes())
	p := NewProtocol(m, store)
	corner := shape.Index(grid.Coord{2, 2, 2, 2})
	p.Start(box, 1, Deposit, []grid.NodeID{corner})
	rounds := 0
	for !p.Quiescent() {
		p.Round()
		rounds++
		if rounds > 2000 {
			t.Fatal("4-D flood did not terminate")
		}
	}
	for _, id := range Placement(shape, box) {
		if m.Status(id) == mesh.Enabled && !store.Has(id, box) {
			t.Fatalf("4-D placement node %v lacks record", shape.CoordOf(id))
		}
	}
}

// TestShellIsSubsetOfPlacement cross-checks frame and boundary geometry.
func TestShellIsSubsetOfPlacement(t *testing.T) {
	frame.EachShellNode(fig1Box, func(c grid.Coord, level int) {
		if !OnPlacement(fig1Box, c) {
			t.Fatalf("shell node %v not on placement", c)
		}
	})
}
