// Package boundary implements the boundary construction of the paper
// (Section 2.2, Section 3, Figure 3): the placement of a faulty block's
// information on the nodes that enclose the block's dangerous areas, the
// hop-by-hop distributed propagation that performs the placement, the merge
// of boundaries that intersect another block (Figure 3(d)), and the
// deletion (cancellation) of out-of-date boundaries after a block changes.
//
// Geometry. For block B with interior box [lo_1:hi_1, ..., lo_n:hi_n] and
// an axis j, the dangerous area ("shadow") on the − side of axis j is
//
//	{ x : x_l ∈ [lo_l:hi_l] for all l ≠ j, x_j < lo_j }.
//
// A message inside this shadow whose destination lies beyond the opposite
// (+j) adjacent surface with projections inside B's span on every other
// axis has no minimal path (the block disconnects all shortest paths). The
// boundary for surface S_{+j} encloses this shadow: it starts at the edges
// of the opposite adjacent surface S_{−j} and propagates in −j — the side
// walls of the shadow:
//
//	{ x : x_i = lo_i−1 or hi_i+1 (one lateral axis i ≠ j),
//	      x_l ∈ [lo_l:hi_l] for all l ∉ {i,j},  x_j < lo_j−1 }.
//
// In 3-D these walls are exactly the straight rays of Figure 3(a-c); in
// higher dimensions they are the (n−1)-dimensional boundary the paper
// refers to, and the propagation is a one-hop-per-round flood constrained
// to the wall region. Wall nodes (and the frame shell nodes, covered by the
// identification protocol's phase 4) hold the block record that Algorithm 3
// consults to demote a preferred direction into a preferred-but-detour
// direction.
package boundary

import (
	"ndmesh/internal/frame"
	"ndmesh/internal/grid"
	"ndmesh/internal/info"
	"ndmesh/internal/mesh"
)

// OnWall reports whether coordinate c lies on one of block b's boundary
// walls: exactly one axis at lo−1/hi+1 (the lateral wall axis), exactly one
// axis strictly beyond the frame shell (the shadow axis), and every other
// axis inside the block span.
func OnWall(b grid.Box, c grid.Coord) bool {
	if len(c) != b.Dims() {
		return false
	}
	extremes, beyond := 0, 0
	for i := range c {
		switch {
		case c[i] == b.Lo[i]-1 || c[i] == b.Hi[i]+1:
			extremes++
		case c[i] < b.Lo[i]-1 || c[i] > b.Hi[i]+1:
			beyond++
		default:
			// inside the span
		}
	}
	return extremes == 1 && beyond == 1
}

// OnPlacement reports whether coordinate c belongs to block b's information
// placement: the frame shell (adjacent nodes, edge nodes, corners) or a
// boundary wall.
func OnPlacement(b grid.Box, c grid.Coord) bool {
	if _, ok := frame.Level(b, c); ok {
		return true
	}
	return OnWall(b, c)
}

// Placement enumerates every mesh node of block b's information placement,
// clipped to the mesh. This is the oracle the distributed protocol is
// verified against and the direct-deposit path used by the global-epoch
// test harness.
func Placement(shape *grid.Shape, b grid.Box) []grid.NodeID {
	seen := make(map[grid.NodeID]struct{})
	var out []grid.NodeID
	add := func(id grid.NodeID) {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	// Frame shell.
	b.Expand(1).EachID(shape, func(id grid.NodeID) {
		if _, ok := frame.Level(b, shape.CoordOf(id)); ok {
			add(id)
		}
	})
	// Walls: for each shadow axis j and side, for each lateral axis i and
	// side, the wall box extends from just beyond the shell to the mesh
	// border.
	n := b.Dims()
	for j := 0; j < n; j++ {
		for _, sigmaNeg := range []bool{true, false} {
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				for _, tauLow := range []bool{true, false} {
					wall := wallBox(shape, b, j, sigmaNeg, i, tauLow)
					if wall == nil {
						continue
					}
					wall.EachID(shape, add)
				}
			}
		}
	}
	return out
}

// wallBox returns the clipped wall box for shadow axis j (side − if
// sigmaNeg) and lateral axis i (side lo−1 if tauLow), or nil if empty.
func wallBox(shape *grid.Shape, b grid.Box, j int, sigmaNeg bool, i int, tauLow bool) *grid.Box {
	lo := b.Lo.Clone()
	hi := b.Hi.Clone()
	if tauLow {
		lo[i], hi[i] = b.Lo[i]-1, b.Lo[i]-1
	} else {
		lo[i], hi[i] = b.Hi[i]+1, b.Hi[i]+1
	}
	if sigmaNeg {
		lo[j], hi[j] = 0, b.Lo[j]-2
	} else {
		lo[j], hi[j] = b.Hi[j]+2, shape.Radix(j)-1
	}
	if lo[j] > hi[j] || lo[i] < 0 || hi[i] >= shape.Radix(i) {
		return nil
	}
	box := grid.Box{Lo: lo, Hi: hi}
	clipped, ok := box.Clip(shape)
	if !ok {
		return nil
	}
	return &clipped
}

// InShadow reports whether coordinate c lies in block b's dangerous area
// along some axis, returning that axis and whether c is on the negative
// side. The adjacent slab (x_j = lo_j−1 / hi_j+1 with all other axes in
// span) counts as part of the shadow: stepping onto it already forfeits
// minimality when the destination is trapped beyond the block.
func InShadow(b grid.Box, c grid.Coord) (axis int, negSide bool, ok bool) {
	if len(c) != b.Dims() {
		return 0, false, false
	}
	outAxis := -1
	for i := range c {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			if outAxis >= 0 {
				return 0, false, false // outside the span on two axes
			}
			outAxis = i
		}
	}
	if outAxis < 0 {
		return 0, false, false // inside the block itself
	}
	return outAxis, c[outAxis] < b.Lo[outAxis], true
}

// Trapped reports whether a destination d is trapped beyond block b for a
// message in the (axis, negSide) shadow: the destination lies beyond the
// opposite adjacent surface and its projection on every other axis falls
// inside the block span — the "no minimal path" condition of Section 2.2.
func Trapped(b grid.Box, d grid.Coord, axis int, negSide bool) bool {
	for l := range d {
		if l == axis {
			continue
		}
		if d[l] < b.Lo[l] || d[l] > b.Hi[l] {
			return false
		}
	}
	if negSide {
		return d[axis] > b.Hi[axis]
	}
	return d[axis] < b.Lo[axis]
}

// Op selects what a construction does at each visited node.
type Op uint8

const (
	// Deposit adds the block record (boundary construction).
	Deposit Op = iota
	// Cancel removes records with the construction's box and an older
	// epoch (deletion of out-of-date boundaries).
	Cancel
)

// Construction is one in-flight boundary flood: a deposit of a freshly
// identified block's record over its placement, or a cancellation of a
// stale record over the old placement. Floods advance one hop per round
// from their seed nodes, constrained to the placement region; when a flood
// reaches a node holding a *different* block's record, the region is
// extended with that block's placement — the boundary merge of Fig. 3(d).
type Construction struct {
	// Box is the subject block (the record deposited or cancelled).
	Box grid.Box
	// Epoch orders this construction against others for the same region.
	Epoch uint32
	// Op is Deposit or Cancel.
	Op Op

	regions []grid.Box // placement bases: Box plus merge extensions
	// frontier/next are the double-buffered flood fronts; roundOne swaps
	// them so a long-lived construction allocates no per-round slice.
	frontier []grid.NodeID
	next     []grid.NodeID
	visited  map[grid.NodeID]struct{}
	// Rounds counts propagation rounds so far (contributes to c_i).
	Rounds int
}

// NewConstruction starts a flood for box over the given seed nodes (which
// are processed in round 1).
func NewConstruction(box grid.Box, epoch uint32, op Op, seeds []grid.NodeID) *Construction {
	c := &Construction{visited: make(map[grid.NodeID]struct{})}
	c.reuse(box, epoch, op, seeds)
	return c
}

// reuse re-initializes a (possibly recycled) construction in place, keeping
// every buffer's capacity: the box copies, the region bases, the frontier
// and the visited map's buckets all reuse prior storage.
func (c *Construction) reuse(box grid.Box, epoch uint32, op Op, seeds []grid.NodeID) {
	c.Box.Set(box)
	c.Epoch = epoch
	c.Op = op
	c.regions = c.regions[:0]
	c.addRegion(box)
	c.frontier = append(c.frontier[:0], seeds...)
	c.next = c.next[:0]
	clear(c.visited)
	c.Rounds = 0
}

// addRegion appends a copy of b to the placement bases, reusing the box
// storage parked in the slice's spare capacity by earlier reuse cycles.
func (c *Construction) addRegion(b grid.Box) {
	if n := len(c.regions); n < cap(c.regions) {
		c.regions = c.regions[:n+1]
		c.regions[n].Set(b)
		return
	}
	c.regions = append(c.regions, b.Clone())
}

// Done reports whether the flood has exhausted its frontier.
func (c *Construction) Done() bool { return len(c.frontier) == 0 }

// inRegion reports whether coordinate cd belongs to any placement base.
func (c *Construction) inRegion(cd grid.Coord) bool {
	for _, b := range c.regions {
		if OnPlacement(b, cd) {
			return true
		}
	}
	return false
}

// extendRegion merges another block's placement into the flood region,
// deduplicating bases.
func (c *Construction) extendRegion(b grid.Box) {
	for _, r := range c.regions {
		if r.Equal(b) {
			return
		}
	}
	c.addRegion(b)
}

// Protocol runs all in-flight boundary constructions, one hop per round.
type Protocol struct {
	m     *mesh.Mesh  //meshvet:keep dependency, not per-trial state
	store *info.Store //meshvet:keep dependency, not per-trial state
	cons  []*Construction
	// spare is the free list of retired constructions; Start reuses them so
	// a fault process cycling blocks through the protocol allocates nothing
	// once warm.
	spare []*Construction
	// scratch/scratchNb are reusable coordinate buffers for roundOne (the
	// visited node and its neighbor under inspection).
	scratch   grid.Coord //meshvet:keep scratch buffer, overwritten before every use
	scratchNb grid.Coord //meshvet:keep scratch buffer, overwritten before every use
	// Hops counts total node visits across constructions (message cost).
	Hops int
}

// NewProtocol builds an empty boundary protocol over m and store.
func NewProtocol(m *mesh.Mesh, store *info.Store) *Protocol {
	return &Protocol{
		m: m, store: store,
		scratch:   make(grid.Coord, m.Shape().Dims()),
		scratchNb: make(grid.Coord, m.Shape().Dims()),
	}
}

// Reset abandons every in-flight construction so the protocol can be reused
// for a new trial; the constructions land on the free list.
func (p *Protocol) Reset() {
	p.spare = append(p.spare, p.cons...)
	p.cons = p.cons[:0]
	p.Hops = 0
}

// Start registers a construction for box seeded at the given nodes.
// Deposits seed from the block's frame (typically its corners and edge
// nodes, which received the record in identification phase 4); cancels
// seed from the node that detected the stale record. The seeds slice is
// copied, not retained.
func (p *Protocol) Start(box grid.Box, epoch uint32, op Op, seeds []grid.NodeID) *Construction {
	var c *Construction
	if n := len(p.spare); n > 0 {
		c = p.spare[n-1]
		p.spare = p.spare[:n-1]
		c.reuse(box, epoch, op, seeds)
	} else {
		c = NewConstruction(box, epoch, op, seeds)
	}
	p.cons = append(p.cons, c)
	return c
}

// Quiescent reports whether no construction is in flight.
func (p *Protocol) Quiescent() bool { return len(p.cons) == 0 }

// Active returns the number of in-flight constructions.
func (p *Protocol) Active() int { return len(p.cons) }

// Round advances every construction one hop and retires the finished ones
// onto the free list. It returns the number of node visits performed (0 at
// quiescence).
func (p *Protocol) Round() int {
	visits := 0
	kept := p.cons[:0]
	for _, c := range p.cons {
		visits += p.roundOne(c)
		if !c.Done() {
			kept = append(kept, c)
		} else {
			p.spare = append(p.spare, c)
		}
	}
	p.cons = kept
	p.Hops += visits
	return visits
}

func (p *Protocol) roundOne(c *Construction) int {
	next := c.next[:0]
	visits := 0
	scratch := p.scratch
	shape := p.m.Shape()
	numDirs := shape.NumDirs()
	for _, id := range c.frontier {
		if _, dup := c.visited[id]; dup {
			continue
		}
		c.visited[id] = struct{}{}
		// Only enabled nodes carry and forward boundary information; a
		// flood reaching a disabled/faulty node stops there (the block in
		// the way is handled by the merge rule below at its adjacent
		// nodes).
		if p.m.Status(id) != mesh.Enabled {
			continue
		}
		visits++
		switch c.Op {
		case Deposit:
			p.store.Add(id, info.Record{Box: c.Box, Epoch: c.Epoch})
		case Cancel:
			p.store.Remove(id, c.Box, c.Epoch)
		}
		// Merge (Fig. 3(d)): when the propagation reaches a node of
		// another block's *frame* — "the first adjacent node of the second
		// block it reaches" — the flood extends across that block's
		// placement, merging into its surfaces and boundary. Merely
		// crossing another block's distant wall is not an intersection
		// with the block and must not merge.
		cd := shape.Coord(id, scratch)
		for _, r := range p.store.At(id) {
			if r.Box.Equal(c.Box) {
				continue
			}
			if _, onFrame := frame.Level(r.Box, cd); onFrame {
				c.extendRegion(r.Box)
			}
		}
		for d := 0; d < numDirs; d++ {
			nb := p.m.Neighbor(id, grid.Dir(d))
			if nb == grid.InvalidNode {
				continue
			}
			if _, dup := c.visited[nb]; dup {
				continue
			}
			// A cancellation also follows the trail of nodes actually
			// holding the record: merged boundaries parked the record on
			// other blocks' placements, and those blocks may be gone by
			// deletion time, so geometry alone cannot retrace the deposit.
			if c.Op == Cancel && p.store.Has(nb, c.Box) {
				next = append(next, nb)
				continue
			}
			nbc := shape.Coord(nb, p.scratchNb)
			if c.inRegion(nbc) {
				next = append(next, nb)
			}
		}
	}
	c.next = c.frontier[:0]
	c.frontier = next
	c.Rounds++
	return visits
}
