package ndmesh

// Telemetry tests at the repository root: the probe layer's two headline
// contracts driven through the real load runner. (1) Attaching a probe
// changes nothing — the LoadPoint is byte-identical to the unprobed run —
// and the telemetry itself is byte-identical at every worker and shard
// count, because the census lives in the engine's always-serial commit.
// (2) The time series resolves the E22 gridlock story in time: the
// in-flight population plateaus and the stall census ramps to the full
// population before the detector fires.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ndmesh/internal/probe"
)

var updateFixtures = flag.Bool("update-fixtures", false, "rewrite checked-in telemetry fixtures")

// probedLoadCell is a small closed-loop cell in the escape regime: finite
// buffers, timeouts, retries and the gridlock detector all fire, so the
// probed/unprobed comparison covers every census source.
func probedLoadCell() LoadOptions {
	return LoadOptions{
		Dims:    []int{6, 6},
		Lambda:  1,
		Router:  "limited",
		Pattern: "uniform",
		Window:  2,
		Warmup:  16, Measure: 96, Drain: 96,
		LinkRate: 1, NodeCapacity: 2,
		FlightTimeout: 12, RetryBackoff: 4,
		GridlockWindow: 6,
		Seed:           42,
	}
}

// runProbed executes the cell with the full recorder set attached and
// returns the LoadPoint plus the three telemetry files as byte slices.
func runProbed(t *testing.T, opt LoadOptions) (string, [3][]byte) {
	t.Helper()
	set := &probe.Set{}
	ts := probe.NewTimeSeries(opt.Warmup + opt.Measure + opt.Drain + 2)
	hm := probe.NewHeatmap(36, 4)
	lh := probe.NewLatencyHist()
	set.AddProbe(ts)
	set.AddProbe(hm)
	set.AddProbe(&probe.Snapshot{})
	set.AddLatency(lh)
	opt.Probe = set
	pt, err := LoadRun(opt)
	if err != nil {
		t.Fatal(err)
	}
	var out [3][]byte
	var b1, b2, b3 bytes.Buffer
	if err := ts.WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := hm.WriteCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if err := lh.WriteCSV(&b3); err != nil {
		t.Fatal(err)
	}
	out[0], out[1], out[2] = b1.Bytes(), b2.Bytes(), b3.Bytes()
	return fmt.Sprintf("%+v", pt), out
}

// TestProbedLoadPointUnchanged pins the read-only contract end to end: the
// same cell run bare and run under the full recorder set produces a
// byte-identical LoadPoint.
func TestProbedLoadPointUnchanged(t *testing.T) {
	bare, err := LoadRun(probedLoadCell())
	if err != nil {
		t.Fatal(err)
	}
	probed, _ := runProbed(t, probedLoadCell())
	if got, want := probed, fmt.Sprintf("%+v", bare); got != want {
		t.Errorf("probed LoadPoint diverged:\n got %s\nwant %s", got, want)
	}
}

// TestProbedTelemetryShardDeterministic extends the byte-identical
// contract to the telemetry itself: the time series, heatmap and latency
// histogram written by a probed run are identical at every intra-step
// shard count (run under -race in CI), because every census field is
// assembled in the always-serial commit phase.
func TestProbedTelemetryShardDeterministic(t *testing.T) {
	basePt, base := runProbed(t, probedLoadCell())
	names := []string{"timeseries", "heatmap", "hist"}
	for _, s := range shardCounts {
		opt := probedLoadCell()
		opt.Shards = s
		pt, got := runProbed(t, opt)
		if pt != basePt {
			t.Errorf("shards=%d: LoadPoint diverged:\n got %s\nwant %s", s, pt, basePt)
		}
		for i := range got {
			if !bytes.Equal(got[i], base[i]) {
				t.Errorf("shards=%d: %s telemetry not byte-identical to serial run", s, names[i])
			}
		}
	}
}

// TestProbedSweepWorkerDeterministic covers the sweep entry points: a
// probed single-cell closed-loop sweep produces identical rows and
// identical telemetry at every worker count, and a probed multi-cell
// sweep is refused (stateful recorders cannot interleave cells).
func TestProbedSweepWorkerDeterministic(t *testing.T) {
	cell := func(workers int) (string, []byte) {
		opt := DefaultClosedLoop()
		opt.Dims = []int{6, 6}
		opt.Patterns = []string{"uniform"}
		opt.Windows = []int{2}
		opt.Warmup, opt.Measure, opt.Drain = 16, 64, 64
		ts := probe.NewTimeSeries(opt.Warmup + opt.Measure + opt.Drain + 2)
		opt.Probe = ts
		rows, err := ClosedLoopSweepWorkers(opt, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ts.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rows), buf.Bytes()
	}
	baseRows, baseTS := cell(1)
	for _, w := range parWorkerCounts {
		rows, ts := cell(w)
		if rows != baseRows {
			t.Errorf("workers=%d: probed sweep rows diverged", w)
		}
		if !bytes.Equal(ts, baseTS) {
			t.Errorf("workers=%d: probed sweep telemetry diverged", w)
		}
	}

	multi := DefaultClosedLoop()
	multi.Probe = probe.NewTimeSeries(8)
	if _, err := ClosedLoopSweep(multi, 1); err == nil {
		t.Error("probed multi-cell sweep was not refused")
	}
}

// TestGridlockTimeSeriesFixture is the E22 observability payoff: on the
// boundary cell that wedges without escape mechanisms, the time series
// shows the collapse developing — the in-flight population plateaus
// (frozen: zero moves, zero deliveries) and the stall census ramps to the
// full standing population — before the detector fires. The rendered CSV
// is pinned byte-for-byte against testdata/e22_gridlock_timeseries.csv
// (regenerate with -update-fixtures in the same commit as a deliberate
// engine change, and say so).
func TestGridlockTimeSeriesFixture(t *testing.T) {
	// The gridlockBoundaryCell scenario under the "none" arm: detection
	// only, no timeout rescue, so the wedge is terminal.
	opt := LoadOptions{
		Dims:    []int{6, 6},
		Lambda:  1,
		Router:  "limited",
		Pattern: "uniform",
		Window:  2,
		Warmup:  32, Measure: 192, Drain: 192,
		LinkRate: 1, NodeCapacity: 4,
		GridlockWindow: 8,
		Seed:           5,
	}
	ts := probe.NewTimeSeries(opt.Warmup + opt.Measure + opt.Drain + 2)
	opt.Probe = ts
	pt, err := LoadRun(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Gridlocked || pt.GridlockStep == 0 {
		t.Fatalf("boundary cell did not wedge (gridlocked=%v step=%d) — fixture scenario broken", pt.Gridlocked, pt.GridlockStep)
	}
	rows := ts.Rows()
	// Locate the detector firing in the series and check it agrees with
	// the LoadPoint.
	latched := -1
	for i, r := range rows {
		if r.Gridlocked {
			latched = i
			break
		}
	}
	if latched < 0 {
		t.Fatal("time series never shows the gridlock latch")
	}
	if rows[latched].Step != pt.GridlockStep {
		t.Errorf("latch at series step %d, LoadPoint says %d", rows[latched].Step, pt.GridlockStep)
	}
	// The plateau: for the detector to fire, the GridlockWindow steps
	// before detection made zero progress — population frozen, every
	// live flight stalling.
	if latched < opt.GridlockWindow {
		t.Fatalf("latch at row %d, before a full detection window", latched)
	}
	frozen := rows[latched].InFlight
	if frozen == 0 {
		t.Fatal("wedged with an empty network")
	}
	for i := latched - opt.GridlockWindow + 1; i <= latched; i++ {
		r := rows[i]
		if r.Moves != 0 || r.Delivered != 0 {
			t.Errorf("row %d (step %d) inside the dead window shows progress: %+v", i, r.Step, r)
		}
		if r.InFlight != frozen {
			t.Errorf("row %d (step %d): in-flight %d, plateau is %d", i, r.Step, r.InFlight, frozen)
		}
		if r.Stalls != frozen {
			t.Errorf("row %d (step %d): stalls %d != frozen population %d", i, r.Step, r.Stalls, frozen)
		}
	}
	// The ramp: the wedge develops — early steps still move flights, so
	// the stall census climbs toward the dead window rather than starting
	// there.
	if rows[0].Stalls >= frozen {
		t.Errorf("stall census starts at the wedge level (%d >= %d): no ramp visible", rows[0].Stalls, frozen)
	}
	moved := 0
	for _, r := range rows[:latched] {
		moved += r.Moves
	}
	if moved == 0 {
		t.Error("no flight ever moved before the wedge — scenario degenerate")
	}

	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join("testdata", "e22_gridlock_timeseries.csv")
	if *updateFixtures {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("time series diverged from %s (%d vs %d bytes); if deliberate, regenerate with -update-fixtures and say so in the commit",
			fixture, buf.Len(), len(want))
	}
}
