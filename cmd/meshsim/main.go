// meshsim runs one dynamic-fault routing simulation from the command line:
// it builds a k-ary n-D mesh, schedules random faults (and optionally
// recoveries), routes a message under a chosen router, and reports the
// routing metrics, the per-occurrence convergence of the information
// constructions, and (for 2-D meshes) an ASCII picture of the final state.
//
// With -trials N (N > 1) it instead replicates the scenario under seeds
// seed, seed+1, ..., seed+N-1 — fanned out across -workers CPUs by the
// parallel experiment engine, with results independent of the worker count
// — and prints aggregate routing statistics.
//
// Examples:
//
//	meshsim -dims 16x16 -faults 6 -interval 20 -router limited -seed 7
//	meshsim -dims 10x10x10 -faults 4 -interval 40 -router blind
//	meshsim -dims 16x16 -faults 5 -recover-after 60 -render
//	meshsim -dims 16x16 -faults 6 -trials 200 -workers 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/par"
	"ndmesh/internal/stats"
	"ndmesh/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshsim: ")
	var (
		dimsFlag     = flag.String("dims", "16x16", "mesh dimensions, e.g. 16x16 or 10x10x10")
		faults       = flag.Int("faults", 4, "number of dynamic faults F")
		interval     = flag.Int("interval", 20, "steps between fault occurrences d_i")
		start        = flag.Int("start", 2, "step of the first fault t_1")
		recoverAfter = flag.Int("recover-after", 0, "recover each fault after this many steps (0 = never)")
		router       = flag.String("router", "limited", "router: limited | congested | oracle | blind | dor")
		lambda       = flag.Int("lambda", 2, "information rounds per step (λ)")
		seed         = flag.Uint64("seed", 1, "random seed")
		srcFlag      = flag.String("src", "", "source coordinate, e.g. 1,1 (default: low corner + 1)")
		dstFlag      = flag.String("dst", "", "destination coordinate (default: high corner - 1)")
		render       = flag.Bool("render", false, "print an ASCII picture of the final 2-D slice")
		clustered    = flag.Bool("clustered", false, "grow one block instead of scattering faults")
		trials       = flag.Int("trials", 1, "replicate the scenario under this many consecutive seeds and aggregate")
		workers      = flag.Int("workers", 0, "parallel trial workers for -trials (0 = all CPUs)")
	)
	flag.Parse()

	dims, err := cliutil.ParseDims(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}

	src, dst := defaultEndpoints(dims)
	if *srcFlag != "" {
		if src, err = cliutil.ParseCoord(*srcFlag, len(dims)); err != nil {
			log.Fatal(err)
		}
	}
	if *dstFlag != "" {
		if dst, err = cliutil.ParseCoord(*dstFlag, len(dims)); err != nil {
			log.Fatal(err)
		}
	}

	plan := func(seed uint64) ndmesh.FaultPlan {
		return ndmesh.FaultPlan{
			Faults:       *faults,
			Interval:     *interval,
			Start:        *start,
			RecoverAfter: *recoverAfter,
			Clustered:    *clustered,
			Avoid:        []ndmesh.Coord{src, dst},
			Seed:         seed,
		}
	}

	if *trials > 1 {
		if err := runBatch(dims, *lambda, *router, src, dst, *seed, *trials, *workers, plan); err != nil {
			log.Fatal(err)
		}
		return
	}

	sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: dims, Lambda: *lambda})
	if err != nil {
		log.Fatal(err)
	}

	if err := sim.GenerateFaults(plan(*seed)); err != nil {
		log.Fatal(err)
	}

	res, err := sim.Route(src, dst, *router)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mesh %v, %d nodes, router %s, λ=%d, seed %d\n",
		dims, sim.NumNodes(), *router, *lambda, *seed)
	fmt.Printf("route %v -> %v (distance %d)\n", src, dst, res.D0)
	status := "arrived"
	switch {
	case res.Unreachable:
		status = "unreachable"
	case res.Lost:
		status = "lost"
	}
	fmt.Printf("  %s in %d steps: %d hops, %d extra, %d backtracks\n",
		status, res.Steps, res.Hops, res.ExtraHops, res.Backtracks)

	sim.Drain() // fire any remaining scheduled events and settle
	fmt.Printf("\nfaulty blocks: %v\n", sim.Blocks())
	fmt.Printf("info records: %d on %d of %d nodes\n",
		sim.InfoRecords(), sim.NodesWithInfo(), sim.NumNodes())
	fmt.Println("\nper-occurrence convergence (rounds):")
	fmt.Printf("  %-3s %-6s %-8s %5s %5s %5s %9s %6s\n", "i", "step", "kind", "a_i", "b_i", "c_i", "affected", "e_max")
	for _, ev := range sim.Events() {
		fmt.Printf("  %-3d %-6d %-8s %5d %5d %5d %9d %6d\n",
			ev.Index, ev.Step, ev.Kind, ev.ARounds, ev.BRounds, ev.CRounds, ev.Affected, ev.EMaxAfter)
	}

	if *render && len(dims) >= 2 {
		fmt.Println("\nfinal state ('X' faulty, '#' disabled, 'o' holds block info):")
		fmt.Print(sim.Render(nil))
	}
	os.Exit(0)
}

// runBatch replicates one scenario under consecutive seeds across the
// worker pool, reusing one simulation per worker, and prints aggregate
// routing metrics. The output is identical for every -workers value.
func runBatch(dims []int, lambda int, router string, src, dst ndmesh.Coord,
	seed uint64, trials, workers int, plan func(seed uint64) ndmesh.FaultPlan) error {
	type simBox struct{ sim *ndmesh.Simulation }
	results := make([]ndmesh.RouteResult, trials)
	err := par.ForState(workers, trials, func() *simBox { return &simBox{} },
		func(box *simBox, i int) error {
			// The worker's simulation is lazily built on its first trial and
			// reset (not reallocated) for every following one.
			if box.sim == nil {
				var err error
				box.sim, err = ndmesh.NewSimulation(ndmesh.Config{Dims: dims, Lambda: lambda})
				if err != nil {
					return err
				}
			} else {
				box.sim.Reset()
			}
			sim := box.sim
			if err := sim.GenerateFaults(plan(seed + uint64(i))); err != nil {
				return err
			}
			res, err := sim.Route(src, dst, router)
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		})
	if err != nil {
		return err
	}

	var hops, extra, back stats.Summary
	latencies := make([]int, 0, trials)
	arrived, unreachable, lost := 0, 0, 0
	for _, res := range results {
		switch {
		case res.Arrived:
			arrived++
			hops.AddInt(res.Hops)
			extra.AddInt(res.ExtraHops)
			back.AddInt(res.Backtracks)
			latencies = append(latencies, res.Steps)
		case res.Unreachable:
			unreachable++
		case res.Lost:
			lost++
		}
	}
	fmt.Printf("mesh %v, router %s, λ=%d, %d trials (seeds %d..%d), %d workers\n",
		dims, router, lambda, trials, seed, seed+uint64(trials)-1, par.Workers(workers))
	fmt.Printf("route %v -> %v\n", src, dst)
	fmt.Printf("  arrived     %5d (%.1f%%)\n", arrived, 100*float64(arrived)/float64(trials))
	fmt.Printf("  unreachable %5d\n", unreachable)
	fmt.Printf("  lost        %5d\n", lost)
	if arrived > 0 {
		fmt.Printf("  hops        mean %.2f   extra mean %.2f   backtracks mean %.2f\n",
			hops.Mean(), extra.Mean(), back.Mean())
		lat := traffic.Summarize(latencies)
		fmt.Printf("  latency     mean %.2f steps   p50 %d   p95 %d   p99 %d   max %d\n",
			lat.Mean, lat.P50, lat.P95, lat.P99, lat.Max)
	}
	return nil
}

func defaultEndpoints(dims []int) (ndmesh.Coord, ndmesh.Coord) {
	src := make(ndmesh.Coord, len(dims))
	dst := make(ndmesh.Coord, len(dims))
	for i, k := range dims {
		src[i] = 1
		dst[i] = k - 2
	}
	return src, dst
}
