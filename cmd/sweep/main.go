// sweep regenerates the experiment tables of EXPERIMENTS.md: the
// convergence, degradation, λ-ablation, memory and oscillation studies
// (E14-E17 of DESIGN.md) and the randomized validation of Theorems 3-5
// (E11-E13). Each experiment prints one aligned table; -csv switches to
// comma-separated output.
//
// Examples:
//
//	sweep -exp all
//	sweep -exp degradation -trials 100 -seed 7
//	sweep -exp theorems -trials 200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/route"
	"ndmesh/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		exp      = flag.String("exp", "all", "experiment: convergence | degradation | lambda | memory | oscillation | theorems | traffic | saturation | congestion | closedloop | gridlock | reliability | all")
		seed     = flag.Uint64("seed", 1, "random seed")
		trials   = flag.Int("trials", 0, "trials per cell (0 = experiment default)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = all CPUs); results are identical for every value")
		shards   = flag.Int("shards", 1, "intra-step shard workers per load cell (saturation/congestion); results are identical for every value")
		preset   = flag.String("congestion", "", "congested-router tuning preset for the load experiments: off | mild | aggressive (empty = library defaults)")
		progress = flag.Bool("progress", false, "print per-cell completion of the load experiments (saturation/congestion/closedloop/gridlock) to stderr")
	)
	flag.Parse()

	var congestion route.CongestionConfig
	if *preset != "" {
		var err error
		if congestion, err = route.CongestionPresetByName(*preset); err != nil {
			log.Fatal(err)
		}
	}

	run := func(name string, fn func() (*stats.Table, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		tab, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab.String())
		}
	}

	run("convergence", func() (*stats.Table, error) { return convergenceTable(*seed, *workers) })
	run("degradation", func() (*stats.Table, error) { return degradationTable(*seed, *trials, *workers) })
	run("lambda", func() (*stats.Table, error) { return lambdaTable(*seed, *trials, *workers) })
	run("memory", func() (*stats.Table, error) { return memoryTable(*seed, *workers) })
	run("oscillation", func() (*stats.Table, error) { return oscillationTable(*seed, *trials, *workers) })
	run("theorems", func() (*stats.Table, error) { return theoremsTable(*seed, *trials, *workers) })
	run("traffic", func() (*stats.Table, error) { return trafficTable(*seed, *workers) })
	run("saturation", func() (*stats.Table, error) {
		return saturationTable(*seed, *workers, *shards, congestion, loadProgress(*progress, "saturation"))
	})
	run("congestion", func() (*stats.Table, error) {
		return congestionTable(*seed, *workers, *shards, congestion, loadProgress(*progress, "congestion"))
	})
	run("closedloop", func() (*stats.Table, error) {
		return closedLoopTable(*seed, *workers, *shards, congestion, loadProgress(*progress, "closedLoop"))
	})
	run("gridlock", func() (*stats.Table, error) {
		return gridlockTable(*seed, *workers, *shards, congestion, loadProgress(*progress, "gridlock"))
	})
	run("reliability", func() (*stats.Table, error) {
		return reliabilityTable(*seed, *trials, *workers, *shards, congestion, loadProgress(*progress, "reliability"))
	})

	if *exp != "all" {
		switch *exp {
		case "convergence", "degradation", "lambda", "memory", "oscillation", "theorems", "traffic", "saturation", "congestion", "closedloop", "gridlock", "reliability":
		default:
			log.Printf("unknown experiment %q", *exp)
			flag.Usage()
			os.Exit(2)
		}
	}
}

// loadProgress builds the per-cell stderr progress callback for the load
// experiments (nil when -progress is off).
func loadProgress(enabled bool, exp string) func(done, total int) {
	return cliutil.Progress(enabled, "sweep "+exp)
}

func trafficTable(seed uint64, workers int) (*stats.Table, error) {
	tab := stats.NewTable("E18 traffic: 24 concurrent messages, 16x16, 8 dynamic faults",
		"interval", "router", "arrived%", "extra (mean)", "backtracks", "max steps")
	for _, interval := range []int{4, 16} {
		rows, err := ndmesh.TrafficSweepWorkers([]int{16, 16}, 24, 8, interval, seed, workers)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			tab.AddRow(interval, r.Router, r.ArrivedPct, r.MeanExtra, r.TotalBack, r.MaxSteps)
		}
	}
	return tab, nil
}

func congestionTable(seed uint64, workers, shards int, congestion route.CongestionConfig, progress func(done, total int)) (*stats.Table, error) {
	opt := ndmesh.DefaultCongestionShift()
	opt.Shards = shards
	opt.Congestion = congestion
	opt.Progress = progress
	rows, summaries, err := ndmesh.CongestionShiftSweepWorkers(opt, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E20 congestion shift: 8x8, capacity 8, limited vs congested on identical scenarios",
		"pattern", "offered", "lim acc", "cong acc", "lim drop", "cong drop", "lim lat", "cong lat", "shift")
	for _, r := range rows {
		tab.AddRow(r.Pattern, fmt.Sprintf("%.2f", r.OfferedRate),
			fmt.Sprintf("%.3f", r.LimitedAccepted), fmt.Sprintf("%.3f", r.CongestedAccepted),
			r.LimitedDropped, r.CongestedDropped, r.LimitedLatMean, r.CongestedLatMean, "")
	}
	for _, s := range summaries {
		tab.AddRow(s.Pattern, "peak",
			fmt.Sprintf("%.3f", s.LimitedSatAccepted), fmt.Sprintf("%.3f", s.CongestedSatAccepted),
			"", "", "", "", fmt.Sprintf("%+.1f%%", s.ShiftPct))
	}
	return tab, nil
}

func closedLoopTable(seed uint64, workers, shards int, congestion route.CongestionConfig, progress func(done, total int)) (*stats.Table, error) {
	opt := ndmesh.DefaultClosedLoop()
	opt.Shards = shards
	opt.Congestion = congestion
	opt.Progress = progress
	rows, err := ndmesh.ClosedLoopSweepWorkers(opt, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E21 closed loop: 8x8, window-size vs delivered throughput/latency (population-limited)",
		"pattern", "router", "window", "inj rate", "accepted", "delivered", "unfin", "lat mean", "p50", "p99")
	for _, r := range rows {
		tab.AddRow(r.Pattern, r.Router, r.Window, fmt.Sprintf("%.3f", r.InjectedRate),
			fmt.Sprintf("%.3f", r.AcceptedRate), r.Delivered, r.Unfinished, r.LatMean, r.LatP50, r.LatP99)
	}
	return tab, nil
}

func gridlockTable(seed uint64, workers, shards int, congestion route.CongestionConfig, progress func(done, total int)) (*stats.Table, error) {
	opt := ndmesh.DefaultGridlock()
	opt.Shards = shards
	opt.Congestion = congestion
	opt.Progress = progress
	rows, err := ndmesh.GridlockSweepWorkers(opt, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E22 gridlock phase diagram: 8x8 closed loop, finite buffers, escape mechanism as the comparison axis",
		"pattern", "window", "cap", "faults", "mechanism", "gridlocked", "gstep", "recovery", "accepted", "delivered", "timedout", "retried", "unfin", "lat mean", "p99")
	for _, r := range rows {
		gl := ""
		if r.Gridlocked {
			gl = "GRIDLOCK"
		}
		tab.AddRow(r.Pattern, r.Window, r.Capacity, r.Faults, r.Mechanism, gl,
			r.GridlockStep, r.RecoverySteps, fmt.Sprintf("%.3f", r.AcceptedRate),
			r.Delivered, r.TimedOut, r.Retried, r.Unfinished, r.LatMean, r.LatP99)
	}
	return tab, nil
}

func reliabilityTable(seed uint64, trials, workers, shards int, congestion route.CongestionConfig, progress func(done, total int)) (*stats.Table, error) {
	opt := ndmesh.DefaultReliability()
	opt.Routers = []string{"limited", "congested"}
	if trials > 0 {
		opt.Trials = trials
	}
	opt.Shards = shards
	opt.Congestion = congestion
	opt.Progress = progress
	rows, err := ndmesh.ReliabilitySweepWorkers(opt, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E23 reliability: 8x8 open loop under a live fault process, Monte-Carlo per cell",
		"pattern", "rate", "router", "trials", "delivered%", "unreach%", "lost%", "timedout%", "accepted", "rdrop", "failed", "recovered", "glk", "lat mean", "p99")
	for _, r := range rows {
		tab.AddRow(r.Pattern, fmt.Sprintf("%.3f", r.FaultRate), r.Router, r.Trials,
			fmt.Sprintf("%.3f", r.DeliveredFrac), fmt.Sprintf("%.3f", r.UnreachableFrac),
			fmt.Sprintf("%.3f", r.LostFrac), fmt.Sprintf("%.3f", r.TimedOutFrac),
			fmt.Sprintf("%.3f", r.AcceptedRate), r.RetryDropped, fmt.Sprintf("%.1f", r.MeanFailed),
			fmt.Sprintf("%.1f", r.MeanRecovered), r.GridlockedTrials, r.LatMean, r.LatP99Mean)
	}
	return tab, nil
}

func saturationTable(seed uint64, workers, shards int, congestion route.CongestionConfig, progress func(done, total int)) (*stats.Table, error) {
	opt := ndmesh.DefaultSaturation()
	opt.Routers = []string{"limited", "congested", "blind"}
	opt.Rates = []float64{0.05, 0.15, 0.3}
	opt.Warmup, opt.Measure, opt.Drain = 32, 128, 128
	opt.Shards = shards
	opt.Congestion = congestion
	opt.Progress = progress
	rows, err := ndmesh.SaturationSweepWorkers(opt, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E19 saturation: 8x8, contention (link-rate 1), Bernoulli injection",
		"pattern", "router", "offered", "accepted", "delivered", "unfin", "lat mean", "p50", "p99")
	for _, r := range rows {
		tab.AddRow(r.Pattern, r.Router, fmt.Sprintf("%.2f", r.OfferedRate), fmt.Sprintf("%.3f", r.AcceptedRate),
			r.Delivered, r.Unfinished, r.LatMean, r.LatP50, r.LatP99)
	}
	return tab, nil
}

func convergenceTable(seed uint64, workers int) (*stats.Table, error) {
	rows, err := ndmesh.ConvergenceSweepWorkers([][]int{
		{16, 16}, {24, 24}, {10, 10, 10}, {6, 6, 6, 6}, {5, 5, 5, 5, 5},
	}, 4, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E14 convergence: one growing block per mesh (rounds)",
		"mesh", "N", "fault#", "e_max", "a_i", "b_i", "c_i", "affected", "records")
	for _, r := range rows {
		tab.AddRow(r.Dims, r.N, r.FaultIndex, r.EMax, r.ARounds, r.BRounds, r.CRounds, r.Affected, r.Records)
	}
	return tab, nil
}

func degradationTable(seed uint64, trials, workers int) (*stats.Table, error) {
	opt := ndmesh.DefaultDegradation()
	opt.Workers = workers
	if trials > 0 {
		opt.Trials = trials
	}
	rows, err := ndmesh.DegradationSweep(opt, seed)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("E15 degradation: %v, F=%d, %d trials/cell (routing under dynamic faults)",
			opt.Dims, opt.Faults, opt.Trials),
		"interval", "router", "success%", "steps", "extra", "backtracks", "p95 extra")
	for _, r := range rows {
		tab.AddRow(r.Interval, r.Router, r.SuccessPct, r.MeanSteps, r.MeanExtra, r.MeanBack, r.P95Extra)
	}
	return tab, nil
}

func lambdaTable(seed uint64, trials, workers int) (*stats.Table, error) {
	if trials == 0 {
		trials = 30
	}
	rows, err := ndmesh.LambdaSweepWorkers([]int{16, 16}, []int{1, 2, 4, 8}, trials, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("E15b lambda ablation: 16x16, clustered faults under the message, %d trials", trials),
		"lambda", "router", "success%", "extra hops", "backtracks")
	for _, r := range rows {
		tab.AddRow(r.Lambda, r.Router, r.SuccessPct, r.MeanExtra, r.MeanBack)
	}
	return tab, nil
}

func memoryTable(seed uint64, workers int) (*stats.Table, error) {
	rows, err := ndmesh.MemorySweepWorkers([][]int{
		{16, 16}, {32, 32}, {10, 10, 10}, {6, 6, 6, 6},
	}, []int{2, 4, 8}, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("E16 memory: limited-information records vs. global tables",
		"mesh", "N", "F", "records", "nodes w/ info", "% of N", "global N*F")
	for _, r := range rows {
		tab.AddRow(r.Dims, r.N, r.Faults, r.Records, r.NodesWithInfo, r.NodePct, r.GlobalEntries)
	}
	return tab, nil
}

func oscillationTable(seed uint64, trials, workers int) (*stats.Table, error) {
	if trials == 0 {
		trials = 20
	}
	rows, err := ndmesh.OscillationSweepWorkers([]int{16, 16}, 6, []int{2, 4, 8, 16, 32}, trials, seed, workers)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable(
		fmt.Sprintf("E17 oscillation/locality: 16x16, 6 clustered faults, %d trials", trials),
		"interval", "affected/event", "a rounds (mean)", "a rounds (max)")
	for _, r := range rows {
		tab.AddRow(r.Interval, r.MeanAffected, r.MeanARounds, r.MaxARounds)
	}
	return tab, nil
}

func theoremsTable(seed uint64, trials, workers int) (*stats.Table, error) {
	if trials == 0 {
		trials = 60
	}
	tab := stats.NewTable(
		fmt.Sprintf("E11-E13 theorem validation: randomized conforming schedules, %d trials/mesh", trials),
		"mesh", "trials", "safe", "unsafe", "skipped", "arrived", "viol T3", "viol T4", "viol T5", "extra (mean)", "bound (mean)")
	for _, dims := range [][]int{{16, 16}, {10, 10, 10}} {
		rep, err := ndmesh.TheoremSweepWorkers(dims, trials, seed, workers)
		if err != nil {
			return nil, err
		}
		tab.AddRow(strings.Trim(fmt.Sprint(dims), "[]"), rep.Trials, rep.SafeTrials, rep.UnsafeTrials,
			rep.PremiseSkipped, rep.Arrived, rep.Violations3, rep.Violations4, rep.Violations5,
			rep.MeanExtraHops, rep.MeanDetourBound)
	}
	return tab, nil
}
