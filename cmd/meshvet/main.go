// Command meshvet runs the repo's static contract suite (internal/lint):
// determinism, resetcomplete, noalloc, and probereadonly. It speaks two
// protocols:
//
//   - standalone: `meshvet ./...` loads, type-checks, and analyzes the
//     named packages directly (exit 1 on findings);
//   - vettool: when invoked by `go vet -vettool=$(which meshvet) ./...`
//     it implements the cmd/go unitchecker contract (-V=full version
//     probe, -flags probe, then one <pkg>.cfg JSON per package), which
//     gets meshvet go vet's caching and per-package fan-out for free.
//
// The vettool mode analyzes only packages of the ndmesh module — the
// standard library is handed to it too (for export data) and is skipped.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"ndmesh/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

// printVersion implements the `-V=full` probe: cmd/go derives the
// vettool's cache key from this line, expecting
// "<progname> version devel ... buildID=<hex>" and re-running analyses
// whenever the binary's hash changes.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", os.Args[0], h.Sum(nil))
}

// vetConfig is the subset of cmd/go's per-package vet configuration JSON
// that meshvet consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit handles one unitchecker invocation: analyze the package the
// .cfg describes, print findings to stderr, and return the exit status
// (0 clean, 2 findings — mirroring x/tools' unitchecker).
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go expects facts ("vetx") for every package; meshvet's analyzers
	// are package-local, so an empty placeholder satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("meshvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
			return 1
		}
	}
	// Dependencies (VetxOnly), non-module packages, and the synthesized
	// test variants (the base package was already analyzed; _test.go files
	// are out of contract anyway) are skipped.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] || cfg.ModulePath != "ndmesh" ||
		strings.Contains(cfg.ID, ".test") || strings.Contains(cfg.ID, " [") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compilerName := cfg.Compiler
	if compilerName == "" {
		compilerName = "gc"
	}
	imp := importer.ForCompiler(fset, compilerName, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "meshvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.RunAnalyzers([]*lint.LoadedPackage{{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads and analyzes the named package patterns (default
// ./...) without the go vet driver.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "usage: meshvet [packages]\n\nanalyzers:\n")
			for _, a := range lint.All() {
				fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
			}
			return 2
		}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
