package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ndmesh
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7StepEngine 	    2000	       314.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkRouterStep/limited-4         	     500	     10335 ns/op	      34 B/op	       2 allocs/op
BenchmarkFig1BlockConstruction 	    6944	    172083 ns/op	         8.000 a_rounds
PASS
ok  	ndmesh	12.3s
`

func TestParse(t *testing.T) {
	base, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goos != "linux" || base.Goarch != "amd64" || base.Pkg != "ndmesh" {
		t.Fatalf("banner not parsed: %+v", base)
	}
	if len(base.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(base.Results))
	}
	// Results are sorted by name.
	step := base.Results[1]
	if step.Name != "BenchmarkFig7StepEngine" {
		t.Fatalf("unexpected order: %+v", base.Results)
	}
	if step.Iterations != 2000 || step.NsPerOp != 314.9 {
		t.Fatalf("ns/op not parsed: %+v", step)
	}
	if step.BytesPerOp == nil || *step.BytesPerOp != 0 || step.AllocsPerOp == nil || *step.AllocsPerOp != 0 {
		t.Fatalf("benchmem columns not parsed: %+v", step)
	}
	blockCon := base.Results[0]
	if blockCon.Metrics["a_rounds"] != 8 {
		t.Fatalf("custom metric not parsed: %+v", blockCon)
	}
	sub := base.Results[2]
	if sub.Name != "BenchmarkRouterStep/limited-4" || *sub.AllocsPerOp != 2 {
		t.Fatalf("sub-benchmark not parsed: %+v", sub)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	base, err := Parse(strings.NewReader("random text\nBenchmarkBad notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != 0 {
		t.Fatalf("noise parsed as results: %+v", base.Results)
	}
}
