// benchbase turns `go test -bench` output into a machine-readable baseline
// file (BENCH_NN.json), starting and extending the repository's performance
// trajectory. It reads benchmark output from stdin (or -in), parses every
// result line — including -benchmem columns and custom b.ReportMetric
// metrics — and writes a JSON document with the environment banner go test
// prints (goos/goarch/pkg/cpu).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchbase -o BENCH_01.json
//	go run ./cmd/benchbase -in bench.txt -o BENCH_02.json -note "after X"
//
// Compare two baselines by diffing their JSON or feeding the raw text to
// benchstat; benchbase deliberately stores the unmodified per-benchmark
// numbers so later tooling can post-process them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -N GOMAXPROCS suffix, e.g. "BenchmarkRouterStep/limited-8".
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are the -benchmem columns (absent without it).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit (e.g. "a_rounds").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the document benchbase emits.
type Baseline struct {
	// Note is freeform provenance (-note), e.g. what change the baseline
	// precedes or follows.
	Note string `json:"note,omitempty"`
	// Goos/Goarch/Pkg/CPU are taken from go test's banner lines.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchbase: ")
	var (
		in   = flag.String("in", "", "input file with `go test -bench` output (default stdin)")
		out  = flag.String("o", "", "output JSON path (default stdout)")
		note = flag.String("note", "", "freeform provenance note stored in the baseline")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	base, err := Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(base.Results) == 0 {
		log.Fatal("no benchmark results found in input")
	}
	base.Note = *note

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d results to %s\n", len(base.Results), *out)
}

// Parse reads go test -bench output and extracts the baseline.
func Parse(r io.Reader) (*Baseline, error) {
	base := &Baseline{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			base.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				base.Results = append(base.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(base.Results, func(i, j int) bool {
		return base.Results[i].Name < base.Results[j].Name
	})
	return base, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  7 allocs/op  3.0 a_rounds
//
// The grammar after the iteration count is value-unit pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return res, true
}
