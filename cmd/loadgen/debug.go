package main

// The -debug-addr introspection server: the standard net/http/pprof
// pages for live profiling of long runs (the multi-core profiling hook
// ROADMAP item 2 asks for) plus /debug/census, an expvar-style JSON
// rollup of the run's census so far — the seed of meshd's streaming API.
// The server lives for the rest of the process; profile a run by
// starting it with a long measurement window and pointing `go tool
// pprof` at the printed address.

import (
	"encoding/json"
	"log"
	"net"
	"net/http"
	"net/http/pprof"

	"ndmesh/internal/probe"
)

// newDebugMux builds the introspection mux: /debug/pprof/* and
// /debug/census.
func newDebugMux(snap *probe.Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/census", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap.State())
	})
	return mux
}

// startDebugServer binds addr (":0" picks a free port — the bound
// address is printed to stderr) and serves the introspection mux for the
// life of the process.
func startDebugServer(addr string, snap *probe.Snapshot) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("debug server listening on http://%s/debug/pprof/", ln.Addr())
	go func() {
		_ = http.Serve(ln, newDebugMux(snap))
	}()
	return nil
}
