// loadgen drives the contention-aware traffic subsystem from the command
// line: open-loop synthetic injection (uniform, transpose, complement,
// bitrev, hotspot, neighbor) at one or more rates, with per-link service
// arbitration and optional finite router buffers, through the standard
// warmup/measure/drain methodology. One row per (pattern, rate, router)
// cell: accepted throughput, drop/unreachable/lost/unfinished counts and
// the delivered-latency distribution — a latency-throughput curve when
// -rates sweeps.
//
// Examples:
//
//	loadgen -dims 8x8 -rates 0.1 -patterns uniform
//	loadgen -dims 8x8 -rates 0.02,0.05,0.1,0.2,0.35 -patterns uniform,transpose
//	loadgen -dims 8x8 -rates 0.1,0.3 -routers limited,blind -faults 4 -interval 40
//	loadgen -dims 8x8 -rates 0.2,0.3,0.4 -routers limited,congested -capacity 8
//	loadgen -dims 6x6x6 -rates 0.05 -patterns hotspot -process bursty -capacity 4
package main

import (
	"flag"
	"fmt"
	"log"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/route"
	"ndmesh/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		dimsFlag     = flag.String("dims", "8x8", "mesh dimensions, e.g. 8x8 or 6x6x6")
		routersFlag  = flag.String("routers", "limited", "comma-separated routers: limited | congested | oracle | blind | dor")
		patternsFlag = flag.String("patterns", "uniform", "comma-separated patterns: uniform | transpose | complement | bitrev | hotspot | neighbor")
		ratesFlag    = flag.String("rates", "0.1", "comma-separated injection rates (messages/node/step)")
		process      = flag.String("process", "bernoulli", "arrival process: bernoulli | poisson | bursty")
		lambda       = flag.Int("lambda", 1, "information rounds per step (λ)")
		warmup       = flag.Int("warmup", 64, "warmup steps (not measured)")
		measure      = flag.Int("measure", 256, "measurement-window steps")
		drain        = flag.Int("drain", 256, "drain steps (no injection)")
		linkRate     = flag.Int("link-rate", 1, "messages a directed link serves per step")
		capacity     = flag.Int("capacity", 0, "per-node input-queue depth (0 = unbounded)")
		margin       = flag.Int("margin", 1, "congested router: load advantage required to leave the baseline pick")
		nodeWeight   = flag.Int("node-weight", 1, "congested router: weight of downstream node residency (0 disables the signal)")
		linkWeight   = flag.Int("link-weight", 1, "congested router: weight of directed-link pending depth (0 disables the signal)")
		faults       = flag.Int("faults", 0, "dynamic faults overlaid on the run (0 = fault-free)")
		interval     = flag.Int("interval", 40, "steps between fault occurrences")
		clustered    = flag.Bool("clustered", false, "grow one block instead of scattering faults")
		seed         = flag.Uint64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "parallel cell workers (0 = all CPUs); results are identical for every value")
		shards       = flag.Int("shards", 1, "intra-step shard workers per cell (big single meshes; results are identical for every value)")
		csv          = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	dims, err := cliutil.ParseDims(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := cliutil.ParseRates(*ratesFlag)
	if err != nil {
		log.Fatal(err)
	}

	opt := ndmesh.SaturationOptions{
		Dims:          dims,
		Lambda:        *lambda,
		Routers:       cliutil.SplitList(*routersFlag),
		Patterns:      cliutil.SplitList(*patternsFlag),
		Rates:         rates,
		Process:       *process,
		Warmup:        *warmup,
		Measure:       *measure,
		Drain:         *drain,
		LinkRate:      *linkRate,
		NodeCapacity:  *capacity,
		Congestion:    route.CongestionConfig{Margin: *margin, NodeWeight: *nodeWeight, LinkWeight: *linkWeight},
		Faults:        *faults,
		FaultInterval: *interval,
		Clustered:     *clustered,
		Shards:        *shards,
	}
	rows, err := ndmesh.SaturationSweepWorkers(opt, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}

	title := fmt.Sprintf("saturation: %s, process=%s, link-rate=%d, capacity=%d, F=%d, warmup/measure/drain=%d/%d/%d",
		*dimsFlag, *process, *linkRate, *capacity, *faults, *warmup, *measure, *drain)
	tab := stats.NewTable(title,
		"pattern", "router", "offered", "accepted", "delivered", "dropped", "unreach", "lost", "unfin",
		"lat mean", "p50", "p95", "p99", "max")
	for _, r := range rows {
		tab.AddRow(r.Pattern, r.Router, fmt.Sprintf("%.3f", r.OfferedRate), fmt.Sprintf("%.3f", r.AcceptedRate),
			r.Delivered, r.Dropped, r.Unreachable, r.Lost, r.Unfinished,
			r.LatMean, r.LatP50, r.LatP95, r.LatP99, r.LatMax)
	}
	if *csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Print(tab.String())
	}
}
