// loadgen drives the contention-aware traffic subsystem from the command
// line: open-loop synthetic injection (uniform, transpose, complement,
// bitrev, hotspot, neighbor) at one or more rates, closed-loop
// bounded-window request workloads (-windows), and deterministic workload
// traces (-trace-record / -trace-replay), with per-link service arbitration
// and optional finite router buffers, through the standard
// warmup/measure/drain methodology. One row per cell: accepted throughput,
// drop/unreachable/lost/unfinished counts and the delivered-latency
// distribution — a latency-throughput curve when -rates or -windows sweeps.
//
// Examples:
//
//	loadgen -dims 8x8 -rates 0.1 -patterns uniform
//	loadgen -dims 8x8 -rates 0.02,0.05,0.1,0.2,0.35 -patterns uniform,transpose
//	loadgen -dims 8x8 -rates 0.1,0.3 -routers limited,blind -faults 4 -interval 40
//	loadgen -dims 8x8 -rates 0.2,0.3,0.4 -routers limited,congested -capacity 8
//	loadgen -dims 6x6x6 -rates 0.05 -patterns hotspot -process bursty -capacity 4
//	loadgen -dims 8x8 -windows 1,2,4,8,16 -patterns uniform -capacity 8
//	loadgen -dims 8x8 -windows 8 -capacity 4 -timeout 16 -retry-backoff 4 -bubble -gridlock-window 8
//	loadgen -dims 8x8 -rates 0.1 -fault-rate 0.01 -repair 150 -timeout 48
//	loadgen -dims 8x8 -rates 0.1 -fault-rate 0.02 -fault-model weibull -fault-shape 1.5 -clustered
//	loadgen -dims 8x8 -rates 0.2 -patterns uniform -trace-record w.ndwt
//	loadgen -trace-replay w.ndwt -routers congested -capacity 8
//	loadgen -trace-replay w.ndwt -routers limited,congested,blind,dor
//	loadgen -dims 8x8 -rates 0.35 -timeseries ts.csv -heatmap hm.csv -hist lat.csv
//	loadgen -dims 16x16 -rates 0.3 -measure 20000 -probe-every 16 -timeseries ts.csv -debug-addr :6060
//
// With several -routers, -trace-replay becomes a comparison sweep: every
// router replays the identical offer stream and fault schedule, one row
// per router, so the rows differ by router choice alone.
//
// The telemetry flags (-timeseries, -heatmap, -hist, -probe-every,
// -debug-addr) attach internal/probe recorders to a single run: a
// per-step census time series, per-node residency + per-link stall
// heatmaps, and the full delivered-latency distribution, each with a
// .manifest.json sidecar recording the schema, configuration and seed.
// Observation is read-only — the printed row is byte-identical with or
// without probes. -debug-addr additionally serves net/http/pprof and a
// live JSON census at /debug/census for the life of the process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ndmesh"
	"ndmesh/internal/cliutil"
	"ndmesh/internal/route"
	"ndmesh/internal/stats"
	"ndmesh/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		dimsFlag     = flag.String("dims", "8x8", "mesh dimensions, e.g. 8x8 or 6x6x6")
		routersFlag  = flag.String("routers", "limited", "comma-separated routers: limited | congested | oracle | blind | dor")
		patternsFlag = flag.String("patterns", "uniform", "comma-separated patterns: uniform | transpose | complement | bitrev | hotspot | neighbor")
		ratesFlag    = flag.String("rates", "0.1", "comma-separated injection rates (messages/node/step)")
		windowsFlag  = flag.String("windows", "", "comma-separated closed-loop windows (outstanding requests/node); selects the closed-loop workload and ignores -rates/-process")
		process      = flag.String("process", "bernoulli", "arrival process: bernoulli | poisson | bursty")
		lambda       = flag.Int("lambda", 1, "information rounds per step (λ)")
		warmup       = flag.Int("warmup", 64, "warmup steps (not measured)")
		measure      = flag.Int("measure", 256, "measurement-window steps")
		drain        = flag.Int("drain", 256, "drain steps (no injection)")
		linkRate     = flag.Int("link-rate", 1, "messages a directed link serves per step")
		capacity     = flag.Int("capacity", 0, "per-node input-queue depth (0 = unbounded)")
		margin       = flag.Int("margin", 1, "congested router: load advantage required to leave the baseline pick")
		nodeWeight   = flag.Int("node-weight", 1, "congested router: weight of downstream node residency (0 disables the signal)")
		linkWeight   = flag.Int("link-weight", 1, "congested router: weight of directed-link pending depth (0 disables the signal)")
		congPreset   = flag.String("congestion", "", "congested router preset: off | mild | aggressive (overrides -margin/-node-weight/-link-weight)")
		timeout      = flag.Int("timeout", 0, "kill any flight stalled in place this many consecutive steps (0 = off); closed-loop sources retry the request")
		retryBackoff = flag.Int("retry-backoff", 0, "closed-loop retry backoff base delay in steps (doubles per consecutive timeout; with -timeout)")
		bubble       = flag.Bool("bubble", false, "bubble admission: injection must leave >= 1 free input-buffer slot (needs -capacity >= 2)")
		gridlockWin  = flag.Int("gridlock-window", 0, "declare gridlock after this many consecutive zero-progress steps (0 = no detection)")
		faults       = flag.Int("faults", 0, "dynamic faults overlaid on the run (0 = fault-free)")
		interval     = flag.Int("interval", 40, "steps between fault occurrences")
		clustered    = flag.Bool("clustered", false, "grow one block instead of scattering faults")
		faultRate    = flag.Float64("fault-rate", 0, "stochastic fault process: mean failures per step over the whole run (0 = off; mutually exclusive with -faults)")
		faultModel   = flag.String("fault-model", "", "fault inter-arrival model: bernoulli | weibull (with -fault-rate; empty = bernoulli)")
		faultShape   = flag.Float64("fault-shape", 0, "weibull shape for -fault-model weibull (0 = library default)")
		faultStart   = flag.Int("fault-start", 0, "earliest step a fault may occur (0 = library default)")
		repair       = flag.Float64("repair", 0, "mean repair delay in steps for process faults (0 = faults are permanent)")
		seed         = flag.Uint64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "parallel cell workers (0 = all CPUs); results are identical for every value")
		shards       = flag.Int("shards", 1, "intra-step shard workers per cell (big single meshes; results are identical for every value)")
		traceRecord  = flag.String("trace-record", "", "record the run's offered workload (single cell only) into this file")
		traceReplay  = flag.String("trace-replay", "", "replay a recorded workload trace from this file (overrides -dims/-rates/-windows/-patterns/-faults and the phase lengths)")
		csv          = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		timeseries   = flag.String("timeseries", "", "write the run's per-step census time series to this CSV (single run only; a .manifest.json sidecar is written alongside)")
		heatmapOut   = flag.String("heatmap", "", "write per-node residency + per-link stall heatmap accumulators to this CSV (single run only; render with faultviz -heatmap)")
		histOut      = flag.String("hist", "", "write the full delivered-latency distribution (log-bucketed histogram) to this CSV (single run only)")
		probeEvery   = flag.Int("probe-every", 1, "flush the census every N steps (counters aggregate the interval, gauges sample its last step)")
		progressFlag = flag.Bool("progress", false, "print per-cell sweep completion to stderr")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and a JSON census snapshot (/debug/census) on this address for the life of the process, e.g. :6060 (single run only)")
	)
	flag.Parse()

	dims, err := cliutil.ParseDims(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}
	routers := cliutil.SplitList(*routersFlag)
	patterns := cliutil.SplitList(*patternsFlag)
	pf := probeFlags{
		timeseries: *timeseries, heatmap: *heatmapOut, hist: *histOut,
		every: *probeEvery, debugAddr: *debugAddr,
	}
	progress := cliutil.Progress(*progressFlag, "loadgen")
	congestion := route.CongestionConfig{Margin: *margin, NodeWeight: *nodeWeight, LinkWeight: *linkWeight}
	if *congPreset != "" {
		congestion, err = route.CongestionPresetByName(*congPreset)
		if err != nil {
			log.Fatal(err)
		}
	}

	// faultDesc summarizes the fault overlay for table titles: the fixed
	// count, or the stochastic process when -fault-rate is set.
	faultDesc := fmt.Sprintf("F=%d", *faults)
	if *faultRate > 0 {
		faultDesc = fmt.Sprintf("frate=%g(%s) repair=%g", *faultRate, func() string {
			if *faultModel != "" {
				return *faultModel
			}
			return "bernoulli"
		}(), *repair)
	}

	emitTable := func(tab *stats.Table) {
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.String())
		}
	}
	newPointTable := func(title string) *stats.Table {
		return stats.NewTable(title,
			"workload", "router", "offered", "accepted", "delivered", "dropped", "unreach", "lost",
			"timeout", "retried", "unfin", "gridlock", "failed", "recovered",
			"lat mean", "p50", "p95", "p99", "max")
	}
	addPointRow := func(tab *stats.Table, workload, router string, pt traffic.LoadPoint) {
		gl := ""
		if pt.Gridlocked {
			gl = fmt.Sprintf("GRIDLOCK@%d", pt.GridlockStep)
		}
		tab.AddRow(workload, router, fmt.Sprintf("%.3f", pt.OfferedRate), fmt.Sprintf("%.3f", pt.AcceptedRate),
			pt.Delivered, pt.Dropped, pt.Unreachable, pt.Lost,
			pt.TimedOut, pt.Retried, pt.Unfinished, gl, pt.Failed, pt.Recovered,
			pt.Latency.Mean, pt.Latency.P50, pt.Latency.P95, pt.Latency.P99, pt.Latency.Max)
	}
	pointTable := func(title string, router, workload string, pt traffic.LoadPoint) *stats.Table {
		tab := newPointTable(title)
		addPointRow(tab, workload, router, pt)
		return tab
	}

	// Trace replay: the trace is the workload; only the engine-side
	// configuration (router, contention, λ) is taken from the flags.
	if *traceReplay != "" {
		data, err := os.ReadFile(*traceReplay)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := traffic.UnmarshalTrace(data)
		if err != nil {
			log.Fatal(err)
		}
		// Engine-side flags override the trace only when given explicitly
		// on the command line: the flag *defaults* must not silently
		// replace the recorded configuration (that was exactly the footgun
		// the trace records them to close).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		capacityOverride := 0
		if set["capacity"] {
			capacityOverride = *capacity
			if *capacity == 0 {
				// 0 is the flag's "unbounded" value; the library reserves
				// zero for trace inheritance, so an explicit 0 becomes the
				// explicit-unbounded sentinel.
				capacityOverride = -1
			}
		}
		lambdaOverride, linkRateOverride := 0, 0
		if set["lambda"] {
			lambdaOverride = *lambda
		}
		if set["link-rate"] {
			linkRateOverride = *linkRate
		}
		mode := "open-loop"
		if tr.ClosedLoop {
			mode = fmt.Sprintf("closed-loop w=%d", tr.Window)
		}
		linkRateEff, capacityEff := tr.LinkRate, tr.NodeCapacity
		if set["link-rate"] {
			linkRateEff = *linkRate
		}
		if set["capacity"] {
			capacityEff = *capacity
		}

		// Several routers: the comparison sweep — every arm replays the
		// identical offer stream and fault schedule, one row per router.
		if len(routers) > 1 {
			if *traceRecord != "" {
				log.Fatal("-trace-record with -trace-replay needs exactly one -routers entry")
			}
			requireSingleRun(pf, "replay router arms", len(routers))
			ropt := ndmesh.ReplayCompareOptions{
				Trace: tr, Routers: routers,
				Lambda: lambdaOverride, LinkRate: linkRateOverride, NodeCapacity: capacityOverride,
				Congestion:    congestion,
				FlightTimeout: *timeout, RetryBackoff: *retryBackoff,
				Bubble: *bubble, GridlockWindow: *gridlockWin,
				Shards:   *shards,
				Progress: progress,
			}
			rows, err := ndmesh.ReplayCompareSweepWorkers(ropt, *seed, *workers)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("trace replay comparison: %s (%v, %s, %d offers over %d steps), link-rate=%d, capacity=%d",
				*traceReplay, tr.Dims, mode, tr.Offers(), tr.Steps(), linkRateEff, capacityEff)
			tab := newPointTable(title)
			for _, row := range rows {
				addPointRow(tab, "trace", row.Router, row.Point)
			}
			emitTable(tab)
			return
		}

		opt := ndmesh.LoadOptions{
			Router:     routers[0],
			Congestion: congestion, Shards: *shards, Seed: *seed,
			Lambda: lambdaOverride, LinkRate: linkRateOverride, NodeCapacity: capacityOverride,
			FlightTimeout: *timeout, RetryBackoff: *retryBackoff,
			Bubble: *bubble, GridlockWindow: *gridlockWin,
			Replay: tr,
		}
		if *traceRecord != "" {
			// Re-record the replay: the offered stream and fault schedule
			// carry over, so the written trace is a standalone equivalent
			// of the input (useful for normalizing or re-homing traces).
			opt.Record = &traffic.Trace{}
		}
		tel, err := newTelemetry(pf, tr.Dims, tr.Warmup+tr.Measure+tr.Drain, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if tel != nil {
			opt.Probe, opt.ProbeEvery = tel.set, pf.every
		}
		pt, err := ndmesh.LoadRun(opt)
		if err != nil {
			log.Fatal(err)
		}
		if tel != nil {
			if err := tel.writeOutputs(manifestConfig(opt)); err != nil {
				log.Fatal(err)
			}
		}
		if *traceRecord != "" {
			if err := os.WriteFile(*traceRecord, opt.Record.Marshal(), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		title := fmt.Sprintf("trace replay: %s (%v, %s, %d offers over %d steps), link-rate=%d, capacity=%d",
			*traceReplay, tr.Dims, mode, tr.Offers(), tr.Steps(), linkRateEff, capacityEff)
		emitTable(pointTable(title, routers[0], "trace", pt))
		return
	}

	windows, err := cliutil.ParseInts(*windowsFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Trace recording: one live cell, its offered workload captured.
	if *traceRecord != "" {
		if len(routers) != 1 || len(patterns) != 1 {
			log.Fatal("-trace-record needs exactly one router and one pattern")
		}
		opt := ndmesh.LoadOptions{
			Dims: dims, Lambda: *lambda, Router: routers[0], Pattern: patterns[0],
			Process: *process,
			Warmup:  *warmup, Measure: *measure, Drain: *drain,
			LinkRate: *linkRate, NodeCapacity: *capacity,
			Congestion:    congestion,
			FlightTimeout: *timeout, RetryBackoff: *retryBackoff,
			Bubble: *bubble, GridlockWindow: *gridlockWin,
			Faults: *faults, FaultInterval: *interval, Clustered: *clustered,
			FaultStart: *faultStart, FaultRate: *faultRate, FaultModel: *faultModel,
			FaultShape: *faultShape, FaultRepair: *repair,
			Shards: *shards, Seed: *seed,
			Record: &traffic.Trace{},
		}
		var workload string
		switch {
		case len(windows) == 1:
			opt.Window = windows[0]
			workload = fmt.Sprintf("%s w=%d", patterns[0], windows[0])
		case len(windows) > 1:
			log.Fatal("-trace-record needs exactly one -windows entry")
		default:
			rates, err := cliutil.ParseRates(*ratesFlag)
			if err != nil {
				log.Fatal(err)
			}
			if len(rates) != 1 {
				log.Fatal("-trace-record needs exactly one -rates entry")
			}
			opt.Rate = rates[0]
			workload = fmt.Sprintf("%s @%.3f", patterns[0], rates[0])
		}
		tel, err := newTelemetry(pf, dims, *warmup+*measure+*drain, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if tel != nil {
			opt.Probe, opt.ProbeEvery = tel.set, pf.every
		}
		pt, err := ndmesh.LoadRun(opt)
		if err != nil {
			log.Fatal(err)
		}
		if tel != nil {
			if err := tel.writeOutputs(manifestConfig(opt)); err != nil {
				log.Fatal(err)
			}
		}
		if err := os.WriteFile(*traceRecord, opt.Record.Marshal(), 0o644); err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("trace record: %s (%s, %d offers over %d steps), link-rate=%d, capacity=%d, %s",
			*traceRecord, *dimsFlag, opt.Record.Offers(), opt.Record.Steps(), *linkRate, *capacity, faultDesc)
		emitTable(pointTable(title, routers[0], workload, pt))
		return
	}

	// Closed-loop sweep (E21): windows replace rates as the load knob.
	if len(windows) > 0 {
		requireSingleRun(pf, "closed-loop cells", len(routers)*len(patterns)*len(windows))
		tel, err := newTelemetry(pf, dims, *warmup+*measure+*drain, *seed)
		if err != nil {
			log.Fatal(err)
		}
		opt := ndmesh.ClosedLoopOptions{
			Dims: dims, Lambda: *lambda,
			Routers: routers, Patterns: patterns, Windows: windows,
			Warmup: *warmup, Measure: *measure, Drain: *drain,
			LinkRate: *linkRate, NodeCapacity: *capacity,
			Congestion:    congestion,
			FlightTimeout: *timeout, RetryBackoff: *retryBackoff,
			Bubble: *bubble, GridlockWindow: *gridlockWin,
			Faults: *faults, FaultInterval: *interval, Clustered: *clustered,
			FaultStart: *faultStart, FaultRate: *faultRate, FaultModel: *faultModel,
			FaultShape: *faultShape, FaultRepair: *repair,
			Shards:   *shards,
			Progress: progress,
		}
		if tel != nil {
			opt.Probe, opt.ProbeEvery = tel.set, pf.every
		}
		rows, err := ndmesh.ClosedLoopSweepWorkers(opt, *seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if tel != nil {
			cfg := opt
			cfg.Probe, cfg.Progress = nil, nil
			if err := tel.writeOutputs(cfg); err != nil {
				log.Fatal(err)
			}
		}
		title := fmt.Sprintf("closed loop: %s, link-rate=%d, capacity=%d, %s, warmup/measure/drain=%d/%d/%d",
			*dimsFlag, *linkRate, *capacity, faultDesc, *warmup, *measure, *drain)
		tab := stats.NewTable(title,
			"pattern", "router", "window", "inj rate", "accepted", "delivered", "unreach", "lost", "unfin",
			"lat mean", "p50", "p95", "p99", "max")
		for _, r := range rows {
			tab.AddRow(r.Pattern, r.Router, r.Window, fmt.Sprintf("%.3f", r.InjectedRate), fmt.Sprintf("%.3f", r.AcceptedRate),
				r.Delivered, r.Unreachable, r.Lost, r.Unfinished,
				r.LatMean, r.LatP50, r.LatP95, r.LatP99, r.LatMax)
		}
		emitTable(tab)
		return
	}

	rates, err := cliutil.ParseRates(*ratesFlag)
	if err != nil {
		log.Fatal(err)
	}
	requireSingleRun(pf, "open-loop cells", len(routers)*len(patterns)*len(rates))
	tel, err := newTelemetry(pf, dims, *warmup+*measure+*drain, *seed)
	if err != nil {
		log.Fatal(err)
	}
	opt := ndmesh.SaturationOptions{
		Dims:           dims,
		Lambda:         *lambda,
		Routers:        routers,
		Patterns:       patterns,
		Rates:          rates,
		Process:        *process,
		Warmup:         *warmup,
		Measure:        *measure,
		Drain:          *drain,
		LinkRate:       *linkRate,
		NodeCapacity:   *capacity,
		Congestion:     congestion,
		FlightTimeout:  *timeout,
		RetryBackoff:   *retryBackoff,
		Bubble:         *bubble,
		GridlockWindow: *gridlockWin,
		Faults:         *faults,
		FaultInterval:  *interval,
		Clustered:      *clustered,
		FaultStart:     *faultStart,
		FaultRate:      *faultRate,
		FaultModel:     *faultModel,
		FaultShape:     *faultShape,
		FaultRepair:    *repair,
		Shards:         *shards,
		Progress:       progress,
	}
	if tel != nil {
		opt.Probe, opt.ProbeEvery = tel.set, pf.every
	}
	rows, err := ndmesh.SaturationSweepWorkers(opt, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if tel != nil {
		cfg := opt
		cfg.Probe, cfg.Progress = nil, nil
		if err := tel.writeOutputs(cfg); err != nil {
			log.Fatal(err)
		}
	}

	title := fmt.Sprintf("saturation: %s, process=%s, link-rate=%d, capacity=%d, %s, warmup/measure/drain=%d/%d/%d",
		*dimsFlag, *process, *linkRate, *capacity, faultDesc, *warmup, *measure, *drain)
	// The column set and formatting live in cliutil so meshd's streamed CSV
	// is byte-identical to -csv output here (the CI smoke job diffs them).
	emitTable(cliutil.OpenLoopTable(title, rows))
}
