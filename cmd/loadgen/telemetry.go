package main

// Telemetry wiring for loadgen: -timeseries/-heatmap/-hist select the
// internal/probe recorders, -probe-every decimates the flush cadence,
// -debug-addr serves the live census (debug.go). Probes are stateful
// accumulators, so a probed invocation must resolve to a single run — a
// one-cell sweep, one trace replay, or one recording — and every output
// file gets a <file>.manifest.json sidecar describing its schema and the
// exact configuration (plus seed) that produced it.

import (
	"io"
	"log"
	"os"

	"ndmesh"
	"ndmesh/internal/probe"
)

// probeFlags holds the telemetry-related CLI flags.
type probeFlags struct {
	timeseries, heatmap, hist string
	every                     int
	debugAddr                 string
}

// active reports whether any telemetry output or endpoint was requested.
func (pf probeFlags) active() bool {
	return pf.timeseries != "" || pf.heatmap != "" || pf.hist != "" || pf.debugAddr != ""
}

// telemetry owns the recorders for one probed run and writes their files
// when the run finishes.
type telemetry struct {
	set  *probe.Set
	ts   *probe.TimeSeries
	hm   *probe.Heatmap
	hist *probe.LatencyHist
	snap *probe.Snapshot
	pf   probeFlags
	dims []int
	seed uint64
}

// newTelemetry builds the recorders the flags ask for (nil when none
// are) and starts the debug server if -debug-addr was given. The time
// series is sized to hold every flush of a totalSteps-step run; the
// heatmap to the mesh shape.
func newTelemetry(pf probeFlags, dims []int, totalSteps int, seed uint64) (*telemetry, error) {
	if !pf.active() {
		return nil, nil
	}
	if pf.every < 1 {
		pf.every = 1
	}
	t := &telemetry{set: &probe.Set{}, pf: pf, dims: dims, seed: seed}
	if pf.timeseries != "" {
		t.ts = probe.NewTimeSeries(totalSteps/pf.every + 2)
		t.set.AddProbe(t.ts)
	}
	if pf.heatmap != "" {
		nodes := 1
		for _, d := range dims {
			nodes *= d
		}
		t.hm = probe.NewHeatmap(nodes, 2*len(dims))
		t.set.AddProbe(t.hm)
	}
	if pf.hist != "" {
		t.hist = probe.NewLatencyHist()
		t.set.AddLatency(t.hist)
	}
	if pf.debugAddr != "" {
		t.snap = &probe.Snapshot{}
		t.set.AddProbe(t.snap)
		if err := startDebugServer(pf.debugAddr, t.snap); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// writeOutputs emits every requested CSV plus its manifest sidecar.
// config is the run configuration embedded in each manifest.
func (t *telemetry) writeOutputs(config any) error {
	write := func(path, kind string, schema []string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		m := probe.Manifest{
			FormatVersion: probe.FormatVersion,
			Kind:          kind,
			Schema:        schema,
			Dims:          t.dims,
			Seed:          t.seed,
			ProbeEvery:    t.pf.every,
			Config:        config,
		}
		return m.Write(path)
	}
	if t.ts != nil {
		if err := write(t.pf.timeseries, "timeseries", probe.TimeSeriesSchema, t.ts.WriteCSV); err != nil {
			return err
		}
		if d := t.ts.Dropped(); d > 0 {
			log.Printf("timeseries ring dropped %d early rows (capacity undersized?)", d)
		}
	}
	if t.hm != nil {
		if err := write(t.pf.heatmap, "heatmap", probe.HeatmapSchema, t.hm.WriteCSV); err != nil {
			return err
		}
	}
	if t.hist != nil {
		if err := write(t.pf.hist, "hist", probe.HistSchema, t.hist.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// manifestConfig strips a LoadOptions to its manifest-embeddable core:
// the trace pointers and the probe itself do not belong in the sidecar.
func manifestConfig(opt ndmesh.LoadOptions) ndmesh.LoadOptions {
	opt.Record, opt.Replay, opt.Probe = nil, nil, nil
	return opt
}

// requireSingleRun fails the invocation when telemetry flags are set but
// the flag combination fans out to more than one run.
func requireSingleRun(pf probeFlags, what string, n int) {
	if pf.active() && n > 1 {
		log.Fatalf("telemetry (-timeseries/-heatmap/-hist/-debug-addr) needs a single run: got %d %s", n, what)
	}
}
