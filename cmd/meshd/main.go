// meshd is the simulation daemon: a long-running HTTP service over the
// ndmesh experiment library. It keeps a pool of warm, Reset-recycled
// simulation engines, accepts JSON job specs on POST /v1/jobs (open-loop
// and closed-loop sweeps, trace replays, reliability grids), streams
// result rows incrementally as cells complete, and serves repeat
// submissions from a determinism-keyed result cache without touching an
// engine. See internal/server for the service-layer contracts.
//
// Endpoints:
//
//	POST /v1/jobs[?format=csv]  submit a spec, stream rows (NDJSON; CSV
//	                            for open-loop jobs uses loadgen's exact
//	                            column format)
//	GET  /v1/jobs               list job statuses
//	GET  /v1/jobs/{id}          one job's status
//	GET  /debug/census          pool / cache / live-probe counters
//	GET  /healthz               liveness (503 once draining)
//
// Examples:
//
//	meshd -addr :8080
//	curl -s localhost:8080/v1/jobs -d '{"kind":"open-loop","dims":[8,8],"rates":[0.1,0.2],"seed":42}'
//	curl -s 'localhost:8080/v1/jobs?format=csv' -d '{"kind":"open-loop","seed":7}'
//
// On SIGINT/SIGTERM meshd stops admitting jobs and drains: in-flight
// streams run to completion up to -drain-timeout, after which remaining
// jobs are canceled (their engines still return to the pool clean — the
// library's cleanup contract holds on the abort path).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndmesh/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshd: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		concurrency  = flag.Int("concurrency", 0, "jobs running engines at once (0 = default 2)")
		queue        = flag.Int("queue", 0, "admitted jobs waiting for a run slot before 503 (0 = default 8)")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache body bound (0 = default 256, negative disables)")
		cacheBytes   = flag.Int("cache-bytes", 0, "result-cache byte bound (0 = default 64 MiB, negative disables)")
		poolIdle     = flag.Int("pool-idle", 0, "warm simulations retained per mesh shape (0 = default 8)")
		maxWorkers   = flag.Int("max-workers", 0, "per-job sweep fan-out cap (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
	)
	flag.Parse()

	srv := server.New(server.Config{
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		PoolIdle:      *poolIdle,
		MaxWorkers:    *maxWorkers,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		log.Printf("draining (timeout %v)", *drainTimeout)
		srv.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Drain deadline passed: force-cancel the stragglers, then
			// wait for their handlers to unwind (cancellation is polled,
			// so this is prompt).
			log.Printf("drain timeout; canceling in-flight jobs")
			srv.CancelAll()
			srv.Wait()
			_ = httpSrv.Close()
		}
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("drained cleanly")
}
