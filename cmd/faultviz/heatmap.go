package main

// The -heatmap mode: render a loadgen heatmap CSV (internal/probe's
// Heatmap output) as an ASCII intensity map, so a stall-field or
// residency snapshot of a gridlocking run is one command away:
//
//	loadgen -dims 8x8 -windows 4 -capacity 2 -gridlock-window 8 -heatmap hm.csv
//	faultviz -heatmap hm.csv -metric resident
//	faultviz -heatmap hm.csv -metric stalls -value peak
//
// The mesh shape comes from the CSV's .manifest.json sidecar, so the
// command needs no -dims.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"ndmesh/internal/cliutil"
	"ndmesh/internal/grid"
	"ndmesh/internal/probe"
	"ndmesh/internal/viz"
)

// renderHeatmap loads path (+ manifest) and prints the selected field.
// metric is "resident" or "stalls" (per-node stall totals sum the node's
// directed links); value is "total" or "peak"; sliceStr pins the
// non-rendered axes of an n-D mesh.
func renderHeatmap(path, metric, value, sliceStr string) error {
	var m probe.Manifest
	mb, err := os.ReadFile(path + ".manifest.json")
	if err != nil {
		return fmt.Errorf("heatmap manifest (needed for the mesh shape): %w", err)
	}
	if err := json.Unmarshal(mb, &m); err != nil {
		return fmt.Errorf("heatmap manifest: %w", err)
	}
	if m.Kind != "heatmap" {
		return fmt.Errorf("%s is a %q telemetry file, want a heatmap", path, m.Kind)
	}
	if m.FormatVersion > probe.FormatVersion {
		return fmt.Errorf("heatmap format version %d is newer than this build understands (%d)", m.FormatVersion, probe.FormatVersion)
	}
	shape, err := grid.NewShape(m.Dims...)
	if err != nil {
		return err
	}

	peakCol := value == "peak"
	if value != "peak" && value != "total" {
		return fmt.Errorf("unknown -value %q (want total | peak)", value)
	}
	field := make([]float64, shape.NumNodes())
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rd.FieldsPerRecord = len(probe.HeatmapSchema)
	header := true
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if header {
			header = false
			continue
		}
		node, err := strconv.Atoi(rec[1])
		if err != nil || node < 0 || node >= shape.NumNodes() {
			return fmt.Errorf("heatmap row has bad node %q", rec[1])
		}
		col := 4 // total
		if peakCol {
			col = 3
		}
		v, err := strconv.ParseFloat(rec[col], 64)
		if err != nil {
			return fmt.Errorf("heatmap row has bad %s %q", value, rec[col])
		}
		switch {
		case metric == "resident" && rec[0] == "node":
			field[node] = v
		case metric == "stalls" && rec[0] == "link":
			if peakCol {
				// Peaks on different links are not concurrent; keep the
				// hottest link per node rather than summing them.
				if v > field[node] {
					field[node] = v
				}
			} else {
				field[node] += v
			}
		}
	}

	var fixed grid.Coord
	if sliceStr != "" {
		if fixed, err = cliutil.ParseCoord(sliceStr, shape.Dims()); err != nil {
			return err
		}
	}
	fmt.Printf("heatmap %s: %v %s (%s), ramp %q dim->hot\n", path, m.Dims, metric, value, viz.HeatRamp)
	fmt.Print(viz.RenderHeat(shape, field, viz.Options{Fixed: fixed}))
	return nil
}

func validHeatmapMetric(metric string) bool {
	return metric == "resident" || metric == "stalls"
}
