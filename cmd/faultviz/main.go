// faultviz animates the information constructions on a 2-D mesh (or a 2-D
// slice of an n-D mesh): it injects faults, then prints the mesh after
// every few information rounds so the labeling wave, the identification
// walk and the boundary flood are visible as they spread.
//
// Examples:
//
//	faultviz -dims 14x14 -faults 4,4:5,5:9,9 -every 2
//	faultviz -dims 10x10x10 -faults 5,5,5:6,6,6 -slice 0,0,5 -every 4
//	faultviz -dims 14x14 -faults 6,6:7,7 -recover 6,6 -every 3
//	faultviz -heatmap hm.csv -metric stalls
//
// With -heatmap, faultviz instead renders a loadgen telemetry heatmap
// (see heatmap.go) and the fault-animation flags are ignored.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ndmesh"
	"ndmesh/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultviz: ")
	var (
		dimsFlag  = flag.String("dims", "14x14", "mesh dimensions, e.g. 14x14 or 10x10x10")
		faultsStr = flag.String("faults", "6,6:7,7", "colon-separated fault coordinates, e.g. 4,4:5,5")
		recover   = flag.String("recover", "", "coordinate to recover after the first stabilization")
		sliceStr  = flag.String("slice", "", "fixed coordinates of the rendered slice (n components)")
		every     = flag.Int("every", 3, "render every this many rounds")
		maxRounds = flag.Int("max-rounds", 200, "stop after this many rounds")
		heatmap   = flag.String("heatmap", "", "render a loadgen heatmap CSV (mesh shape from its .manifest.json) instead of animating faults")
		metric    = flag.String("metric", "resident", "heatmap field: resident (per-node occupancy) | stalls (per-node link-stall rollup)")
		value     = flag.String("value", "total", "heatmap statistic: total (time-integrated) | peak")
	)
	flag.Parse()

	if *heatmap != "" {
		if !validHeatmapMetric(*metric) {
			log.Fatalf("unknown -metric %q (want resident | stalls)", *metric)
		}
		if err := renderHeatmap(*heatmap, *metric, *value, *sliceStr); err != nil {
			log.Fatal(err)
		}
		return
	}

	dims, err := cliutil.ParseDims(*dimsFlag)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: dims, Lambda: 1})
	if err != nil {
		log.Fatal(err)
	}
	var fixed ndmesh.Coord
	if *sliceStr != "" {
		if fixed, err = cliutil.ParseCoord(*sliceStr, len(dims)); err != nil {
			log.Fatal(err)
		}
	}

	for _, part := range strings.Split(*faultsStr, ":") {
		c, err := cliutil.ParseCoord(part, len(dims))
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.FailNow(c); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("mesh %v; faults %s\n", dims, *faultsStr)
	animate(sim, fixed, *every, *maxRounds)
	fmt.Printf("blocks: %v, records: %d on %d nodes\n\n",
		sim.Blocks(), sim.InfoRecords(), sim.NodesWithInfo())

	if *recover != "" {
		c, err := cliutil.ParseCoord(*recover, len(dims))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovering %v\n", c)
		if err := sim.RecoverNow(c); err != nil {
			log.Fatal(err)
		}
		animate(sim, fixed, *every, *maxRounds)
		fmt.Printf("blocks: %v, records: %d on %d nodes\n",
			sim.Blocks(), sim.InfoRecords(), sim.NodesWithInfo())
	}
}

// animate renders the mesh every few information rounds until quiescence.
func animate(sim *ndmesh.Simulation, fixed ndmesh.Coord, every, maxRounds int) {
	if every < 1 {
		every = 1
	}
	for round := 0; round < maxRounds; round += every {
		n := sim.StabilizeRounds(every)
		fmt.Printf("--- after round %d ---\n", round+n)
		fmt.Print(sim.Render(fixed))
		if n < every {
			return // quiescent
		}
	}
}
