package ndmesh

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment enforces the documentation pass: every
// internal package (and the root package) must carry a package doc
// comment stating its role — go vet does not check this, so the test
// stands in for a revive/golint exported-comment rule without adding a
// tool dependency. CI runs it like any other test.
func TestEveryPackageHasDocComment(t *testing.T) {
	dirs := []string{"."}
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			var files []string
			for fname, f := range pkg.Files {
				files = append(files, fname)
				if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
					documented = true
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment on any of %v",
					name, dir, files)
			}
		}
	}
}
