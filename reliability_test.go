package ndmesh

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"ndmesh/internal/traffic"
)

// smallReliability is the quick E23 grid used by the determinism and
// golden tests: a 6x6 mesh under moderate uniform load, a fault-free
// baseline column plus two fault rates with repair, small Monte-Carlo
// sample.
func smallReliability() ReliabilityOptions {
	opt := DefaultReliability()
	opt.Dims = []int{6, 6}
	opt.FaultRates = []float64{0, 0.01, 0.04}
	opt.FaultRepair = 60
	opt.Trials = 4
	opt.Rate = 0.15
	opt.Warmup, opt.Measure, opt.Drain = 16, 96, 96
	opt.NodeCapacity = 4
	opt.FlightTimeout = 24
	opt.RetryBackoff = 4
	opt.GridlockWindow = 8
	return opt
}

// TestParallelReliabilitySweepDeterministic extends the repository's
// determinism contract to E23: byte-identical rows for every worker count
// (run under -race in CI). The Monte-Carlo fold must not depend on which
// worker finished which trial first.
func TestParallelReliabilitySweepDeterministic(t *testing.T) {
	opt := smallReliability()
	serial, err := ReliabilitySweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := ReliabilitySweepWorkers(opt, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

// TestShardedReliabilitySweepDeterministic is the E23 row of the shard
// matrix: trials whose runs apply fail AND recover events to meshes with
// resident flights must stay byte-identical at every intra-step shard
// count {1, 2, 7, GOMAXPROCS} (run under -race in CI).
func TestShardedReliabilitySweepDeterministic(t *testing.T) {
	opt := smallReliability()
	serial, err := ReliabilitySweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardCounts {
		opt.Shards = s
		for _, w := range []int{1, 3} {
			got, err := ReliabilitySweepWorkers(opt, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("shards=%d workers=%d:\n got %+v\nwant %+v", s, w, got, serial)
			}
		}
	}
}

// TestGoldenReliabilitySweep pins one E23 run byte-for-byte at a fixed
// seed: the per-trial stream split, the fault-process draws (arrival,
// placement, repair), the open-loop retry jitter and the serial fold all
// feed these strings. If a deliberate change to any of those is made,
// recapture in the same commit and say so.
func TestGoldenReliabilitySweep(t *testing.T) {
	opt := smallReliability()
	opt.FaultRates = []float64{0, 0.04}
	opt.Trials = 2
	rows, err := ReliabilitySweepWorkers(opt, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenReliabilityRows
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if got := fmt.Sprintf("%+v", r); got != want[i] {
			t.Errorf("row %d:\n got %s\nwant %s", i, got, want[i])
		}
	}
}

// TestReliabilityCurveDegradesWithRate is the acceptance shape of the
// curve: the fault-free baseline applies no events and delivers
// everything; raising the fault rate raises the applied-event counts and
// cannot improve the delivered fraction.
func TestReliabilityCurveDegradesWithRate(t *testing.T) {
	opt := smallReliability()
	rows, err := ReliabilitySweep(opt, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opt.FaultRates) {
		t.Fatalf("got %d rows, want %d", len(rows), len(opt.FaultRates))
	}
	base := rows[0]
	if base.FaultRate != 0 || base.MeanFailed != 0 || base.MeanRecovered != 0 {
		t.Fatalf("baseline row is not fault-free: %+v", base)
	}
	if base.DeliveredFrac != 1 {
		t.Errorf("fault-free baseline delivered %v of injected, want 1", base.DeliveredFrac)
	}
	prevFailed := 0.0
	for _, r := range rows[1:] {
		if r.MeanFailed <= prevFailed {
			t.Errorf("rate %v: mean failed %v did not grow past %v", r.FaultRate, r.MeanFailed, prevFailed)
		}
		prevFailed = r.MeanFailed
		if r.DeliveredFrac > base.DeliveredFrac {
			t.Errorf("rate %v: delivered frac %v exceeds the fault-free baseline %v", r.FaultRate, r.DeliveredFrac, base.DeliveredFrac)
		}
		if r.MeanRecovered == 0 {
			t.Errorf("rate %v: repair enabled but no recovery applied", r.FaultRate)
		}
		// Injected legitimately differs across rates even though the offered
		// stream is identical (TestReliabilityStreamIsolation): faulty
		// sources refuse offers and retries add measured ones.
	}
}

// TestReliabilityStreamIsolation pins the rng-stream split behind the
// Monte-Carlo contract from both sides: at a fixed seed, changing the
// fault rate must not move a single offered message (the traffic draws
// come before the split's children), and changing the traffic pattern
// must not move a single fault event (the fault draws come only from the
// dedicated child stream). FlightTimeout stays 0 here: retry jitter is
// traffic that legitimately depends on what the faults killed.
func TestReliabilityStreamIsolation(t *testing.T) {
	record := func(pattern string, rate float64) *traffic.Trace {
		tr := &traffic.Trace{}
		_, err := LoadRun(LoadOptions{
			Dims: []int{6, 6}, Router: "limited", Pattern: pattern,
			Rate: 0.2, Warmup: 16, Measure: 96, Drain: 96,
			FaultRate: rate, FaultModel: "bernoulli", FaultRepair: 50,
			Seed: 9, Record: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	lo, hi := record("uniform", 0.01), record("uniform", 0.05)
	if reflect.DeepEqual(lo.Faults, hi.Faults) {
		t.Fatal("different fault rates drew the identical schedule")
	}
	if len(lo.Faults) == 0 || len(hi.Faults) == 0 {
		t.Fatalf("empty fault schedules: %d / %d", len(lo.Faults), len(hi.Faults))
	}
	loOffers, hiOffers := lo.Faults, hi.Faults
	lo.Faults, hi.Faults = nil, nil
	if !bytes.Equal(lo.Marshal(), hi.Marshal()) {
		t.Error("changing the fault rate moved the offered traffic — the streams are not isolated")
	}
	lo.Faults, hi.Faults = loOffers, hiOffers
	// Other direction: the fault schedule is a function of the fault knobs
	// alone, not of the traffic pattern consuming the parent stream.
	transpose := record("transpose", 0.05)
	if !reflect.DeepEqual(transpose.Faults, hi.Faults) {
		t.Error("changing the traffic pattern moved the fault schedule — the streams are not isolated")
	}
}

// TestReliabilitySweepValidation pins the option errors.
func TestReliabilitySweepValidation(t *testing.T) {
	base := smallReliability()
	for name, mutate := range map[string]func(*ReliabilityOptions){
		"no fault rates":   func(o *ReliabilityOptions) { o.FaultRates = nil },
		"no trials":        func(o *ReliabilityOptions) { o.Trials = 0 },
		"no rate":          func(o *ReliabilityOptions) { o.Rate = 0 },
		"fault rate > 1":   func(o *ReliabilityOptions) { o.FaultRates = []float64{1.5} },
		"negative rate":    func(o *ReliabilityOptions) { o.FaultRates = []float64{-0.1} },
		"unknown model":    func(o *ReliabilityOptions) { o.FaultModel = "poisson" },
		"repair below 1":   func(o *ReliabilityOptions) { o.FaultRepair = 0.5 },
		"unknown process":  func(o *ReliabilityOptions) { o.Process = "warp" },
		"rate beyond proc": func(o *ReliabilityOptions) { o.Rate = 1.5 },
	} {
		opt := base
		mutate(&opt)
		if _, err := reliabilitySweep(opt, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// goldenReliabilityRows is the pinned output of TestGoldenReliabilitySweep
// (smallReliability narrowed to {0, 0.04} x 2 trials at seed 7, serial).
// The pair doubles as a miniature curve: the fault column trades delivered
// fraction for unreachable/timed-out traffic while the offered workload
// stays the identical byte sequence.
var goldenReliabilityRows = []string{
	"{Dims:6x6 mesh Pattern:uniform Router:limited FaultRate:0 Trials:2 Injected:1041 Delivered:1041 Unreachable:0 Lost:0 TimedOut:0 Unfinished:0 RetryDropped:0 DeliveredFrac:1 UnreachableFrac:0 LostFrac:0 TimedOutFrac:0 AcceptedRate:0.1506076388888889 MeanFailed:0 MeanRecovered:0 GridlockedTrials:0 LatMean:4.334293948126799 LatP50Mean:4 LatP99Mean:9 LatMax:11}",
	"{Dims:6x6 mesh Pattern:uniform Router:limited FaultRate:0.04 Trials:2 Injected:932 Delivered:894 Unreachable:0 Lost:7 TimedOut:18 Unfinished:13 RetryDropped:18 DeliveredFrac:0.9592274678111588 UnreachableFrac:0 LostFrac:0.0075107296137339056 TimedOutFrac:0.019313304721030045 AcceptedRate:0.1293402777777778 MeanFailed:6.5 MeanRecovered:4 GridlockedTrials:0 LatMean:6.664429530201342 LatP50Mean:5 LatP99Mean:44.5 LatMax:129}",
}
