package ndmesh

import "testing"

func TestSmokeTheoremSweep(t *testing.T) {
	rep, err := TheoremSweep([]int{12, 12}, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", rep)
	if rep.Violations3+rep.Violations4+rep.Violations5 > 0 {
		t.Errorf("theorem violations: %+v", rep)
	}
	if rep.Arrived == 0 {
		t.Errorf("no trial arrived: %+v", rep)
	}
}

func TestSmokeDegradation(t *testing.T) {
	opt := DefaultDegradation()
	opt.Dims = []int{12, 12}
	opt.Trials = 3
	opt.Intervals = []int{4, 32}
	rows, err := DegradationSweep(opt, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%+v", r)
		if r.SuccessPct < 100 {
			t.Errorf("router %s at interval %d: success %.0f%%", r.Router, r.Interval, r.SuccessPct)
		}
	}
}

func TestSmokeConvergence(t *testing.T) {
	rows, err := ConvergenceSweep([][]int{{12, 12}, {8, 8, 8}}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%+v", r)
		if r.BRounds == 0 {
			t.Errorf("no identification activity for %+v", r)
		}
	}
}

func TestSmokeTraffic(t *testing.T) {
	rows, err := TrafficSweep([]int{14, 14}, 8, 4, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%+v", r)
		if r.ArrivedPct < 80 {
			t.Errorf("router %s arrived only %.0f%%", r.Router, r.ArrivedPct)
		}
	}
}
