package ndmesh

// This file is E20, the congestion-shift experiment: the same
// latency-throughput methodology as the saturation sweep (E19), but run as
// a controlled comparison — for every (pattern, rate) cell the limited
// router and the congestion-aware router replay the *identical* scenario
// (same fault overlay, same injection stream, byte-for-byte), so any
// difference in the curves is attributable to the routing decisions alone.
// The headline output is the saturation-point shift: how much farther up
// the offered-rate axis the congested router pushes the accepted-throughput
// plateau (ROADMAP open item (a)).
//
// Determinism follows the repository contract: one rng stream is split per
// (pattern, rate) cell in row order, each router's run starts from a value
// copy of that stream's state, each job writes only its own result slot,
// and aggregation is serial — byte-identical for every worker count.

import (
	"ndmesh/internal/grid"
	"ndmesh/internal/par"
	"ndmesh/internal/route"
)

// CongestionShiftOptions configures the E20 comparison grid. Every
// (pattern, rate) cell runs once per router on an identical scenario.
type CongestionShiftOptions struct {
	Dims     []int
	Lambda   int
	Patterns []string
	Rates    []float64
	// Process is the arrival process (bernoulli | poisson | bursty).
	Process                string
	Warmup, Measure, Drain int
	// LinkRate and NodeCapacity configure the contention model. A finite
	// NodeCapacity is where the two routers separate most: the oblivious
	// router saturates its input buffers into congestion collapse while the
	// congested router routes around them.
	LinkRate, NodeCapacity int
	// Congestion tunes the congested router's tie-breaking.
	Congestion route.CongestionConfig
	// Faults > 0 overlays a dynamic fault schedule on every cell (both
	// routers see the same schedule).
	Faults, FaultInterval int
	Clustered             bool
	// Workers is the parallel fan-out width; < 1 means GOMAXPROCS. The
	// results are identical for every value.
	Workers int
	// Shards is the intra-step shard-worker count per cell run (< 2 means
	// serial); like Workers, every value yields byte-identical rows.
	Shards int
	// Progress, when non-nil, is called after every completed cell with
	// (done, total); must be safe for concurrent use.
	Progress func(done, total int)
}

// DefaultCongestionShift returns the standard E20 configuration: an 8x8
// mesh with finite router buffers (capacity 8), uniform + transpose
// Bernoulli injection, rates spanning deep underload to past both routers'
// collapse points.
func DefaultCongestionShift() CongestionShiftOptions {
	return CongestionShiftOptions{
		Dims:         []int{8, 8},
		Lambda:       1,
		Patterns:     []string{"uniform", "transpose"},
		Rates:        []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		Process:      "bernoulli",
		Warmup:       64,
		Measure:      256,
		Drain:        256,
		LinkRate:     1,
		NodeCapacity: 8,
	}
}

// CongestionShiftRow is one (pattern, rate) cell of the E20 grid: the
// limited and congested measurements of the identical scenario side by
// side.
type CongestionShiftRow struct {
	Dims        string
	Pattern     string
	OfferedRate float64
	// LimitedAccepted/CongestedAccepted are the accepted throughputs
	// (delivered messages per node-step over the measurement window).
	LimitedAccepted, CongestedAccepted float64
	// LimitedDropped/CongestedDropped count source-queue refusals; the
	// collapse signature is drops exploding while accepted falls.
	LimitedDropped, CongestedDropped int
	// LimitedUnfinished/CongestedUnfinished count measured flights still in
	// flight when the drain ended (standing backlog).
	LimitedUnfinished, CongestedUnfinished int
	// LimitedLatMean/CongestedLatMean and the P99s summarize the delivered
	// latency distributions in steps.
	LimitedLatMean, CongestedLatMean float64
	LimitedLatP99, CongestedLatP99   int
}

// CongestionShiftSummary condenses one pattern's curves into the headline
// numbers: each router's saturation point (the offered rate with the
// highest accepted throughput) and the relative throughput shift there.
type CongestionShiftSummary struct {
	Pattern string
	// LimitedSatRate/CongestedSatRate are the offered rates at each
	// router's accepted-throughput peak; LimitedSatAccepted/
	// CongestedSatAccepted the peak accepted throughputs.
	LimitedSatRate, CongestedSatRate         float64
	LimitedSatAccepted, CongestedSatAccepted float64
	// ShiftPct is the relative gain of the congested router's peak accepted
	// throughput over the limited router's, in percent.
	ShiftPct float64
}

// CongestionShiftSweep runs the E20 grid with all available cores.
func CongestionShiftSweep(opt CongestionShiftOptions, seed uint64) ([]CongestionShiftRow, []CongestionShiftSummary, error) {
	opt.Workers = 0
	return congestionShiftSweep(opt, seed)
}

// CongestionShiftSweepWorkers is CongestionShiftSweep with an explicit
// worker count (each (pattern, rate) cell is one parallel job).
func CongestionShiftSweepWorkers(opt CongestionShiftOptions, seed uint64, workers int) ([]CongestionShiftRow, []CongestionShiftSummary, error) {
	opt.Workers = workers
	return congestionShiftSweep(opt, seed)
}

func congestionShiftSweep(opt CongestionShiftOptions, seed uint64) ([]CongestionShiftRow, []CongestionShiftSummary, error) {
	sopt := SaturationOptions{
		Dims: opt.Dims, Lambda: opt.Lambda,
		Routers:  []string{"limited", "congested"},
		Patterns: opt.Patterns, Rates: opt.Rates, Process: opt.Process,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.NodeCapacity,
		Congestion: opt.Congestion,
		Faults:     opt.Faults, FaultInterval: opt.FaultInterval,
		Clustered: opt.Clustered,
		Shards:    opt.Shards,
	}
	if err := validateSaturation(&sopt); err != nil {
		return nil, nil, err
	}
	shape, err := grid.NewShape(opt.Dims...)
	if err != nil {
		return nil, nil, err
	}
	// One job per (pattern, rate) cell, pattern-major. Both routers replay
	// the cell's scenario from value copies of the same stream state, so
	// the fault schedule and the offered traffic are byte-identical.
	jobs := len(opt.Patterns) * len(opt.Rates)
	rngs := splitN(seed, jobs)
	rows := make([]CongestionShiftRow, jobs)
	progress := progressCounter(opt.Progress, jobs)
	err = par.ForState(opt.Workers, jobs, newSimPool, func(p *simPool, j int) error {
		pattern := opt.Patterns[j/len(opt.Rates)]
		rate := opt.Rates[j%len(opt.Rates)]
		row := CongestionShiftRow{Dims: shape.String(), Pattern: pattern, OfferedRate: rate}
		for _, router := range sopt.Routers {
			stream := *rngs[j] // identical replay for both routers
			pt, err := p.loadPoint(sopt, workload{pattern: pattern, rate: rate}, router, &stream)
			if err != nil {
				return err
			}
			if router == "limited" {
				row.LimitedAccepted = pt.AcceptedRate
				row.LimitedDropped = pt.Dropped
				row.LimitedUnfinished = pt.Unfinished
				row.LimitedLatMean = pt.Latency.Mean
				row.LimitedLatP99 = pt.Latency.P99
			} else {
				row.CongestedAccepted = pt.AcceptedRate
				row.CongestedDropped = pt.Dropped
				row.CongestedUnfinished = pt.Unfinished
				row.CongestedLatMean = pt.Latency.Mean
				row.CongestedLatP99 = pt.Latency.P99
			}
		}
		rows[j] = row
		progress()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Serial aggregation: per pattern, each router's accepted-throughput
	// peak over the rate axis (ties keep the lowest rate).
	summaries := make([]CongestionShiftSummary, 0, len(opt.Patterns))
	for pi, pattern := range opt.Patterns {
		sum := CongestionShiftSummary{Pattern: pattern}
		for ri := range opt.Rates {
			row := rows[pi*len(opt.Rates)+ri]
			if row.LimitedAccepted > sum.LimitedSatAccepted {
				sum.LimitedSatAccepted = row.LimitedAccepted
				sum.LimitedSatRate = row.OfferedRate
			}
			if row.CongestedAccepted > sum.CongestedSatAccepted {
				sum.CongestedSatAccepted = row.CongestedAccepted
				sum.CongestedSatRate = row.OfferedRate
			}
		}
		if sum.LimitedSatAccepted > 0 {
			sum.ShiftPct = 100 * (sum.CongestedSatAccepted - sum.LimitedSatAccepted) / sum.LimitedSatAccepted
		}
		summaries = append(summaries, sum)
	}
	return rows, summaries, nil
}
