module ndmesh

go 1.24
