package ndmesh

import (
	"reflect"
	"testing"

	"ndmesh/internal/traffic"
)

// openLoopRetryCell is a 6x6 open-loop run pushed hard enough into
// contention that flight timeouts fire: the retry source (ROADMAP item 3's
// leftover) must re-offer the kills instead of letting offered load vanish.
func openLoopRetryCell() LoadOptions {
	return LoadOptions{
		Dims: []int{6, 6}, Router: "limited", Pattern: "uniform",
		Rate: 0.4, Warmup: 16, Measure: 96, Drain: 96,
		NodeCapacity: 4, FlightTimeout: 12, RetryBackoff: 4, GridlockWindow: 6,
		Seed: 3,
	}
}

// TestOpenLoopRetryConservation pins the open-loop retry accounting: every
// measured timeout re-arms exactly one retry, the conservation invariant
// holds, and retries whose backoff outlives the injection window surface
// as RetryDropped instead of disappearing.
func TestOpenLoopRetryConservation(t *testing.T) {
	pt, err := LoadRun(openLoopRetryCell())
	if err != nil {
		t.Fatal(err)
	}
	if pt.TimedOut == 0 {
		t.Fatal("no timeouts fired; the test lost its teeth")
	}
	if pt.Retried != pt.TimedOut {
		t.Errorf("retried %d != timed-out %d: each open-loop timeout must re-arm exactly once", pt.Retried, pt.TimedOut)
	}
	if sum := pt.Delivered + pt.Unreachable + pt.Lost + pt.TimedOut + pt.Unfinished; pt.Injected != sum {
		t.Errorf("conservation broken: injected %d != %d (delivered %d + unreach %d + lost %d + timed-out %d + unfin %d)",
			pt.Injected, sum, pt.Delivered, pt.Unreachable, pt.Lost, pt.TimedOut, pt.Unfinished)
	}
	if pt.RetryDropped > pt.Retried {
		t.Errorf("retry-dropped %d exceeds retried %d", pt.RetryDropped, pt.Retried)
	}
}

// TestOpenLoopRetryChangesOffers pins that the retry source actually
// re-offers: the same cell with timeouts disabled (no kills, no retries)
// must offer strictly less measured traffic than the retrying run, whose
// re-offers land as fresh measured offers.
func TestOpenLoopRetryChangesOffers(t *testing.T) {
	withRetry, err := LoadRun(openLoopRetryCell())
	if err != nil {
		t.Fatal(err)
	}
	bare := openLoopRetryCell()
	bare.FlightTimeout = 0
	bare.GridlockWindow = 0 // a wedged cell would cut the run short
	without, err := LoadRun(bare)
	if err != nil {
		t.Fatal(err)
	}
	reoffered := withRetry.Retried - withRetry.RetryDropped
	if reoffered <= 0 {
		t.Fatalf("no retry was re-offered before injection closed (retried %d, dropped %d); the cell cannot distinguish the source",
			withRetry.Retried, withRetry.RetryDropped)
	}
	if withRetry.Offered <= without.Offered {
		t.Errorf("retrying run offered %d, timeout-free run %d: re-offers should add measured offers",
			withRetry.Offered, without.Offered)
	}
}

// TestOpenLoopRetryRecordReplay pins the trace contract for the retry
// source: retried offers are recorded through the emit path like any
// other, so a replay — which runs no retry machinery — reproduces the
// identical network behavior. Retried/RetryDropped are live-source
// accounting a replay cannot reconstruct (the trace stream already embeds
// the retries), so they are normalized before the comparison.
func TestOpenLoopRetryRecordReplay(t *testing.T) {
	opt := openLoopRetryCell()
	opt.Record = &traffic.Trace{}
	live, err := LoadRun(opt)
	if err != nil {
		t.Fatal(err)
	}
	if live.Retried == 0 {
		t.Fatal("origin run retried nothing; the test lost its teeth")
	}
	tr, err := traffic.UnmarshalTrace(opt.Record.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := LoadRun(LoadOptions{Router: opt.Router, Replay: tr})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Retried != 0 || replayed.RetryDropped != 0 {
		t.Errorf("replay reports live-source retry accounting (retried %d, dropped %d), want 0/0",
			replayed.Retried, replayed.RetryDropped)
	}
	live.Retried, live.RetryDropped = 0, 0
	if !reflect.DeepEqual(replayed, live) {
		t.Errorf("replay diverged from live run:\n live   %+v\n replay %+v", live, replayed)
	}
}

// TestCongestedRecoveryShardDeterministic is the mid-run-recovery
// coverage satellite: a congested-router run under a repairing fault
// process — Fail and Recover events landing on a mesh with resident
// flights, LoadView reads taken across the recoveries — must stay
// byte-identical at shard counts {1, 2, 7, GOMAXPROCS} (run under -race
// in CI) and must actually apply recoveries mid-run.
func TestCongestedRecoveryShardDeterministic(t *testing.T) {
	base := LoadOptions{
		Dims: []int{6, 6}, Router: "congested", Pattern: "uniform",
		Rate: 0.3, Warmup: 16, Measure: 128, Drain: 96,
		NodeCapacity: 4, FlightTimeout: 16, RetryBackoff: 4, GridlockWindow: 8,
		FaultRate: 0.05, FaultModel: "bernoulli", FaultRepair: 30,
		Seed: 13,
	}
	serial, err := LoadRun(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Failed == 0 || serial.Recovered == 0 {
		t.Fatalf("cell applied %d fails / %d recoveries; need both mid-run (tune the rate)", serial.Failed, serial.Recovered)
	}
	if serial.Delivered == 0 {
		t.Fatal("nothing delivered under the fault process; the cell is dead")
	}
	for _, s := range shardCounts {
		opt := base
		opt.Shards = s
		got, err := LoadRun(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("shards=%d:\n got %+v\nwant %+v", s, got, serial)
		}
	}
}
