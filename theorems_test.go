package ndmesh

// Experiments E9-E13 of DESIGN.md: the theorems of the paper validated
// through the public API on randomized scenarios.

import (
	"testing"

	"ndmesh/internal/block"
	"ndmesh/internal/safety"
)

// TestTheorem1 (E9): the constructions of fault recovery do not affect the
// optimal routing — a safe-source message routed while recoveries fire
// stays minimal.
func TestTheorem1(t *testing.T) {
	sim, err := NewSimulation(Config{Dims: []int{16, 16}, Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A block off the source's axis sections, dissolving mid-route.
	for _, c := range []Coord{C(7, 7), C(8, 8)} {
		if err := sim.FailNow(c); err != nil {
			t.Fatal(err)
		}
	}
	sim.Stabilize()
	if err := sim.ScheduleRecovery(4, C(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleRecovery(10, C(7, 7)); err != nil {
		t.Fatal(err)
	}
	src, dst := C(2, 3), C(13, 12)
	if !sim.SourceSafe(src, dst) {
		t.Fatal("setup: source must be safe")
	}
	res, err := sim.Route(src, dst, "limited")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Arrived || res.ExtraHops != 0 {
		t.Fatalf("recovery affected the optimal routing: %+v", res)
	}
}

// TestTheorem2 (E10): safe sources always have a minimal path; the limited
// router achieves it on static faults.
func TestTheorem2(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		sim, err := NewSimulation(Config{Dims: []int{14, 14}, Lambda: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.GenerateFaults(FaultPlan{Faults: 4, Interval: 1, Seed: seed, MinSpacing: 3}); err != nil {
			t.Fatal(err)
		}
		sim.Drain()
		src, dst := C(1, 1), C(12, 12)
		srcID, _ := sim.NodeAt(src)
		dstID, _ := sim.NodeAt(dst)
		if sim.fabric().Status(srcID) != 0 || sim.fabric().Status(dstID) != 0 {
			continue // endpoint swallowed by a block: outside the premise
		}
		safe := sim.SourceSafe(src, dst)
		minimal := safety.MinimalPathExists(sim.fabric(), srcID, dstID)
		if safe && !minimal {
			t.Fatalf("seed %d: safe source without minimal path", seed)
		}
		if safe {
			res, err := sim.Route(src, dst, "limited")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Arrived || res.ExtraHops != 0 {
				t.Fatalf("seed %d: safe source routed non-minimally: %+v", seed, res)
			}
		}
	}
}

// TestTheorem3And4 (E11, E12): randomized conforming dynamic schedules
// produce no violations of the progress recurrence or the k-interval /
// max-detour bounds.
func TestTheorem3And4(t *testing.T) {
	rep, err := TheoremSweep([]int{16, 16}, 40, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations3 != 0 || rep.Violations4 != 0 {
		t.Fatalf("violations: %+v", rep)
	}
	if rep.SafeTrials == 0 {
		t.Fatalf("no safe trials sampled: %+v", rep)
	}
	if rep.Arrived == 0 {
		t.Fatalf("nothing arrived: %+v", rep)
	}
}

// TestTheorem5 (E13): unsafe-source runs respect the path-length bound.
func TestTheorem5(t *testing.T) {
	rep, err := TheoremSweep([]int{12, 12}, 80, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations5 != 0 {
		t.Fatalf("Theorem 5 violations: %+v", rep)
	}
	// 3-D as well.
	rep3, err := TheoremSweep([]int{8, 8, 8}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Violations3+rep3.Violations4+rep3.Violations5 != 0 {
		t.Fatalf("3-D violations: %+v", rep3)
	}
}

// TestBlocksPublicView cross-checks Simulation.Blocks against the oracle.
func TestBlocksPublicView(t *testing.T) {
	sim, err := NewSimulation(Config{Dims: []int{12, 12}, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.FailNow(C(4, 4))
	sim.FailNow(C(5, 5))
	sim.Stabilize()
	want := block.Extract(sim.fabric())
	got := sim.Blocks()
	if len(got) != len(want) {
		t.Fatalf("Blocks() = %v", got)
	}
	for i := range got {
		if !got[i].Equal(want[i].Box) {
			t.Fatalf("Blocks()[%d] = %v, want %v", i, got[i], want[i].Box)
		}
	}
}
