package ndmesh

import (
	"reflect"
	"testing"
)

// smallSaturation is a quick grid used by the determinism and behavior
// tests: two patterns, three rates, one router on a 6x6 mesh.
func smallSaturation() SaturationOptions {
	opt := DefaultSaturation()
	opt.Dims = []int{6, 6}
	opt.Patterns = []string{"uniform", "hotspot"}
	opt.Rates = []float64{0.05, 0.2, 0.5}
	opt.Warmup, opt.Measure, opt.Drain = 16, 48, 64
	opt.NodeCapacity = 4
	return opt
}

// TestParallelSaturationSweepDeterministic extends the repository's
// determinism contract to the load subsystem: byte-identical rows for
// every worker count (run under -race in CI to certify the fan-out shares
// no mutable state).
func TestParallelSaturationSweepDeterministic(t *testing.T) {
	opt := smallSaturation()
	serial, err := SaturationSweepWorkers(opt, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, err := SaturationSweepWorkers(opt, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d:\n got %+v\nwant %+v", w, got, serial)
		}
	}
}

// TestSaturationCurveMonotone is the acceptance criterion of the traffic
// subsystem: on a fault-free 8x8 mesh, latency rises with injection rate
// and accepted throughput saturates (plateaus below the offered rate).
// The run is deterministic, so exact comparisons are safe.
func TestSaturationCurveMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation curve run is a few hundred thousand flight-steps")
	}
	opt := DefaultSaturation()
	opt.Patterns = []string{"uniform"}
	opt.Rates = []float64{0.05, 0.2, 0.5, 0.9}
	rows, err := SaturationSweep(opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opt.Rates) {
		t.Fatalf("got %d rows, want %d", len(rows), len(opt.Rates))
	}
	for i, r := range rows {
		if r.Delivered == 0 {
			t.Fatalf("rate %.2f delivered nothing", r.OfferedRate)
		}
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		if r.LatMean < prev.LatMean {
			t.Errorf("latency not monotone: %.2f@%.2f < %.2f@%.2f",
				r.LatMean, r.OfferedRate, prev.LatMean, prev.OfferedRate)
		}
		if r.AcceptedRate < prev.AcceptedRate {
			t.Errorf("accepted throughput decreased: %.3f@%.2f < %.3f@%.2f",
				r.AcceptedRate, r.OfferedRate, prev.AcceptedRate, prev.OfferedRate)
		}
	}
	// Under deep underload the network accepts what is offered...
	lo := rows[0]
	if diff := lo.AcceptedRate - lo.OfferedRate; diff > 0.02 || diff < -0.02 {
		t.Errorf("underload accepted %.3f, offered %.3f", lo.AcceptedRate, lo.OfferedRate)
	}
	// ... and past saturation it cannot: backlog survives the drain and
	// the accepted rate falls short of the offered rate.
	hi := rows[len(rows)-1]
	if hi.Unfinished == 0 {
		t.Errorf("rate %.2f left no backlog: not saturated", hi.OfferedRate)
	}
	if hi.AcceptedRate >= hi.OfferedRate {
		t.Errorf("rate %.2f accepted %.3f: contention did not bind", hi.OfferedRate, hi.AcceptedRate)
	}
	// Queueing visibly separates the extremes.
	if hi.LatMean < 2*lo.LatMean {
		t.Errorf("saturated latency %.2f not clearly above underload %.2f", hi.LatMean, lo.LatMean)
	}
}

// TestSaturationTransposePlateau pins the plateau on the bisection-bound
// pattern: past saturation, offering 2.5x more transpose traffic changes
// the accepted throughput by only a few percent while the backlog grows.
func TestSaturationTransposePlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation plateau run is a few hundred thousand flight-steps")
	}
	opt := DefaultSaturation()
	opt.Patterns = []string{"transpose"}
	opt.Rates = []float64{0.35, 0.9}
	rows, err := SaturationSweep(opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rows[0], rows[1]
	ratio := b.AcceptedRate / a.AcceptedRate
	if ratio > 1.15 || ratio < 0.85 {
		t.Errorf("no plateau: accepted %.3f@%.2f vs %.3f@%.2f", a.AcceptedRate, a.OfferedRate,
			b.AcceptedRate, b.OfferedRate)
	}
	if b.Unfinished <= a.Unfinished {
		t.Errorf("backlog did not grow past saturation: %d vs %d", a.Unfinished, b.Unfinished)
	}
}

// TestSaturationWithFaults checks the fault overlay composes with load:
// the run completes, delivers traffic, and the schedule actually fired.
func TestSaturationWithFaults(t *testing.T) {
	opt := smallSaturation()
	opt.Patterns = []string{"uniform"}
	opt.Rates = []float64{0.1}
	opt.Faults = 3
	opt.FaultInterval = 10
	rows, err := SaturationSweep(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Delivered == 0 {
		t.Fatal("no traffic delivered under faults")
	}
	// With faults some flights may be dropped at dead sources, refused or
	// lost; the accounting must still balance.
	r := rows[0]
	if r.Offered != r.Injected+r.Dropped {
		t.Fatalf("offer accounting broken: %+v", r)
	}
	if r.Injected < r.Delivered+r.Unreachable+r.Lost+r.Unfinished {
		t.Fatalf("outcome accounting exceeds injections: %+v", r)
	}
}

// TestSaturationPatternsRun sanity-checks every pattern and process end to
// end on an asymmetric mesh (the generators must keep endpoints in shape).
func TestSaturationPatternsRun(t *testing.T) {
	for _, proc := range []string{"bernoulli", "poisson", "bursty"} {
		opt := SaturationOptions{
			Dims:     []int{4, 6, 3},
			Routers:  []string{"limited"},
			Patterns: []string{"uniform", "transpose", "complement", "bitrev", "hotspot", "neighbor"},
			Rates:    []float64{0.15},
			Process:  proc,
			Warmup:   8, Measure: 24, Drain: 32,
			LinkRate: 1, NodeCapacity: 2,
		}
		rows, err := SaturationSweep(opt, 9)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		for _, r := range rows {
			if r.Delivered == 0 {
				t.Errorf("%s/%s delivered nothing", proc, r.Pattern)
			}
		}
	}
}

// TestSaturationRejectsUnofferableRates pins the honesty check: rates the
// arrival process would silently clip are rejected up front, so the
// offered-rate axis of a curve never lies.
func TestSaturationRejectsUnofferableRates(t *testing.T) {
	opt := smallSaturation()
	opt.Rates = []float64{1.5} // a Bernoulli source caps at 1
	if _, err := SaturationSweep(opt, 1); err == nil {
		t.Error("bernoulli at rate 1.5 should be rejected")
	}
	opt.Rates = []float64{0.5} // the default bursty duty cycle is 0.25
	opt.Process = "bursty"
	if _, err := SaturationSweep(opt, 1); err == nil {
		t.Error("bursty at rate 0.5 should be rejected")
	}
	opt.Rates = []float64{1.5} // poisson batches arrivals: any rate is fine
	opt.Process = "poisson"
	opt.Patterns = []string{"uniform"}
	if _, err := SaturationSweep(opt, 1); err != nil {
		t.Errorf("poisson at rate 1.5 should run: %v", err)
	}
	opt.Warmup = -8 // negative phases would widen the measurement window
	if _, err := SaturationSweep(opt, 1); err == nil {
		t.Error("negative warmup should be rejected")
	}
}

// TestLoadRunMatchesSweepCell pins LoadRun (the cmd/loadgen path) to the
// sweep: a one-cell sweep and LoadRun with the same parameters produce the
// same point.
func TestLoadRunMatchesSweepCell(t *testing.T) {
	opt := smallSaturation()
	opt.Patterns = []string{"uniform"}
	opt.Rates = []float64{0.2}
	rows, err := SaturationSweepWorkers(opt, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := LoadRun(LoadOptions{
		Dims: opt.Dims, Lambda: opt.Lambda, Router: "limited", Pattern: "uniform",
		Process: opt.Process, Rate: 0.2,
		Warmup: opt.Warmup, Measure: opt.Measure, Drain: opt.Drain,
		LinkRate: opt.LinkRate, NodeCapacity: opt.NodeCapacity, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if pt.Delivered != r.Delivered || pt.AcceptedRate != r.AcceptedRate ||
		pt.Latency.Mean != r.LatMean || pt.Latency.P99 != r.LatP99 {
		t.Fatalf("LoadRun diverged from sweep cell:\n load  %+v\n sweep %+v", pt, r)
	}
}

// TestSimulationRouteUnaffectedByContention guards the existing facade:
// a plain Route on a fresh simulation (no contention) is identical before
// and after the traffic subsystem existed — single flights never contend.
func TestSimulationRouteUnaffectedByContention(t *testing.T) {
	sim := MustSimulation(Config{Dims: []int{10, 10}})
	if err := sim.GenerateFaults(FaultPlan{Faults: 3, Interval: 8, Start: 2, Seed: 4,
		Avoid: []Coord{C(1, 1), C(8, 8)}}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Route(C(1, 1), C(8, 8), "limited")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Arrived {
		t.Fatalf("route failed: %+v", res)
	}
	if res.Hops < res.D0 {
		t.Fatalf("hops %d below distance %d", res.Hops, res.D0)
	}
}
