// ndsweep: the n-D scaling story. The same protocol stack runs unchanged
// over 2-D, 3-D, 4-D and 5-D meshes; this example grows a block in each,
// measures the convergence of block construction / identification /
// boundary distribution (a, b, c of Table 1), and routes across every mesh
// under dynamic faults. The point of the paper's n-D generalization: the
// convergence tracks the block size, not the mesh size or dimensionality.
//
// Run with:
//
//	go run ./examples/ndsweep
package main

import (
	"fmt"
	"log"

	"ndmesh"
)

func main() {
	shapes := [][]int{
		{24, 24},        // 2-D, 576 nodes
		{10, 10, 10},    // 3-D, 1000 nodes
		{6, 6, 6, 6},    // 4-D, 1296 nodes
		{5, 5, 5, 5, 5}, // 5-D, 3125 nodes
	}

	fmt.Println("convergence of the information constructions across dimensions")
	fmt.Println("(two clustered faults grow one block in each mesh; rounds, not steps)")
	fmt.Printf("%-14s %6s %8s %8s %8s %9s %8s\n",
		"mesh", "N", "a", "b", "c", "affected", "records")
	for _, dims := range shapes {
		sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: dims, Lambda: 1})
		if err != nil {
			log.Fatal(err)
		}
		// Two diagonal faults near the center of the mesh.
		center := make(ndmesh.Coord, len(dims))
		next := make(ndmesh.Coord, len(dims))
		for i, k := range dims {
			center[i] = k / 2
			next[i] = k/2 + 1
		}
		if err := sim.ScheduleFault(2, center); err != nil {
			log.Fatal(err)
		}
		if err := sim.ScheduleFault(150, next); err != nil {
			log.Fatal(err)
		}
		sim.RunSteps(320)
		sim.Stabilize()
		evs := sim.Events()
		last := evs[len(evs)-1]
		name := fmt.Sprintf("%v", dims)
		fmt.Printf("%-14s %6d %8d %8d %8d %9d %8d\n",
			name, sim.NumNodes(), last.ARounds, last.BRounds, last.CRounds,
			last.Affected, last.RecordsAfter)
	}

	fmt.Println()
	fmt.Println("routing corner-to-corner under the same dynamic faults:")
	for _, dims := range shapes {
		sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: dims, Lambda: 2})
		if err != nil {
			log.Fatal(err)
		}
		center := make(ndmesh.Coord, len(dims))
		src := make(ndmesh.Coord, len(dims))
		dst := make(ndmesh.Coord, len(dims))
		for i, k := range dims {
			center[i] = k / 2
			src[i] = 1
			dst[i] = k - 2
		}
		if err := sim.ScheduleFault(3, center); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Route(src, dst, "limited")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s arrived=%-5v hops=%-3d distance=%-3d detour=%d\n",
			fmt.Sprintf("%v", dims), res.Arrived, res.Hops, res.D0, res.ExtraHops)
	}
}
