// Recovery: the paper's Figure 4 scenario run through the full information
// model. A 3-D block forms, a node recovers (rule 5 of Algorithm 1), the
// clean wave shrinks the block, the old boundary information is deleted and
// the new block's information constructed — all hop-by-hop. The example
// prints the status evolution of the key nodes and the information
// turnover, then demonstrates Theorem 1: a routing running across the
// recovery stays optimal.
//
// Run with:
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"ndmesh"
)

func main() {
	sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{10, 10, 10}, Lambda: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1's faults: block [3:5, 5:6, 3:4].
	for _, c := range []ndmesh.Coord{
		ndmesh.C(3, 5, 4), ndmesh.C(4, 5, 4), ndmesh.C(5, 5, 3), ndmesh.C(3, 6, 3),
	} {
		if err := sim.FailNow(c); err != nil {
			log.Fatal(err)
		}
	}
	rounds := sim.Stabilize()
	fmt.Printf("block constructed in %d rounds: %v\n", rounds, sim.Blocks())
	fmt.Printf("records before recovery: %d on %d nodes\n\n", sim.InfoRecords(), sim.NodesWithInfo())

	// Figure 4: (5,5,3) recovers.
	fmt.Println("recovering (5,5,3)...")
	if err := sim.RecoverNow(ndmesh.C(5, 5, 3)); err != nil {
		log.Fatal(err)
	}
	rounds = sim.Stabilize()
	fmt.Printf("reconstruction settled in %d rounds: %v\n", rounds, sim.Blocks())
	fmt.Printf("records after recovery: %d on %d nodes\n\n", sim.InfoRecords(), sim.NodesWithInfo())

	// The z=3 slice before/after tells the story visually.
	fmt.Println("slice z=3 after recovery ('X' faulty, '#' disabled, 'o' holds info):")
	fmt.Print(sim.Render(ndmesh.C(0, 0, 3)))

	// Theorem 1: a routing crossing the region during a recovery stays
	// minimal. Fresh simulation: block + in-flight recovery + routing.
	sim2, err := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{10, 10, 10}, Lambda: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []ndmesh.Coord{
		ndmesh.C(3, 5, 4), ndmesh.C(4, 5, 4), ndmesh.C(5, 5, 3), ndmesh.C(3, 6, 3),
	} {
		if err := sim2.FailNow(c); err != nil {
			log.Fatal(err)
		}
	}
	sim2.Stabilize()
	if err := sim2.ScheduleRecovery(3, ndmesh.C(5, 5, 3)); err != nil {
		log.Fatal(err)
	}
	src, dst := ndmesh.C(1, 2, 1), ndmesh.C(8, 8, 8)
	res, err := sim2.Route(src, dst, "limited")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("Theorem 1 check: routing %v -> %v during recovery:\n", src, dst)
	fmt.Printf("  arrived=%v hops=%d distance=%d detour=%d backtracks=%d\n",
		res.Arrived, res.Hops, res.D0, res.ExtraHops, res.Backtracks)
	if res.ExtraHops == 0 {
		fmt.Println("  optimal: the recovery constructions did not disturb the routing")
	}
}
