// Quickstart: route a message across a 2-D mesh while a faulty block forms
// on its path, and watch the limited-global fault information steer it
// around the dangerous region without backtracking.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndmesh"
)

func main() {
	// A 16x16 mesh; λ = 4 information rounds per routing step, so the
	// fault information outruns the message (see the lambda experiment for
	// what happens when it does not).
	sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{16, 16}, Lambda: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A 2x4 block forms at step 2 from a staircase of faults, directly
	// between the source and the destination.
	for _, c := range []ndmesh.Coord{
		ndmesh.C(6, 7), ndmesh.C(7, 8), ndmesh.C(8, 7), ndmesh.C(9, 8),
	} {
		if err := sim.ScheduleFault(2, c); err != nil {
			log.Fatal(err)
		}
	}

	src, dst := ndmesh.C(7, 2), ndmesh.C(7, 13)
	res, err := sim.Route(src, dst, "limited")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("limited-global fault-information routing (Jiang & Wu, IPDPS 2004)")
	fmt.Printf("mesh: %v, source %v, destination %v\n", sim.Dims(), src, dst)
	fmt.Printf("arrived:    %v\n", res.Arrived)
	fmt.Printf("hops:       %d (distance %d, detour %d)\n", res.Hops, res.D0, res.ExtraHops)
	fmt.Printf("backtracks: %d\n", res.Backtracks)
	fmt.Printf("faulty blocks now: %v\n", sim.Blocks())
	fmt.Printf("info records stored: %d on %d of %d nodes\n",
		sim.InfoRecords(), sim.NodesWithInfo(), sim.NumNodes())
	fmt.Println()
	fmt.Println("mesh after the run ('X' faulty, '#' disabled, 'o' holds block info):")
	fmt.Print(sim.Render(nil))
}
