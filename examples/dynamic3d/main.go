// Dynamic 3-D routing: the paper's home turf. A message crosses a 10x10x10
// mesh while faults keep arriving; the run compares the three fault-tolerant
// routers on identical scenarios and prints the per-occurrence convergence
// of the information constructions (a_i, b_i, c_i of Table 1).
//
// Run with:
//
//	go run ./examples/dynamic3d
package main

import (
	"fmt"
	"log"

	"ndmesh"
)

func main() {
	scenario := func() (*ndmesh.Simulation, error) {
		sim, err := ndmesh.NewSimulation(ndmesh.Config{Dims: []int{10, 10, 10}, Lambda: 2})
		if err != nil {
			return nil, err
		}
		// A growing block near the center plus two scattered faults.
		faults := []struct {
			step int
			c    ndmesh.Coord
		}{
			{2, ndmesh.C(5, 5, 5)},
			{30, ndmesh.C(5, 6, 6)}, // grows the central block
			{60, ndmesh.C(2, 7, 3)},
			{90, ndmesh.C(7, 2, 7)},
		}
		for _, f := range faults {
			if err := sim.ScheduleFault(f.step, f.c); err != nil {
				return nil, err
			}
		}
		return sim, nil
	}

	src, dst := ndmesh.C(1, 1, 1), ndmesh.C(8, 8, 8)
	fmt.Println("dynamic faults in a 10x10x10 mesh, routing", src, "->", dst)
	fmt.Println()
	for _, router := range []string{"limited", "oracle", "blind"} {
		sim, err := scenario()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Route(src, dst, router)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s arrived=%-5v hops=%-3d detour=%-2d backtracks=%d\n",
			router, res.Arrived, res.Hops, res.ExtraHops, res.Backtracks)
	}

	// Convergence bookkeeping from a fresh run of the same scenario.
	sim, err := scenario()
	if err != nil {
		log.Fatal(err)
	}
	sim.RunSteps(200)
	sim.Stabilize()
	fmt.Println()
	fmt.Println("per-occurrence convergence (rounds): a=labeling b=identification c=boundary")
	for _, ev := range sim.Events() {
		fmt.Printf("  event %d at step %-3d  a=%-3d b=%-3d c=%-3d affected=%d e_max=%d\n",
			ev.Index, ev.Step, ev.ARounds, ev.BRounds, ev.CRounds, ev.Affected, ev.EMaxAfter)
	}
	fmt.Printf("\ninfo records: %d on %d of %d nodes\n",
		sim.InfoRecords(), sim.NodesWithInfo(), sim.NumNodes())
}
